//===- examples/cloudsc_tour.cpp - the CLOUDSC case study -----------------==//
//
// Part of the daisy project. MIT license.
//
// Walks through the paper's §5.1 case study: the erosion-of-clouds loop
// nest before and after normalization-driven optimization (maximal
// fission with scalar expansion, nest-level CSE of the duplicated FOEEWM
// saturation chain, bounded producer-consumer fusion, vectorization).
//
//===----------------------------------------------------------------------===//

#include "cloudsc/Cloudsc.h"
#include "ir/Printer.h"
#include "machine/Simulator.h"

#include <cstdio>

using namespace daisy;

int main() {
  CloudscConfig Config;
  Config.Nproma = 128;
  Config.Klev = 4; // a few levels keep the printout readable

  Program Erosion = buildErosionKernel(Config);
  std::printf("--- erosion of clouds, as compiled from the inlined "
              "Fortran (Fig. 10a) ---\n%s\n",
              printProgram(Erosion).c_str());

  Program Optimized = optimizeCloudsc(Erosion);
  std::printf("--- after fission + CSE + producer-consumer fusion "
              "(Fig. 10b) ---\n%s\n",
              printProgram(Optimized).c_str());

  SimOptions Seq;
  SimReport Before = simulateProgram(Erosion, Seq);
  SimReport After = simulateProgram(Optimized, Seq);
  std::printf("runtime:  %.4f ms -> %.4f ms (%.2fx)\n",
              Before.Seconds * 1e3, After.Seconds * 1e3,
              Before.Seconds / After.Seconds);
  std::printf("flops:    %lld -> %lld (duplicated FOEEWM chain merged)\n",
              static_cast<long long>(Before.Flops),
              static_cast<long long>(After.Flops));
  std::printf("L1 loads: %lld -> %lld\n",
              static_cast<long long>(Before.Cache[0].Loads),
              static_cast<long long>(After.Cache[0].Loads));
  return 0;
}
