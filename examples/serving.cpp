//===- examples/serving.cpp - the serving runtime tour --------------------==//
//
// Part of the daisy project. MIT license.
//
// How a daisy-embedding service serves kernels to many concurrent
// clients: one serve::Server over sharded engines, validate-once
// BoundArgs, futures from submit, explicit backpressure, and a graceful
// drain. Build and run:
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/serving
//
//===----------------------------------------------------------------------===//

#include "serve/Server.h"

#include "ir/Builder.h"
#include "support/Statistics.h"

#include <cstdio>
#include <future>
#include <memory>
#include <vector>

using namespace daisy;
using namespace daisy::serve;

namespace {

Program makeGemm(int N) {
  Program Prog("gemm");
  Prog.addArray("A", {N, N});
  Prog.addArray("B", {N, N});
  Prog.addArray("C", {N, N});
  Prog.append(forLoop(
      "i", 0, N,
      {forLoop("j", 0, N,
               {forLoop("k", 0, N,
                        {assign("S0", "C", {ax("i"), ax("j")},
                                read("C", {ax("i"), ax("j")}) +
                                    read("A", {ax("i"), ax("k")}) *
                                        read("B", {ax("k"), ax("j")}))})})}));
  return Prog;
}

} // namespace

int main() {
  resetStatsCounters();

  // 1. One Server per process: engine shards (each with its own plan
  //    cache and tuning database), a bounded request queue with an
  //    explicit overload policy, and a worker pool draining it.
  ServerOptions Options;
  Options.Shards = 2;
  Options.Workers = 2;
  Options.QueueCapacity = 256;
  Options.Policy = BackpressurePolicy::Block; // or Reject -> Overloaded
  Options.MaxBatch = 8;                       // same-kernel micro-batching
  Server S(Options);

  // 2. Compile through the server: programs route to a shard by
  //    structural identity, so recompiles of the same kernel always hit
  //    the same shard-local plan cache.
  int N = 48;
  Kernel K = S.compile(makeGemm(N));
  std::printf("compiled gemm onto a %zu-shard server (%lld plan compile)\n",
              S.shardCount(),
              static_cast<long long>(statsCounter("Engine.PlanCompiles")));

  // 3. Bind once, submit many. Kernel::bind pays the name-to-slot
  //    validation exactly once; every submit after that is
  //    string-compare-free. Each in-flight request owns its buffers.
  struct Client {
    std::vector<double> A, B, C;
    BoundArgs Args;
    std::future<RunStatus> Done;
  };
  std::vector<std::unique_ptr<Client>> Clients;
  for (int I = 0; I < 16; ++I) {
    auto C = std::make_unique<Client>();
    C->A.assign(N * N, 0.001 * I);
    C->B.assign(N * N, 1.0);
    C->C.assign(N * N, 0.0);
    C->Args = K.bind(ArgBinding()
                         .bind("A", C->A)
                         .bind("B", C->B)
                         .bind("C", C->C));
    if (!C->Args.ok()) {
      std::printf("bind failed: %s\n", C->Args.error().c_str());
      return 1;
    }
    Clients.push_back(std::move(C));
  }
  for (auto &C : Clients)
    C->Done = S.submit(K, C->Args);

  // 4. Futures complete as workers drain the queue; same-kernel requests
  //    coalesce into micro-batches executed on one warm context.
  for (size_t I = 0; I < Clients.size(); ++I) {
    RunStatus Status = Clients[I]->Done.get();
    if (!Status.ok()) {
      std::printf("request %zu failed: %s\n", I, Status.Error.c_str());
      return 1;
    }
  }
  std::printf("16 requests served; C[0] of client 3 = %.3f\n",
              Clients[3]->C[0]);

  // 5. Misuse is a diagnostic, not UB: arguments bound against another
  //    kernel are rejected as stale instead of addressing wrong slots.
  Kernel Other = Kernel::compile(makeGemm(N));
  RunStatus Stale = S.submit(Other, Clients[0]->Args).get();
  std::printf("stale BoundArgs on another kernel -> \"%s\"\n",
              Stale.Error.c_str());

  // 6. Observability: every serving event is counted, and the queue
  //    depth distribution shows how loaded the server ran.
  S.drain();
  std::printf("counters: submitted %lld, completed %lld, rejected %lld, "
              "batched %lld, queue-depth max %lld\n",
              static_cast<long long>(statsCounter("Serve.Submitted")),
              static_cast<long long>(statsCounter("Serve.Completed")),
              static_cast<long long>(statsCounter("Serve.Rejected")),
              static_cast<long long>(statsCounter("Serve.BatchedRuns")),
              static_cast<long long>(statsCounter("Serve.QueueDepthMax")));
  std::printf("queue-depth histogram (log2 buckets):");
  for (uint64_t Bucket : S.queueDepthHistogram())
    std::printf(" %llu", static_cast<unsigned long long>(Bucket));
  std::printf("\n");

  // 7. Destruction is a graceful shutdown: admission closes, workers
  //    drain, every future is completed or failed — never leaked.
  return 0;
}
