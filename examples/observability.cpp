//===- examples/observability.cpp - flight recorder + metrics tour --------==//
//
// Part of the daisy project. MIT license.
//
// How to see inside a running daisy service: the flight recorder
// (obs/Trace.h) captures span/instant events from every layer — serve
// request stages, engine compiles and plan-cache verdicts, tuner cycles
// — into a lock-free ring, and the metrics layer (obs/Metrics.h)
// exposes every counter and latency histogram as Prometheus text or
// JSON. Build and run:
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/observability
//
// Then load /tmp/daisy_observability_trace.json in https://ui.perfetto.dev
// or chrome://tracing. Any daisy binary can produce the same capture with
// no code changes:
//
//   DAISY_TRACE=/tmp/run.json ./build/serving
//
//===----------------------------------------------------------------------===//

#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "serve/Server.h"

#include "ir/Builder.h"
#include "support/Statistics.h"

#include <cstdio>
#include <future>
#include <vector>

using namespace daisy;
using namespace daisy::serve;

namespace {

Program makeGemm(int N) {
  Program Prog("gemm");
  Prog.addArray("A", {N, N});
  Prog.addArray("B", {N, N});
  Prog.addArray("C", {N, N});
  Prog.append(forLoop(
      "i", 0, N,
      {forLoop("j", 0, N,
               {forLoop("k", 0, N,
                        {assign("S0", "C", {ax("i"), ax("j")},
                                read("C", {ax("i"), ax("j")}) +
                                    read("A", {ax("i"), ax("k")}) *
                                        read("B", {ax("k"), ax("j")}))})})}));
  return Prog;
}

} // namespace

int main() {
  resetStatsCounters();

  // 1. Turn the flight recorder on. Until this call every trace site in
  //    the runtime costs one relaxed atomic load and nothing else; from
  //    here each event is a lock-free ring write (~4 words). The ring
  //    keeps the most recent 64k events — bounded memory is what lets a
  //    production service leave recording on during an incident.
  TraceRecorder &Recorder = TraceRecorder::instance();
  Recorder.enable(/*Capacity=*/1 << 16);

  // 2. A tuning-enabled server: three layers will emit into the same
  //    capture — serve (request stages), engine (compiles, cache,
  //    checkpoints), tune (cycles, probes, swaps).
  ServerOptions Options;
  Options.Workers = 2;
  Options.MaxBatch = 8;
  Options.Engine.OnlineTuning.Enable = true;
  Options.Engine.OnlineTuning.Interval = std::chrono::microseconds(0);
  Options.Engine.OnlineTuning.SampleEvery = 1;
  Options.Engine.OnlineTuning.MinSamples = 4;
  Server S(Options);

  int N = 48;
  Kernel K = S.compile(makeGemm(N)); // engine.compile span (cache miss).
  (void)S.compile(makeGemm(N));      // engine.plan_cache_hit instant.

  // 3. Application code can trace itself with the same primitives the
  //    runtime uses: RAII spans for regions, instants for events.
  {
    TraceSpan Setup(TraceCategory::App, "app.prepare_clients");
    std::printf("tracing enabled, capacity %zu events\n",
                Recorder.capacity());
  }

  // 4. Serve traffic. Each completed request decomposes its sojourn into
  //    queue-wait / batch-wait / run stage spans (Chrome "X" events,
  //    reconstructed after completion — nothing is paid per stage while
  //    the request is in flight).
  struct Client {
    std::vector<double> A, B, C;
    BoundArgs Args;
    std::future<RunStatus> Done;
  };
  std::vector<std::unique_ptr<Client>> Clients;
  for (int I = 0; I < 24; ++I) {
    auto C = std::make_unique<Client>();
    C->A.assign(N * N, 0.001 * I);
    C->B.assign(N * N, 1.0);
    C->C.assign(N * N, 0.0);
    C->Args = K.bind(
        ArgBinding().bind("A", C->A).bind("B", C->B).bind("C", C->C));
    Clients.push_back(std::move(C));
  }
  for (auto &C : Clients)
    C->Done = S.submit(K, C->Args);
  for (auto &C : Clients)
    if (!C->Done.get().ok())
      return 1;
  S.drain();

  // 5. A tuner cycle on the sampled traffic (Interval 0 = no background
  //    lane; a real service lets the tuner's own lane do this).
  if (S.shard(0).tuner())
    (void)S.shard(0).tuner()->runCycle(); // tune.cycle span.

  // 6. The per-stage latency decomposition, from the server's log-linear
  //    histograms: where did a request's time actually go?
  std::printf("p50/p99 end-to-end: %.0f/%.0f us\n",
              S.latencyQuantileUs(0.5), S.latencyQuantileUs(0.99));
  std::printf("  queue-wait p99: %.0f us\n",
              S.stageQuantileUs(Server::Stage::QueueWait, 0.99));
  std::printf("  batch-wait p99: %.0f us\n",
              S.stageQuantileUs(Server::Stage::BatchWait, 0.99));
  std::printf("  run        p99: %.0f us\n",
              S.stageQuantileUs(Server::Stage::Run, 0.99));

  // 7. Metrics exposition: one scrape returns every counter any
  //    subsystem registered plus all four latency histograms — the
  //    string an HTTP handler would serve to Prometheus.
  std::string Prom = S.metricsText();
  std::printf("metricsText(): %zu bytes; first lines:\n", Prom.size());
  size_t Shown = 0, Pos = 0;
  while (Shown < 4 && Pos < Prom.size()) {
    size_t Eol = Prom.find('\n', Pos);
    std::printf("  %s\n", Prom.substr(Pos, Eol - Pos).c_str());
    Pos = Eol + 1;
    ++Shown;
  }
  std::printf("metricsJson(): %zu bytes\n", S.metricsJson().size());

  // 8. Export the capture as Chrome trace JSON. Every event recorded by
  //    any layer since enable() is in this one file, on a shared
  //    monotonic clock — open it in Perfetto and the serve lanes, the
  //    compile spans, and the tuner cycles line up on one timeline.
  const char *Path = "/tmp/daisy_observability_trace.json";
  Recorder.disable();
  if (Recorder.dumpTrace(Path))
    std::printf("%llu events recorded; trace written to %s\n",
                static_cast<unsigned long long>(Recorder.emittedCount()),
                Path);
  std::printf("load it in https://ui.perfetto.dev or chrome://tracing\n");
  return 0;
}
