//===- examples/online_tuning.cpp - the closed tuning loop in action ------==//
//
// Part of the daisy project. MIT license.
//
// The paper's transfer tuning is offline: search once, reuse the
// database. This tour closes the loop against live traffic: an Engine
// with OnlineTuning enabled samples measured runtimes of a naive gemm
// nest, calibrates the machine-model simulator against reality,
// re-searches the hot kernel on a tuning cycle, and hot-swaps the
// winning plan behind the running Kernel handle — gated on bit-identity
// (semanticallyEquivalent at Eps = 0.0) and measured gain, with
// rollback on regression.
//
// Interval is left at 0, so cycles run only when we call runCycle():
// the deterministic mode tests and benchmarks use. A real deployment
// sets Interval to a few seconds and lets the background lane do this.
//
//===----------------------------------------------------------------------===//

#include "api/Engine.h"
#include "ir/Builder.h"
#include "support/Statistics.h"
#include "tune/Tuner.h"

#include <cstdio>
#include <vector>

using namespace daisy;

namespace {

/// A deliberately naive gemm loop nest — the re-search lifts it to the
/// library BLAS call, which accumulates in the same per-element order
/// and therefore passes the tuner's bit-identity gate while being much
/// faster.
Program makeGemm(int N) {
  Program Prog("gemm_naive");
  Prog.addArray("A", {N, N});
  Prog.addArray("B", {N, N});
  Prog.addArray("C", {N, N});
  Prog.append(forLoop(
      "i", 0, N,
      {forLoop("j", 0, N,
               {forLoop("k", 0, N,
                        {assign("S0", "C", {ax("i"), ax("j")},
                                read("C", {ax("i"), ax("j")}) +
                                    read("A", {ax("i"), ax("k")}) *
                                        read("B", {ax("k"), ax("j")}))})})}));
  return Prog;
}

void printStats(const char *When, const OnlineTuner::Stats &S) {
  std::printf("%-14s tracked=%zu probes=%lld swaps=%lld rollbacks=%lld "
              "calibrations=%lld\n",
              When, S.Tracked, static_cast<long long>(S.Probes),
              static_cast<long long>(S.Swaps),
              static_cast<long long>(S.Rollbacks),
              static_cast<long long>(S.Calibrations));
}

} // namespace

int main() {
  constexpr int N = 96;

  EngineOptions Options;
  Options.OnlineTuning.Enable = true;
  Options.OnlineTuning.SampleEvery = 1; // time every run (tour-sized traffic)
  Options.OnlineTuning.MinSamples = 8;
  Options.OnlineTuning.MinGainPct = 3.0; // promote only a real speedup
  Engine Eng(Options);

  std::printf("=== online adaptive tuning: naive gemm under live load ===\n\n");
  Program G = makeGemm(N);
  Kernel K = Eng.compile(G);

  std::vector<double> A(N * N, 0.5), B(N * N, 0.25), C(N * N, 0.0);
  ArgBinding Args;
  Args.bind("A", A).bind("B", B).bind("C", C);

  // Phase 1: live traffic on the base plan fills the measurement ring.
  for (int I = 0; I < 32; ++I)
    K.run(Args);
  printStats("after traffic", Eng.tuner()->stats());

  // Cycle 1: rank -> calibrate -> re-search -> install the candidate as
  // a probe behind the same Kernel handle (no rebind, no recompile on
  // the caller side).
  Eng.tuner()->runCycle();
  printStats("after cycle 1", Eng.tuner()->stats());
  std::printf("  calibration scale for this kernel: %.3f "
              "(measured / simulated)\n",
              Eng.calibrationFor(Engine::routingKey(G)));

  // Phase 2: the probe serves the same traffic, bit-identically, while
  // its measured samples accumulate.
  for (int I = 0; I < 32; ++I)
    K.run(Args);

  // Cycle 2: the measured decision — promote on gain, roll back on
  // regression.
  Eng.tuner()->runCycle();
  printStats("after cycle 2", Eng.tuner()->stats());

  OnlineTuner::Stats S = Eng.tuner()->stats();
  if (S.Swaps > 0)
    std::printf("\nthe re-searched plan beat the incumbent by >= %.1f%% "
                "measured and was hot-swapped in (Engine.TuneSwaps=%lld).\n",
                Options.OnlineTuning.MinGainPct,
                static_cast<long long>(statsCounter("Engine.TuneSwaps")));
  else if (S.Rollbacks > 0)
    std::printf("\nthe probe did not hold its predicted gain on this "
                "machine and was rolled back — traffic never left the "
                "safe plan.\n");
  else
    std::printf("\nno decision yet (probe still collecting samples).\n");
  return 0;
}
