//===- examples/transfer_tuning.cpp - the daisy database in action --------==//
//
// Part of the daisy project. MIT license.
//
// Seeds the transfer-tuning database from one benchmark's A variant (the
// evolutionary search of paper §4), then applies the learned recipes to
// the structurally different B variant: after normalization both reduce
// to the same canonical nests, so the recipes transfer.
//
// Everything runs through the daisy::Engine facade: the engine owns the
// database, the search evaluator (one simulation cache for the whole
// session), and the plan cache behind Engine::optimize.
//
//===----------------------------------------------------------------------===//

#include "api/Engine.h"
#include "frontends/PolyBench.h"
#include "machine/Simulator.h"

#include <cstdio>

using namespace daisy;

int main() {
  EngineOptions Options;
  Options.Sim.Threads = 8; // the simulated machine tuning targets
  Engine Eng(Options);

  TuneOptions Tune;
  Tune.Budget.MctsRollouts = 16;
  Tune.Budget.PopulationSize = 4;
  Tune.Budget.IterationsPerEpoch = 2;
  Tune.Budget.Epochs = 2;

  std::printf("=== transfer tuning: atax A -> atax B ===\n\n");
  Program A = buildPolyBench(PolyBenchKernel::Atax, VariantKind::A);
  Program B = buildPolyBench(PolyBenchKernel::Atax, VariantKind::B);

  // Seed from the A variant (evolutionary search over recipes).
  std::printf("seeding database from '%s' (A variant)...\n",
              A.name().c_str());
  Eng.seedDatabase(A, Tune);
  for (const DatabaseEntry &Entry : Eng.database().entries())
    std::printf("  %-16s -> %s\n", Entry.Name.c_str(),
                Entry.Optimization.toString().c_str());

  // Apply to both variants.
  double TimeA =
      simulateProgram(Eng.schedule(A, Tune), Options.Sim).Seconds;
  double TimeB =
      simulateProgram(Eng.schedule(B, Tune), Options.Sim).Seconds;
  double RawA = simulateProgram(A, Options.Sim).Seconds;
  double RawB = simulateProgram(B, Options.Sim).Seconds;

  std::printf("\n%-22s  %12s  %12s\n", "", "A variant", "B variant");
  std::printf("%-22s  %12.6f  %12.6f\n", "unoptimized [s]", RawA, RawB);
  std::printf("%-22s  %12.6f  %12.6f\n", "daisy [s]", TimeA, TimeB);
  std::printf("\nA/B difference under daisy: %.1f%% (robustness: the "
              "recipes learned on A transfer to B)\n",
              100.0 * (TimeB - TimeA) / TimeA);
  return 0;
}
