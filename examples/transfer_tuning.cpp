//===- examples/transfer_tuning.cpp - the daisy database in action --------==//
//
// Part of the daisy project. MIT license.
//
// Seeds the transfer-tuning database from one benchmark's A variant (the
// evolutionary search of paper §4), then applies the learned recipes to
// the structurally different B variant: after normalization both reduce
// to the same canonical nests, so the recipes transfer.
//
//===----------------------------------------------------------------------===//

#include "frontends/PolyBench.h"
#include "machine/Simulator.h"
#include "sched/Schedulers.h"

#include <cstdio>

using namespace daisy;

int main() {
  SimOptions Options;
  Options.Threads = 8;
  SearchBudget Budget;
  Budget.MctsRollouts = 16;
  Budget.PopulationSize = 4;
  Budget.IterationsPerEpoch = 2;
  Budget.Epochs = 2;

  std::printf("=== transfer tuning: atax A -> atax B ===\n\n");
  Program A = buildPolyBench(PolyBenchKernel::Atax, VariantKind::A);
  Program B = buildPolyBench(PolyBenchKernel::Atax, VariantKind::B);

  // Seed from the A variant (evolutionary search over recipes).
  auto Db = std::make_shared<TransferTuningDatabase>();
  Rng Rand(42);
  std::printf("seeding database from '%s' (A variant)...\n",
              A.name().c_str());
  DaisyScheduler::seedDatabase(*Db, A, Options, Budget, Rand);
  for (const DatabaseEntry &Entry : Db->entries())
    std::printf("  %-16s -> %s\n", Entry.Name.c_str(),
                Entry.Optimization.toString().c_str());

  // Apply to both variants.
  DaisyScheduler Daisy(Db);
  double TimeA =
      simulateProgram(*Daisy.schedule(A), Options).Seconds;
  double TimeB =
      simulateProgram(*Daisy.schedule(B), Options).Seconds;
  double RawA = simulateProgram(A, Options).Seconds;
  double RawB = simulateProgram(B, Options).Seconds;

  std::printf("\n%-22s  %12s  %12s\n", "", "A variant", "B variant");
  std::printf("%-22s  %12.6f  %12.6f\n", "unoptimized [s]", RawA, RawB);
  std::printf("%-22s  %12.6f  %12.6f\n", "daisy [s]", TimeA, TimeB);
  std::printf("\nA/B difference under daisy: %.1f%% (robustness: the "
              "recipes learned on A transfer to B)\n",
              100.0 * (TimeB - TimeA) / TimeA);
  return 0;
}
