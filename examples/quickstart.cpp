//===- examples/quickstart.cpp - build, optimize, run ---------------------==//
//
// Part of the daisy project. MIT license.
//
// The five-minute tour of the public API: construct a loop nest in the
// IR, hand it to a daisy::Engine, and run the optimized daisy::Kernel on
// your own buffers — compile once, run many, from any number of threads.
// Build and run:
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/quickstart
//
//===----------------------------------------------------------------------===//

#include "api/Engine.h"
#include "ir/Builder.h"
#include "ir/Printer.h"
#include "machine/Simulator.h"
#include "support/Statistics.h"

#include <cstdio>
#include <vector>

using namespace daisy;

int main() {
  // 1. Build a program: GEMM written with the worst loop order (j, k, i),
  //    the kind of variant a developer might innocently produce.
  int N = 64;
  Program Prog("my_gemm");
  Prog.addArray("A", {N, N});
  Prog.addArray("B", {N, N});
  Prog.addArray("C", {N, N});
  Prog.append(forLoop(
      "j", 0, N,
      {forLoop("k", 0, N,
               {forLoop("i", 0, N,
                        {assign("S0", "C", {ax("i"), ax("j")},
                                read("C", {ax("i"), ax("j")}) +
                                    read("A", {ax("i"), ax("k")}) *
                                        read("B", {ax("k"), ax("j")}))})})}));
  std::printf("--- input program ---\n%s\n", printProgram(Prog).c_str());

  // 2. One Engine per process (or per machine configuration). It owns the
  //    plan cache, the transfer-tuning database, and the search evaluator.
  Engine Eng;

  // 3. Optimize end to end: a priori normalization (paper Fig. 5), BLAS-3
  //    idiom replacement, transfer tuning, and compilation in one call.
  //    The canonical form matches the GEMM idiom, so the nest becomes a
  //    library call.
  Kernel Optimized = Eng.optimize(Prog);
  std::printf("--- after daisy optimization ---\n%s\n",
              printProgram(Optimized.program()).c_str());

  // 4. Run the kernel on caller-owned storage — zero-copy. Bindings are
  //    validated against the program's array declarations, so a shape
  //    mismatch is a diagnostic, not UB.
  std::vector<double> A(N * N), B(N * N), C(N * N);
  for (int I = 0; I < N * N; ++I) {
    A[I] = 0.001 * I;
    B[I] = I % 7;
    C[I] = 0.0;
  }
  ArgBinding Args;
  Args.bind("A", A).bind("B", B).bind("C", C);
  if (RunStatus Status = Optimized.run(Args); !Status)
    std::printf("run failed: %s\n", Status.Error.c_str());
  std::printf("C[0][0] = %.6f, C[%d][%d] = %.6f\n", C[0], N - 1, N - 1,
              C[N * N - 1]);

  // 5. Compile-once, run-many: asking the engine again for the same
  //    program hits the plan cache instead of recompiling.
  Kernel Again = Eng.optimize(Prog);
  std::printf("\nplan cache: %lld compiles, %lld hits (handles share one "
              "kernel: %s)\n",
              static_cast<long long>(statsCounter("Engine.PlanCompiles")),
              static_cast<long long>(statsCounter("Engine.PlanCacheHits")),
              &Again.plan() == &Optimized.plan() ? "yes" : "no");

  // 6. Measure the schedule on the simulated machine.
  SimOptions Options;
  double Before = simulateProgram(Prog, Options).Seconds;
  double After = simulateProgram(Optimized.program(), Options).Seconds;
  std::printf("simulated runtime: %.6f s -> %.6f s  (%.1fx)\n", Before,
              After, Before / After);
  return 0;
}
