//===- examples/quickstart.cpp - build, normalize, schedule, measure ------==//
//
// Part of the daisy project. MIT license.
//
// The five-minute tour: construct a loop nest in the IR, normalize it,
// let the daisy auto-scheduler optimize it, and compare simulated
// runtimes. Build and run:
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "ir/Builder.h"
#include "ir/Printer.h"
#include "machine/Simulator.h"
#include "normalize/Pipeline.h"
#include "sched/Schedulers.h"

#include <cstdio>

using namespace daisy;

int main() {
  // 1. Build a program: GEMM written with the worst loop order (j, k, i),
  //    the kind of variant a developer might innocently produce.
  int N = 64;
  Program Prog("my_gemm");
  Prog.addArray("A", {N, N});
  Prog.addArray("B", {N, N});
  Prog.addArray("C", {N, N});
  Prog.append(forLoop(
      "j", 0, N,
      {forLoop("k", 0, N,
               {forLoop("i", 0, N,
                        {assign("S0", "C", {ax("i"), ax("j")},
                                read("C", {ax("i"), ax("j")}) +
                                    read("A", {ax("i"), ax("k")}) *
                                        read("B", {ax("k"), ax("j")}))})})}));
  std::printf("--- input program ---\n%s\n", printProgram(Prog).c_str());

  // 2. Normalize: maximal fission + stride minimization (paper Fig. 5).
  NormalizationStats Stats;
  Program Norm = normalize(Prog, {}, &Stats);
  std::printf("--- after a priori normalization ---\n%s\n",
              printProgram(Norm).c_str());
  std::printf("(nests permuted: %d, permutations enumerated: %d)\n\n",
              Stats.StrideMin.NestsPermuted,
              Stats.StrideMin.EnumeratedPermutations);

  // 3. Schedule with daisy: the canonical form matches the BLAS-3 GEMM
  //    idiom, so the nest becomes a library call.
  auto Db = std::make_shared<TransferTuningDatabase>();
  DaisyScheduler Daisy(Db);
  Program Scheduled = *Daisy.schedule(Prog);
  std::printf("--- after daisy scheduling ---\n%s\n",
              printProgram(Scheduled).c_str());

  // 4. Measure on the simulated machine.
  SimOptions Options;
  double Before = simulateProgram(Prog, Options).Seconds;
  double After = simulateProgram(Scheduled, Options).Seconds;
  std::printf("simulated runtime: %.6f s -> %.6f s  (%.1fx)\n", Before,
              After, Before / After);
  return 0;
}
