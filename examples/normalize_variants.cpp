//===- examples/normalize_variants.cpp - canonical forms ------------------==//
//
// Part of the daisy project. MIT license.
//
// Demonstrates the core claim of the paper: structurally different but
// semantically equivalent loop nests map to the *same* canonical form.
// All six GEMM loop orders and the fused Fig. 3a example are normalized
// and their canonical structural hashes compared.
//
//===----------------------------------------------------------------------===//

#include "analysis/Stride.h"
#include "ir/Builder.h"
#include "ir/Printer.h"
#include "ir/StructuralHash.h"
#include "normalize/Pipeline.h"

#include <cstdio>

using namespace daisy;

namespace {

Program makeGemmOrder(const std::string &O1, const std::string &O2,
                      const std::string &O3) {
  int N = 32;
  Program Prog("gemm_" + O1 + O2 + O3);
  Prog.addArray("A", {N, N});
  Prog.addArray("B", {N, N});
  Prog.addArray("C", {N, N});
  Prog.append(forLoop(
      O1, 0, N,
      {forLoop(O2, 0, N,
               {forLoop(O3, 0, N,
                        {assign("S0", "C", {ax("i"), ax("j")},
                                read("C", {ax("i"), ax("j")}) +
                                    read("A", {ax("i"), ax("k")}) *
                                        read("B", {ax("k"), ax("j")}))})})}));
  return Prog;
}

} // namespace

int main() {
  std::printf("=== one canonical form for all GEMM loop orders ===\n\n");
  std::printf("%-10s  %18s  %18s  %12s\n", "order", "input hash",
              "canonical hash", "stride cost");
  const char *Orders[6][3] = {{"i", "j", "k"}, {"i", "k", "j"},
                              {"j", "i", "k"}, {"j", "k", "i"},
                              {"k", "i", "j"}, {"k", "j", "i"}};
  uint64_t FirstHash = 0;
  for (const auto &Order : Orders) {
    Program Prog = makeGemmOrder(Order[0], Order[1], Order[2]);
    Program Norm = normalize(Prog);
    uint64_t H = structuralHash(Norm);
    if (!FirstHash)
      FirstHash = H;
    std::printf("%s%s%s         %18llx  %18llx  %12.0f\n", Order[0],
                Order[1], Order[2],
                static_cast<unsigned long long>(structuralHash(Prog)),
                static_cast<unsigned long long>(H),
                sumOfStridesCost(Norm.topLevel()[0], Norm));
    if (H != FirstHash)
      std::printf("  ^^ MISMATCH (unexpected)\n");
  }
  std::printf("\nAll six canonical hashes agree: one optimization recipe "
              "now covers every variant.\n\n");

  // The paper's Fig. 3 walkthrough: fission, then stride minimization.
  std::printf("=== Fig. 3 walkthrough ===\n\n");
  int N = 16;
  Program Fig3("fig3");
  Fig3.addArray("A", {N, N});
  Fig3.addArray("B", {N, N});
  Fig3.append(forLoop(
      "i", 0, N,
      {forLoop("j", 0, N,
               {assign("S1", "A", {ax("i"), ax("j")},
                       read("A", {ax("i"), ax("j")}) + lit(1.0)),
                assign("S2", "B", {ax("j"), ax("i")},
                       read("B", {ax("j"), ax("i")}) * lit(2.0))})}));
  std::printf("-- input (Fig. 3a): one nest, contiguous + strided "
              "accesses --\n%s\n",
              printProgram(Fig3).c_str());
  Program Norm = normalize(Fig3);
  std::printf("-- normalized (Fig. 3b + 3c): fissioned, second nest "
              "permuted --\n%s\n",
              printProgram(Norm).c_str());
  return 0;
}
