//===- tests/MachineTest.cpp - cache sim & cost model tests ----------------==//
//
// Part of the daisy project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "machine/Simulator.h"
#include "analysis/Legality.h"
#include "ir/Builder.h"
#include "transform/Parallelize.h"
#include "transform/Permute.h"
#include "transform/Tile.h"

#include <gtest/gtest.h>

using namespace daisy;

namespace {

Program makeGemmVariant(const std::string &O1, const std::string &O2,
                        const std::string &O3, int N) {
  Program Prog("gemm");
  Prog.addArray("A", {N, N});
  Prog.addArray("B", {N, N});
  Prog.addArray("C", {N, N});
  Prog.append(forLoop(
      O1, 0, N,
      {forLoop(O2, 0, N,
               {forLoop(O3, 0, N,
                        {assign("S0", "C", {ax("i"), ax("j")},
                                read("C", {ax("i"), ax("j")}) +
                                    read("A", {ax("i"), ax("k")}) *
                                        read("B", {ax("k"), ax("j")}))})})}));
  return Prog;
}

} // namespace

//===----------------------------------------------------------------------===//
// Cache simulator
//===----------------------------------------------------------------------===//

TEST(CacheSimTest, ColdMissesThenHits) {
  CacheLevel L1(CacheConfig{1024, 2, 64}); // 16 lines, 8 sets
  EXPECT_FALSE(L1.access(0));
  EXPECT_TRUE(L1.access(8));  // same line
  EXPECT_TRUE(L1.access(63)); // same line
  EXPECT_FALSE(L1.access(64));
  EXPECT_EQ(L1.counters().Loads, 4);
  EXPECT_EQ(L1.counters().Hits, 2);
  EXPECT_EQ(L1.counters().Misses, 2);
  EXPECT_EQ(L1.counters().Evictions, 0);
}

TEST(CacheSimTest, LruEvictionWithinSet) {
  // 2-way, 64B lines, 2 sets -> set = line % 2. Lines 0, 2, 4 all map to
  // set 0; the third fill evicts line 0.
  CacheLevel L(CacheConfig{256, 2, 64});
  L.access(0 * 64);
  L.access(2 * 64);
  L.access(4 * 64); // evicts line 0
  EXPECT_EQ(L.counters().Evictions, 1);
  EXPECT_FALSE(L.access(0 * 64)); // line 0 is gone
}

TEST(CacheSimTest, LruKeepsRecentlyUsed) {
  CacheLevel L(CacheConfig{256, 2, 64});
  L.access(0 * 64);
  L.access(2 * 64);
  L.access(0 * 64); // refresh line 0
  L.access(4 * 64); // evicts line 2 (LRU), not line 0
  EXPECT_TRUE(L.access(0 * 64));
  EXPECT_FALSE(L.access(2 * 64));
}

TEST(CacheSimTest, StreamingMissesEveryLine) {
  CacheLevel L(CacheConfig{8 * 1024, 8, 64});
  int64_t Lines = 1000;
  for (int64_t I = 0; I < Lines * 8; ++I)
    L.access(I * 8); // sequential doubles
  // Exactly one miss per 64B line.
  EXPECT_EQ(L.counters().Misses, Lines);
  EXPECT_EQ(L.counters().Hits, Lines * 8 - Lines);
}

TEST(CacheSimTest, CapacityMonotonicity) {
  // A bigger cache never misses more on the same trace (fully-assoc LRU
  // inclusion property; holds here since both are LRU with same sets
  // scaled by ways).
  auto runTrace = [](const CacheConfig &Config) {
    CacheLevel L(Config);
    // Repeated sweep over a 16KB working set.
    for (int Rep = 0; Rep < 4; ++Rep)
      for (int64_t Addr = 0; Addr < 16 * 1024; Addr += 8)
        L.access(Addr);
    return L.counters().Misses;
  };
  int64_t SmallMisses = runTrace(CacheConfig{4 * 1024, 4, 64});
  int64_t BigMisses = runTrace(CacheConfig{32 * 1024, 4, 64});
  EXPECT_LE(BigMisses, SmallMisses);
}

TEST(CacheSimTest, HierarchyForwardsMisses) {
  // L1: 16 lines, 8 sets, 2-way. L2: 128 lines, 32 sets, 4-way.
  MemoryHierarchy H({CacheConfig{1024, 2, 64}, CacheConfig{8 * 1024, 4, 64}});
  EXPECT_EQ(H.access(0), 2);  // cold: memory
  EXPECT_EQ(H.access(0), 0);  // L1 hit
  // Lines 8, 16, 24, 32 all map to L1 set 0 and push line 0 out of the
  // 2-way L1 set, while L2 set 0 only receives lines 0 and 32.
  for (int64_t I = 1; I <= 4; ++I)
    H.access(I * 512);
  int Level = H.access(0);
  EXPECT_EQ(Level, 1); // out of L1, still in L2
}

TEST(CacheSimTest, ResetClearsState) {
  MemoryHierarchy H(defaultCacheHierarchy());
  H.access(128);
  H.reset();
  EXPECT_EQ(H.level(0).counters().Loads, 0);
  EXPECT_EQ(H.access(128), static_cast<int>(H.levels())); // cold again
}

//===----------------------------------------------------------------------===//
// Cost model
//===----------------------------------------------------------------------===//

TEST(SimulatorTest, FlopCountExact) {
  Program Prog = makeGemmVariant("i", "j", "k", 16);
  SimOptions Options;
  SimReport Report = simulateProgram(Prog, Options);
  EXPECT_EQ(Report.Flops, 2LL * 16 * 16 * 16);
  EXPECT_GT(Report.Seconds, 0.0);
}

TEST(SimulatorTest, Deterministic) {
  Program Prog = makeGemmVariant("i", "j", "k", 24);
  SimOptions Options;
  SimReport R1 = simulateProgram(Prog, Options);
  SimReport R2 = simulateProgram(Prog, Options);
  EXPECT_EQ(R1.Cycles, R2.Cycles);
  EXPECT_EQ(R1.Cache[0].Misses, R2.Cache[0].Misses);
}

TEST(SimulatorTest, LoopOrderMatters) {
  // j-innermost (unit stride on B and C) must beat i-innermost (column
  // strides everywhere) significantly — the Figure 1 effect.
  int N = 64;
  double GoodTime = simulatedSeconds(makeGemmVariant("i", "k", "j", N));
  double BadTime = simulatedSeconds(makeGemmVariant("j", "k", "i", N));
  EXPECT_GT(BadTime, GoodTime * 2.0);
}

TEST(SimulatorTest, VectorizationSpeedsUp) {
  int N = 32;
  Program Scalar = makeGemmVariant("i", "k", "j", N);
  Program Vector = Scalar.clone();
  auto Band = perfectNestBand(Vector.topLevel()[0]);
  Band.back()->setVectorized(true);
  double ScalarTime = simulatedSeconds(Scalar);
  double VectorTime = simulatedSeconds(Vector);
  EXPECT_LT(VectorTime, ScalarTime);
}

TEST(SimulatorTest, ParallelSpeedupAndSyncOverhead) {
  int N = 48;
  Program Prog = makeGemmVariant("i", "k", "j", N);
  auto Band = perfectNestBand(Prog.topLevel()[0]);
  Band[0]->setParallel(true);
  SimOptions Seq, Par;
  Seq.Threads = 1;
  Par.Threads = 8;
  double SeqTime = simulateProgram(Prog, Seq).Seconds;
  double ParTime = simulateProgram(Prog, Par).Seconds;
  EXPECT_LT(ParTime, SeqTime);
  EXPECT_GT(ParTime, SeqTime / 8.0); // overhead + efficiency loss
}

TEST(SimulatorTest, AtomicReductionIsExpensive) {
  int N = 64;
  Program Prog("red");
  Prog.addArray("A", {N});
  Prog.addArray("s", {});
  Prog.append(forLoop("i", 0, N,
                      {assignScalar("S0", "s",
                                    read("s") + read("A", {ax("i")}))}));
  auto *L = dynCast<Loop>(Prog.topLevel()[0]);
  double PlainTime = simulatedSeconds(Prog);
  L->setParallel(true);
  L->setAtomicReduction(true);
  SimOptions Par;
  Par.Threads = 8;
  double AtomicTime = simulateProgram(Prog, Par).Seconds;
  EXPECT_GT(AtomicTime, PlainTime); // atomics beat any parallel gain
}

TEST(SimulatorTest, BlasCallNearPeak) {
  int N = 128;
  Program Call("gemm_call");
  Call.addArray("A", {N, N});
  Call.addArray("B", {N, N});
  Call.addArray("C", {N, N});
  Call.append(std::make_shared<CallNode>(
      BlasKind::Gemm, std::vector<std::string>{"C", "A", "B"},
      std::vector<int64_t>{N, N, N}));
  SimOptions Options;
  SimReport Report = simulateProgram(Call, Options);
  double Peak = machinePeakMflops(Options.Cpu, 1);
  EXPECT_GT(Report.mflops(), 0.5 * Peak);
  EXPECT_LE(Report.mflops(), Peak);

  // And it must handily beat the naive loop nest.
  double LoopTime = simulatedSeconds(makeGemmVariant("i", "j", "k", N));
  EXPECT_LT(Report.Seconds, LoopTime / 4.0);
}

TEST(SimulatorTest, TilingReducesMisses) {
  // GEMM whose B operand (72KB) exceeds the 64KB L2: untiled k-innermost
  // sweeps B per (i, j) and thrashes L2; 16^3 tiles restore reuse.
  int N = 96;
  Program Prog = makeGemmVariant("i", "j", "k", N);
  SimOptions Options;
  SimReport Untiled = simulateProgram(Prog, Options);
  Program Tiled = Prog.clone();
  Tiled.topLevel()[0] = tileBand(Prog.topLevel()[0], {16, 16, 16},
                                 Prog.params());
  SimReport TiledReport = simulateProgram(Tiled, Options);
  EXPECT_LT(TiledReport.Cache[1].Misses, Untiled.Cache[1].Misses);
}

TEST(SimulatorTest, PeakMflopsFormula) {
  CpuConfig Cpu;
  EXPECT_DOUBLE_EQ(machinePeakMflops(Cpu, 1), 2.5e9 * 16.0 / 1e6);
  EXPECT_DOUBLE_EQ(machinePeakMflops(Cpu, 12), 12 * 2.5e9 * 16.0 / 1e6);
}
