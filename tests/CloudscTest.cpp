//===- tests/CloudscTest.cpp - CLOUDSC proxy tests -------------------------==//
//
// Part of the daisy project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "cloudsc/Cloudsc.h"
#include "exec/Interpreter.h"
#include "ir/Builder.h"
#include "ir/Validate.h"
#include "machine/Simulator.h"
#include "transform/Cse.h"
#include "transform/Parallelize.h"

#include <gtest/gtest.h>

using namespace daisy;

namespace {

CloudscConfig smallConfig() {
  CloudscConfig Config;
  Config.Nproma = 16;
  Config.Klev = 6;
  Config.Nblocks = 2;
  return Config;
}

} // namespace

TEST(CseTest, MergesDuplicateNests) {
  Program Prog("cse");
  int N = 16;
  Prog.addArray("X", {N});
  Prog.addArray("T1", {N}, /*Transient=*/true);
  Prog.addArray("T2", {N}, /*Transient=*/true);
  Prog.addArray("Y", {N});
  auto MakeNest = [&](const std::string &Dst) {
    return forLoop("i", 0, N,
                   {assign("S", Dst, {ax("i")},
                           read("X", {ax("i")}) * read("X", {ax("i")}) +
                               lit(1.0))});
  };
  Prog.append(MakeNest("T1"));
  Prog.append(MakeNest("T2"));
  Prog.append(forLoop("i", 0, N,
                      {assign("S2", "Y", {ax("i")},
                              read("T1", {ax("i")}) +
                                  read("T2", {ax("i")}))}));
  Program Original = Prog.clone();
  int Removed = eliminateCommonNests(Prog.topLevel(), Prog);
  EXPECT_EQ(Removed, 1);
  EXPECT_EQ(Prog.topLevel().size(), 2u);
  EXPECT_TRUE(semanticallyEquivalent(Original, Prog));
}

TEST(CseTest, DoesNotMergeAcrossClobber) {
  Program Prog("cse");
  int N = 8;
  Prog.addArray("X", {N});
  Prog.addArray("T1", {N}, /*Transient=*/true);
  Prog.addArray("T2", {N}, /*Transient=*/true);
  auto MakeNest = [&](const std::string &Dst) {
    return forLoop("i", 0, N,
                   {assign("S", Dst, {ax("i")},
                           read("X", {ax("i")}) + lit(1.0))});
  };
  Prog.append(MakeNest("T1"));
  // X changes between the two candidates.
  Prog.append(forLoop("i", 0, N,
                      {assign("SX", "X", {ax("i")},
                              read("X", {ax("i")}) * lit(2.0))}));
  Prog.append(MakeNest("T2"));
  EXPECT_EQ(eliminateCommonNests(Prog.topLevel(), Prog), 0);
}

TEST(CloudscTest, ProgramsValid) {
  CloudscConfig Config = smallConfig();
  EXPECT_TRUE(isValid(buildErosionKernel(Config)));
  for (CloudscVariant V : {CloudscVariant::Fortran, CloudscVariant::C,
                           CloudscVariant::DaCe})
    EXPECT_TRUE(isValid(buildCloudsc(Config, V)));
}

TEST(CloudscTest, VariantsSemanticallyEquivalent) {
  CloudscConfig Config = smallConfig();
  Program Fortran = buildCloudsc(Config, CloudscVariant::Fortran);
  Program C = buildCloudsc(Config, CloudscVariant::C);
  Program DaCe = buildCloudsc(Config, CloudscVariant::DaCe);
  EXPECT_TRUE(semanticallyEquivalent(Fortran, C, 1e-9));
  EXPECT_TRUE(semanticallyEquivalent(Fortran, DaCe, 1e-9));
}

TEST(CloudscTest, OptimizePreservesSemantics) {
  CloudscConfig Config = smallConfig();
  Program Fortran = buildCloudsc(Config, CloudscVariant::Fortran);
  Program Optimized = optimizeCloudsc(Fortran);
  EXPECT_TRUE(isValid(Optimized));
  EXPECT_TRUE(semanticallyEquivalent(Fortran, Optimized, 1e-9));
}

TEST(CloudscTest, OptimizeErosionPreservesSemantics) {
  CloudscConfig Config = smallConfig();
  Program Erosion = buildErosionKernel(Config);
  Program Optimized = optimizeCloudsc(Erosion);
  EXPECT_TRUE(semanticallyEquivalent(Erosion, Optimized, 1e-9));
}

TEST(CloudscTest, CseRemovesDuplicatedSaturationChain) {
  // The optimized erosion kernel executes fewer flops: the duplicated
  // FOEEWM chain is merged.
  CloudscConfig Config;
  Config.Nproma = 32;
  Config.Klev = 4;
  Program Erosion = buildErosionKernel(Config);
  Program Optimized = optimizeCloudsc(Erosion);
  EXPECT_LT(Optimized.totalFlops(), Erosion.totalFlops());
}

TEST(CloudscTest, Table1Shape) {
  // Runtime and L1 traffic of the optimized erosion kernel improve, the
  // headline of the paper's Table 1.
  CloudscConfig Config;
  Config.Nproma = 128;
  Config.Klev = 16; // enough levels for steady state
  Program Erosion = buildErosionKernel(Config);
  Program Optimized = optimizeCloudsc(Erosion);
  SimOptions Options;
  SimReport Before = simulateProgram(Erosion, Options);
  SimReport After = simulateProgram(Optimized, Options);
  EXPECT_LT(After.Seconds, Before.Seconds / 1.5);
  EXPECT_LT(After.Cache[0].Loads, Before.Cache[0].Loads);
}

TEST(CloudscTest, OptimizedIsVectorizedAndParallel) {
  CloudscConfig Config;
  Config.Nproma = 64; // large enough for profitable block parallelism
  Config.Klev = 12;
  Config.Nblocks = 4;
  Program Optimized =
      optimizeCloudsc(buildCloudsc(Config, CloudscVariant::Fortran));
  bool AnyVector = false, AnyParallel = false;
  for (const NodePtr &Node : Optimized.topLevel())
    for (const auto &L : collectLoops(Node)) {
      AnyVector |= L->isVectorized();
      AnyParallel |= L->isParallel();
    }
  EXPECT_TRUE(AnyVector);
  EXPECT_TRUE(AnyParallel);
}

TEST(CloudscTest, FullModelRuntimeOrder) {
  // Sequential: daisy <= Fortran <= C and DaCe slower than Fortran (the
  // Fig. 11 ordering).
  CloudscConfig Config;
  Config.Nproma = 64;
  Config.Klev = 24;
  Config.Nblocks = 2;
  SimOptions Options;
  auto TimeOf = [&](Program P) {
    // Baselines are compiled with vectorization (their compilers do).
    for (const NodePtr &Node : P.topLevel())
      vectorizeInnermostUnitStride(Node, P);
    return simulateProgram(P, Options).Seconds;
  };
  double Fortran =
      TimeOf(buildCloudsc(Config, CloudscVariant::Fortran));
  double C = TimeOf(buildCloudsc(Config, CloudscVariant::C));
  double DaCe = TimeOf(buildCloudsc(Config, CloudscVariant::DaCe));
  Program Daisy =
      optimizeCloudsc(buildCloudsc(Config, CloudscVariant::Fortran));
  double DaisyTime = simulateProgram(Daisy, Options).Seconds;
  EXPECT_LT(DaisyTime, Fortran);
  EXPECT_LT(Fortran, C);
  EXPECT_LT(Fortran, DaCe);
}
