//===- tests/ServeTest.cpp - serving-runtime tests -------------------------==//
//
// Part of the daisy project. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The serving runtime's contracts (this suite runs under ThreadSanitizer
// in CI, DAISY_THREADS=4):
//
// - submit-storm bit-identity: results of async submission are identical
//   to synchronous Kernel::run at every shard count, worker count, and
//   batching setting;
// - validate-once BoundArgs: one bind, many string-compare-free runs;
//   handles bound against a different kernel are rejected as stale, not
//   executed;
// - backpressure: a full queue rejects with RunStatus::Overloaded under
//   the Reject policy and absorbs the burst under Block;
// - graceful shutdown: destroying a server with queued and in-flight
//   requests completes every future;
// - counters: Serve.Submitted == Serve.Completed + Serve.Rejected +
//   Serve.Expired after drain; micro-batching shows up in
//   Serve.BatchedRuns only when on;
// - scheduling policies: FIFO, priority-lane, EDF, and FairShare pop in
//   their contractual orders (observed via Request::Seq, no timing
//   races); FairShare interleaves tenants by deficit-weighted
//   round-robin and keeps a minority tenant at its fair completion
//   share under a flood;
// - tenant quotas: a tenant at quota sheds its own overflow while other
//   tenants keep their headroom, and the per-tenant counters hold
//   Submitted == Completed + Rejected + Expired after drain;
// - work stealing: with QueueShards > 1 a lane whose home shard is cold
//   steals batches from hot siblings (Serve.StolenBatches) with
//   bit-identical results;
// - watchdog: a lane stalled inside a kernel dispatch is counted
//   (Serve.DispatchStalls), never reclaimed mid-run;
// - deadlines: expired work is shed at admission or pop, never runs, and
//   drain() still completes every future;
// - retries: transient Overloaded rejections are absorbed by
//   SubmitOptions{MaxRetries, Backoff} (equal-jittered).
//
//===----------------------------------------------------------------------===//

#include "serve/Server.h"

#include "exec/Interpreter.h"
#include "ir/Builder.h"
#include "support/Statistics.h"

#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <string>
#include <thread>
#include <vector>

using namespace daisy;
using namespace daisy::serve;

namespace {

/// GEMM with a chosen loop order (the canonical many-variants program).
Program makeGemm(const std::string &O1, const std::string &O2,
                 const std::string &O3, int N) {
  Program Prog("gemm_" + O1 + O2 + O3);
  Prog.addArray("A", {N, N});
  Prog.addArray("B", {N, N});
  Prog.addArray("C", {N, N});
  Prog.append(forLoop(
      O1, 0, N,
      {forLoop(O2, 0, N,
               {forLoop(O3, 0, N,
                        {assign("S0", "C", {ax("i"), ax("j")},
                                read("C", {ax("i"), ax("j")}) +
                                    read("A", {ax("i"), ax("k")}) *
                                        read("B", {ax("k"), ax("j")}))})})}));
  return Prog;
}

/// Two-nest program with a kernel-managed transient temporary.
Program makeTransientProgram(int N) {
  Program Prog("transient");
  Prog.addArray("In", {N});
  Prog.addArray("Out", {N});
  Prog.addArray("Tmp", {N}, /*Transient=*/true);
  Prog.append(forLoop("i", 0, N,
                      {assign("S0", "Tmp", {ax("i")},
                              read("In", {ax("i")}) * lit(2.0))}));
  Prog.append(forLoop("i", 0, N,
                      {assign("S1", "Out", {ax("i")},
                              read("Tmp", {ax("i")}) + lit(1.0))}));
  return Prog;
}

/// Caller-owned argument storage for one request, initialized like a
/// deterministic DataEnv so results are comparable across paths.
struct OwnedArgs {
  std::vector<std::pair<std::string, std::vector<double>>> Buffers;

  explicit OwnedArgs(const Program &Prog, uint64_t Seed = 1) {
    DataEnv Env(Prog);
    Env.initDeterministic(Seed);
    for (const ArrayDecl &Decl : Prog.arrays())
      if (!Decl.Transient)
        Buffers.emplace_back(Decl.Name, Env.buffer(Decl.Name));
  }

  ArgBinding binding() {
    ArgBinding Args;
    for (auto &[Name, Storage] : Buffers)
      Args.bind(Name, Storage);
    return Args;
  }
};

/// A kernel that keeps one worker busy for a few milliseconds — long
/// enough that a handful of microsecond-scale submits are guaranteed to
/// land while it is still running.
Kernel makePlugKernel() {
  static Program Prog = makeGemm("i", "j", "k", 160);
  return Kernel::compile(Prog);
}

/// Spin until the worker has picked up everything queued so far.
void waitUntilQueueEmpty(Server &S) {
  while (S.queueDepth() != 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
}

} // namespace

//===----------------------------------------------------------------------===//
// BoundArgs: validate once, run many
//===----------------------------------------------------------------------===//

TEST(BoundArgsTest, BindValidatesOnceAndRunsMatchArgBinding) {
  Program Prog = makeGemm("i", "j", "k", 12);
  Kernel K = Kernel::compile(Prog);

  OwnedArgs Sync(Prog, 7);
  ASSERT_TRUE(K.run(Sync.binding()));

  OwnedArgs Prepared(Prog, 7);
  BoundArgs Bound = K.bind(Prepared.binding());
  ASSERT_TRUE(Bound.ok());
  EXPECT_EQ(Bound.slots().size(), Prog.arrays().size());
  ASSERT_TRUE(K.run(Bound));
  EXPECT_EQ(Prepared.Buffers, Sync.Buffers);

  // The handle is reusable: a second run through the same BoundArgs sees
  // the same semantics (C accumulates, so refill first).
  OwnedArgs Fresh(Prog, 7);
  Prepared.Buffers = Fresh.Buffers; // restore inputs; pointers unchanged?
  // Vector assignment may reallocate — rebind to be pointer-correct.
  Bound = K.bind(Prepared.binding());
  ASSERT_TRUE(K.run(Bound));
  EXPECT_EQ(Prepared.Buffers, Sync.Buffers);
}

TEST(BoundArgsTest, TransientProgramPreparedRunsAreExact) {
  Program Prog = makeTransientProgram(32);
  Kernel K = Kernel::compile(Prog);
  std::vector<double> In(32, 3.0), Out(32, 0.0);
  BoundArgs Bound = K.bind(ArgBinding().bind("In", In).bind("Out", Out));
  ASSERT_TRUE(Bound.ok());
  ASSERT_TRUE(K.run(Bound));
  std::vector<double> First = Out;
  // Re-run through the pooled (now dirty) context: transient scratch is
  // re-zeroed, results identical.
  ASSERT_TRUE(K.run(Bound));
  EXPECT_EQ(Out, First);
  EXPECT_EQ(Out[0], 3.0 * 2.0 + 1.0);
}

TEST(BoundArgsTest, FailedValidationYieldsNonOkHandle) {
  Kernel K = Kernel::compile(makeGemm("i", "j", "k", 8));
  std::vector<double> A(64), B(64);
  BoundArgs Bound = K.bind(ArgBinding().bind("A", A).bind("B", B));
  EXPECT_FALSE(Bound.ok());
  EXPECT_NE(Bound.error().find("not bound"), std::string::npos);
  EXPECT_EQ(Bound.kernelToken(), nullptr);

  RunStatus Status = K.run(Bound);
  EXPECT_FALSE(Status.ok());
  EXPECT_EQ(Status.Why, RunStatus::BindError);
  EXPECT_NE(Status.Error.find("not bound"), std::string::npos);
}

TEST(BoundArgsTest, StaleRebindAgainstOtherKernelIsRejected) {
  Program Prog = makeGemm("i", "j", "k", 8);
  // Two distinct compilations of the same program: structurally equal,
  // but slot tables must not transfer between kernel instances.
  Kernel KA = Kernel::compile(Prog);
  Kernel KB = Kernel::compile(Prog);
  OwnedArgs Args(Prog);
  BoundArgs Bound = KA.bind(Args.binding());
  ASSERT_TRUE(Bound.ok());
  EXPECT_NE(Bound.kernelToken(), nullptr);

  RunStatus Stale = KB.run(Bound);
  EXPECT_FALSE(Stale.ok());
  EXPECT_EQ(Stale.Why, RunStatus::BindError);
  EXPECT_NE(Stale.Error.find("different kernel"), std::string::npos);

  // The owning kernel still accepts the handle.
  EXPECT_TRUE(KA.run(Bound));
}

TEST(BoundArgsTest, DefaultHandleIsRejected) {
  Kernel K = Kernel::compile(makeGemm("i", "j", "k", 8));
  RunStatus Status = K.run(BoundArgs());
  EXPECT_FALSE(Status.ok());
  EXPECT_NE(Status.Error.find("unbound"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Submit storm: bit-identity across shard/worker/batch configurations
//===----------------------------------------------------------------------===//

namespace {

void submitStorm(size_t Shards, size_t MaxBatch) {
  std::vector<Program> Programs;
  Programs.push_back(makeGemm("i", "j", "k", 12));
  Programs.push_back(makeGemm("j", "k", "i", 12));
  Programs.push_back(makeTransientProgram(64));

  ServerOptions Options;
  Options.Shards = Shards;
  Options.Workers = 4;
  Options.QueueCapacity = 256;
  Options.MaxBatch = MaxBatch;
  Server S(Options);

  std::vector<Kernel> Kernels;
  for (const Program &Prog : Programs)
    Kernels.push_back(S.compile(Prog));

  // Synchronous references.
  std::vector<OwnedArgs> Expected;
  for (size_t P = 0; P < Programs.size(); ++P) {
    Expected.emplace_back(Programs[P], 5);
    ASSERT_TRUE(Kernels[P].run(Expected.back().binding()));
  }

  constexpr int Threads = 4;
  constexpr int Reps = 6;
  std::vector<int> Mismatches(Threads, 0);
  std::vector<std::thread> Submitters;
  for (int T = 0; T < Threads; ++T)
    Submitters.emplace_back([&, T] {
      // Every request owns its buffers for the whole round trip.
      std::vector<std::unique_ptr<OwnedArgs>> Owned;
      std::vector<size_t> Kind;
      std::vector<std::future<RunStatus>> Futures;
      for (int R = 0; R < Reps; ++R)
        for (size_t P = 0; P < Programs.size(); ++P) {
          Owned.push_back(std::make_unique<OwnedArgs>(Programs[P], 5));
          Kind.push_back(P);
          BoundArgs Bound = Kernels[P].bind(Owned.back()->binding());
          if (!Bound.ok()) {
            ++Mismatches[T];
            continue;
          }
          Futures.push_back(S.submit(Kernels[P], std::move(Bound)));
        }
      for (size_t I = 0; I < Futures.size(); ++I) {
        RunStatus Status = Futures[I].get();
        if (!Status.ok() ||
            Owned[I]->Buffers != Expected[Kind[I]].Buffers)
          ++Mismatches[T];
      }
    });
  for (std::thread &W : Submitters)
    W.join();
  for (int T = 0; T < Threads; ++T)
    EXPECT_EQ(Mismatches[T], 0) << "submitter " << T;

  S.drain();
  EXPECT_EQ(S.queueDepth(), 0u);
}

} // namespace

TEST(ServeStormTest, OneShardUnbatched) { submitStorm(1, 1); }
TEST(ServeStormTest, OneShardBatched) { submitStorm(1, 8); }
TEST(ServeStormTest, TwoShardsUnbatched) { submitStorm(2, 1); }
TEST(ServeStormTest, TwoShardsBatched) { submitStorm(2, 8); }

//===----------------------------------------------------------------------===//
// Shard routing
//===----------------------------------------------------------------------===//

TEST(ServeShardTest, RoutingIsStableAndCachesStayShardLocal) {
  ServerOptions Options;
  Options.Shards = 2;
  Options.Workers = 1;
  Server S(Options);
  Program Prog = makeGemm("i", "j", "k", 10);

  resetStatsCounters();
  Kernel K1 = S.compile(Prog);
  Kernel K2 = S.compile(Prog);
  // Same routing key -> same shard -> one compile, one shared kernel.
  EXPECT_EQ(statsCounter("Engine.PlanCompiles"), 1);
  EXPECT_EQ(&K1.plan(), &K2.plan());
  EXPECT_EQ(&S.shardFor(Prog), &S.shardFor(Prog));
}

//===----------------------------------------------------------------------===//
// Backpressure
//===----------------------------------------------------------------------===//

TEST(ServeBackpressureTest, RejectPolicyFailsFastWithOverloaded) {
  resetStatsCounters();
  ServerOptions Options;
  Options.Workers = 1;
  Options.QueueCapacity = 4;
  Options.Policy = BackpressurePolicy::Reject;
  Options.MaxBatch = 1;
  Server S(Options);

  Kernel Plug = makePlugKernel();
  OwnedArgs PlugArgs(Plug.program());
  std::future<RunStatus> PlugDone =
      S.submit(Plug, Plug.bind(PlugArgs.binding()));
  // Wait until the single worker has taken the plug off the queue; it
  // now executes for milliseconds while we fill the queue in
  // microseconds.
  waitUntilQueueEmpty(S);

  Program Small = makeGemm("i", "j", "k", 8);
  Kernel K = S.compile(Small);
  std::vector<std::unique_ptr<OwnedArgs>> Owned;
  std::vector<std::future<RunStatus>> Accepted;
  for (size_t I = 0; I < Options.QueueCapacity; ++I) {
    Owned.push_back(std::make_unique<OwnedArgs>(Small));
    Accepted.push_back(S.submit(K, K.bind(Owned.back()->binding())));
  }
  // The queue is now full and the worker is still inside the plug: the
  // next submit must be rejected immediately.
  Owned.push_back(std::make_unique<OwnedArgs>(Small));
  std::future<RunStatus> Rejected =
      S.submit(K, K.bind(Owned.back()->binding()));
  ASSERT_EQ(Rejected.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  RunStatus Status = Rejected.get();
  EXPECT_FALSE(Status.ok());
  EXPECT_EQ(Status.Why, RunStatus::Overloaded);

  S.drain();
  EXPECT_TRUE(PlugDone.get().ok());
  for (auto &F : Accepted)
    EXPECT_TRUE(F.get().ok());
  EXPECT_EQ(statsCounter("Serve.Rejected"), 1);
  EXPECT_EQ(statsCounter("Serve.Submitted"),
            statsCounter("Serve.Completed") + statsCounter("Serve.Rejected") +
                statsCounter("Serve.Expired"));
  EXPECT_GE(statsCounter("Serve.QueueDepthMax"),
            static_cast<int64_t>(Options.QueueCapacity));
}

TEST(ServeBackpressureTest, BlockPolicyAbsorbsTheBurst) {
  resetStatsCounters();
  ServerOptions Options;
  Options.Workers = 1;
  Options.QueueCapacity = 2;
  Options.Policy = BackpressurePolicy::Block;
  Options.MaxBatch = 1;
  Server S(Options);

  Kernel Plug = makePlugKernel();
  OwnedArgs PlugArgs(Plug.program());
  std::future<RunStatus> PlugDone =
      S.submit(Plug, Plug.bind(PlugArgs.binding()));
  waitUntilQueueEmpty(S);

  Program Small = makeGemm("i", "j", "k", 8);
  Kernel K = S.compile(Small);
  constexpr size_t Burst = 6; // 3x the queue bound: submitters must block.
  std::vector<std::unique_ptr<OwnedArgs>> Owned;
  std::vector<std::future<RunStatus>> Futures;
  for (size_t I = 0; I < Burst; ++I)
    Owned.push_back(std::make_unique<OwnedArgs>(Small));
  std::thread Submitter([&] {
    for (size_t I = 0; I < Burst; ++I)
      Futures.push_back(S.submit(K, K.bind(Owned[I]->binding())));
  });
  Submitter.join();

  S.drain();
  EXPECT_TRUE(PlugDone.get().ok());
  for (auto &F : Futures)
    EXPECT_TRUE(F.get().ok());
  EXPECT_EQ(statsCounter("Serve.Rejected"), 0);
  EXPECT_EQ(statsCounter("Serve.Expired"), 0);
  // Depth after push never exceeds the bound — that is what blocking
  // buys.
  EXPECT_LE(statsCounter("Serve.QueueDepthMax"),
            static_cast<int64_t>(Options.QueueCapacity));
  EXPECT_EQ(statsCounter("Serve.Submitted"), statsCounter("Serve.Completed"));
}

//===----------------------------------------------------------------------===//
// Micro-batching
//===----------------------------------------------------------------------===//

TEST(ServeBatchingTest, SameKernelRequestsCoalesceOnlyWhenEnabled) {
  Program Small = makeGemm("i", "j", "k", 8);
  for (size_t MaxBatch : {size_t(1), size_t(4)}) {
    resetStatsCounters();
    ServerOptions Options;
    Options.Workers = 1;
    Options.QueueCapacity = 64;
    Options.MaxBatch = MaxBatch;
    Server S(Options);

    Kernel Plug = makePlugKernel();
    OwnedArgs PlugArgs(Plug.program());
    std::future<RunStatus> PlugDone =
        S.submit(Plug, Plug.bind(PlugArgs.binding()));
    waitUntilQueueEmpty(S);

    // Queue 8 same-kernel requests behind the plug; with batching on the
    // worker drains them in coalesced dispatches.
    Kernel K = S.compile(Small);
    std::vector<std::unique_ptr<OwnedArgs>> Owned;
    std::vector<std::future<RunStatus>> Futures;
    for (int I = 0; I < 8; ++I) {
      Owned.push_back(std::make_unique<OwnedArgs>(Small));
      Futures.push_back(S.submit(K, K.bind(Owned.back()->binding())));
    }
    S.drain();
    EXPECT_TRUE(PlugDone.get().ok());
    for (auto &F : Futures)
      EXPECT_TRUE(F.get().ok());
    if (MaxBatch == 1)
      EXPECT_EQ(statsCounter("Serve.BatchedRuns"), 0);
    else
      EXPECT_GE(statsCounter("Serve.BatchedRuns"), 2);
    // Histogram samples cover every accepted request.
    uint64_t Samples = 0;
    for (uint64_t Bucket : S.queueDepthHistogram())
      Samples += Bucket;
    EXPECT_EQ(Samples, 9u); // plug + 8 fillers
  }
}

//===----------------------------------------------------------------------===//
// Shutdown
//===----------------------------------------------------------------------===//

TEST(ServeShutdownTest, DestructorCompletesInflightAndQueuedRequests) {
  Program Small = makeGemm("i", "j", "k", 10);
  std::vector<std::unique_ptr<OwnedArgs>> Owned;
  std::vector<std::future<RunStatus>> Futures;
  OwnedArgs Expected(Small, 1);
  {
    ServerOptions Options;
    Options.Workers = 2;
    Options.QueueCapacity = 64;
    Server S(Options);
    Kernel K = S.compile(Small);
    ASSERT_TRUE(K.run(Expected.binding()));
    for (int I = 0; I < 16; ++I) {
      Owned.push_back(std::make_unique<OwnedArgs>(Small, 1));
      Futures.push_back(S.submit(K, K.bind(Owned.back()->binding())));
    }
    // Destructor runs with most requests still queued.
  }
  for (size_t I = 0; I < Futures.size(); ++I) {
    ASSERT_EQ(Futures[I].wait_for(std::chrono::seconds(0)),
              std::future_status::ready)
        << "request " << I << " leaked through shutdown";
    EXPECT_TRUE(Futures[I].get().ok());
    EXPECT_EQ(Owned[I]->Buffers, Expected.Buffers);
  }
}

//===----------------------------------------------------------------------===//
// Stale/misbound submissions through the server
//===----------------------------------------------------------------------===//

TEST(ServeSubmitTest, StaleAndUnboundArgsFailTheFuture) {
  ServerOptions Options;
  Options.Workers = 1;
  Server S(Options);
  Program Prog = makeGemm("i", "j", "k", 8);
  Kernel KA = Kernel::compile(Prog);
  Kernel KB = Kernel::compile(Prog);

  OwnedArgs Args(Prog);
  BoundArgs BoundToA = KA.bind(Args.binding());
  ASSERT_TRUE(BoundToA.ok());
  EXPECT_EQ(BoundToA.kernelToken(), KA.bind(Args.binding()).kernelToken());

  // Direct run: rejected as stale.
  RunStatus Direct = KB.run(BoundToA);
  EXPECT_FALSE(Direct.ok());
  EXPECT_NE(Direct.Error.find("different kernel"), std::string::npos);

  // Through the server: the future carries the same rejection.
  RunStatus Via = S.submit(KB, BoundToA).get();
  EXPECT_FALSE(Via.ok());
  EXPECT_NE(Via.Error.find("different kernel"), std::string::npos);

  // Unbound handle: fails fast without reaching a worker.
  RunStatus Unbound = S.submit(KA, BoundArgs()).get();
  EXPECT_FALSE(Unbound.ok());
  EXPECT_NE(Unbound.Error.find("unbound"), std::string::npos);

  // The ArgBinding convenience overload pays validation at submit.
  std::vector<double> OnlyA(64, 0.0);
  RunStatus Bad = S.submit(KA, ArgBinding().bind("A", OnlyA)).get();
  EXPECT_FALSE(Bad.ok());
  EXPECT_NE(Bad.Error.find("not bound"), std::string::npos);

  S.drain();
}

//===----------------------------------------------------------------------===//
// RunStatus::Kind coverage guard
//===----------------------------------------------------------------------===//

namespace {

/// Exhaustive by construction: no default case, so -Wswitch flags a new
/// Kind here, and the static_assert turns "forgot to update the
/// handlers" into a compile error instead of a silent fall-through.
const char *kindName(RunStatus::Kind K) {
  static_assert(RunStatus::NumKinds_ == 7,
                "new RunStatus::Kind: update kindName, the serving "
                "runtime's status switches, and the README taxonomy");
  switch (K) {
  case RunStatus::Ok:
    return "ok";
  case RunStatus::BindError:
    return "bind-error";
  case RunStatus::Overloaded:
    return "overloaded";
  case RunStatus::ShutDown:
    return "shut-down";
  case RunStatus::Expired:
    return "expired";
  case RunStatus::ResourceExhausted:
    return "resource-exhausted";
  case RunStatus::Faulted:
    return "faulted";
  case RunStatus::NumKinds_:
    break;
  }
  return "invalid";
}

} // namespace

TEST(RunStatusKindTest, EveryKindIsHandledAndFactoriesTagCorrectly) {
  for (uint8_t K = 0; K < RunStatus::NumKinds_; ++K)
    EXPECT_STRNE(kindName(static_cast<RunStatus::Kind>(K)), "invalid");
  EXPECT_EQ(RunStatus().Why, RunStatus::Ok);
  EXPECT_EQ(RunStatus("boom").Why, RunStatus::BindError);
  EXPECT_EQ(RunStatus::overloaded().Why, RunStatus::Overloaded);
  EXPECT_EQ(RunStatus::shutDown().Why, RunStatus::ShutDown);
  EXPECT_EQ(RunStatus::expired().Why, RunStatus::Expired);
  EXPECT_FALSE(RunStatus::expired().ok());
  EXPECT_EQ(RunStatus::resourceExhausted().Why, RunStatus::ResourceExhausted);
  EXPECT_FALSE(RunStatus::resourceExhausted().ok());
  EXPECT_EQ(RunStatus::faulted("kernel fault").Why, RunStatus::Faulted);
  EXPECT_FALSE(RunStatus::faulted("kernel fault").ok());
  EXPECT_NE(RunStatus::faulted("kernel fault").Error.find("kernel fault"),
            std::string::npos);
}

//===----------------------------------------------------------------------===//
// Scheduler policies: pop order, observed via admission Seq (no timing)
//===----------------------------------------------------------------------===//

namespace {

/// Drains \p Sched one request at a time and returns the admission
/// sequence numbers in pop order.
std::vector<uint64_t> popOrder(serve::Scheduler &Sched) {
  std::vector<uint64_t> Order;
  std::vector<Request> Batch, Expired;
  while (Sched.depth() > 0) {
    if (!Sched.popBatch(Batch, Expired, 1))
      break;
    for (const Request &R : Batch)
      Order.push_back(R.Seq);
  }
  return Order;
}

serve::Scheduler::PushResult pushWith(serve::Scheduler &Sched, TimePoint Deadline,
                               Priority Prio = Priority::Normal) {
  Request R;
  R.Deadline = Deadline;
  R.Prio = Prio;
  return Sched.push(R);
}

serve::Scheduler::PushResult pushTenant(serve::Scheduler &Sched, uint32_t Tenant,
                                        uint32_t Weight = 1) {
  Request R;
  R.Tenant = Tenant;
  R.Weight = Weight;
  return Sched.push(R);
}

/// Jain fairness index of per-tenant counts: 1.0 = perfectly even,
/// 1/n = one tenant took everything.
double jainIndex(const std::vector<uint64_t> &Counts) {
  double Sum = 0.0, SumSq = 0.0;
  for (uint64_t C : Counts) {
    Sum += static_cast<double>(C);
    SumSq += static_cast<double>(C) * static_cast<double>(C);
  }
  if (SumSq == 0.0)
    return 1.0;
  return Sum * Sum / (static_cast<double>(Counts.size()) * SumSq);
}

} // namespace

TEST(SchedulerPolicyTest, FifoPopsInAdmissionOrder) {
  auto Sched = serve::Scheduler::create(SchedulerPolicy::Fifo, 16,
                                 BackpressurePolicy::Reject);
  TimePoint Far = serveNow() + std::chrono::hours(1);
  // Deadlines and priorities are present but must not reorder FIFO.
  ASSERT_EQ(pushWith(*Sched, Far, Priority::Low), serve::Scheduler::PushResult::Ok);
  ASSERT_EQ(pushWith(*Sched, noDeadline(), Priority::High),
            serve::Scheduler::PushResult::Ok);
  ASSERT_EQ(pushWith(*Sched, Far + std::chrono::hours(1), Priority::Normal),
            serve::Scheduler::PushResult::Ok);
  EXPECT_EQ(popOrder(*Sched), (std::vector<uint64_t>{0, 1, 2}));
}

TEST(SchedulerPolicyTest, PriorityLanesDrainHighestFirst) {
  auto Sched = serve::Scheduler::create(SchedulerPolicy::PriorityLane, 16,
                                 BackpressurePolicy::Reject);
  ASSERT_EQ(pushWith(*Sched, noDeadline(), Priority::Low),
            serve::Scheduler::PushResult::Ok); // Seq 0
  ASSERT_EQ(pushWith(*Sched, noDeadline(), Priority::High),
            serve::Scheduler::PushResult::Ok); // Seq 1
  ASSERT_EQ(pushWith(*Sched, noDeadline(), Priority::Normal),
            serve::Scheduler::PushResult::Ok); // Seq 2
  ASSERT_EQ(pushWith(*Sched, noDeadline(), Priority::High),
            serve::Scheduler::PushResult::Ok); // Seq 3
  // High lane FIFO (1, 3), then Normal (2), then Low (0).
  EXPECT_EQ(popOrder(*Sched), (std::vector<uint64_t>{1, 3, 2, 0}));
}

TEST(SchedulerPolicyTest, EdfPopsEarliestDeadlineFirstNoDeadlineLast) {
  auto Sched = serve::Scheduler::create(SchedulerPolicy::EarliestDeadlineFirst, 16,
                                 BackpressurePolicy::Reject);
  TimePoint Now = serveNow();
  ASSERT_EQ(pushWith(*Sched, Now + std::chrono::hours(2)),
            serve::Scheduler::PushResult::Ok); // Seq 0
  ASSERT_EQ(pushWith(*Sched, noDeadline()),
            serve::Scheduler::PushResult::Ok); // Seq 1
  ASSERT_EQ(pushWith(*Sched, Now + std::chrono::hours(1)),
            serve::Scheduler::PushResult::Ok); // Seq 2
  ASSERT_EQ(pushWith(*Sched, noDeadline()),
            serve::Scheduler::PushResult::Ok); // Seq 3
  ASSERT_EQ(pushWith(*Sched, Now + std::chrono::hours(1)),
            serve::Scheduler::PushResult::Ok); // Seq 4: ties break by admission
  EXPECT_EQ(popOrder(*Sched), (std::vector<uint64_t>{2, 4, 0, 1, 3}));
}

TEST(SchedulerPolicyTest, FairShareInterleavesTenantsRoundRobin) {
  auto Sched = serve::Scheduler::create(SchedulerPolicy::FairShare, 16,
                                        BackpressurePolicy::Reject);
  // Tenant 0 floods four requests before tenant 1 submits two: FIFO
  // would serve all of tenant 0 first; FairShare alternates turns while
  // both are backlogged, then drains the survivor.
  for (int I = 0; I < 4; ++I)
    ASSERT_EQ(pushTenant(*Sched, 0), serve::Scheduler::PushResult::Ok);
  for (int I = 0; I < 2; ++I)
    ASSERT_EQ(pushTenant(*Sched, 1), serve::Scheduler::PushResult::Ok);
  EXPECT_EQ(popOrder(*Sched), (std::vector<uint64_t>{0, 4, 1, 5, 2, 3}));
}

TEST(SchedulerPolicyTest, FairShareWeightEarnsConsecutiveTurns) {
  auto Sched = serve::Scheduler::create(SchedulerPolicy::FairShare, 16,
                                        BackpressurePolicy::Reject);
  // Weight 2 buys tenant 0 two consecutive batch turns per rotation.
  for (int I = 0; I < 4; ++I)
    ASSERT_EQ(pushTenant(*Sched, 0, /*Weight=*/2),
              serve::Scheduler::PushResult::Ok);
  for (int I = 0; I < 2; ++I)
    ASSERT_EQ(pushTenant(*Sched, 1), serve::Scheduler::PushResult::Ok);
  EXPECT_EQ(popOrder(*Sched), (std::vector<uint64_t>{0, 1, 4, 2, 3, 5}));
}

TEST(SchedulerPolicyTest, FairShareKeepsMinorityTenantAtFairShare) {
  auto Sched = serve::Scheduler::create(SchedulerPolicy::FairShare, 128,
                                        BackpressurePolicy::Reject);
  // Heavy tenant floods 50 requests, the minority tenant submits 10.
  for (int I = 0; I < 50; ++I)
    ASSERT_EQ(pushTenant(*Sched, 0), serve::Scheduler::PushResult::Ok);
  for (int I = 0; I < 10; ++I)
    ASSERT_EQ(pushTenant(*Sched, 1), serve::Scheduler::PushResult::Ok);
  std::vector<uint64_t> Order = popOrder(*Sched);
  ASSERT_EQ(Order.size(), 60u);
  // While both tenants are backlogged (the first 20 pops), each holds a
  // fair half. The minority must get >= 0.8x its fair share and the
  // two-tenant Jain index must be near-perfect.
  uint64_t MinorityServed = 0;
  for (size_t I = 0; I < 20; ++I)
    if (Order[I] >= 50) // Seqs 50..59 are the minority tenant's.
      ++MinorityServed;
  EXPECT_GE(MinorityServed, static_cast<uint64_t>(0.8 * 10));
  EXPECT_GE(jainIndex({20 - MinorityServed, MinorityServed}), 0.95);
  // Under FIFO the same admission order starves the minority entirely in
  // the first 20 pops — the contrast FairShare exists to provide.
  auto Fifo = serve::Scheduler::create(SchedulerPolicy::Fifo, 128,
                                       BackpressurePolicy::Reject);
  for (int I = 0; I < 50; ++I)
    ASSERT_EQ(pushTenant(*Fifo, 0), serve::Scheduler::PushResult::Ok);
  for (int I = 0; I < 10; ++I)
    ASSERT_EQ(pushTenant(*Fifo, 1), serve::Scheduler::PushResult::Ok);
  std::vector<uint64_t> FifoOrder = popOrder(*Fifo);
  uint64_t FifoMinority = 0;
  for (size_t I = 0; I < 20; ++I)
    if (FifoOrder[I] >= 50)
      ++FifoMinority;
  EXPECT_EQ(FifoMinority, 0u);
}

TEST(SchedulerPolicyTest, TenantQuotaConfinesOverflowToItsOwner) {
  // Quota 8 of capacity 64: the flooding tenant keeps at most 8 queued
  // and sheds the rest as its own Overloaded; a light tenant still has
  // the whole remaining capacity.
  auto Sched = serve::Scheduler::create(SchedulerPolicy::FairShare, 64,
                                        BackpressurePolicy::Reject,
                                        /*TenantQuota=*/8);
  int HeavyOk = 0, HeavyOverloaded = 0;
  for (int I = 0; I < 20; ++I) {
    serve::Scheduler::PushResult P = pushTenant(*Sched, 7);
    if (P == serve::Scheduler::PushResult::Ok)
      ++HeavyOk;
    else if (P == serve::Scheduler::PushResult::Overloaded)
      ++HeavyOverloaded;
  }
  EXPECT_EQ(HeavyOk, 8);
  EXPECT_EQ(HeavyOverloaded, 12);
  for (int I = 0; I < 4; ++I)
    EXPECT_EQ(pushTenant(*Sched, 3), serve::Scheduler::PushResult::Ok);
  EXPECT_EQ(Sched->depth(), 12u);
  // Serving one of the heavy tenant's requests frees quota for it.
  std::vector<Request> Batch, Expired;
  ASSERT_TRUE(Sched->popBatch(Batch, Expired, 1));
  ASSERT_EQ(Batch.size(), 1u);
  EXPECT_EQ(Batch.front().Tenant, 7u);
  EXPECT_EQ(pushTenant(*Sched, 7), serve::Scheduler::PushResult::Ok);
  EXPECT_EQ(pushTenant(*Sched, 7), serve::Scheduler::PushResult::Overloaded);
}

TEST(SchedulerPolicyTest, RequeueReadmitsAndFailsSafeWhenClosedOrExpired) {
  auto Sched = serve::Scheduler::create(SchedulerPolicy::Fifo, 4,
                                        BackpressurePolicy::Reject);
  Request R;
  ASSERT_EQ(Sched->push(R), serve::Scheduler::PushResult::Ok);
  std::vector<Request> Batch, Expired;
  ASSERT_TRUE(Sched->popBatch(Batch, Expired, 1));
  ASSERT_EQ(Batch.size(), 1u);
  EXPECT_EQ(Batch.front().Seq, 0u);

  // Re-admission gets a fresh Seq and is poppable again.
  ASSERT_EQ(Sched->requeue(Batch.front()), serve::Scheduler::PushResult::Ok);
  EXPECT_EQ(Sched->depth(), 1u);
  ASSERT_TRUE(Sched->popBatch(Batch, Expired, 1));
  ASSERT_EQ(Batch.size(), 1u);
  EXPECT_EQ(Batch.front().Seq, 1u);

  // A lapsed deadline fails the requeue with Expired, handing the
  // request back so the caller can complete its future.
  Request Late;
  Late.Deadline = serveNow() - std::chrono::milliseconds(1);
  EXPECT_EQ(Sched->requeue(Late), serve::Scheduler::PushResult::Expired);
  EXPECT_EQ(Sched->depth(), 0u);

  // After close() the poppers may be gone: requeue must refuse.
  Sched->close();
  Request Stranded;
  EXPECT_EQ(Sched->requeue(Stranded), serve::Scheduler::PushResult::ShutDown);
  EXPECT_EQ(Sched->depth(), 0u);
}

TEST(SchedulerPolicyTest, TryPopAndBoundedPopReportEmptyAndClosed) {
  auto Sched = serve::Scheduler::create(SchedulerPolicy::Fifo, 4,
                                        BackpressurePolicy::Reject);
  std::vector<Request> Batch, Expired;
  EXPECT_EQ(Sched->tryPopBatch(Batch, Expired, 4),
            serve::Scheduler::PopResult::Empty);
  EXPECT_EQ(Sched->popBatchFor(Batch, Expired, 4,
                               std::chrono::microseconds(500)),
            serve::Scheduler::PopResult::Empty);

  Request R;
  ASSERT_EQ(Sched->push(R), serve::Scheduler::PushResult::Ok);
  EXPECT_EQ(Sched->tryPopBatch(Batch, Expired, 4),
            serve::Scheduler::PopResult::Got);
  EXPECT_EQ(Batch.size(), 1u);

  Request R2;
  ASSERT_EQ(Sched->push(R2), serve::Scheduler::PushResult::Ok);
  EXPECT_EQ(Sched->popBatchFor(Batch, Expired, 4,
                               std::chrono::microseconds(500)),
            serve::Scheduler::PopResult::Got);
  EXPECT_EQ(Batch.size(), 1u);

  Sched->close();
  EXPECT_EQ(Sched->tryPopBatch(Batch, Expired, 4),
            serve::Scheduler::PopResult::Closed);
  EXPECT_EQ(Sched->popBatchFor(Batch, Expired, 4,
                               std::chrono::microseconds(500)),
            serve::Scheduler::PopResult::Closed);
}

TEST(SchedulerPolicyTest, ExpiredWorkShedsAtAdmissionAndAtPop) {
  for (SchedulerPolicy Policy :
       {SchedulerPolicy::Fifo, SchedulerPolicy::PriorityLane,
        SchedulerPolicy::EarliestDeadlineFirst, SchedulerPolicy::FairShare}) {
    auto Sched = serve::Scheduler::create(Policy, 16, BackpressurePolicy::Reject);
    // Already late at admission: handed back, never queued.
    EXPECT_EQ(pushWith(*Sched, serveNow() - std::chrono::milliseconds(1)),
              serve::Scheduler::PushResult::Expired);
    EXPECT_EQ(Sched->depth(), 0u);

    // Queued, then expires while waiting: shed at pop, not dispatched.
    ASSERT_EQ(pushWith(*Sched, serveNow() + std::chrono::milliseconds(2)),
              serve::Scheduler::PushResult::Ok);
    ASSERT_EQ(pushWith(*Sched, noDeadline()), serve::Scheduler::PushResult::Ok);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    std::vector<Request> Batch, Expired;
    ASSERT_TRUE(Sched->popBatch(Batch, Expired, 4));
    EXPECT_EQ(Expired.size(), 1u);
    ASSERT_EQ(Batch.size(), 1u);
    EXPECT_EQ(Batch.front().Deadline, noDeadline());
  }
}

TEST(SchedulerPolicyTest, BlockedPushGivesUpWhenDeadlinePasses) {
  auto Sched =
      serve::Scheduler::create(SchedulerPolicy::Fifo, 1, BackpressurePolicy::Block);
  ASSERT_EQ(pushWith(*Sched, noDeadline()), serve::Scheduler::PushResult::Ok);
  // The queue is full and nobody pops: a dated Block push must return
  // Expired once its deadline passes instead of waiting forever.
  TimePoint Before = serveNow();
  EXPECT_EQ(pushWith(*Sched, Before + std::chrono::milliseconds(3)),
            serve::Scheduler::PushResult::Expired);
  EXPECT_GE(serveNow() - Before, std::chrono::milliseconds(3));
  EXPECT_EQ(Sched->depth(), 1u);
}

//===----------------------------------------------------------------------===//
// Deadlines through the server
//===----------------------------------------------------------------------===//

TEST(ServeDeadlineTest, DrainCompletesExpiredRequestsWithoutRunningThem) {
  resetStatsCounters();
  ServerOptions Options;
  Options.Workers = 1;
  Options.QueueCapacity = 64;
  Options.Policy = BackpressurePolicy::Block;
  Options.MaxBatch = 1;
  Server S(Options);

  // Compile (a multi-millisecond scheduler search) happens before the
  // plug goes in, so the timing below is submit-only.
  Program Small = makeGemm("i", "j", "k", 8);
  Kernel K = S.compile(Small);
  OwnedArgs Untouched(Small, 5);

  // Two plugs, drained one pop at a time: the first absorbs worker-lane
  // start-up (its pop can land anywhere in its run), so when the second
  // leaves the queue the worker has only just *started* it — everything
  // submitted now sits behind a full multi-millisecond run, and a 1ms
  // budget is guaranteed to lapse in the queue.
  Kernel Plug = makePlugKernel();
  OwnedArgs PlugArgs(Plug.program());
  std::future<RunStatus> PlugDone =
      S.submit(Plug, Plug.bind(PlugArgs.binding()));
  waitUntilQueueEmpty(S);
  Kernel Plug2 = makePlugKernel();
  OwnedArgs Plug2Args(Plug2.program());
  std::future<RunStatus> Plug2Done =
      S.submit(Plug2, Plug2.bind(Plug2Args.binding()));
  waitUntilQueueEmpty(S);

  SubmitOptions Dated;
  Dated.Timeout = std::chrono::milliseconds(1);
  constexpr int N = 4;
  std::vector<std::unique_ptr<OwnedArgs>> Owned;
  std::vector<std::future<RunStatus>> Futures;
  for (int I = 0; I < N; ++I) {
    Owned.push_back(std::make_unique<OwnedArgs>(Small, 5));
    Futures.push_back(S.submit(K, K.bind(Owned.back()->binding()), Dated));
  }

  // drain() must terminate even though the queue holds only dead work.
  S.drain();
  EXPECT_TRUE(PlugDone.get().ok());
  EXPECT_TRUE(Plug2Done.get().ok());
  for (int I = 0; I < N; ++I) {
    ASSERT_EQ(Futures[I].wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    RunStatus Status = Futures[I].get();
    EXPECT_FALSE(Status.ok());
    EXPECT_EQ(Status.Why, RunStatus::Expired) << "request " << I;
    // Never dispatched: the caller's buffers are bit-for-bit untouched.
    EXPECT_EQ(Owned[I]->Buffers, Untouched.Buffers) << "request " << I;
  }
  EXPECT_EQ(statsCounter("Serve.Expired"), N);
  EXPECT_EQ(statsCounter("Serve.Submitted"),
            statsCounter("Serve.Completed") + statsCounter("Serve.Rejected") +
                statsCounter("Serve.Expired"));
}

//===----------------------------------------------------------------------===//
// Retry with backoff
//===----------------------------------------------------------------------===//

TEST(ServeRetryTest, BackoffAbsorbsTransientOverload) {
  resetStatsCounters();
  ServerOptions Options;
  Options.Workers = 1;
  Options.QueueCapacity = 2;
  Options.Policy = BackpressurePolicy::Reject;
  Options.MaxBatch = 1;
  Server S(Options);

  Program Small = makeGemm("i", "j", "k", 8);
  Kernel K = S.compile(Small); // before the plug: compile takes ms itself

  // Two plugs: the first absorbs worker-lane start-up, so once the
  // second leaves the queue the worker has only just started it and
  // stays busy for its full multi-millisecond run.
  Kernel Plug = makePlugKernel();
  OwnedArgs PlugArgs(Plug.program());
  std::future<RunStatus> PlugDone =
      S.submit(Plug, Plug.bind(PlugArgs.binding()));
  waitUntilQueueEmpty(S);
  Kernel Plug2 = makePlugKernel();
  OwnedArgs Plug2Args(Plug2.program());
  std::future<RunStatus> Plug2Done =
      S.submit(Plug2, Plug2.bind(Plug2Args.binding()));
  waitUntilQueueEmpty(S);

  // Fill the queue while the worker is inside the plug.
  std::vector<std::unique_ptr<OwnedArgs>> Owned;
  std::vector<std::future<RunStatus>> Fillers;
  for (size_t I = 0; I < Options.QueueCapacity; ++I) {
    Owned.push_back(std::make_unique<OwnedArgs>(Small));
    Fillers.push_back(S.submit(K, K.bind(Owned.back()->binding())));
  }

  // Overload is transient — it ends when the plug finishes in a few
  // milliseconds. A patient submit must ride it out and succeed.
  Owned.push_back(std::make_unique<OwnedArgs>(Small));
  SubmitOptions Patient;
  Patient.MaxRetries = 1000;
  Patient.Backoff = std::chrono::microseconds(200);
  RunStatus Status =
      S.submit(K, K.bind(Owned.back()->binding()), Patient).get();
  EXPECT_TRUE(Status.ok()) << Status.Error;
  EXPECT_GT(statsCounter("Serve.SubmitRetries"), 0);
  EXPECT_EQ(statsCounter("Serve.Rejected"), 0);

  S.drain();
  EXPECT_TRUE(PlugDone.get().ok());
  EXPECT_TRUE(Plug2Done.get().ok());
  for (auto &F : Fillers)
    EXPECT_TRUE(F.get().ok());
  EXPECT_EQ(statsCounter("Serve.Submitted"),
            statsCounter("Serve.Completed") + statsCounter("Serve.Rejected") +
                statsCounter("Serve.Expired"));
}

TEST(ServeRetryTest, ExhaustedRetriesStillRejectWithOverloaded) {
  resetStatsCounters();
  ServerOptions Options;
  Options.Workers = 1;
  Options.QueueCapacity = 2;
  Options.Policy = BackpressurePolicy::Reject;
  Options.MaxBatch = 1;
  Server S(Options);

  Program Small = makeGemm("i", "j", "k", 8);
  Kernel K = S.compile(Small); // before the plug: compile takes ms itself

  // Two plugs: the first absorbs worker-lane start-up, so once the
  // second leaves the queue the worker has only just started it and
  // stays busy for its full multi-millisecond run.
  Kernel Plug = makePlugKernel();
  OwnedArgs PlugArgs(Plug.program());
  std::future<RunStatus> PlugDone =
      S.submit(Plug, Plug.bind(PlugArgs.binding()));
  waitUntilQueueEmpty(S);
  Kernel Plug2 = makePlugKernel();
  OwnedArgs Plug2Args(Plug2.program());
  std::future<RunStatus> Plug2Done =
      S.submit(Plug2, Plug2.bind(Plug2Args.binding()));
  waitUntilQueueEmpty(S);

  // Fill the queue while the worker is inside the plug.
  std::vector<std::unique_ptr<OwnedArgs>> Owned;
  std::vector<std::future<RunStatus>> Fillers;
  for (size_t I = 0; I < Options.QueueCapacity; ++I) {
    Owned.push_back(std::make_unique<OwnedArgs>(Small));
    Fillers.push_back(S.submit(K, K.bind(Owned.back()->binding())));
  }

  // One retry 50µs later finds the plug (milliseconds) still running and
  // the queue still full: the rejection stands, and it is counted once.
  Owned.push_back(std::make_unique<OwnedArgs>(Small));
  SubmitOptions Impatient;
  Impatient.MaxRetries = 1;
  Impatient.Backoff = std::chrono::microseconds(50);
  RunStatus Status =
      S.submit(K, K.bind(Owned.back()->binding()), Impatient).get();
  EXPECT_FALSE(Status.ok());
  EXPECT_EQ(Status.Why, RunStatus::Overloaded);
  EXPECT_EQ(statsCounter("Serve.SubmitRetries"), 1);
  EXPECT_EQ(statsCounter("Serve.Rejected"), 1);

  S.drain();
  EXPECT_TRUE(PlugDone.get().ok());
  EXPECT_TRUE(Plug2Done.get().ok());
  for (auto &F : Fillers)
    EXPECT_TRUE(F.get().ok());
  EXPECT_EQ(statsCounter("Serve.Submitted"),
            statsCounter("Serve.Completed") + statsCounter("Serve.Rejected") +
                statsCounter("Serve.Expired"));
}

//===----------------------------------------------------------------------===//
// Scheduling policies through the server: exactness at every policy
//===----------------------------------------------------------------------===//

TEST(ServeSchedulingTest, EveryPolicyServesBitIdenticalResults) {
  Program Small = makeGemm("i", "j", "k", 12);
  OwnedArgs Expected(Small, 5);
  ASSERT_TRUE(Kernel::compile(Small).run(Expected.binding()));
  for (SchedulerPolicy Policy :
       {SchedulerPolicy::Fifo, SchedulerPolicy::PriorityLane,
        SchedulerPolicy::EarliestDeadlineFirst, SchedulerPolicy::FairShare}) {
    ServerOptions Options;
    Options.Workers = 2;
    Options.QueueCapacity = 64;
    Options.Scheduling = Policy;
    Server S(Options);
    Kernel K = S.compile(Small);
    std::vector<std::unique_ptr<OwnedArgs>> Owned;
    std::vector<std::future<RunStatus>> Futures;
    for (int I = 0; I < 12; ++I) {
      Owned.push_back(std::make_unique<OwnedArgs>(Small, 5));
      SubmitOptions SO;
      SO.Prio = static_cast<Priority>(I % 3);
      SO.Tenant = static_cast<uint32_t>(I % 2);
      if (I % 2 == 0)
        SO.Deadline = serveNow() + std::chrono::hours(1);
      Futures.push_back(S.submit(K, K.bind(Owned.back()->binding()), SO));
    }
    S.drain();
    for (int I = 0; I < 12; ++I) {
      EXPECT_TRUE(Futures[I].get().ok());
      EXPECT_EQ(Owned[I]->Buffers, Expected.Buffers);
    }
    EXPECT_GT(S.latencyCount(), 0u);
    EXPECT_GE(S.latencyQuantileUs(0.99), S.latencyQuantileUs(0.5));
  }
}

//===----------------------------------------------------------------------===//
// Multi-tenant governance through the server
//===----------------------------------------------------------------------===//

TEST(ServeTenantTest, PerTenantCountersHoldTheDrainInvariant) {
  resetStatsCounters();
  ServerOptions Options;
  Options.Workers = 2;
  Options.QueueCapacity = 64;
  Options.Scheduling = SchedulerPolicy::FairShare;
  Server S(Options);
  Program Small = makeGemm("i", "j", "k", 8);
  Kernel K = S.compile(Small);
  OwnedArgs Expected(Small, 5);
  ASSERT_TRUE(Kernel::compile(Small).run(Expected.binding()));

  std::vector<std::unique_ptr<OwnedArgs>> Owned;
  std::vector<std::future<RunStatus>> Futures;
  for (int I = 0; I < 24; ++I) {
    Owned.push_back(std::make_unique<OwnedArgs>(Small, 5));
    SubmitOptions SO;
    SO.Tenant = static_cast<uint32_t>(I % 3);
    Futures.push_back(S.submit(K, K.bind(Owned.back()->binding()), SO));
  }
  S.drain();
  for (int I = 0; I < 24; ++I) {
    EXPECT_TRUE(Futures[I].get().ok());
    EXPECT_EQ(Owned[I]->Buffers, Expected.Buffers);
  }
  for (uint32_t T = 0; T < 3; ++T) {
    std::string Base = "Serve.Tenant" + std::to_string(T) + ".";
    EXPECT_EQ(statsCounter(Base + "Submitted"), 8) << "tenant " << T;
    EXPECT_EQ(statsCounter(Base + "Submitted"),
              statsCounter(Base + "Completed") +
                  statsCounter(Base + "Rejected") +
                  statsCounter(Base + "Expired"))
        << "tenant " << T;
  }
}

TEST(ServeTenantTest, QuotaMakesTheFloodingTenantShedItsOwnOverflow) {
  resetStatsCounters();
  ServerOptions Options;
  Options.Workers = 1;
  Options.QueueCapacity = 64;
  Options.Policy = BackpressurePolicy::Reject;
  Options.Scheduling = SchedulerPolicy::FairShare;
  Options.TenantQuota = 8;
  Options.MaxBatch = 1;
  Server S(Options);
  Program Small = makeGemm("i", "j", "k", 8);
  Kernel K = S.compile(Small);

  // Two plugs (tenant 0): the first absorbs worker start-up; once the
  // second leaves the queue the single worker is busy for milliseconds,
  // so the submits below are admission-only.
  Kernel Plug = makePlugKernel();
  OwnedArgs PlugArgs(Plug.program());
  std::future<RunStatus> PlugDone =
      S.submit(Plug, Plug.bind(PlugArgs.binding()));
  waitUntilQueueEmpty(S);
  Kernel Plug2 = makePlugKernel();
  OwnedArgs Plug2Args(Plug2.program());
  std::future<RunStatus> Plug2Done =
      S.submit(Plug2, Plug2.bind(Plug2Args.binding()));
  waitUntilQueueEmpty(S);

  // Tenant 1 floods 20 requests: quota 8 admits 8, sheds 12 — all of
  // them tenant 1's own rejections.
  std::vector<std::unique_ptr<OwnedArgs>> Owned;
  std::vector<std::future<RunStatus>> Heavy, Light;
  SubmitOptions HeavyOpts;
  HeavyOpts.Tenant = 1;
  for (int I = 0; I < 20; ++I) {
    Owned.push_back(std::make_unique<OwnedArgs>(Small));
    Heavy.push_back(S.submit(K, K.bind(Owned.back()->binding()), HeavyOpts));
  }
  // Tenant 2 submits after the flood and is untouched by it.
  SubmitOptions LightOpts;
  LightOpts.Tenant = 2;
  for (int I = 0; I < 4; ++I) {
    Owned.push_back(std::make_unique<OwnedArgs>(Small));
    Light.push_back(S.submit(K, K.bind(Owned.back()->binding()), LightOpts));
  }

  S.drain();
  EXPECT_TRUE(PlugDone.get().ok());
  EXPECT_TRUE(Plug2Done.get().ok());
  int HeavyOk = 0, HeavyOverloaded = 0;
  for (auto &F : Heavy) {
    RunStatus Status = F.get();
    if (Status.ok())
      ++HeavyOk;
    else if (Status.Why == RunStatus::Overloaded)
      ++HeavyOverloaded;
  }
  EXPECT_EQ(HeavyOk, 8);
  EXPECT_EQ(HeavyOverloaded, 12);
  for (auto &F : Light)
    EXPECT_TRUE(F.get().ok());
  EXPECT_EQ(statsCounter("Serve.Tenant1.Rejected"), 12);
  EXPECT_EQ(statsCounter("Serve.Tenant2.Rejected"), 0);
  for (uint32_t T = 0; T < 3; ++T) {
    std::string Base = "Serve.Tenant" + std::to_string(T) + ".";
    EXPECT_EQ(statsCounter(Base + "Submitted"),
              statsCounter(Base + "Completed") +
                  statsCounter(Base + "Rejected") +
                  statsCounter(Base + "Expired"))
        << "tenant " << T;
  }
}

//===----------------------------------------------------------------------===//
// Cross-shard work stealing
//===----------------------------------------------------------------------===//

TEST(ServeStealingTest, IdleLaneStealsFromTheHotShardBitIdentically) {
  resetStatsCounters();
  ServerOptions Options;
  Options.Workers = 2;
  Options.QueueShards = 2;
  Options.QueueCapacity = 64;
  Options.MaxBatch = 1;
  Server S(Options);

  // One kernel: every request routes to one queue shard, so the lane
  // homed on the other shard can only make progress by stealing.
  Program Mid = makeGemm("i", "j", "k", 64);
  Kernel K = S.compile(Mid);
  OwnedArgs Expected(Mid, 5);
  ASSERT_TRUE(Kernel::compile(Mid).run(Expected.binding()));

  std::vector<std::unique_ptr<OwnedArgs>> Owned;
  std::vector<std::future<RunStatus>> Futures;
  for (int I = 0; I < 24; ++I) {
    Owned.push_back(std::make_unique<OwnedArgs>(Mid, 5));
    Futures.push_back(S.submit(K, K.bind(Owned.back()->binding())));
  }
  S.drain();
  for (int I = 0; I < 24; ++I) {
    EXPECT_TRUE(Futures[I].get().ok());
    EXPECT_EQ(Owned[I]->Buffers, Expected.Buffers);
  }
  EXPECT_GE(statsCounter("Serve.StolenBatches"), 1);
  EXPECT_EQ(statsCounter("Serve.Submitted"),
            statsCounter("Serve.Completed") + statsCounter("Serve.Rejected") +
                statsCounter("Serve.Expired"));
}

//===----------------------------------------------------------------------===//
// Worker watchdog: dispatch-phase stalls are observed, not reclaimed
//===----------------------------------------------------------------------===//

TEST(ServeWatchdogTest, DispatchStallIsCountedAndTheKernelStillCompletes) {
  resetStatsCounters();
  ServerOptions Options;
  Options.Workers = 1;
  Options.MaxBatch = 1;
  Options.StallTimeout = std::chrono::milliseconds(1);
  Server S(Options);

  // The plug kernel dispatches for several milliseconds — far past the
  // 1ms stall timeout. The watchdog must count the stall but never
  // reclaim a batch that is executing.
  Kernel Plug = makePlugKernel();
  OwnedArgs PlugArgs(Plug.program());
  std::future<RunStatus> PlugDone =
      S.submit(Plug, Plug.bind(PlugArgs.binding()));
  S.drain();
  EXPECT_TRUE(PlugDone.get().ok());
  EXPECT_GE(statsCounter("Serve.DispatchStalls"), 1);
  EXPECT_EQ(statsCounter("Serve.WorkerStalls"), 0);
  EXPECT_EQ(statsCounter("Serve.Submitted"), statsCounter("Serve.Completed"));
}

//===----------------------------------------------------------------------===//
// Health-driven brownout: admission sheds Low priority under distress
//===----------------------------------------------------------------------===//

TEST(ServeBrownoutTest, LowPriorityIsShedUnderDistressUnderEveryPolicy) {
  for (SchedulerPolicy Policy :
       {SchedulerPolicy::Fifo, SchedulerPolicy::PriorityLane,
        SchedulerPolicy::EarliestDeadlineFirst, SchedulerPolicy::FairShare}) {
    resetStatsCounters();
    ServerOptions Options;
    Options.Workers = 1;
    Options.QueueCapacity = 4;
    Options.MaxBatch = 1;
    Options.Policy = BackpressurePolicy::Reject;
    Options.Scheduling = Policy;
    // High watermark at half capacity: depth 2 of 4 is distress.
    Options.BrownoutHighWater = 0.5;
    Server S(Options);
    Program Small = makeGemm("i", "j", "k", 8);
    Kernel K = S.compile(Small);

    // Two plugs: the first absorbs worker start-up; once the second
    // leaves the queue the single worker is busy for milliseconds, so
    // the submits below observe the queue depth they created.
    Kernel Plug = makePlugKernel();
    OwnedArgs PlugArgs(Plug.program());
    std::future<RunStatus> PlugDone =
        S.submit(Plug, Plug.bind(PlugArgs.binding()));
    waitUntilQueueEmpty(S);
    Kernel Plug2 = makePlugKernel();
    OwnedArgs Plug2Args(Plug2.program());
    std::future<RunStatus> Plug2Done =
        S.submit(Plug2, Plug2.bind(Plug2Args.binding()));
    waitUntilQueueEmpty(S);

    // Two queued requests reach the high watermark.
    std::vector<std::unique_ptr<OwnedArgs>> Owned;
    std::vector<std::future<RunStatus>> Admitted;
    for (int I = 0; I < 2; ++I) {
      Owned.push_back(std::make_unique<OwnedArgs>(Small));
      Admitted.push_back(S.submit(K, K.bind(Owned.back()->binding())));
    }

    // Distress: a Low-priority submit is shed at admission...
    SubmitOptions LowOpts;
    LowOpts.Prio = Priority::Low;
    Owned.push_back(std::make_unique<OwnedArgs>(Small));
    RunStatus Shed =
        S.submit(K, K.bind(Owned.back()->binding()), LowOpts).get();
    EXPECT_EQ(Shed.Why, RunStatus::Overloaded);
    EXPECT_NE(Shed.Error.find("brownout"), std::string::npos);

    // ...while Normal and High priority keep being admitted.
    for (Priority Prio : {Priority::High, Priority::Normal}) {
      SubmitOptions SO;
      SO.Prio = Prio;
      Owned.push_back(std::make_unique<OwnedArgs>(Small));
      Admitted.push_back(S.submit(K, K.bind(Owned.back()->binding()), SO));
    }

    S.drain();
    EXPECT_TRUE(PlugDone.get().ok());
    EXPECT_TRUE(Plug2Done.get().ok());
    for (auto &F : Admitted)
      EXPECT_TRUE(F.get().ok());
    EXPECT_GE(statsCounter("Serve.Brownouts"), 1);
    EXPECT_EQ(statsCounter("Serve.BrownoutSheds"), 1);
    // The shed is a Rejected outcome: the drain invariant holds.
    EXPECT_EQ(statsCounter("Serve.Submitted"),
              statsCounter("Serve.Completed") +
                  statsCounter("Serve.Rejected") +
                  statsCounter("Serve.Expired"));
  }
}

TEST(ServeBrownoutTest, BrownoutClearsAtTheLowWatermark) {
  resetStatsCounters();
  ServerOptions Options;
  Options.Workers = 1;
  Options.QueueCapacity = 4;
  Options.MaxBatch = 1;
  Options.BrownoutHighWater = 0.5;
  Server S(Options);
  Program Small = makeGemm("i", "j", "k", 8);
  Kernel K = S.compile(Small);

  Kernel Plug = makePlugKernel();
  OwnedArgs PlugArgs(Plug.program());
  std::future<RunStatus> PlugDone =
      S.submit(Plug, Plug.bind(PlugArgs.binding()));
  waitUntilQueueEmpty(S);
  Kernel Plug2 = makePlugKernel();
  OwnedArgs Plug2Args(Plug2.program());
  std::future<RunStatus> Plug2Done =
      S.submit(Plug2, Plug2.bind(Plug2Args.binding()));
  waitUntilQueueEmpty(S);

  std::vector<std::unique_ptr<OwnedArgs>> Owned;
  std::vector<std::future<RunStatus>> Admitted;
  for (int I = 0; I < 2; ++I) {
    Owned.push_back(std::make_unique<OwnedArgs>(Small));
    Admitted.push_back(S.submit(K, K.bind(Owned.back()->binding())));
  }
  EXPECT_TRUE(S.health().Brownout);
  EXPECT_FALSE(S.health().healthy());

  // Drained: the depth is back under the low watermark, the brownout
  // episode is over, and Low priority is admitted again.
  S.drain();
  HealthSnapshot After = S.health();
  EXPECT_FALSE(After.Brownout);
  EXPECT_TRUE(After.healthy());
  SubmitOptions LowOpts;
  LowOpts.Prio = Priority::Low;
  Owned.push_back(std::make_unique<OwnedArgs>(Small));
  EXPECT_TRUE(S.submit(K, K.bind(Owned.back()->binding()), LowOpts).get().ok());
  EXPECT_TRUE(PlugDone.get().ok());
  EXPECT_TRUE(Plug2Done.get().ok());
  for (auto &F : Admitted)
    EXPECT_TRUE(F.get().ok());
}

//===----------------------------------------------------------------------===//
// Health snapshot: one structured read of the runtime's vitals
//===----------------------------------------------------------------------===//

TEST(ServeHealthTest, SnapshotReportsQueuesCountersShardsAndTenants) {
  resetStatsCounters();
  ServerOptions Options;
  Options.Workers = 2;
  Options.Shards = 2;
  Options.QueueShards = 2;
  Options.QueueCapacity = 32;
  Options.Engine.MemoryBudgetBytes = 64ull << 20;
  Server S(Options);

  // A fresh server is healthy and idle.
  HealthSnapshot Fresh = S.health();
  EXPECT_TRUE(Fresh.healthy());
  EXPECT_EQ(Fresh.QueueDepth, 0u);
  EXPECT_EQ(Fresh.QueueDepths.size(), 2u);
  EXPECT_EQ(Fresh.QueueCapacity, 32u);
  EXPECT_EQ(Fresh.Shards.size(), 2u);
  EXPECT_EQ(Fresh.Submitted, 0);

  Program Small = makeGemm("i", "j", "k", 8);
  Kernel K = S.compile(Small);
  std::vector<std::unique_ptr<OwnedArgs>> Owned;
  std::vector<std::future<RunStatus>> Futures;
  for (int I = 0; I < 12; ++I) {
    Owned.push_back(std::make_unique<OwnedArgs>(Small));
    SubmitOptions SO;
    SO.Tenant = static_cast<uint32_t>(I % 3);
    Futures.push_back(S.submit(K, K.bind(Owned.back()->binding()), SO));
  }
  S.drain();
  for (auto &F : Futures)
    EXPECT_TRUE(F.get().ok());

  HealthSnapshot H = S.health();
  EXPECT_TRUE(H.healthy());
  EXPECT_EQ(H.Submitted, 12);
  EXPECT_EQ(H.Submitted, H.Completed + H.Rejected + H.Expired);
  EXPECT_EQ(H.Quarantined, 0u);
  EXPECT_GE(H.P99Us, H.P50Us);
  // Shard rows carry the self-protection vitals: budget accounting and
  // checkpoint lineage (no DatabasePath here, so generation stays 0).
  ASSERT_EQ(H.Shards.size(), 2u);
  for (const HealthSnapshot::ShardRow &Row : H.Shards) {
    EXPECT_EQ(Row.Quarantined, 0u);
    EXPECT_EQ(Row.CheckpointGeneration, 0u);
    EXPECT_EQ(Row.BudgetLimitBytes, 64ull << 20);
    EXPECT_LE(Row.BudgetUsedBytes, Row.BudgetPeakBytes);
  }
  // Tenant rows mirror the per-tenant counters, sorted by id.
  ASSERT_EQ(H.Tenants.size(), 3u);
  for (size_t T = 0; T < H.Tenants.size(); ++T) {
    EXPECT_EQ(H.Tenants[T].Tenant, T);
    EXPECT_EQ(H.Tenants[T].Submitted, 4);
    EXPECT_EQ(H.Tenants[T].Submitted, H.Tenants[T].Completed +
                                          H.Tenants[T].Rejected +
                                          H.Tenants[T].Expired);
  }
}
