//===- tests/ServeTest.cpp - serving-runtime tests -------------------------==//
//
// Part of the daisy project. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The serving runtime's contracts (this suite runs under ThreadSanitizer
// in CI, DAISY_THREADS=4):
//
// - submit-storm bit-identity: results of async submission are identical
//   to synchronous Kernel::run at every shard count, worker count, and
//   batching setting;
// - validate-once BoundArgs: one bind, many string-compare-free runs;
//   handles bound against a different kernel are rejected as stale, not
//   executed;
// - backpressure: a full queue rejects with RunStatus::Overloaded under
//   the Reject policy and absorbs the burst under Block;
// - graceful shutdown: destroying a server with queued and in-flight
//   requests completes every future;
// - counters: Serve.Submitted == Serve.Completed + Serve.Rejected after
//   drain; micro-batching shows up in Serve.BatchedRuns only when on.
//
//===----------------------------------------------------------------------===//

#include "serve/Server.h"

#include "exec/Interpreter.h"
#include "ir/Builder.h"
#include "support/Statistics.h"

#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <thread>
#include <vector>

using namespace daisy;
using namespace daisy::serve;

namespace {

/// GEMM with a chosen loop order (the canonical many-variants program).
Program makeGemm(const std::string &O1, const std::string &O2,
                 const std::string &O3, int N) {
  Program Prog("gemm_" + O1 + O2 + O3);
  Prog.addArray("A", {N, N});
  Prog.addArray("B", {N, N});
  Prog.addArray("C", {N, N});
  Prog.append(forLoop(
      O1, 0, N,
      {forLoop(O2, 0, N,
               {forLoop(O3, 0, N,
                        {assign("S0", "C", {ax("i"), ax("j")},
                                read("C", {ax("i"), ax("j")}) +
                                    read("A", {ax("i"), ax("k")}) *
                                        read("B", {ax("k"), ax("j")}))})})}));
  return Prog;
}

/// Two-nest program with a kernel-managed transient temporary.
Program makeTransientProgram(int N) {
  Program Prog("transient");
  Prog.addArray("In", {N});
  Prog.addArray("Out", {N});
  Prog.addArray("Tmp", {N}, /*Transient=*/true);
  Prog.append(forLoop("i", 0, N,
                      {assign("S0", "Tmp", {ax("i")},
                              read("In", {ax("i")}) * lit(2.0))}));
  Prog.append(forLoop("i", 0, N,
                      {assign("S1", "Out", {ax("i")},
                              read("Tmp", {ax("i")}) + lit(1.0))}));
  return Prog;
}

/// Caller-owned argument storage for one request, initialized like a
/// deterministic DataEnv so results are comparable across paths.
struct OwnedArgs {
  std::vector<std::pair<std::string, std::vector<double>>> Buffers;

  explicit OwnedArgs(const Program &Prog, uint64_t Seed = 1) {
    DataEnv Env(Prog);
    Env.initDeterministic(Seed);
    for (const ArrayDecl &Decl : Prog.arrays())
      if (!Decl.Transient)
        Buffers.emplace_back(Decl.Name, Env.buffer(Decl.Name));
  }

  ArgBinding binding() {
    ArgBinding Args;
    for (auto &[Name, Storage] : Buffers)
      Args.bind(Name, Storage);
    return Args;
  }
};

/// A kernel that keeps one worker busy for a few milliseconds — long
/// enough that a handful of microsecond-scale submits are guaranteed to
/// land while it is still running.
Kernel makePlugKernel() {
  static Program Prog = makeGemm("i", "j", "k", 160);
  return Kernel::compile(Prog);
}

/// Spin until the worker has picked up everything queued so far.
void waitUntilQueueEmpty(Server &S) {
  while (S.queueDepth() != 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
}

} // namespace

//===----------------------------------------------------------------------===//
// BoundArgs: validate once, run many
//===----------------------------------------------------------------------===//

TEST(BoundArgsTest, BindValidatesOnceAndRunsMatchArgBinding) {
  Program Prog = makeGemm("i", "j", "k", 12);
  Kernel K = Kernel::compile(Prog);

  OwnedArgs Sync(Prog, 7);
  ASSERT_TRUE(K.run(Sync.binding()));

  OwnedArgs Prepared(Prog, 7);
  BoundArgs Bound = K.bind(Prepared.binding());
  ASSERT_TRUE(Bound.ok());
  EXPECT_EQ(Bound.slots().size(), Prog.arrays().size());
  ASSERT_TRUE(K.run(Bound));
  EXPECT_EQ(Prepared.Buffers, Sync.Buffers);

  // The handle is reusable: a second run through the same BoundArgs sees
  // the same semantics (C accumulates, so refill first).
  OwnedArgs Fresh(Prog, 7);
  Prepared.Buffers = Fresh.Buffers; // restore inputs; pointers unchanged?
  // Vector assignment may reallocate — rebind to be pointer-correct.
  Bound = K.bind(Prepared.binding());
  ASSERT_TRUE(K.run(Bound));
  EXPECT_EQ(Prepared.Buffers, Sync.Buffers);
}

TEST(BoundArgsTest, TransientProgramPreparedRunsAreExact) {
  Program Prog = makeTransientProgram(32);
  Kernel K = Kernel::compile(Prog);
  std::vector<double> In(32, 3.0), Out(32, 0.0);
  BoundArgs Bound = K.bind(ArgBinding().bind("In", In).bind("Out", Out));
  ASSERT_TRUE(Bound.ok());
  ASSERT_TRUE(K.run(Bound));
  std::vector<double> First = Out;
  // Re-run through the pooled (now dirty) context: transient scratch is
  // re-zeroed, results identical.
  ASSERT_TRUE(K.run(Bound));
  EXPECT_EQ(Out, First);
  EXPECT_EQ(Out[0], 3.0 * 2.0 + 1.0);
}

TEST(BoundArgsTest, FailedValidationYieldsNonOkHandle) {
  Kernel K = Kernel::compile(makeGemm("i", "j", "k", 8));
  std::vector<double> A(64), B(64);
  BoundArgs Bound = K.bind(ArgBinding().bind("A", A).bind("B", B));
  EXPECT_FALSE(Bound.ok());
  EXPECT_NE(Bound.error().find("not bound"), std::string::npos);
  EXPECT_EQ(Bound.kernelToken(), nullptr);

  RunStatus Status = K.run(Bound);
  EXPECT_FALSE(Status.ok());
  EXPECT_EQ(Status.Why, RunStatus::BindError);
  EXPECT_NE(Status.Error.find("not bound"), std::string::npos);
}

TEST(BoundArgsTest, StaleRebindAgainstOtherKernelIsRejected) {
  Program Prog = makeGemm("i", "j", "k", 8);
  // Two distinct compilations of the same program: structurally equal,
  // but slot tables must not transfer between kernel instances.
  Kernel KA = Kernel::compile(Prog);
  Kernel KB = Kernel::compile(Prog);
  OwnedArgs Args(Prog);
  BoundArgs Bound = KA.bind(Args.binding());
  ASSERT_TRUE(Bound.ok());
  EXPECT_NE(Bound.kernelToken(), nullptr);

  RunStatus Stale = KB.run(Bound);
  EXPECT_FALSE(Stale.ok());
  EXPECT_EQ(Stale.Why, RunStatus::BindError);
  EXPECT_NE(Stale.Error.find("different kernel"), std::string::npos);

  // The owning kernel still accepts the handle.
  EXPECT_TRUE(KA.run(Bound));
}

TEST(BoundArgsTest, DefaultHandleIsRejected) {
  Kernel K = Kernel::compile(makeGemm("i", "j", "k", 8));
  RunStatus Status = K.run(BoundArgs());
  EXPECT_FALSE(Status.ok());
  EXPECT_NE(Status.Error.find("unbound"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Submit storm: bit-identity across shard/worker/batch configurations
//===----------------------------------------------------------------------===//

namespace {

void submitStorm(size_t Shards, size_t MaxBatch) {
  std::vector<Program> Programs;
  Programs.push_back(makeGemm("i", "j", "k", 12));
  Programs.push_back(makeGemm("j", "k", "i", 12));
  Programs.push_back(makeTransientProgram(64));

  ServerOptions Options;
  Options.Shards = Shards;
  Options.Workers = 4;
  Options.QueueCapacity = 256;
  Options.MaxBatch = MaxBatch;
  Server S(Options);

  std::vector<Kernel> Kernels;
  for (const Program &Prog : Programs)
    Kernels.push_back(S.compile(Prog));

  // Synchronous references.
  std::vector<OwnedArgs> Expected;
  for (size_t P = 0; P < Programs.size(); ++P) {
    Expected.emplace_back(Programs[P], 5);
    ASSERT_TRUE(Kernels[P].run(Expected.back().binding()));
  }

  constexpr int Threads = 4;
  constexpr int Reps = 6;
  std::vector<int> Mismatches(Threads, 0);
  std::vector<std::thread> Submitters;
  for (int T = 0; T < Threads; ++T)
    Submitters.emplace_back([&, T] {
      // Every request owns its buffers for the whole round trip.
      std::vector<std::unique_ptr<OwnedArgs>> Owned;
      std::vector<size_t> Kind;
      std::vector<std::future<RunStatus>> Futures;
      for (int R = 0; R < Reps; ++R)
        for (size_t P = 0; P < Programs.size(); ++P) {
          Owned.push_back(std::make_unique<OwnedArgs>(Programs[P], 5));
          Kind.push_back(P);
          BoundArgs Bound = Kernels[P].bind(Owned.back()->binding());
          if (!Bound.ok()) {
            ++Mismatches[T];
            continue;
          }
          Futures.push_back(S.submit(Kernels[P], std::move(Bound)));
        }
      for (size_t I = 0; I < Futures.size(); ++I) {
        RunStatus Status = Futures[I].get();
        if (!Status.ok() ||
            Owned[I]->Buffers != Expected[Kind[I]].Buffers)
          ++Mismatches[T];
      }
    });
  for (std::thread &W : Submitters)
    W.join();
  for (int T = 0; T < Threads; ++T)
    EXPECT_EQ(Mismatches[T], 0) << "submitter " << T;

  S.drain();
  EXPECT_EQ(S.queueDepth(), 0u);
}

} // namespace

TEST(ServeStormTest, OneShardUnbatched) { submitStorm(1, 1); }
TEST(ServeStormTest, OneShardBatched) { submitStorm(1, 8); }
TEST(ServeStormTest, TwoShardsUnbatched) { submitStorm(2, 1); }
TEST(ServeStormTest, TwoShardsBatched) { submitStorm(2, 8); }

//===----------------------------------------------------------------------===//
// Shard routing
//===----------------------------------------------------------------------===//

TEST(ServeShardTest, RoutingIsStableAndCachesStayShardLocal) {
  ServerOptions Options;
  Options.Shards = 2;
  Options.Workers = 1;
  Server S(Options);
  Program Prog = makeGemm("i", "j", "k", 10);

  resetStatsCounters();
  Kernel K1 = S.compile(Prog);
  Kernel K2 = S.compile(Prog);
  // Same routing key -> same shard -> one compile, one shared kernel.
  EXPECT_EQ(statsCounter("Engine.PlanCompiles"), 1);
  EXPECT_EQ(&K1.plan(), &K2.plan());
  EXPECT_EQ(&S.shardFor(Prog), &S.shardFor(Prog));
}

//===----------------------------------------------------------------------===//
// Backpressure
//===----------------------------------------------------------------------===//

TEST(ServeBackpressureTest, RejectPolicyFailsFastWithOverloaded) {
  resetStatsCounters();
  ServerOptions Options;
  Options.Workers = 1;
  Options.QueueCapacity = 4;
  Options.Policy = BackpressurePolicy::Reject;
  Options.MaxBatch = 1;
  Server S(Options);

  Kernel Plug = makePlugKernel();
  OwnedArgs PlugArgs(Plug.program());
  std::future<RunStatus> PlugDone =
      S.submit(Plug, Plug.bind(PlugArgs.binding()));
  // Wait until the single worker has taken the plug off the queue; it
  // now executes for milliseconds while we fill the queue in
  // microseconds.
  waitUntilQueueEmpty(S);

  Program Small = makeGemm("i", "j", "k", 8);
  Kernel K = S.compile(Small);
  std::vector<std::unique_ptr<OwnedArgs>> Owned;
  std::vector<std::future<RunStatus>> Accepted;
  for (size_t I = 0; I < Options.QueueCapacity; ++I) {
    Owned.push_back(std::make_unique<OwnedArgs>(Small));
    Accepted.push_back(S.submit(K, K.bind(Owned.back()->binding())));
  }
  // The queue is now full and the worker is still inside the plug: the
  // next submit must be rejected immediately.
  Owned.push_back(std::make_unique<OwnedArgs>(Small));
  std::future<RunStatus> Rejected =
      S.submit(K, K.bind(Owned.back()->binding()));
  ASSERT_EQ(Rejected.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  RunStatus Status = Rejected.get();
  EXPECT_FALSE(Status.ok());
  EXPECT_EQ(Status.Why, RunStatus::Overloaded);

  S.drain();
  EXPECT_TRUE(PlugDone.get().ok());
  for (auto &F : Accepted)
    EXPECT_TRUE(F.get().ok());
  EXPECT_EQ(statsCounter("Serve.Rejected"), 1);
  EXPECT_EQ(statsCounter("Serve.Submitted"),
            statsCounter("Serve.Completed") + statsCounter("Serve.Rejected"));
  EXPECT_GE(statsCounter("Serve.QueueDepthMax"),
            static_cast<int64_t>(Options.QueueCapacity));
}

TEST(ServeBackpressureTest, BlockPolicyAbsorbsTheBurst) {
  resetStatsCounters();
  ServerOptions Options;
  Options.Workers = 1;
  Options.QueueCapacity = 2;
  Options.Policy = BackpressurePolicy::Block;
  Options.MaxBatch = 1;
  Server S(Options);

  Kernel Plug = makePlugKernel();
  OwnedArgs PlugArgs(Plug.program());
  std::future<RunStatus> PlugDone =
      S.submit(Plug, Plug.bind(PlugArgs.binding()));
  waitUntilQueueEmpty(S);

  Program Small = makeGemm("i", "j", "k", 8);
  Kernel K = S.compile(Small);
  constexpr size_t Burst = 6; // 3x the queue bound: submitters must block.
  std::vector<std::unique_ptr<OwnedArgs>> Owned;
  std::vector<std::future<RunStatus>> Futures;
  for (size_t I = 0; I < Burst; ++I)
    Owned.push_back(std::make_unique<OwnedArgs>(Small));
  std::thread Submitter([&] {
    for (size_t I = 0; I < Burst; ++I)
      Futures.push_back(S.submit(K, K.bind(Owned[I]->binding())));
  });
  Submitter.join();

  S.drain();
  EXPECT_TRUE(PlugDone.get().ok());
  for (auto &F : Futures)
    EXPECT_TRUE(F.get().ok());
  EXPECT_EQ(statsCounter("Serve.Rejected"), 0);
  // Depth after push never exceeds the bound — that is what blocking
  // buys.
  EXPECT_LE(statsCounter("Serve.QueueDepthMax"),
            static_cast<int64_t>(Options.QueueCapacity));
  EXPECT_EQ(statsCounter("Serve.Submitted"), statsCounter("Serve.Completed"));
}

//===----------------------------------------------------------------------===//
// Micro-batching
//===----------------------------------------------------------------------===//

TEST(ServeBatchingTest, SameKernelRequestsCoalesceOnlyWhenEnabled) {
  Program Small = makeGemm("i", "j", "k", 8);
  for (size_t MaxBatch : {size_t(1), size_t(4)}) {
    resetStatsCounters();
    ServerOptions Options;
    Options.Workers = 1;
    Options.QueueCapacity = 64;
    Options.MaxBatch = MaxBatch;
    Server S(Options);

    Kernel Plug = makePlugKernel();
    OwnedArgs PlugArgs(Plug.program());
    std::future<RunStatus> PlugDone =
        S.submit(Plug, Plug.bind(PlugArgs.binding()));
    waitUntilQueueEmpty(S);

    // Queue 8 same-kernel requests behind the plug; with batching on the
    // worker drains them in coalesced dispatches.
    Kernel K = S.compile(Small);
    std::vector<std::unique_ptr<OwnedArgs>> Owned;
    std::vector<std::future<RunStatus>> Futures;
    for (int I = 0; I < 8; ++I) {
      Owned.push_back(std::make_unique<OwnedArgs>(Small));
      Futures.push_back(S.submit(K, K.bind(Owned.back()->binding())));
    }
    S.drain();
    EXPECT_TRUE(PlugDone.get().ok());
    for (auto &F : Futures)
      EXPECT_TRUE(F.get().ok());
    if (MaxBatch == 1)
      EXPECT_EQ(statsCounter("Serve.BatchedRuns"), 0);
    else
      EXPECT_GE(statsCounter("Serve.BatchedRuns"), 2);
    // Histogram samples cover every accepted request.
    uint64_t Samples = 0;
    for (uint64_t Bucket : S.queueDepthHistogram())
      Samples += Bucket;
    EXPECT_EQ(Samples, 9u); // plug + 8 fillers
  }
}

//===----------------------------------------------------------------------===//
// Shutdown
//===----------------------------------------------------------------------===//

TEST(ServeShutdownTest, DestructorCompletesInflightAndQueuedRequests) {
  Program Small = makeGemm("i", "j", "k", 10);
  std::vector<std::unique_ptr<OwnedArgs>> Owned;
  std::vector<std::future<RunStatus>> Futures;
  OwnedArgs Expected(Small, 1);
  {
    ServerOptions Options;
    Options.Workers = 2;
    Options.QueueCapacity = 64;
    Server S(Options);
    Kernel K = S.compile(Small);
    ASSERT_TRUE(K.run(Expected.binding()));
    for (int I = 0; I < 16; ++I) {
      Owned.push_back(std::make_unique<OwnedArgs>(Small, 1));
      Futures.push_back(S.submit(K, K.bind(Owned.back()->binding())));
    }
    // Destructor runs with most requests still queued.
  }
  for (size_t I = 0; I < Futures.size(); ++I) {
    ASSERT_EQ(Futures[I].wait_for(std::chrono::seconds(0)),
              std::future_status::ready)
        << "request " << I << " leaked through shutdown";
    EXPECT_TRUE(Futures[I].get().ok());
    EXPECT_EQ(Owned[I]->Buffers, Expected.Buffers);
  }
}

//===----------------------------------------------------------------------===//
// Stale/misbound submissions through the server
//===----------------------------------------------------------------------===//

TEST(ServeSubmitTest, StaleAndUnboundArgsFailTheFuture) {
  ServerOptions Options;
  Options.Workers = 1;
  Server S(Options);
  Program Prog = makeGemm("i", "j", "k", 8);
  Kernel KA = Kernel::compile(Prog);
  Kernel KB = Kernel::compile(Prog);

  OwnedArgs Args(Prog);
  BoundArgs BoundToA = KA.bind(Args.binding());
  ASSERT_TRUE(BoundToA.ok());
  EXPECT_EQ(BoundToA.kernelToken(), KA.bind(Args.binding()).kernelToken());

  // Direct run: rejected as stale.
  RunStatus Direct = KB.run(BoundToA);
  EXPECT_FALSE(Direct.ok());
  EXPECT_NE(Direct.Error.find("different kernel"), std::string::npos);

  // Through the server: the future carries the same rejection.
  RunStatus Via = S.submit(KB, BoundToA).get();
  EXPECT_FALSE(Via.ok());
  EXPECT_NE(Via.Error.find("different kernel"), std::string::npos);

  // Unbound handle: fails fast without reaching a worker.
  RunStatus Unbound = S.submit(KA, BoundArgs()).get();
  EXPECT_FALSE(Unbound.ok());
  EXPECT_NE(Unbound.Error.find("unbound"), std::string::npos);

  // The ArgBinding convenience overload pays validation at submit.
  std::vector<double> OnlyA(64, 0.0);
  RunStatus Bad = S.submit(KA, ArgBinding().bind("A", OnlyA)).get();
  EXPECT_FALSE(Bad.ok());
  EXPECT_NE(Bad.Error.find("not bound"), std::string::npos);

  S.drain();
}
