//===- tests/TuneTest.cpp - online adaptive tuning tests -------------------==//
//
// Part of the daisy project. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The online tuning subsystem's contracts (this suite runs under
// ThreadSanitizer in CI alongside the serving suites):
//
// - profile collector: the 1-in-SampleEvery gate fires on the exact
//   cadence, and snapshot() aggregates count/mean per plan version over
//   the ring window with the lifetime totals intact across wraps;
// - versioned hot-swap: an installed PlanVersion executes behind the
//   existing handles (SlotMap remaps the caller's base-slot table,
//   version-local transients are kernel-managed), promote keeps it,
//   rollback restores the prior plan; a second probe is refused while
//   one is in flight;
// - swap-under-fire: 8 reader threads hammer one kernel while a writer
//   loops install/promote/rollback — every read result is bit-identical
//   to the reference, no torn plan (the TSan target);
// - end-to-end promote: an Engine with OnlineTuning enabled samples live
//   runs, runCycle() calibrates the simulator, re-searches, installs a
//   bit-identity-gated probe, and a later cycle promotes it on measured
//   gain (Engine.TuneSwaps), with results bit-identical across the swap;
// - forced rollback: the "tune.promote" fail point makes the decision
//   see a regression — the probe rolls back (Engine.TuneRollbacks), the
//   candidate lands in the rejected set, and the kernel cools down;
// - calibration persistence: recorded scale factors survive an Engine
//   checkpoint round-trip (DatabaseFormatVersion 2);
// - serving surface: Server::health reports the per-shard tuner lane,
//   and lane context affinity counts Serve.ContextAffinityHits.
//
//===----------------------------------------------------------------------===//

#include "api/Engine.h"
#include "api/KernelImpl.h"
#include "ir/Builder.h"
#include "serve/Server.h"
#include "support/FailPoint.h"
#include "support/Statistics.h"
#include "tune/Profile.h"
#include "tune/Tuner.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace daisy;
using namespace daisy::serve;

namespace {

/// GEMM with a chosen loop order — the canonical re-search subject: the
/// scheduler lifts it to a BLAS call whose per-(i,j) ascending-k
/// accumulation matches the ijk nest exactly, so the candidate passes
/// the tuner's Eps = 0.0 bit-identity gate while hashing differently.
Program makeGemm(const std::string &O1, const std::string &O2,
                 const std::string &O3, int N) {
  Program Prog("gemm_" + O1 + O2 + O3);
  Prog.addArray("A", {N, N});
  Prog.addArray("B", {N, N});
  Prog.addArray("C", {N, N});
  Prog.append(forLoop(
      O1, 0, N,
      {forLoop(O2, 0, N,
               {forLoop(O3, 0, N,
                        {assign("S0", "C", {ax("i"), ax("j")},
                                read("C", {ax("i"), ax("j")}) +
                                    read("A", {ax("i"), ax("k")}) *
                                        read("B", {ax("k"), ax("j")}))})})}));
  return Prog;
}

/// Base program of the direct hot-swap tests: Out[i] = In[i] * 2 + 1 in
/// one nest, no transients.
Program makePairProgram(int N) {
  Program Prog("pair");
  Prog.addArray("In", {N});
  Prog.addArray("Out", {N});
  Prog.append(forLoop("i", 0, N,
                      {assign("S0", "Out", {ax("i")},
                              read("In", {ax("i")}) * lit(2.0) + lit(1.0))}));
  return Prog;
}

/// Bit-identical alternative with a different shape: arrays declared in
/// a different order plus a version-local transient, two nests. Exercises
/// SlotMap remapping ({1, 0, -1} against makePairProgram) and
/// version-managed scratch.
Program makePairVariant(int N) {
  Program Prog("pair_variant");
  Prog.addArray("Out", {N});
  Prog.addArray("In", {N});
  Prog.addArray("Tmp", {N}, /*Transient=*/true);
  Prog.append(forLoop("i", 0, N,
                      {assign("S0", "Tmp", {ax("i")},
                              read("In", {ax("i")}) * lit(2.0))}));
  Prog.append(forLoop("i", 0, N,
                      {assign("S1", "Out", {ax("i")},
                              read("Tmp", {ax("i")}) + lit(1.0))}));
  return Prog;
}

/// Caller-owned argument storage initialized like a deterministic
/// DataEnv so results are comparable across paths.
struct OwnedArgs {
  std::vector<std::pair<std::string, std::vector<double>>> Buffers;

  explicit OwnedArgs(const Program &Prog, uint64_t Seed = 1) {
    DataEnv Env(Prog);
    Env.initDeterministic(Seed);
    for (const ArrayDecl &Decl : Prog.arrays())
      if (!Decl.Transient)
        Buffers.emplace_back(Decl.Name, Env.buffer(Decl.Name));
  }

  ArgBinding binding() {
    ArgBinding Args;
    for (auto &[Name, Storage] : Buffers)
      Args.bind(Name, Storage);
    return Args;
  }
};

/// A unique checkpoint path under the test temp dir, cleaned up on both
/// ends (current, rotation, and temp slots).
struct TempCkpt {
  std::string Path;

  explicit TempCkpt(const std::string &Name)
      : Path(::testing::TempDir() + "daisy_tune_" +
             std::to_string(::getpid()) + "_" + Name + ".ckpt") {
    cleanup();
  }
  ~TempCkpt() { cleanup(); }

  void cleanup() {
    std::remove(Path.c_str());
    std::remove((Path + ".prev").c_str());
    std::remove((Path + ".tmp").c_str());
  }
};

} // namespace

//===----------------------------------------------------------------------===//
// Profile collector
//===----------------------------------------------------------------------===//

TEST(ProfileTest, SamplingGateFiresOnCadence) {
  ProfileOptions Opts;
  Opts.SampleEvery = 4;
  KernelProfile Prof(Opts);
  int Fired = 0;
  for (int I = 0; I < 16; ++I)
    if (Prof.shouldSample())
      ++Fired;
  EXPECT_EQ(Fired, 4); // Ticks 0, 4, 8, 12.
  EXPECT_EQ(Prof.sampleEvery(), 4u);
}

TEST(ProfileTest, SampleEveryOneTimesEveryRun) {
  ProfileOptions Opts;
  Opts.SampleEvery = 1;
  KernelProfile Prof(Opts);
  for (int I = 0; I < 8; ++I)
    EXPECT_TRUE(Prof.shouldSample());
}

TEST(ProfileTest, SnapshotAggregatesPerVersion) {
  KernelProfile Prof;
  Prof.record(0, 1000);
  Prof.record(0, 3000);
  Prof.record(1, 2000);

  KernelProfile::Snapshot Snap = Prof.snapshot();
  EXPECT_EQ(Snap.WindowCount, 3u);
  EXPECT_EQ(Snap.SampledCount, 3u);
  EXPECT_DOUBLE_EQ(Snap.WindowTotalUs, 6.0);

  const KernelProfile::VersionStats *Base = Snap.versionStats(0);
  ASSERT_NE(Base, nullptr);
  EXPECT_EQ(Base->Count, 2u);
  EXPECT_DOUBLE_EQ(Base->MeanUs, 2.0);

  const KernelProfile::VersionStats *Probe = Snap.versionStats(1);
  ASSERT_NE(Probe, nullptr);
  EXPECT_EQ(Probe->Count, 1u);
  EXPECT_DOUBLE_EQ(Probe->MeanUs, 2.0);

  EXPECT_EQ(Snap.versionStats(7), nullptr);
}

TEST(ProfileTest, RingWrapKeepsWindowBoundedAndLifetimeTotals) {
  ProfileOptions Opts;
  Opts.RingSize = 16; // The documented clamp floor.
  KernelProfile Prof(Opts);
  for (int I = 0; I < 40; ++I)
    Prof.record(0, 1000);

  KernelProfile::Snapshot Snap = Prof.snapshot();
  EXPECT_EQ(Snap.WindowCount, 16u);  // Ring holds the most recent window.
  EXPECT_EQ(Snap.SampledCount, 40u); // Lifetime count survives the wrap.
  EXPECT_DOUBLE_EQ(Prof.sampledTotalUs(), 40.0);
}

//===----------------------------------------------------------------------===//
// Versioned plan hot-swap (direct KernelImpl surface)
//===----------------------------------------------------------------------===//

TEST(HotSwapTest, InstalledVersionRunsWithSlotMapRemap) {
  constexpr int N = 64;
  Program Base = makePairProgram(N);
  auto Impl = std::make_shared<KernelImpl>(Base, PlanOptions{});

  std::vector<double> In(N, 3.0), Out(N, 0.0);
  std::vector<BufferRef> Slots = {{In.data(), In.size()},
                                  {Out.data(), Out.size()}};

  runPreparedSlots(*Impl, Slots.data());
  EXPECT_EQ(Out[0], 7.0);
  EXPECT_EQ(Impl->currentVersionId(), 0u); // Base plan.

  // Variant slot order is (Out, In, Tmp); base order is (In, Out).
  uint32_t Id = Impl->claimVersionId();
  auto V = std::make_shared<const PlanVersion>(
      makePairVariant(N), PlanOptions{}, std::vector<int32_t>{1, 0, -1}, Id);
  ASSERT_TRUE(Impl->installProbe(V));
  EXPECT_TRUE(Impl->probeInFlight());
  EXPECT_EQ(Impl->currentVersionId(), Id);

  // A second probe is refused while one is in flight.
  EXPECT_FALSE(Impl->installProbe(V));

  std::fill(Out.begin(), Out.end(), 0.0);
  runPreparedSlots(*Impl, Slots.data());
  EXPECT_EQ(Out[0], 7.0);
  EXPECT_EQ(Out[N - 1], 7.0);

  ASSERT_TRUE(Impl->promoteProbe());
  EXPECT_FALSE(Impl->probeInFlight());
  EXPECT_EQ(Impl->currentVersionId(), Id); // Promoted version stays.

  // Promote with nothing in flight is a no-op.
  EXPECT_FALSE(Impl->promoteProbe());
}

TEST(HotSwapTest, RollbackRestoresPriorVersion) {
  constexpr int N = 32;
  Program Base = makePairProgram(N);
  auto Impl = std::make_shared<KernelImpl>(Base, PlanOptions{});

  uint32_t Id = Impl->claimVersionId();
  auto V = std::make_shared<const PlanVersion>(
      makePairVariant(N), PlanOptions{}, std::vector<int32_t>{1, 0, -1}, Id);
  ASSERT_TRUE(Impl->installProbe(V));
  ASSERT_TRUE(Impl->rollbackProbe());
  EXPECT_EQ(Impl->currentVersionId(), 0u); // Back to the base plan.
  EXPECT_FALSE(Impl->probeInFlight());
  EXPECT_FALSE(Impl->rollbackProbe()); // Nothing left to roll back.

  std::vector<double> In(N, 5.0), Out(N, 0.0);
  std::vector<BufferRef> Slots = {{In.data(), In.size()},
                                  {Out.data(), Out.size()}};
  runPreparedSlots(*Impl, Slots.data());
  EXPECT_EQ(Out[0], 11.0);
}

// The TSan target: 8 readers run the kernel through pooled contexts
// (each resolving the version through the epoch-cached lock-free path)
// while a writer loops install/promote and install/rollback. Every
// result must be exactly the reference — a torn or half-installed plan
// would produce garbage (and TSan would flag the race).
TEST(HotSwapStressTest, ReadersSeeNoTornPlanAcrossSwaps) {
  constexpr int N = 256;
  constexpr int Readers = 8;
  Program Base = makePairProgram(N);
  auto Impl = std::make_shared<KernelImpl>(Base, PlanOptions{});

  std::atomic<bool> Stop{false};
  std::atomic<int> Mismatches{0};

  std::vector<std::thread> Threads;
  for (int R = 0; R < Readers; ++R)
    Threads.emplace_back([&, R] {
      std::vector<double> In(N), Out(N);
      for (int I = 0; I < N; ++I)
        In[I] = static_cast<double>(R + 1) + I * 0.5;
      std::vector<BufferRef> Slots = {{In.data(), In.size()},
                                      {Out.data(), Out.size()}};
      while (!Stop.load(std::memory_order_relaxed)) {
        std::fill(Out.begin(), Out.end(), 0.0);
        runPreparedSlots(*Impl, Slots.data());
        for (int I = 0; I < N; ++I)
          if (Out[I] != In[I] * 2.0 + 1.0) {
            Mismatches.fetch_add(1, std::memory_order_relaxed);
            break;
          }
      }
    });

  // Writer: 200 full install/decide rounds, alternating promote and
  // rollback, each round publishing a freshly compiled version.
  for (int Round = 0; Round < 200; ++Round) {
    uint32_t Id = Impl->claimVersionId();
    auto V = std::make_shared<const PlanVersion>(
        makePairVariant(N), PlanOptions{}, std::vector<int32_t>{1, 0, -1}, Id);
    ASSERT_TRUE(Impl->installProbe(std::move(V)));
    std::this_thread::yield();
    if (Round % 2 == 0)
      ASSERT_TRUE(Impl->promoteProbe());
    else
      ASSERT_TRUE(Impl->rollbackProbe());
  }
  Stop.store(true, std::memory_order_relaxed);
  for (std::thread &T : Threads)
    T.join();

  EXPECT_EQ(Mismatches.load(), 0);
}

//===----------------------------------------------------------------------===//
// End-to-end: measure -> calibrate -> re-search -> probe -> promote
//===----------------------------------------------------------------------===//

namespace {

/// Tuning-enabled engine in deterministic mode: no background lane
/// (Interval 0), every run sampled, tiny probe window.
EngineOptions tuningOptions(double MinGainPct) {
  EngineOptions Opts;
  Opts.OnlineTuning.Enable = true;
  Opts.OnlineTuning.Interval = std::chrono::microseconds(0);
  Opts.OnlineTuning.SampleEvery = 1;
  Opts.OnlineTuning.MinSamples = 4;
  Opts.OnlineTuning.MinGainPct = MinGainPct;
  return Opts;
}

} // namespace

TEST(TunerCycleTest, PromotesBitIdenticalCandidateFromLiveSamples) {
  // Negative gate: promote on any measured delta — the swap mechanics,
  // not the timing noise, are under test.
  Engine Eng(tuningOptions(/*MinGainPct=*/-1e9));
  Program G = makeGemm("i", "j", "k", 24);
  Kernel K = Eng.compile(G);
  ASSERT_TRUE(Eng.tuner() != nullptr);
  EXPECT_TRUE(Eng.tuner()->stats().Enabled);
  EXPECT_EQ(Eng.tuner()->stats().Tracked, 1u);

  // Reference result from the tree-walk interpreter (the semantics both
  // plans are measured against).
  Kernel Ref = Kernel::treeWalk(G);
  OwnedArgs Expected(G, 7);
  ASSERT_TRUE(Ref.run(Expected.binding()));

  // Live traffic: every run is sampled (SampleEvery = 1).
  for (int I = 0; I < 8; ++I) {
    OwnedArgs Args(G, 7);
    ASSERT_TRUE(K.run(Args.binding()));
    EXPECT_EQ(Args.Buffers, Expected.Buffers);
  }

  // Cycle 1: calibrates the simulator and installs the re-searched
  // candidate (the BLAS-call lift of the gemm nest) as a probe.
  EXPECT_GE(Eng.tuner()->runCycle(), 1u);
  OnlineTuner::Stats S = Eng.tuner()->stats();
  EXPECT_EQ(S.Probes, 1);
  EXPECT_EQ(S.ProbesInFlight, 1u);
  EXPECT_GE(S.Calibrations, 1);
  EXPECT_GT(Eng.calibrationFor(Engine::routingKey(G)), 0.0);

  // Probe traffic — bit-identical behind the unchanged handle.
  for (int I = 0; I < 8; ++I) {
    OwnedArgs Args(G, 7);
    ASSERT_TRUE(K.run(Args.binding()));
    EXPECT_EQ(Args.Buffers, Expected.Buffers);
  }

  // Cycle 2: the probe window is full; the measured decision promotes.
  EXPECT_GE(Eng.tuner()->runCycle(), 1u);
  S = Eng.tuner()->stats();
  EXPECT_EQ(S.Swaps, 1);
  EXPECT_EQ(S.Rollbacks, 0);
  EXPECT_EQ(S.ProbesInFlight, 0u);
  EXPECT_GE(statsCounter("Engine.TuneSwaps"), 1);

  // Post-swap runs stay bit-identical to the reference.
  for (int I = 0; I < 4; ++I) {
    OwnedArgs Args(G, 7);
    ASSERT_TRUE(K.run(Args.binding()));
    EXPECT_EQ(Args.Buffers, Expected.Buffers);
  }
}

TEST(TunerCycleTest, DisabledTuningAttachesNothing) {
  Engine Eng; // Default options: tuning off.
  EXPECT_EQ(Eng.tuner(), nullptr);
  Eng.drainTuning(); // No-op, not a crash.
  Kernel K = Eng.compile(makeGemm("i", "j", "k", 8));
  OwnedArgs Args(makeGemm("i", "j", "k", 8), 3);
  EXPECT_TRUE(K.run(Args.binding()));
}

#if DAISY_ENABLE_FAILPOINTS

TEST(TunerRollbackTest, ForcedRegressionRollsBackAndCoolsDown) {
  // Real gate (0%): the probe must not regress. The "tune.promote" fail
  // point forces the decision to see one, driving rollback
  // deterministically regardless of actual timings.
  Engine Eng(tuningOptions(/*MinGainPct=*/0.0));
  Program G = makeGemm("i", "j", "k", 24);
  Kernel K = Eng.compile(G);

  Kernel Ref = Kernel::treeWalk(G);
  OwnedArgs Expected(G, 7);
  ASSERT_TRUE(Ref.run(Expected.binding()));

  for (int I = 0; I < 8; ++I) {
    OwnedArgs Args(G, 7);
    ASSERT_TRUE(K.run(Args.binding()));
  }
  ASSERT_GE(Eng.tuner()->runCycle(), 1u); // Installs the probe.
  ASSERT_EQ(Eng.tuner()->stats().ProbesInFlight, 1u);

  for (int I = 0; I < 8; ++I) {
    OwnedArgs Args(G, 7);
    ASSERT_TRUE(K.run(Args.binding()));
  }

  armFailPoint("tune.promote", {FailAction::Trigger, 1.0}, /*Seed=*/42);
  EXPECT_GE(Eng.tuner()->runCycle(), 1u); // Decision: forced regression.
  disarmAllFailPoints();

  OnlineTuner::Stats S = Eng.tuner()->stats();
  EXPECT_EQ(S.Rollbacks, 1);
  EXPECT_EQ(S.Swaps, 0);
  EXPECT_EQ(S.ProbesInFlight, 0u);
  EXPECT_GE(statsCounter("Engine.TuneRollbacks"), 1);
  EXPECT_GE(failPointFireCount("tune.promote"), 0u); // Disarmed resets.

  // Rolled back: the base plan serves, bit-identical.
  for (int I = 0; I < 4; ++I) {
    OwnedArgs Args(G, 7);
    ASSERT_TRUE(K.run(Args.binding()));
    EXPECT_EQ(Args.Buffers, Expected.Buffers);
  }

  // The rejected candidate is remembered and the kernel cools down: more
  // traffic plus more cycles install no new probe.
  for (int I = 0; I < 8; ++I) {
    OwnedArgs Args(G, 7);
    ASSERT_TRUE(K.run(Args.binding()));
  }
  for (int C = 0; C < 6; ++C)
    Eng.tuner()->runCycle();
  S = Eng.tuner()->stats();
  EXPECT_EQ(S.Probes, 1); // Still just the original probe.
  EXPECT_EQ(S.ProbesInFlight, 0u);
}

#endif // DAISY_ENABLE_FAILPOINTS

//===----------------------------------------------------------------------===//
// Calibration persistence
//===----------------------------------------------------------------------===//

TEST(CalibrationPersistTest, ScalesSurviveCheckpointRoundTrip) {
  TempCkpt P("calibration");
  {
    EngineOptions Opts;
    Opts.DatabasePath = P.Path;
    Engine Eng(Opts);
    Eng.recordCalibration(0x1234, 2.5);
    Eng.recordCalibration(0x5678, 0.75);
    EXPECT_TRUE(Eng.checkpointNow());
    // Unchanged state is recognized through both snapshots.
    EXPECT_FALSE(Eng.checkpointNow());
  }
  {
    EngineOptions Opts;
    Opts.DatabasePath = P.Path;
    Engine Eng(Opts);
    EXPECT_DOUBLE_EQ(Eng.calibrationFor(0x1234), 2.5);
    EXPECT_DOUBLE_EQ(Eng.calibrationFor(0x5678), 0.75);
    EXPECT_DOUBLE_EQ(Eng.calibrationFor(0x9999), 0.0); // Never recorded.
  }
}

//===----------------------------------------------------------------------===//
// Serving surface: health rows and lane context affinity
//===----------------------------------------------------------------------===//

TEST(ServeTuneTest, HealthReportsTunerAndAffinityCountsHits) {
  int64_t HitsBefore = statsCounter("Serve.ContextAffinityHits");

  ServerOptions Options;
  Options.Shards = 1;
  Options.Workers = 1;
  Options.MaxBatch = 8;
  Options.QueueCapacity = 256;
  Options.Engine.OnlineTuning.Enable = true;
  Server S(Options);

  Program G = makeGemm("i", "j", "k", 12);
  Kernel K = S.compile(G);

  Kernel Ref = Kernel::treeWalk(G);
  OwnedArgs Expected(G, 5);
  ASSERT_TRUE(Ref.run(Expected.binding()));

  // A same-kernel flood: consecutive dispatches on the one lane reuse
  // the leased context, each reuse counting an affinity hit.
  constexpr int Reps = 64;
  std::vector<std::unique_ptr<OwnedArgs>> Owned;
  std::vector<std::future<RunStatus>> Futures;
  for (int R = 0; R < Reps; ++R) {
    Owned.push_back(std::make_unique<OwnedArgs>(G, 5));
    BoundArgs Bound = K.bind(Owned.back()->binding());
    ASSERT_TRUE(Bound.ok());
    Futures.push_back(S.submit(K, std::move(Bound)));
  }
  for (auto &F : Futures)
    EXPECT_TRUE(F.get().ok());
  for (const auto &O : Owned)
    EXPECT_EQ(O->Buffers, Expected.Buffers);

  S.drain();

  HealthSnapshot Health = S.health();
  ASSERT_EQ(Health.Shards.size(), 1u);
  EXPECT_TRUE(Health.Shards[0].TuningEnabled);
  EXPECT_GE(Health.Shards[0].TuneTracked, 1u);

  EXPECT_GT(statsCounter("Serve.ContextAffinityHits"), HitsBefore);
}

TEST(ServeTuneTest, TuningOffHealthRowsStayDark) {
  ServerOptions Options;
  Options.Shards = 1;
  Options.Workers = 1;
  Server S(Options);
  HealthSnapshot Health = S.health();
  ASSERT_EQ(Health.Shards.size(), 1u);
  EXPECT_FALSE(Health.Shards[0].TuningEnabled);
  EXPECT_EQ(Health.Shards[0].TuneTracked, 0u);
  EXPECT_EQ(Health.Shards[0].TuneSwaps, 0);
}
