//===- tests/SupportTest.cpp - support library unit tests ------------------==//
//
// Part of the daisy project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Random.h"
#include "support/Statistics.h"
#include "support/StringUtils.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

using namespace daisy;

TEST(RandomTest, Deterministic) {
  Rng A(42), B(42);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(RandomTest, DifferentSeedsDiffer) {
  Rng A(1), B(2);
  int Same = 0;
  for (int I = 0; I < 64; ++I)
    Same += A.next() == B.next();
  EXPECT_LT(Same, 2);
}

TEST(RandomTest, NextBelowInRange) {
  Rng R(7);
  for (int I = 0; I < 1000; ++I)
    EXPECT_LT(R.nextBelow(17), 17u);
}

TEST(RandomTest, NextBelowCoversAllValues) {
  Rng R(11);
  std::set<uint64_t> Seen;
  for (int I = 0; I < 500; ++I)
    Seen.insert(R.nextBelow(5));
  EXPECT_EQ(Seen.size(), 5u);
}

TEST(RandomTest, NextInRangeInclusive) {
  Rng R(3);
  std::set<int64_t> Seen;
  for (int I = 0; I < 500; ++I) {
    int64_t Value = R.nextInRange(-2, 2);
    EXPECT_GE(Value, -2);
    EXPECT_LE(Value, 2);
    Seen.insert(Value);
  }
  EXPECT_EQ(Seen.size(), 5u);
}

TEST(RandomTest, DoubleInUnitInterval) {
  Rng R(5);
  for (int I = 0; I < 1000; ++I) {
    double Value = R.nextDouble();
    EXPECT_GE(Value, 0.0);
    EXPECT_LT(Value, 1.0);
  }
}

TEST(RandomTest, ShufflePreservesElements) {
  Rng R(9);
  std::vector<int> Values = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> Shuffled = Values;
  R.shuffle(Shuffled);
  std::sort(Shuffled.begin(), Shuffled.end());
  EXPECT_EQ(Values, Shuffled);
}

TEST(StatisticsTest, MeanAndMedian) {
  EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median({4.0, 1.0, 2.0, 3.0}), 2.5);
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(median({}), 0.0);
}

TEST(StatisticsTest, Variance) {
  EXPECT_DOUBLE_EQ(sampleVariance({2.0, 2.0, 2.0}), 0.0);
  EXPECT_DOUBLE_EQ(sampleVariance({1.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(sampleVariance({5.0}), 0.0);
}

TEST(StatisticsTest, GeometricMean) {
  EXPECT_DOUBLE_EQ(geometricMean({4.0, 1.0}), 2.0);
  EXPECT_NEAR(geometricMean({2.0, 8.0}), 4.0, 1e-12);
}

TEST(StatisticsTest, CountersAddMaxCellAndReset) {
  resetStatsCounters();
  addStatsCounter("SupportTest.Counter", 2);
  addStatsCounter("SupportTest.Counter");
  EXPECT_EQ(statsCounter("SupportTest.Counter"), 3);

  // High-water semantics: raises, never lowers.
  maxStatsCounter("SupportTest.Max", 5);
  maxStatsCounter("SupportTest.Max", 3);
  EXPECT_EQ(statsCounter("SupportTest.Max"), 5);
  maxStatsCounter("SupportTest.Max", 9);
  EXPECT_EQ(statsCounter("SupportTest.Max"), 9);

  // Cells are the hot-path form of the same counters: stable references
  // observing add/max/reset.
  std::atomic<int64_t> &Cell = statsCounterCell("SupportTest.Counter");
  EXPECT_EQ(Cell.load(), 3);
  Cell.fetch_add(4, std::memory_order_relaxed);
  EXPECT_EQ(statsCounter("SupportTest.Counter"), 7);
  maxStatsCounter(Cell, 2);
  EXPECT_EQ(Cell.load(), 7);
  maxStatsCounter(Cell, 11);
  EXPECT_EQ(statsCounter("SupportTest.Counter"), 11);
  EXPECT_EQ(&statsCounterCell("SupportTest.Counter"), &Cell);

  resetStatsCounters();
  EXPECT_EQ(statsCounter("SupportTest.Counter"), 0);
  EXPECT_EQ(Cell.load(), 0);
  EXPECT_EQ(statsCounter("SupportTest.NeverTouched"), 0);
}

TEST(StatisticsTest, MeasureUntilStableConvergesOnConstant) {
  int Calls = 0;
  MeasurementResult Result = measureUntilStable([&Calls]() {
    ++Calls;
    return 1.5;
  });
  EXPECT_TRUE(Result.Converged);
  EXPECT_DOUBLE_EQ(Result.Median, 1.5);
  EXPECT_EQ(Calls, 3);
}

TEST(StatisticsTest, MeasureUntilStableStopsAtCap) {
  // Alternating wildly: never converges, must stop at MaxSamples.
  int Calls = 0;
  MeasurementOptions Options;
  Options.MaxSamples = 10;
  MeasurementResult Result = measureUntilStable(
      [&Calls]() {
        ++Calls;
        return Calls % 2 == 0 ? 100.0 : 1.0;
      },
      Options);
  EXPECT_FALSE(Result.Converged);
  EXPECT_EQ(Result.Samples.size(), 10u);
}

TEST(StringUtilsTest, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ", "), "");
  EXPECT_EQ(join({"x"}, ", "), "x");
}

TEST(StringUtilsTest, FormatDouble) {
  EXPECT_EQ(formatDouble(1.23456, 2), "1.23");
  EXPECT_EQ(formatDouble(2.0, 0), "2");
}

TEST(StringUtilsTest, Padding) {
  EXPECT_EQ(padLeft("ab", 4), "  ab");
  EXPECT_EQ(padRight("ab", 4), "ab  ");
  EXPECT_EQ(padLeft("abcde", 4), "abcde");
}

TEST(StringUtilsTest, StartsWith) {
  EXPECT_TRUE(startsWith("daisy_ir", "daisy"));
  EXPECT_FALSE(startsWith("ir", "daisy"));
}
