//===- tests/PersistTest.cpp - durability / crash-recovery tests ----------==//
//
// Part of the daisy project. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The durable-state contracts (support/Persist + the engine's
// tuning-database persistence):
//
// - checkpoint files are self-validating: magic, format version, payload
//   size, and CRC32 are all checked on read; truncation and bit flips are
//   detected, never silently decoded;
// - writes are atomic with last-good rotation: a corrupted current file
//   recovers from `<path>.prev`, so a crash mid-write costs at most one
//   checkpoint interval of entries;
// - the database payload format round-trips every field of every entry
//   (including all RecipeStep kinds) and rejects garbage without reading
//   out of bounds;
// - kill-and-restart: a fresh Engine at the same DatabasePath recovers
//   the checkpointed entries (counted in Engine.RecoveredEntries, corrupt
//   files in Engine.CorruptCheckpoints) and reproduces the pre-restart
//   schedule() plan choice with no re-search.
//
// The PersistStagedTest at the bottom is CI's crash-recovery harness: it
// skips unless DAISY_CKPT_STAGE/DAISY_CKPT_PATH are set, letting the
// workflow seed a checkpoint in one process, corrupt it from the shell,
// and assert recovery in a second process — a real kill-and-restart.
//
//===----------------------------------------------------------------------===//

#include "support/Persist.h"

#include "api/Engine.h"
#include "ir/Builder.h"
#include "ir/StructuralHash.h"
#include "sched/Database.h"
#include "support/Statistics.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

using namespace daisy;

namespace {

/// Fixed header layout of a checkpoint file: magic (8) + version (4) +
/// generation (8) + payload size (8) + CRC32 (4). Corruption tests flip
/// bytes past this offset to land inside the payload.
constexpr size_t CheckpointHeaderSize = 8 + 4 + 8 + 8 + 4;

/// A unique checkpoint path under the test temp dir, with the current,
/// rotation, and temp slots removed on destruction.
struct TempCkpt {
  std::string Path;

  explicit TempCkpt(const std::string &Name)
      : Path(::testing::TempDir() + "daisy_persist_" +
             std::to_string(::getpid()) + "_" + Name + ".ckpt") {
    cleanup();
  }
  ~TempCkpt() { cleanup(); }

  void cleanup() {
    std::remove(Path.c_str());
    std::remove(checkpointPrevPath(Path).c_str());
    std::remove((Path + ".tmp").c_str());
  }
};

void flipByteAt(const std::string &Path, size_t Offset) {
  std::fstream F(Path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(F.good()) << Path;
  F.seekg(static_cast<std::streamoff>(Offset));
  char C = 0;
  F.get(C);
  ASSERT_TRUE(F.good()) << "file shorter than flip offset " << Offset;
  F.seekp(static_cast<std::streamoff>(Offset));
  F.put(static_cast<char>(C ^ 0x40));
}

void truncateFileTo(const std::string &Path, size_t Bytes) {
  ASSERT_EQ(::truncate(Path.c_str(), static_cast<off_t>(Bytes)), 0) << Path;
}

size_t fileSize(const std::string &Path) {
  std::ifstream F(Path, std::ios::binary | std::ios::ate);
  return F.good() ? static_cast<size_t>(F.tellg()) : 0;
}

/// GEMM with a chosen loop order (the canonical many-variants program).
Program makeGemm(const std::string &O1, const std::string &O2,
                 const std::string &O3, int N) {
  Program Prog("gemm_" + O1 + O2 + O3);
  Prog.addArray("A", {N, N});
  Prog.addArray("B", {N, N});
  Prog.addArray("C", {N, N});
  Prog.append(forLoop(
      O1, 0, N,
      {forLoop(O2, 0, N,
               {forLoop(O3, 0, N,
                        {assign("S0", "C", {ax("i"), ax("j")},
                                read("C", {ax("i"), ax("j")}) +
                                    read("A", {ax("i"), ax("k")}) *
                                        read("B", {ax("k"), ax("j")}))})})}));
  return Prog;
}

/// The cheap search budget every persistence test seeds with: enough to
/// produce entries, fast enough to run many engines per test.
TuneOptions tinyTune() {
  TuneOptions Tune;
  Tune.Budget.MctsRollouts = 4;
  Tune.Budget.PopulationSize = 2;
  Tune.Budget.IterationsPerEpoch = 1;
  Tune.Budget.Epochs = 1;
  return Tune;
}

} // namespace

//===----------------------------------------------------------------------===//
// CRC + byte primitives
//===----------------------------------------------------------------------===//

TEST(PersistTest, Crc32MatchesKnownVectors) {
  // The standard check value of CRC-32/IEEE ("123456789" -> 0xCBF43926).
  const char *Check = "123456789";
  EXPECT_EQ(crc32(Check, 9), 0xCBF43926u);
  EXPECT_EQ(crc32(Check, 0), 0u);
  // Any flipped bit changes the checksum.
  char Flipped[] = "123456788";
  EXPECT_NE(crc32(Flipped, 9), 0xCBF43926u);
}

TEST(PersistTest, ByteWriterReaderRoundTrip) {
  ByteWriter W;
  W.u8(0xAB);
  W.u32(0xDEADBEEFu);
  W.u64(0x0123456789ABCDEFull);
  W.i64(-42);
  W.f64(-0.5);
  W.f64(3.141592653589793);
  W.str("daisy");
  W.str(""); // empty strings are representable

  std::vector<uint8_t> Bytes = W.take();
  ByteReader R(Bytes);
  EXPECT_EQ(R.u8(), 0xAB);
  EXPECT_EQ(R.u32(), 0xDEADBEEFu);
  EXPECT_EQ(R.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(R.i64(), -42);
  EXPECT_EQ(R.f64(), -0.5);
  EXPECT_EQ(R.f64(), 3.141592653589793);
  EXPECT_EQ(R.str(), "daisy");
  EXPECT_EQ(R.str(), "");
  EXPECT_TRUE(R.ok());
  EXPECT_TRUE(R.atEnd());
}

TEST(PersistTest, ByteReaderLatchesOnTruncationAndGarbageLengths) {
  ByteWriter W;
  W.u64(7);
  W.str("hello");
  std::vector<uint8_t> Bytes = W.take();

  // Truncated mid-string: the read fails and the failure latches.
  std::vector<uint8_t> Cut(Bytes.begin(), Bytes.begin() + 10);
  ByteReader R(Cut);
  EXPECT_EQ(R.u64(), 7u);
  EXPECT_EQ(R.str(), "");
  EXPECT_FALSE(R.ok());
  EXPECT_EQ(R.u64(), 0u); // every later read stays failed
  EXPECT_FALSE(R.ok());

  // A string whose length prefix claims more than the payload holds must
  // fail cleanly instead of reading out of bounds.
  ByteWriter W2;
  W2.u64(~0ull);
  ByteReader R2(W2.bytes());
  EXPECT_EQ(R2.str(), "");
  EXPECT_FALSE(R2.ok());
}

//===----------------------------------------------------------------------===//
// Checkpoint files
//===----------------------------------------------------------------------===//

TEST(PersistTest, CheckpointWriteReadRoundTrip) {
  TempCkpt P("roundtrip");
  std::vector<uint8_t> Payload(300);
  for (size_t I = 0; I < Payload.size(); ++I)
    Payload[I] = static_cast<uint8_t>(I * 7);

  ASSERT_TRUE(writeCheckpoint(P.Path, Payload.data(), Payload.size(),
                              /*Generation=*/7, /*Version=*/3));
  CheckpointFile F = readCheckpointFile(P.Path, /*Version=*/3);
  EXPECT_TRUE(F.Exists);
  ASSERT_TRUE(F.Valid);
  EXPECT_EQ(F.Generation, 7u);
  EXPECT_EQ(F.Version, 3u);
  EXPECT_EQ(F.Payload, Payload);

  // A version mismatch is present-but-invalid, not a crash or a decode.
  CheckpointFile Wrong = readCheckpointFile(P.Path, /*Version=*/4);
  EXPECT_TRUE(Wrong.Exists);
  EXPECT_FALSE(Wrong.Valid);

  // A missing file is not corruption.
  CheckpointFile Missing = readCheckpointFile(P.Path + ".nope", 3);
  EXPECT_FALSE(Missing.Exists);
  EXPECT_FALSE(Missing.Valid);
}

TEST(PersistTest, CorruptCurrentRecoversLastGoodGeneration) {
  TempCkpt P("rotate");
  std::vector<uint8_t> Old(200, 0x11), New(240, 0x22);
  ASSERT_TRUE(writeCheckpoint(P.Path, Old.data(), Old.size(), 1, 1));
  ASSERT_TRUE(writeCheckpoint(P.Path, New.data(), New.size(), 2, 1));

  // Healthy: the current generation wins, the rotation holds the old one.
  CheckpointLoad Healthy = loadCheckpoint(P.Path, 1);
  ASSERT_TRUE(Healthy.File.Valid);
  EXPECT_EQ(Healthy.File.Generation, 2u);
  EXPECT_EQ(Healthy.File.Payload, New);
  EXPECT_EQ(Healthy.CorruptFiles, 0);
  CheckpointFile Prev = readCheckpointFile(checkpointPrevPath(P.Path), 1);
  ASSERT_TRUE(Prev.Valid);
  EXPECT_EQ(Prev.Generation, 1u);

  // Truncated mid-payload (a torn write): last good generation loads.
  truncateFileTo(P.Path, CheckpointHeaderSize + New.size() / 2);
  CheckpointLoad Torn = loadCheckpoint(P.Path, 1);
  ASSERT_TRUE(Torn.File.Valid);
  EXPECT_EQ(Torn.File.Generation, 1u);
  EXPECT_EQ(Torn.File.Payload, Old);
  EXPECT_EQ(Torn.CorruptFiles, 1);

  // Re-establish a healthy pair (gen 3 rotates the torn file away, gen 4
  // rotates good gen 3 into .prev), then flip a payload bit in the
  // current file: same last-good recovery.
  ASSERT_TRUE(writeCheckpoint(P.Path, Old.data(), Old.size(), 3, 1));
  ASSERT_TRUE(writeCheckpoint(P.Path, New.data(), New.size(), 4, 1));
  flipByteAt(P.Path, CheckpointHeaderSize + 5);
  CheckpointLoad Flipped = loadCheckpoint(P.Path, 1);
  ASSERT_TRUE(Flipped.File.Valid);
  EXPECT_EQ(Flipped.File.Generation, 3u);
  EXPECT_EQ(Flipped.File.Payload, Old);
  EXPECT_EQ(Flipped.CorruptFiles, 1);

  // Both slots corrupted: recovery reports it instead of inventing data.
  flipByteAt(checkpointPrevPath(P.Path), CheckpointHeaderSize + 5);
  CheckpointLoad Lost = loadCheckpoint(P.Path, 1);
  EXPECT_FALSE(Lost.File.Valid);
  EXPECT_EQ(Lost.CorruptFiles, 2);
}

//===----------------------------------------------------------------------===//
// Database payload format
//===----------------------------------------------------------------------===//

TEST(PersistTest, DatabaseEntriesSerializeRoundTrip) {
  std::vector<DatabaseEntry> Entries(2);
  Entries[0].Name = "gemm_ijk";
  Entries[0].CanonicalHash = 0xFEEDFACE12345678ull;
  for (size_t I = 0; I < Entries[0].Embedding.Features.size(); ++I)
    Entries[0].Embedding.Features[I] = -1.5 + static_cast<double>(I) * 0.25;
  // One step of every kind, with every field populated.
  Recipe &R0 = Entries[0].Optimization;
  R0.Steps.push_back({RecipeStep::Kind::Permute, {2, 0, 1}, {}, 0, 4});
  R0.Steps.push_back({RecipeStep::Kind::Tile, {}, {32, 8, 64}, 0, 4});
  R0.Steps.push_back({RecipeStep::Kind::ParallelizeOutermost, {}, {}, 0, 4});
  R0.Steps.push_back({RecipeStep::Kind::VectorizeInnermost, {}, {}, 2, 8});
  R0.Steps.push_back({RecipeStep::Kind::StripMineVectorize, {}, {16}, 1, 4});
  R0.Steps.push_back({RecipeStep::Kind::BlasReplace, {}, {}, 0, 4});
  Entries[1].Name = ""; // empty names and recipes are representable
  Entries[1].CanonicalHash = 0;

  std::vector<uint8_t> Payload = serializeDatabaseEntries(Entries);
  std::vector<DatabaseEntry> Back;
  ASSERT_TRUE(deserializeDatabaseEntries(Payload, Back));
  ASSERT_EQ(Back.size(), Entries.size());
  for (size_t I = 0; I < Entries.size(); ++I) {
    EXPECT_EQ(Back[I].Name, Entries[I].Name);
    EXPECT_EQ(Back[I].CanonicalHash, Entries[I].CanonicalHash);
    EXPECT_EQ(Back[I].Embedding.Features, Entries[I].Embedding.Features);
    ASSERT_EQ(Back[I].Optimization.Steps.size(),
              Entries[I].Optimization.Steps.size());
  }
  // Full fidelity, including step fields: re-serializing reproduces the
  // exact bytes.
  EXPECT_EQ(serializeDatabaseEntries(Back), Payload);

  // The empty database round-trips too (count 0, nothing else).
  std::vector<DatabaseEntry> None;
  std::vector<uint8_t> Empty = serializeDatabaseEntries(None);
  ASSERT_TRUE(deserializeDatabaseEntries(Empty, Back));
  EXPECT_TRUE(Back.empty());
}

TEST(PersistTest, DatabaseDeserializeRejectsGarbage) {
  std::vector<DatabaseEntry> Out;

  // Truncated payload.
  std::vector<DatabaseEntry> One(1);
  One[0].Name = "x";
  std::vector<uint8_t> Good = serializeDatabaseEntries(One);
  std::vector<uint8_t> Cut(Good.begin(), Good.end() - 4);
  EXPECT_FALSE(deserializeDatabaseEntries(Cut, Out));
  EXPECT_TRUE(Out.empty());

  // Trailing junk after a well-formed payload.
  std::vector<uint8_t> Padded = Good;
  Padded.push_back(0);
  EXPECT_FALSE(deserializeDatabaseEntries(Padded, Out));

  // An absurd entry count cannot allocate unboundedly.
  ByteWriter Absurd;
  Absurd.u64(~0ull);
  EXPECT_FALSE(deserializeDatabaseEntries(Absurd.bytes(), Out));

  // An unknown RecipeStep kind is rejected, not misdecoded.
  ByteWriter BadKind;
  BadKind.u64(1);   // one entry
  BadKind.str("e"); // name
  BadKind.u64(0);   // canonical hash
  for (int I = 0; I < 16; ++I)
    BadKind.f64(0.0); // embedding
  BadKind.u64(1);     // one step
  BadKind.u8(200);    // kind out of range
  EXPECT_FALSE(deserializeDatabaseEntries(BadKind.bytes(), Out));
  EXPECT_TRUE(Out.empty());

  // Random bytes.
  std::vector<uint8_t> Noise(64);
  for (size_t I = 0; I < Noise.size(); ++I)
    Noise[I] = static_cast<uint8_t>(I * 37 + 11);
  EXPECT_FALSE(deserializeDatabaseEntries(Noise, Out));
}

//===----------------------------------------------------------------------===//
// Engine persistence: kill-and-restart
//===----------------------------------------------------------------------===//

TEST(EnginePersistTest, KillAndRestartRecoversLastGoodGeneration) {
  TempCkpt P("engine_crash");
  TuneOptions Tune = tinyTune();
  Program A = makeGemm("i", "j", "k", 8);
  Program B = makeGemm("k", "j", "i", 8);

  resetStatsCounters();
  size_t Gen1Entries = 0;
  {
    EngineOptions O;
    O.DatabasePath = P.Path;
    Engine E(O);
    E.seedDatabase(A, Tune);
    Gen1Entries = E.database().size();
    ASSERT_GT(Gen1Entries, 0u);
    ASSERT_TRUE(E.checkpointNow());
    EXPECT_EQ(E.checkpointGeneration(), 1u);
    // Unchanged entries skip the write (no redundant I/O, no gen bump).
    EXPECT_FALSE(E.checkpointNow());
    E.seedDatabase(B, Tune);
    ASSERT_TRUE(E.checkpointNow());
    EXPECT_EQ(E.checkpointGeneration(), 2u);
    EXPECT_GE(statsCounter("Engine.Checkpoints"), 2);
    EXPECT_GT(statsCounter("Engine.CheckpointBytes"), 0);
  } // "crash" after the gen-2 write (destructor checkpoint is a no-op)

  // The crash tore the current file mid-payload.
  ASSERT_GT(fileSize(P.Path), CheckpointHeaderSize + 8);
  flipByteAt(P.Path, CheckpointHeaderSize + 7);

  resetStatsCounters();
  {
    EngineOptions O;
    O.DatabasePath = P.Path;
    Engine E(O);
    // The last good generation (1) is recovered, none of its entries
    // lost, and the corrupt current file is counted for operators.
    EXPECT_EQ(E.checkpointGeneration(), 1u);
    EXPECT_EQ(E.database().size(), Gen1Entries);
    EXPECT_EQ(statsCounter("Engine.RecoveredEntries"),
              static_cast<int64_t>(Gen1Entries));
    EXPECT_EQ(statsCounter("Engine.CorruptCheckpoints"), 1);
  }
}

TEST(EnginePersistTest, RestartReproducesPlanChoiceWithoutReSearch) {
  TempCkpt P("engine_plan");
  TuneOptions Tune = tinyTune();
  Program A = makeGemm("i", "j", "k", 8);
  Program B = makeGemm("k", "j", "i", 8);

  uint64_t PlanBefore = 0;
  {
    EngineOptions O;
    O.DatabasePath = P.Path;
    Engine E(O);
    E.seedDatabase(A, Tune);
    PlanBefore = structuralHashWithMarks(E.schedule(B, Tune));
    ASSERT_TRUE(E.checkpointNow());
  }

  resetStatsCounters();
  {
    // A fresh engine at the same path: recovery only, no seeding, no
    // search — scheduling B transfers from the recovered entries and
    // lands on the same plan.
    EngineOptions O;
    O.DatabasePath = P.Path;
    Engine E(O);
    EXPECT_GT(statsCounter("Engine.RecoveredEntries"), 0);
    EXPECT_EQ(structuralHashWithMarks(E.schedule(B, Tune)), PlanBefore);
  }
}

TEST(EnginePersistTest, DestructorWritesFinalCheckpoint) {
  TempCkpt P("engine_dtor");
  {
    EngineOptions O;
    O.DatabasePath = P.Path;
    Engine E(O);
    E.seedDatabase(makeGemm("i", "j", "k", 8), tinyTune());
    // No explicit checkpointNow: destruction is the durability point.
  }
  CheckpointLoad Load = loadCheckpoint(P.Path, DatabaseFormatVersion);
  ASSERT_TRUE(Load.File.Valid);
  std::vector<DatabaseEntry> Entries;
  ASSERT_TRUE(deserializeDatabaseEntries(Load.File.Payload, Entries));
  EXPECT_GT(Entries.size(), 0u);
}

TEST(EnginePersistTest, BackgroundLaneCheckpointsAtInterval) {
  TempCkpt P("engine_lane");
  resetStatsCounters();
  {
    EngineOptions O;
    O.DatabasePath = P.Path;
    O.CheckpointInterval = std::chrono::milliseconds(5);
    Engine E(O);
    E.seedDatabase(makeGemm("i", "j", "k", 8), tinyTune());
    // The lane picks the change up on its own; no explicit call.
    for (int I = 0; I < 400 && statsCounter("Engine.Checkpoints") == 0; ++I)
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    EXPECT_GE(statsCounter("Engine.Checkpoints"), 1);
  }
  EXPECT_TRUE(loadCheckpoint(P.Path, DatabaseFormatVersion).File.Valid);
}

//===----------------------------------------------------------------------===//
// CI crash-recovery harness (multi-process kill-and-restart)
//===----------------------------------------------------------------------===//

// Two stages driven by environment variables, skipped otherwise:
//
//   DAISY_CKPT_STAGE=seed    seeds two generations at DAISY_CKPT_PATH
//                            (current = gen 2, rotation = gen 1);
//   DAISY_CKPT_STAGE=recover asserts a fresh engine recovers entries
//                            (and, with DAISY_CKPT_EXPECT_CORRUPT=n, that
//                            at least n corrupt files were detected).
//
// CI runs seed, corrupts the current file from the shell (truncate or
// bit-flip), then runs recover in a new process — the checkpoint must
// recover the last good generation across a real process boundary.
TEST(PersistStagedTest, CrashRecoveryStage) {
  const char *Stage = std::getenv("DAISY_CKPT_STAGE");
  const char *Path = std::getenv("DAISY_CKPT_PATH");
  if (!Stage || !Path || !*Path)
    GTEST_SKIP() << "set DAISY_CKPT_STAGE=seed|recover and DAISY_CKPT_PATH";

  TuneOptions Tune = tinyTune();
  EngineOptions O;
  O.DatabasePath = Path;
  if (std::string(Stage) == "seed") {
    Engine E(O);
    E.seedDatabase(makeGemm("i", "j", "k", 8), Tune);
    ASSERT_TRUE(E.checkpointNow());
    E.seedDatabase(makeGemm("k", "j", "i", 8), Tune);
    ASSERT_TRUE(E.checkpointNow());
    EXPECT_EQ(E.checkpointGeneration(), 2u);
    EXPECT_GT(E.database().size(), 0u);
  } else {
    resetStatsCounters();
    Engine E(O);
    EXPECT_GE(statsCounter("Engine.RecoveredEntries"), 1);
    EXPECT_GE(E.checkpointGeneration(), 1u);
    EXPECT_GT(E.database().size(), 0u);
    if (const char *Corrupt = std::getenv("DAISY_CKPT_EXPECT_CORRUPT")) {
      EXPECT_GE(statsCounter("Engine.CorruptCheckpoints"),
                std::atoll(Corrupt));
    }
  }
}
