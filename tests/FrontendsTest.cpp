//===- tests/FrontendsTest.cpp - PolyBench builder tests -------------------==//
//
// Part of the daisy project. MIT license.
//
// The central property: for every benchmark, the A, B, and NPBench
// variants are semantically equivalent (verified by the interpreter), and
// normalization preserves the semantics of each.
//
//===----------------------------------------------------------------------===//

#include "exec/Interpreter.h"
#include "frontends/PolyBench.h"
#include "ir/StructuralHash.h"
#include "ir/Validate.h"
#include "normalize/Pipeline.h"

#include <gtest/gtest.h>

using namespace daisy;

class PolyBenchTest : public ::testing::TestWithParam<PolyBenchKernel> {};

TEST_P(PolyBenchTest, AllVariantsValid) {
  for (VariantKind V :
       {VariantKind::A, VariantKind::B, VariantKind::NPBench}) {
    Program Prog = buildPolyBench(GetParam(), V);
    auto Problems = validateProgram(Prog);
    EXPECT_TRUE(Problems.empty())
        << polyBenchName(GetParam()) << ": " << Problems.front();
  }
}

TEST_P(PolyBenchTest, VariantsSemanticallyEquivalent) {
  Program A = buildPolyBench(GetParam(), VariantKind::A);
  Program B = buildPolyBench(GetParam(), VariantKind::B);
  Program NP = buildPolyBench(GetParam(), VariantKind::NPBench);
  EXPECT_TRUE(semanticallyEquivalent(A, B, 1e-7))
      << polyBenchName(GetParam()) << " A vs B";
  EXPECT_TRUE(semanticallyEquivalent(A, NP, 1e-7))
      << polyBenchName(GetParam()) << " A vs NPBench";
}

TEST_P(PolyBenchTest, NormalizationPreservesSemantics) {
  for (VariantKind V : {VariantKind::A, VariantKind::B}) {
    Program Prog = buildPolyBench(GetParam(), V);
    Program Norm = normalize(Prog);
    EXPECT_TRUE(semanticallyEquivalent(Prog, Norm, 1e-7))
        << polyBenchName(GetParam());
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, PolyBenchTest, ::testing::ValuesIn(allPolyBenchKernels()),
    [](const ::testing::TestParamInfo<PolyBenchKernel> &Info) {
      std::string Name = polyBenchName(Info.param);
      for (char &C : Name)
        if (C == '-')
          C = '_';
      return Name;
    });

TEST(PolyBenchMetaTest, FifteenKernels) {
  EXPECT_EQ(allPolyBenchKernels().size(), 15u);
}

TEST(PolyBenchMetaTest, LiftingFailureMarks) {
  // correlation/covariance C variants carry an opaque nest; the Python
  // variants do not (paper §4.1 vs §4.3).
  for (PolyBenchKernel Kernel :
       {PolyBenchKernel::Correlation, PolyBenchKernel::Covariance}) {
    for (VariantKind V : {VariantKind::A, VariantKind::B}) {
      Program Prog = buildPolyBench(Kernel, V);
      bool AnyOpaque = false;
      for (const NodePtr &Node : Prog.topLevel())
        if (const auto *L = dynCast<Loop>(Node))
          AnyOpaque |= L->isOpaque();
      EXPECT_TRUE(AnyOpaque) << polyBenchName(Kernel);
    }
    Program NP = buildPolyBench(Kernel, VariantKind::NPBench);
    for (const NodePtr &Node : NP.topLevel())
      if (const auto *L = dynCast<Loop>(Node))
        EXPECT_FALSE(L->isOpaque());
  }
  // No other kernel is opaque.
  Program Gemm = buildPolyBench(PolyBenchKernel::Gemm, VariantKind::A);
  for (const NodePtr &Node : Gemm.topLevel())
    if (const auto *L = dynCast<Loop>(Node))
      EXPECT_FALSE(L->isOpaque());
}

TEST(PolyBenchMetaTest, VariantsAreStructurallyDifferent) {
  // The whole point of the A/B experiment: the variants differ as inputs.
  int Different = 0;
  for (PolyBenchKernel Kernel : allPolyBenchKernels()) {
    Program A = buildPolyBench(Kernel, VariantKind::A);
    Program B = buildPolyBench(Kernel, VariantKind::B);
    if (structuralHash(A) != structuralHash(B))
      ++Different;
  }
  EXPECT_EQ(Different, 15);
}
