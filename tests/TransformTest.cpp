//===- tests/TransformTest.cpp - transformation correctness tests ----------==//
//
// Part of the daisy project. MIT license.
//
// Every transformation is validated against the interpreter: transformed
// programs must compute the same observable arrays.
//
//===----------------------------------------------------------------------===//

#include "analysis/Legality.h"
#include "exec/Interpreter.h"
#include "ir/Builder.h"
#include "ir/Printer.h"
#include "transform/Distribute.h"
#include "transform/Fuse.h"
#include "transform/Parallelize.h"
#include "transform/Permute.h"
#include "transform/Tile.h"

#include <gtest/gtest.h>

using namespace daisy;

namespace {

Program makeGemmProgram(int N) {
  Program Prog("gemm");
  Prog.addArray("A", {N, N});
  Prog.addArray("B", {N, N});
  Prog.addArray("C", {N, N});
  Prog.append(forLoop(
      "i", 0, N,
      {forLoop("j", 0, N,
               {forLoop("k", 0, N,
                        {assign("S0", "C", {ax("i"), ax("j")},
                                read("C", {ax("i"), ax("j")}) +
                                    read("A", {ax("i"), ax("k")}) *
                                        read("B", {ax("k"), ax("j")}))})})}));
  return Prog;
}

/// Jacobi-like two-statement nest communicating through a scalar.
Program makeScalarChainProgram(int N) {
  Program Prog("chain");
  Prog.addArray("A", {N});
  Prog.addArray("B", {N});
  Prog.addArray("t", {}, /*Transient=*/true);
  Prog.append(forLoop(
      "i", 0, N,
      {assignScalar("S0", "t", read("A", {ax("i")}) * lit(2.0)),
       assign("S1", "B", {ax("i")}, read("t") + lit(1.0))}));
  return Prog;
}

} // namespace

//===----------------------------------------------------------------------===//
// Permutation
//===----------------------------------------------------------------------===//

class GemmPermutationTest
    : public ::testing::TestWithParam<std::vector<std::string>> {};

TEST_P(GemmPermutationTest, PreservesSemantics) {
  Program Prog = makeGemmProgram(8);
  const std::vector<std::string> &Order = GetParam();
  ASSERT_TRUE(isPermutationLegal(Prog.topLevel()[0], Order, Prog.params()));
  Program Permuted = Prog.clone();
  Permuted.topLevel()[0] = applyPermutation(Prog.topLevel()[0], Order);
  EXPECT_TRUE(semanticallyEquivalent(Prog, Permuted));
  // The permuted band has the requested order.
  auto Band = perfectNestBand(Permuted.topLevel()[0]);
  ASSERT_EQ(Band.size(), Order.size());
  for (size_t I = 0; I < Order.size(); ++I)
    EXPECT_EQ(Band[I]->iterator(), Order[I]);
}

INSTANTIATE_TEST_SUITE_P(
    AllOrders, GemmPermutationTest,
    ::testing::Values(std::vector<std::string>{"i", "j", "k"},
                      std::vector<std::string>{"i", "k", "j"},
                      std::vector<std::string>{"j", "i", "k"},
                      std::vector<std::string>{"j", "k", "i"},
                      std::vector<std::string>{"k", "i", "j"},
                      std::vector<std::string>{"k", "j", "i"}));

TEST(PermuteTest, InterchangeSwapsLevels) {
  Program Prog = makeGemmProgram(6);
  NodePtr Swapped = interchange(Prog.topLevel()[0], 0, 2);
  auto Band = perfectNestBand(Swapped);
  EXPECT_EQ(Band[0]->iterator(), "k");
  EXPECT_EQ(Band[2]->iterator(), "i");
}

TEST(PermuteTest, TriangularBoundsMoveWithLoops) {
  // Permuting (i, j) with j <= i is illegal; permuting the inner pair of
  // an (i, j, k) nest where only k is free must keep i's bound intact.
  Program Prog("tri");
  Prog.addArray("C", {8, 8, 8});
  Prog.append(forLoop(
      "i", 0, 8,
      {forLoop("j", ac(0), ax("i") + 1,
               {forLoop("k", 0, 8,
                        {assign("S0", "C", {ax("i"), ax("j"), ax("k")},
                                lit(1.0))})})}));
  ASSERT_TRUE(
      isPermutationLegal(Prog.topLevel()[0], {"i", "k", "j"}, Prog.params()));
  Program Permuted = Prog.clone();
  Permuted.topLevel()[0] =
      applyPermutation(Prog.topLevel()[0], {"i", "k", "j"});
  EXPECT_TRUE(semanticallyEquivalent(Prog, Permuted));
}

//===----------------------------------------------------------------------===//
// Tiling
//===----------------------------------------------------------------------===//

TEST(TileTest, TileBandPreservesSemantics) {
  Program Prog = makeGemmProgram(8);
  Program Tiled = Prog.clone();
  Tiled.topLevel()[0] = tileBand(Prog.topLevel()[0], {4, 4, 2},
                                 Prog.params());
  EXPECT_TRUE(semanticallyEquivalent(Prog, Tiled));
  // Band depth doubles: 3 tile + 3 point loops.
  EXPECT_EQ(perfectNestBand(Tiled.topLevel()[0]).size(), 6u);
}

TEST(TileTest, NonDivisibleSizeSkipsLoop) {
  Program Prog = makeGemmProgram(8);
  Program Tiled = Prog.clone();
  Tiled.topLevel()[0] = tileBand(Prog.topLevel()[0], {3, 4, 0},
                                 Prog.params());
  // i is untiled (8 % 3 != 0), j tiled, k untiled: band = jt, i, j, k.
  EXPECT_TRUE(semanticallyEquivalent(Prog, Tiled));
  EXPECT_EQ(perfectNestBand(Tiled.topLevel()[0]).size(), 4u);
}

TEST(TileTest, PartialTiling) {
  Program Prog = makeGemmProgram(8);
  Program Tiled = Prog.clone();
  Tiled.topLevel()[0] = tileBand(Prog.topLevel()[0], {2}, Prog.params());
  EXPECT_TRUE(semanticallyEquivalent(Prog, Tiled));
}

TEST(TileTest, StripMinePreservesSemantics) {
  Program Prog = makeGemmProgram(8);
  Program Mined = Prog.clone();
  Mined.topLevel()[0] =
      stripMine(Prog.topLevel()[0], /*Level=*/1, /*Width=*/4, Prog.params());
  EXPECT_TRUE(semanticallyEquivalent(Prog, Mined));
  // Point loop is innermost and vectorized.
  auto Band = perfectNestBand(Mined.topLevel()[0]);
  ASSERT_EQ(Band.size(), 4u);
  EXPECT_TRUE(Band.back()->isVectorized());
}

//===----------------------------------------------------------------------===//
// Scalar expansion & distribution
//===----------------------------------------------------------------------===//

TEST(DistributeTest, ScalarExpansionPreservesSemantics) {
  Program Prog = makeScalarChainProgram(10);
  Program Expanded = Prog.clone();
  auto L = std::static_pointer_cast<Loop>(Expanded.topLevel()[0]);
  auto NewLoop = expandScalars(L, Expanded);
  EXPECT_NE(NewLoop, L); // expansion happened
  Expanded.topLevel()[0] = NewLoop;
  EXPECT_TRUE(semanticallyEquivalent(Prog, Expanded));
  // A transient expansion array exists.
  bool HasTransient = false;
  for (const ArrayDecl &Decl : Expanded.arrays())
    HasTransient |= Decl.Transient;
  EXPECT_TRUE(HasTransient);
}

TEST(DistributeTest, RecurrenceNotExpanded) {
  Program Prog("rec");
  Prog.addArray("A", {8});
  Prog.addArray("s", {}, /*Transient=*/true);
  auto L = std::make_shared<Loop>(
      "i", ac(0), ac(8),
      std::vector<NodePtr>{
          assignScalar("S0", "s", read("s") + read("A", {ax("i")})),
          assign("S1", "A", {ax("i")}, read("s"))},
      1);
  Prog.append(L);
  auto NewLoop = expandScalars(L, Prog);
  EXPECT_EQ(NewLoop, L); // no change: s is a recurrence
}

TEST(DistributeTest, EscapingScalarNotExpanded) {
  Program Prog("esc");
  Prog.addArray("A", {8});
  Prog.addArray("B", {8});
  Prog.addArray("s", {}, /*Transient=*/true);
  auto L = std::make_shared<Loop>(
      "i", ac(0), ac(8),
      std::vector<NodePtr>{
          assignScalar("S0", "s", read("A", {ax("i")})),
          assign("S1", "B", {ax("i")}, read("s"))},
      1);
  Prog.append(L);
  // s is read after the loop: expansion would have to preserve the final
  // value, so the pass must skip it.
  Prog.append(assign("S2", "A", {ac(0)}, read("s")));
  auto NewLoop = expandScalars(L, Prog);
  EXPECT_EQ(NewLoop, L);
}

TEST(DistributeTest, FissionAfterExpansionPreservesSemantics) {
  Program Prog = makeScalarChainProgram(12);
  Program Fissioned = Prog.clone();
  auto L = std::static_pointer_cast<Loop>(Fissioned.topLevel()[0]);
  auto Expanded = expandScalars(L, Fissioned);
  auto Groups = distributionGroups(*Expanded, Fissioned.params());
  ASSERT_EQ(Groups.size(), 2u); // scalar expansion unlocked the split
  std::vector<NodePtr> Pieces = distributeLoop(Expanded, Groups);
  Fissioned.topLevel().erase(Fissioned.topLevel().begin());
  for (size_t I = 0; I < Pieces.size(); ++I)
    Fissioned.topLevel().insert(
        Fissioned.topLevel().begin() + static_cast<std::ptrdiff_t>(I),
        Pieces[I]);
  EXPECT_TRUE(semanticallyEquivalent(Prog, Fissioned));
}

//===----------------------------------------------------------------------===//
// Fusion
//===----------------------------------------------------------------------===//

TEST(FuseTest, FuseLoopsPreservesSemantics) {
  Program Prog("fuse");
  Prog.addArray("A", {16});
  Prog.addArray("B", {16});
  auto L1 = std::make_shared<Loop>(
      "i", ac(0), ac(16),
      std::vector<NodePtr>{assign("S0", "A", {ax("i")},
                                  Expr::makeIter("i") * lit(3.0))},
      1);
  auto L2 = std::make_shared<Loop>(
      "j", ac(0), ac(16),
      std::vector<NodePtr>{
          assign("S1", "B", {ax("j")}, read("A", {ax("j")}) + lit(1.0))},
      1);
  Prog.append(L1);
  Prog.append(L2);
  ASSERT_TRUE(canFuseLoops(L1, L2, Prog.params()));
  Program Fused = Prog.clone();
  Fused.topLevel().clear();
  Fused.append(fuseLoops(L1, L2));
  EXPECT_TRUE(semanticallyEquivalent(Prog, Fused));
}

TEST(FuseTest, FuseProducerConsumersCollapsesChain) {
  Program Prog("chain3");
  Prog.addArray("A", {16}, /*Transient=*/true);
  Prog.addArray("B", {16}, /*Transient=*/true);
  Prog.addArray("C", {16});
  Prog.addArray("X", {16});
  Prog.append(forLoop("i", 0, 16,
                      {assign("S0", "A", {ax("i")},
                              read("X", {ax("i")}) * lit(2.0))}));
  Prog.append(forLoop("i", 0, 16,
                      {assign("S1", "B", {ax("i")},
                              read("A", {ax("i")}) + lit(1.0))}));
  Prog.append(forLoop("i", 0, 16,
                      {assign("S2", "C", {ax("i")},
                              read("B", {ax("i")}) * read("A", {ax("i")}))}));
  std::vector<NodePtr> Fused = fuseProducerConsumers(Prog.topLevel(), Prog);
  EXPECT_EQ(Fused.size(), 1u);
  Program FusedProg = Prog.clone();
  FusedProg.topLevel() = Fused;
  EXPECT_TRUE(semanticallyEquivalent(Prog, FusedProg));
}

TEST(FuseTest, StencilChainNotFused) {
  Program Prog("stencil");
  Prog.addArray("A", {18});
  Prog.addArray("B", {18});
  Prog.append(forLoop("i", 0, 18, {assign("S0", "A", {ax("i")}, lit(1.0))}));
  Prog.append(forLoop("i", 1, 17,
                      {assign("S1", "B", {ax("i")},
                              read("A", {ax("i") - 1}) +
                                  read("A", {ax("i") + 1}))}));
  std::vector<NodePtr> Result = fuseProducerConsumers(Prog.topLevel(), Prog);
  EXPECT_EQ(Result.size(), 2u); // not one-to-one: must stay separate
}

//===----------------------------------------------------------------------===//
// Parallel / vector marking
//===----------------------------------------------------------------------===//

TEST(ParallelizeTest, MarksOutermostParallel) {
  Program Prog = makeGemmProgram(64);
  EXPECT_TRUE(parallelizeOutermost(Prog.topLevel()[0], Prog.params()));
  auto Band = perfectNestBand(Prog.topLevel()[0]);
  EXPECT_TRUE(Band[0]->isParallel());
  EXPECT_FALSE(Band[1]->isParallel()); // nested parallelism not modeled
}

TEST(ParallelizeTest, SequentialScanNotParallelized) {
  Program Prog("scan");
  Prog.addArray("A", {8});
  Prog.append(forLoop("i", 1, 8,
                      {assign("S0", "A", {ax("i")},
                              read("A", {ax("i") - 1}) + lit(1.0))}));
  EXPECT_FALSE(parallelizeOutermost(Prog.topLevel()[0], Prog.params()));
}

TEST(ParallelizeTest, AtomicFallbackForReduction) {
  Program Prog("red");
  Prog.addArray("A", {8});
  Prog.addArray("s", {});
  Prog.append(forLoop("i", 0, 8,
                      {assignScalar("S0", "s",
                                    read("s") + read("A", {ax("i")}))}));
  EXPECT_TRUE(parallelizeWithAtomics(Prog.topLevel()[0], Prog.params()));
  auto *L = dynCast<Loop>(Prog.topLevel()[0]);
  EXPECT_TRUE(L->isParallel());
  EXPECT_TRUE(L->usesAtomicReduction());
}

TEST(ParallelizeTest, VectorizeUnitStrideOnly) {
  Program Prog("vec");
  Prog.addArray("A", {8, 8});
  Prog.addArray("B", {8, 8});
  // Unit stride in the innermost loop j.
  Prog.append(forLoop(
      "i", 0, 8,
      {forLoop("j", 0, 8,
               {assign("S0", "A", {ax("i"), ax("j")},
                       read("B", {ax("i"), ax("j")}) * lit(2.0))})}));
  // Strided: B transposed.
  Prog.append(forLoop(
      "i2", 0, 8,
      {forLoop("j2", 0, 8,
               {assign("S1", "A", {ax("i2"), ax("j2")},
                       read("B", {ax("j2"), ax("i2")}) * lit(2.0))})}));
  EXPECT_EQ(vectorizeInnermostUnitStride(Prog.topLevel()[0], Prog), 1);
  EXPECT_EQ(vectorizeInnermostUnitStride(Prog.topLevel()[1], Prog), 0);
}
