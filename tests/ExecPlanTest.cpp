//===- tests/ExecPlanTest.cpp - compiled execution plan tests --------------==//
//
// Part of the daisy project. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Differential tests: the compiled flat plan (exec/ExecPlan.h) must be
// bit-identical to the tree-walking interpreter — the executable semantics
// definition — on every frontend kernel. Plus unit tests for the affine
// linearization helper and the compiler's scoping rules.
//
//===----------------------------------------------------------------------===//

#include "cloudsc/Cloudsc.h"
#include "exec/ExecPlan.h"
#include "exec/Interpreter.h"
#include "frontends/PolyBench.h"
#include "ir/Builder.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace daisy;

namespace {

constexpr uint64_t DiffSeed = 17;

/// Runs \p Prog through both engines from identical initial data and
/// returns the largest absolute difference over observable arrays.
double engineDifference(const Program &Prog) {
  DataEnv Walked(Prog);
  Walked.initDeterministic(DiffSeed);
  interpretTreeWalk(Prog, Walked);

  DataEnv Planned(Prog);
  Planned.initDeterministic(DiffSeed);
  ExecPlan::compile(Prog).run(Planned);

  return DataEnv::maxAbsDifference(Walked, Planned, Prog);
}

} // namespace

//===----------------------------------------------------------------------===//
// Affine linearization helper
//===----------------------------------------------------------------------===//

TEST(LinearizeTest, RowMajorStrides) {
  EXPECT_EQ(rowMajorStrides({}), (std::vector<int64_t>{}));
  EXPECT_EQ(rowMajorStrides({7}), (std::vector<int64_t>{1}));
  EXPECT_EQ(rowMajorStrides({4, 5, 6}), (std::vector<int64_t>{30, 6, 1}));
}

TEST(LinearizeTest, FoldsSubscriptsRowMajor) {
  // A[2*i + 1][j - 3] over shape {10, 8}: 8*(2*i + 1) + (j - 3).
  AffineExpr Linear = linearizeSubscripts(
      {ax("i") * 2 + 1, ax("j") - 3}, {10, 8});
  EXPECT_EQ(Linear.coefficient("i"), 16);
  EXPECT_EQ(Linear.coefficient("j"), 1);
  EXPECT_EQ(Linear.constantTerm(), 5);
}

TEST(LinearizeTest, NegativeCoefficients) {
  // A[n - i - 1][i] over shape {6, 6}: 6*(n - i - 1) + i = 6n - 5i - 6.
  AffineExpr Linear = linearizeSubscripts(
      {ax("n") - ax("i") - 1, ax("i")}, {6, 6});
  EXPECT_EQ(Linear.coefficient("i"), -5);
  EXPECT_EQ(Linear.coefficient("n"), 6);
  EXPECT_EQ(Linear.constantTerm(), -6);
}

TEST(LinearizeTest, ScalarAndConstantSubscripts) {
  EXPECT_TRUE(linearizeSubscripts({}, {}).isConstant());
  EXPECT_EQ(linearizeSubscripts({}, {}).constantTerm(), 0);
  AffineExpr Linear = linearizeSubscripts({ac(2), ac(3)}, {4, 5});
  EXPECT_TRUE(Linear.isConstant());
  EXPECT_EQ(Linear.constantTerm(), 13);
}

TEST(LinearizeTest, MatchesCoefficientStrideContract) {
  // The coefficient of an iterator in the linearized form is exactly the
  // per-unit-step address delta the stride analysis reports.
  AffineExpr Linear =
      linearizeSubscripts({ax("i"), ax("k")}, {64, 32});
  EXPECT_EQ(Linear.coefficient("i"), 32);
  EXPECT_EQ(Linear.coefficient("k"), 1);
  EXPECT_EQ(Linear.coefficient("j"), 0);
}

//===----------------------------------------------------------------------===//
// Compiler structure
//===----------------------------------------------------------------------===//

TEST(ExecPlanTest, GemmUsesFastPath) {
  Program Prog = buildPolyBench(PolyBenchKernel::Gemm, VariantKind::A);
  ExecPlan::Stats Stats = ExecPlan::compile(Prog).stats();
  EXPECT_GT(Stats.Ops, 0u);
  EXPECT_GT(Stats.Statements, 0u);
  // The k-accumulation loop bodies are single computations and must be
  // fused into fast-path ops.
  EXPECT_GE(Stats.FastPathStatements, 1u);
  EXPECT_EQ(Stats.MaxLoopDepth, 3);
}

TEST(ExecPlanTest, ShadowedIteratorScoping) {
  // A nested loop reusing an outer iterator name shadows the outer binding
  // while it runs and restores it afterwards (the tree-walker historically
  // destroyed it).
  int N = 4;
  Program Prog("shadow");
  Prog.addArray("U", {N});
  Prog.addArray("V", {N});
  Prog.append(forLoop(
      "i", 0, N,
      {forLoop("i", 0, 2,
               {assign("S0", "U", {ax("i")},
                       read("U", {ax("i")}) + lit(1.0))}),
       assign("S1", "V", {ax("i")}, Expr::makeIter("i"))}));

  EXPECT_EQ(engineDifference(Prog), 0.0);

  DataEnv Env(Prog);
  ExecPlan::compile(Prog).run(Env);
  // The outer iterator survived the inner loop: V[i] = i.
  for (int I = 0; I < N; ++I)
    EXPECT_DOUBLE_EQ(Env.buffer("V")[static_cast<size_t>(I)],
                     static_cast<double>(I));
  // The inner loop ran N times over U[0..2).
  EXPECT_DOUBLE_EQ(Env.buffer("U")[0], static_cast<double>(N));
  EXPECT_DOUBLE_EQ(Env.buffer("U")[1], static_cast<double>(N));
  EXPECT_DOUBLE_EQ(Env.buffer("U")[3], 0.0);
}

TEST(ExecPlanTest, ParametricBoundsAndSubscripts) {
  Program Prog("parametric");
  Prog.setParam("N", 5);
  Prog.setParam("base", 2);
  Prog.addArray("A", {12});
  // for (i = 0; i < N; ++i) A[i + base] = i + N
  Prog.append(forLoop(
      "i", ac(0), ax("N"),
      {assign("S0", "A", {ax("i") + ax("base")},
              Expr::makeIter("i") + Expr::makeParam("N"))}));

  EXPECT_EQ(engineDifference(Prog), 0.0);

  DataEnv Env(Prog);
  ExecPlan::compile(Prog).run(Env);
  for (int I = 0; I < 5; ++I)
    EXPECT_DOUBLE_EQ(Env.buffer("A")[static_cast<size_t>(I + 2)],
                     static_cast<double>(I + 5));
  EXPECT_DOUBLE_EQ(Env.buffer("A")[0], 0.0);
  EXPECT_DOUBLE_EQ(Env.buffer("A")[7], 0.0);
}

TEST(ExecPlanTest, TriangularFastPathBounds) {
  // Inner single-statement loop with bounds depending on the outer
  // register exercises per-outer-iteration rebasing of hoisted offsets.
  int N = 8;
  Program Prog("tri");
  Prog.addArray("C", {N, N});
  Prog.append(forLoop(
      "i", 0, N,
      {forLoop("j", ac(0), ax("i") + 1,
               {assign("S0", "C", {ax("i"), ax("j")},
                       Expr::makeIter("i") * lit(10.0) +
                           Expr::makeIter("j"))})}));

  EXPECT_EQ(engineDifference(Prog), 0.0);

  DataEnv Env(Prog);
  ExecPlan::compile(Prog).run(Env);
  for (int I = 0; I < N; ++I)
    for (int J = 0; J <= I; ++J)
      EXPECT_DOUBLE_EQ(Env.buffer("C")[static_cast<size_t>(I * N + J)],
                       10.0 * I + J);
}

TEST(ExecPlanTest, StepLoopsAndStridedAccess) {
  Program Prog("step");
  Prog.addArray("A", {16});
  Prog.addArray("B", {16});
  Prog.append(forLoop("i", 0, 16,
                      {assign("S0", "B", {ax("i")},
                              read("A", {ax("i")}) * lit(3.0))},
                      /*Step=*/3));
  EXPECT_EQ(engineDifference(Prog), 0.0);
}

TEST(ExecPlanTest, SelectShortCircuitsGuardedReads) {
  // A select may guard an otherwise out-of-bounds read; like the
  // tree-walker, the plan must evaluate only the taken branch.
  // B[i] = i < N-1 ? A[i+1] : 0.0 — A[N] is never touched.
  int N = 6;
  Program Prog("guard");
  Prog.addArray("A", {N});
  Prog.addArray("B", {N});
  Prog.append(forLoop(
      "i", 0, N,
      {assign("S0", "B", {ax("i")},
              Expr::makeSelect(
                  Expr::makeBinary(BinaryOpKind::Lt, Expr::makeIter("i"),
                                   lit(static_cast<double>(N - 1))),
                  read("A", {ax("i") + 1}), lit(0.0)))}));

  EXPECT_EQ(engineDifference(Prog), 0.0);

  DataEnv Env(Prog);
  Env.initDeterministic(DiffSeed);
  std::vector<double> A = Env.buffer("A");
  ExecPlan::compile(Prog).run(Env);
  for (int I = 0; I < N - 1; ++I)
    EXPECT_DOUBLE_EQ(Env.buffer("B")[static_cast<size_t>(I)],
                     A[static_cast<size_t>(I + 1)]);
  EXPECT_DOUBLE_EQ(Env.buffer("B")[static_cast<size_t>(N - 1)], 0.0);
}

TEST(ExecPlanTest, NestedSelects) {
  // Nested selects in both branches exercise the jump patching.
  Program Prog("nested");
  Prog.addArray("A", {8});
  Prog.addArray("B", {8});
  ExprPtr X = read("A", {ax("i")});
  ExprPtr Inner = Expr::makeSelect(
      Expr::makeBinary(BinaryOpKind::Gt, X, lit(0.5)), esqrt(X), eexp(X));
  ExprPtr Outer = Expr::makeSelect(
      Expr::makeBinary(BinaryOpKind::Lt, X, lit(0.25)), X * lit(2.0), Inner);
  Prog.append(forLoop("i", 0, 8, {assign("S0", "B", {ax("i")}, Outer)}));
  EXPECT_EQ(engineDifference(Prog), 0.0);

  DataEnv Env(Prog);
  Env.initDeterministic(DiffSeed);
  std::vector<double> A = Env.buffer("A");
  ExecPlan::compile(Prog).run(Env);
  for (int I = 0; I < 8; ++I) {
    double V = A[static_cast<size_t>(I)];
    double Expected =
        V < 0.25 ? V * 2.0 : (V > 0.5 ? std::sqrt(V) : std::exp(V));
    EXPECT_DOUBLE_EQ(Env.buffer("B")[static_cast<size_t>(I)], Expected);
  }
}

TEST(ExecPlanTest, RunIsRepeatable) {
  // One compiled plan must be reusable across environments (the whole
  // point of compile-once-run-many for the scheduler search).
  Program Prog = buildPolyBench(PolyBenchKernel::Atax, VariantKind::A);
  ExecPlan Plan = ExecPlan::compile(Prog);
  DataEnv E1(Prog), E2(Prog);
  E1.initDeterministic(3);
  E2.initDeterministic(3);
  Plan.run(E1);
  Plan.run(E2);
  EXPECT_EQ(DataEnv::maxAbsDifference(E1, E2, Prog), 0.0);
}

//===----------------------------------------------------------------------===//
// Differential: PolyBench (all kernels, all variants) and CLOUDSC
//===----------------------------------------------------------------------===//

TEST(ExecPlanDifferentialTest, PolyBenchAllKernelsAllVariants) {
  for (PolyBenchKernel Kernel : allPolyBenchKernels()) {
    for (VariantKind Variant :
         {VariantKind::A, VariantKind::B, VariantKind::NPBench}) {
      Program Prog = buildPolyBench(Kernel, Variant);
      EXPECT_EQ(engineDifference(Prog), 0.0)
          << polyBenchName(Kernel) << " variant "
          << static_cast<int>(Variant);
    }
  }
}

TEST(ExecPlanDifferentialTest, CloudscAllVariants) {
  CloudscConfig Config;
  Config.Nproma = 16;
  Config.Klev = 8;
  Config.Nblocks = 2;
  for (CloudscVariant Variant :
       {CloudscVariant::Fortran, CloudscVariant::C, CloudscVariant::DaCe}) {
    Program Prog = buildCloudsc(Config, Variant);
    EXPECT_EQ(engineDifference(Prog), 0.0)
        << "cloudsc variant " << static_cast<int>(Variant);
  }
}

TEST(ExecPlanDifferentialTest, CloudscErosionAndOptimized) {
  CloudscConfig Config;
  Config.Nproma = 16;
  Config.Klev = 8;
  Config.Nblocks = 2;
  Program Erosion = buildErosionKernel(Config);
  EXPECT_EQ(engineDifference(Erosion), 0.0);

  Program Optimized =
      optimizeCloudsc(buildCloudsc(Config, CloudscVariant::Fortran));
  EXPECT_EQ(engineDifference(Optimized), 0.0);
}
