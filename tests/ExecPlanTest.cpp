//===- tests/ExecPlanTest.cpp - compiled execution plan tests --------------==//
//
// Part of the daisy project. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Differential tests: the compiled flat plan (exec/ExecPlan.h) must be
// bit-identical to the tree-walking interpreter — the executable semantics
// definition — on every frontend kernel. Plus unit tests for the affine
// linearization helper and the compiler's scoping rules.
//
//===----------------------------------------------------------------------===//

#include "cloudsc/Cloudsc.h"
#include "exec/ExecPlan.h"
#include "exec/Interpreter.h"
#include "frontends/PolyBench.h"
#include "ir/Builder.h"
#include "transform/Parallelize.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace daisy;

namespace {

constexpr uint64_t DiffSeed = 17;

/// Runs \p Prog through the tree-walker and the plan compiled with
/// \p Options from identical initial data and returns the largest absolute
/// difference over observable arrays.
double engineDifference(const Program &Prog,
                        const PlanOptions &Options = {}) {
  DataEnv Walked(Prog);
  Walked.initDeterministic(DiffSeed);
  interpretTreeWalk(Prog, Walked);

  DataEnv Planned(Prog);
  Planned.initDeterministic(DiffSeed);
  ExecPlan::compile(Prog, Options).run(Planned);

  return DataEnv::maxAbsDifference(Walked, Planned, Prog);
}

/// Asserts the plan is bit-identical to the tree-walker under every
/// (thread count, specialization) combination the backend distinguishes.
/// The tree-walker (the slow engine) runs once per program.
void expectBitIdenticalEverywhere(const Program &Prog, const char *Label) {
  DataEnv Walked(Prog);
  Walked.initDeterministic(DiffSeed);
  interpretTreeWalk(Prog, Walked);

  for (int Threads : {1, 2, 4}) {
    for (bool Specialize : {false, true}) {
      PlanOptions Options;
      Options.NumThreads = Threads;
      Options.EnableSpecialization = Specialize;
      DataEnv Planned(Prog);
      Planned.initDeterministic(DiffSeed);
      ExecPlan::compile(Prog, Options).run(Planned);
      EXPECT_EQ(DataEnv::maxAbsDifference(Walked, Planned, Prog), 0.0)
          << Label << " threads=" << Threads << " spec=" << Specialize;
    }
  }
}

/// Clone of \p Prog with parallel marks applied the way the schedulers
/// apply them (outermost legal loop per nest, privatization-aware).
Program withParallelMarks(const Program &Prog) {
  Program Marked = Prog.clone();
  for (const NodePtr &Node : Marked.topLevel())
    parallelizeOutermost(Node, Marked.params(), &Marked);
  return Marked;
}

} // namespace

//===----------------------------------------------------------------------===//
// Affine linearization helper
//===----------------------------------------------------------------------===//

TEST(LinearizeTest, RowMajorStrides) {
  EXPECT_EQ(rowMajorStrides({}), (std::vector<int64_t>{}));
  EXPECT_EQ(rowMajorStrides({7}), (std::vector<int64_t>{1}));
  EXPECT_EQ(rowMajorStrides({4, 5, 6}), (std::vector<int64_t>{30, 6, 1}));
}

TEST(LinearizeTest, FoldsSubscriptsRowMajor) {
  // A[2*i + 1][j - 3] over shape {10, 8}: 8*(2*i + 1) + (j - 3).
  AffineExpr Linear = linearizeSubscripts(
      {ax("i") * 2 + 1, ax("j") - 3}, {10, 8});
  EXPECT_EQ(Linear.coefficient("i"), 16);
  EXPECT_EQ(Linear.coefficient("j"), 1);
  EXPECT_EQ(Linear.constantTerm(), 5);
}

TEST(LinearizeTest, NegativeCoefficients) {
  // A[n - i - 1][i] over shape {6, 6}: 6*(n - i - 1) + i = 6n - 5i - 6.
  AffineExpr Linear = linearizeSubscripts(
      {ax("n") - ax("i") - 1, ax("i")}, {6, 6});
  EXPECT_EQ(Linear.coefficient("i"), -5);
  EXPECT_EQ(Linear.coefficient("n"), 6);
  EXPECT_EQ(Linear.constantTerm(), -6);
}

TEST(LinearizeTest, ScalarAndConstantSubscripts) {
  EXPECT_TRUE(linearizeSubscripts({}, {}).isConstant());
  EXPECT_EQ(linearizeSubscripts({}, {}).constantTerm(), 0);
  AffineExpr Linear = linearizeSubscripts({ac(2), ac(3)}, {4, 5});
  EXPECT_TRUE(Linear.isConstant());
  EXPECT_EQ(Linear.constantTerm(), 13);
}

TEST(LinearizeTest, MatchesCoefficientStrideContract) {
  // The coefficient of an iterator in the linearized form is exactly the
  // per-unit-step address delta the stride analysis reports.
  AffineExpr Linear =
      linearizeSubscripts({ax("i"), ax("k")}, {64, 32});
  EXPECT_EQ(Linear.coefficient("i"), 32);
  EXPECT_EQ(Linear.coefficient("k"), 1);
  EXPECT_EQ(Linear.coefficient("j"), 0);
}

//===----------------------------------------------------------------------===//
// Compiler structure
//===----------------------------------------------------------------------===//

TEST(ExecPlanTest, GemmUsesFastPath) {
  Program Prog = buildPolyBench(PolyBenchKernel::Gemm, VariantKind::A);
  ExecPlan::Stats Stats = ExecPlan::compile(Prog).stats();
  EXPECT_GT(Stats.Ops, 0u);
  EXPECT_GT(Stats.Statements, 0u);
  // The k-accumulation loop bodies are single computations and must be
  // fused into fast-path ops.
  EXPECT_GE(Stats.FastPathStatements, 1u);
  EXPECT_EQ(Stats.MaxLoopDepth, 3);
}

TEST(ExecPlanTest, ShadowedIteratorScoping) {
  // A nested loop reusing an outer iterator name shadows the outer binding
  // while it runs and restores it afterwards (the tree-walker historically
  // destroyed it).
  int N = 4;
  Program Prog("shadow");
  Prog.addArray("U", {N});
  Prog.addArray("V", {N});
  Prog.append(forLoop(
      "i", 0, N,
      {forLoop("i", 0, 2,
               {assign("S0", "U", {ax("i")},
                       read("U", {ax("i")}) + lit(1.0))}),
       assign("S1", "V", {ax("i")}, Expr::makeIter("i"))}));

  EXPECT_EQ(engineDifference(Prog), 0.0);

  DataEnv Env(Prog);
  ExecPlan::compile(Prog).run(Env);
  // The outer iterator survived the inner loop: V[i] = i.
  for (int I = 0; I < N; ++I)
    EXPECT_DOUBLE_EQ(Env.buffer("V")[static_cast<size_t>(I)],
                     static_cast<double>(I));
  // The inner loop ran N times over U[0..2).
  EXPECT_DOUBLE_EQ(Env.buffer("U")[0], static_cast<double>(N));
  EXPECT_DOUBLE_EQ(Env.buffer("U")[1], static_cast<double>(N));
  EXPECT_DOUBLE_EQ(Env.buffer("U")[3], 0.0);
}

TEST(ExecPlanTest, ParametricBoundsAndSubscripts) {
  Program Prog("parametric");
  Prog.setParam("N", 5);
  Prog.setParam("base", 2);
  Prog.addArray("A", {12});
  // for (i = 0; i < N; ++i) A[i + base] = i + N
  Prog.append(forLoop(
      "i", ac(0), ax("N"),
      {assign("S0", "A", {ax("i") + ax("base")},
              Expr::makeIter("i") + Expr::makeParam("N"))}));

  EXPECT_EQ(engineDifference(Prog), 0.0);

  DataEnv Env(Prog);
  ExecPlan::compile(Prog).run(Env);
  for (int I = 0; I < 5; ++I)
    EXPECT_DOUBLE_EQ(Env.buffer("A")[static_cast<size_t>(I + 2)],
                     static_cast<double>(I + 5));
  EXPECT_DOUBLE_EQ(Env.buffer("A")[0], 0.0);
  EXPECT_DOUBLE_EQ(Env.buffer("A")[7], 0.0);
}

TEST(ExecPlanTest, TriangularFastPathBounds) {
  // Inner single-statement loop with bounds depending on the outer
  // register exercises per-outer-iteration rebasing of hoisted offsets.
  int N = 8;
  Program Prog("tri");
  Prog.addArray("C", {N, N});
  Prog.append(forLoop(
      "i", 0, N,
      {forLoop("j", ac(0), ax("i") + 1,
               {assign("S0", "C", {ax("i"), ax("j")},
                       Expr::makeIter("i") * lit(10.0) +
                           Expr::makeIter("j"))})}));

  EXPECT_EQ(engineDifference(Prog), 0.0);

  DataEnv Env(Prog);
  ExecPlan::compile(Prog).run(Env);
  for (int I = 0; I < N; ++I)
    for (int J = 0; J <= I; ++J)
      EXPECT_DOUBLE_EQ(Env.buffer("C")[static_cast<size_t>(I * N + J)],
                       10.0 * I + J);
}

TEST(ExecPlanTest, StepLoopsAndStridedAccess) {
  Program Prog("step");
  Prog.addArray("A", {16});
  Prog.addArray("B", {16});
  Prog.append(forLoop("i", 0, 16,
                      {assign("S0", "B", {ax("i")},
                              read("A", {ax("i")}) * lit(3.0))},
                      /*Step=*/3));
  EXPECT_EQ(engineDifference(Prog), 0.0);
}

TEST(ExecPlanTest, SelectShortCircuitsGuardedReads) {
  // A select may guard an otherwise out-of-bounds read; like the
  // tree-walker, the plan must evaluate only the taken branch.
  // B[i] = i < N-1 ? A[i+1] : 0.0 — A[N] is never touched.
  int N = 6;
  Program Prog("guard");
  Prog.addArray("A", {N});
  Prog.addArray("B", {N});
  Prog.append(forLoop(
      "i", 0, N,
      {assign("S0", "B", {ax("i")},
              Expr::makeSelect(
                  Expr::makeBinary(BinaryOpKind::Lt, Expr::makeIter("i"),
                                   lit(static_cast<double>(N - 1))),
                  read("A", {ax("i") + 1}), lit(0.0)))}));

  EXPECT_EQ(engineDifference(Prog), 0.0);

  DataEnv Env(Prog);
  Env.initDeterministic(DiffSeed);
  std::vector<double> A = Env.buffer("A");
  ExecPlan::compile(Prog).run(Env);
  for (int I = 0; I < N - 1; ++I)
    EXPECT_DOUBLE_EQ(Env.buffer("B")[static_cast<size_t>(I)],
                     A[static_cast<size_t>(I + 1)]);
  EXPECT_DOUBLE_EQ(Env.buffer("B")[static_cast<size_t>(N - 1)], 0.0);
}

TEST(ExecPlanTest, NestedSelects) {
  // Nested selects in both branches exercise the jump patching.
  Program Prog("nested");
  Prog.addArray("A", {8});
  Prog.addArray("B", {8});
  ExprPtr X = read("A", {ax("i")});
  ExprPtr Inner = Expr::makeSelect(
      Expr::makeBinary(BinaryOpKind::Gt, X, lit(0.5)), esqrt(X), eexp(X));
  ExprPtr Outer = Expr::makeSelect(
      Expr::makeBinary(BinaryOpKind::Lt, X, lit(0.25)), X * lit(2.0), Inner);
  Prog.append(forLoop("i", 0, 8, {assign("S0", "B", {ax("i")}, Outer)}));
  EXPECT_EQ(engineDifference(Prog), 0.0);

  DataEnv Env(Prog);
  Env.initDeterministic(DiffSeed);
  std::vector<double> A = Env.buffer("A");
  ExecPlan::compile(Prog).run(Env);
  for (int I = 0; I < 8; ++I) {
    double V = A[static_cast<size_t>(I)];
    double Expected =
        V < 0.25 ? V * 2.0 : (V > 0.5 ? std::sqrt(V) : std::exp(V));
    EXPECT_DOUBLE_EQ(Env.buffer("B")[static_cast<size_t>(I)], Expected);
  }
}

TEST(ExecPlanTest, RunIsRepeatable) {
  // One compiled plan must be reusable across environments (the whole
  // point of compile-once-run-many for the scheduler search).
  Program Prog = buildPolyBench(PolyBenchKernel::Atax, VariantKind::A);
  ExecPlan Plan = ExecPlan::compile(Prog);
  DataEnv E1(Prog), E2(Prog);
  E1.initDeterministic(3);
  E2.initDeterministic(3);
  Plan.run(E1);
  Plan.run(E2);
  EXPECT_EQ(DataEnv::maxAbsDifference(E1, E2, Prog), 0.0);
}

//===----------------------------------------------------------------------===//
// Kernel-shape detection (specialized inner kernels)
//===----------------------------------------------------------------------===//

namespace {

/// One innermost loop `W[i] = <Rhs>` over [0, N).
Program singleLoopProgram(ExprPtr Rhs, int N = 64) {
  Program Prog("kern");
  Prog.addArray("A", {N});
  Prog.addArray("B", {N});
  Prog.addArray("W", {N});
  Prog.append(forLoop("i", 0, N,
                      {assign("S0", "W", {ax("i")}, std::move(Rhs))}));
  return Prog;
}

size_t specializedKernels(const Program &Prog) {
  return ExecPlan::compile(Prog).stats().SpecializedKernels;
}

} // namespace

TEST(KernelShapeTest, CopyScaleAxpyDetected) {
  Program Copy = singleLoopProgram(read("A", {ax("i")}));
  EXPECT_EQ(specializedKernels(Copy), 1u);
  expectBitIdenticalEverywhere(Copy, "copy");

  Program ScaleR = singleLoopProgram(read("A", {ax("i")}) * lit(0.5));
  EXPECT_EQ(specializedKernels(ScaleR), 1u);
  expectBitIdenticalEverywhere(ScaleR, "scale-right");

  Program ScaleL = singleLoopProgram(lit(1.5) * read("A", {ax("i")}));
  EXPECT_EQ(specializedKernels(ScaleL), 1u);
  expectBitIdenticalEverywhere(ScaleL, "scale-left");

  Program Axpy = singleLoopProgram(
      read("W", {ax("i")}) + lit(2.5) * read("A", {ax("i")}));
  EXPECT_EQ(specializedKernels(Axpy), 1u);
  expectBitIdenticalEverywhere(Axpy, "axpy");
}

TEST(KernelShapeTest, StencilSumDetected) {
  // Scaled five-point stencil add (the jacobi2d shape) plus a plain sum.
  int N = 32;
  Program Prog("stencil");
  Prog.addArray("A", {N, N});
  Prog.addArray("B", {N, N});
  Prog.append(forLoop(
      "i", 1, N - 1,
      {forLoop("j", 1, N - 1,
               {assign("S0", "A", {ax("i"), ax("j")},
                       lit(0.2) * (read("B", {ax("i"), ax("j")}) +
                                   read("B", {ax("i"), ax("j") - 1}) +
                                   read("B", {ax("i"), ax("j") + 1}) +
                                   read("B", {ax("i") + 1, ax("j")}) +
                                   read("B", {ax("i") - 1, ax("j")})))})}));
  EXPECT_EQ(specializedKernels(Prog), 1u);
  expectBitIdenticalEverywhere(Prog, "stencil");

  Program Sum = singleLoopProgram(read("A", {ax("i")}) +
                                  read("B", {ax("i")}) +
                                  read("A", {ax("i")}));
  EXPECT_EQ(specializedKernels(Sum), 1u);
  expectBitIdenticalEverywhere(Sum, "plain-sum");
}

TEST(KernelShapeTest, FmaStreamingAndAccumulating) {
  // Streaming elementwise fma: the write advances with i.
  Program Stream = singleLoopProgram(
      read("W", {ax("i")}) +
      read("A", {ax("i")}) * read("B", {ax("i")}));
  EXPECT_EQ(specializedKernels(Stream), 1u);
  expectBitIdenticalEverywhere(Stream, "fma-stream");

  // Accumulating fma: gemm's k loop, the write is loop-invariant.
  Program Gemm = buildPolyBench(PolyBenchKernel::Gemm, VariantKind::A);
  EXPECT_GE(specializedKernels(Gemm), 1u);
}

TEST(KernelShapeTest, NonUnitStepStaysSpecializedAndExact) {
  Program Prog("step");
  Prog.addArray("A", {32});
  Prog.addArray("W", {32});
  Prog.append(forLoop("i", 1, 30,
                      {assign("S0", "W", {ax("i")},
                              read("A", {ax("i")}) * lit(3.0))},
                      /*Step=*/3));
  EXPECT_EQ(specializedKernels(Prog), 1u);
  expectBitIdenticalEverywhere(Prog, "strided-scale");
}

TEST(KernelShapeTest, TapesWithSelectsFallBackToGeneric) {
  Program Prog = singleLoopProgram(Expr::makeSelect(
      Expr::makeBinary(BinaryOpKind::Lt, read("A", {ax("i")}), lit(0.5)),
      read("A", {ax("i")}), lit(0.0)));
  EXPECT_EQ(specializedKernels(Prog), 0u);
  expectBitIdenticalEverywhere(Prog, "select-fallback");
}

TEST(KernelShapeTest, SpecializationKnobDisablesLowering) {
  Program Prog = singleLoopProgram(read("A", {ax("i")}));
  PlanOptions Off;
  Off.EnableSpecialization = false;
  EXPECT_EQ(ExecPlan::compile(Prog, Off).stats().SpecializedKernels, 0u);
  EXPECT_EQ(ExecPlan::compile(Prog).stats().SpecializedKernels, 1u);
}

TEST(KernelShapeTest, GemmAndJacobiSpecialize) {
  // The two ROADMAP perf-baseline kernels must land on dedicated kernels.
  EXPECT_GE(specializedKernels(
                buildPolyBench(PolyBenchKernel::Gemm, VariantKind::A)),
            1u);
  EXPECT_GE(specializedKernels(
                buildPolyBench(PolyBenchKernel::Jacobi2d, VariantKind::A)),
            1u);
}

//===----------------------------------------------------------------------===//
// Multi-statement inner loops (the fused CLOUDSC shape)
//===----------------------------------------------------------------------===//

TEST(MultiStmtTest, ErosionBodyFusesIntoOneInnerOp) {
  CloudscConfig Config;
  Config.Nproma = 16;
  Config.Klev = 8;
  Program Erosion = buildErosionKernel(Config);
  ExecPlan::Stats Stats = ExecPlan::compile(Erosion).stats();
  // The 14-computation jl body stays on the fast path as one fused op.
  EXPECT_GE(Stats.MultiStmtInnerLoops, 1u);
  EXPECT_GE(Stats.FastPathStatements, 14u);
}

TEST(MultiStmtTest, OrderSensitiveScalarChainIsExact) {
  // Scalar defined then read then redefined within one iteration: the
  // fused loop must execute statements in order, per iteration.
  int N = 16;
  Program Prog("chain");
  Prog.addArray("A", {N});
  Prog.addArray("B", {N});
  Prog.addArray("t", {}, /*Transient=*/true);
  Prog.append(forLoop(
      "i", 0, N,
      {assignScalar("S0", "t", read("A", {ax("i")}) + lit(1.0)),
       assign("S1", "B", {ax("i")}, read("t") * read("t")),
       assignScalar("S2", "t", read("t") * lit(0.5)),
       assign("S3", "A", {ax("i")}, read("t") + read("B", {ax("i")}))}));
  ExecPlan::Stats Stats = ExecPlan::compile(Prog).stats();
  EXPECT_EQ(Stats.MultiStmtInnerLoops, 1u);
  EXPECT_EQ(Stats.FastPathStatements, 4u);
  expectBitIdenticalEverywhere(Prog, "scalar-chain");
}

//===----------------------------------------------------------------------===//
// Parallel execution
//===----------------------------------------------------------------------===//

TEST(ParallelExecTest, MarkedGemmCompilesParallelLoops) {
  Program Marked =
      withParallelMarks(buildPolyBench(PolyBenchKernel::Gemm, VariantKind::A));
  PlanOptions Options;
  Options.NumThreads = 4;
  ExecPlan Plan = ExecPlan::compile(Marked, Options);
  EXPECT_GE(Plan.stats().ParallelLoops, 1u);
  EXPECT_EQ(Plan.threadCount(), 4);
  expectBitIdenticalEverywhere(Marked, "gemm-marked");
}

TEST(ParallelExecTest, InnermostParallelLoopForks) {
  // A parallel mark directly on an innermost (InnerStmt) loop chunks the
  // fused loop itself.
  int N = 4096;
  Program Prog("inner-par");
  Prog.addArray("A", {N});
  Prog.addArray("W", {N});
  Prog.append(forLoop("i", 0, N,
                      {assign("S0", "W", {ax("i")},
                              read("A", {ax("i")}) * lit(2.0))}));
  dynCast<Loop>(Prog.topLevel()[0])->setParallel(true);
  PlanOptions Options;
  Options.NumThreads = 4;
  EXPECT_GE(ExecPlan::compile(Prog, Options).stats().ParallelLoops, 1u);
  expectBitIdenticalEverywhere(Prog, "inner-par");
}

TEST(ParallelExecTest, AtomicReductionMarksStaySerial) {
  Program Prog("red");
  Prog.addArray("A", {64});
  Prog.addArray("s", {});
  Prog.append(forLoop("i", 0, 64,
                      {assignScalar("S0", "s",
                                    read("s") + read("A", {ax("i")}))}));
  auto *L = dynCast<Loop>(Prog.topLevel()[0]);
  L->setParallel(true);
  L->setAtomicReduction(true);
  PlanOptions Options;
  Options.NumThreads = 4;
  EXPECT_EQ(ExecPlan::compile(Prog, Options).stats().ParallelLoops, 0u);
  expectBitIdenticalEverywhere(Prog, "atomic-serial");
}

TEST(ParallelExecTest, PrivatizedScalarWithLastprivateCopyBack) {
  // A transient scalar defined and used per iteration of a parallel loop
  // gets per-thread private copies; reading it after the loop must still
  // see the serially-last value (lastprivate copy-back).
  int N = 512;
  Program Prog("priv");
  Prog.addArray("A", {N});
  Prog.addArray("B", {N});
  Prog.addArray("C", {1});
  Prog.addArray("t", {}, /*Transient=*/true);
  Prog.append(forLoop(
      "i", 0, N,
      {assignScalar("S0", "t", read("A", {ax("i")}) + lit(1.0)),
       assign("S1", "B", {ax("i")}, read("t") * lit(2.0))}));
  dynCast<Loop>(Prog.topLevel()[0])->setParallel(true);
  Prog.append(assign("S2", "C", {ac(0)}, read("t")));

  PlanOptions Options;
  Options.NumThreads = 4;
  ExecPlan::Stats Stats = ExecPlan::compile(Prog, Options).stats();
  EXPECT_GE(Stats.ParallelLoops, 1u);
  EXPECT_GE(Stats.PrivatizedBuffers, 1u);
  expectBitIdenticalEverywhere(Prog, "privatized-scalar");
}

TEST(ParallelExecTest, PrivateCopiesPreserveUntouchedElements) {
  // Elements of a privatized transient that the parallel loop never
  // writes (here t[0], defined before the loop and read after it) must
  // survive the lastprivate copy-back: private copies carry the shared
  // contents rather than starting from zero.
  int N = 8192;
  Program Prog("priv-footprint");
  Prog.addArray("A", {N});
  Prog.addArray("B", {N});
  Prog.addArray("C", {1});
  Prog.addArray("t", {2}, /*Transient=*/true);
  Prog.append(assign("S0", "t", {ac(0)}, lit(7.0)));
  Prog.append(forLoop(
      "i", 0, N,
      {assign("S1", "t", {ac(1)}, read("A", {ax("i")}) + lit(1.0)),
       assign("S2", "B", {ax("i")}, read("t", {ac(1)}) * lit(2.0))}));
  Prog.append(assign("S3", "C", {ac(0)}, read("t", {ac(0)})));
  EXPECT_TRUE(
      parallelizeOutermost(Prog.topLevel()[1], Prog.params(), &Prog));

  PlanOptions Options;
  Options.NumThreads = 4;
  ExecPlan::Stats Stats = ExecPlan::compile(Prog, Options).stats();
  EXPECT_GE(Stats.ParallelLoops, 1u);
  EXPECT_GE(Stats.PrivatizedBuffers, 1u);
  expectBitIdenticalEverywhere(Prog, "private-footprint");

  DataEnv Env(Prog);
  Env.initDeterministic(DiffSeed);
  ExecPlan::compile(Prog, Options).run(Env);
  EXPECT_DOUBLE_EQ(Env.buffer("C")[0], 7.0);
}

TEST(ParallelExecTest, OptimizedCloudscParallelizesAndPrivatizes) {
  CloudscConfig Config;
  Config.Nproma = 32;
  Config.Klev = 8;
  Config.Nblocks = 4;
  Program Optimized =
      optimizeCloudsc(buildCloudsc(Config, CloudscVariant::Fortran));
  PlanOptions Options;
  Options.NumThreads = 2;
  ExecPlan::Stats Stats = ExecPlan::compile(Optimized, Options).stats();
  EXPECT_GE(Stats.ParallelLoops, 1u);
  EXPECT_GE(Stats.PrivatizedBuffers, 1u);
  expectBitIdenticalEverywhere(Optimized, "cloudsc-optimized");
}

//===----------------------------------------------------------------------===//
// Differential: PolyBench (all kernels, all variants) and CLOUDSC, under
// every engine configuration, serial and Parallelize-marked
//===----------------------------------------------------------------------===//

TEST(ExecPlanDifferentialTest, PolyBenchAllKernelsAllVariants) {
  for (PolyBenchKernel Kernel : allPolyBenchKernels()) {
    for (VariantKind Variant :
         {VariantKind::A, VariantKind::B, VariantKind::NPBench}) {
      Program Prog = buildPolyBench(Kernel, Variant);
      expectBitIdenticalEverywhere(Prog, polyBenchName(Kernel).c_str());
    }
  }
}

TEST(ExecPlanDifferentialTest, PolyBenchParallelized) {
  for (PolyBenchKernel Kernel : allPolyBenchKernels()) {
    Program Marked =
        withParallelMarks(buildPolyBench(Kernel, VariantKind::A));
    expectBitIdenticalEverywhere(Marked, polyBenchName(Kernel).c_str());
  }
}

TEST(ExecPlanDifferentialTest, CloudscAllVariants) {
  CloudscConfig Config;
  Config.Nproma = 16;
  Config.Klev = 8;
  Config.Nblocks = 2;
  for (CloudscVariant Variant :
       {CloudscVariant::Fortran, CloudscVariant::C, CloudscVariant::DaCe}) {
    Program Prog = buildCloudsc(Config, Variant);
    expectBitIdenticalEverywhere(Prog, "cloudsc");
    expectBitIdenticalEverywhere(withParallelMarks(Prog), "cloudsc-marked");
  }
}

TEST(ExecPlanDifferentialTest, CloudscErosionAndOptimized) {
  CloudscConfig Config;
  Config.Nproma = 16;
  Config.Klev = 8;
  Config.Nblocks = 2;
  Program Erosion = buildErosionKernel(Config);
  expectBitIdenticalEverywhere(Erosion, "erosion");

  Program Optimized =
      optimizeCloudsc(buildCloudsc(Config, CloudscVariant::Fortran));
  expectBitIdenticalEverywhere(Optimized, "optimized");
}
