//===- tests/ExecTest.cpp - interpreter & data environment tests -----------==//
//
// Part of the daisy project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "exec/Interpreter.h"
#include "blas/Kernels.h"
#include "frontends/PolyBench.h"
#include "ir/Builder.h"
#include "support/Statistics.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace daisy;

namespace {

Program makeGemmProgram(int N) {
  Program Prog("gemm");
  Prog.addArray("A", {N, N});
  Prog.addArray("B", {N, N});
  Prog.addArray("C", {N, N});
  Prog.append(forLoop(
      "i", 0, N,
      {forLoop("j", 0, N,
               {forLoop("k", 0, N,
                        {assign("S0", "C", {ax("i"), ax("j")},
                                read("C", {ax("i"), ax("j")}) +
                                    read("A", {ax("i"), ax("k")}) *
                                        read("B", {ax("k"), ax("j")}))})})}));
  return Prog;
}

} // namespace

TEST(DataEnvTest, AllocationAndInit) {
  Program Prog("p");
  Prog.addArray("A", {4, 4});
  Prog.addArray("s", {});
  Prog.addArray("T", {8}, /*Transient=*/true);
  DataEnv Env(Prog);
  EXPECT_EQ(Env.buffer("A").size(), 16u);
  EXPECT_EQ(Env.buffer("s").size(), 1u);
  Env.initDeterministic(7);
  // Transient arrays stay zero.
  for (double V : Env.buffer("T"))
    EXPECT_EQ(V, 0.0);
  // Non-transient arrays are filled and bounded.
  bool AnyNonZero = false;
  for (double V : Env.buffer("A")) {
    AnyNonZero |= V != 0.0;
    EXPECT_LT(std::fabs(V), 2.0);
  }
  EXPECT_TRUE(AnyNonZero);
}

TEST(DataEnvTest, InitIsDeterministic) {
  Program Prog("p");
  Prog.addArray("A", {16});
  DataEnv E1(Prog), E2(Prog);
  E1.initDeterministic(3);
  E2.initDeterministic(3);
  EXPECT_EQ(E1.buffer("A"), E2.buffer("A"));
  E2.initDeterministic(4);
  EXPECT_NE(E1.buffer("A"), E2.buffer("A"));
}

TEST(InterpreterTest, SimpleAssignment) {
  Program Prog("p");
  Prog.addArray("A", {4});
  Prog.append(forLoop("i", 0, 4,
                      {assign("S0", "A", {ax("i")},
                              Expr::makeIter("i") * lit(2.0))}));
  DataEnv Env = runProgram(Prog);
  for (int I = 0; I < 4; ++I)
    EXPECT_DOUBLE_EQ(Env.buffer("A")[static_cast<size_t>(I)], 2.0 * I);
}

TEST(InterpreterTest, GemmMatchesManualComputation) {
  int N = 5;
  Program Prog = makeGemmProgram(N);
  DataEnv Env(Prog);
  Env.initDeterministic(1);
  std::vector<double> A = Env.buffer("A");
  std::vector<double> B = Env.buffer("B");
  std::vector<double> C = Env.buffer("C");
  interpret(Prog, Env);
  for (int I = 0; I < N; ++I)
    for (int J = 0; J < N; ++J) {
      double Expected = C[static_cast<size_t>(I * N + J)];
      for (int K = 0; K < N; ++K)
        Expected += A[static_cast<size_t>(I * N + K)] *
                    B[static_cast<size_t>(K * N + J)];
      EXPECT_NEAR(Env.buffer("C")[static_cast<size_t>(I * N + J)], Expected,
                  1e-12);
    }
}

TEST(InterpreterTest, TriangularBoundsRespected) {
  Program Prog("tri");
  Prog.addArray("C", {6, 6});
  Prog.append(forLoop(
      "i", 0, 6,
      {forLoop("j", ac(0), ax("i") + 1,
               {assign("S0", "C", {ax("i"), ax("j")}, lit(1.0))})}));
  DataEnv Env = runProgram(Prog, 99);
  for (int I = 0; I < 6; ++I)
    for (int J = 0; J < 6; ++J) {
      double V = Env.buffer("C")[static_cast<size_t>(I * 6 + J)];
      if (J <= I)
        EXPECT_DOUBLE_EQ(V, 1.0);
    }
}

TEST(InterpreterTest, SelectAndIntrinsics) {
  Program Prog("sel");
  Prog.addArray("A", {4});
  Prog.addArray("B", {4});
  // B[i] = A[i] > 0.5 ? sqrt(A[i]) : exp(A[i])
  Prog.append(forLoop(
      "i", 0, 4,
      {assign("S0", "B", {ax("i")},
              Expr::makeSelect(
                  Expr::makeBinary(BinaryOpKind::Gt, read("A", {ax("i")}),
                                   lit(0.5)),
                  esqrt(read("A", {ax("i")})),
                  eexp(read("A", {ax("i")}))))}));
  DataEnv Env(Prog);
  Env.initDeterministic(2);
  std::vector<double> A = Env.buffer("A");
  interpret(Prog, Env);
  for (int I = 0; I < 4; ++I) {
    double AV = A[static_cast<size_t>(I)];
    double Expected = AV > 0.5 ? std::sqrt(AV) : std::exp(AV);
    EXPECT_DOUBLE_EQ(Env.buffer("B")[static_cast<size_t>(I)], Expected);
  }
}

TEST(InterpreterTest, CallNodeMatchesLoopNest) {
  int N = 6;
  Program Loops = makeGemmProgram(N);
  Program Call("gemm_call");
  Call.addArray("A", {N, N});
  Call.addArray("B", {N, N});
  Call.addArray("C", {N, N});
  Call.append(std::make_shared<CallNode>(
      BlasKind::Gemm, std::vector<std::string>{"C", "A", "B"},
      std::vector<int64_t>{N, N, N}));
  EXPECT_TRUE(semanticallyEquivalent(Loops, Call, 1e-9));
}

TEST(InterpreterTest, StepLoops) {
  Program Prog("step");
  Prog.addArray("A", {10});
  Prog.append(forLoop("i", 0, 10,
                      {assign("S0", "A", {ax("i")}, lit(1.0))}, 2));
  DataEnv Env = runProgram(Prog, 0);
  // initDeterministic fills A; overwrite pattern on even indices only.
  for (int I = 0; I < 10; I += 2)
    EXPECT_DOUBLE_EQ(Env.buffer("A")[static_cast<size_t>(I)], 1.0);
}

TEST(BlasKernelTest, GemvMatchesLoops) {
  int M = 7, N = 5;
  std::vector<double> A(static_cast<size_t>(M * N)), X(static_cast<size_t>(N)),
      Y(static_cast<size_t>(M)), YRef;
  for (size_t I = 0; I < A.size(); ++I)
    A[I] = 0.01 * static_cast<double>(I + 1);
  for (size_t I = 0; I < X.size(); ++I)
    X[I] = 0.1 * static_cast<double>(I + 1);
  for (size_t I = 0; I < Y.size(); ++I)
    Y[I] = static_cast<double>(I);
  YRef = Y;
  gemv(Y.data(), A.data(), X.data(), M, N, 2.0, 0.5);
  for (int I = 0; I < M; ++I) {
    double Sum = 0.0;
    for (int J = 0; J < N; ++J)
      Sum += A[static_cast<size_t>(I * N + J)] * X[static_cast<size_t>(J)];
    EXPECT_NEAR(Y[static_cast<size_t>(I)],
                0.5 * YRef[static_cast<size_t>(I)] + 2.0 * Sum, 1e-12);
  }
}

TEST(BlasKernelTest, SyrkLowerTriangle) {
  int N = 6, K = 4;
  std::vector<double> A(static_cast<size_t>(N * K)),
      C(static_cast<size_t>(N * N), 1.0);
  for (size_t I = 0; I < A.size(); ++I)
    A[I] = 0.1 * static_cast<double>(I % 7);
  std::vector<double> CRef = C;
  syrk(C.data(), A.data(), N, K, 1.0, 1.0);
  for (int I = 0; I < N; ++I)
    for (int J = 0; J <= I; ++J) {
      double Expected = CRef[static_cast<size_t>(I * N + J)];
      for (int Ki = 0; Ki < K; ++Ki)
        Expected += A[static_cast<size_t>(I * K + Ki)] *
                    A[static_cast<size_t>(J * K + Ki)];
      EXPECT_NEAR(C[static_cast<size_t>(I * N + J)], Expected, 1e-12);
    }
}

TEST(BlasKernelTest, EfficiencyModelSane) {
  EXPECT_GT(blasEfficiency(BlasKind::Gemm, {512, 512, 512}), 0.8);
  EXPECT_LT(blasEfficiency(BlasKind::Gemv, {512, 512}), 0.3);
  EXPECT_LT(blasEfficiency(BlasKind::Gemm, {16, 16, 16}),
            blasEfficiency(BlasKind::Gemm, {512, 512, 512}));
}

//===----------------------------------------------------------------------===//
// Batch equivalence checking
//===----------------------------------------------------------------------===//

TEST(SemEquivBatchTest, MatchesScalarOverAllPolyBenchVariants) {
  // Differential over every frontend kernel: the batch verdicts must be
  // exactly the N scalar verdicts, at several thread counts. B and
  // NPBench variants are semantically equivalent alternates of A, so
  // this also exercises the true-positive path everywhere.
  for (PolyBenchKernel Kernel : allPolyBenchKernels()) {
    Program A = buildPolyBench(Kernel, VariantKind::A);
    Program B = buildPolyBench(Kernel, VariantKind::B);
    Program NP = buildPolyBench(Kernel, VariantKind::NPBench);
    std::vector<const Program *> Candidates = {&B, &NP, &A};
    std::vector<char> Expected;
    for (const Program *Candidate : Candidates)
      Expected.push_back(semanticallyEquivalent(A, *Candidate) ? 1 : 0);
    for (int Threads : {1, 2, 4}) {
      std::vector<char> Got =
          semanticallyEquivalentBatch(A, Candidates, 1e-9, 1, Threads);
      ASSERT_EQ(Got.size(), Expected.size());
      for (size_t I = 0; I < Got.size(); ++I)
        EXPECT_EQ(Got[I] != 0, Expected[I] != 0)
            << polyBenchName(Kernel) << " candidate " << I << " threads "
            << Threads;
    }
  }
}

TEST(SemEquivBatchTest, DetectsInequivalentCandidate) {
  Program A = buildPolyBench(PolyBenchKernel::Gemm, VariantKind::A);
  Program B = buildPolyBench(PolyBenchKernel::Gemm, VariantKind::B);
  // Corrupt one coefficient: verdict must be negative, in the right slot.
  Program Broken = B.clone();
  auto *L = dynCast<Loop>(Broken.topLevel()[0]);
  ASSERT_NE(L, nullptr);
  L->setBounds(L->lower(), L->upper(), 2); // skip every other row
  std::vector<const Program *> Candidates = {&B, &Broken};
  std::vector<char> Verdicts = semanticallyEquivalentBatch(A, Candidates);
  EXPECT_NE(Verdicts[0], 0);
  EXPECT_EQ(Verdicts[1], 0);
}

TEST(SemEquivBatchTest, CompilesReferenceOncePerBatch) {
  Program A = buildPolyBench(PolyBenchKernel::Gemm, VariantKind::A);
  Program B = buildPolyBench(PolyBenchKernel::Gemm, VariantKind::B);
  Program NP = buildPolyBench(PolyBenchKernel::Gemm, VariantKind::NPBench);
  std::vector<const Program *> Candidates = {&B, &NP, &A, &B, &NP};
  resetStatsCounters();
  semanticallyEquivalentBatch(A, Candidates, 1e-9, 1, /*NumThreads=*/4);
  // One batch entry, five per-candidate checks. The reference compile
  // goes through the shared engine's plan cache: at most one real
  // compile for this batch, none if the reference was already cached.
  EXPECT_EQ(statsCounter("SemEquivBatch.Batches"), 1);
  EXPECT_EQ(statsCounter("SemEquivBatch.Checks"),
            static_cast<int64_t>(Candidates.size()));
  EXPECT_LE(statsCounter("Engine.PlanCompiles"), 1);

  // A second batch against the same reference pays zero reference
  // compiles — the cached kernel is reused.
  resetStatsCounters();
  semanticallyEquivalentBatch(A, Candidates, 1e-9, 1, /*NumThreads=*/4);
  EXPECT_EQ(statsCounter("Engine.PlanCompiles"), 0);
  EXPECT_EQ(statsCounter("Engine.PlanCacheHits"), 1);
}

TEST(DataEnvTest, ResetForReproducesFreshEnvironment) {
  Program Prog("p");
  Prog.addArray("A", {8, 8});
  Prog.addArray("T", {16}, /*Transient=*/true);
  DataEnv Fresh(Prog);
  Fresh.initDeterministic(3);

  DataEnv Reused(Prog);
  Reused.initDeterministic(9); // different pattern
  Reused.buffer("T")[5] = 42.0; // dirty transient state
  ASSERT_TRUE(Reused.resetFor(Prog, 3));
  EXPECT_EQ(Reused.buffer("A"), Fresh.buffer("A"));
  EXPECT_EQ(Reused.buffer("T"), Fresh.buffer("T"));

  // Any declaration mismatch refuses the reuse.
  Program Other("q");
  Other.addArray("A", {8, 8});
  Other.addArray("T", {17}, /*Transient=*/true);
  EXPECT_FALSE(Reused.resetFor(Other, 3));
  Program Renamed("r");
  Renamed.addArray("A", {8, 8});
  Renamed.addArray("U", {16}, /*Transient=*/true);
  EXPECT_FALSE(Reused.resetFor(Renamed, 3));
}
