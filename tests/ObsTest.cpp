//===- tests/ObsTest.cpp - observability-layer tests -----------------------==//
//
// Part of the daisy project. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The observability layer's contracts (this suite runs under
// ThreadSanitizer in CI, DAISY_THREADS=4):
//
// - support/Histogram.h: the extracted log2 / log-linear bucketings
//   cover every value, bounds bracket their bucket's members, quantile
//   and merge behave, and the latency layout is exact below 4µs;
// - snapshotStatsCounters: name-sorted, includes zero-valued registered
//   counters, values match the exact-name reads;
// - flight recorder: a wrapped ring keeps exactly the most recent
//   capacity events in claim order; a disabled recorder emits nothing;
//   concurrent emitters and snapshotters race data-race-free (the
//   seqlock discipline, exercised under TSan) and every surviving event
//   decodes whole;
// - exportChromeTrace: the output is valid JSON (parse-back with a
//   minimal in-test parser), and an End whose Begin was lost to ring
//   wrap is dropped instead of corrupting the lane;
// - Prometheus exposition: name mapping (dotted CamelCase to
//   daisy_snake_case), line grammar, cumulative ascending _bucket series
//   closed by le="+Inf", _sum/_count presence;
// - per-stage histograms: queue-wait + batch-wait + run sums match the
//   end-to-end sojourn sum within bucketing resolution, per-stage counts
//   equal the completion count;
// - one capture holds all three layers: serve request stages, engine
//   compile/cache events, and tuner cycles in the same trace.
//
//===----------------------------------------------------------------------===//

#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "serve/Server.h"
#include "support/Histogram.h"
#include "support/Statistics.h"

#include "exec/Interpreter.h"
#include "ir/Builder.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdlib>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

using namespace daisy;
using namespace daisy::serve;

namespace {

/// GEMM with a chosen loop order (the canonical many-variants program).
Program makeGemm(const std::string &O1, const std::string &O2,
                 const std::string &O3, int N) {
  Program Prog("gemm_" + O1 + O2 + O3);
  Prog.addArray("A", {N, N});
  Prog.addArray("B", {N, N});
  Prog.addArray("C", {N, N});
  Prog.append(forLoop(
      O1, 0, N,
      {forLoop(O2, 0, N,
               {forLoop(O3, 0, N,
                        {assign("S0", "C", {ax("i"), ax("j")},
                                read("C", {ax("i"), ax("j")}) +
                                    read("A", {ax("i"), ax("k")}) *
                                        read("B", {ax("k"), ax("j")}))})})}));
  return Prog;
}

/// Caller-owned argument storage for one request, deterministic fill.
struct OwnedArgs {
  std::vector<std::pair<std::string, std::vector<double>>> Buffers;

  explicit OwnedArgs(const Program &Prog, uint64_t Seed = 1) {
    DataEnv Env(Prog);
    Env.initDeterministic(Seed);
    for (const ArrayDecl &Decl : Prog.arrays())
      if (!Decl.Transient)
        Buffers.emplace_back(Decl.Name, Env.buffer(Decl.Name));
  }

  ArgBinding binding() {
    ArgBinding Args;
    for (auto &[Name, Storage] : Buffers)
      Args.bind(Name, Storage);
    return Args;
  }
};

//===----------------------------------------------------------------------===//
// Minimal JSON parser — the parse-back validator for exported traces and
// metricsJson. Accepts exactly the RFC 8259 value grammar; no
// dependencies, no tree built.
//===----------------------------------------------------------------------===//

class JsonValidator {
public:
  explicit JsonValidator(const std::string &Text)
      : P(Text.data()), End(Text.data() + Text.size()) {}

  /// Whole-document check: one value, nothing but whitespace after it.
  bool valid() {
    skipWs();
    if (!value())
      return false;
    skipWs();
    return P == End;
  }

private:
  const char *P, *End;

  void skipWs() {
    while (P != End && (*P == ' ' || *P == '\t' || *P == '\n' || *P == '\r'))
      ++P;
  }
  bool literal(const char *Lit) {
    const char *Q = P;
    for (; *Lit; ++Lit, ++Q)
      if (Q == End || *Q != *Lit)
        return false;
    P = Q;
    return true;
  }
  bool string() {
    if (P == End || *P != '"')
      return false;
    ++P;
    while (P != End && *P != '"') {
      if (*P == '\\') {
        ++P;
        if (P == End)
          return false;
        if (*P == 'u') {
          for (int I = 0; I < 4; ++I) {
            ++P;
            if (P == End || !std::isxdigit(static_cast<unsigned char>(*P)))
              return false;
          }
        }
      }
      ++P;
    }
    if (P == End)
      return false;
    ++P; // Closing quote.
    return true;
  }
  bool number() {
    const char *Q = P;
    if (Q != End && *Q == '-')
      ++Q;
    const char *Digits = Q;
    while (Q != End && std::isdigit(static_cast<unsigned char>(*Q)))
      ++Q;
    if (Q == Digits)
      return false;
    if (Q != End && *Q == '.') {
      ++Q;
      const char *Frac = Q;
      while (Q != End && std::isdigit(static_cast<unsigned char>(*Q)))
        ++Q;
      if (Q == Frac)
        return false;
    }
    if (Q != End && (*Q == 'e' || *Q == 'E')) {
      ++Q;
      if (Q != End && (*Q == '+' || *Q == '-'))
        ++Q;
      const char *Exp = Q;
      while (Q != End && std::isdigit(static_cast<unsigned char>(*Q)))
        ++Q;
      if (Q == Exp)
        return false;
    }
    P = Q;
    return true;
  }
  bool value() {
    skipWs();
    if (P == End)
      return false;
    switch (*P) {
    case '{': {
      ++P;
      skipWs();
      if (P != End && *P == '}') {
        ++P;
        return true;
      }
      for (;;) {
        skipWs();
        if (!string())
          return false;
        skipWs();
        if (P == End || *P != ':')
          return false;
        ++P;
        if (!value())
          return false;
        skipWs();
        if (P != End && *P == ',') {
          ++P;
          continue;
        }
        if (P != End && *P == '}') {
          ++P;
          return true;
        }
        return false;
      }
    }
    case '[': {
      ++P;
      skipWs();
      if (P != End && *P == ']') {
        ++P;
        return true;
      }
      for (;;) {
        if (!value())
          return false;
        skipWs();
        if (P != End && *P == ',') {
          ++P;
          continue;
        }
        if (P != End && *P == ']') {
          ++P;
          return true;
        }
        return false;
      }
    }
    case '"':
      return string();
    case 't':
      return literal("true");
    case 'f':
      return literal("false");
    case 'n':
      return literal("null");
    default:
      return number();
    }
  }
};

/// Names present in a snapshot, decoded through the interning table.
std::set<std::string> eventNames(const std::vector<TraceEvent> &Events) {
  std::set<std::string> Names;
  for (const TraceEvent &E : Events)
    Names.insert(traceNameOf(E.NameId));
  return Names;
}

} // namespace

//===----------------------------------------------------------------------===//
// support/Histogram.h
//===----------------------------------------------------------------------===//

TEST(HistogramTest, Log2BucketingCoversAndBrackets) {
  // The layout queueDepthHistogram always had: bucket B = [2^B, 2^(B+1)).
  EXPECT_EQ(Log2Bucketing::bucket(0, 16), 0u);
  EXPECT_EQ(Log2Bucketing::bucket(1, 16), 0u);
  EXPECT_EQ(Log2Bucketing::bucket(2, 16), 1u);
  EXPECT_EQ(Log2Bucketing::bucket(3, 16), 1u);
  EXPECT_EQ(Log2Bucketing::bucket(4, 16), 2u);
  EXPECT_EQ(Log2Bucketing::bucket(1u << 15, 16), 15u);
  EXPECT_EQ(Log2Bucketing::bucket(~0ull, 16), 15u); // Clamp.
  for (uint64_t V = 2; V < 70000; V = V * 2 - V / 3 + 1) {
    size_t B = Log2Bucketing::bucket(V, 16);
    if (B + 1 < 16) {
      EXPECT_LE(Log2Bucketing::lowerBound(B, 16), static_cast<double>(V));
      EXPECT_LT(static_cast<double>(V), Log2Bucketing::upperBound(B, 16));
    }
  }
}

TEST(HistogramTest, LogLinearExactBelowFourAndBracketsAbove) {
  for (uint64_t V = 0; V < 4; ++V) {
    EXPECT_EQ(LogLinearBucketing::bucket(V, 256), static_cast<size_t>(V));
    // Exact buckets estimate at the exact value, not a midpoint.
    EXPECT_EQ(LogLinearBucketing::midpoint(V, 256), static_cast<double>(V));
  }
  size_t Prev = 3;
  for (uint64_t V = 4; V < (1ull << 40); V += 1 + V / 3) {
    size_t B = LogLinearBucketing::bucket(V, 256);
    EXPECT_GE(B, Prev); // Monotone in the sample value.
    Prev = std::max(Prev, B);
    if (B + 1 < 256) {
      EXPECT_LE(LogLinearBucketing::lowerBound(B, 256),
                static_cast<double>(V));
      EXPECT_LT(static_cast<double>(V), LogLinearBucketing::upperBound(B, 256));
      // Four sub-buckets per octave: the relative width is at most 25%
      // of the lower bound (±12.5% around the midpoint).
      EXPECT_LE(LogLinearBucketing::upperBound(B, 256) -
                    LogLinearBucketing::lowerBound(B, 256),
                0.25 * LogLinearBucketing::lowerBound(B, 256) + 1e-9);
    }
  }
}

TEST(HistogramTest, QuantileCountMergeReset) {
  LatencyHistogram H;
  EXPECT_EQ(H.count(), 0u);
  EXPECT_EQ(H.quantile(0.5), 0.0);
  for (uint64_t V = 0; V < 100; ++V)
    H.record(V);
  EXPECT_EQ(H.count(), 100u);
  // Median of 0..99 sits in the bucket containing ~49; log-linear
  // resolution is ±12.5%.
  EXPECT_NEAR(H.quantile(0.5), 49.0, 49.0 * 0.15);
  EXPECT_GE(H.quantile(1.0), H.quantile(0.5));
  EXPECT_NEAR(H.approxSum(), 4950.0, 4950.0 * 0.15);

  LatencyHistogram Other;
  for (int I = 0; I < 50; ++I)
    Other.record(1000);
  H.merge(Other);
  EXPECT_EQ(H.count(), 150u);
  EXPECT_NEAR(H.quantile(0.99), 1000.0, 1000.0 * 0.15);

  H.reset();
  EXPECT_EQ(H.count(), 0u);
}

//===----------------------------------------------------------------------===//
// snapshotStatsCounters
//===----------------------------------------------------------------------===//

TEST(StatsSnapshotTest, SortedCompleteAndConsistent) {
  addStatsCounter("ObsTest.Alpha", 3);
  addStatsCounter("ObsTest.Beta", 7);
  (void)statsCounterCell("ObsTest.Zero"); // Registered, never bumped.

  auto Snap = snapshotStatsCounters();
  EXPECT_TRUE(std::is_sorted(
      Snap.begin(), Snap.end(),
      [](const auto &A, const auto &B) { return A.first < B.first; }));

  auto find = [&](const std::string &Name) -> const int64_t * {
    for (const auto &[N, V] : Snap)
      if (N == Name)
        return &V;
    return nullptr;
  };
  ASSERT_NE(find("ObsTest.Alpha"), nullptr);
  ASSERT_NE(find("ObsTest.Beta"), nullptr);
  ASSERT_NE(find("ObsTest.Zero"), nullptr);
  EXPECT_EQ(*find("ObsTest.Alpha"), statsCounter("ObsTest.Alpha"));
  EXPECT_EQ(*find("ObsTest.Beta"), statsCounter("ObsTest.Beta"));
  EXPECT_EQ(*find("ObsTest.Zero"), 0);
}

//===----------------------------------------------------------------------===//
// Flight recorder
//===----------------------------------------------------------------------===//

TEST(TraceRecorderTest, RingWrapKeepsMostRecentInClaimOrder) {
  TraceRecorder &R = TraceRecorder::instance();
  R.enable(64);
  R.clear();
  size_t Cap = R.capacity(); // Grow-only: a prior test may have grown it.
  ASSERT_GE(Cap, 64u);

  uint16_t Name = traceNameId("obstest.wrap");
  const uint64_t Total = static_cast<uint64_t>(Cap) * 3 + 8;
  for (uint64_t I = 0; I < Total; ++I)
    R.emit(TracePhase::Instant, TraceCategory::App, Name, /*Arg=*/I);
  R.disable();

  std::vector<TraceEvent> Events = R.snapshot();
  ASSERT_EQ(Events.size(), Cap);
  // Exactly the most recent Cap claims survive, and sorting by
  // (StartNs, Order) reproduces emission order.
  std::vector<uint64_t> Args;
  for (const TraceEvent &E : Events) {
    EXPECT_EQ(E.NameId, Name);
    EXPECT_EQ(E.Phase, TracePhase::Instant);
    Args.push_back(E.Arg);
  }
  EXPECT_TRUE(std::is_sorted(Args.begin(), Args.end()));
  EXPECT_EQ(Args.front(), Total - Cap);
  EXPECT_EQ(Args.back(), Total - 1);
}

TEST(TraceRecorderTest, DisabledRecorderEmitsNothing) {
  TraceRecorder &R = TraceRecorder::instance();
  R.enable(); // Ensure a ring exists, then turn recording off.
  R.clear();
  R.disable();
  ASSERT_FALSE(traceEnabled());

  uint64_t Before = R.emittedCount();
  uint16_t Name = traceNameId("obstest.disabled");
  for (int I = 0; I < 1000; ++I) {
    R.emit(TracePhase::Instant, TraceCategory::App, Name);
    R.emitComplete(TraceCategory::App, Name, 0, 1);
    traceInstant(TraceCategory::App, "obstest.disabled");
    TraceSpan Span(TraceCategory::App, "obstest.disabled");
  }
  EXPECT_EQ(R.emittedCount(), Before);
  EXPECT_TRUE(R.snapshot().empty());
}

TEST(TraceRecorderTest, ConcurrentEmittersAndSnapshotsStayWhole) {
  TraceRecorder &R = TraceRecorder::instance();
  R.enable(1024);
  R.clear();
  uint16_t Name = traceNameId("obstest.stress");

  constexpr int Threads = 8;
  constexpr uint64_t PerThread = 4000;
  std::atomic<bool> Stop{false};
  // Reader races the writers: under TSan this is the seqlock proof.
  std::thread Reader([&] {
    while (!Stop.load(std::memory_order_acquire)) {
      for (const TraceEvent &E : R.snapshot()) {
        // A torn cell would decode garbage; every validated event must
        // carry our name and a well-formed payload.
        ASSERT_EQ(E.NameId, Name);
        ASSERT_LT(E.Arg, static_cast<uint64_t>(Threads) * PerThread);
        ASSERT_NE(E.Tid, 0u);
      }
    }
  });
  std::vector<std::thread> Writers;
  for (int T = 0; T < Threads; ++T)
    Writers.emplace_back([&, T] {
      for (uint64_t I = 0; I < PerThread; ++I)
        R.emit(TracePhase::Instant, TraceCategory::App, Name,
               static_cast<uint64_t>(T) * PerThread + I);
    });
  for (auto &W : Writers)
    W.join();
  Stop.store(true, std::memory_order_release);
  Reader.join();
  R.disable();

  EXPECT_GE(R.emittedCount(), static_cast<uint64_t>(Threads) * PerThread);
  std::vector<TraceEvent> Events = R.snapshot();
  // The ring may be larger than this test's request (grow-only across
  // the suite): it holds min(emitted, capacity) events.
  EXPECT_EQ(Events.size(),
            std::min<uint64_t>(R.emittedCount(), R.capacity()));
  std::set<uint64_t> Seen;
  for (const TraceEvent &E : Events) {
    EXPECT_EQ(E.NameId, Name);
    // Claim uniqueness: no event is exported twice.
    EXPECT_TRUE(Seen.insert(E.Order).second);
  }
}

TEST(TraceRecorderTest, ChromeExportParsesBackAndDropsOrphanEnds) {
  TraceRecorder &R = TraceRecorder::instance();
  R.enable();
  R.clear();
  // An End with no Begin (its Begin "lost to ring wrap"), then a proper
  // span pair and an instant with an argument.
  R.emit(TracePhase::End, TraceCategory::App, traceNameId("obstest.orphan"));
  {
    TraceSpan Span(TraceCategory::App, "obstest.span", /*Arg=*/42);
    traceInstant(TraceCategory::App, "obstest.point", 7);
  }
  R.disable();

  std::ostringstream OS;
  R.exportChromeTrace(OS);
  std::string Json = OS.str();
  EXPECT_TRUE(JsonValidator(Json).valid()) << Json;
  EXPECT_NE(Json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(Json.find("\"obstest.span\""), std::string::npos);
  EXPECT_NE(Json.find("\"obstest.point\""), std::string::npos);
  EXPECT_NE(Json.find("\"ph\":\"B\""), std::string::npos);
  // One Begin emitted, so exactly one End may survive — the orphan is
  // dropped (it sorts before the Begin at the same thread).
  EXPECT_EQ(Json.find("\"ph\":\"E\""), Json.rfind("\"ph\":\"E\""));
  EXPECT_NE(Json.find("\"ph\":\"E\""), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Prometheus / JSON exposition
//===----------------------------------------------------------------------===//

TEST(MetricsTest, PrometheusNameMapping) {
  EXPECT_EQ(prometheusMetricName("Serve.QueueDepthMax"),
            "daisy_serve_queue_depth_max");
  EXPECT_EQ(prometheusMetricName("Engine.PlanCacheHits"),
            "daisy_engine_plan_cache_hits");
  EXPECT_EQ(prometheusMetricName("Serve.Tenant0.Submitted"),
            "daisy_serve_tenant0_submitted");
  // Acronym runs stay one word until a normal word resumes.
  EXPECT_EQ(prometheusMetricName("Serve.EDFPops"), "daisy_serve_edf_pops");
}

TEST(MetricsTest, PrometheusGrammarAndHistogramSeries) {
  addStatsCounter("ObsTest.PromGrammar", 11); // A counter we control.
  LatencyHistogram H;
  for (uint64_t V : {0ull, 1ull, 5ull, 5ull, 300ull})
    H.record(V);
  MetricsSnapshot Snap = snapshotMetrics();
  Snap.Histograms.push_back(snapshotHistogram("ObsTest.LatencyUs",
                                              "test latency histogram", H));
  std::string Text = metricsToPrometheus(Snap);

  // Line grammar: every non-comment, non-empty line is "name[{labels}]
  // value" with a parseable value.
  std::istringstream Lines(Text);
  std::string Line;
  bool SawCounter = false;
  std::vector<uint64_t> BucketCounts;
  bool SawInf = false, SawSum = false, SawCount = false;
  while (std::getline(Lines, Line)) {
    if (Line.empty() || Line[0] == '#')
      continue;
    size_t Space = Line.rfind(' ');
    ASSERT_NE(Space, std::string::npos) << Line;
    std::string Name = Line.substr(0, Space);
    char *End = nullptr;
    (void)std::strtod(Line.c_str() + Space + 1, &End);
    EXPECT_EQ(*End, '\0') << Line; // The value parses completely.
    ASSERT_FALSE(Name.empty());
    EXPECT_TRUE(std::islower(static_cast<unsigned char>(Name[0]))) << Line;
    for (char C : Name.substr(0, Name.find('{')))
      EXPECT_TRUE(std::islower(static_cast<unsigned char>(C)) ||
                  std::isdigit(static_cast<unsigned char>(C)) || C == '_')
          << Line;
    if (Name.rfind("daisy_obs_test_latency_us_bucket", 0) == 0) {
      BucketCounts.push_back(std::strtoull(Line.c_str() + Space + 1,
                                           nullptr, 10));
      SawInf = SawInf || Name.find("+Inf") != std::string::npos;
    }
    SawSum = SawSum || Name == "daisy_obs_test_latency_us_sum";
    SawCount = SawCount || Name == "daisy_obs_test_latency_us_count";
    if (Name == "daisy_obs_test_prom_grammar") {
      SawCounter = true;
      EXPECT_GE(std::strtoll(Line.c_str() + Space + 1, nullptr, 10), 11);
    }
  }
  EXPECT_TRUE(SawCounter); // The registry rode along.
  EXPECT_TRUE(SawInf);
  EXPECT_TRUE(SawSum);
  EXPECT_TRUE(SawCount);
  // Cumulative and ascending, closing at the total.
  ASSERT_FALSE(BucketCounts.empty());
  EXPECT_TRUE(std::is_sorted(BucketCounts.begin(), BucketCounts.end()));
  EXPECT_EQ(BucketCounts.back(), 5u);
}

TEST(MetricsTest, JsonExpositionParsesBack) {
  LatencyHistogram H;
  H.record(17);
  MetricsSnapshot Snap = snapshotMetrics();
  Snap.Histograms.push_back(snapshotHistogram("ObsTest.JsonUs", "", H));
  std::string Json = metricsToJson(Snap);
  EXPECT_TRUE(JsonValidator(Json).valid()) << Json;
  EXPECT_NE(Json.find("\"ObsTest.JsonUs\""), std::string::npos);
  EXPECT_NE(Json.find("\"counters\""), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Per-stage histograms through the serving runtime
//===----------------------------------------------------------------------===//

TEST(ServeStagesTest, StageSumsMatchEndToEndSojourn) {
  ServerOptions Opts;
  Opts.Workers = 1; // One lane: a real queue forms, waits are non-trivial.
  Opts.MaxBatch = 4;
  Server S(Opts);
  Program Prog = makeGemm("i", "j", "k", 12);
  Kernel K = S.compile(Prog);
  OwnedArgs Args(Prog);
  BoundArgs Bound = K.bind(Args.binding());

  constexpr int N = 48;
  std::vector<std::future<RunStatus>> Futures;
  for (int I = 0; I < N; ++I)
    Futures.push_back(S.submit(K, Bound));
  for (auto &F : Futures)
    EXPECT_TRUE(F.get().ok());
  S.drain();

  // Every completion recorded one sample into each stage histogram.
  EXPECT_EQ(S.latencyCount(), static_cast<uint64_t>(N));
  EXPECT_EQ(S.stageCount(Server::Stage::QueueWait), static_cast<uint64_t>(N));
  EXPECT_EQ(S.stageCount(Server::Stage::BatchWait), static_cast<uint64_t>(N));
  EXPECT_EQ(S.stageCount(Server::Stage::Run), static_cast<uint64_t>(N));

  // The stages partition the sojourn: their sums re-add to the
  // end-to-end sum within bucketing resolution (±12.5% per histogram)
  // plus the per-sample microsecond truncation (up to 3µs per request).
  double StageSum = S.stageSumUs(Server::Stage::QueueWait) +
                    S.stageSumUs(Server::Stage::BatchWait) +
                    S.stageSumUs(Server::Stage::Run);
  double E2ESum = S.latencySumUs();
  EXPECT_GT(E2ESum, 0.0);
  EXPECT_NEAR(StageSum, E2ESum, 0.35 * E2ESum + 4.0 * N);

  // No stage exceeds the whole at the tail.
  double P99 = S.latencyQuantileUs(0.99);
  EXPECT_LE(S.stageQuantileUs(Server::Stage::Run, 0.99), P99 * 1.3 + 4.0);

  // The exposition carries all four latency histograms.
  std::string Text = S.metricsText();
  for (const char *Series :
       {"daisy_serve_latency_us_count", "daisy_serve_queue_wait_us_count",
        "daisy_serve_batch_wait_us_count", "daisy_serve_run_us_count",
        "daisy_serve_queue_depth_count"})
    EXPECT_NE(Text.find(Series), std::string::npos) << Series;
  EXPECT_TRUE(JsonValidator(S.metricsJson()).valid());
}

//===----------------------------------------------------------------------===//
// One capture, three layers
//===----------------------------------------------------------------------===//

TEST(TraceCaptureTest, ServeEngineAndTunerShareOneTrace) {
  TraceRecorder &R = TraceRecorder::instance();
  R.enable(1 << 14);
  R.clear();

  ServerOptions Opts;
  Opts.Workers = 2;
  // Deterministic tuner: no background lane, every run sampled, promote
  // on any measured delta — cycles and probes happen on our schedule.
  Opts.Engine.OnlineTuning.Enable = true;
  Opts.Engine.OnlineTuning.Interval = std::chrono::microseconds(0);
  Opts.Engine.OnlineTuning.SampleEvery = 1;
  Opts.Engine.OnlineTuning.MinSamples = 4;
  Opts.Engine.OnlineTuning.MinGainPct = -1e9;
  {
    Server S(Opts);
    Program Prog = makeGemm("i", "j", "k", 16);
    Kernel K = S.compile(Prog); // Engine span: compile (cache miss).
    (void)S.compile(Prog);      // Engine instant: plan-cache hit.
    // Per-request buffers: two worker lanes run concurrently, so shared
    // output storage would be a real data race.
    std::vector<std::unique_ptr<OwnedArgs>> Owned;
    std::vector<BoundArgs> Bound;
    std::vector<std::future<RunStatus>> Futures;
    for (int I = 0; I < 8; ++I) {
      Owned.push_back(std::make_unique<OwnedArgs>(Prog));
      Bound.push_back(K.bind(Owned.back()->binding()));
      ASSERT_TRUE(Bound.back().ok());
    }
    for (int I = 0; I < 8; ++I)
      Futures.push_back(S.submit(K, Bound[I])); // Serve stage spans.
    for (auto &F : Futures)
      EXPECT_TRUE(F.get().ok());
    S.drain();
    ASSERT_NE(S.shard(0).tuner(), nullptr);
    (void)S.shard(0).tuner()->runCycle(); // Tune cycle span.
    (void)S.shard(0).tuner()->runCycle();
  }
  R.disable();

  std::set<std::string> Names = eventNames(R.snapshot());
  // All three layers landed in the same capture.
  EXPECT_TRUE(Names.count("engine.compile"));
  EXPECT_TRUE(Names.count("engine.plan_cache_hit"));
  EXPECT_TRUE(Names.count("engine.plan_cache_miss"));
  EXPECT_TRUE(Names.count("serve.submit"));
  EXPECT_TRUE(Names.count("serve.request"));
  EXPECT_TRUE(Names.count("serve.queue_wait"));
  EXPECT_TRUE(Names.count("serve.batch_wait"));
  EXPECT_TRUE(Names.count("serve.run"));
  EXPECT_TRUE(Names.count("tune.cycle"));

  // And the export of that capture is loadable Chrome JSON.
  std::ostringstream OS;
  R.exportChromeTrace(OS);
  std::string Json = OS.str();
  EXPECT_TRUE(JsonValidator(Json).valid());
  for (const char *Name : {"serve.run", "engine.compile", "tune.cycle"})
    EXPECT_NE(Json.find(Name), std::string::npos) << Name;
}
