//===- tests/SchedTest.cpp - scheduler stack tests -------------------------==//
//
// Part of the daisy project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "exec/Interpreter.h"
#include "ir/Builder.h"
#include "normalize/Pipeline.h"
#include "sched/Evaluator.h"
#include "sched/FrameworkModels.h"
#include "ir/StructuralHash.h"
#include "sched/Idiom.h"
#include "sched/Schedulers.h"
#include "support/Statistics.h"

#include <gtest/gtest.h>

using namespace daisy;

namespace {

Program makeGemmVariant(const std::string &O1, const std::string &O2,
                        const std::string &O3, int N = 32) {
  Program Prog("gemm");
  Prog.addArray("A", {N, N});
  Prog.addArray("B", {N, N});
  Prog.addArray("C", {N, N});
  Prog.append(forLoop(
      O1, 0, N,
      {forLoop(O2, 0, N,
               {forLoop(O3, 0, N,
                        {assign("S0", "C", {ax("i"), ax("j")},
                                read("C", {ax("i"), ax("j")}) +
                                    lit(1.5) * read("A", {ax("i"), ax("k")}) *
                                        read("B", {ax("k"), ax("j")}))})})}));
  return Prog;
}

Program makeSyrkProgram(int N = 24) {
  Program Prog("syrk");
  Prog.addArray("A", {N, N});
  Prog.addArray("C", {N, N});
  Prog.append(forLoop(
      "i", 0, N,
      {forLoop("j", ac(0), ax("i") + 1,
               {forLoop("k", 0, N,
                        {assign("S0", "C", {ax("i"), ax("j")},
                                read("C", {ax("i"), ax("j")}) +
                                    lit(1.5) * read("A", {ax("i"), ax("k")}) *
                                        read("A", {ax("j"), ax("k")}))})})}));
  return Prog;
}

/// Small evaluation options so search-based tests stay fast.
SimOptions fastOptions() {
  SimOptions Options;
  return Options;
}

SearchBudget tinyBudget() {
  SearchBudget Budget;
  Budget.MctsRollouts = 8;
  Budget.PopulationSize = 3;
  Budget.IterationsPerEpoch = 1;
  Budget.Epochs = 2;
  return Budget;
}

} // namespace

//===----------------------------------------------------------------------===//
// SimCache
//===----------------------------------------------------------------------===//

namespace {

/// gemm with every iterator (loops and subscripts) spelled as given —
/// unlike makeGemmVariant, which only permutes the loop order.
Program makeRenamedGemm(const std::string &I, const std::string &J,
                        const std::string &K, int N) {
  Program Prog("gemm");
  Prog.addArray("A", {N, N});
  Prog.addArray("B", {N, N});
  Prog.addArray("C", {N, N});
  Prog.append(forLoop(
      I, 0, N,
      {forLoop(J, 0, N,
               {forLoop(K, 0, N,
                        {assign("S0", "C", {ax(I), ax(J)},
                                read("C", {ax(I), ax(J)}) +
                                    lit(1.5) * read("A", {ax(I), ax(K)}) *
                                        read("B", {ax(K), ax(J)}))})})}));
  return Prog;
}

} // namespace

TEST(SimCacheTest, HitsOnStructurallyIdenticalNests) {
  // Same nest modulo iterator spelling: the canonicalized hash matches,
  // so the second simulation is served from the cache.
  Program P1 = makeRenamedGemm("i", "j", "k", 16);
  Program P2 = makeRenamedGemm("x", "y", "z", 16);
  ASSERT_TRUE(structurallyEqual(P1.topLevel()[0], P2.topLevel()[0]));
  SimOptions Options;
  resetStatsCounters();
  SimCache Cache;
  double S1 = Cache.seconds(P1, Options);
  double S2 = Cache.seconds(P2, Options);
  EXPECT_EQ(S1, S2);
  EXPECT_EQ(statsCounter("SimCache.Misses"), 1);
  EXPECT_EQ(statsCounter("SimCache.Hits"), 1);
  EXPECT_EQ(Cache.size(), 1u);
}

TEST(SimCacheTest, MissesOnDifferingSimOptions) {
  Program Prog = makeGemmVariant("i", "j", "k", 16);
  SimOptions OneThread;
  SimOptions FourThreads;
  FourThreads.Threads = 4;
  resetStatsCounters();
  SimCache Cache;
  Cache.seconds(Prog, OneThread);
  Cache.seconds(Prog, FourThreads);
  EXPECT_EQ(statsCounter("SimCache.Misses"), 2);
  EXPECT_EQ(statsCounter("SimCache.Hits"), 0);
  EXPECT_EQ(Cache.size(), 2u);
}

TEST(SimCacheTest, MissesOnDifferingMarks) {
  // structuralHash ignores scheduling marks; the cache key must not —
  // a parallel-marked nest simulates to a different runtime.
  Program Plain = makeGemmVariant("i", "j", "k", 16);
  Program Marked = Plain.clone();
  dynCast<Loop>(Marked.topLevel()[0])->setParallel(true);
  ASSERT_EQ(structuralHash(Plain.topLevel()[0]),
            structuralHash(Marked.topLevel()[0]));
  SimOptions Options;
  Options.Threads = 4;
  resetStatsCounters();
  SimCache Cache;
  Cache.seconds(Plain, Options);
  Cache.seconds(Marked, Options);
  EXPECT_EQ(statsCounter("SimCache.Misses"), 2);
  EXPECT_EQ(statsCounter("SimCache.Hits"), 0);
}

TEST(SimCacheTest, CachedValueMatchesUncachedEvaluation) {
  Program Prog = makeGemmVariant("i", "j", "k", 16);
  Recipe R = Recipe::defaultParallelRecipe();
  EvalConfig Cached;
  Cached.NumThreads = 1;
  EvalConfig Uncached;
  Uncached.NumThreads = 1;
  Uncached.EnableCache = false;
  Evaluator WithCache(fastOptions(), Cached);
  Evaluator WithoutCache(fastOptions(), Uncached);
  double First = WithCache.recipeSeconds(Prog, 0, R);
  double Second = WithCache.recipeSeconds(Prog, 0, R); // served from cache
  EXPECT_EQ(First, Second);
  EXPECT_EQ(First, WithoutCache.recipeSeconds(Prog, 0, R));
  EXPECT_EQ(First, evaluateRecipe(R, Prog, 0, fastOptions()));
}

//===----------------------------------------------------------------------===//
// Evaluator batches
//===----------------------------------------------------------------------===//

TEST(EvaluatorTest, BatchMatchesSerialAtEveryThreadCount) {
  Program Prog = makeGemmVariant("j", "k", "i", 16);
  std::vector<Recipe> Recipes;
  Recipes.push_back(Recipe::defaultParallelRecipe());
  Recipes.push_back(Recipe::blasRecipe());
  Rng Rand(3);
  for (int I = 0; I < 6; ++I)
    Recipes.push_back(mutateRecipe(Recipe::defaultParallelRecipe(), 3, Rand));

  std::vector<double> Reference;
  for (const Recipe &R : Recipes)
    Reference.push_back(evaluateRecipe(R, Prog, 0, fastOptions()));

  for (int Threads : {1, 2, 4})
    for (bool Cache : {false, true}) {
      EvalConfig Config;
      Config.NumThreads = Threads;
      Config.EnableCache = Cache;
      Evaluator Eval(fastOptions(), Config);
      std::vector<double> Batch = Eval.recipeSecondsBatch(Prog, 0, Recipes);
      ASSERT_EQ(Batch.size(), Reference.size());
      for (size_t I = 0; I < Batch.size(); ++I)
        EXPECT_EQ(Batch[I], Reference[I])
            << "threads=" << Threads << " cache=" << Cache << " i=" << I;
    }
}

TEST(EvaluatorTest, SharedContextIsNotMutated) {
  Program Prog = makeGemmVariant("i", "j", "k", 16);
  uint64_t Before = structuralHashWithMarks(Prog.topLevel()[0]);
  Evaluator Eval(fastOptions());
  Eval.recipeSeconds(Prog, 0, Recipe::defaultParallelRecipe());
  EXPECT_EQ(structuralHashWithMarks(Prog.topLevel()[0]), Before);
  EXPECT_EQ(Prog.topLevel().size(), 1u);
}

//===----------------------------------------------------------------------===//
// Search determinism matrix
//===----------------------------------------------------------------------===//

namespace {

/// Joined digest of an ordered recipe list.
std::string recipesDigest(const std::vector<Recipe> &Recipes) {
  std::string Result;
  for (const Recipe &R : Recipes)
    Result += R.toString() + "\n";
  return Result;
}

/// Runs \p Body under every (threads, cache) evaluator configuration and
/// expects the digest it returns to be identical everywhere.
template <typename Fn> void expectDeterministicAcrossConfigs(const Fn &Body) {
  std::string Reference;
  for (int Threads : {1, 2, 4})
    for (bool Cache : {false, true}) {
      EvalConfig Config;
      Config.NumThreads = Threads;
      Config.EnableCache = Cache;
      Evaluator Eval(fastOptions(), Config);
      std::string Digest = Body(Eval);
      if (Reference.empty())
        Reference = Digest;
      EXPECT_EQ(Digest, Reference)
          << "diverged at threads=" << Threads << " cache=" << Cache;
    }
}

} // namespace

TEST(SearchDeterminismTest, MctsCandidatesMatrix) {
  Program Prog = makeGemmVariant("j", "k", "i", 16);
  expectDeterministicAcrossConfigs([&](Evaluator &Eval) {
    return recipesDigest(
        mctsCandidates(Prog, 0, Eval, tinyBudget(), /*TopK=*/3));
  });
}

TEST(SearchDeterminismTest, EvolveRecipeMatrix) {
  Program Prog = makeGemmVariant("i", "j", "k", 16);
  expectDeterministicAcrossConfigs([&](Evaluator &Eval) {
    TransferTuningDatabase Db;
    Rng Rand(7);
    return evolveRecipe(Prog, 0, Db, Eval, tinyBudget(), Rand).toString();
  });
}

TEST(SearchDeterminismTest, SeedDatabaseMatrix) {
  // Two-nest program (scale + matmul after normalization stays one nest
  // each); idioms disabled so every nest runs the evolutionary search.
  Program Prog = makeGemmVariant("i", "j", "k", 16);
  DaisyOptions Options;
  Options.Idioms.clear();
  expectDeterministicAcrossConfigs([&](Evaluator &Eval) {
    TransferTuningDatabase Db;
    Rng Rand(7);
    DaisyScheduler::seedDatabase(Db, Prog, Eval, tinyBudget(), Rand,
                                 Options);
    std::string Digest;
    for (const DatabaseEntry &Entry : Db.entries())
      Digest += Entry.Name + "#" + std::to_string(Entry.CanonicalHash) +
                "=" + Entry.Optimization.toString() + "\n";
    return Digest;
  });
}

//===----------------------------------------------------------------------===//
// Embeddings
//===----------------------------------------------------------------------===//

TEST(EmbeddingTest, IdenticalNestsAtDistanceZero) {
  Program P1 = makeGemmVariant("i", "j", "k");
  Program P2 = makeGemmVariant("i", "j", "k");
  PerformanceEmbedding E1 = embedNest(P1.topLevel()[0], P1);
  PerformanceEmbedding E2 = embedNest(P2.topLevel()[0], P2);
  EXPECT_DOUBLE_EQ(E1.distance(E2), 0.0);
}

TEST(EmbeddingTest, DissimilarNestsFarApart) {
  Program Gemm = makeGemmVariant("i", "j", "k");
  Program Stencil("st");
  Stencil.addArray("A", {64});
  Stencil.append(forLoop("i", 1, 63,
                         {assign("S0", "A", {ax("i")},
                                 read("A", {ax("i") - 1}) + lit(1.0))}));
  PerformanceEmbedding EG = embedNest(Gemm.topLevel()[0], Gemm);
  PerformanceEmbedding ES = embedNest(Stencil.topLevel()[0], Stencil);
  EXPECT_GT(EG.distance(ES), 1.0);
}

TEST(EmbeddingTest, PermutationChangesStrideFeatures) {
  Program Good = makeGemmVariant("i", "k", "j");
  Program Bad = makeGemmVariant("j", "k", "i");
  PerformanceEmbedding EGood = embedNest(Good.topLevel()[0], Good);
  PerformanceEmbedding EBad = embedNest(Bad.topLevel()[0], Bad);
  EXPECT_GT(EGood.distance(EBad), 0.0);
}

//===----------------------------------------------------------------------===//
// Idiom detection
//===----------------------------------------------------------------------===//

TEST(IdiomTest, DetectsGemm) {
  Program Prog = makeGemmVariant("i", "j", "k");
  auto Match = detectBlasIdiom(Prog.topLevel()[0], Prog);
  ASSERT_TRUE(Match.has_value());
  EXPECT_EQ(Match->Kind, BlasKind::Gemm);
  EXPECT_EQ(Match->Call->args()[0], "C");
  EXPECT_DOUBLE_EQ(Match->Call->alpha(), 1.5);
}

TEST(IdiomTest, DetectsGemmInAnyLoopOrder) {
  for (auto [O1, O2, O3] :
       {std::tuple{"k", "i", "j"}, {"j", "k", "i"}, {"i", "k", "j"}}) {
    Program Prog = makeGemmVariant(O1, O2, O3);
    EXPECT_TRUE(detectBlasIdiom(Prog.topLevel()[0], Prog).has_value());
  }
}

TEST(IdiomTest, DetectsSyrk) {
  Program Prog = makeSyrkProgram();
  auto Match = detectBlasIdiom(Prog.topLevel()[0], Prog);
  ASSERT_TRUE(Match.has_value());
  EXPECT_EQ(Match->Kind, BlasKind::Syrk);
}

TEST(IdiomTest, DetectsSyr2k) {
  int N = 16;
  Program Prog("syr2k");
  Prog.addArray("A", {N, N});
  Prog.addArray("B", {N, N});
  Prog.addArray("C", {N, N});
  Prog.append(forLoop(
      "i", 0, N,
      {forLoop(
          "j", ac(0), ax("i") + 1,
          {forLoop("k", 0, N,
                   {assign("S0", "C", {ax("i"), ax("j")},
                           read("C", {ax("i"), ax("j")}) +
                               (lit(1.5) * read("A", {ax("i"), ax("k")}) *
                                    read("B", {ax("j"), ax("k")}) +
                                lit(1.5) * read("B", {ax("i"), ax("k")}) *
                                    read("A", {ax("j"), ax("k")})))})})}));
  auto Match = detectBlasIdiom(Prog.topLevel()[0], Prog);
  ASSERT_TRUE(Match.has_value());
  EXPECT_EQ(Match->Kind, BlasKind::Syr2k);
}

TEST(IdiomTest, DetectsGemv) {
  int N = 32;
  Program Prog("gemv");
  Prog.addArray("A", {N, N});
  Prog.addArray("x", {N});
  Prog.addArray("y", {N});
  Prog.append(forLoop(
      "i", 0, N,
      {forLoop("j", 0, N,
               {assign("S0", "y", {ax("i")},
                       read("y", {ax("i")}) +
                           read("A", {ax("i"), ax("j")}) *
                               read("x", {ax("j")}))})}));
  auto Match = detectBlasIdiom(Prog.topLevel()[0], Prog);
  ASSERT_TRUE(Match.has_value());
  EXPECT_EQ(Match->Kind, BlasKind::Gemv);
}

TEST(IdiomTest, RejectsFusedNest) {
  // Two statements in one nest: not a standalone BLAS kernel.
  int N = 16;
  Program Prog("fused");
  Prog.addArray("A", {N, N});
  Prog.addArray("B", {N, N});
  Prog.addArray("C", {N, N});
  Prog.append(forLoop(
      "i", 0, N,
      {forLoop("j", 0, N,
               {assign("S0", "C", {ax("i"), ax("j")},
                       read("C", {ax("i"), ax("j")}) * lit(1.2)),
                forLoop("k", 0, N,
                        {assign("S1", "C", {ax("i"), ax("j")},
                                read("C", {ax("i"), ax("j")}) +
                                    read("A", {ax("i"), ax("k")}) *
                                        read("B", {ax("k"), ax("j")}))})})}));
  EXPECT_FALSE(detectBlasIdiom(Prog.topLevel()[0], Prog).has_value());
}

TEST(IdiomTest, RespectsEnabledSet) {
  Program Prog = makeSyrkProgram();
  EXPECT_FALSE(detectBlasIdiom(Prog.topLevel()[0], Prog,
                               pythonFrameworkOperators())
                   .has_value());
}

TEST(IdiomTest, CallNodeSemanticsMatchLoops) {
  Program Prog = makeGemmVariant("i", "j", "k", 12);
  Program WithCall = Prog.clone();
  auto Match = detectBlasIdiom(WithCall.topLevel()[0], WithCall);
  ASSERT_TRUE(Match.has_value());
  WithCall.topLevel()[0] = Match->Call;
  EXPECT_TRUE(semanticallyEquivalent(Prog, WithCall, 1e-9));
}

//===----------------------------------------------------------------------===//
// Recipes
//===----------------------------------------------------------------------===//

TEST(RecipeTest, ApplyPreservesSemantics) {
  Program Prog = makeGemmVariant("j", "k", "i", 16);
  Recipe R;
  RecipeStep Perm;
  Perm.StepKind = RecipeStep::Kind::Permute;
  Perm.Perm = {2, 1, 0};
  R.Steps.push_back(Perm);
  RecipeStep Tile;
  Tile.StepKind = RecipeStep::Kind::Tile;
  Tile.Tiles = {8, 8, 8};
  R.Steps.push_back(Tile);
  RecipeStep Par;
  Par.StepKind = RecipeStep::Kind::ParallelizeOutermost;
  R.Steps.push_back(Par);
  RecipeStep Vec;
  Vec.StepKind = RecipeStep::Kind::VectorizeInnermost;
  R.Steps.push_back(Vec);

  Program Transformed = Prog.clone();
  Transformed.topLevel()[0] =
      applyRecipe(R, Prog.topLevel()[0], Transformed);
  EXPECT_TRUE(semanticallyEquivalent(Prog, Transformed));
}

TEST(RecipeTest, IllegalPermutationSkipped) {
  Program Prog = makeSyrkProgram(12);
  Recipe R;
  RecipeStep Perm;
  Perm.StepKind = RecipeStep::Kind::Permute;
  Perm.Perm = {1, 0, 2}; // j above i: illegal for the triangular nest
  R.Steps.push_back(Perm);
  Program Transformed = Prog.clone();
  Transformed.topLevel()[0] =
      applyRecipe(R, Prog.topLevel()[0], Transformed);
  EXPECT_TRUE(semanticallyEquivalent(Prog, Transformed));
}

TEST(RecipeTest, ToStringRoundtrip) {
  Recipe R = Recipe::defaultParallelRecipe();
  EXPECT_EQ(R.toString(), "parallel ; vectorize");
}

//===----------------------------------------------------------------------===//
// Database
//===----------------------------------------------------------------------===//

TEST(DatabaseTest, ExactHashWins) {
  TransferTuningDatabase Db;
  Program Prog = makeGemmVariant("i", "j", "k");
  DatabaseEntry Near;
  Near.Name = "near";
  Near.Embedding = embedNest(Prog.topLevel()[0], Prog);
  Db.insert(Near);
  DatabaseEntry Exact;
  Exact.Name = "exact";
  Exact.CanonicalHash = structuralHash(Prog.topLevel()[0]);
  // Give the exact entry a far-away embedding.
  Exact.Embedding.Features[0] = 100.0;
  Db.insert(Exact);
  const DatabaseEntry *Found =
      Db.lookup(embedNest(Prog.topLevel()[0], Prog),
                structuralHash(Prog.topLevel()[0]));
  ASSERT_NE(Found, nullptr);
  EXPECT_EQ(Found->Name, "exact");
}

TEST(DatabaseTest, SnapshotsAreImmutableAndCopiesAreCheap) {
  // The entry vector lives behind a copy-on-write shared_ptr: snapshots
  // and database copies share it in O(1), and insert un-shares before
  // mutating so existing readers keep the exact view they took. This is
  // what bounds the engine's DbMutex critical sections to constant size.
  TransferTuningDatabase Db;
  DatabaseEntry First;
  First.Name = "first";
  Db.insert(First);

  std::shared_ptr<const std::vector<DatabaseEntry>> Snap = Db.snapshot();
  TransferTuningDatabase Copy = Db;
  // Copying shares storage, it does not duplicate it.
  EXPECT_EQ(Copy.snapshot().get(), Snap.get());
  EXPECT_EQ(&Db.entries(), Snap.get());

  DatabaseEntry Second;
  Second.Name = "second";
  Db.insert(Second);
  // The mutated database re-seated its vector; the snapshot and the copy
  // still see exactly one entry.
  EXPECT_EQ(Db.size(), 2u);
  ASSERT_EQ(Snap->size(), 1u);
  EXPECT_EQ((*Snap)[0].Name, "first");
  EXPECT_EQ(Copy.size(), 1u);
  EXPECT_NE(&Db.entries(), Snap.get());

  // The copy is independently mutable (its own un-share).
  Copy.insert(Second);
  EXPECT_EQ(Copy.size(), 2u);
  EXPECT_EQ(Snap->size(), 1u);
}

TEST(DatabaseTest, MaxDistanceRespected) {
  TransferTuningDatabase Db;
  DatabaseEntry Far;
  Far.Embedding.Features[0] = 1000.0;
  Db.insert(Far);
  PerformanceEmbedding Key;
  EXPECT_EQ(Db.lookup(Key, /*CanonicalHash=*/1, /*MaxDistance=*/10.0),
            nullptr);
  EXPECT_NE(Db.lookup(Key, /*CanonicalHash=*/1, /*MaxDistance=*/1e6),
            nullptr);
}

TEST(DatabaseTest, NearestOrdering) {
  TransferTuningDatabase Db;
  for (double D : {5.0, 1.0, 3.0}) {
    DatabaseEntry E;
    E.Name = std::to_string(D);
    E.Embedding.Features[0] = D;
    Db.insert(E);
  }
  PerformanceEmbedding Key;
  auto Nearest = Db.nearest(Key, 2);
  ASSERT_EQ(Nearest.size(), 2u);
  EXPECT_EQ(Nearest[0]->Name, "1.000000");
  EXPECT_EQ(Nearest[1]->Name, "3.000000");
}

//===----------------------------------------------------------------------===//
// Schedulers
//===----------------------------------------------------------------------===//

TEST(SchedulerTest, BaselinesPreserveSemantics) {
  Program Prog = makeGemmVariant("i", "j", "k", 16);
  ClangScheduler Clang;
  IccScheduler Icc;
  PollyScheduler Polly;
  for (Scheduler *S :
       std::initializer_list<Scheduler *>{&Clang, &Icc, &Polly}) {
    auto Result = S->schedule(Prog);
    ASSERT_TRUE(Result.has_value()) << S->name();
    EXPECT_TRUE(semanticallyEquivalent(Prog, *Result)) << S->name();
  }
}

TEST(SchedulerTest, PollyTilesAndParallelizes) {
  Program Prog = makeGemmVariant("i", "j", "k", 64);
  PollyScheduler Polly;
  auto Result = Polly.schedule(Prog);
  ASSERT_TRUE(Result.has_value());
  // Tiling deepened the band; some loop is parallel.
  EXPECT_GT(loopDepth(Result->topLevel()[0]), 3);
  bool AnyParallel = false;
  for (const auto &L : collectLoops(Result->topLevel()[0]))
    AnyParallel |= L->isParallel();
  EXPECT_TRUE(AnyParallel);
}

TEST(SchedulerTest, TiramisuRejectsTriangular) {
  Program Prog = makeSyrkProgram();
  TiramisuScheduler Tiramisu(fastOptions(), tinyBudget());
  EXPECT_FALSE(Tiramisu.schedule(Prog).has_value());
}

TEST(SchedulerTest, TiramisuHandlesRectangularAndPreservesSemantics) {
  Program Prog = makeGemmVariant("j", "k", "i", 16);
  TiramisuScheduler Tiramisu(fastOptions(), tinyBudget());
  auto Result = Tiramisu.schedule(Prog);
  ASSERT_TRUE(Result.has_value());
  EXPECT_TRUE(semanticallyEquivalent(Prog, *Result));
}

TEST(SchedulerTest, DaisyLiftsBlasAfterNormalization) {
  auto Db = std::make_shared<TransferTuningDatabase>();
  DaisyScheduler Daisy(Db);
  Program Prog = makeGemmVariant("k", "j", "i", 16);
  auto Result = Daisy.schedule(Prog);
  ASSERT_TRUE(Result.has_value());
  bool HasCall = false;
  for (const NodePtr &Node : Result->topLevel())
    HasCall |= Node->kind() == NodeKind::Call;
  EXPECT_TRUE(HasCall);
  EXPECT_TRUE(semanticallyEquivalent(Prog, *Result));
}

TEST(SchedulerTest, DaisyWithoutNormalizationMissesBlas) {
  // The B-style composition hides the idiom from direct detection.
  int N = 16;
  Program Prog("fused");
  Prog.addArray("A", {N, N});
  Prog.addArray("B", {N, N});
  Prog.addArray("C", {N, N});
  Prog.append(forLoop(
      "i", 0, N,
      {forLoop("j", 0, N,
               {assign("S0", "C", {ax("i"), ax("j")},
                       read("C", {ax("i"), ax("j")}) * lit(1.2)),
                forLoop("k", 0, N,
                        {assign("S1", "C", {ax("i"), ax("j")},
                                read("C", {ax("i"), ax("j")}) +
                                    read("A", {ax("i"), ax("k")}) *
                                        read("B", {ax("k"), ax("j")}))})})}));
  auto Db = std::make_shared<TransferTuningDatabase>();
  DaisyOptions NoNorm;
  NoNorm.EnableNormalization = false;
  DaisyScheduler DaisyNoNorm(Db, NoNorm);
  auto ResultNoNorm = DaisyNoNorm.schedule(Prog);
  ASSERT_TRUE(ResultNoNorm.has_value());
  bool HasCall = false;
  for (const NodePtr &Node : ResultNoNorm->topLevel())
    HasCall |= Node->kind() == NodeKind::Call;
  EXPECT_FALSE(HasCall);

  DaisyScheduler DaisyNorm(Db);
  auto ResultNorm = DaisyNorm.schedule(Prog);
  ASSERT_TRUE(ResultNorm.has_value());
  HasCall = false;
  for (const NodePtr &Node : ResultNorm->topLevel())
    HasCall |= Node->kind() == NodeKind::Call;
  EXPECT_TRUE(HasCall);
}

TEST(SchedulerTest, DaisyOpaqueFallback) {
  Program Prog = makeGemmVariant("i", "j", "k", 16);
  dynCast<Loop>(Prog.topLevel()[0])->setOpaque(true);
  auto Db = std::make_shared<TransferTuningDatabase>();
  DaisyScheduler Daisy(Db);
  auto Result = Daisy.schedule(Prog);
  ASSERT_TRUE(Result.has_value());
  // Nest is not replaced by a call, and semantics hold.
  EXPECT_EQ(Result->topLevel()[0]->kind(), NodeKind::Loop);
  EXPECT_TRUE(semanticallyEquivalent(Prog, *Result));
}

TEST(SchedulerTest, SeededDatabaseTransfersToBVariant) {
  SimOptions Options = fastOptions();
  SearchBudget Budget = tinyBudget();
  auto Db = std::make_shared<TransferTuningDatabase>();
  Rng Rand(7);
  Program A = makeGemmVariant("i", "j", "k", 16);
  Evaluator Eval(Options);
  DaisyScheduler::seedDatabase(*Db, A, Eval, Budget, Rand);
  EXPECT_GT(Db->size(), 0u);

  DaisyScheduler Daisy(Db);
  Program B = makeGemmVariant("k", "j", "i", 16);
  auto SchedA = Daisy.schedule(A);
  auto SchedB = Daisy.schedule(B);
  ASSERT_TRUE(SchedA.has_value() && SchedB.has_value());
  double TimeA = simulateProgram(*SchedA, Options).Seconds;
  double TimeB = simulateProgram(*SchedB, Options).Seconds;
  // Robustness: A and B runtimes must be near-identical.
  EXPECT_NEAR(TimeA, TimeB, 0.15 * TimeA);
}

TEST(FrameworkModelTest, AllPreserveSemantics) {
  Program Prog = makeGemmVariant("i", "j", "k", 16);
  NumPyScheduler NumPy;
  NumbaScheduler Numba;
  DaCeScheduler DaCe;
  for (Scheduler *S :
       std::initializer_list<Scheduler *>{&NumPy, &Numba, &DaCe}) {
    auto Result = S->schedule(Prog);
    ASSERT_TRUE(Result.has_value()) << S->name();
    EXPECT_TRUE(semanticallyEquivalent(Prog, *Result)) << S->name();
  }
}

TEST(FrameworkModelTest, NumPyDoesNotParallelize) {
  Program Prog("vec");
  int N = 8192; // large enough to pass the parallelization profitability
  Prog.addArray("A", {N});
  Prog.addArray("B", {N});
  Prog.append(forLoop("i", 0, N,
                      {assign("S0", "A", {ax("i")},
                              read("B", {ax("i")}) * lit(2.0))}));
  NumPyScheduler NumPy;
  NumbaScheduler Numba;
  auto RNumPy = NumPy.schedule(Prog);
  auto RNumba = Numba.schedule(Prog);
  auto AnyParallel = [](const Program &P) {
    for (const NodePtr &Node : P.topLevel())
      for (const auto &L : collectLoops(Node))
        if (L->isParallel())
          return true;
    return false;
  };
  EXPECT_FALSE(AnyParallel(*RNumPy));
  EXPECT_TRUE(AnyParallel(*RNumba));
}
