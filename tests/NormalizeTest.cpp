//===- tests/NormalizeTest.cpp - normalization pipeline tests --------------==//
//
// Part of the daisy project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/Legality.h"
#include "analysis/Stride.h"
#include "exec/Interpreter.h"
#include "ir/Builder.h"
#include "ir/StructuralHash.h"
#include "normalize/Pipeline.h"
#include "support/Random.h"
#include "transform/Permute.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace daisy;

namespace {

/// GEMM with a configurable loop order.
Program makeGemmVariant(const std::string &O1, const std::string &O2,
                        const std::string &O3, int N = 8) {
  Program Prog("gemm_" + O1 + O2 + O3);
  Prog.addArray("A", {N, N});
  Prog.addArray("B", {N, N});
  Prog.addArray("C", {N, N});
  NodePtr Inner = assign("S0", "C", {ax("i"), ax("j")},
                         read("C", {ax("i"), ax("j")}) +
                             read("A", {ax("i"), ax("k")}) *
                                 read("B", {ax("k"), ax("j")}));
  Prog.append(forLoop(O1, 0, N,
                      {forLoop(O2, 0, N, {forLoop(O3, 0, N, {Inner})})}));
  return Prog;
}

/// The paper's Fig. 3a: two independent computations with contiguous and
/// strided accesses sharing one loop nest.
Program makeFig3Program(int N = 16) {
  Program Prog("fig3");
  Prog.addArray("A", {N, N});
  Prog.addArray("B", {N, N});
  Prog.append(forLoop(
      "i", 0, N,
      {forLoop(
          "j", 0, N,
          {assign("S1", "A", {ax("i"), ax("j")},
                  read("A", {ax("i"), ax("j")}) + lit(1.0)),
           assign("S2", "B", {ax("j"), ax("i")},
                  read("B", {ax("j"), ax("i")}) * lit(2.0))})}));
  return Prog;
}

} // namespace

TEST(FissionTest, Fig3SplitsIntoTwoNests) {
  Program Prog = makeFig3Program();
  FissionStats Stats = maximalLoopFission(Prog);
  EXPECT_EQ(Prog.topLevel().size(), 2u);
  EXPECT_GE(Stats.LoopsDistributed, 1);
}

TEST(FissionTest, PreservesSemantics) {
  Program Prog = makeFig3Program();
  Program Original = Prog.clone();
  maximalLoopFission(Prog);
  EXPECT_TRUE(semanticallyEquivalent(Original, Prog));
}

TEST(FissionTest, ResultIsAtomic) {
  Program Prog = makeFig3Program();
  maximalLoopFission(Prog);
  // No loop in the result can be distributed further.
  for (const NodePtr &Node : Prog.topLevel())
    for (const auto &L : collectLoops(Node))
      EXPECT_EQ(distributionGroups(*L, Prog.params()).size(), 1u);
}

TEST(FissionTest, Idempotent) {
  Program Prog = makeFig3Program();
  maximalLoopFission(Prog);
  uint64_t After1 = structuralHash(Prog);
  FissionStats Stats2 = maximalLoopFission(Prog);
  EXPECT_EQ(structuralHash(Prog), After1);
  EXPECT_EQ(Stats2.LoopsDistributed, 0);
}

TEST(FissionTest, ScalarChainSplitsWithExpansion) {
  Program Prog("chain");
  Prog.addArray("X", {12});
  Prog.addArray("Y", {12});
  Prog.addArray("t", {}, /*Transient=*/true);
  Prog.append(forLoop(
      "i", 0, 12,
      {assignScalar("S0", "t", read("X", {ax("i")}) * lit(2.0)),
       assign("S1", "Y", {ax("i")}, read("t") + lit(1.0))}));
  Program Original = Prog.clone();
  FissionStats Stats = maximalLoopFission(Prog);
  EXPECT_EQ(Stats.ScalarsExpanded, 1);
  EXPECT_EQ(Prog.topLevel().size(), 2u);
  EXPECT_TRUE(semanticallyEquivalent(Original, Prog));
}

TEST(FissionTest, ReductionStaysTogether) {
  // A true recurrence cannot be split.
  Program Prog("rec");
  Prog.addArray("A", {12});
  Prog.addArray("s", {});
  Prog.append(forLoop(
      "i", 0, 12,
      {assignScalar("S0", "s", read("s") + read("A", {ax("i")})),
       assign("S1", "A", {ax("i")}, read("s"))}));
  maximalLoopFission(Prog);
  EXPECT_EQ(Prog.topLevel().size(), 1u);
}

TEST(FissionTest, OpaqueNestUntouched) {
  Program Prog = makeFig3Program();
  std::static_pointer_cast<Loop>(Prog.topLevel()[0])->setOpaque(true);
  maximalLoopFission(Prog);
  EXPECT_EQ(Prog.topLevel().size(), 1u);
}

TEST(FissionTest, ImperfectNestInnerLoopsFissioned) {
  Program Prog("imp");
  Prog.addArray("A", {8, 8});
  Prog.addArray("B", {8, 8});
  Prog.append(forLoop(
      "i", 0, 8,
      {forLoop("j", 0, 8,
               {assign("S0", "A", {ax("i"), ax("j")}, lit(1.0)),
                assign("S1", "B", {ax("i"), ax("j")}, lit(2.0))})}));
  Program Original = Prog.clone();
  maximalLoopFission(Prog);
  // The outer loop splits as well, yielding two perfect nests.
  EXPECT_EQ(Prog.topLevel().size(), 2u);
  for (const NodePtr &Node : Prog.topLevel())
    EXPECT_EQ(perfectNestBand(Node).size(), 2u);
  EXPECT_TRUE(semanticallyEquivalent(Original, Prog));
}

TEST(StrideMinTest, GemmVariantsConverge) {
  // All six loop orders of GEMM normalize to the same canonical form.
  std::vector<Program> Variants;
  Variants.push_back(makeGemmVariant("i", "j", "k"));
  Variants.push_back(makeGemmVariant("i", "k", "j"));
  Variants.push_back(makeGemmVariant("j", "i", "k"));
  Variants.push_back(makeGemmVariant("j", "k", "i"));
  Variants.push_back(makeGemmVariant("k", "i", "j"));
  Variants.push_back(makeGemmVariant("k", "j", "i"));
  std::vector<uint64_t> Hashes;
  for (Program &Variant : Variants) {
    Program Norm = normalize(Variant);
    Hashes.push_back(structuralHash(Norm));
  }
  for (uint64_t H : Hashes)
    EXPECT_EQ(H, Hashes[0]);
}

TEST(StrideMinTest, PicksMinimalCostPermutation) {
  // Brute-force check on GEMM: the pass must pick a global optimum.
  Program Prog = makeGemmVariant("k", "j", "i");
  Program Norm = normalize(Prog);
  double ChosenCost = sumOfStridesCost(Norm.topLevel()[0], Norm);
  std::vector<std::string> Order = {"i", "j", "k"};
  std::sort(Order.begin(), Order.end());
  do {
    if (!isPermutationLegal(Prog.topLevel()[0], Order, Prog.params()))
      continue;
    NodePtr Candidate = applyPermutation(Prog.topLevel()[0], Order);
    EXPECT_GE(sumOfStridesCost(Candidate, Prog) + 1e-9, ChosenCost);
  } while (std::next_permutation(Order.begin(), Order.end()));
}

TEST(StrideMinTest, PreservesSemantics) {
  Program Prog = makeGemmVariant("k", "j", "i");
  Program Norm = normalize(Prog);
  EXPECT_TRUE(semanticallyEquivalent(Prog, Norm));
}

TEST(StrideMinTest, Fig3FullPipeline) {
  // Fission first, then each nest is permuted for minimal strides: the
  // second nest (B[j][i]) flips to j-outer.
  Program Prog = makeFig3Program();
  Program Norm = normalize(Prog);
  ASSERT_EQ(Norm.topLevel().size(), 2u);
  auto Band2 = perfectNestBand(Norm.topLevel()[1]);
  ASSERT_EQ(Band2.size(), 2u);
  // After normalization the innermost iterator of each nest drives the
  // last array dimension.
  EXPECT_EQ(outOfOrderCount(Norm.topLevel()[0], Norm), 0);
  EXPECT_EQ(outOfOrderCount(Norm.topLevel()[1], Norm), 0);
  EXPECT_TRUE(semanticallyEquivalent(Prog, Norm));
}

TEST(StrideMinTest, OutOfOrderCriterionAlsoCanonicalizes) {
  NormalizationOptions Options;
  Options.StrideMin.UseOutOfOrderCriterion = true;
  Program A = makeGemmVariant("k", "j", "i");
  Program Norm = normalize(A, Options);
  EXPECT_EQ(outOfOrderCount(Norm.topLevel()[0], Norm), 0);
  EXPECT_TRUE(semanticallyEquivalent(A, Norm));
}

TEST(NormalizeTest, Idempotent) {
  Program Prog = makeFig3Program();
  Program Once = normalize(Prog);
  Program Twice = normalize(Once);
  EXPECT_EQ(structuralHash(Once), structuralHash(Twice));
}

TEST(NormalizeTest, StatsReported) {
  NormalizationStats Stats;
  Program Prog = makeFig3Program();
  normalize(Prog, {}, &Stats);
  EXPECT_GE(Stats.Fission.LoopsDistributed, 1);
  EXPECT_GE(Stats.StrideMin.NestsVisited, 2);
  EXPECT_GT(Stats.StrideMin.EnumeratedPermutations, 0);
}

TEST(NormalizeTest, DisableFlagsRespected) {
  Program Prog = makeFig3Program();
  NormalizationOptions NoFission;
  NoFission.EnableFission = false;
  Program OnlyStride = normalize(Prog, NoFission);
  EXPECT_EQ(OnlyStride.topLevel().size(), 1u);

  NormalizationOptions NoStride;
  NoStride.EnableStrideMinimization = false;
  Program OnlyFission = normalize(Prog, NoStride);
  EXPECT_EQ(OnlyFission.topLevel().size(), 2u);
  // Without stride minimization the strided nest keeps its bad order.
  EXPECT_GT(outOfOrderCount(OnlyFission.topLevel()[1], OnlyFission), 0);
}

TEST(NormalizeTest, RandomProgramsPreserveSemantics) {
  // Property: normalization never changes observable results.
  Rng R(0xBEEF);
  for (int Trial = 0; Trial < 15; ++Trial) {
    Program Prog("rand");
    Prog.addArray("A", {8, 8});
    Prog.addArray("B", {8, 8});
    Prog.addArray("C", {8, 8});
    auto randomIndexPair =
        [&R]() -> std::vector<AffineExpr> {
      if (R.nextBool())
        return {ax("i"), ax("j")};
      return {ax("j"), ax("i")};
    };
    std::vector<NodePtr> Stmts;
    int NumStmts = static_cast<int>(R.nextInRange(1, 3));
    const char *Arrays[3] = {"A", "B", "C"};
    for (int S = 0; S < NumStmts; ++S) {
      std::string Dst = Arrays[R.nextBelow(3)];
      std::string Src = Arrays[R.nextBelow(3)];
      std::vector<AffineExpr> WIdx = randomIndexPair();
      Stmts.push_back(assign("S" + std::to_string(S), Dst, WIdx,
                             read(Dst, WIdx) +
                                 read(Src, randomIndexPair()) * lit(0.5)));
    }
    Prog.append(forLoop("i", 0, 8, {forLoop("j", 0, 8, std::move(Stmts))}));
    Program Norm = normalize(Prog);
    EXPECT_TRUE(semanticallyEquivalent(Prog, Norm))
        << "trial " << Trial;
  }
}
