//===- tests/ServeFaultTest.cpp - fault-injection serving tests -----------==//
//
// Part of the daisy project. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The serving runtime's failure contracts, proven under injected faults
// (support/FailPoint via serve/FaultInjector; Debug and TSan builds — the
// whole suite skips itself when DAISY_ENABLE_FAILPOINTS is 0):
//
// - determinism: a fault schedule is a pure function of its seed;
// - the fault matrix — compile-throw, queue-full burst, slow kernel,
//   worker stall, budget exhaustion, watchdog reclaim, each crossed with
//   every scheduler policy (FIFO, priority lanes, EDF, fair share):
//   every submitted future completes with a definite status, the counter
//   invariant Serve.Submitted == Completed + Rejected + Expired holds
//   after drain — globally AND per tenant — and every Completed result
//   is bit-identical to synchronous execution on an unfaulted reference
//   kernel;
// - graceful degradation: a compile that throws serves tree-walk
//   kernels (Engine.CompileFallbacks) whose results are still exact; a
//   forced "engine.budget" charge failure serves resource-exhausted
//   kernels whose requests surface RunStatus::ResourceExhausted, never
//   a throw;
// - poison-kernel quarantine: injected "kernel.run" faults on
//   Engine-compiled kernels heal bit-identically on the tree-walk path;
//   FailureThreshold faults open the per-routing-key circuit breaker
//   (Engine.Quarantined), open-state requests reroute without touching
//   the plan (Engine.QuarantineReroutes), and a half-open probe
//   re-closes the breaker once faults stop; kernels without a breaker
//   (raw Kernel::compile) surface RunStatus::Faulted instead;
// - env arming robustness: armFailPointsFromEnv (the DAISY_FAILPOINTS
//   entry) ignores malformed specs instead of aborting, and its seed
//   text reproduces the exact spec-armed fault schedule.
//
// CI sweeps this binary across seeds via DAISY_FAILPOINTS_SEED and can
// arm extra process-wide sites via DAISY_FAILPOINTS (support/FailPoint
// env arming).
//
//===----------------------------------------------------------------------===//

#include "serve/FaultInjector.h"
#include "serve/Server.h"

#include "ir/Builder.h"
#include "support/Statistics.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <future>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

using namespace daisy;
using namespace daisy::serve;

namespace {

/// GEMM with a chosen loop order (the canonical many-variants program).
Program makeGemm(const std::string &O1, const std::string &O2,
                 const std::string &O3, int N) {
  Program Prog("gemm_" + O1 + O2 + O3);
  Prog.addArray("A", {N, N});
  Prog.addArray("B", {N, N});
  Prog.addArray("C", {N, N});
  Prog.append(forLoop(
      O1, 0, N,
      {forLoop(O2, 0, N,
               {forLoop(O3, 0, N,
                        {assign("S0", "C", {ax("i"), ax("j")},
                                read("C", {ax("i"), ax("j")}) +
                                    read("A", {ax("i"), ax("k")}) *
                                        read("B", {ax("k"), ax("j")}))})})}));
  return Prog;
}

/// Two-nest program with a kernel-managed transient temporary.
Program makeTransientProgram(int N) {
  Program Prog("transient");
  Prog.addArray("In", {N});
  Prog.addArray("Out", {N});
  Prog.addArray("Tmp", {N}, /*Transient=*/true);
  Prog.append(forLoop("i", 0, N,
                      {assign("S0", "Tmp", {ax("i")},
                              read("In", {ax("i")}) * lit(2.0))}));
  Prog.append(forLoop("i", 0, N,
                      {assign("S1", "Out", {ax("i")},
                              read("Tmp", {ax("i")}) + lit(1.0))}));
  return Prog;
}

/// Caller-owned argument storage for one request, initialized like a
/// deterministic DataEnv so results are comparable across paths.
struct OwnedArgs {
  std::vector<std::pair<std::string, std::vector<double>>> Buffers;

  explicit OwnedArgs(const Program &Prog, uint64_t Seed = 1) {
    DataEnv Env(Prog);
    Env.initDeterministic(Seed);
    for (const ArrayDecl &Decl : Prog.arrays())
      if (!Decl.Transient)
        Buffers.emplace_back(Decl.Name, Env.buffer(Decl.Name));
  }

  ArgBinding binding() {
    ArgBinding Args;
    for (auto &[Name, Storage] : Buffers)
      Args.bind(Name, Storage);
    return Args;
  }
};

constexpr uint64_t DefaultSeed = 0xDA15Eull;

//===----------------------------------------------------------------------===//
// The fault matrix
//===----------------------------------------------------------------------===//

/// Runs one fault scenario against one scheduler policy: a two-thread
/// submit storm of two kernels with mixed priorities, deadlines, retry
/// budgets, and three tenants, under the armed spec. Asserts the failure
/// contracts, including the per-tenant drain invariant. \p BudgetBytes
/// configures the engine memory budget — every scenario runs with one by
/// default so budget accounting is exercised (and CI's env-armed
/// "engine.budget" site has a target) across the whole matrix, with the
/// peak-never-exceeds-budget bound asserted after drain. \p StallTimeout
/// arms the worker watchdog (0 = off).
void runFaultScenario(
    const std::string &Spec, const std::string &Site, SchedulerPolicy Policy,
    size_t BudgetBytes = size_t(64) << 20,
    std::chrono::microseconds StallTimeout = std::chrono::microseconds(0)) {
  SCOPED_TRACE("spec '" + Spec + "'");
  resetStatsCounters();
  uint64_t Seed = FaultInjector::seedFromEnv(DefaultSeed);

  Program SmallProg = makeGemm("i", "j", "k", 10);
  Program OtherProg = makeTransientProgram(48);

  // Ground truth bypasses the Engine and is computed before arming, so
  // no fault site can degrade the reference itself.
  Kernel RefSmall = Kernel::compile(SmallProg);
  Kernel RefOther = Kernel::compile(OtherProg);
  OwnedArgs ExpSmall(SmallProg, 5), ExpOther(OtherProg, 5);
  ASSERT_TRUE(RefSmall.run(ExpSmall.binding()));
  ASSERT_TRUE(RefOther.run(ExpOther.binding()));

  FaultInjector Inj(Spec, Seed);

  ServerOptions Options;
  Options.Shards = 1;
  Options.Workers = 2;
  Options.QueueCapacity = 8;
  Options.Policy = BackpressurePolicy::Reject;
  Options.Scheduling = Policy;
  Options.MaxBatch = 4;
  Options.StallTimeout = StallTimeout;
  Options.Engine.MemoryBudgetBytes = BudgetBytes;
  Server S(Options);
  // Server-side compiles run with the scenario armed: under the
  // compile-throw spec these fall back to tree-walk kernels, and the
  // bit-identity assertion below then proves the degraded path exact.
  std::vector<Kernel> Kernels{S.compile(SmallProg), S.compile(OtherProg)};
  std::vector<const Program *> Progs{&SmallProg, &OtherProg};
  std::vector<OwnedArgs *> Expected{&ExpSmall, &ExpOther};

  constexpr int Threads = 2;
  constexpr int Reps = 15;
  struct Pending {
    std::unique_ptr<OwnedArgs> Args;
    std::future<RunStatus> Done;
    size_t Kind = 0;
  };
  std::vector<std::vector<Pending>> All(Threads);
  std::vector<std::thread> Submitters;
  for (int T = 0; T < Threads; ++T)
    Submitters.emplace_back([&, T] {
      for (int R = 0; R < Reps; ++R) {
        Pending P;
        P.Kind = static_cast<size_t>((T + R) % 2);
        P.Args = std::make_unique<OwnedArgs>(*Progs[P.Kind], 5);
        SubmitOptions SO;
        SO.Prio = static_cast<Priority>(R % 3);
        SO.Tenant = static_cast<uint32_t>(R % 3);
        if (R % 3 == 0)
          SO.Timeout = std::chrono::milliseconds(2);
        if (R % 4 == 1) {
          SO.MaxRetries = 3;
          SO.Backoff = std::chrono::microseconds(100);
        }
        P.Done = S.submit(Kernels[P.Kind],
                          Kernels[P.Kind].bind(P.Args->binding()), SO);
        All[T].push_back(std::move(P));
      }
    });
  for (std::thread &W : Submitters)
    W.join();
  S.drain();

  // Every future has a definite status; completed work is exact.
  int64_t Ok = 0, Failed = 0;
  for (auto &PerThread : All)
    for (Pending &P : PerThread) {
      ASSERT_EQ(P.Done.wait_for(std::chrono::seconds(0)),
                std::future_status::ready)
          << "a submitted future has no status after drain()";
      RunStatus Status = P.Done.get();
      switch (Status.Why) {
      case RunStatus::Ok:
        EXPECT_TRUE(Status.ok());
        EXPECT_EQ(P.Args->Buffers, Expected[P.Kind]->Buffers)
            << "completed request diverged from synchronous execution";
        ++Ok;
        break;
      case RunStatus::Overloaded:
      case RunStatus::ShutDown:
      case RunStatus::Expired:
      case RunStatus::ResourceExhausted:
      case RunStatus::Faulted:
        EXPECT_FALSE(Status.ok());
        ++Failed;
        break;
      case RunStatus::BindError:
        ADD_FAILURE() << "unexpected bind error: " << Status.Error;
        ++Failed;
        break;
      case RunStatus::NumKinds_:
        ADD_FAILURE() << "sentinel kind reached a future";
        break;
      }
    }
  EXPECT_EQ(Ok + Failed, int64_t(Threads) * Reps);

  // The counter invariant, and the fault actually fired.
  EXPECT_EQ(statsCounter("Serve.Submitted"), int64_t(Threads) * Reps);
  EXPECT_EQ(statsCounter("Serve.Submitted"),
            statsCounter("Serve.Completed") + statsCounter("Serve.Rejected") +
                statsCounter("Serve.Expired"));
  // The same invariant per tenant: each tenant's flood accounts for its
  // own outcomes (Reps spread evenly over tenants 0..2 per thread).
  for (int Tenant = 0; Tenant < 3; ++Tenant) {
    std::string Prefix = "Serve.Tenant" + std::to_string(Tenant) + ".";
    EXPECT_EQ(statsCounter(Prefix + "Submitted"),
              int64_t(Threads) * (Reps / 3))
        << "tenant " << Tenant;
    EXPECT_EQ(statsCounter(Prefix + "Submitted"),
              statsCounter(Prefix + "Completed") +
                  statsCounter(Prefix + "Rejected") +
                  statsCounter(Prefix + "Expired"))
        << "tenant " << Tenant;
  }
  // The budget byte counter never exceeded its bound at any instant —
  // MemoryBudget::tryCharge's CAS contract, observed through the peak.
  for (size_t I = 0; I < S.shardCount(); ++I) {
    EXPECT_LE(S.shard(I).memoryBytesPeak(), BudgetBytes) << "shard " << I;
    EXPECT_LE(S.shard(I).memoryBytesUsed(), S.shard(I).memoryBytesPeak())
        << "shard " << I;
  }
  // An env-armed scenario (DAISY_FAILPOINTS) can legitimately starve
  // this scenario's own site — e.g. an armed "engine.budget" can deny
  // both server-side compile charges, leaving every request
  // ResourceExhausted before "kernel.run" is ever evaluated. The
  // structural invariants above must hold regardless; only the
  // fired-at-all check is scoped to self-armed runs.
  if (!std::getenv("DAISY_FAILPOINTS")) {
    EXPECT_GT(Inj.fireCount(Site), 0u) << "scenario never fired " << Site;
  }
}

const SchedulerPolicy AllPolicies[] = {
    SchedulerPolicy::Fifo, SchedulerPolicy::PriorityLane,
    SchedulerPolicy::EarliestDeadlineFirst, SchedulerPolicy::FairShare};

} // namespace

#define DAISY_REQUIRE_FAILPOINTS()                                             \
  if (!FaultInjector::enabled())                                               \
  GTEST_SKIP() << "DAISY_ENABLE_FAILPOINTS is 0 in this build"

TEST(ServeFaultTest, CompileThrowFallsBackAndStaysExact) {
  DAISY_REQUIRE_FAILPOINTS();
  for (SchedulerPolicy Policy : AllPolicies) {
    // x2: exactly the two server-side compiles throw; the per-request
    // path never re-compiles.
    runFaultScenario("engine.compile=throw@1.0x2", "engine.compile", Policy);
    EXPECT_GE(statsCounter("Engine.CompileFallbacks"), 2);
  }
}

TEST(ServeFaultTest, QueueFullBurstRejectsOrRetriesEveryRequest) {
  DAISY_REQUIRE_FAILPOINTS();
  for (SchedulerPolicy Policy : AllPolicies)
    runFaultScenario("serve.queue.push=trigger@0.4", "serve.queue.push",
                     Policy);
}

TEST(ServeFaultTest, SlowKernelKeepsStatusesDefinite) {
  DAISY_REQUIRE_FAILPOINTS();
  for (SchedulerPolicy Policy : AllPolicies)
    runFaultScenario("kernel.run=delay:1500@0.3", "kernel.run", Policy);
}

TEST(ServeFaultTest, WorkerStallShedsDeadlinesNotInvariants) {
  DAISY_REQUIRE_FAILPOINTS();
  for (SchedulerPolicy Policy : AllPolicies)
    runFaultScenario("serve.worker=delay:3000@0.8", "serve.worker", Policy);
}

TEST(ServeFaultTest, BudgetExhaustionSurfacesStatusesNotThrows) {
  DAISY_REQUIRE_FAILPOINTS();
  for (SchedulerPolicy Policy : AllPolicies) {
    // x1: exactly the first server-side compile is denied its budget
    // charge, so one kernel serves ResourceExhausted while the other
    // serves real (bit-identical) results — the mixed-fleet case.
    runFaultScenario("engine.budget=trigger@1.0x1", "engine.budget", Policy,
                     /*BudgetBytes=*/size_t(64) << 20);
    EXPECT_GE(statsCounter("Engine.ResourceExhausted"), 1);
  }
}

TEST(ServeFaultTest, WatchdogReclaimsStalledLanesAndKeepsInvariants) {
  DAISY_REQUIRE_FAILPOINTS();
  for (SchedulerPolicy Policy : AllPolicies) {
    // Stalls (4ms) dwarf the watchdog timeout (1ms): stalled claims are
    // reclaimed and requeued onto the surviving lane, and every future
    // still resolves — served exactly, or shed as its deadline lapses.
    runFaultScenario("serve.worker=delay:4000@0.6", "serve.worker", Policy,
                     /*BudgetBytes=*/size_t(64) << 20,
                     /*StallTimeout=*/std::chrono::milliseconds(1));
    EXPECT_GE(statsCounter("Serve.WorkerStalls"), 1);
  }
}

//===----------------------------------------------------------------------===//
// Poison-kernel quarantine
//===----------------------------------------------------------------------===//

TEST(ServeFaultTest, RunFaultsHealBitIdenticalAcrossPolicies) {
  DAISY_REQUIRE_FAILPOINTS();
  for (SchedulerPolicy Policy : AllPolicies) {
    // Half of all prepared runs fault. Every fault on an Engine-compiled
    // kernel heals on the tree-walk reference path — the matrix already
    // asserted every Ok result is bit-identical, so here the heal
    // counters prove the faults really happened and were all healed.
    runFaultScenario("kernel.run=trigger@0.5", "kernel.run", Policy);
    if (!std::getenv("DAISY_FAILPOINTS")) {
      EXPECT_GE(statsCounter("Engine.RunFaults"), 1);
      EXPECT_EQ(statsCounter("Engine.RunFaults"),
                statsCounter("Engine.FaultHeals"));
    }
  }
}

TEST(ServeFaultTest, QuarantineOpensReroutesThenProbeRecloses) {
  DAISY_REQUIRE_FAILPOINTS();
  resetStatsCounters();
  uint64_t Seed = FaultInjector::seedFromEnv(DefaultSeed);

  Program Prog = makeGemm("i", "j", "k", 10);
  Kernel Ref = Kernel::compile(Prog);
  OwnedArgs Expected(Prog, 5);
  ASSERT_TRUE(Ref.run(Expected.binding()));

  ServerOptions Options;
  Options.Workers = 1;
  // The cooldown must outlast the submit loop below so the open state is
  // observed as reroutes, not as premature half-open probes.
  Options.Engine.Quarantine.FailureThreshold = 3;
  Options.Engine.Quarantine.Cooldown = std::chrono::milliseconds(250);
  Server S(Options);
  Kernel K = S.compile(Prog);

  {
    // Every prepared run faults: the breaker must open within
    // FailureThreshold failures, and every result — healed or rerouted —
    // stays Ok and bit-identical.
    FaultInjector Inj("kernel.run=trigger@1.0", Seed);
    for (int I = 0; I < 6; ++I) {
      OwnedArgs Args(Prog, 5);
      RunStatus Status = S.submit(K, K.bind(Args.binding())).get();
      EXPECT_TRUE(Status.ok()) << Status.Error;
      EXPECT_EQ(Args.Buffers, Expected.Buffers);
    }
    EXPECT_GE(statsCounter("Engine.RunFaults"), 3);
    EXPECT_GE(statsCounter("Engine.Quarantined"), 1);
    EXPECT_GE(statsCounter("Engine.QuarantineReroutes"), 1);
    EXPECT_EQ(S.shard(0).quarantinedCount(), 1u);
    HealthSnapshot Sick = S.health();
    EXPECT_EQ(Sick.Quarantined, 1u);
    EXPECT_FALSE(Sick.healthy());
  } // faults stop (injector disarms its site)

  // Past the cooldown, the half-open probe runs the real plan again,
  // succeeds, and re-closes the breaker.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  for (int I = 0; I < 3 && S.shard(0).quarantinedCount() != 0; ++I) {
    OwnedArgs Args(Prog, 5);
    EXPECT_TRUE(S.submit(K, K.bind(Args.binding())).get().ok());
    EXPECT_EQ(Args.Buffers, Expected.Buffers);
  }
  EXPECT_EQ(S.shard(0).quarantinedCount(), 0u);
  EXPECT_GE(statsCounter("Engine.QuarantineProbes"), 1);
  EXPECT_TRUE(S.health().healthy());

  S.drain();
  EXPECT_EQ(statsCounter("Serve.Submitted"),
            statsCounter("Serve.Completed") + statsCounter("Serve.Rejected") +
                statsCounter("Serve.Expired"));
}

TEST(ServeFaultTest, ForcedQuarantineReroutesImmediately) {
  DAISY_REQUIRE_FAILPOINTS();
  resetStatsCounters();
  uint64_t Seed = FaultInjector::seedFromEnv(DefaultSeed);

  Program Prog = makeGemm("i", "j", "k", 10);
  Kernel Ref = Kernel::compile(Prog);
  OwnedArgs Expected(Prog, 5);
  ASSERT_TRUE(Ref.run(Expected.binding()));

  ServerOptions Options;
  Options.Workers = 1;
  Server S(Options);
  Kernel K = S.compile(Prog);

  // "engine.quarantine" slams the closed breaker open with no real
  // faults at all: the very request that fired it reroutes to the
  // tree-walker and still completes bit-identically.
  FaultInjector Inj("engine.quarantine=trigger@1.0x1", Seed);
  OwnedArgs Args(Prog, 5);
  EXPECT_TRUE(S.submit(K, K.bind(Args.binding())).get().ok());
  EXPECT_EQ(Args.Buffers, Expected.Buffers);
  EXPECT_EQ(Inj.fireCount("engine.quarantine"), 1u);
  EXPECT_GE(statsCounter("Engine.Quarantined"), 1);
  EXPECT_GE(statsCounter("Engine.QuarantineReroutes"), 1);
  EXPECT_EQ(statsCounter("Engine.RunFaults"), 0);
  EXPECT_EQ(S.shard(0).quarantinedCount(), 1u);
  S.drain();
}

TEST(ServeFaultTest, RawKernelWithoutBreakerSurfacesFaulted) {
  DAISY_REQUIRE_FAILPOINTS();
  Program Prog = makeGemm("i", "j", "k", 8);
  Kernel K = Kernel::compile(Prog);
  OwnedArgs Args(Prog);

  FaultInjector Inj(FaultInjector::seedFromEnv(DefaultSeed));
  FailPointConfig Config;
  Config.MaxFires = 1;
  Inj.arm("kernel.run", Config);
  RunStatus Status = K.run(Args.binding());
  EXPECT_EQ(Status.Why, RunStatus::Faulted);
  EXPECT_FALSE(Status.ok());
  EXPECT_NE(Status.Error.find("kernel.run"), std::string::npos);
  // The site disarmed itself after its single fire: the same kernel
  // runs clean — a fault is a status, never a poisoned handle.
  EXPECT_TRUE(K.run(Args.binding()).ok());
}

//===----------------------------------------------------------------------===//
// FailPoint mechanics
//===----------------------------------------------------------------------===//

TEST(FailPointTest, SeededStreamsAreReproducible) {
  DAISY_REQUIRE_FAILPOINTS();
  auto pattern = [](uint64_t Seed) {
    FaultInjector Inj(Seed);
    FailPointConfig Config;
    Config.Probability = 0.5;
    Inj.arm("test.det", Config);
    std::vector<char> Fired;
    for (int I = 0; I < 64; ++I)
      Fired.push_back(DAISY_FAILPOINT("test.det") ? 1 : 0);
    return Fired;
  };
  EXPECT_EQ(pattern(7), pattern(7));
  EXPECT_NE(pattern(7), pattern(8));
}

TEST(FailPointTest, MaxFiresDisarmsTheSite) {
  DAISY_REQUIRE_FAILPOINTS();
  FaultInjector Inj(3);
  FailPointConfig Config;
  Config.MaxFires = 2;
  Inj.arm("test.cap", Config);
  int Fires = 0;
  for (int I = 0; I < 10; ++I)
    Fires += DAISY_FAILPOINT("test.cap") ? 1 : 0;
  EXPECT_EQ(Fires, 2);
  EXPECT_EQ(Inj.fireCount("test.cap"), 2u);
}

TEST(FailPointTest, ThrowActionThrows) {
  DAISY_REQUIRE_FAILPOINTS();
  FaultInjector Inj(3);
  FailPointConfig Config;
  Config.Action = FailAction::Throw;
  Inj.arm("test.throw", Config);
  EXPECT_THROW((void)DAISY_FAILPOINT("test.throw"), std::runtime_error);
}

TEST(FailPointTest, UnarmedSitesAreFree) {
  DAISY_REQUIRE_FAILPOINTS();
  EXPECT_FALSE(DAISY_FAILPOINT("test.never.armed"));
  EXPECT_EQ(failPointFireCount("test.never.armed"), 0u);
}

TEST(FailPointTest, SpecGrammarParsesAndRejects) {
  DAISY_REQUIRE_FAILPOINTS();
  {
    FaultInjector Inj("a.site=trigger@0.5;b.site=delay:100@0.25x3;"
                      "c.site=throw",
                      1);
    EXPECT_FALSE(DAISY_FAILPOINT("unrelated.site"));
  }
  // Scenario teardown disarmed everything it armed.
  EXPECT_THROW((void)armFailPointsFromSpec("nonsense", 1),
               std::invalid_argument);
  EXPECT_THROW((void)armFailPointsFromSpec("x=explode", 1),
               std::invalid_argument);
  disarmAllFailPoints();
}

TEST(FailPointTest, EnvArmingIsANoOpOnNullOrEmpty) {
  DAISY_REQUIRE_FAILPOINTS();
  EXPECT_EQ(armFailPointsFromEnv(nullptr, nullptr), 0u);
  EXPECT_EQ(armFailPointsFromEnv("", nullptr), 0u);
  EXPECT_EQ(armFailPointsFromEnv("", "123"), 0u);
}

TEST(FailPointTest, EnvArmingIgnoresMalformedSpecsInsteadOfAborting) {
  DAISY_REQUIRE_FAILPOINTS();
  // A malformed DAISY_FAILPOINTS must never take down the process it was
  // meant to observe: warned (stderr) and ignored, not thrown.
  EXPECT_EQ(armFailPointsFromEnv("nonsense", nullptr), 0u);
  EXPECT_EQ(armFailPointsFromEnv("x=explode", nullptr), 0u);
  // Sites armed before the malformed entry stay armed.
  EXPECT_EQ(armFailPointsFromEnv("env.early=trigger@1.0;broken", nullptr),
            0u);
  EXPECT_TRUE(DAISY_FAILPOINT("env.early"));
  disarmAllFailPoints();
}

TEST(FailPointTest, EnvSeedTextRoundTripsTheFaultSchedule) {
  DAISY_REQUIRE_FAILPOINTS();
  auto pattern = [](const char *SeedText) {
    disarmAllFailPoints();
    EXPECT_EQ(armFailPointsFromEnv("env.seeded=trigger@0.5", SeedText), 1u);
    std::vector<char> Fired;
    for (int I = 0; I < 64; ++I)
      Fired.push_back(DAISY_FAILPOINT("env.seeded") ? 1 : 0);
    return Fired;
  };
  // The decimal seed text selects the stream, reproducibly.
  EXPECT_EQ(pattern("7"), pattern("7"));
  EXPECT_NE(pattern("7"), pattern("8"));
  // Null seed text draws the documented default stream (0xDA15E), the
  // same one spec arming under that seed draws.
  std::vector<char> Defaulted = pattern(nullptr);
  disarmAllFailPoints();
  ASSERT_EQ(armFailPointsFromSpec("env.seeded=trigger@0.5", DefaultSeed), 1u);
  std::vector<char> Spec;
  for (int I = 0; I < 64; ++I)
    Spec.push_back(DAISY_FAILPOINT("env.seeded") ? 1 : 0);
  EXPECT_EQ(Defaulted, Spec);
  disarmAllFailPoints();
}
