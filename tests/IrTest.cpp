//===- tests/IrTest.cpp - IR library unit tests ----------------------------==//
//
// Part of the daisy project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Builder.h"
#include "ir/Printer.h"
#include "ir/Program.h"
#include "ir/StructuralHash.h"
#include "ir/Validate.h"

#include <gtest/gtest.h>

using namespace daisy;

namespace {

/// Canonical GEMM nest used across several tests.
NodePtr makeGemmNest(const std::string &I = "i", const std::string &J = "j",
                     const std::string &K = "k") {
  return forLoop(I, 0, 8,
                 {forLoop(J, 0, 8,
                          {forLoop(K, 0, 8,
                                   {assign("S0", "C", {ax(I), ax(J)},
                                           read("C", {ax(I), ax(J)}) +
                                               read("A", {ax(I), ax(K)}) *
                                                   read("B", {ax(K),
                                                              ax(J)}))})})});
}

Program makeGemmProgram() {
  Program Prog("gemm");
  Prog.addArray("A", {8, 8});
  Prog.addArray("B", {8, 8});
  Prog.addArray("C", {8, 8});
  Prog.append(makeGemmNest());
  return Prog;
}

} // namespace

TEST(AffineExprTest, ConstantArithmetic) {
  AffineExpr E = AffineExpr::constant(3) + AffineExpr::constant(4);
  EXPECT_TRUE(E.isConstant());
  EXPECT_EQ(E.constantTerm(), 7);
  EXPECT_EQ(E.evaluate({}), 7);
}

TEST(AffineExprTest, TermArithmetic) {
  AffineExpr E = ax("i") * 2 + ax("j") - ax("i");
  EXPECT_EQ(E.coefficient("i"), 1);
  EXPECT_EQ(E.coefficient("j"), 1);
  EXPECT_EQ(E.coefficient("k"), 0);
  EXPECT_EQ(E.evaluate({{"i", 3}, {"j", 5}}), 8);
}

TEST(AffineExprTest, CancellationRemovesTerm) {
  AffineExpr E = ax("i") - ax("i");
  EXPECT_TRUE(E.isConstant());
  EXPECT_FALSE(E.references("i"));
}

TEST(AffineExprTest, Substitution) {
  // i -> 4*it + ii  (tiling-style substitution)
  AffineExpr E = ax("i") * 3 + ax("j") + 1;
  AffineExpr Sub = ax("it") * 4 + ax("ii");
  AffineExpr Result = E.substituted("i", Sub);
  EXPECT_EQ(Result.coefficient("it"), 12);
  EXPECT_EQ(Result.coefficient("ii"), 3);
  EXPECT_EQ(Result.coefficient("j"), 1);
  EXPECT_EQ(Result.constantTerm(), 1);
}

TEST(AffineExprTest, Rename) {
  AffineExpr E = ax("i") + ax("j");
  AffineExpr Renamed = E.renamed("i", "x");
  EXPECT_EQ(Renamed.coefficient("x"), 1);
  EXPECT_EQ(Renamed.coefficient("i"), 0);
  EXPECT_EQ(Renamed.coefficient("j"), 1);
}

TEST(AffineExprTest, ToString) {
  EXPECT_EQ(AffineExpr::constant(0).toString(), "0");
  EXPECT_EQ((ax("i") * 2 + 1).toString(), "2*i + 1");
  EXPECT_EQ((ax("i") - ax("j")).toString(), "i - j");
}

TEST(ExprTest, CollectReads) {
  ExprPtr E = read("A", {ax("i")}) * read("B", {ax("j")}) + lit(2.0);
  std::vector<ArrayAccess> Reads = collectReads(E);
  ASSERT_EQ(Reads.size(), 2u);
  EXPECT_EQ(Reads[0].Array, "A");
  EXPECT_EQ(Reads[1].Array, "B");
}

TEST(ExprTest, CountFlops) {
  ExprPtr E = read("A", {ax("i")}) * read("B", {ax("j")}) + lit(2.0);
  EXPECT_EQ(countFlops(E), 2);
  ExprPtr F = eexp(E);
  EXPECT_EQ(countFlops(F), 3);
}

TEST(ExprTest, SubstituteVarInReads) {
  ExprPtr E = read("A", {ax("i") + 1});
  ExprPtr Substituted = substituteVar(E, "i", ax("x") * 2);
  ASSERT_EQ(Substituted->kind(), ExprKind::Read);
  EXPECT_EQ(Substituted->access().Indices[0].coefficient("x"), 2);
  EXPECT_EQ(Substituted->access().Indices[0].constantTerm(), 1);
}

TEST(ExprTest, SubstituteIterValue) {
  ExprPtr E = Expr::makeIter("i");
  ExprPtr Renamed = substituteVar(E, "i", ax("j"));
  ASSERT_EQ(Renamed->kind(), ExprKind::Iter);
  EXPECT_EQ(Renamed->name(), "j");
}

TEST(ExprTest, RetargetArrayAddsIndices) {
  ExprPtr E = read("s", {}) + lit(1.0);
  ExprPtr Retargeted = retargetArray(E, "s", "s_exp", {ax("i")});
  std::vector<ArrayAccess> Reads = collectReads(Retargeted);
  ASSERT_EQ(Reads.size(), 1u);
  EXPECT_EQ(Reads[0].Array, "s_exp");
  ASSERT_EQ(Reads[0].Indices.size(), 1u);
  EXPECT_TRUE(Reads[0].Indices[0].references("i"));
}

TEST(ExprTest, EqualityExact) {
  ExprPtr A = read("A", {ax("i")}) + lit(1.0);
  ExprPtr B = read("A", {ax("i")}) + lit(1.0);
  ExprPtr C = read("A", {ax("j")}) + lit(1.0);
  EXPECT_TRUE(exprEquals(A, B));
  EXPECT_FALSE(exprEquals(A, C));
}

TEST(NodeTest, TripCount) {
  auto L = std::make_shared<Loop>("i", ac(0), ac(10),
                                  std::vector<NodePtr>{}, 1);
  EXPECT_EQ(L->tripCount(), 10);
  auto L3 = std::make_shared<Loop>("i", ac(0), ac(10),
                                   std::vector<NodePtr>{}, 3);
  EXPECT_EQ(L3->tripCount(), 4);
  auto Empty = std::make_shared<Loop>("i", ac(5), ac(5),
                                      std::vector<NodePtr>{}, 1);
  EXPECT_EQ(Empty->tripCount(), 0);
}

TEST(NodeTest, TripCountWithParams) {
  auto L = std::make_shared<Loop>("i", ac(0), ax("N"),
                                  std::vector<NodePtr>{}, 1);
  EXPECT_EQ(L->tripCount({{"N", 32}}), 32);
}

TEST(NodeTest, CloneIsDeep) {
  NodePtr Nest = makeGemmNest();
  NodePtr Copy = Nest->clone();
  auto *Outer = dynCast<Loop>(Copy);
  ASSERT_NE(Outer, nullptr);
  Outer->setIterator("z");
  EXPECT_EQ(dynCast<Loop>(Nest)->iterator(), "i");
  // Nested bodies are distinct objects.
  EXPECT_NE(dynCast<Loop>(Nest)->body()[0].get(),
            Outer->body()[0].get());
}

TEST(NodeTest, CollectComputationsOrder) {
  NodePtr Nest = forLoop(
      "i", 0, 4,
      {assign("S0", "x", {ax("i")}, lit(0.0)),
       forLoop("j", 0, 4, {assign("S1", "y", {ax("j")}, lit(1.0))}),
       assign("S2", "z", {ax("i")}, lit(2.0))});
  auto Comps = collectComputations(Nest);
  ASSERT_EQ(Comps.size(), 3u);
  EXPECT_EQ(Comps[0]->name(), "S0");
  EXPECT_EQ(Comps[1]->name(), "S1");
  EXPECT_EQ(Comps[2]->name(), "S2");
}

TEST(NodeTest, LoopDepth) {
  EXPECT_EQ(loopDepth(makeGemmNest()), 3);
  EXPECT_EQ(loopDepth(assignScalar("S", "s", lit(0.0))), 0);
}

TEST(NodeTest, CallNodeFlops) {
  CallNode Gemm(BlasKind::Gemm, {"C", "A", "B"}, {4, 5, 6});
  EXPECT_EQ(Gemm.flops(), 2 * 4 * 5 * 6);
  CallNode Gemv(BlasKind::Gemv, {"y", "A", "x"}, {4, 5});
  EXPECT_EQ(Gemv.flops(), 2 * 4 * 5);
}

TEST(ProgramTest, ArrayDeclQueries) {
  Program Prog = makeGemmProgram();
  EXPECT_EQ(Prog.array("A").elementCount(), 64);
  EXPECT_EQ(Prog.array("A").dimStride(0), 8);
  EXPECT_EQ(Prog.array("A").dimStride(1), 1);
  EXPECT_EQ(Prog.findArray("missing"), nullptr);
}

TEST(ProgramTest, TotalFlopsRectangular) {
  Program Prog = makeGemmProgram();
  // 8^3 iterations * 2 flops (one add, one mul).
  EXPECT_EQ(Prog.totalFlops(), 8 * 8 * 8 * 2);
}

TEST(ProgramTest, CloneIndependence) {
  Program Prog = makeGemmProgram();
  Program Copy = Prog.clone();
  dynCast<Loop>(Copy.topLevel()[0])->setIterator("z");
  EXPECT_EQ(dynCast<Loop>(Prog.topLevel()[0])->iterator(), "i");
}

TEST(ProgramTest, FreshArrayName) {
  Program Prog = makeGemmProgram();
  EXPECT_EQ(Prog.freshArrayName("T"), "T");
  EXPECT_EQ(Prog.freshArrayName("A"), "A_0");
}

TEST(StructuralHashTest, RenamingInvariance) {
  NodePtr A = makeGemmNest("i", "j", "k");
  NodePtr B = makeGemmNest("x", "y", "z");
  EXPECT_EQ(structuralHash(A), structuralHash(B));
  EXPECT_TRUE(structurallyEqual(A, B));
}

TEST(StructuralHashTest, PermutationChangesHash) {
  // Same iterators, but loop order differs (k outermost): different nest.
  NodePtr A = makeGemmNest();
  NodePtr B = forLoop(
      "k", 0, 8,
      {forLoop("i", 0, 8,
               {forLoop("j", 0, 8,
                        {assign("S0", "C", {ax("i"), ax("j")},
                                read("C", {ax("i"), ax("j")}) +
                                    read("A", {ax("i"), ax("k")}) *
                                        read("B", {ax("k"), ax("j")}))})})});
  EXPECT_NE(structuralHash(A), structuralHash(B));
  EXPECT_FALSE(structurallyEqual(A, B));
}

TEST(StructuralHashTest, ComputationNameIgnored) {
  NodePtr A = assign("S0", "x", {ax("i")}, lit(1.0));
  NodePtr B = assign("S99", "x", {ax("i")}, lit(1.0));
  // Both are outside any loop; wrap to give "i" a binding.
  NodePtr LA = forLoop("i", 0, 4, {A});
  NodePtr LB = forLoop("i", 0, 4, {B});
  EXPECT_EQ(structuralHash(LA), structuralHash(LB));
  EXPECT_TRUE(structurallyEqual(LA, LB));
}

TEST(StructuralHashTest, BoundsMatter) {
  NodePtr A = forLoop("i", 0, 4, {assign("S", "x", {ax("i")}, lit(1.0))});
  NodePtr B = forLoop("i", 0, 8, {assign("S", "x", {ax("i")}, lit(1.0))});
  EXPECT_NE(structuralHash(A), structuralHash(B));
  EXPECT_FALSE(structurallyEqual(A, B));
}

TEST(ValidateTest, AcceptsWellFormed) {
  Program Prog = makeGemmProgram();
  EXPECT_TRUE(isValid(Prog));
}

TEST(ValidateTest, RejectsUndeclaredArray) {
  Program Prog = makeGemmProgram();
  Prog.append(forLoop("m", 0, 4,
                      {assign("S9", "UNDECLARED", {ax("m")}, lit(0.0))}));
  auto Problems = validateProgram(Prog);
  ASSERT_FALSE(Problems.empty());
  EXPECT_NE(Problems[0].find("UNDECLARED"), std::string::npos);
}

TEST(ValidateTest, RejectsOutOfScopeIterator) {
  Program Prog("bad");
  Prog.addArray("x", {4});
  Prog.append(forLoop("i", 0, 4, {assign("S", "x", {ax("q")}, lit(0.0))}));
  EXPECT_FALSE(isValid(Prog));
}

TEST(ValidateTest, RejectsRankMismatch) {
  Program Prog("bad");
  Prog.addArray("x", {4, 4});
  Prog.append(forLoop("i", 0, 4, {assign("S", "x", {ax("i")}, lit(0.0))}));
  EXPECT_FALSE(isValid(Prog));
}

TEST(PrinterTest, RendersLoopNest) {
  std::string Text = printNode(makeGemmNest());
  EXPECT_NE(Text.find("for (i = 0; i < 8; i += 1) {"), std::string::npos);
  EXPECT_NE(Text.find("C[i][j] = (C[i][j] + (A[i][k] * B[k][j]));"),
            std::string::npos);
}

TEST(PrinterTest, RendersProgramArrays) {
  Program Prog = makeGemmProgram();
  std::string Text = printProgram(Prog);
  EXPECT_NE(Text.find("double A[8][8];"), std::string::npos);
}
