//===- tests/ThreadPoolTest.cpp - pool and chunk partitioning tests -------==//
//
// Part of the daisy project. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Units for the fork-join thread pool (exec/ThreadPool.h) and the loop
// range partitioner the parallel execution backend chunks with
// (exec/ExecPlan.h chunkLoopRange).
//
//===----------------------------------------------------------------------===//

#include "exec/ExecPlan.h"
#include "exec/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <vector>

using namespace daisy;

//===----------------------------------------------------------------------===//
// chunkLoopRange
//===----------------------------------------------------------------------===//

namespace {

/// Expands a chunk list back into the concrete iteration values.
std::vector<int64_t> iterationsOf(
    const std::vector<std::pair<int64_t, int64_t>> &Chunks, int64_t Step) {
  std::vector<int64_t> Result;
  for (const auto &[Lo, Hi] : Chunks)
    for (int64_t I = Lo; I < Hi; I += Step)
      Result.push_back(I);
  return Result;
}

std::vector<int64_t> referenceIterations(int64_t Lo, int64_t Hi,
                                         int64_t Step) {
  std::vector<int64_t> Result;
  for (int64_t I = Lo; I < Hi; I += Step)
    Result.push_back(I);
  return Result;
}

} // namespace

TEST(ChunkLoopRangeTest, EmptyRangeYieldsNoChunks) {
  EXPECT_TRUE(chunkLoopRange(0, 0, 1, 4).empty());
  EXPECT_TRUE(chunkLoopRange(5, 5, 1, 4).empty());
  EXPECT_TRUE(chunkLoopRange(7, 3, 1, 4).empty());
  EXPECT_TRUE(chunkLoopRange(0, 100, 1, 0).empty());
}

TEST(ChunkLoopRangeTest, RangeSmallerThanChunkCount) {
  // 3 iterations over 8 requested chunks: one chunk per iteration.
  auto Chunks = chunkLoopRange(0, 3, 1, 8);
  ASSERT_EQ(Chunks.size(), 3u);
  for (size_t C = 0; C < Chunks.size(); ++C) {
    EXPECT_EQ(Chunks[C].first, static_cast<int64_t>(C));
    EXPECT_EQ(Chunks[C].second, static_cast<int64_t>(C) + 1);
  }
}

TEST(ChunkLoopRangeTest, CoversExactlyAndInOrder) {
  for (int MaxChunks : {1, 2, 3, 4, 7}) {
    auto Chunks = chunkLoopRange(2, 19, 1, MaxChunks);
    EXPECT_LE(Chunks.size(), static_cast<size_t>(MaxChunks));
    EXPECT_EQ(iterationsOf(Chunks, 1), referenceIterations(2, 19, 1));
    // Contiguous, non-empty, ordered.
    for (size_t C = 0; C < Chunks.size(); ++C) {
      EXPECT_LT(Chunks[C].first, Chunks[C].second);
      if (C + 1 < Chunks.size()) {
        EXPECT_EQ(Chunks[C].second, Chunks[C + 1].first);
      }
    }
  }
}

TEST(ChunkLoopRangeTest, NonUnitStepsStayAligned) {
  // Iterations {1, 4, 7, 10, 13}: chunk boundaries must land on the step
  // grid so no iteration is lost or duplicated and none shifts phase.
  for (int MaxChunks : {1, 2, 3, 4, 5, 9}) {
    auto Chunks = chunkLoopRange(1, 15, 3, MaxChunks);
    EXPECT_EQ(iterationsOf(Chunks, 3), referenceIterations(1, 15, 3))
        << "MaxChunks=" << MaxChunks;
    for (const auto &[Lo, Hi] : Chunks)
      EXPECT_EQ((Lo - 1) % 3, 0);
  }
}

TEST(ChunkLoopRangeTest, BalancedSplit) {
  auto Chunks = chunkLoopRange(0, 10, 1, 3);
  ASSERT_EQ(Chunks.size(), 3u);
  // 10 iterations over 3 chunks: sizes 3 or 4.
  for (const auto &[Lo, Hi] : Chunks) {
    EXPECT_GE(Hi - Lo, 3);
    EXPECT_LE(Hi - Lo, 4);
  }
}

//===----------------------------------------------------------------------===//
// ThreadPool
//===----------------------------------------------------------------------===//

TEST(ThreadPoolTest, RunsEveryTaskExactlyOnce) {
  ThreadPool Pool(4);
  EXPECT_EQ(Pool.concurrency(), 4);
  constexpr int Tasks = 100;
  std::vector<std::atomic<int>> Ran(Tasks);
  for (auto &Counter : Ran)
    Counter.store(0); // C++17 atomics default-construct uninitialized
  Pool.run(Tasks, [&](int I) { Ran[static_cast<size_t>(I)]++; });
  for (int I = 0; I < Tasks; ++I)
    EXPECT_EQ(Ran[static_cast<size_t>(I)].load(), 1) << "task " << I;
}

TEST(ThreadPoolTest, BlocksUntilAllTasksComplete) {
  ThreadPool Pool(3);
  std::atomic<int> Sum{0};
  Pool.run(37, [&](int I) { Sum += I; });
  EXPECT_EQ(Sum.load(), 37 * 36 / 2);
}

TEST(ThreadPoolTest, ReusableAcrossJobs) {
  ThreadPool Pool(2);
  for (int Round = 0; Round < 50; ++Round) {
    std::atomic<int> Count{0};
    Pool.run(8, [&](int) { Count++; });
    EXPECT_EQ(Count.load(), 8);
  }
}

TEST(ThreadPoolTest, NestedRunDegradesToSerialWithoutDeadlock) {
  ThreadPool Pool(4);
  std::atomic<int> Inner{0};
  Pool.run(4, [&](int) {
    // A task forking again must not deadlock; it runs inline.
    ThreadPool::global().run(5, [&](int) { Inner++; });
  });
  EXPECT_EQ(Inner.load(), 20);
}

TEST(ThreadPoolTest, SingleThreadPoolRunsInline) {
  ThreadPool Pool(1);
  EXPECT_EQ(Pool.concurrency(), 1);
  std::vector<int> Order;
  Pool.run(4, [&](int I) { Order.push_back(I); });
  EXPECT_EQ(Order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(ThreadPoolTest, DefaultThreadCountIsPositive) {
  EXPECT_GE(ThreadPool::defaultThreadCount(), 1);
  EXPECT_GE(ThreadPool::global().concurrency(), 2);
}
