//===- tests/AnalysisTest.cpp - analysis library unit tests ----------------==//
//
// Part of the daisy project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/Dataflow.h"
#include "analysis/Dependence.h"
#include "analysis/Legality.h"
#include "analysis/Stride.h"
#include "ir/Builder.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

using namespace daisy;

namespace {

NodePtr makeGemmNest(int N = 6) {
  return forLoop(
      "i", 0, N,
      {forLoop("j", 0, N,
               {forLoop("k", 0, N,
                        {assign("S0", "C", {ax("i"), ax("j")},
                                read("C", {ax("i"), ax("j")}) +
                                    read("A", {ax("i"), ax("k")}) *
                                        read("B", {ax("k"), ax("j")}))})})});
}

Program makeGemmProgram(int N = 6) {
  Program Prog("gemm");
  Prog.addArray("A", {N, N});
  Prog.addArray("B", {N, N});
  Prog.addArray("C", {N, N});
  Prog.append(makeGemmNest(N));
  return Prog;
}

/// Ground truth: a dynamic access trace of one statement instance.
struct InstanceAccess {
  const Computation *Comp;
  std::string Array;
  std::vector<int64_t> Element;
  std::vector<int64_t> CommonIters; // values of enclosing iterators
  bool IsWrite;
  int64_t Time;
  int64_t Instance; // dynamic instance id; a computation is atomic
};

void traceNode(const NodePtr &Node, ValueEnv &Env,
               std::vector<std::vector<int64_t>> &IterStack,
               int64_t &Clock, std::vector<InstanceAccess> &Out) {
  if (const auto *C = dynCast<Computation>(Node)) {
    auto Record = [&](const ArrayAccess &Access, bool IsWrite,
                      int64_t Time) {
      InstanceAccess IA;
      IA.Comp = C;
      IA.Array = Access.Array;
      for (const AffineExpr &Index : Access.Indices)
        IA.Element.push_back(Index.evaluate(Env));
      IA.CommonIters = IterStack.back();
      IA.IsWrite = IsWrite;
      IA.Time = Time;
      IA.Instance = Clock / 2;
      Out.push_back(std::move(IA));
    };
    // Reads happen before the write within an instance.
    for (const ArrayAccess &R : C->reads())
      Record(R, false, Clock);
    Record(C->write(), true, Clock + 1);
    Clock += 2;
    return;
  }
  const auto *L = dynCast<Loop>(Node);
  ASSERT_NE(L, nullptr);
  int64_t Lo = L->lower().evaluate(Env);
  int64_t Hi = L->upper().evaluate(Env);
  for (int64_t I = Lo; I < Hi; I += L->step()) {
    Env[L->iterator()] = I;
    IterStack.back().push_back(I);
    std::vector<int64_t> Saved = IterStack.back();
    for (const NodePtr &Child : L->body()) {
      IterStack.back() = Saved;
      traceNode(Child, Env, IterStack, Clock, Out);
    }
    IterStack.back().pop_back();
  }
  Env.erase(L->iterator());
}

/// Checks that every dynamically observed dependence in \p Root is covered
/// by the static analysis: for each conflicting instance pair, a reported
/// dependence with the same endpoints and the exact direction vector of
/// the pair must exist.
void expectDependencesSound(const NodePtr &Root, const ValueEnv &Params) {
  std::vector<InstanceAccess> Trace;
  ValueEnv Env = Params;
  std::vector<std::vector<int64_t>> IterStack(1);
  int64_t Clock = 0;
  traceNode(Root, Env, IterStack, Clock, Trace);

  std::vector<Dependence> Deps = computeDependences(Root, Params);
  // Index reported dependences: (Src, Dst, dirstring) set.
  std::set<std::string> Reported;
  for (const Dependence &Dep : Deps) {
    std::string Key = Dep.Src->name() + "->" + Dep.Dst->name() + ":";
    for (DepDirection Dir : Dep.Directions)
      Key += Dir == DepDirection::Eq ? '=' : (Dir == DepDirection::Lt ? '<'
                                                                      : '>');
    Reported.insert(Key);
  }

  // Common loop count per statement pair comes from the static paths.
  std::map<const Computation *, std::vector<std::shared_ptr<Loop>>> Paths;
  for (const StmtInfo &S : collectStatements(Root))
    Paths[S.Comp.get()] = S.Path;

  for (const InstanceAccess &A : Trace) {
    for (const InstanceAccess &B : Trace) {
      if (A.Time >= B.Time)
        continue;
      // A computation is atomic: ordering within one dynamic instance is
      // not a dependence between instances.
      if (A.Instance == B.Instance)
        continue;
      if (!A.IsWrite && !B.IsWrite)
        continue;
      if (A.Array != B.Array || A.Element != B.Element)
        continue;
      size_t NumCommon =
          commonLoops(Paths.at(A.Comp), Paths.at(B.Comp)).size();
      std::string Key = A.Comp->name() + "->" + B.Comp->name() + ":";
      for (size_t L = 0; L < NumCommon; ++L) {
        int64_t VA = A.CommonIters[L];
        int64_t VB = B.CommonIters[L];
        Key += VA == VB ? '=' : (VA < VB ? '<' : '>');
      }
      EXPECT_TRUE(Reported.count(Key))
          << "missed dependence " << Key << " on " << A.Array;
      if (!Reported.count(Key))
        return; // avoid flooding the log
    }
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// Dependence analysis
//===----------------------------------------------------------------------===//

TEST(DependenceTest, GemmReductionCarriedByK) {
  Program Prog = makeGemmProgram();
  std::vector<Dependence> Deps =
      computeDependences(Prog.topLevel()[0], Prog.params());
  ASSERT_FALSE(Deps.empty());
  // Every dependence is a self-dependence on C carried by k (level 2).
  for (const Dependence &Dep : Deps) {
    EXPECT_EQ(Dep.Array, "C");
    EXPECT_EQ(Dep.Src, Dep.Dst);
    int Level = Dep.carrierLevel();
    ASSERT_GE(Level, 0);
    EXPECT_EQ(Dep.CommonLoops[static_cast<size_t>(Level)]->iterator(), "k");
  }
}

TEST(DependenceTest, IndependentLoopsHaveNoDependences) {
  Program Prog("indep");
  Prog.addArray("A", {8});
  Prog.addArray("B", {8});
  Prog.append(forLoop("i", 0, 8,
                      {assign("S0", "A", {ax("i")}, lit(1.0)),
                       assign("S1", "B", {ax("i")}, lit(2.0))}));
  EXPECT_TRUE(computeDependences(Prog.topLevel()[0], {}).empty());
}

TEST(DependenceTest, StencilFlowAcrossIterations) {
  // A[i] = A[i-1] + 1 : flow carried with direction <.
  Program Prog("scan");
  Prog.addArray("A", {8});
  Prog.append(forLoop("i", 1, 8,
                      {assign("S0", "A", {ax("i")},
                              read("A", {ax("i") - 1}) + lit(1.0))}));
  std::vector<Dependence> Deps =
      computeDependences(Prog.topLevel()[0], {});
  bool FoundCarriedFlow = false;
  for (const Dependence &Dep : Deps)
    if (Dep.Kind == DepKind::Flow && Dep.carrierLevel() == 0)
      FoundCarriedFlow = true;
  EXPECT_TRUE(FoundCarriedFlow);
}

TEST(DependenceTest, DisjointOffsetsIndependent) {
  // A[2i] = A[2i+1] never aliases (GCD-style disjointness).
  Program Prog("gcd");
  Prog.addArray("A", {32});
  Prog.append(forLoop("i", 0, 8,
                      {assign("S0", "A", {ax("i") * 2},
                              read("A", {ax("i") * 2 + 1}))}));
  EXPECT_TRUE(computeDependences(Prog.topLevel()[0], {}).empty());
}

TEST(DependenceTest, CrossNestFlow) {
  Program Prog("chain");
  Prog.addArray("A", {8});
  Prog.addArray("B", {8});
  Prog.append(forLoop("i", 0, 8, {assign("S0", "A", {ax("i")}, lit(1.0))}));
  Prog.append(forLoop("j", 0, 8,
                      {assign("S1", "B", {ax("j")},
                              read("A", {ax("j")}))}));
  std::vector<Dependence> Deps =
      computeDependences(Prog.topLevel(), Prog.params());
  ASSERT_EQ(Deps.size(), 1u);
  EXPECT_EQ(Deps[0].Kind, DepKind::Flow);
  EXPECT_TRUE(Deps[0].CommonLoops.empty());
  EXPECT_TRUE(Deps[0].isLoopIndependent());
}

TEST(DependenceTest, ScalarSerializesLoop) {
  // s = s + A[i] : scalar reduction, carried flow/anti/output.
  Program Prog("red");
  Prog.addArray("A", {8});
  Prog.addArray("s", {});
  Prog.append(forLoop("i", 0, 8,
                      {assignScalar("S0", "s",
                                    read("s") + read("A", {ax("i")}))}));
  std::vector<Dependence> Deps = computeDependences(Prog.topLevel()[0], {});
  bool Carried = false;
  for (const Dependence &Dep : Deps)
    Carried |= Dep.carrierLevel() == 0;
  EXPECT_TRUE(Carried);
}

TEST(DependenceTest, SoundOnGemm) {
  Program Prog = makeGemmProgram(4);
  expectDependencesSound(Prog.topLevel()[0], Prog.params());
}

TEST(DependenceTest, SoundOnImperfectNest) {
  Program Prog("imperfect");
  Prog.addArray("A", {6, 6});
  Prog.addArray("x", {6});
  Prog.append(forLoop(
      "i", 0, 6,
      {assign("S0", "x", {ax("i")}, lit(0.0)),
       forLoop("j", 0, 6,
               {assign("S1", "x", {ax("i")},
                       read("x", {ax("i")}) +
                           read("A", {ax("i"), ax("j")}))})}));
  expectDependencesSound(Prog.topLevel()[0], Prog.params());
}

TEST(DependenceTest, SoundOnTriangularNest) {
  Program Prog("tri");
  Prog.addArray("C", {6, 6});
  Prog.append(forLoop(
      "i", 0, 6,
      {forLoop("j", ac(0), ax("i") + 1,
               {assign("S0", "C", {ax("i"), ax("j")},
                       read("C", {ax("i"), ax("j")}) + lit(1.0))})}));
  expectDependencesSound(Prog.topLevel()[0], Prog.params());
}

TEST(DependenceTest, SoundOnRandomPrograms) {
  // Property test: random 2-3 deep nests with random affine subscripts.
  Rng R(0xDA15Eull);
  for (int Trial = 0; Trial < 25; ++Trial) {
    Program Prog("rand");
    Prog.addArray("A", {10, 10});
    Prog.addArray("B", {10, 10});
    auto randomIndex = [&R](const std::string &I,
                            const std::string &J) -> AffineExpr {
      switch (R.nextBelow(6)) {
      case 0:
        return ax(I);
      case 1:
        return ax(J);
      case 2:
        return ax(I) + static_cast<int64_t>(R.nextInRange(-1, 1));
      case 3:
        return ax(J) + static_cast<int64_t>(R.nextInRange(-1, 1));
      case 4:
        return ax(I) * 2;
      default:
        return ac(R.nextInRange(0, 4));
      }
    };
    auto randomAccess = [&](const std::string &I, const std::string &J) {
      std::string Array = R.nextBool() ? "A" : "B";
      return read(Array, {randomIndex(I, J), randomIndex(I, J)});
    };
    std::vector<NodePtr> Stmts;
    int NumStmts = static_cast<int>(R.nextInRange(1, 3));
    for (int S = 0; S < NumStmts; ++S) {
      std::string Array = R.nextBool() ? "A" : "B";
      Stmts.push_back(assign("S" + std::to_string(S), Array,
                             {randomIndex("i", "j"), randomIndex("i", "j")},
                             randomAccess("i", "j") +
                                 randomAccess("i", "j")));
    }
    // Subscripts stay within bounds for i, j in [1, 4].
    Prog.append(forLoop("i", 1, 5, {forLoop("j", 1, 5, std::move(Stmts))}));
    expectDependencesSound(Prog.topLevel()[0], Prog.params());
  }
}

//===----------------------------------------------------------------------===//
// Legality
//===----------------------------------------------------------------------===//

TEST(LegalityTest, PerfectNestBand) {
  NodePtr Nest = makeGemmNest();
  auto Band = perfectNestBand(Nest);
  ASSERT_EQ(Band.size(), 3u);
  EXPECT_EQ(Band[0]->iterator(), "i");
  EXPECT_EQ(Band[2]->iterator(), "k");
}

TEST(LegalityTest, GemmAllPermutationsLegal) {
  Program Prog = makeGemmProgram();
  const NodePtr &Nest = Prog.topLevel()[0];
  std::vector<std::vector<std::string>> Orders = {
      {"i", "j", "k"}, {"i", "k", "j"}, {"j", "i", "k"},
      {"j", "k", "i"}, {"k", "i", "j"}, {"k", "j", "i"}};
  for (const auto &Order : Orders)
    EXPECT_TRUE(isPermutationLegal(Nest, Order, Prog.params()))
        << Order[0] << Order[1] << Order[2];
}

TEST(LegalityTest, InterchangeIllegalForAntidiagonalStencil) {
  // A[i+1][j-1] = A[i][j] has direction (<,>): interchange flips it to
  // (>,<), which is lexicographically negative -> illegal.
  Program Prog("skew");
  Prog.addArray("A", {10, 10});
  Prog.append(
      forLoop("i", 0, 8,
              {forLoop("j", 1, 9,
                       {assign("S0", "A", {ax("i") + 1, ax("j") - 1},
                               read("A", {ax("i"), ax("j")}))})}));
  const NodePtr &Nest = Prog.topLevel()[0];
  EXPECT_TRUE(isPermutationLegal(Nest, {"i", "j"}, Prog.params()));
  EXPECT_FALSE(isPermutationLegal(Nest, {"j", "i"}, Prog.params()));
}

TEST(LegalityTest, TriangularPermutationRejected) {
  // j's bounds depend on i: j cannot move above i.
  Program Prog("tri");
  Prog.addArray("C", {8, 8});
  Prog.append(forLoop(
      "i", 0, 8,
      {forLoop("j", ac(0), ax("i") + 1,
               {assign("S0", "C", {ax("i"), ax("j")}, lit(1.0))})}));
  EXPECT_FALSE(
      isPermutationLegal(Prog.topLevel()[0], {"j", "i"}, Prog.params()));
}

TEST(LegalityTest, ParallelizableLoopsGemm) {
  Program Prog = makeGemmProgram();
  const NodePtr &Nest = Prog.topLevel()[0];
  auto Parallel = parallelizableLoops(Nest, Prog.params());
  auto Band = perfectNestBand(Nest);
  EXPECT_TRUE(Parallel.count(Band[0].get()));  // i
  EXPECT_TRUE(Parallel.count(Band[1].get()));  // j
  EXPECT_FALSE(Parallel.count(Band[2].get())); // k (reduction)
}

TEST(LegalityTest, ReductionLoopDetected) {
  Program Prog = makeGemmProgram();
  const NodePtr &Nest = Prog.topLevel()[0];
  auto Band = perfectNestBand(Nest);
  EXPECT_TRUE(isReductionLoop(Nest, Band[2].get(), Prog.params()));
  EXPECT_FALSE(isReductionLoop(Nest, Band[0].get(), Prog.params()));
}

TEST(LegalityTest, NonReductionCarriedLoop) {
  Program Prog("scan");
  Prog.addArray("A", {8});
  Prog.append(forLoop("i", 1, 8,
                      {assign("S0", "A", {ax("i")},
                              read("A", {ax("i") - 1}) + lit(1.0))}));
  auto Band = perfectNestBand(Prog.topLevel()[0]);
  EXPECT_FALSE(
      isReductionLoop(Prog.topLevel()[0], Band[0].get(), Prog.params()));
}

TEST(LegalityTest, DistributionSplitsIndependent) {
  Program Prog("indep");
  Prog.addArray("A", {8});
  Prog.addArray("B", {8});
  auto L = std::make_shared<Loop>(
      "i", ac(0), ac(8),
      std::vector<NodePtr>{assign("S0", "A", {ax("i")}, lit(1.0)),
                           assign("S1", "B", {ax("i")}, lit(2.0))},
      1);
  auto Groups = distributionGroups(*L, Prog.params());
  ASSERT_EQ(Groups.size(), 2u);
  EXPECT_EQ(Groups[0], std::vector<size_t>{0});
  EXPECT_EQ(Groups[1], std::vector<size_t>{1});
}

TEST(LegalityTest, DistributionSplitsForwardFlow) {
  // S0 produces A[i], S1 consumes A[i]: forward flow allows distribution.
  Program Prog("chain");
  Prog.addArray("A", {8});
  Prog.addArray("B", {8});
  auto L = std::make_shared<Loop>(
      "i", ac(0), ac(8),
      std::vector<NodePtr>{
          assign("S0", "A", {ax("i")}, lit(1.0)),
          assign("S1", "B", {ax("i")}, read("A", {ax("i")}))},
      1);
  auto Groups = distributionGroups(*L, Prog.params());
  ASSERT_EQ(Groups.size(), 2u);
}

TEST(LegalityTest, DistributionKeepsBackwardDependenceTogether) {
  // S1 reads A[i+1] which S0 writes at a later iteration: anti S1 -> S0
  // backward edge creates a cycle with the forward S0 -> S1 edge.
  Program Prog("cycle");
  Prog.addArray("A", {10});
  Prog.addArray("B", {10});
  auto L = std::make_shared<Loop>(
      "i", ac(0), ac(8),
      std::vector<NodePtr>{
          assign("S0", "A", {ax("i")}, read("B", {ax("i")})),
          assign("S1", "B", {ax("i")}, read("A", {ax("i") + 1}))},
      1);
  auto Groups = distributionGroups(*L, Prog.params());
  ASSERT_EQ(Groups.size(), 1u);
  EXPECT_EQ(Groups[0].size(), 2u);
}

TEST(LegalityTest, FusionLegalElementwise) {
  Program Prog("fuse");
  Prog.addArray("A", {8});
  Prog.addArray("B", {8});
  auto L1 = std::make_shared<Loop>(
      "i", ac(0), ac(8),
      std::vector<NodePtr>{assign("S0", "A", {ax("i")}, lit(1.0))}, 1);
  auto L2 = std::make_shared<Loop>(
      "j", ac(0), ac(8),
      std::vector<NodePtr>{
          assign("S1", "B", {ax("j")}, read("A", {ax("j")}))},
      1);
  EXPECT_TRUE(canFuseLoops(L1, L2, Prog.params()));
}

TEST(LegalityTest, FusionIllegalForwardPeek) {
  // Second loop reads A[j+1]: at fused iteration j it would read a value
  // the first loop has not written yet.
  Program Prog("fuse");
  Prog.addArray("A", {9});
  Prog.addArray("B", {8});
  auto L1 = std::make_shared<Loop>(
      "i", ac(0), ac(8),
      std::vector<NodePtr>{assign("S0", "A", {ax("i")}, lit(1.0))}, 1);
  auto L2 = std::make_shared<Loop>(
      "j", ac(0), ac(8),
      std::vector<NodePtr>{
          assign("S1", "B", {ax("j")}, read("A", {ax("j") + 1}))},
      1);
  EXPECT_FALSE(canFuseLoops(L1, L2, Prog.params()));
}

TEST(LegalityTest, FusionLegalBackwardPeek) {
  // Reading A[j-1] is fine after fusion: that element was written by the
  // fused loop at an earlier iteration (dependence analysis is index-based
  // and does not concern itself with the j=0 boundary read).
  Program Prog("fuse");
  Prog.addArray("A", {8});
  Prog.addArray("B", {8});
  auto L1 = std::make_shared<Loop>(
      "i", ac(0), ac(8),
      std::vector<NodePtr>{assign("S0", "A", {ax("i")}, lit(1.0))}, 1);
  auto L2 = std::make_shared<Loop>(
      "j", ac(0), ac(8),
      std::vector<NodePtr>{
          assign("S1", "B", {ax("j")}, read("A", {ax("j") - 1}))},
      1);
  EXPECT_TRUE(canFuseLoops(L1, L2, Prog.params()));
}

TEST(LegalityTest, FusionRejectsMismatchedBounds) {
  Program Prog("fuse");
  Prog.addArray("A", {16});
  auto L1 = std::make_shared<Loop>(
      "i", ac(0), ac(8),
      std::vector<NodePtr>{assign("S0", "A", {ax("i")}, lit(1.0))}, 1);
  auto L2 = std::make_shared<Loop>(
      "j", ac(0), ac(16),
      std::vector<NodePtr>{assign("S1", "A", {ax("j")}, lit(2.0))}, 1);
  EXPECT_FALSE(canFuseLoops(L1, L2, Prog.params()));
}

//===----------------------------------------------------------------------===//
// Stride analysis
//===----------------------------------------------------------------------===//

TEST(StrideTest, AccessStrideRowMajor) {
  Program Prog = makeGemmProgram(8);
  ArrayAccess Access{"B", {ax("k"), ax("j")}};
  EXPECT_EQ(accessStride(Access, "k", 1, Prog), 8);
  EXPECT_EQ(accessStride(Access, "j", 1, Prog), 1);
  EXPECT_EQ(accessStride(Access, "i", 1, Prog), 0);
}

TEST(StrideTest, GemmOrderingCosts) {
  // With C[i][j] += A[i][k] * B[k][j] row-major, a j-innermost order has
  // unit stride on B and C; k-innermost strides through B by N.
  int N = 8;
  auto makeOrdered = [N](const std::string &O1, const std::string &O2,
                         const std::string &O3) {
    return forLoop(
        O1, 0, N,
        {forLoop(O2, 0, N,
                 {forLoop(O3, 0, N,
                          {assign("S0", "C", {ax("i"), ax("j")},
                                  read("C", {ax("i"), ax("j")}) +
                                      read("A", {ax("i"), ax("k")}) *
                                          read("B", {ax("k"), ax("j")}))})})});
  };
  Program Prog = makeGemmProgram(N);
  double CostIkj = sumOfStridesCost(makeOrdered("i", "k", "j"), Prog);
  double CostIjk = sumOfStridesCost(makeOrdered("i", "j", "k"), Prog);
  double CostJki = sumOfStridesCost(makeOrdered("j", "k", "i"), Prog);
  EXPECT_LT(CostIkj, CostIjk);
  EXPECT_LT(CostIjk, CostJki);
}

TEST(StrideTest, OutOfOrderCount) {
  Program Prog("ooo");
  Prog.addArray("A", {8, 8});
  // A[j][i] accessed under i-outer, j-inner: dim 0 varies faster -> 1
  // inverted pair + innermost-not-last penalty.
  NodePtr Bad = forLoop(
      "i", 0, 8,
      {forLoop("j", 0, 8,
               {assign("S0", "A", {ax("j"), ax("i")}, lit(1.0))})});
  NodePtr Good = forLoop(
      "i", 0, 8,
      {forLoop("j", 0, 8,
               {assign("S0", "A", {ax("i"), ax("j")}, lit(1.0))})});
  EXPECT_GT(outOfOrderCount(Bad, Prog), 0);
  EXPECT_EQ(outOfOrderCount(Good, Prog), 0);
}

TEST(StrideTest, FissionedExampleFromFig3) {
  // Paper Fig. 3: B[j][i] accessed in i-outer j-inner loops is strided;
  // permuting to j-outer i-inner minimizes the stride sum.
  Program Prog("fig3");
  Prog.addArray("A", {64, 64});
  Prog.addArray("B", {64, 64});
  NodePtr Strided = forLoop(
      "i", 0, 64,
      {forLoop("j", 0, 64,
               {assign("S2", "B", {ax("j"), ax("i")},
                       read("B", {ax("j"), ax("i")}) * lit(2.0))})});
  NodePtr Minimized = forLoop(
      "j", 0, 64,
      {forLoop("i", 0, 64,
               {assign("S2", "B", {ax("j"), ax("i")},
                       read("B", {ax("j"), ax("i")}) * lit(2.0))})});
  EXPECT_LT(sumOfStridesCost(Minimized, Prog),
            sumOfStridesCost(Strided, Prog));
}

//===----------------------------------------------------------------------===//
// Dataflow
//===----------------------------------------------------------------------===//

TEST(DataflowTest, ProducerConsumerChain) {
  Program Prog("chain");
  Prog.addArray("A", {8});
  Prog.addArray("B", {8});
  Prog.addArray("C", {8});
  Prog.append(forLoop("i", 0, 8, {assign("S0", "A", {ax("i")}, lit(1.0))}));
  Prog.append(forLoop("i", 0, 8,
                      {assign("S1", "B", {ax("i")},
                              read("A", {ax("i")}) * lit(2.0))}));
  Prog.append(forLoop("i", 0, 8,
                      {assign("S2", "C", {ax("i")},
                              read("B", {ax("i")}) + lit(1.0))}));
  DataflowGraph G = buildDataflowGraph(Prog.topLevel(), Prog);
  ASSERT_EQ(G.Edges.size(), 2u);
  EXPECT_EQ(G.Edges[0].Producer, 0u);
  EXPECT_EQ(G.Edges[0].Consumer, 1u);
  EXPECT_TRUE(G.Edges[0].OneToOne);
  EXPECT_EQ(G.Edges[1].Producer, 1u);
  EXPECT_EQ(G.Edges[1].Consumer, 2u);
  EXPECT_TRUE(G.Edges[1].OneToOne);
}

TEST(DataflowTest, LatestWriterWins) {
  Program Prog("redef");
  Prog.addArray("A", {8});
  Prog.addArray("B", {8});
  Prog.append(forLoop("i", 0, 8, {assign("S0", "A", {ax("i")}, lit(1.0))}));
  Prog.append(forLoop("i", 0, 8, {assign("S1", "A", {ax("i")}, lit(2.0))}));
  Prog.append(forLoop("i", 0, 8,
                      {assign("S2", "B", {ax("i")},
                              read("A", {ax("i")}))}));
  DataflowGraph G = buildDataflowGraph(Prog.topLevel(), Prog);
  ASSERT_EQ(G.Edges.size(), 1u);
  EXPECT_EQ(G.Edges[0].Producer, 1u);
}

TEST(DataflowTest, NotOneToOneForStencil) {
  Program Prog("stencil");
  Prog.addArray("A", {10});
  Prog.addArray("B", {10});
  Prog.append(forLoop("i", 0, 10, {assign("S0", "A", {ax("i")}, lit(1.0))}));
  Prog.append(forLoop("i", 1, 9,
                      {assign("S1", "B", {ax("i")},
                              read("A", {ax("i") - 1}) +
                                  read("A", {ax("i") + 1}))}));
  DataflowGraph G = buildDataflowGraph(Prog.topLevel(), Prog);
  ASSERT_EQ(G.Edges.size(), 1u);
  EXPECT_FALSE(G.Edges[0].OneToOne);
}
