//===- tests/ApiTest.cpp - Engine/Kernel facade tests ----------------------==//
//
// Part of the daisy project. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The public facade's contracts:
//
// - compile-once: structurally identical programs compiled through one
//   Engine share a single kernel (counter-asserted), with LRU eviction
//   and explicit invalidation recompiling;
// - zero-copy ArgBinding runs validate against the array declarations
//   (shape mismatch, unknown/duplicate/missing/transient arrays are
//   diagnostics, not UB) and produce results bit-identical to the
//   tree-walking semantics definition;
// - concurrent Kernel::run calls from many threads, on caller-owned
//   buffers and on pooled deterministic environments, are bit-identical
//   to serial execution (this suite runs under ThreadSanitizer in CI);
// - Engine::optimize chains normalization, idiom replacement, and
//   transfer tuning into a runnable kernel that preserves semantics.
//
//===----------------------------------------------------------------------===//

#include "api/Engine.h"
#include "exec/Interpreter.h"
#include "frontends/PolyBench.h"
#include "ir/Builder.h"
#include "serve/BoundArgs.h"
#include "support/FailPoint.h"
#include "support/Statistics.h"
#include "transform/Parallelize.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

using namespace daisy;

namespace {

/// GEMM with a chosen loop order — the canonical many-variants program.
Program makeGemm(const std::string &O1, const std::string &O2,
                 const std::string &O3, int N) {
  Program Prog("gemm_" + O1 + O2 + O3);
  Prog.addArray("A", {N, N});
  Prog.addArray("B", {N, N});
  Prog.addArray("C", {N, N});
  Prog.append(forLoop(
      O1, 0, N,
      {forLoop(O2, 0, N,
               {forLoop(O3, 0, N,
                        {assign("S0", "C", {ax("i"), ax("j")},
                                read("C", {ax("i"), ax("j")}) +
                                    read("A", {ax("i"), ax("k")}) *
                                        read("B", {ax("k"), ax("j")}))})})}));
  return Prog;
}

/// A two-nest program whose first nest writes a transient temporary the
/// second consumes — the shape transformations produce via scalar
/// expansion. Exercises kernel-managed transient scratch.
Program makeTransientProgram(int N) {
  Program Prog("transient");
  Prog.addArray("In", {N});
  Prog.addArray("Out", {N});
  Prog.addArray("Tmp", {N}, /*Transient=*/true);
  Prog.append(forLoop("i", 0, N,
                      {assign("S0", "Tmp", {ax("i")},
                              read("In", {ax("i")}) * lit(2.0))}));
  Prog.append(forLoop("i", 0, N,
                      {assign("S1", "Out", {ax("i")},
                              read("Tmp", {ax("i")}) + lit(1.0))}));
  return Prog;
}

/// Deterministically fills caller-owned buffers with the same pattern a
/// DataEnv would hold, by copying out of one.
void fillLikeDataEnv(const Program &Prog, uint64_t Seed,
                     std::vector<std::pair<std::string, std::vector<double>>>
                         &Buffers) {
  DataEnv Env(Prog);
  Env.initDeterministic(Seed);
  Buffers.clear();
  for (const ArrayDecl &Decl : Prog.arrays())
    if (!Decl.Transient)
      Buffers.emplace_back(Decl.Name, Env.buffer(Decl.Name));
}

} // namespace

//===----------------------------------------------------------------------===//
// Plan cache
//===----------------------------------------------------------------------===//

TEST(PlanCacheTest, CompilesIdenticalProgramOnce) {
  Engine Eng;
  Program Prog = makeGemm("i", "j", "k", 12);
  resetStatsCounters();

  Kernel K1 = Eng.compile(Prog);
  Kernel K2 = Eng.compile(Prog);
  EXPECT_EQ(statsCounter("Engine.PlanCompiles"), 1);
  EXPECT_EQ(statsCounter("Engine.PlanCacheHits"), 1);
  // The handles share one kernel, not merely equivalent ones.
  EXPECT_EQ(&K1.plan(), &K2.plan());

  // A structurally identical rebuild (different object, same structure)
  // hits as well — the cache keys on structure, not identity.
  Kernel K3 = Eng.compile(makeGemm("i", "j", "k", 12));
  EXPECT_EQ(statsCounter("Engine.PlanCompiles"), 1);
  EXPECT_EQ(&K1.plan(), &K3.plan());
}

TEST(PlanCacheTest, DistinctOptionsCompileSeparately) {
  Engine Eng;
  Program Prog = makeGemm("i", "j", "k", 12);
  resetStatsCounters();

  PlanOptions Serial;
  Serial.NumThreads = 1;
  PlanOptions NoSpec;
  NoSpec.NumThreads = 1;
  NoSpec.EnableSpecialization = false;
  Kernel K1 = Eng.compile(Prog, Serial);
  Kernel K2 = Eng.compile(Prog, NoSpec);
  EXPECT_EQ(statsCounter("Engine.PlanCompiles"), 2);
  EXPECT_NE(&K1.plan(), &K2.plan());
}

TEST(PlanCacheTest, MarksAndDataChangeTheKey) {
  Engine Eng;
  // PolyBench GEMM takes the parallel mark on its outermost loops, which
  // must change the cache key — the marked plan forks.
  Program Prog = buildPolyBench(PolyBenchKernel::Gemm, VariantKind::A);
  resetStatsCounters();

  Eng.compile(Prog);
  Program Marked = Prog.clone();
  bool AnyMarked = false;
  for (const NodePtr &Node : Marked.topLevel())
    AnyMarked |= parallelizeOutermost(Node, Marked.params(), &Marked);
  ASSERT_TRUE(AnyMarked);
  Eng.compile(Marked);
  EXPECT_EQ(statsCounter("Engine.PlanCompiles"), 2);

  // Same structure, different array extents: offsets differ.
  resetStatsCounters();
  Eng.compile(makeGemm("i", "j", "k", 12));
  Eng.compile(makeGemm("i", "j", "k", 16));
  EXPECT_EQ(statsCounter("Engine.PlanCompiles"), 2);
}

TEST(PlanCacheTest, ClearInvalidatesAndLruEvicts) {
  EngineOptions Options;
  Options.PlanCacheCapacity = 2;
  Engine Eng(Options);
  Program P1 = makeGemm("i", "j", "k", 8);
  Program P2 = makeGemm("i", "k", "j", 8);
  Program P3 = makeGemm("j", "i", "k", 8);
  resetStatsCounters();

  Eng.compile(P1);
  Eng.compile(P2);
  EXPECT_EQ(Eng.planCacheSize(), 2u);

  // Touch P1 so P2 is the least recently used, then overflow: P2 goes.
  Eng.compile(P1);
  Eng.compile(P3);
  EXPECT_EQ(Eng.planCacheSize(), 2u);
  EXPECT_EQ(statsCounter("Engine.PlanCacheEvictions"), 1);
  int64_t Before = statsCounter("Engine.PlanCompiles");
  Eng.compile(P1); // still cached
  EXPECT_EQ(statsCounter("Engine.PlanCompiles"), Before);
  Eng.compile(P2); // evicted: recompiles
  EXPECT_EQ(statsCounter("Engine.PlanCompiles"), Before + 1);

  // Explicit invalidation drops everything.
  Eng.clearPlanCache();
  EXPECT_EQ(Eng.planCacheSize(), 0u);
  Before = statsCounter("Engine.PlanCompiles");
  Eng.compile(P1);
  EXPECT_EQ(statsCounter("Engine.PlanCompiles"), Before + 1);
}

TEST(PlanCacheTest, SharedEngineBacksFreeFunctions) {
  Program Prog = makeGemm("k", "i", "j", 10);
  DataEnv First = runProgram(Prog);
  int64_t Compiles = statsCounter("Engine.PlanCompiles");
  DataEnv Second = runProgram(Prog);
  // The second execution reuses the shared engine's cached kernel.
  EXPECT_EQ(statsCounter("Engine.PlanCompiles"), Compiles);
  EXPECT_EQ(DataEnv::maxAbsDifference(First, Second, Prog), 0.0);
}

//===----------------------------------------------------------------------===//
// ArgBinding validation
//===----------------------------------------------------------------------===//

TEST(ArgBindingTest, RejectsInvalidBindings) {
  Kernel K = Kernel::compile(makeGemm("i", "j", "k", 8));
  std::vector<double> A(64), B(64), C(64), Small(63);

  // Shape mismatch.
  RunStatus Status =
      K.run(ArgBinding().bind("A", Small).bind("B", B).bind("C", C));
  EXPECT_FALSE(Status.ok());
  EXPECT_NE(Status.Error.find("shape mismatch"), std::string::npos);
  EXPECT_NE(Status.Error.find("'A'"), std::string::npos);

  // Unknown array.
  Status = K.run(
      ArgBinding().bind("A", A).bind("B", B).bind("C", C).bind("D", A));
  EXPECT_FALSE(Status.ok());
  EXPECT_NE(Status.Error.find("unknown array"), std::string::npos);

  // Missing array.
  Status = K.run(ArgBinding().bind("A", A).bind("B", B));
  EXPECT_FALSE(Status.ok());
  EXPECT_NE(Status.Error.find("not bound"), std::string::npos);

  // Duplicate binding.
  Status = K.run(
      ArgBinding().bind("A", A).bind("B", B).bind("C", C).bind("A", A));
  EXPECT_FALSE(Status.ok());
  EXPECT_NE(Status.Error.find("twice"), std::string::npos);

  // Null storage.
  ArgBinding Null;
  Null.bind("A", nullptr, 64).bind("B", B).bind("C", C);
  Status = K.run(Null);
  EXPECT_FALSE(Status.ok());

  // A failed run leaves the outputs untouched.
  C.assign(64, -1.0);
  Status = K.run(ArgBinding().bind("A", A).bind("B", B));
  EXPECT_FALSE(Status.ok());
  for (double V : C)
    EXPECT_EQ(V, -1.0);
}

TEST(ArgBindingTest, RejectsBindingTransientArrays) {
  Kernel K = Kernel::compile(makeTransientProgram(16));
  std::vector<double> In(16), Out(16), Tmp(16);
  RunStatus Status =
      K.run(ArgBinding().bind("In", In).bind("Out", Out).bind("Tmp", Tmp));
  EXPECT_FALSE(Status.ok());
  EXPECT_NE(Status.Error.find("transient"), std::string::npos);
}

TEST(ArgBindingTest, ZeroCopyMatchesTreeWalk) {
  Program Prog = makeGemm("j", "k", "i", 12);
  Kernel K = Kernel::compile(Prog);

  // Reference: the tree-walking semantics definition.
  DataEnv Ref(Prog);
  Ref.initDeterministic(5);
  interpretTreeWalk(Prog, Ref);

  // Same initial data in caller-owned storage, run zero-copy.
  std::vector<std::pair<std::string, std::vector<double>>> Buffers;
  fillLikeDataEnv(Prog, 5, Buffers);
  ArgBinding Args;
  for (auto &[Name, Storage] : Buffers)
    Args.bind(Name, Storage);
  ASSERT_TRUE(K.run(Args));

  for (auto &[Name, Storage] : Buffers) {
    const std::vector<double> &Expected = Ref.buffer(Name);
    ASSERT_EQ(Storage.size(), Expected.size());
    for (size_t I = 0; I < Storage.size(); ++I)
      ASSERT_EQ(Storage[I], Expected[I]) << Name << "[" << I << "]";
  }
}

TEST(ArgBindingTest, TransientScratchIsZeroedEachRun) {
  Program Prog = makeTransientProgram(8);
  Kernel K = Kernel::compile(Prog);
  std::vector<double> In(8, 3.0), Out(8, 0.0);
  ArgBinding Args;
  Args.bind("In", In).bind("Out", Out);

  ASSERT_TRUE(K.run(Args));
  std::vector<double> FirstOut = Out;
  // Second run through the pooled (now dirty) context must see identical
  // transient semantics.
  ASSERT_TRUE(K.run(Args));
  EXPECT_EQ(Out, FirstOut);
  EXPECT_EQ(Out[0], 3.0 * 2.0 + 1.0);
}

//===----------------------------------------------------------------------===//
// Concurrency
//===----------------------------------------------------------------------===//

TEST(KernelConcurrencyTest, ConcurrentZeroCopyRunsAreBitIdentical) {
  // A parallel-marked program makes the runs themselves fork onto the
  // shared pool while several caller threads run the same kernel.
  Program Prog = makeGemm("i", "j", "k", 24);
  for (const NodePtr &Node : Prog.topLevel())
    parallelizeOutermost(Node, Prog.params(), &Prog);
  Kernel K = Kernel::compile(Prog);

  DataEnv Ref(Prog);
  Ref.initDeterministic(9);
  interpretTreeWalk(Prog, Ref);
  const std::vector<double> &Expected = Ref.buffer("C");

  constexpr int Threads = 8;
  constexpr int RunsPerThread = 4;
  std::vector<int> Failures(Threads, 0);
  std::vector<std::thread> Workers;
  for (int T = 0; T < Threads; ++T)
    Workers.emplace_back([&, T] {
      std::vector<std::pair<std::string, std::vector<double>>> Buffers;
      fillLikeDataEnv(Prog, 9, Buffers);
      ArgBinding Args;
      for (auto &[Name, Storage] : Buffers)
        Args.bind(Name, Storage);
      for (int R = 0; R < RunsPerThread; ++R) {
        // Re-fill C (the in/out array) for each run.
        for (auto &[Name, Storage] : Buffers)
          if (Name == "C") {
            DataEnv Fresh(Prog);
            Fresh.initDeterministic(9);
            Storage = Fresh.buffer("C");
          }
        if (!K.run(Args)) {
          ++Failures[T];
          continue;
        }
        for (auto &[Name, Storage] : Buffers)
          if (Name == "C" && Storage != Expected)
            ++Failures[T];
      }
    });
  for (std::thread &W : Workers)
    W.join();
  for (int T = 0; T < Threads; ++T)
    EXPECT_EQ(Failures[T], 0) << "thread " << T;
}

TEST(KernelConcurrencyTest, ConcurrentDeterministicRunsAreBitIdentical) {
  Program Prog = buildPolyBench(PolyBenchKernel::Atax, VariantKind::A);
  Engine Eng;
  Kernel K = Eng.compile(Prog);

  DataEnv Ref(Prog);
  Ref.initDeterministic(1);
  interpretTreeWalk(Prog, Ref);

  constexpr int Threads = 8;
  std::vector<double> MaxDiff(Threads, -1.0);
  std::vector<std::thread> Workers;
  for (int T = 0; T < Threads; ++T)
    Workers.emplace_back([&, T] {
      DataEnv Env = K.run(/*Seed=*/1);
      MaxDiff[T] = DataEnv::maxAbsDifference(Ref, Env, Prog);
    });
  for (std::thread &W : Workers)
    W.join();
  for (int T = 0; T < Threads; ++T)
    EXPECT_EQ(MaxDiff[T], 0.0) << "thread " << T;
}

TEST(KernelConcurrencyTest, ConcurrentEngineCompilesShareOneKernel) {
  Engine Eng;
  Program Prog = makeGemm("i", "k", "j", 16);
  resetStatsCounters();

  constexpr int Threads = 8;
  std::vector<Kernel> Kernels(Threads);
  std::vector<std::thread> Workers;
  for (int T = 0; T < Threads; ++T)
    Workers.emplace_back([&, T] { Kernels[T] = Eng.compile(Prog); });
  for (std::thread &W : Workers)
    W.join();

  EXPECT_EQ(statsCounter("Engine.PlanCompiles"), 1);
  for (int T = 1; T < Threads; ++T)
    EXPECT_EQ(&Kernels[T].plan(), &Kernels[0].plan());
}

TEST(KernelTest, ContextPoolReusesAcrossRuns) {
  Kernel K = Kernel::compile(makeGemm("i", "j", "k", 8));
  EXPECT_EQ(K.contextPoolSize(), 0u);
  K.run(/*Seed=*/1);
  EXPECT_EQ(K.contextPoolSize(), 1u);
  K.run(/*Seed=*/2);
  // Serial runs reuse the one pooled context instead of growing the pool.
  EXPECT_EQ(K.contextPoolSize(), 1u);
}

//===----------------------------------------------------------------------===//
// End-to-end optimization
//===----------------------------------------------------------------------===//

TEST(EngineTest, OptimizeReplacesGemmIdiomAndPreservesSemantics) {
  Engine Eng;
  Program Prog = makeGemm("j", "k", "i", 16);
  Kernel Optimized = Eng.optimize(Prog);

  // The canonical form matches the BLAS-3 idiom.
  ASSERT_FALSE(Optimized.program().topLevel().empty());
  EXPECT_EQ(Optimized.program().topLevel()[0]->kind(), NodeKind::Call);

  // And the optimized kernel computes what the source program computes.
  DataEnv Ref(Prog);
  Ref.initDeterministic(3);
  interpretTreeWalk(Prog, Ref);
  DataEnv Env = Optimized.run(/*Seed=*/3);
  EXPECT_LE(DataEnv::maxAbsDifference(Ref, Env, Prog), 1e-9);
}

TEST(EngineTest, EnginesSharingADatabaseSynchronize) {
  // Two engines over one database (EngineOptions::Database): concurrent
  // seeding through one and scheduling through the other must be safe —
  // they resolve to the same database lock. Exercised under TSan in CI.
  auto Shared = std::make_shared<TransferTuningDatabase>();
  EngineOptions O1, O2;
  O1.Database = Shared;
  O2.Database = Shared;
  Engine E1(O1), E2(O2);

  TuneOptions Tune;
  Tune.Budget.MctsRollouts = 4;
  Tune.Budget.PopulationSize = 2;
  Tune.Budget.IterationsPerEpoch = 1;
  Tune.Budget.Epochs = 1;

  Program G = makeGemm("i", "j", "k", 8);
  Program J = buildPolyBench(PolyBenchKernel::Jacobi2d, VariantKind::A);
  std::thread Seeder([&] { E1.seedDatabase(G, Tune); });
  std::thread Scheduler([&] {
    for (int I = 0; I < 4; ++I)
      E2.schedule(J, Tune);
  });
  Seeder.join();
  Scheduler.join();
  EXPECT_GT(Shared->size(), 0u);
}

TEST(EngineTest, SeedDatabaseIsOrderIndependent) {
  SearchBudget Tiny;
  Tiny.MctsRollouts = 4;
  Tiny.PopulationSize = 2;
  Tiny.IterationsPerEpoch = 1;
  Tiny.Epochs = 1;
  TuneOptions Tune;
  Tune.Budget = Tiny;

  Program G = makeGemm("i", "j", "k", 8);
  Program J = buildPolyBench(PolyBenchKernel::Jacobi2d, VariantKind::A);

  auto SeedBoth = [&](const Program &First, const Program &Second) {
    Engine Eng;
    Eng.seedDatabase(First, Tune);
    Eng.seedDatabase(Second, Tune);
    std::vector<std::string> Entries;
    for (const DatabaseEntry &Entry : Eng.database().entries())
      Entries.push_back(Entry.Name + "=" + Entry.Optimization.toString());
    std::sort(Entries.begin(), Entries.end());
    return Entries;
  };
  // Per-program derived random streams: with a single-epoch budget (no
  // similarity re-seeding from earlier entries, the one deliberate
  // order-sensitive channel) the same recipes emerge regardless of
  // seeding order.
  EXPECT_EQ(SeedBoth(G, J), SeedBoth(J, G));
}

//===----------------------------------------------------------------------===//
// Degraded-mode kernels: the tree-walk fallback
//===----------------------------------------------------------------------===//

TEST(TreeWalkKernelTest, FallbackKernelIsBitIdenticalOnEveryRunPath) {
  Program Prog = makeGemm("i", "j", "k", 12);
  Kernel Fast = Kernel::compile(Prog);
  Kernel Slow = Kernel::treeWalk(Prog);
  EXPECT_FALSE(Fast.isTreeWalk());
  EXPECT_TRUE(Slow.isTreeWalk());

  // Zero-copy ArgBinding path.
  std::vector<std::pair<std::string, std::vector<double>>> FastBufs, SlowBufs;
  fillLikeDataEnv(Prog, 5, FastBufs);
  fillLikeDataEnv(Prog, 5, SlowBufs);
  ArgBinding FastArgs, SlowArgs;
  for (auto &[Name, Storage] : FastBufs)
    FastArgs.bind(Name, Storage);
  for (auto &[Name, Storage] : SlowBufs)
    SlowArgs.bind(Name, Storage);
  ASSERT_TRUE(Fast.run(FastArgs));
  ASSERT_TRUE(Slow.run(SlowArgs));
  EXPECT_EQ(FastBufs, SlowBufs);

  // DataEnv path, repeated so the pooled fallback environment is reused
  // dirty — transients must still be re-zeroed per run.
  Program TProg = makeTransientProgram(8);
  Kernel TSlow = Kernel::treeWalk(TProg);
  std::vector<double> In(8, 3.0), Out(8, 0.0);
  ArgBinding TArgs;
  TArgs.bind("In", In).bind("Out", Out);
  ASSERT_TRUE(TSlow.run(TArgs));
  std::vector<double> FirstOut = Out;
  ASSERT_TRUE(TSlow.run(TArgs));
  EXPECT_EQ(Out, FirstOut);
  EXPECT_EQ(Out[0], 3.0 * 2.0 + 1.0);
}

//===----------------------------------------------------------------------===//
// Engine memory budgets
//===----------------------------------------------------------------------===//

TEST(EngineBudgetTest, EvictsUnderPressureAndNeverExceedsTheBound) {
  // Size the budget off a real kernel so the test tracks footprint
  // estimator changes: room for two and a half gemm variants.
  size_t OneKernel = Kernel::compile(makeGemm("i", "j", "k", 8)).memoryBytes();
  ASSERT_GT(OneKernel, 0u);
  EngineOptions Options;
  Options.MemoryBudgetBytes = OneKernel * 5 / 2;
  Engine Eng(Options);
  resetStatsCounters();

  (void)Eng.compile(makeGemm("i", "j", "k", 8));
  (void)Eng.compile(makeGemm("i", "k", "j", 8));
  EXPECT_EQ(Eng.planCacheSize(), 2u);
  EXPECT_LE(Eng.memoryBytesPeak(), Options.MemoryBudgetBytes);

  // The third variant does not fit next to the first two: the LRU tail
  // is evicted to make room, and the charged total stays bounded at
  // every instant (peak, not just the final value).
  Kernel Third = Eng.compile(makeGemm("j", "i", "k", 8));
  EXPECT_FALSE(Third.isExhausted());
  EXPECT_GE(statsCounter("Engine.BudgetEvictions"), 1);
  EXPECT_LT(Eng.planCacheSize(), 3u);
  EXPECT_LE(Eng.memoryBytesUsed(), Options.MemoryBudgetBytes);
  EXPECT_LE(Eng.memoryBytesPeak(), Options.MemoryBudgetBytes);
}

TEST(EngineBudgetTest, ExhaustionSurfacesAsAStatusAndIsNeverCached) {
  // A budget no kernel fits: compile() must still return — a kernel whose
  // runs complete with ResourceExhausted — rather than throw into the
  // serving loop.
  EngineOptions Options;
  Options.MemoryBudgetBytes = 1;
  Engine Eng(Options);
  resetStatsCounters();
  Program Prog = makeGemm("i", "j", "k", 8);

  Kernel K = Eng.compile(Prog);
  ASSERT_TRUE(K.isExhausted());
  EXPECT_GE(statsCounter("Engine.ResourceExhausted"), 1);
  EXPECT_EQ(Eng.memoryBytesUsed(), 0u);
  // Not cached: the key retries once pressure subsides.
  EXPECT_EQ(Eng.planCacheSize(), 0u);
  int64_t Before = statsCounter("Engine.PlanCompiles");
  EXPECT_TRUE(Eng.compile(Prog).isExhausted());
  EXPECT_EQ(statsCounter("Engine.PlanCompiles"), Before + 1);

  // Every status-returning run form surfaces the exhaustion; none throw
  // and none touch the outputs.
  std::vector<double> A(64, 1.0), B(64, 1.0), C(64, -1.0);
  ArgBinding Args;
  Args.bind("A", A).bind("B", B).bind("C", C);
  RunStatus Status = K.run(Args);
  EXPECT_EQ(Status.Why, RunStatus::ResourceExhausted);
  EXPECT_FALSE(Status.ok());

  BoundArgs Bound = K.bind(Args);
  ASSERT_TRUE(Bound.ok());
  Status = K.run(Bound);
  EXPECT_EQ(Status.Why, RunStatus::ResourceExhausted);

  const BoundArgs *Batch[] = {&Bound, &Bound};
  RunStatus Statuses[2];
  K.runBatch(Batch, Statuses, 2);
  EXPECT_EQ(Statuses[0].Why, RunStatus::ResourceExhausted);
  EXPECT_EQ(Statuses[1].Why, RunStatus::ResourceExhausted);
  for (double V : C)
    EXPECT_EQ(V, -1.0);
}

TEST(EngineBudgetTest, PooledContextsAreDroppedNotRetainedUnderPressure) {
  // An exact-fit budget: the kernel itself is charged, leaving zero
  // headroom, so the pool must drop its context after the run instead of
  // retaining it beyond the bound.
  Program Prog = makeGemm("i", "j", "k", 8);
  size_t OneKernel = Kernel::compile(Prog).memoryBytes();
  EngineOptions Options;
  Options.MemoryBudgetBytes = OneKernel;
  Engine Eng(Options);
  resetStatsCounters();

  Kernel K = Eng.compile(Prog);
  ASSERT_FALSE(K.isExhausted());
  DataEnv Env = K.run(/*Seed=*/1);
  EXPECT_EQ(K.contextPoolSize(), 0u);
  EXPECT_GE(statsCounter("Engine.ContextsDropped"), 1);
  EXPECT_LE(Eng.memoryBytesPeak(), Options.MemoryBudgetBytes);

  // Dropped, not wrong: the run still computed the real result.
  DataEnv Ref(Prog);
  Ref.initDeterministic(1);
  interpretTreeWalk(Prog, Ref);
  EXPECT_EQ(DataEnv::maxAbsDifference(Ref, Env, Prog), 0.0);
}

#if DAISY_ENABLE_FAILPOINTS

TEST(EngineBudgetTest, ArmedBudgetFailPointForcesTheExhaustionPath) {
  // The "engine.budget" site makes charge failure deterministic even with
  // an ample budget — the fault-matrix hook CI arms.
  FailPointConfig Fire;
  Fire.Action = FailAction::Trigger;
  armFailPoint("engine.budget", Fire, /*Seed=*/1);

  EngineOptions Options;
  Options.MemoryBudgetBytes = 64 * 1024 * 1024;
  Engine Eng(Options);
  resetStatsCounters();
  Kernel K = Eng.compile(makeGemm("i", "j", "k", 8));
  disarmFailPoint("engine.budget");

  EXPECT_TRUE(K.isExhausted());
  EXPECT_GE(statsCounter("Engine.ResourceExhausted"), 1);
  EXPECT_EQ(Eng.memoryBytesUsed(), 0u);

  // Disarmed, the same engine compiles the same program for real.
  Kernel Healed = Eng.compile(makeGemm("i", "j", "k", 8));
  EXPECT_FALSE(Healed.isExhausted());
}

#endif // DAISY_ENABLE_FAILPOINTS

#if DAISY_ENABLE_FAILPOINTS

TEST(EngineFallbackTest, CompileFailureDegradesToTreeWalkAndSelfHeals) {
  resetStatsCounters();
  Program Prog = makeGemm("i", "j", "k", 12);

  FailPointConfig Throws;
  Throws.Action = FailAction::Throw;
  armFailPoint("engine.compile", Throws, /*Seed=*/1);

  Engine Eng;
  Kernel Degraded = Eng.compile(Prog);
  EXPECT_TRUE(Degraded.isTreeWalk());
  EXPECT_EQ(statsCounter("Engine.CompileFallbacks"), 1);

  // Degraded, not wrong: results still match the semantics definition.
  DataEnv Ref(Prog);
  Ref.initDeterministic(5);
  interpretTreeWalk(Prog, Ref);
  std::vector<std::pair<std::string, std::vector<double>>> Buffers;
  fillLikeDataEnv(Prog, 5, Buffers);
  ArgBinding Args;
  for (auto &[Name, Storage] : Buffers)
    Args.bind(Name, Storage);
  ASSERT_TRUE(Degraded.run(Args));
  for (auto &[Name, Storage] : Buffers)
    EXPECT_EQ(Storage, Ref.buffer(Name)) << Name;

  // Self-healing: the fallback is not cached, so once compilation works
  // again the same engine produces a real kernel.
  disarmFailPoint("engine.compile");
  Kernel Healed = Eng.compile(Prog);
  EXPECT_FALSE(Healed.isTreeWalk());
  EXPECT_EQ(statsCounter("Engine.CompileFallbacks"), 1);
}

TEST(EngineFallbackTest, FallbackOffPropagatesTheCompileError) {
  FailPointConfig Throws;
  Throws.Action = FailAction::Throw;
  armFailPoint("engine.compile", Throws, /*Seed=*/1);

  EngineOptions Options;
  Options.FallbackOnCompileError = false;
  Engine Eng(Options);
  EXPECT_THROW((void)Eng.compile(makeGemm("i", "j", "k", 8)),
               std::runtime_error);
  disarmFailPoint("engine.compile");
}

#endif // DAISY_ENABLE_FAILPOINTS
