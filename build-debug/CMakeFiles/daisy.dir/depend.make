# Empty dependencies file for daisy.
# This may be replaced when dependencies are built.
