
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/Accesses.cpp" "CMakeFiles/daisy.dir/src/analysis/Accesses.cpp.o" "gcc" "CMakeFiles/daisy.dir/src/analysis/Accesses.cpp.o.d"
  "/root/repo/src/analysis/Dataflow.cpp" "CMakeFiles/daisy.dir/src/analysis/Dataflow.cpp.o" "gcc" "CMakeFiles/daisy.dir/src/analysis/Dataflow.cpp.o.d"
  "/root/repo/src/analysis/Dependence.cpp" "CMakeFiles/daisy.dir/src/analysis/Dependence.cpp.o" "gcc" "CMakeFiles/daisy.dir/src/analysis/Dependence.cpp.o.d"
  "/root/repo/src/analysis/Legality.cpp" "CMakeFiles/daisy.dir/src/analysis/Legality.cpp.o" "gcc" "CMakeFiles/daisy.dir/src/analysis/Legality.cpp.o.d"
  "/root/repo/src/analysis/Stride.cpp" "CMakeFiles/daisy.dir/src/analysis/Stride.cpp.o" "gcc" "CMakeFiles/daisy.dir/src/analysis/Stride.cpp.o.d"
  "/root/repo/src/blas/Kernels.cpp" "CMakeFiles/daisy.dir/src/blas/Kernels.cpp.o" "gcc" "CMakeFiles/daisy.dir/src/blas/Kernels.cpp.o.d"
  "/root/repo/src/cloudsc/Cloudsc.cpp" "CMakeFiles/daisy.dir/src/cloudsc/Cloudsc.cpp.o" "gcc" "CMakeFiles/daisy.dir/src/cloudsc/Cloudsc.cpp.o.d"
  "/root/repo/src/exec/DataEnv.cpp" "CMakeFiles/daisy.dir/src/exec/DataEnv.cpp.o" "gcc" "CMakeFiles/daisy.dir/src/exec/DataEnv.cpp.o.d"
  "/root/repo/src/exec/ExecPlan.cpp" "CMakeFiles/daisy.dir/src/exec/ExecPlan.cpp.o" "gcc" "CMakeFiles/daisy.dir/src/exec/ExecPlan.cpp.o.d"
  "/root/repo/src/exec/Interpreter.cpp" "CMakeFiles/daisy.dir/src/exec/Interpreter.cpp.o" "gcc" "CMakeFiles/daisy.dir/src/exec/Interpreter.cpp.o.d"
  "/root/repo/src/frontends/PolyBench.cpp" "CMakeFiles/daisy.dir/src/frontends/PolyBench.cpp.o" "gcc" "CMakeFiles/daisy.dir/src/frontends/PolyBench.cpp.o.d"
  "/root/repo/src/frontends/PolyBenchLinear.cpp" "CMakeFiles/daisy.dir/src/frontends/PolyBenchLinear.cpp.o" "gcc" "CMakeFiles/daisy.dir/src/frontends/PolyBenchLinear.cpp.o.d"
  "/root/repo/src/frontends/PolyBenchOther.cpp" "CMakeFiles/daisy.dir/src/frontends/PolyBenchOther.cpp.o" "gcc" "CMakeFiles/daisy.dir/src/frontends/PolyBenchOther.cpp.o.d"
  "/root/repo/src/ir/AffineExpr.cpp" "CMakeFiles/daisy.dir/src/ir/AffineExpr.cpp.o" "gcc" "CMakeFiles/daisy.dir/src/ir/AffineExpr.cpp.o.d"
  "/root/repo/src/ir/Builder.cpp" "CMakeFiles/daisy.dir/src/ir/Builder.cpp.o" "gcc" "CMakeFiles/daisy.dir/src/ir/Builder.cpp.o.d"
  "/root/repo/src/ir/Expr.cpp" "CMakeFiles/daisy.dir/src/ir/Expr.cpp.o" "gcc" "CMakeFiles/daisy.dir/src/ir/Expr.cpp.o.d"
  "/root/repo/src/ir/Node.cpp" "CMakeFiles/daisy.dir/src/ir/Node.cpp.o" "gcc" "CMakeFiles/daisy.dir/src/ir/Node.cpp.o.d"
  "/root/repo/src/ir/Printer.cpp" "CMakeFiles/daisy.dir/src/ir/Printer.cpp.o" "gcc" "CMakeFiles/daisy.dir/src/ir/Printer.cpp.o.d"
  "/root/repo/src/ir/Program.cpp" "CMakeFiles/daisy.dir/src/ir/Program.cpp.o" "gcc" "CMakeFiles/daisy.dir/src/ir/Program.cpp.o.d"
  "/root/repo/src/ir/Rewrite.cpp" "CMakeFiles/daisy.dir/src/ir/Rewrite.cpp.o" "gcc" "CMakeFiles/daisy.dir/src/ir/Rewrite.cpp.o.d"
  "/root/repo/src/ir/StructuralHash.cpp" "CMakeFiles/daisy.dir/src/ir/StructuralHash.cpp.o" "gcc" "CMakeFiles/daisy.dir/src/ir/StructuralHash.cpp.o.d"
  "/root/repo/src/ir/Validate.cpp" "CMakeFiles/daisy.dir/src/ir/Validate.cpp.o" "gcc" "CMakeFiles/daisy.dir/src/ir/Validate.cpp.o.d"
  "/root/repo/src/machine/CacheSim.cpp" "CMakeFiles/daisy.dir/src/machine/CacheSim.cpp.o" "gcc" "CMakeFiles/daisy.dir/src/machine/CacheSim.cpp.o.d"
  "/root/repo/src/machine/Simulator.cpp" "CMakeFiles/daisy.dir/src/machine/Simulator.cpp.o" "gcc" "CMakeFiles/daisy.dir/src/machine/Simulator.cpp.o.d"
  "/root/repo/src/normalize/Fission.cpp" "CMakeFiles/daisy.dir/src/normalize/Fission.cpp.o" "gcc" "CMakeFiles/daisy.dir/src/normalize/Fission.cpp.o.d"
  "/root/repo/src/normalize/Pipeline.cpp" "CMakeFiles/daisy.dir/src/normalize/Pipeline.cpp.o" "gcc" "CMakeFiles/daisy.dir/src/normalize/Pipeline.cpp.o.d"
  "/root/repo/src/normalize/StrideMin.cpp" "CMakeFiles/daisy.dir/src/normalize/StrideMin.cpp.o" "gcc" "CMakeFiles/daisy.dir/src/normalize/StrideMin.cpp.o.d"
  "/root/repo/src/sched/Database.cpp" "CMakeFiles/daisy.dir/src/sched/Database.cpp.o" "gcc" "CMakeFiles/daisy.dir/src/sched/Database.cpp.o.d"
  "/root/repo/src/sched/Embedding.cpp" "CMakeFiles/daisy.dir/src/sched/Embedding.cpp.o" "gcc" "CMakeFiles/daisy.dir/src/sched/Embedding.cpp.o.d"
  "/root/repo/src/sched/FrameworkModels.cpp" "CMakeFiles/daisy.dir/src/sched/FrameworkModels.cpp.o" "gcc" "CMakeFiles/daisy.dir/src/sched/FrameworkModels.cpp.o.d"
  "/root/repo/src/sched/Idiom.cpp" "CMakeFiles/daisy.dir/src/sched/Idiom.cpp.o" "gcc" "CMakeFiles/daisy.dir/src/sched/Idiom.cpp.o.d"
  "/root/repo/src/sched/Recipe.cpp" "CMakeFiles/daisy.dir/src/sched/Recipe.cpp.o" "gcc" "CMakeFiles/daisy.dir/src/sched/Recipe.cpp.o.d"
  "/root/repo/src/sched/Schedulers.cpp" "CMakeFiles/daisy.dir/src/sched/Schedulers.cpp.o" "gcc" "CMakeFiles/daisy.dir/src/sched/Schedulers.cpp.o.d"
  "/root/repo/src/sched/Search.cpp" "CMakeFiles/daisy.dir/src/sched/Search.cpp.o" "gcc" "CMakeFiles/daisy.dir/src/sched/Search.cpp.o.d"
  "/root/repo/src/support/Random.cpp" "CMakeFiles/daisy.dir/src/support/Random.cpp.o" "gcc" "CMakeFiles/daisy.dir/src/support/Random.cpp.o.d"
  "/root/repo/src/support/Statistics.cpp" "CMakeFiles/daisy.dir/src/support/Statistics.cpp.o" "gcc" "CMakeFiles/daisy.dir/src/support/Statistics.cpp.o.d"
  "/root/repo/src/support/StringUtils.cpp" "CMakeFiles/daisy.dir/src/support/StringUtils.cpp.o" "gcc" "CMakeFiles/daisy.dir/src/support/StringUtils.cpp.o.d"
  "/root/repo/src/transform/Cse.cpp" "CMakeFiles/daisy.dir/src/transform/Cse.cpp.o" "gcc" "CMakeFiles/daisy.dir/src/transform/Cse.cpp.o.d"
  "/root/repo/src/transform/Distribute.cpp" "CMakeFiles/daisy.dir/src/transform/Distribute.cpp.o" "gcc" "CMakeFiles/daisy.dir/src/transform/Distribute.cpp.o.d"
  "/root/repo/src/transform/Fuse.cpp" "CMakeFiles/daisy.dir/src/transform/Fuse.cpp.o" "gcc" "CMakeFiles/daisy.dir/src/transform/Fuse.cpp.o.d"
  "/root/repo/src/transform/Parallelize.cpp" "CMakeFiles/daisy.dir/src/transform/Parallelize.cpp.o" "gcc" "CMakeFiles/daisy.dir/src/transform/Parallelize.cpp.o.d"
  "/root/repo/src/transform/Permute.cpp" "CMakeFiles/daisy.dir/src/transform/Permute.cpp.o" "gcc" "CMakeFiles/daisy.dir/src/transform/Permute.cpp.o.d"
  "/root/repo/src/transform/Tile.cpp" "CMakeFiles/daisy.dir/src/transform/Tile.cpp.o" "gcc" "CMakeFiles/daisy.dir/src/transform/Tile.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
