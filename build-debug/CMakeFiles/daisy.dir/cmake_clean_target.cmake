file(REMOVE_RECURSE
  "libdaisy.a"
)
