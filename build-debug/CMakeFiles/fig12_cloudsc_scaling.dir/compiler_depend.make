# Empty compiler generated dependencies file for fig12_cloudsc_scaling.
# This may be replaced when dependencies are built.
