file(REMOVE_RECURSE
  "CMakeFiles/fig12_cloudsc_scaling.dir/bench/fig12_cloudsc_scaling.cpp.o"
  "CMakeFiles/fig12_cloudsc_scaling.dir/bench/fig12_cloudsc_scaling.cpp.o.d"
  "fig12_cloudsc_scaling"
  "fig12_cloudsc_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_cloudsc_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
