# Empty compiler generated dependencies file for ExecPlanTest.
# This may be replaced when dependencies are built.
