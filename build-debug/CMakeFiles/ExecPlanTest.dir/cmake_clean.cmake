file(REMOVE_RECURSE
  "CMakeFiles/ExecPlanTest.dir/tests/ExecPlanTest.cpp.o"
  "CMakeFiles/ExecPlanTest.dir/tests/ExecPlanTest.cpp.o.d"
  "ExecPlanTest"
  "ExecPlanTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ExecPlanTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
