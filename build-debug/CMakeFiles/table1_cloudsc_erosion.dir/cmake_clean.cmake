file(REMOVE_RECURSE
  "CMakeFiles/table1_cloudsc_erosion.dir/bench/table1_cloudsc_erosion.cpp.o"
  "CMakeFiles/table1_cloudsc_erosion.dir/bench/table1_cloudsc_erosion.cpp.o.d"
  "table1_cloudsc_erosion"
  "table1_cloudsc_erosion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_cloudsc_erosion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
