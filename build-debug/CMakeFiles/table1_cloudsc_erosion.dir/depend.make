# Empty dependencies file for table1_cloudsc_erosion.
# This may be replaced when dependencies are built.
