file(REMOVE_RECURSE
  "CMakeFiles/FrontendsTest.dir/tests/FrontendsTest.cpp.o"
  "CMakeFiles/FrontendsTest.dir/tests/FrontendsTest.cpp.o.d"
  "FrontendsTest"
  "FrontendsTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/FrontendsTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
