# Empty compiler generated dependencies file for FrontendsTest.
# This may be replaced when dependencies are built.
