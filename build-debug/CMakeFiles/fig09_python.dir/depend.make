# Empty dependencies file for fig09_python.
# This may be replaced when dependencies are built.
