file(REMOVE_RECURSE
  "CMakeFiles/fig09_python.dir/bench/fig09_python.cpp.o"
  "CMakeFiles/fig09_python.dir/bench/fig09_python.cpp.o.d"
  "fig09_python"
  "fig09_python.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_python.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
