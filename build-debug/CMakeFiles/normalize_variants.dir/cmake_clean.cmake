file(REMOVE_RECURSE
  "CMakeFiles/normalize_variants.dir/examples/normalize_variants.cpp.o"
  "CMakeFiles/normalize_variants.dir/examples/normalize_variants.cpp.o.d"
  "normalize_variants"
  "normalize_variants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/normalize_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
