# Empty compiler generated dependencies file for normalize_variants.
# This may be replaced when dependencies are built.
