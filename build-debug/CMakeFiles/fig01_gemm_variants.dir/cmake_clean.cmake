file(REMOVE_RECURSE
  "CMakeFiles/fig01_gemm_variants.dir/bench/fig01_gemm_variants.cpp.o"
  "CMakeFiles/fig01_gemm_variants.dir/bench/fig01_gemm_variants.cpp.o.d"
  "fig01_gemm_variants"
  "fig01_gemm_variants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_gemm_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
