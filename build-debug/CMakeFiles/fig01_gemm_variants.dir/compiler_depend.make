# Empty compiler generated dependencies file for fig01_gemm_variants.
# This may be replaced when dependencies are built.
