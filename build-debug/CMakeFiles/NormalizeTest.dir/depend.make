# Empty dependencies file for NormalizeTest.
# This may be replaced when dependencies are built.
