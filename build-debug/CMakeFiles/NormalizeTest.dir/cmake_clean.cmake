file(REMOVE_RECURSE
  "CMakeFiles/NormalizeTest.dir/tests/NormalizeTest.cpp.o"
  "CMakeFiles/NormalizeTest.dir/tests/NormalizeTest.cpp.o.d"
  "NormalizeTest"
  "NormalizeTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/NormalizeTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
