file(REMOVE_RECURSE
  "CMakeFiles/transfer_tuning.dir/examples/transfer_tuning.cpp.o"
  "CMakeFiles/transfer_tuning.dir/examples/transfer_tuning.cpp.o.d"
  "transfer_tuning"
  "transfer_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transfer_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
