# Empty compiler generated dependencies file for transfer_tuning.
# This may be replaced when dependencies are built.
