# Empty compiler generated dependencies file for fig11_cloudsc_full.
# This may be replaced when dependencies are built.
