file(REMOVE_RECURSE
  "CMakeFiles/fig11_cloudsc_full.dir/bench/fig11_cloudsc_full.cpp.o"
  "CMakeFiles/fig11_cloudsc_full.dir/bench/fig11_cloudsc_full.cpp.o.d"
  "fig11_cloudsc_full"
  "fig11_cloudsc_full.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_cloudsc_full.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
