file(REMOVE_RECURSE
  "CMakeFiles/fig06_ab_robustness.dir/bench/fig06_ab_robustness.cpp.o"
  "CMakeFiles/fig06_ab_robustness.dir/bench/fig06_ab_robustness.cpp.o.d"
  "fig06_ab_robustness"
  "fig06_ab_robustness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_ab_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
