# Empty compiler generated dependencies file for fig06_ab_robustness.
# This may be replaced when dependencies are built.
