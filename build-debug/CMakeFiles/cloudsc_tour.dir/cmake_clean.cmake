file(REMOVE_RECURSE
  "CMakeFiles/cloudsc_tour.dir/examples/cloudsc_tour.cpp.o"
  "CMakeFiles/cloudsc_tour.dir/examples/cloudsc_tour.cpp.o.d"
  "cloudsc_tour"
  "cloudsc_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloudsc_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
