# Empty dependencies file for cloudsc_tour.
# This may be replaced when dependencies are built.
