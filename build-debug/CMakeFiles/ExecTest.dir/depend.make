# Empty dependencies file for ExecTest.
# This may be replaced when dependencies are built.
