file(REMOVE_RECURSE
  "CMakeFiles/ExecTest.dir/tests/ExecTest.cpp.o"
  "CMakeFiles/ExecTest.dir/tests/ExecTest.cpp.o.d"
  "ExecTest"
  "ExecTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ExecTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
