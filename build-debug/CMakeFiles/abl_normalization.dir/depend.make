# Empty dependencies file for abl_normalization.
# This may be replaced when dependencies are built.
