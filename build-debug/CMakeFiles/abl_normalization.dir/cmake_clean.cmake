file(REMOVE_RECURSE
  "CMakeFiles/abl_normalization.dir/bench/abl_normalization.cpp.o"
  "CMakeFiles/abl_normalization.dir/bench/abl_normalization.cpp.o.d"
  "abl_normalization"
  "abl_normalization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_normalization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
