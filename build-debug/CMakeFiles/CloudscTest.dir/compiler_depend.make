# Empty compiler generated dependencies file for CloudscTest.
# This may be replaced when dependencies are built.
