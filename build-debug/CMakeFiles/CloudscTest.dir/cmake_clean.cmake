file(REMOVE_RECURSE
  "CMakeFiles/CloudscTest.dir/tests/CloudscTest.cpp.o"
  "CMakeFiles/CloudscTest.dir/tests/CloudscTest.cpp.o.d"
  "CloudscTest"
  "CloudscTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/CloudscTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
