file(REMOVE_RECURSE
  "CMakeFiles/micro_passes.dir/bench/micro_passes.cpp.o"
  "CMakeFiles/micro_passes.dir/bench/micro_passes.cpp.o.d"
  "micro_passes"
  "micro_passes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_passes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
