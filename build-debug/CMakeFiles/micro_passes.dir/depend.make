# Empty dependencies file for micro_passes.
# This may be replaced when dependencies are built.
