file(REMOVE_RECURSE
  "CMakeFiles/fig07_ablation.dir/bench/fig07_ablation.cpp.o"
  "CMakeFiles/fig07_ablation.dir/bench/fig07_ablation.cpp.o.d"
  "fig07_ablation"
  "fig07_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
