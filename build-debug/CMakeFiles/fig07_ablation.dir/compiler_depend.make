# Empty compiler generated dependencies file for fig07_ablation.
# This may be replaced when dependencies are built.
