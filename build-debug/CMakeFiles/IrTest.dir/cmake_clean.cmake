file(REMOVE_RECURSE
  "CMakeFiles/IrTest.dir/tests/IrTest.cpp.o"
  "CMakeFiles/IrTest.dir/tests/IrTest.cpp.o.d"
  "IrTest"
  "IrTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/IrTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
