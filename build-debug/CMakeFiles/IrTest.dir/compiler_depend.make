# Empty compiler generated dependencies file for IrTest.
# This may be replaced when dependencies are built.
