# Empty dependencies file for TransformTest.
# This may be replaced when dependencies are built.
