file(REMOVE_RECURSE
  "CMakeFiles/TransformTest.dir/tests/TransformTest.cpp.o"
  "CMakeFiles/TransformTest.dir/tests/TransformTest.cpp.o.d"
  "TransformTest"
  "TransformTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/TransformTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
