# CMake generated Testfile for 
# Source directory: /root/repo
# Build directory: /root/repo/build-debug
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(AnalysisTest "/root/repo/build-debug/AnalysisTest")
set_tests_properties(AnalysisTest PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;34;add_test;/root/repo/CMakeLists.txt;0;")
add_test(CloudscTest "/root/repo/build-debug/CloudscTest")
set_tests_properties(CloudscTest PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;34;add_test;/root/repo/CMakeLists.txt;0;")
add_test(ExecPlanTest "/root/repo/build-debug/ExecPlanTest")
set_tests_properties(ExecPlanTest PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;34;add_test;/root/repo/CMakeLists.txt;0;")
add_test(ExecTest "/root/repo/build-debug/ExecTest")
set_tests_properties(ExecTest PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;34;add_test;/root/repo/CMakeLists.txt;0;")
add_test(FrontendsTest "/root/repo/build-debug/FrontendsTest")
set_tests_properties(FrontendsTest PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;34;add_test;/root/repo/CMakeLists.txt;0;")
add_test(IrTest "/root/repo/build-debug/IrTest")
set_tests_properties(IrTest PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;34;add_test;/root/repo/CMakeLists.txt;0;")
add_test(MachineTest "/root/repo/build-debug/MachineTest")
set_tests_properties(MachineTest PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;34;add_test;/root/repo/CMakeLists.txt;0;")
add_test(NormalizeTest "/root/repo/build-debug/NormalizeTest")
set_tests_properties(NormalizeTest PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;34;add_test;/root/repo/CMakeLists.txt;0;")
add_test(SchedTest "/root/repo/build-debug/SchedTest")
set_tests_properties(SchedTest PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;34;add_test;/root/repo/CMakeLists.txt;0;")
add_test(SupportTest "/root/repo/build-debug/SupportTest")
set_tests_properties(SupportTest PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;34;add_test;/root/repo/CMakeLists.txt;0;")
add_test(TransformTest "/root/repo/build-debug/TransformTest")
set_tests_properties(TransformTest PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;34;add_test;/root/repo/CMakeLists.txt;0;")
