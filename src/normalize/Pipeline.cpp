//===- normalize/Pipeline.cpp ---------------------------------------------==//
//
// Part of the daisy project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "normalize/Pipeline.h"

using namespace daisy;

Program daisy::normalize(const Program &Prog,
                         const NormalizationOptions &Options,
                         NormalizationStats *Stats) {
  Program Result = Prog.clone();
  NormalizationStats Local;
  if (Options.EnableFission)
    Local.Fission = maximalLoopFission(Result);
  if (Options.EnableStrideMinimization)
    Local.StrideMin = minimizeStrides(Result, Options.StrideMin);
  if (Stats)
    *Stats = Local;
  return Result;
}
