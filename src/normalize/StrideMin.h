//===- normalize/StrideMin.h - Stride minimization pass ----------*- C++ -*-=//
//
// Part of the daisy project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The second normalization criterion (paper §2.2): stride minimization.
///
/// Each (atomic) loop nest is replaced by its legal permutation with the
/// minimal stride cost. For bands up to a configurable depth the minimum
/// is found by enumerating all permutations ("the minimum can simply be
/// found by enumeration for many practically-relevant loop nests"); deeper
/// bands fall back to legality-checked adjacent-swap sorting ("for deep
/// loop nests, we propose to sort groups of iterators as an
/// approximation").
///
//===----------------------------------------------------------------------===//

#ifndef DAISY_NORMALIZE_STRIDEMIN_H
#define DAISY_NORMALIZE_STRIDEMIN_H

#include "ir/Program.h"

namespace daisy {

/// Options for the stride minimization pass.
struct StrideMinOptions {
  /// Bands up to this depth are permuted by full enumeration; deeper bands
  /// use the adjacent-swap sorting approximation.
  int MaxEnumerationDepth = 6;
  /// If true, use the out-of-order-count criterion instead of the
  /// sum-of-strides criterion (the paper's fallback for symbolic shapes;
  /// also exercised by the ablation bench).
  bool UseOutOfOrderCriterion = false;
};

/// Statistics reported by the pass.
struct StrideMinStats {
  int NestsPermuted = 0;
  int NestsVisited = 0;
  int EnumeratedPermutations = 0;
};

/// Replaces every nest in \p Prog with its minimal-stride legal
/// permutation (in place; opaque nests are skipped).
StrideMinStats minimizeStrides(Program &Prog,
                               const StrideMinOptions &Options = {});

/// Permutes a single nest (and, recursively, the perfect bands below it).
/// Returns the rewritten nest.
NodePtr minimizeStridesInNest(const NodePtr &Root, const Program &Prog,
                              const StrideMinOptions &Options,
                              StrideMinStats &Stats);

} // namespace daisy

#endif // DAISY_NORMALIZE_STRIDEMIN_H
