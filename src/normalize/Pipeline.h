//===- normalize/Pipeline.h - The normalization pipeline ---------*- C++ -*-=//
//
// Part of the daisy project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The a priori loop nest normalization pipeline (paper Fig. 5): maximal
/// loop fission to a fixed point, then stride minimization on every
/// resulting atomic nest.
///
//===----------------------------------------------------------------------===//

#ifndef DAISY_NORMALIZE_PIPELINE_H
#define DAISY_NORMALIZE_PIPELINE_H

#include "normalize/Fission.h"
#include "normalize/StrideMin.h"

namespace daisy {

/// Configuration of the pipeline (both criteria enabled by default; the
/// ablation bench toggles them).
struct NormalizationOptions {
  bool EnableFission = true;
  bool EnableStrideMinimization = true;
  StrideMinOptions StrideMin;
};

/// Summary of one pipeline run.
struct NormalizationStats {
  FissionStats Fission;
  StrideMinStats StrideMin;
};

/// Runs the pipeline on a copy of \p Prog and returns the normalized
/// program. \p Stats (optional) receives the pass statistics.
Program normalize(const Program &Prog,
                  const NormalizationOptions &Options = {},
                  NormalizationStats *Stats = nullptr);

} // namespace daisy

#endif // DAISY_NORMALIZE_PIPELINE_H
