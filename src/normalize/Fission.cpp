//===- normalize/Fission.cpp ----------------------------------------------==//
//
// Part of the daisy project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "normalize/Fission.h"

#include "analysis/Legality.h"
#include "ir/StructuralHash.h"
#include "transform/Distribute.h"

using namespace daisy;

namespace {

/// One fission step on a loop: expand scalars, distribute into SCC groups,
/// then recurse into the bodies of the resulting loops.
std::vector<NodePtr> fissionLoopOnce(const std::shared_ptr<Loop> &L,
                                     Program &Prog, FissionStats &Stats) {
  if (L->isOpaque())
    return {L->clone()};

  std::shared_ptr<Loop> Expanded = expandScalars(L, Prog);
  if (Expanded != L)
    ++Stats.ScalarsExpanded;

  std::vector<std::vector<size_t>> Groups =
      distributionGroups(*Expanded, Prog.params());
  std::vector<NodePtr> Pieces;
  if (Groups.size() > 1) {
    ++Stats.LoopsDistributed;
    Pieces = distributeLoop(Expanded, Groups);
  } else {
    Pieces.push_back(Expanded->clone());
  }

  // Recurse into each piece's body.
  std::vector<NodePtr> Result;
  for (NodePtr &Piece : Pieces) {
    auto PieceLoop = std::static_pointer_cast<Loop>(Piece);
    std::vector<NodePtr> NewBody;
    for (const NodePtr &Child : PieceLoop->body()) {
      if (auto ChildLoop = std::dynamic_pointer_cast<Loop>(Child)) {
        for (NodePtr &Sub : fissionLoopOnce(ChildLoop, Prog, Stats))
          NewBody.push_back(std::move(Sub));
      } else {
        NewBody.push_back(Child->clone());
      }
    }
    PieceLoop->body() = std::move(NewBody);
    Result.push_back(std::move(Piece));
  }
  return Result;
}

} // namespace

std::vector<NodePtr> daisy::fissionNest(const NodePtr &Root, Program &Prog,
                                        FissionStats &Stats) {
  if (auto L = std::dynamic_pointer_cast<Loop>(Root))
    return fissionLoopOnce(L, Prog, Stats);
  return {Root->clone()};
}

FissionStats daisy::maximalLoopFission(Program &Prog) {
  FissionStats Stats;
  // Fixed-point pipeline (paper §3.2): fission only ever splits loops into
  // smaller loops, so iterating to an unchanged hash terminates.
  constexpr int MaxIterations = 8;
  for (int Iter = 0; Iter < MaxIterations; ++Iter) {
    ++Stats.Iterations;
    uint64_t Before = structuralHash(Prog);
    std::vector<NodePtr> NewTop;
    for (const NodePtr &Node : Prog.topLevel())
      for (NodePtr &Piece : fissionNest(Node, Prog, Stats))
        NewTop.push_back(std::move(Piece));
    Prog.topLevel() = std::move(NewTop);
    if (structuralHash(Prog) == Before)
      break;
  }
  return Stats;
}
