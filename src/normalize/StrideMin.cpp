//===- normalize/StrideMin.cpp --------------------------------------------==//
//
// Part of the daisy project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "normalize/StrideMin.h"

#include "analysis/Legality.h"
#include "analysis/Stride.h"
#include "transform/Permute.h"

#include <algorithm>

using namespace daisy;

namespace {

double nestCost(const NodePtr &Root, const Program &Prog,
                const StrideMinOptions &Options) {
  if (Options.UseOutOfOrderCriterion)
    return static_cast<double>(outOfOrderCount(Root, Prog));
  return sumOfStridesCost(Root, Prog);
}

/// Finds the minimal-cost legal permutation of \p Root's perfect band by
/// full enumeration. Ties break toward the lexicographically smallest
/// order w.r.t. the original iterator sequence, making the pass
/// deterministic and idempotent.
NodePtr enumerateBest(const NodePtr &Root, const Program &Prog,
                      const StrideMinOptions &Options,
                      StrideMinStats &Stats) {
  std::vector<std::shared_ptr<Loop>> Band = perfectNestBand(Root);
  std::vector<std::string> Original;
  for (const auto &L : Band)
    Original.push_back(L->iterator());

  std::vector<std::string> Order = Original;
  std::sort(Order.begin(), Order.end());

  NodePtr Best;
  double BestCost = 0.0;
  std::vector<std::string> BestOrder;
  do {
    ++Stats.EnumeratedPermutations;
    if (!isPermutationLegal(Root, Order, Prog.params()))
      continue;
    NodePtr Candidate = applyPermutation(Root, Order);
    double Cost = nestCost(Candidate, Prog, Options);
    if (!Best || Cost < BestCost ||
        (Cost == BestCost && Order < BestOrder)) {
      Best = Candidate;
      BestCost = Cost;
      BestOrder = Order;
    }
  } while (std::next_permutation(Order.begin(), Order.end()));

  return Best ? Best : Root->clone();
}

/// Approximation for deep bands: repeatedly swap adjacent band loops when
/// the swap is legal and lowers the cost (an insertion-sort over iterator
/// groups).
NodePtr sortApproximation(const NodePtr &Root, const Program &Prog,
                          const StrideMinOptions &Options) {
  NodePtr Current = Root->clone();
  bool Changed = true;
  while (Changed) {
    Changed = false;
    std::vector<std::shared_ptr<Loop>> Band = perfectNestBand(Current);
    for (size_t I = 0; I + 1 < Band.size(); ++I) {
      std::vector<std::string> Order;
      for (const auto &L : Band)
        Order.push_back(L->iterator());
      std::swap(Order[I], Order[I + 1]);
      if (!isPermutationLegal(Current, Order, Prog.params()))
        continue;
      NodePtr Swapped = applyPermutation(Current, Order);
      if (nestCost(Swapped, Prog, Options) <
          nestCost(Current, Prog, Options)) {
        Current = Swapped;
        Changed = true;
        break;
      }
    }
  }
  return Current;
}

/// Recursion below the band: permute each loop child of the band's
/// innermost loop.
void recurseBelowBand(const NodePtr &Root, const Program &Prog,
                      const StrideMinOptions &Options,
                      StrideMinStats &Stats) {
  std::vector<std::shared_ptr<Loop>> Band = perfectNestBand(Root);
  if (Band.empty())
    return;
  auto &Innermost = Band.back();
  for (NodePtr &Child : Innermost->body())
    if (Child->kind() == NodeKind::Loop)
      Child = minimizeStridesInNest(Child, Prog, Options, Stats);
}

} // namespace

NodePtr daisy::minimizeStridesInNest(const NodePtr &Root,
                                     const Program &Prog,
                                     const StrideMinOptions &Options,
                                     StrideMinStats &Stats) {
  auto L = std::dynamic_pointer_cast<Loop>(Root);
  if (!L)
    return Root->clone();
  if (L->isOpaque())
    return Root->clone();
  ++Stats.NestsVisited;

  std::vector<std::shared_ptr<Loop>> Band = perfectNestBand(Root);
  NodePtr Result;
  if (Band.size() < 2) {
    Result = Root->clone();
  } else if (static_cast<int>(Band.size()) <= Options.MaxEnumerationDepth) {
    Result = enumerateBest(Root, Prog, Options, Stats);
  } else {
    Result = sortApproximation(Root, Prog, Options);
  }

  auto bandOrder = [](const NodePtr &Node) {
    std::vector<std::string> Order;
    for (const auto &L : perfectNestBand(Node))
      Order.push_back(L->iterator());
    return Order;
  };
  if (bandOrder(Result) != bandOrder(Root))
    ++Stats.NestsPermuted;
  recurseBelowBand(Result, Prog, Options, Stats);
  return Result;
}

StrideMinStats daisy::minimizeStrides(Program &Prog,
                                      const StrideMinOptions &Options) {
  StrideMinStats Stats;
  for (NodePtr &Node : Prog.topLevel())
    Node = minimizeStridesInNest(Node, Prog, Options, Stats);
  return Stats;
}
