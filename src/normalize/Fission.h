//===- normalize/Fission.h - Maximal loop fission pass -----------*- C++ -*-=//
//
// Part of the daisy project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The first normalization criterion (paper §2.1): maximal loop fission.
///
/// Every loop's body is distributed into the finest legal partition (the
/// strongly connected components of the body dependence graph), at every
/// nesting level, to a fixed point. Loop-local scalars are expanded to
/// transient arrays first so that independent computations communicating
/// through a scalar can be separated. The result is a sequence of "atomic"
/// loop nests whose bodies cannot be split further.
///
//===----------------------------------------------------------------------===//

#ifndef DAISY_NORMALIZE_FISSION_H
#define DAISY_NORMALIZE_FISSION_H

#include "ir/Program.h"

namespace daisy {

/// Statistics reported by the fission pass.
struct FissionStats {
  int LoopsDistributed = 0;
  int ScalarsExpanded = 0;
  int Iterations = 0;
};

/// Applies maximal loop fission to \p Prog in place (top-level sequence is
/// rewritten; opaque nests are skipped).
FissionStats maximalLoopFission(Program &Prog);

/// Fissions a single nest; returns the replacement sequence and updates
/// \p Prog with any transient arrays introduced by scalar expansion.
std::vector<NodePtr> fissionNest(const NodePtr &Root, Program &Prog,
                                 FissionStats &Stats);

} // namespace daisy

#endif // DAISY_NORMALIZE_FISSION_H
