//===- tune/Profile.h - Lock-free runtime profile collector ------*- C++ -*-=//
//
// Part of the daisy project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The measurement half of the online adaptive tuner (tune/Tuner.h): a
/// per-kernel, lock-free sampling ring fed from the Kernel::run /
/// runBatch hot paths.
///
/// Measuring every run would put two clock reads and a ring store on the
/// hottest path in the system, so the collector samples 1-in-SampleEvery
/// runs: the steady-state cost of an attached profile is one relaxed
/// fetch_add on the sampling tick, and only the sampled run pays the
/// steady_clock pair. Each sample packs (plan-version id, elapsed
/// nanoseconds) into a single atomic<uint64_t> ring cell, so readers can
/// never observe a torn sample — a racing overwrite yields either the old
/// or the new sample, both of which really happened.
///
/// The ring is also the probe window: it holds the most recent RingSize
/// samples across all plan versions, and snapshot() aggregates
/// count/mean/p50/p99 per version from exactly that window. The tuner
/// compares a candidate version's window against the incumbent's to make
/// the promote-or-rollback call.
///
//===----------------------------------------------------------------------===//

#ifndef DAISY_TUNE_PROFILE_H
#define DAISY_TUNE_PROFILE_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

namespace daisy {

/// Construction-time configuration of one kernel's profile collector.
struct ProfileOptions {
  /// Sampling period: run K is timed iff K % SampleEvery == 0. 1 times
  /// every run (tests / benchmarks); clamped to >= 1.
  uint32_t SampleEvery = 16;
  /// Capacity of the sample ring — the measurement window the tuner
  /// aggregates over. Clamped to >= 16.
  uint32_t RingSize = 1024;
};

/// One kernel's measurement state. Thread-safe throughout: any number of
/// running threads record concurrently with the tuner lane snapshotting.
class KernelProfile {
public:
  explicit KernelProfile(ProfileOptions Options = {});

  /// Hot-path gate: advances the run tick and returns whether this run
  /// should be timed. One relaxed fetch_add.
  bool shouldSample() const {
    return Tick.fetch_add(1, std::memory_order_relaxed) % SampleEvery == 0;
  }

  /// Records one timed run of plan version \p Version (0 = the base
  /// plan). \p Nanos is clamped into the 48-bit payload (overflow would
  /// need a 3-day kernel run).
  void record(uint32_t Version, uint64_t Nanos) const;

  /// Aggregate view of one plan version's samples currently in the ring.
  struct VersionStats {
    uint32_t Version = 0;
    uint64_t Count = 0;
    double MeanUs = 0.0;
    double P50Us = 0.0;
    double P99Us = 0.0;
    double TotalUs = 0.0;
  };

  /// Everything the tuner ranks and gates on, computed from one pass
  /// over the ring.
  struct Snapshot {
    std::vector<VersionStats> Versions; ///< Sorted by version id.
    uint64_t WindowCount = 0;           ///< Samples currently in the ring.
    double WindowTotalUs = 0.0;         ///< Sum over the window.
    uint64_t SampledCount = 0;          ///< Lifetime samples recorded.
    double SampledTotalUs = 0.0;        ///< Lifetime timed microseconds.

    /// The row of \p Version, or null when it has no samples in window.
    const VersionStats *versionStats(uint32_t Version) const {
      for (const VersionStats &V : Versions)
        if (V.Version == Version)
          return &V;
      return nullptr;
    }
  };

  /// Aggregates the current ring contents per version. Safe against
  /// concurrent record() calls: every cell read is a whole sample.
  Snapshot snapshot() const;

  /// Lifetime samples recorded (the tuner's hotness rank is lifetime
  /// timed microseconds — see snapshot().SampledTotalUs).
  uint64_t sampledCount() const {
    return Recorded.load(std::memory_order_relaxed);
  }
  double sampledTotalUs() const {
    return static_cast<double>(TotalNanos.load(std::memory_order_relaxed)) /
           1000.0;
  }

  uint32_t sampleEvery() const { return SampleEvery; }

private:
  const uint32_t SampleEvery;
  const uint32_t RingSize;

  /// Run counter driving the 1-in-SampleEvery gate.
  mutable std::atomic<uint64_t> Tick{0};
  /// Next ring cell to claim (monotonic; cell = Head % RingSize).
  mutable std::atomic<uint64_t> Head{0};
  /// Lifetime aggregates for hotness ranking (relaxed).
  mutable std::atomic<uint64_t> Recorded{0};
  mutable std::atomic<uint64_t> TotalNanos{0};
  /// Packed samples: bits 63..48 = version id, 47..0 = nanoseconds + 1
  /// (0 = empty cell, so a half-filled ring aggregates cleanly).
  std::unique_ptr<std::atomic<uint64_t>[]> Ring;
};

} // namespace daisy

#endif // DAISY_TUNE_PROFILE_H
