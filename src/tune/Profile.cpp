//===- tune/Profile.cpp ---------------------------------------------------==//
//
// Part of the daisy project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "tune/Profile.h"

#include <algorithm>

using namespace daisy;

namespace {

constexpr uint64_t NanosMask = (1ull << 48) - 1;

uint64_t packSample(uint32_t Version, uint64_t Nanos) {
  uint64_t Payload = std::min<uint64_t>(Nanos, NanosMask - 1) + 1;
  return (static_cast<uint64_t>(Version & 0xFFFF) << 48) | Payload;
}

/// Rank statistic over a sorted sample vector (nearest-rank; exact for
/// the small windows the ring holds).
double quantileUs(const std::vector<uint64_t> &SortedNanos, double Q) {
  if (SortedNanos.empty())
    return 0.0;
  size_t Rank = static_cast<size_t>(Q * static_cast<double>(
                                            SortedNanos.size() - 1));
  return static_cast<double>(SortedNanos[Rank]) / 1000.0;
}

} // namespace

KernelProfile::KernelProfile(ProfileOptions Options)
    : SampleEvery(std::max<uint32_t>(Options.SampleEvery, 1)),
      RingSize(std::max<uint32_t>(Options.RingSize, 16)),
      Ring(new std::atomic<uint64_t>[RingSize]) {
  for (uint32_t I = 0; I < RingSize; ++I)
    Ring[I].store(0, std::memory_order_relaxed);
}

void KernelProfile::record(uint32_t Version, uint64_t Nanos) const {
  uint64_t Slot = Head.fetch_add(1, std::memory_order_relaxed) % RingSize;
  Ring[Slot].store(packSample(Version, Nanos), std::memory_order_relaxed);
  Recorded.fetch_add(1, std::memory_order_relaxed);
  TotalNanos.fetch_add(Nanos, std::memory_order_relaxed);
}

KernelProfile::Snapshot KernelProfile::snapshot() const {
  Snapshot S;
  S.SampledCount = Recorded.load(std::memory_order_relaxed);
  S.SampledTotalUs = sampledTotalUs();
  // Per-version nanosecond samples collected from one ring pass. The
  // version population is tiny (base + the handful of probes a kernel
  // ever sees), so a flat search per sample beats a map.
  std::vector<uint32_t> Ids;
  std::vector<std::vector<uint64_t>> Samples;
  for (uint32_t I = 0; I < RingSize; ++I) {
    uint64_t Cell = Ring[I].load(std::memory_order_relaxed);
    if (Cell == 0)
      continue; // Never written.
    uint32_t Version = static_cast<uint32_t>(Cell >> 48);
    uint64_t Nanos = (Cell & NanosMask) - 1;
    size_t Idx = Ids.size();
    for (size_t J = 0; J < Ids.size(); ++J)
      if (Ids[J] == Version) {
        Idx = J;
        break;
      }
    if (Idx == Ids.size()) {
      Ids.push_back(Version);
      Samples.emplace_back();
    }
    Samples[Idx].push_back(Nanos);
    ++S.WindowCount;
    S.WindowTotalUs += static_cast<double>(Nanos) / 1000.0;
  }
  for (size_t J = 0; J < Ids.size(); ++J) {
    std::vector<uint64_t> &Nanos = Samples[J];
    std::sort(Nanos.begin(), Nanos.end());
    VersionStats V;
    V.Version = Ids[J];
    V.Count = Nanos.size();
    uint64_t Total = 0;
    for (uint64_t N : Nanos)
      Total += N;
    V.TotalUs = static_cast<double>(Total) / 1000.0;
    V.MeanUs = V.TotalUs / static_cast<double>(V.Count);
    V.P50Us = quantileUs(Nanos, 0.5);
    V.P99Us = quantileUs(Nanos, 0.99);
    S.Versions.push_back(V);
  }
  std::sort(S.Versions.begin(), S.Versions.end(),
            [](const VersionStats &A, const VersionStats &B) {
              return A.Version < B.Version;
            });
  return S;
}
