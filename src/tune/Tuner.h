//===- tune/Tuner.h - Online adaptive tuning lane ----------------*- C++ -*-=//
//
// Part of the daisy project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The decision half of the online adaptive tuner — the closed loop the
/// paper's transfer tuning was always pointing at, taken to production:
///
///   measure -> calibrate -> re-search -> probe -> promote or roll back
///
/// Every kernel an Engine compiles under EngineOptions::OnlineTuning
/// carries a KernelProfile (tune/Profile.h) sampling measured runtimes
/// from live traffic. The tuner lane periodically
///
/// 1. ranks tracked kernels by total measured time and picks the top K
///    with enough samples;
/// 2. calibrates the machine-model simulator against reality — one
///    measured/simulated scale factor per routing key, recorded into the
///    TransferTuningDatabase so checkpoints persist it across restarts;
/// 3. re-runs the scheduling pipeline (normalize, BLAS idioms, transfer
///    tuning against the database as seeded *now*) on the kernel's base
///    program and compiles the candidate plan off the hot path;
/// 4. gates the candidate on calibrated predicted gain AND
///    semanticallyEquivalent bit-identity (Eps = 0.0: the swapped plan
///    must produce byte-for-byte the results of the base program), then
///    installs it as a *probe* behind the live Kernel handles
///    (KernelImpl's versioned swap point — no rebinding, existing
///    BoundArgs keep working);
/// 5. once the probe has MinSamples measured runs, promotes it when the
///    measured gain is >= MinGainPct, or rolls back to the prior plan —
///    the circuit-breaker shape: probe, then commit or revert, plus a
///    cooldown before the same kernel is retried and a rejected-candidate
///    memory so a failed plan is not re-proposed every cycle.
///
/// Counters: Engine.TuneProbes / TuneSwaps / TuneRollbacks /
/// TuneCalibrations / TuneRejects. The "tune.promote" fail point forces
/// the promote decision to see a regression, driving rollback
/// deterministically in tests.
///
/// Layering: tune/ sits beside api/ — this header is included by
/// api/Engine.h (for OnlineTuningOptions and the owned lane) and sees
/// Engine/KernelImpl only as forward declarations; the .cpp includes the
/// api headers.
///
//===----------------------------------------------------------------------===//

#ifndef DAISY_TUNE_TUNER_H
#define DAISY_TUNE_TUNER_H

#include "ir/Program.h"
#include "tune/Profile.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace daisy {

class Engine;
class KernelImpl;

/// Configuration of an Engine's online tuning loop
/// (EngineOptions::OnlineTuning).
struct OnlineTuningOptions {
  /// Master switch. Off (the default) attaches no profiles and starts no
  /// lane: compiled kernels are exactly the pre-tuning kernels.
  bool Enable = false;
  /// Background cycle cadence. 0 starts no thread — cycles then run only
  /// when the owner calls OnlineTuner::runCycle() explicitly, the
  /// deterministic mode tests and benchmarks drive.
  std::chrono::microseconds Interval{0};
  /// Runtime sampling period of each kernel's profile: 1-in-SampleEvery
  /// runs is timed (tune/Profile.h). 1 times every run.
  uint32_t SampleEvery = 16;
  /// Capacity of each kernel's sample ring (the probe window).
  uint32_t RingSize = 1024;
  /// Measured samples a kernel (and later its probe version) must have
  /// before the tuner acts on it.
  uint32_t MinSamples = 32;
  /// Promotion gate: measured mean gain of the probe over the prior
  /// plan, in percent. A probe below it is rolled back. Negative values
  /// promote even regressions (test/bench forcing).
  double MinGainPct = 3.0;
  /// Hot kernels re-searched per cycle.
  size_t TopK = 4;
  /// Cycles a kernel sits out after a rollback before being retried.
  uint32_t CooldownCycles = 4;
  /// Seed of the bit-identity check's deterministic input fill.
  uint64_t EquivalenceSeed = 1;
};

/// The background tuner lane owned by an Engine. Thread-safe: the
/// serving threads register kernels through Engine::compile while the
/// lane (or an explicit runCycle caller) tunes.
class OnlineTuner {
public:
  OnlineTuner(Engine &Owner, OnlineTuningOptions Options);
  ~OnlineTuner();
  OnlineTuner(const OnlineTuner &) = delete;
  OnlineTuner &operator=(const OnlineTuner &) = delete;

  /// Starts the background lane (no-op when Interval is 0).
  void start();

  /// Stops and joins the background lane; no cycle is running on return.
  /// Idempotent. The registry and counters survive — runCycle() still
  /// works after stop().
  void stop();

  /// Blocks until any in-flight cycle completes (the serving runtime's
  /// drain barrier: after drainTuning, calibration recorded so far is
  /// checkpoint-visible).
  void drain();

  /// Tracks a freshly compiled kernel under its routing key. Re-register
  /// of the same key (plan-cache eviction recompiled it) rebinds the
  /// entry to the new instance and abandons any in-flight probe state —
  /// the old impl keeps its plan until the last handle drops.
  void registerKernel(uint64_t RoutingKey,
                      std::shared_ptr<const KernelImpl> Impl);

  /// One tuning cycle: rank, calibrate, re-search, probe, decide.
  /// Serialized against itself and the background lane. Returns the
  /// number of actions taken (probes installed + promotes + rollbacks).
  size_t runCycle();

  /// Point-in-time counters (per engine, unlike the process-global
  /// Engine.Tune* statistics — serve::Server::health reads these).
  struct Stats {
    bool Enabled = false;
    size_t Tracked = 0;       ///< Live kernels in the registry.
    size_t ProbesInFlight = 0;///< Installed, awaiting a decision.
    int64_t Cycles = 0;
    int64_t Probes = 0;
    int64_t Swaps = 0;
    int64_t Rollbacks = 0;
    int64_t Rejects = 0;      ///< Candidates killed by a gate.
    int64_t Calibrations = 0; ///< Scale factors recorded.
  };
  Stats stats() const;

  const OnlineTuningOptions &options() const { return Opts; }

private:
  /// Registry row of one tracked kernel. All fields are guarded by
  /// RegMutex; the heavy work of a cycle runs on local copies.
  struct Entry {
    std::weak_ptr<const KernelImpl> Impl;
    Program Base;         ///< Base program snapshot (re-search input).
    uint64_t CurrentHash = 0; ///< routingKey of the running plan's program.
    bool Probing = false;
    uint32_t ProbeId = 0;
    uint64_t CandidateHash = 0;
    double PriorMeanUs = 0.0; ///< Incumbent's measured mean at install.
    uint32_t Cooldown = 0;    ///< Cycles left before retrying.
    std::unordered_set<uint64_t> RejectedHashes;
  };

  /// Attempts calibrate + re-search + probe-install for \p Key. Returns
  /// true when a probe was installed.
  bool tryImprove(uint64_t Key, const std::shared_ptr<const KernelImpl> &Impl);

  /// Promote-or-rollback decision for \p Key's in-flight probe. Returns
  /// true when a decision was made (either way).
  bool decideProbe(uint64_t Key, const std::shared_ptr<const KernelImpl> &Impl);

  void laneLoop();

  Engine &Owner;
  const OnlineTuningOptions Opts;

  mutable std::mutex RegMutex;
  std::unordered_map<uint64_t, Entry> Registry;

  /// Held for the duration of every cycle: serializes runCycle against
  /// the lane and gives drain() its barrier.
  std::mutex CycleMutex;

  std::atomic<int64_t> NCycles{0}, NProbes{0}, NSwaps{0}, NRollbacks{0},
      NRejects{0}, NCalibrations{0};

  std::mutex LaneMutex;
  std::condition_variable LaneCV;
  bool LaneStop = false;
  std::thread Lane; ///< Last member: joined before the rest tears down.
};

} // namespace daisy

#endif // DAISY_TUNE_TUNER_H
