//===- tune/Tuner.cpp -----------------------------------------------------==//
//
// Part of the daisy project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "tune/Tuner.h"

#include "api/Engine.h"
#include "api/KernelImpl.h"
#include "exec/Interpreter.h"
#include "machine/Simulator.h"
#include "obs/Trace.h"
#include "support/FailPoint.h"
#include "support/Statistics.h"

#include <algorithm>
#include <utility>

using namespace daisy;

namespace {

/// Builds the version-slot -> base-slot translation for running a
/// candidate program on argument tables prepared against \p Base. Every
/// candidate non-transient must match a base non-transient by name with
/// the exact element count, and every base non-transient must be covered
/// exactly once — anything else returns false and the candidate is
/// rejected (a plan that cannot see all caller buffers cannot substitute
/// for the base plan). \p Map comes back empty for an index-identical
/// layout (the common case: scheduling reorders loops, not arrays),
/// which the run path treats as the identity mapping.
bool buildSlotMap(const Program &Base, const Program &Candidate,
                  std::vector<int32_t> &Map) {
  const std::vector<ArrayDecl> &BaseArrays = Base.arrays();
  const std::vector<ArrayDecl> &CandArrays = Candidate.arrays();
  Map.assign(CandArrays.size(), -1);
  std::vector<char> Covered(BaseArrays.size(), 0);
  for (size_t S = 0; S < CandArrays.size(); ++S) {
    const ArrayDecl &Decl = CandArrays[S];
    if (Decl.Transient)
      continue; // Version-local scratch; stays -1.
    size_t B = BaseArrays.size();
    for (size_t I = 0; I < BaseArrays.size(); ++I)
      if (BaseArrays[I].Name == Decl.Name) {
        B = I;
        break;
      }
    if (B == BaseArrays.size() || BaseArrays[B].Transient || Covered[B] ||
        boundElementCount(BaseArrays[B]) != boundElementCount(Decl))
      return false;
    Covered[B] = 1;
    Map[S] = static_cast<int32_t>(B);
  }
  for (size_t I = 0; I < BaseArrays.size(); ++I)
    if (!BaseArrays[I].Transient && !Covered[I])
      return false;
  // Identity shortcut: same slot count and every slot maps to itself
  // (transients of an identical layout are -1 but positionally equal).
  if (CandArrays.size() == BaseArrays.size()) {
    bool Identity = true;
    for (size_t S = 0; S < CandArrays.size() && Identity; ++S)
      Identity = Map[S] == static_cast<int32_t>(S) ||
                 (Map[S] == -1 && BaseArrays[S].Transient);
    if (Identity) {
      Map.clear();
      return true;
    }
  }
  return true;
}

} // namespace

OnlineTuner::OnlineTuner(Engine &Owner, OnlineTuningOptions Options)
    : Owner(Owner), Opts(std::move(Options)) {}

OnlineTuner::~OnlineTuner() { stop(); }

void OnlineTuner::start() {
  if (Opts.Interval.count() <= 0 || Lane.joinable())
    return;
  LaneStop = false;
  Lane = std::thread([this] { laneLoop(); });
}

void OnlineTuner::stop() {
  {
    std::lock_guard<std::mutex> Lock(LaneMutex);
    LaneStop = true;
  }
  LaneCV.notify_all();
  if (Lane.joinable())
    Lane.join();
}

void OnlineTuner::drain() {
  // A cycle holds CycleMutex for its whole duration; acquiring it is the
  // "no cycle in flight" barrier.
  std::lock_guard<std::mutex> Lock(CycleMutex);
}

void OnlineTuner::laneLoop() {
  std::unique_lock<std::mutex> Lock(LaneMutex);
  while (!LaneStop) {
    LaneCV.wait_for(Lock, Opts.Interval);
    if (LaneStop)
      break;
    Lock.unlock();
    (void)runCycle();
    Lock.lock();
  }
}

void OnlineTuner::registerKernel(uint64_t RoutingKey,
                                 std::shared_ptr<const KernelImpl> Impl) {
  if (!Impl || Impl->TreeWalk || Impl->Exhausted)
    return;
  std::lock_guard<std::mutex> Lock(RegMutex);
  auto It = Registry.find(RoutingKey);
  if (It == Registry.end()) {
    Entry E;
    E.Impl = Impl;
    E.Base = Impl->Prog.clone();
    E.CurrentHash = Engine::routingKey(Impl->Prog);
    Registry.emplace(RoutingKey, std::move(E));
    return;
  }
  // Recompiled under the same key (plan-cache eviction): rebind to the
  // live instance. The probe state belonged to the old impl — whatever
  // plan it was running stays with it until its last handle drops; the
  // fresh instance starts from its base plan again. Rejected candidates
  // and cooldown are kernel-identity state and survive.
  Entry &E = It->second;
  E.Impl = std::move(Impl);
  E.Probing = false;
  E.ProbeId = 0;
  E.CandidateHash = 0;
  E.CurrentHash = Engine::routingKey(E.Base);
}

size_t OnlineTuner::runCycle() {
  std::lock_guard<std::mutex> CycleLock(CycleMutex);
  // The cycle span brackets rank + search + decide, so a flight-recorder
  // capture shows tuner work as one block per cycle on its own lane.
  TraceSpan CycleSpan(TraceCategory::Tune, "tune.cycle");
  NCycles.fetch_add(1, std::memory_order_relaxed);

  // Phase 1 (under RegMutex, cheap): prune dead kernels, pin the live
  // ones, and collect the ranking inputs. Everything heavy happens on
  // the pinned handles without the registry lock, so Engine::compile's
  // registerKernel never stalls behind a simulation or search.
  struct Work {
    uint64_t Key;
    std::shared_ptr<const KernelImpl> Impl;
    double TotalUs;
    bool Probing;
    bool CoolingDown;
  };
  std::vector<Work> Ranked;
  {
    std::lock_guard<std::mutex> Lock(RegMutex);
    for (auto It = Registry.begin(); It != Registry.end();) {
      std::shared_ptr<const KernelImpl> Impl = It->second.Impl.lock();
      if (!Impl) {
        It = Registry.erase(It);
        continue;
      }
      const KernelProfile *Prof = Impl->profile();
      if (Prof && Prof->sampledCount() >= Opts.MinSamples) {
        bool Cooling = It->second.Cooldown > 0;
        if (Cooling)
          --It->second.Cooldown;
        Ranked.push_back({It->first, std::move(Impl), Prof->sampledTotalUs(),
                          It->second.Probing, Cooling});
      }
      ++It;
    }
  }
  std::sort(Ranked.begin(), Ranked.end(), [](const Work &A, const Work &B) {
    return A.TotalUs > B.TotalUs;
  });
  if (Ranked.size() > Opts.TopK)
    Ranked.resize(Opts.TopK);

  size_t Actions = 0;
  for (Work &W : Ranked) {
    if (W.Probing) {
      if (decideProbe(W.Key, W.Impl))
        ++Actions;
    } else if (!W.CoolingDown) {
      if (tryImprove(W.Key, W.Impl))
        ++Actions;
    }
  }
  return Actions;
}

bool OnlineTuner::tryImprove(uint64_t Key,
                             const std::shared_ptr<const KernelImpl> &Impl) {
  const KernelProfile *Prof = Impl->profile();
  if (!Prof)
    return false;

  // Measured incumbent runtime over the current window.
  KernelProfile::Snapshot Snap = Prof->snapshot();
  uint32_t CurId = Impl->currentVersionId();
  const KernelProfile::VersionStats *Cur = Snap.versionStats(CurId);
  if (!Cur || Cur->Count < Opts.MinSamples)
    return false;
  double MeasMeanUs = Cur->MeanUs;

  std::shared_ptr<const PlanVersion> CurV = Impl->currentVersion();
  const Program &CurProg = CurV ? CurV->Prog : Impl->Prog;

  // Calibrate the machine model against reality: one scale factor per
  // routing key, persisted through the database so checkpoints carry it.
  double SimCurSec = simulateProgram(CurProg, Owner.options().Sim).Seconds;
  double Scale = 0.0;
  if (SimCurSec > 0.0) {
    Scale = (MeasMeanUs * 1e-6) / SimCurSec;
    Owner.recordCalibration(Key, Scale);
    NCalibrations.fetch_add(1, std::memory_order_relaxed);
    addStatsCounter("Engine.TuneCalibrations");
  }

  // Re-search: the full scheduling pipeline against the database as
  // seeded and calibrated *now*.
  Program Base;
  uint64_t CurrentHash;
  {
    std::lock_guard<std::mutex> Lock(RegMutex);
    auto It = Registry.find(Key);
    if (It == Registry.end())
      return false;
    Base = It->second.Base.clone();
    CurrentHash = It->second.CurrentHash;
  }
  Program Cand;
  {
    // The search (beam search + simulation) dominates a cycle's cost;
    // span it separately from the cheap bookkeeping around it.
    TraceSpan SearchSpan(TraceCategory::Tune, "tune.search", Key);
    Cand = Owner.schedule(Base);
  }
  uint64_t CandHash = Engine::routingKey(Cand);
  if (CandHash == CurrentHash)
    return false; // The search proposes what is already running.
  {
    std::lock_guard<std::mutex> Lock(RegMutex);
    auto It = Registry.find(Key);
    if (It == Registry.end() || It->second.RejectedHashes.count(CandHash))
      return false;
  }
  auto reject = [&] {
    std::lock_guard<std::mutex> Lock(RegMutex);
    auto It = Registry.find(Key);
    if (It != Registry.end())
      It->second.RejectedHashes.insert(CandHash);
    NRejects.fetch_add(1, std::memory_order_relaxed);
    addStatsCounter("Engine.TuneRejects");
  };

  // Gate 1: the candidate must address exactly the caller buffers the
  // base kernel addresses.
  std::vector<int32_t> SlotMap;
  if (!buildSlotMap(Impl->Prog, Cand, SlotMap)) {
    reject();
    return false;
  }

  // Gate 2: calibrated predicted gain. Scale cancels against the
  // incumbent's own calibration, so this is the simulator's relative
  // verdict anchored to a measured baseline; the measured probe window
  // makes the real call. A non-positive prediction only stands aside
  // when the caller asked for forced promotion (negative MinGainPct).
  if (Opts.MinGainPct >= 0.0 && SimCurSec > 0.0) {
    double PredictedUs = simulateProgram(Cand, Owner.options().Sim).Seconds *
                         Scale * 1e6;
    if (PredictedUs >= MeasMeanUs) {
      reject();
      return false;
    }
  }

  // Gate 3: bit-identity. Eps = 0.0 — the candidate must reproduce the
  // base program's results byte for byte on a deterministic fill, or it
  // never reaches live traffic.
  if (!semanticallyEquivalent(Impl->Prog, Cand, 0.0, Opts.EquivalenceSeed)) {
    reject();
    return false;
  }

  // Compile off the hot path and install as a probe.
  std::shared_ptr<const PlanVersion> V;
  try {
    V = std::make_shared<PlanVersion>(Cand, Owner.options().Plan,
                                      std::move(SlotMap),
                                      Impl->claimVersionId());
  } catch (...) {
    reject(); // A candidate that cannot compile is a dead end.
    return false;
  }
  if (!Impl->installProbe(std::move(V)))
    return false; // Probe already in flight, or budget pressure.
  {
    std::lock_guard<std::mutex> Lock(RegMutex);
    auto It = Registry.find(Key);
    if (It != Registry.end()) {
      Entry &E = It->second;
      E.Probing = true;
      E.ProbeId = Impl->currentVersionId();
      E.CandidateHash = CandHash;
      E.PriorMeanUs = MeasMeanUs;
    }
  }
  NProbes.fetch_add(1, std::memory_order_relaxed);
  addStatsCounter("Engine.TuneProbes");
  traceInstant(TraceCategory::Tune, "tune.probe", Key);
  return true;
}

bool OnlineTuner::decideProbe(uint64_t Key,
                              const std::shared_ptr<const KernelImpl> &Impl) {
  uint32_t ProbeId;
  double PriorMeanUs;
  uint64_t CandHash;
  {
    std::lock_guard<std::mutex> Lock(RegMutex);
    auto It = Registry.find(Key);
    if (It == Registry.end() || !It->second.Probing)
      return false;
    ProbeId = It->second.ProbeId;
    PriorMeanUs = It->second.PriorMeanUs;
    CandHash = It->second.CandidateHash;
  }
  const KernelProfile *Prof = Impl->profile();
  if (!Prof)
    return false;
  KernelProfile::Snapshot Snap = Prof->snapshot();
  const KernelProfile::VersionStats *P = Snap.versionStats(ProbeId);
  if (!P || P->Count < Opts.MinSamples)
    return false; // Not enough probe traffic yet; decide next cycle.

  double GainPct =
      PriorMeanUs > 0.0 ? 100.0 * (1.0 - P->MeanUs / PriorMeanUs) : 0.0;
  // Fault site "tune.promote": a firing Trigger makes the promote
  // decision see a full regression, forcing the rollback path without a
  // genuinely slow plan.
  bool ForcedRegression;
  try {
    ForcedRegression = DAISY_FAILPOINT("tune.promote");
  } catch (...) {
    ForcedRegression = true;
  }
  if (ForcedRegression)
    GainPct = -100.0;

  bool Promote = GainPct >= Opts.MinGainPct;
  if (Promote)
    Impl->promoteProbe();
  else
    Impl->rollbackProbe();
  {
    std::lock_guard<std::mutex> Lock(RegMutex);
    auto It = Registry.find(Key);
    if (It != Registry.end()) {
      Entry &E = It->second;
      E.Probing = false;
      E.ProbeId = 0;
      if (Promote) {
        E.CurrentHash = CandHash;
      } else {
        E.RejectedHashes.insert(CandHash);
        E.Cooldown = Opts.CooldownCycles;
      }
      E.CandidateHash = 0;
    }
  }
  if (Promote) {
    NSwaps.fetch_add(1, std::memory_order_relaxed);
    addStatsCounter("Engine.TuneSwaps");
    traceInstant(TraceCategory::Tune, "tune.swap", Key);
  } else {
    NRollbacks.fetch_add(1, std::memory_order_relaxed);
    addStatsCounter("Engine.TuneRollbacks");
    traceInstant(TraceCategory::Tune, "tune.rollback", Key);
  }
  return true;
}

OnlineTuner::Stats OnlineTuner::stats() const {
  Stats S;
  S.Enabled = Opts.Enable;
  {
    std::lock_guard<std::mutex> Lock(RegMutex);
    S.Tracked = Registry.size();
    for (const auto &[Key, E] : Registry) {
      (void)Key;
      if (E.Probing)
        ++S.ProbesInFlight;
    }
  }
  S.Cycles = NCycles.load(std::memory_order_relaxed);
  S.Probes = NProbes.load(std::memory_order_relaxed);
  S.Swaps = NSwaps.load(std::memory_order_relaxed);
  S.Rollbacks = NRollbacks.load(std::memory_order_relaxed);
  S.Rejects = NRejects.load(std::memory_order_relaxed);
  S.Calibrations = NCalibrations.load(std::memory_order_relaxed);
  return S;
}
