//===- machine/Simulator.cpp ----------------------------------------------==//
//
// Part of the daisy project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "machine/Simulator.h"

#include "blas/Kernels.h"
#include "support/Hashing.h"

#include <cassert>
#include <map>

using namespace daisy;

double daisy::machinePeakMflops(const CpuConfig &Cpu, int Threads) {
  return Cpu.FrequencyGHz * 1e9 * Cpu.PeakFlopsPerCycle *
         static_cast<double>(Threads) / 1e6;
}

uint64_t daisy::simOptionsDigest(const SimOptions &Options) {
  HashCombiner D(0x6D616368696E65ull); // "machine"
  const CpuConfig &Cpu = Options.Cpu;
  D.combineDouble(Cpu.FrequencyGHz);
  D.combine(static_cast<uint64_t>(Cpu.SimdWidth));
  D.combineDouble(Cpu.ScalarFlopsPerCycle);
  D.combineDouble(Cpu.PeakFlopsPerCycle);
  D.combine(static_cast<uint64_t>(Cpu.HitLatency.size()));
  for (double Latency : Cpu.HitLatency)
    D.combineDouble(Latency);
  D.combineDouble(Cpu.MemoryLatency);
  D.combineDouble(Cpu.AtomicCost);
  D.combineDouble(Cpu.SyncOverheadCycles);
  D.combineDouble(Cpu.ParallelEfficiencyLoss);
  D.combine(static_cast<uint64_t>(Cpu.RegisterPressureThreshold));
  D.combine(static_cast<uint64_t>(Cpu.SpillAccessesPerComputation));
  D.combine(static_cast<uint64_t>(Options.Caches.size()));
  for (const CacheConfig &Cache : Options.Caches) {
    D.combine(static_cast<uint64_t>(Cache.SizeBytes));
    D.combine(static_cast<uint64_t>(Cache.Associativity));
    D.combine(static_cast<uint64_t>(Cache.LineSize));
  }
  D.combine(static_cast<uint64_t>(Options.Threads));
  return D.value();
}

namespace {

/// An affine form resolved to iterator slots: Const + sum Coeff * Slot.
struct CompiledAffine {
  int64_t Const = 0;
  std::vector<std::pair<int, int64_t>> Terms;

  int64_t eval(const std::vector<int64_t> &Slots) const {
    int64_t Value = Const;
    for (const auto &[Slot, Coeff] : Terms)
      Value += Coeff * Slots[static_cast<size_t>(Slot)];
    return Value;
  }
};

/// One compiled memory access: byte address as an affine form.
struct CompiledAccess {
  CompiledAffine Address;
};

struct CompiledComp {
  std::vector<CompiledAccess> Accesses;
  int64_t Flops = 0;
};

struct CompiledLoop;

struct CompiledNode {
  enum class Kind { Loop, Comp, Call } NodeKind = Kind::Comp;
  size_t Index = 0; // into the respective pool
};

struct CompiledLoop {
  int Slot = -1;
  CompiledAffine Lower, Upper;
  int64_t Step = 1;
  bool Parallel = false;
  bool Vectorized = false;
  bool Atomic = false;
  /// Spill accesses charged per iteration of this (innermost) loop when
  /// its body exceeds the register-pressure threshold.
  int SpillAccesses = 0;
  std::vector<CompiledNode> Body;
};

struct CompiledCall {
  int64_t Flops = 0;
  double Efficiency = 1.0;
};

/// Compiles a program into slot-resolved form and executes it against the
/// cache hierarchy and cost model.
class Simulation {
public:
  Simulation(const Program &Prog, const SimOptions &Options)
      : Prog(Prog), Options(Options), Hierarchy(Options.Caches) {
    assignArrayBases();
    for (const NodePtr &Node : Prog.topLevel())
      TopLevel.push_back(compileNode(Node));
  }

  SimReport run() {
    Slots.assign(SlotCount, 0);
    Report = SimReport{};
    Hierarchy.reset();
    for (const CompiledNode &Node : TopLevel)
      execNode(Node);
    Report.Seconds = Report.Cycles / (Options.Cpu.FrequencyGHz * 1e9);
    Report.Cache.clear();
    for (size_t I = 0; I < Hierarchy.levels(); ++I) {
      const CacheCounters &C = Hierarchy.level(I).counters();
      Report.Cache.push_back(LevelReport{C.Loads, C.Hits, C.Misses,
                                         C.Evictions});
    }
    return Report;
  }

private:
  //===--------------------------------------------------------------------===
  // Compilation
  //===--------------------------------------------------------------------===

  void assignArrayBases() {
    int64_t Next = 0;
    for (const ArrayDecl &Decl : Prog.arrays()) {
      ArrayBase[Decl.Name] = Next;
      int64_t Bytes = Decl.elementCount() * 8;
      // Line-align each array.
      Next += (Bytes + 63) / 64 * 64 + 64;
    }
    SpillBase = Next + 4096;
  }

  CompiledAffine compileAffine(const AffineExpr &Expr,
                               int64_t ScaleBytes = 1) {
    CompiledAffine Result;
    Result.Const = Expr.constantTerm() * ScaleBytes;
    for (const auto &[Name, Coeff] : Expr.terms()) {
      auto ParamIt = Prog.params().find(Name);
      if (ParamIt != Prog.params().end()) {
        Result.Const += Coeff * ParamIt->second * ScaleBytes;
        continue;
      }
      auto SlotIt = SlotOf.find(Name);
      assert(SlotIt != SlotOf.end() && "unbound variable in simulation");
      Result.Terms.push_back({SlotIt->second, Coeff * ScaleBytes});
    }
    return Result;
  }

  CompiledAccess compileAccess(const ArrayAccess &Access) {
    const ArrayDecl &Decl = Prog.array(Access.Array);
    CompiledAffine Address;
    Address.Const = ArrayBase.at(Access.Array);
    for (size_t Dim = 0; Dim < Access.Indices.size(); ++Dim) {
      CompiledAffine Part =
          compileAffine(Access.Indices[Dim], Decl.dimStride(Dim) * 8);
      Address.Const += Part.Const;
      for (const auto &Term : Part.Terms)
        Address.Terms.push_back(Term);
    }
    return CompiledAccess{std::move(Address)};
  }

  CompiledNode compileNode(const NodePtr &Node) {
    if (const auto *C = dynCast<Computation>(Node)) {
      CompiledComp Comp;
      Comp.Flops = C->flops();
      for (const ArrayAccess &R : C->reads())
        Comp.Accesses.push_back(compileAccess(R));
      Comp.Accesses.push_back(compileAccess(C->write()));
      Comps.push_back(std::move(Comp));
      return {CompiledNode::Kind::Comp, Comps.size() - 1};
    }
    if (const auto *Call = dynCast<CallNode>(Node)) {
      CompiledCall CC;
      CC.Flops = Call->flops();
      CC.Efficiency = blasEfficiency(Call->callee(), Call->dims());
      Calls.push_back(CC);
      return {CompiledNode::Kind::Call, Calls.size() - 1};
    }
    const auto *L = dynCast<Loop>(Node);
    assert(L && "unknown node kind");
    CompiledLoop Loop;
    bool Fresh = SlotOf.find(L->iterator()) == SlotOf.end();
    assert(Fresh && "iterator shadowing is not supported");
    (void)Fresh;
    Loop.Slot = SlotCount++;
    SlotOf[L->iterator()] = Loop.Slot;
    Loop.Lower = compileAffine(L->lower());
    Loop.Upper = compileAffine(L->upper());
    Loop.Step = L->step();
    Loop.Parallel = L->isParallel();
    Loop.Vectorized = L->isVectorized();
    Loop.Atomic = L->usesAtomicReduction();
    for (const NodePtr &Child : L->body())
      Loop.Body.push_back(compileNode(Child));
    // Register-pressure spills for oversized innermost bodies.
    bool Innermost = true;
    int BodyComps = 0;
    for (const NodePtr &Child : L->body()) {
      if (Child->kind() == NodeKind::Loop)
        Innermost = false;
      if (Child->kind() == NodeKind::Computation)
        ++BodyComps;
    }
    if (Innermost && BodyComps > Options.Cpu.RegisterPressureThreshold)
      Loop.SpillAccesses =
          (BodyComps - Options.Cpu.RegisterPressureThreshold) *
          Options.Cpu.SpillAccessesPerComputation;
    SlotOf.erase(L->iterator());
    Loops.push_back(std::move(Loop));
    return {CompiledNode::Kind::Loop, Loops.size() - 1};
  }

  //===--------------------------------------------------------------------===
  // Execution
  //===--------------------------------------------------------------------===

  void execComp(const CompiledComp &Comp) {
    double MemCycles = 0.0;
    for (const CompiledAccess &Access : Comp.Accesses) {
      int Level = Hierarchy.access(Access.Address.eval(Slots));
      double Cost =
          Level < static_cast<int>(Options.Cpu.HitLatency.size())
              ? Options.Cpu.HitLatency[static_cast<size_t>(Level)]
              : Options.Cpu.MemoryLatency;
      // Vector loads amortize L1 hits across SIMD lanes.
      if (InVectorLoop && Level == 0)
        Cost /= Options.Cpu.SimdWidth;
      MemCycles += Cost;
    }
    double FlopRate = Options.Cpu.ScalarFlopsPerCycle *
                      (InVectorLoop ? Options.Cpu.SimdWidth : 1);
    double CompCycles = static_cast<double>(Comp.Flops) / FlopRate;
    if (InAtomicLoop)
      CompCycles += Options.Cpu.AtomicCost;
    Report.Cycles += MemCycles + CompCycles;
    Report.Flops += Comp.Flops;
  }

  void execCall(const CompiledCall &Call) {
    // Library kernels run near machine peak and scale over the region's
    // threads (multithreaded BLAS).
    double Threads = InParallelRegion ? 1.0
                                      : static_cast<double>(Options.Threads);
    double Rate = Options.Cpu.PeakFlopsPerCycle * Call.Efficiency * Threads;
    Report.Cycles += static_cast<double>(Call.Flops) / Rate;
    Report.Flops += Call.Flops;
  }

  void execLoop(const CompiledLoop &Loop) {
    int64_t Lo = Loop.Lower.eval(Slots);
    int64_t Hi = Loop.Upper.eval(Slots);
    if (Hi <= Lo)
      return;
    int64_t Trip = (Hi - Lo + Loop.Step - 1) / Loop.Step;

    bool StartsParallel =
        Loop.Parallel && !InParallelRegion && Options.Threads > 1;
    bool StartsVector = Loop.Vectorized && !InVectorLoop;
    bool StartsAtomic = Loop.Atomic && !InAtomicLoop;
    double CyclesBefore = Report.Cycles;
    if (StartsParallel)
      InParallelRegion = true;
    if (StartsVector)
      InVectorLoop = true;
    if (StartsAtomic)
      InAtomicLoop = true;

    for (int64_t I = Lo; I < Hi; I += Loop.Step) {
      Slots[static_cast<size_t>(Loop.Slot)] = I;
      for (const CompiledNode &Child : Loop.Body)
        execNode(Child);
      // Spill traffic: rotating slots in a dedicated stack frame region.
      for (int S = 0; S < Loop.SpillAccesses; ++S) {
        int Level = Hierarchy.access(SpillBase + (S * 64) % 4096);
        double Cost =
            Level < static_cast<int>(Options.Cpu.HitLatency.size())
                ? Options.Cpu.HitLatency[static_cast<size_t>(Level)]
                : Options.Cpu.MemoryLatency;
        Report.Cycles += Cost;
      }
    }

    if (StartsVector)
      InVectorLoop = false;
    if (StartsAtomic)
      InAtomicLoop = false;
    if (StartsParallel) {
      InParallelRegion = false;
      double Delta = Report.Cycles - CyclesBefore;
      double Workers =
          static_cast<double>(std::min<int64_t>(Options.Threads, Trip));
      double Efficiency =
          1.0 - Options.Cpu.ParallelEfficiencyLoss * (Workers - 1.0);
      if (Efficiency < 0.2)
        Efficiency = 0.2;
      double Speedup = Workers * Efficiency;
      if (Speedup < 1.0)
        Speedup = 1.0;
      Report.Cycles =
          CyclesBefore + Delta / Speedup + Options.Cpu.SyncOverheadCycles;
    }
  }

  void execNode(const CompiledNode &Node) {
    switch (Node.NodeKind) {
    case CompiledNode::Kind::Comp:
      execComp(Comps[Node.Index]);
      break;
    case CompiledNode::Kind::Call:
      execCall(Calls[Node.Index]);
      break;
    case CompiledNode::Kind::Loop:
      execLoop(Loops[Node.Index]);
      break;
    }
  }

  const Program &Prog;
  const SimOptions &Options;
  MemoryHierarchy Hierarchy;

  std::map<std::string, int64_t> ArrayBase;
  int64_t SpillBase = 0;
  std::map<std::string, int> SlotOf;
  int SlotCount = 0;
  std::vector<CompiledComp> Comps;
  std::vector<CompiledCall> Calls;
  std::vector<CompiledLoop> Loops;
  std::vector<CompiledNode> TopLevel;

  std::vector<int64_t> Slots;
  bool InParallelRegion = false;
  bool InVectorLoop = false;
  bool InAtomicLoop = false;
  SimReport Report;
};

} // namespace

SimReport daisy::simulateProgram(const Program &Prog,
                                 const SimOptions &Options) {
  return Simulation(Prog, Options).run();
}

double daisy::simulatedSeconds(const Program &Prog, int Threads) {
  SimOptions Options;
  Options.Threads = Threads;
  return simulateProgram(Prog, Options).Seconds;
}
