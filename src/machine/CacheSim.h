//===- machine/CacheSim.h - Set-associative cache simulator ------*- C++ -*-=//
//
// Part of the daisy project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deterministic multi-level, set-associative, LRU, write-allocate cache
/// simulator. It stands in for the hardware performance counters of the
/// paper's Xeon E5-2680v3 testbed: every simulated memory access walks the
/// hierarchy and the per-level load/hit/miss/eviction counters drive both
/// the cycle cost model and Table 1's L1 loads/evicts reproduction.
///
//===----------------------------------------------------------------------===//

#ifndef DAISY_MACHINE_CACHESIM_H
#define DAISY_MACHINE_CACHESIM_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace daisy {

/// Geometry of one cache level.
struct CacheConfig {
  int64_t SizeBytes = 32 * 1024;
  int Associativity = 8;
  int LineSize = 64;
};

/// Counter block of one cache level.
struct CacheCounters {
  int64_t Loads = 0;     ///< Accesses that reached this level.
  int64_t Hits = 0;      ///< Accesses satisfied at this level.
  int64_t Misses = 0;    ///< Accesses forwarded to the next level.
  int64_t Evictions = 0; ///< Resident lines displaced by fills.
};

/// One set-associative LRU cache level.
class CacheLevel {
public:
  explicit CacheLevel(const CacheConfig &Config);

  /// Looks up the line containing \p Address. On a miss the line is
  /// filled (write-allocate), possibly evicting the LRU way. Returns true
  /// on a hit.
  bool access(int64_t Address);

  /// Discards all content and counters.
  void reset();

  const CacheCounters &counters() const { return Counters; }
  const CacheConfig &config() const { return Config; }

private:
  CacheConfig Config;
  int64_t NumSets;
  // Tags[set * Associativity + way]; -1 = invalid.
  std::vector<int64_t> Tags;
  // LastUse stamps for LRU.
  std::vector<uint64_t> LastUse;
  uint64_t Clock = 0;
  CacheCounters Counters;
};

/// An inclusive-enough hierarchy: L1 .. Ln, then memory.
class MemoryHierarchy {
public:
  explicit MemoryHierarchy(const std::vector<CacheConfig> &Configs);

  /// Walks the hierarchy; returns the level index (0 = L1) that hit, or
  /// levels() for main memory.
  int access(int64_t Address);

  size_t levels() const { return Levels.size(); }
  const CacheLevel &level(size_t I) const { return Levels[I]; }

  /// Clears content and counters of every level.
  void reset();

private:
  std::vector<CacheLevel> Levels;
};

/// The scaled-down default hierarchy. The paper's Xeon has 32KB L1 / 256KB
/// L2 / 30MB L3 with gigabyte-scale working sets; the benches use
/// proportionally scaled problem sizes, so the simulated hierarchy is
/// scaled by the same factor to stress the same levels.
std::vector<CacheConfig> defaultCacheHierarchy();

} // namespace daisy

#endif // DAISY_MACHINE_CACHESIM_H
