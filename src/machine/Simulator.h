//===- machine/Simulator.h - Performance simulation ---------------*- C++ -*-=//
//
// Part of the daisy project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The simulated machine that replaces the paper's hardware testbed.
///
/// simulateProgram walks a program's exact iteration space, feeds every
/// array access through the cache simulator, and charges cycles from a
/// Haswell-class CPU model: scalar/vector FLOP throughput, per-level
/// access latencies, parallel-region speedup with synchronization
/// overhead, and an atomic-update penalty for atomic reductions. Library
/// calls (CallNode) are charged near machine peak via the BLAS efficiency
/// model.
///
/// The absolute numbers are model outputs, not wall-clock measurements;
/// what the benches rely on is that the model responds to loop order,
/// fission/fusion, tiling, vectorization, and parallelization the way the
/// real machine does — which is exactly what the cache simulator plus the
/// throughput model provide.
///
//===----------------------------------------------------------------------===//

#ifndef DAISY_MACHINE_SIMULATOR_H
#define DAISY_MACHINE_SIMULATOR_H

#include "ir/Program.h"
#include "machine/CacheSim.h"

#include <string>
#include <vector>

namespace daisy {

/// CPU throughput and latency parameters (Haswell-class defaults).
struct CpuConfig {
  double FrequencyGHz = 2.5;
  /// SIMD lanes for doubles (AVX2).
  int SimdWidth = 4;
  /// Sustained scalar flops per cycle (one FMA pipe).
  double ScalarFlopsPerCycle = 2.0;
  /// Peak flops per cycle with FMA + AVX (two FMA pipes x 4 lanes x 2).
  double PeakFlopsPerCycle = 16.0;
  /// Cycles charged per access that hits at level i (L1, L2, L3). These
  /// are amortized costs: raw latencies divided by the memory-level
  /// parallelism an out-of-order core extracts.
  std::vector<double> HitLatency = {1.0, 4.0, 14.0};
  /// Amortized cycles charged per access that misses all levels.
  double MemoryLatency = 44.0;
  /// Cycles per atomic read-modify-write under contention.
  double AtomicCost = 48.0;
  /// Cycles to fork/join one parallel region.
  double SyncOverheadCycles = 25000.0;
  /// Per-extra-thread efficiency loss in parallel regions.
  double ParallelEfficiencyLoss = 0.02;

  /// Register-pressure model: an innermost loop whose body holds more
  /// live computations than the register file sustains spills. Each
  /// computation beyond the threshold costs extra L1 traffic to a stack
  /// region (the paper's CLOUDSC observation: inlining and unrolling make
  /// "the loop body significantly larger than the source code suggests,
  /// potentially hindering crucial compiler optimizations such as
  /// register allocation", §5.1).
  int RegisterPressureThreshold = 8;
  /// Extra stack accesses charged per over-threshold computation.
  int SpillAccessesPerComputation = 2;
};

/// Simulation options.
struct SimOptions {
  CpuConfig Cpu;
  std::vector<CacheConfig> Caches = defaultCacheHierarchy();
  int Threads = 1;
};

/// Per-level counters as reported by the simulation.
struct LevelReport {
  int64_t Loads = 0;
  int64_t Hits = 0;
  int64_t Misses = 0;
  int64_t Evictions = 0;
};

/// Result of simulating one program execution.
struct SimReport {
  double Cycles = 0.0;
  double Seconds = 0.0;
  int64_t Flops = 0;
  std::vector<LevelReport> Cache;

  double mflops() const {
    return Seconds > 0 ? static_cast<double>(Flops) / Seconds / 1e6 : 0.0;
  }
};

/// Peak MFLOP/s of the simulated machine with \p Threads cores.
double machinePeakMflops(const CpuConfig &Cpu, int Threads);

/// 64-bit digest of every field of \p Options (CPU model, cache
/// hierarchy, thread count). Two SimOptions with equal digests simulate
/// any program to the same report; the scheduler's simulation cache
/// (sched/Evaluator.h) mixes this into its keys so results obtained under
/// one machine model are never served under another.
uint64_t simOptionsDigest(const SimOptions &Options);

/// Simulates one execution of \p Prog and returns the cost report.
SimReport simulateProgram(const Program &Prog, const SimOptions &Options);

/// Convenience: simulated runtime in seconds with default options.
double simulatedSeconds(const Program &Prog, int Threads = 1);

} // namespace daisy

#endif // DAISY_MACHINE_SIMULATOR_H
