//===- machine/CacheSim.cpp -----------------------------------------------==//
//
// Part of the daisy project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "machine/CacheSim.h"

#include <cassert>

using namespace daisy;

CacheLevel::CacheLevel(const CacheConfig &Config) : Config(Config) {
  assert(Config.SizeBytes > 0 && Config.Associativity > 0 &&
         Config.LineSize > 0 && "invalid cache geometry");
  NumSets = Config.SizeBytes / (Config.LineSize * Config.Associativity);
  if (NumSets < 1)
    NumSets = 1;
  Tags.assign(static_cast<size_t>(NumSets * Config.Associativity), -1);
  LastUse.assign(Tags.size(), 0);
}

bool CacheLevel::access(int64_t Address) {
  ++Counters.Loads;
  ++Clock;
  int64_t Line = Address / Config.LineSize;
  int64_t Set = Line % NumSets;
  size_t Base = static_cast<size_t>(Set * Config.Associativity);

  // Hit?
  for (int Way = 0; Way < Config.Associativity; ++Way) {
    if (Tags[Base + static_cast<size_t>(Way)] == Line) {
      LastUse[Base + static_cast<size_t>(Way)] = Clock;
      ++Counters.Hits;
      return true;
    }
  }

  // Miss: fill, evicting LRU if no invalid way exists.
  ++Counters.Misses;
  size_t Victim = Base;
  bool FoundInvalid = false;
  for (int Way = 0; Way < Config.Associativity; ++Way) {
    size_t Slot = Base + static_cast<size_t>(Way);
    if (Tags[Slot] < 0) {
      Victim = Slot;
      FoundInvalid = true;
      break;
    }
    if (LastUse[Slot] < LastUse[Victim])
      Victim = Slot;
  }
  if (!FoundInvalid)
    ++Counters.Evictions;
  Tags[Victim] = Line;
  LastUse[Victim] = Clock;
  return false;
}

void CacheLevel::reset() {
  Tags.assign(Tags.size(), -1);
  LastUse.assign(LastUse.size(), 0);
  Clock = 0;
  Counters = CacheCounters{};
}

MemoryHierarchy::MemoryHierarchy(const std::vector<CacheConfig> &Configs) {
  Levels.reserve(Configs.size());
  for (const CacheConfig &Config : Configs)
    Levels.emplace_back(Config);
}

int MemoryHierarchy::access(int64_t Address) {
  for (size_t I = 0; I < Levels.size(); ++I)
    if (Levels[I].access(Address))
      return static_cast<int>(I);
  return static_cast<int>(Levels.size());
}

void MemoryHierarchy::reset() {
  for (CacheLevel &Level : Levels)
    Level.reset();
}

std::vector<CacheConfig> daisy::defaultCacheHierarchy() {
  // 1/4-scale Haswell-EP: 8KB L1d, 64KB L2, 1MB L3 slice.
  return {CacheConfig{8 * 1024, 8, 64}, CacheConfig{64 * 1024, 8, 64},
          CacheConfig{1024 * 1024, 16, 64}};
}
