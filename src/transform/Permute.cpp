//===- transform/Permute.cpp ----------------------------------------------==//
//
// Part of the daisy project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "transform/Permute.h"

#include "analysis/Legality.h"

#include <cassert>
#include <map>

using namespace daisy;

NodePtr daisy::applyPermutation(const NodePtr &Root,
                                const std::vector<std::string> &NewOrder) {
  std::vector<std::shared_ptr<Loop>> Band = perfectNestBand(Root);
  assert(Band.size() == NewOrder.size() &&
         "permutation must cover the whole band");

  std::map<std::string, std::shared_ptr<Loop>> ByIterator;
  for (const auto &L : Band)
    ByIterator[L->iterator()] = L;

  // Innermost band loop's body is the payload carried below the band.
  std::vector<NodePtr> Payload = cloneBody(Band.back()->body());

  // Rebuild innermost-to-outermost.
  NodePtr Current;
  for (size_t I = NewOrder.size(); I-- > 0;) {
    auto It = ByIterator.find(NewOrder[I]);
    assert(It != ByIterator.end() && "unknown iterator in permutation");
    const std::shared_ptr<Loop> &Old = It->second;
    std::vector<NodePtr> Body;
    if (Current)
      Body.push_back(Current);
    else
      Body = std::move(Payload);
    auto Copy = std::make_shared<Loop>(Old->iterator(), Old->lower(),
                                       Old->upper(), std::move(Body),
                                       Old->step());
    Copy->setParallel(Old->isParallel());
    Copy->setVectorized(Old->isVectorized());
    Copy->setAtomicReduction(Old->usesAtomicReduction());
    Copy->setOpaque(Old->isOpaque());
    Current = Copy;
  }
  return Current;
}

NodePtr daisy::interchange(const NodePtr &Root, size_t Level1,
                           size_t Level2) {
  std::vector<std::shared_ptr<Loop>> Band = perfectNestBand(Root);
  assert(Level1 < Band.size() && Level2 < Band.size() &&
         "interchange level out of band");
  std::vector<std::string> Order;
  Order.reserve(Band.size());
  for (const auto &L : Band)
    Order.push_back(L->iterator());
  std::swap(Order[Level1], Order[Level2]);
  return applyPermutation(Root, Order);
}
