//===- transform/Tile.h - Loop tiling / strip-mining -------------*- C++ -*-=//
//
// Part of the daisy project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Rectangular tiling of perfect nest bands and single-loop strip-mining.
///
/// A band loop `for (i = L; i < U)` with tile size T becomes
///   `for (i_t = L; i_t < U; i_t += T) for (i_p = i_t; i_p < i_t + T)`
/// with the original iterator substituted by the point iterator. Tiling is
/// only applied when T divides the trip count, keeping bounds affine; the
/// caller must have verified the band is fully permutable.
///
//===----------------------------------------------------------------------===//

#ifndef DAISY_TRANSFORM_TILE_H
#define DAISY_TRANSFORM_TILE_H

#include "ir/Program.h"

#include <cstdint>
#include <vector>

namespace daisy {

/// Tiles the leading \p TileSizes.size() loops of \p Root's perfect band.
/// A size of 0 or 1 leaves the corresponding loop untiled. Loops whose
/// trip count is not a multiple of the size are left untiled as well.
/// Returns the transformed copy; tile loops come first (in band order),
/// then point loops.
NodePtr tileBand(const NodePtr &Root, const std::vector<int64_t> &TileSizes,
                 const ValueEnv &Params);

/// Strip-mines the single loop at band position \p Level into a chunk loop
/// and a vectorizable point loop of width \p Width; the point loop is
/// marked vectorized. No-op copy if the trip count is not divisible.
NodePtr stripMine(const NodePtr &Root, size_t Level, int64_t Width,
                  const ValueEnv &Params);

} // namespace daisy

#endif // DAISY_TRANSFORM_TILE_H
