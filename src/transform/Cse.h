//===- transform/Cse.h - Nest-level common subexpression elim ----*- C++ -*-=//
//
// Part of the daisy project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Nest-level common-subexpression elimination. After maximal fission of
/// an inlined loop body, subexpressions that the inliner duplicated (the
/// CLOUDSC study's FOEEWM saturation formula appears once per use site)
/// become structurally identical sibling nests that only differ in the
/// transient temporary they write. Merging them is the nest-granular CSE
/// the original compiler could not perform across the oversized body —
/// "the normalization allows us to discover new applications of
/// well-known performance optimizations" (paper §5.1).
///
//===----------------------------------------------------------------------===//

#ifndef DAISY_TRANSFORM_CSE_H
#define DAISY_TRANSFORM_CSE_H

#include "ir/Program.h"

#include <vector>

namespace daisy {

/// Merges sibling nests in \p Nodes that compute the same value into a
/// transient target: a later nest that is structurally equal to an
/// earlier one (modulo the written temporary) is deleted and reads of its
/// target are redirected, provided no intervening node writes any array
/// the earlier nest read or wrote. Returns the number of nests removed;
/// \p Nodes is rewritten in place.
int eliminateCommonNests(std::vector<NodePtr> &Nodes, const Program &Prog);

} // namespace daisy

#endif // DAISY_TRANSFORM_CSE_H
