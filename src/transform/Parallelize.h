//===- transform/Parallelize.h - Parallel & vector marking -------*- C++ -*-=//
//
// Part of the daisy project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Marks loops for parallel and SIMD execution. The machine model consumes
/// the marks; legality comes from analysis/Legality.h.
///
//===----------------------------------------------------------------------===//

#ifndef DAISY_TRANSFORM_PARALLELIZE_H
#define DAISY_TRANSFORM_PARALLELIZE_H

#include "ir/Program.h"

namespace daisy {

/// Marks the outermost parallelizable loop of \p Root parallel (in place).
/// When \p Prog is provided, privatizable transients are discounted as an
/// OpenMP-style parallelizer would. Returns true if a loop was marked.
bool parallelizeOutermost(const NodePtr &Root, const ValueEnv &Params,
                          const Program *Prog = nullptr);

/// Marks the outermost loop parallel with atomic updates if it carries
/// only reduction dependences (in place). Returns true on success. This is
/// the naive fallback applied to opaque (unliftable) nests.
bool parallelizeWithAtomics(const NodePtr &Root, const ValueEnv &Params,
                            const Program *Prog = nullptr);

/// Marks the innermost loop of every perfect band in \p Root vectorized if
/// its innermost computations access memory with unit or zero stride (in
/// place). Bodies with more than \p MaxBodyComputations statements are
/// refused — the compiler-vectorizer behaviour the paper observes on
/// CLOUDSC's inlined/unrolled loop bodies (§5.1). Returns the number of
/// loops marked.
int vectorizeInnermostUnitStride(const NodePtr &Root, const Program &Prog,
                                 int MaxBodyComputations = 8);

} // namespace daisy

#endif // DAISY_TRANSFORM_PARALLELIZE_H
