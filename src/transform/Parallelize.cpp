//===- transform/Parallelize.cpp ------------------------------------------==//
//
// Part of the daisy project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "transform/Parallelize.h"

#include "analysis/Accesses.h"
#include "analysis/Legality.h"
#include "analysis/Stride.h"

#include <functional>

using namespace daisy;

namespace {

/// Estimated computation instances under \p Node.
double instancesUnder(const NodePtr &Node, const ValueEnv &Params) {
  double Total = 0.0;
  for (const StmtInfo &S : collectStatements(Node)) {
    double Iters = 1.0;
    for (const IterRange &R : conservativeRanges(S.Path, Params))
      Iters *= static_cast<double>(std::max<int64_t>(R.span(), 1));
    Total += Iters;
  }
  return Total;
}

} // namespace

bool daisy::parallelizeOutermost(const NodePtr &Root, const ValueEnv &Params,
                                 const Program *Prog) {
  auto Parallel = parallelizableLoops(Root, Params, Prog);
  bool Marked = false;
  // Pre-order: the first parallelizable loop on each path is outermost.
  // A profitability guard skips regions too small to amortize the
  // fork/join overhead — parallelizing a small inner loop would pay that
  // overhead once per enclosing iteration.
  constexpr double MinInstancesPerRegion = 4096.0;
  std::map<std::string, IterRange> Known;
  std::function<void(const NodePtr &, double)> Walk =
      [&](const NodePtr &Node, double EnclosingIters) {
        auto *L = dynCast<Loop>(Node);
        if (!L)
          return;
        if (Parallel.count(L) &&
            instancesUnder(Node, Params) >=
                MinInstancesPerRegion * EnclosingIters) {
          L->setParallel(true);
          Marked = true;
          return; // nested parallelism is not modeled
        }
        IterRange Lower = evaluateInterval(L->lower(), Known, Params);
        IterRange Upper = evaluateInterval(L->upper(), Known, Params);
        IterRange R{Lower.Min, Upper.Max - 1};
        double Trip =
            static_cast<double>(std::max<int64_t>(R.span(), 1)) /
            static_cast<double>(L->step());
        Known[L->iterator()] = R;
        for (const NodePtr &Child : L->body())
          Walk(Child, EnclosingIters * Trip);
        Known.erase(L->iterator());
      };
  Walk(Root, 1.0);
  return Marked;
}

bool daisy::parallelizeWithAtomics(const NodePtr &Root,
                                   const ValueEnv &Params,
                                   const Program *Prog) {
  auto L = std::dynamic_pointer_cast<Loop>(Root);
  if (!L)
    return false;
  if (parallelizeOutermost(Root, Params, Prog))
    return true;
  if (!isReductionLoop(Root, L.get(), Params))
    return false;
  L->setParallel(true);
  L->setAtomicReduction(true);
  return true;
}

int daisy::vectorizeInnermostUnitStride(const NodePtr &Root,
                                        const Program &Prog,
                                        int MaxBodyComputations) {
  int Marked = 0;
  visitNodes(Root, [&](const NodePtr &Node) {
    auto *L = dynCast<Loop>(Node);
    if (!L)
      return;
    // Innermost loops only: no loop children.
    for (const NodePtr &Child : L->body())
      if (Child->kind() == NodeKind::Loop)
        return;
    // Oversized bodies defeat the vectorizer (register pressure, too many
    // live values to keep in SIMD registers).
    if (static_cast<int>(L->body().size()) > MaxBodyComputations)
      return;
    // All accesses of the body must be unit- or zero-stride in L.
    for (const NodePtr &Child : L->body()) {
      const auto *C = dynCast<Computation>(Child.get());
      if (!C)
        return;
      auto CheckAccess = [&](const ArrayAccess &Access) {
        int64_t Stride =
            accessStride(Access, L->iterator(), L->step(), Prog);
        return Stride == 0 || Stride == 1;
      };
      if (!CheckAccess(C->write()))
        return;
      for (const ArrayAccess &R : C->reads())
        if (!CheckAccess(R))
          return;
    }
    L->setVectorized(true);
    ++Marked;
  });
  return Marked;
}
