//===- transform/Cse.cpp --------------------------------------------------==//
//
// Part of the daisy project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "transform/Cse.h"

#include "ir/Rewrite.h"
#include "ir/StructuralHash.h"

#include <set>
#include <string>

using namespace daisy;

namespace {

/// Arrays written anywhere under \p Node.
std::set<std::string> writtenArrays(const NodePtr &Node) {
  std::set<std::string> Result;
  for (const auto &C : collectComputations(Node))
    Result.insert(C->write().Array);
  return Result;
}

/// Arrays read anywhere under \p Node.
std::set<std::string> readArrays(const NodePtr &Node) {
  std::set<std::string> Result;
  for (const auto &C : collectComputations(Node))
    for (const ArrayAccess &R : C->reads())
      Result.insert(R.Array);
  return Result;
}

/// The single transient array written by \p Node, or empty if the nest
/// writes more than one array or a non-transient one.
std::string soleTransientTarget(const NodePtr &Node, const Program &Prog) {
  std::set<std::string> Writes = writtenArrays(Node);
  if (Writes.size() != 1)
    return "";
  const ArrayDecl *Decl = Prog.findArray(*Writes.begin());
  if (!Decl || !Decl->Transient)
    return "";
  return Decl->Name;
}

} // namespace

int daisy::eliminateCommonNests(std::vector<NodePtr> &Nodes,
                                const Program &Prog) {
  int Removed = 0;
  for (size_t First = 0; First < Nodes.size(); ++First) {
    std::string FirstTarget = soleTransientTarget(Nodes[First], Prog);
    if (FirstTarget.empty())
      continue;
    std::set<std::string> FirstReads = readArrays(Nodes[First]);

    for (size_t Second = First + 1; Second < Nodes.size(); ++Second) {
      std::string SecondTarget = soleTransientTarget(Nodes[Second], Prog);
      if (SecondTarget.empty() || SecondTarget == FirstTarget)
        continue;
      const ArrayDecl &FirstDecl = Prog.array(FirstTarget);
      const ArrayDecl &SecondDecl = Prog.array(SecondTarget);
      if (FirstDecl.Shape != SecondDecl.Shape)
        continue;
      // Structural equality with the second nest's target renamed.
      NodePtr Retargeted =
          retargetArrayInNode(Nodes[Second], SecondTarget, FirstTarget, {});
      if (!structurallyEqual(Nodes[First], Retargeted))
        continue;
      // No intervening node may write the first nest's inputs or target.
      bool Clobbered = false;
      for (size_t Mid = First + 1; Mid < Second && !Clobbered; ++Mid)
        for (const std::string &W : writtenArrays(Nodes[Mid]))
          if (FirstReads.count(W) || W == FirstTarget)
            Clobbered = true;
      if (Clobbered)
        continue;

      // Delete the duplicate and redirect all later reads of its target.
      Nodes.erase(Nodes.begin() + static_cast<std::ptrdiff_t>(Second));
      for (size_t Later = Second; Later < Nodes.size(); ++Later)
        Nodes[Later] =
            retargetArrayInNode(Nodes[Later], SecondTarget, FirstTarget, {});
      ++Removed;
      --Second; // re-examine the node now at this position
    }
  }
  return Removed;
}
