//===- transform/Distribute.h - Loop fission & scalar expansion --*- C++ -*-=//
//
// Part of the daisy project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Loop distribution (fission) and the scalar expansion that enables it.
///
/// Distribution splits a loop's body into the groups computed by
/// distributionGroups (analysis/Legality.h), one loop per group. Scalars
/// written and read inside the loop would otherwise glue all their users
/// into one group; scalar expansion first promotes such loop-local scalars
/// to transient arrays indexed by the loop iterator — exactly the ZQP_0 /
/// ZCOND_0 pattern of the paper's CLOUDSC study (Fig. 10b).
///
//===----------------------------------------------------------------------===//

#ifndef DAISY_TRANSFORM_DISTRIBUTE_H
#define DAISY_TRANSFORM_DISTRIBUTE_H

#include "ir/Program.h"

#include <vector>

namespace daisy {

/// Expands loop-local scalars in \p L's body into transient arrays over
/// \p L's iterator. A scalar qualifies when (a) it is declared transient
/// (a temporary, not a program output), (b) it is written inside the body
/// before any read on every path (textually), (c) it is not part of a
/// recurrence (no computation both reads and writes it), and (d) it is not
/// accessed anywhere outside \p L in \p Prog. New arrays are registered on
/// \p Prog as transient. Returns the rewritten loop (or the original
/// pointer if nothing changed).
std::shared_ptr<Loop> expandScalars(const std::shared_ptr<Loop> &L,
                                    Program &Prog);

/// Distributes \p L into one loop per entry of \p Groups (body-item index
/// lists, as produced by distributionGroups). Returns the replacement
/// sequence.
std::vector<NodePtr>
distributeLoop(const std::shared_ptr<Loop> &L,
               const std::vector<std::vector<size_t>> &Groups);

} // namespace daisy

#endif // DAISY_TRANSFORM_DISTRIBUTE_H
