//===- transform/Fuse.h - Loop fusion ----------------------------*- C++ -*-=//
//
// Part of the daisy project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Loop fusion: merging adjacent compatible loops, and the
/// producer-consumer fusion recipe used in the CLOUDSC study (paper §5.1:
/// "iteratively fuses all one-to-one producer-consumer relations between
/// loop nests").
///
//===----------------------------------------------------------------------===//

#ifndef DAISY_TRANSFORM_FUSE_H
#define DAISY_TRANSFORM_FUSE_H

#include "ir/Program.h"

#include <memory>
#include <vector>

namespace daisy {

/// Fuses \p First and \p Second into one loop carrying \p First's
/// iterator. The caller must have verified legality (canFuseLoops).
std::shared_ptr<Loop> fuseLoops(const std::shared_ptr<Loop> &First,
                                const std::shared_ptr<Loop> &Second);

/// Repeatedly fuses adjacent sibling loops in \p Nodes connected by a
/// one-to-one producer-consumer dataflow edge, as long as fusion is legal
/// and the fused body stays at or below \p MaxBodyComputations immediate
/// statements (the CLOUDSC recipe fuses chains without recreating the
/// oversized bodies fission removed). Returns the rewritten sequence.
/// \p Prog provides array layouts and parameters.
std::vector<NodePtr> fuseProducerConsumers(const std::vector<NodePtr> &Nodes,
                                           const Program &Prog,
                                           int MaxBodyComputations = 1 << 20);

} // namespace daisy

#endif // DAISY_TRANSFORM_FUSE_H
