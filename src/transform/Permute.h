//===- transform/Permute.h - Loop interchange / permutation ------*- C++ -*-=//
//
// Part of the daisy project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Loop permutation over perfect nest bands. Legality is the caller's
/// responsibility (analysis/Legality.h); the transform itself rebuilds the
/// band mechanically, moving each loop's header (iterator, bounds, step,
/// marks) to its new level.
///
//===----------------------------------------------------------------------===//

#ifndef DAISY_TRANSFORM_PERMUTE_H
#define DAISY_TRANSFORM_PERMUTE_H

#include "ir/Program.h"

#include <string>
#include <vector>

namespace daisy {

/// Returns a copy of \p Root with the perfect band reordered so that the
/// band's loops appear in iterator order \p NewOrder (outermost first).
/// \p NewOrder must be a permutation of the band's iterator names.
NodePtr applyPermutation(const NodePtr &Root,
                         const std::vector<std::string> &NewOrder);

/// Returns a copy of \p Root with the band loops at positions \p Level1
/// and \p Level2 exchanged.
NodePtr interchange(const NodePtr &Root, size_t Level1, size_t Level2);

} // namespace daisy

#endif // DAISY_TRANSFORM_PERMUTE_H
