//===- transform/Fuse.cpp -------------------------------------------------==//
//
// Part of the daisy project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "transform/Fuse.h"

#include "analysis/Dataflow.h"
#include "analysis/Legality.h"
#include "ir/Rewrite.h"

using namespace daisy;

std::shared_ptr<Loop> daisy::fuseLoops(const std::shared_ptr<Loop> &First,
                                       const std::shared_ptr<Loop> &Second) {
  std::vector<NodePtr> Body = cloneBody(First->body());
  for (const NodePtr &Child : Second->body())
    Body.push_back(
        renameIterator(Child, Second->iterator(), First->iterator()));
  auto Fused = std::make_shared<Loop>(First->iterator(), First->lower(),
                                      First->upper(), std::move(Body),
                                      First->step());
  Fused->setParallel(First->isParallel() && Second->isParallel());
  return Fused;
}

std::vector<NodePtr>
daisy::fuseProducerConsumers(const std::vector<NodePtr> &Nodes,
                             const Program &Prog,
                             int MaxBodyComputations) {
  std::vector<NodePtr> Current = cloneBody(Nodes);
  bool Changed = true;
  while (Changed) {
    Changed = false;
    DataflowGraph G = buildDataflowGraph(Current, Prog);
    for (const DataflowEdge &Edge : G.Edges) {
      if (!Edge.OneToOne || Edge.Consumer != Edge.Producer + 1)
        continue;
      auto First = std::dynamic_pointer_cast<Loop>(Current[Edge.Producer]);
      auto Second = std::dynamic_pointer_cast<Loop>(Current[Edge.Consumer]);
      if (!First || !Second || First->isOpaque() || Second->isOpaque())
        continue;
      if (static_cast<int>(First->body().size() + Second->body().size()) >
          MaxBodyComputations)
        continue;
      if (!canFuseLoops(First, Second, Prog.params()))
        continue;
      std::shared_ptr<Loop> Fused = fuseLoops(First, Second);
      Current[Edge.Producer] = Fused;
      Current.erase(Current.begin() +
                    static_cast<std::ptrdiff_t>(Edge.Consumer));
      Changed = true;
      break; // dataflow indices are stale; rebuild the graph
    }
  }
  return Current;
}
