//===- transform/Distribute.cpp -------------------------------------------==//
//
// Part of the daisy project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "transform/Distribute.h"

#include "ir/Rewrite.h"

#include <cassert>
#include <map>
#include <set>

using namespace daisy;

namespace {

/// Accumulates where a scalar is accessed relative to loop L's body.
struct ScalarUsage {
  int FirstWriteItem = -1; // body item of the first textual write
  int FirstReadItem = -1;  // body item of the first textual read
  bool InRecurrence = false;
};

void scanScalarUses(const std::vector<NodePtr> &Body,
                    std::map<std::string, ScalarUsage> &Usage) {
  for (size_t Item = 0; Item < Body.size(); ++Item) {
    for (const auto &C : collectComputations(Body[Item])) {
      bool WritesScalar = C->write().Indices.empty();
      for (const ArrayAccess &R : C->reads()) {
        if (!R.Indices.empty())
          continue;
        ScalarUsage &U = Usage[R.Array];
        if (U.FirstReadItem < 0)
          U.FirstReadItem = static_cast<int>(Item);
        if (WritesScalar && C->write().Array == R.Array)
          U.InRecurrence = true;
      }
      if (WritesScalar) {
        ScalarUsage &U = Usage[C->write().Array];
        if (U.FirstWriteItem < 0)
          U.FirstWriteItem = static_cast<int>(Item);
      }
    }
  }
}

/// Number of accesses (reads + writes) to array \p Name under \p Root.
int countAccesses(const NodePtr &Root, const std::string &Name) {
  int Count = 0;
  for (const auto &C : collectComputations(Root)) {
    if (C->write().Array == Name)
      ++Count;
    for (const ArrayAccess &R : C->reads())
      if (R.Array == Name)
        ++Count;
  }
  return Count;
}

/// True if the scalar \p Name is accessed outside \p Inside within
/// \p Prog. Comparison is count-based because transformation passes work
/// on clones whose computations are distinct objects from the program's:
/// if the program contains exactly as many accesses as \p Inside, all of
/// them are the loop's own.
bool scalarEscapes(const Program &Prog, const NodePtr &Inside,
                   const std::string &Name) {
  int ProgramAccesses = 0;
  for (const NodePtr &Top : Prog.topLevel())
    ProgramAccesses += countAccesses(Top, Name);
  return ProgramAccesses != countAccesses(Inside, Name);
}

} // namespace

std::shared_ptr<Loop> daisy::expandScalars(const std::shared_ptr<Loop> &L,
                                           Program &Prog) {
  // A usable expansion index needs a constant-trip loop.
  bool BoundsConstant = true;
  for (const auto &[Name, C] : L->lower().terms())
    BoundsConstant &= Prog.params().count(Name) != 0;
  for (const auto &[Name, C] : L->upper().terms())
    BoundsConstant &= Prog.params().count(Name) != 0;
  if (!BoundsConstant)
    return L;
  int64_t Lo = L->lower().evaluate(Prog.params());
  int64_t Hi = L->upper().evaluate(Prog.params());
  if (Hi <= Lo)
    return L;

  std::map<std::string, ScalarUsage> Usage;
  scanScalarUses(L->body(), Usage);

  std::shared_ptr<Loop> Current = L;
  for (const auto &[Name, U] : Usage) {
    if (U.FirstWriteItem < 0 || U.FirstReadItem < 0)
      continue; // written-only or read-only: no cross-group glue
    if (U.InRecurrence)
      continue; // true scalar recurrence: expansion changes semantics
    if (U.FirstReadItem <= U.FirstWriteItem)
      continue; // reads may observe a previous iteration's value, or all
                // uses live in one item where fission cannot separate them
    const ArrayDecl *Decl = Prog.findArray(Name);
    if (!Decl || !Decl->Shape.empty())
      continue; // not a scalar
    if (!Decl->Transient)
      continue; // observable output: its final value must survive
    if (scalarEscapes(Prog, Current, Name))
      continue;

    std::string Expanded = Prog.freshArrayName(Name + "_x");
    Prog.addArray(Expanded, {Hi - Lo}, /*Transient=*/true);
    AffineExpr Index = AffineExpr::var(L->iterator()) - Lo;
    NodePtr Rewritten = retargetArrayInNode(Current, Name, Expanded, {Index});
    Current = std::static_pointer_cast<Loop>(Rewritten);
  }
  return Current;
}

std::vector<NodePtr>
daisy::distributeLoop(const std::shared_ptr<Loop> &L,
                      const std::vector<std::vector<size_t>> &Groups) {
  std::vector<NodePtr> Result;
  Result.reserve(Groups.size());
  for (const std::vector<size_t> &Group : Groups) {
    std::vector<NodePtr> Body;
    Body.reserve(Group.size());
    for (size_t Item : Group) {
      assert(Item < L->body().size() && "group index out of range");
      Body.push_back(L->body()[Item]->clone());
    }
    auto Copy = std::make_shared<Loop>(L->iterator(), L->lower(), L->upper(),
                                       std::move(Body), L->step());
    Copy->setParallel(L->isParallel());
    Copy->setVectorized(L->isVectorized());
    Copy->setAtomicReduction(L->usesAtomicReduction());
    Copy->setOpaque(L->isOpaque());
    Result.push_back(Copy);
  }
  return Result;
}
