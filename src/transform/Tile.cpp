//===- transform/Tile.cpp -------------------------------------------------==//
//
// Part of the daisy project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "transform/Tile.h"

#include "analysis/Legality.h"

#include <cassert>

using namespace daisy;

namespace {

/// Clones a loop header around a new body.
std::shared_ptr<Loop> rebuildLoop(const Loop &Old, std::vector<NodePtr> Body) {
  auto Copy = std::make_shared<Loop>(Old.iterator(), Old.lower(),
                                     Old.upper(), std::move(Body),
                                     Old.step());
  Copy->setParallel(Old.isParallel());
  Copy->setVectorized(Old.isVectorized());
  Copy->setAtomicReduction(Old.usesAtomicReduction());
  Copy->setOpaque(Old.isOpaque());
  return Copy;
}

/// Nests \p Headers (outermost first) around \p Payload. Each header is a
/// loop whose body will be replaced.
NodePtr nestLoops(const std::vector<std::shared_ptr<Loop>> &Headers,
                  std::vector<NodePtr> Payload) {
  NodePtr Current;
  for (size_t I = Headers.size(); I-- > 0;) {
    std::vector<NodePtr> Body;
    if (Current)
      Body.push_back(Current);
    else
      Body = std::move(Payload);
    Current = rebuildLoop(*Headers[I], std::move(Body));
    // rebuildLoop copies the old body-less header; reattach marks only.
  }
  return Current;
}

/// True if \p L has constant bounds with a trip count divisible by \p T.
bool isTileable(const Loop &L, int64_t T, const ValueEnv &Params) {
  if (T <= 1 || L.step() != 1)
    return false;
  bool BoundsConstant = true;
  for (const auto &[Name, Coefficient] : L.lower().terms())
    BoundsConstant &= Params.count(Name) != 0;
  for (const auto &[Name, Coefficient] : L.upper().terms())
    BoundsConstant &= Params.count(Name) != 0;
  if (!BoundsConstant)
    return false;
  int64_t Trip = L.upper().evaluate(Params) - L.lower().evaluate(Params);
  return Trip > T && Trip % T == 0;
}

} // namespace

NodePtr daisy::tileBand(const NodePtr &Root,
                        const std::vector<int64_t> &TileSizes,
                        const ValueEnv &Params) {
  std::vector<std::shared_ptr<Loop>> Band = perfectNestBand(Root);
  assert(!Band.empty() && "tileBand requires a loop root");

  std::vector<std::shared_ptr<Loop>> TileHeaders;
  std::vector<std::shared_ptr<Loop>> PointHeaders;
  for (size_t I = 0; I < Band.size(); ++I) {
    const auto &L = Band[I];
    int64_t T = I < TileSizes.size() ? TileSizes[I] : 0;
    if (!isTileable(*L, T, Params)) {
      PointHeaders.push_back(rebuildLoop(*L, {}));
      continue;
    }
    std::string TileIter = L->iterator() + "_t";
    auto TileLoop = std::make_shared<Loop>(TileIter, L->lower(), L->upper(),
                                           std::vector<NodePtr>{}, T);
    TileLoop->setParallel(L->isParallel());
    TileHeaders.push_back(TileLoop);
    // The point loop keeps the original iterator so the payload needs no
    // substitution; its bounds reference the tile iterator.
    auto PointLoop = std::make_shared<Loop>(
        L->iterator(), AffineExpr::var(TileIter),
        AffineExpr::var(TileIter) + T, std::vector<NodePtr>{}, 1);
    PointLoop->setVectorized(L->isVectorized());
    PointHeaders.push_back(PointLoop);
  }

  std::vector<std::shared_ptr<Loop>> AllHeaders = TileHeaders;
  AllHeaders.insert(AllHeaders.end(), PointHeaders.begin(),
                    PointHeaders.end());
  return nestLoops(AllHeaders, cloneBody(Band.back()->body()));
}

NodePtr daisy::stripMine(const NodePtr &Root, size_t Level, int64_t Width,
                         const ValueEnv &Params) {
  std::vector<std::shared_ptr<Loop>> Band = perfectNestBand(Root);
  assert(Level < Band.size() && "strip-mine level out of band");
  const auto &Target = Band[Level];
  if (!isTileable(*Target, Width, Params))
    return Root->clone();

  std::string ChunkIter = Target->iterator() + "_c";
  auto ChunkLoop =
      std::make_shared<Loop>(ChunkIter, Target->lower(), Target->upper(),
                             std::vector<NodePtr>{}, Width);
  ChunkLoop->setParallel(Target->isParallel());
  auto PointLoop = std::make_shared<Loop>(
      Target->iterator(), AffineExpr::var(ChunkIter),
      AffineExpr::var(ChunkIter) + Width, std::vector<NodePtr>{}, 1);
  PointLoop->setVectorized(true);

  // Chunk loop replaces the original position; the vector point loop sinks
  // to the innermost band position.
  std::vector<std::shared_ptr<Loop>> Headers;
  for (size_t I = 0; I < Band.size(); ++I)
    Headers.push_back(I == Level ? ChunkLoop : rebuildLoop(*Band[I], {}));
  Headers.push_back(PointLoop);
  return nestLoops(Headers, cloneBody(Band.back()->body()));
}
