//===- support/Persist.cpp ------------------------------------------------==//
//
// Part of the daisy project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Persist.h"

#include <cerrno>
#include <cstdio>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

using namespace daisy;

namespace {

/// Checkpoint header, fixed-width little-endian on disk:
///   8 bytes magic "DAISYCKP"
///   u32 format version (the caller's payload version)
///   u64 generation
///   u64 payload size
///   u32 CRC-32 of the payload
constexpr char Magic[8] = {'D', 'A', 'I', 'S', 'Y', 'C', 'K', 'P'};
constexpr size_t HeaderSize = 8 + 4 + 8 + 8 + 4;

void putLe32(uint8_t *Out, uint32_t V) {
  for (int I = 0; I < 4; ++I)
    Out[I] = static_cast<uint8_t>(V >> (8 * I));
}

void putLe64(uint8_t *Out, uint64_t V) {
  for (int I = 0; I < 8; ++I)
    Out[I] = static_cast<uint8_t>(V >> (8 * I));
}

uint32_t getLe32(const uint8_t *In) {
  uint32_t V = 0;
  for (int I = 0; I < 4; ++I)
    V |= static_cast<uint32_t>(In[I]) << (8 * I);
  return V;
}

uint64_t getLe64(const uint8_t *In) {
  uint64_t V = 0;
  for (int I = 0; I < 8; ++I)
    V |= static_cast<uint64_t>(In[I]) << (8 * I);
  return V;
}

/// Writes all of \p Size bytes, restarting on short writes and EINTR.
bool writeAll(int Fd, const uint8_t *Data, size_t Size) {
  while (Size > 0) {
    ssize_t N = ::write(Fd, Data, Size);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Data += N;
    Size -= static_cast<size_t>(N);
  }
  return true;
}

/// Best-effort fsync of the directory containing \p Path, so the rename
/// itself is durable. Failure is ignored — the data file is already
/// synced, and not every filesystem supports directory fsync.
void syncParentDir(const std::string &Path) {
  size_t Slash = Path.find_last_of('/');
  std::string Dir = Slash == std::string::npos ? "." : Path.substr(0, Slash);
  if (Dir.empty())
    Dir = "/";
  int Fd = ::open(Dir.c_str(), O_RDONLY);
  if (Fd < 0)
    return;
  (void)::fsync(Fd);
  ::close(Fd);
}

} // namespace

uint32_t daisy::crc32(const void *Data, size_t Len) {
  // Table-driven CRC-32 (reflected 0xEDB88320), built once.
  static const auto Table = [] {
    std::vector<uint32_t> T(256);
    for (uint32_t I = 0; I < 256; ++I) {
      uint32_t C = I;
      for (int K = 0; K < 8; ++K)
        C = (C & 1) ? 0xEDB88320u ^ (C >> 1) : C >> 1;
      T[I] = C;
    }
    return T;
  }();
  const uint8_t *Bytes = static_cast<const uint8_t *>(Data);
  uint32_t Crc = 0xFFFFFFFFu;
  for (size_t I = 0; I < Len; ++I)
    Crc = Table[(Crc ^ Bytes[I]) & 0xFF] ^ (Crc >> 8);
  return Crc ^ 0xFFFFFFFFu;
}

bool daisy::writeCheckpoint(const std::string &Path, const void *Payload,
                            size_t PayloadSize, uint64_t Generation,
                            uint32_t Version) {
  uint8_t Header[HeaderSize];
  std::memcpy(Header, Magic, 8);
  putLe32(Header + 8, Version);
  putLe64(Header + 12, Generation);
  putLe64(Header + 20, static_cast<uint64_t>(PayloadSize));
  putLe32(Header + 28, crc32(Payload, PayloadSize));

  std::string Tmp = Path + ".tmp";
  int Fd = ::open(Tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (Fd < 0)
    return false;
  bool Written = writeAll(Fd, Header, HeaderSize) &&
                 writeAll(Fd, static_cast<const uint8_t *>(Payload),
                          PayloadSize) &&
                 ::fsync(Fd) == 0;
  ::close(Fd);
  if (!Written) {
    ::unlink(Tmp.c_str());
    return false;
  }
  // Rotate the current checkpoint into the last-good slot. ENOENT (first
  // checkpoint ever) is fine; any other failure leaves the current file
  // untouched and keeps recovery possible, so only the final rename is
  // load-bearing.
  (void)::rename(Path.c_str(), checkpointPrevPath(Path).c_str());
  if (::rename(Tmp.c_str(), Path.c_str()) != 0) {
    ::unlink(Tmp.c_str());
    return false;
  }
  syncParentDir(Path);
  return true;
}

CheckpointFile daisy::readCheckpointFile(const std::string &Path,
                                         uint32_t Version) {
  CheckpointFile Result;
  int Fd = ::open(Path.c_str(), O_RDONLY);
  if (Fd < 0)
    return Result;
  Result.Exists = true;

  struct stat St;
  if (::fstat(Fd, &St) != 0 || St.st_size < 0 ||
      static_cast<uint64_t>(St.st_size) < HeaderSize) {
    ::close(Fd);
    return Result;
  }
  std::vector<uint8_t> Bytes(static_cast<size_t>(St.st_size));
  size_t Off = 0;
  while (Off < Bytes.size()) {
    ssize_t N = ::read(Fd, Bytes.data() + Off, Bytes.size() - Off);
    if (N < 0 && errno == EINTR)
      continue;
    if (N <= 0)
      break;
    Off += static_cast<size_t>(N);
  }
  ::close(Fd);
  if (Off != Bytes.size())
    return Result;

  if (std::memcmp(Bytes.data(), Magic, 8) != 0)
    return Result;
  Result.Version = getLe32(Bytes.data() + 8);
  Result.Generation = getLe64(Bytes.data() + 12);
  uint64_t PayloadSize = getLe64(Bytes.data() + 20);
  uint32_t Crc = getLe32(Bytes.data() + 28);
  if (Result.Version != Version ||
      PayloadSize != Bytes.size() - HeaderSize ||
      crc32(Bytes.data() + HeaderSize, static_cast<size_t>(PayloadSize)) !=
          Crc)
    return Result;
  Result.Payload.assign(Bytes.begin() + HeaderSize, Bytes.end());
  Result.Valid = true;
  return Result;
}

CheckpointLoad daisy::loadCheckpoint(const std::string &Path,
                                     uint32_t Version) {
  CheckpointLoad Load;
  CheckpointFile Current = readCheckpointFile(Path, Version);
  if (Current.Valid) {
    Load.File = std::move(Current);
    return Load;
  }
  if (Current.Exists)
    ++Load.CorruptFiles;
  CheckpointFile Prev = readCheckpointFile(checkpointPrevPath(Path), Version);
  if (Prev.Valid) {
    Load.File = std::move(Prev);
    return Load;
  }
  if (Prev.Exists)
    ++Load.CorruptFiles;
  return Load;
}
