//===- support/Random.h - Deterministic random number generation -*- C++ -*-=//
//
// Part of the daisy project: a reproduction of "A Priori Loop Nest
// Normalization" (CGO'25). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic pseudo-random number generation used across the project.
///
/// All stochastic components (B-variant generation, evolutionary search,
/// MCTS) are seeded explicitly so experiments are exactly reproducible.
///
//===----------------------------------------------------------------------===//

#ifndef DAISY_SUPPORT_RANDOM_H
#define DAISY_SUPPORT_RANDOM_H

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace daisy {

/// SplitMix64 generator, used to seed Xoshiro streams.
class SplitMix64 {
public:
  explicit SplitMix64(uint64_t Seed) : State(Seed) {}

  uint64_t next();

private:
  uint64_t State;
};

/// Xoshiro256** generator: fast, high-quality, deterministic PRNG.
///
/// This is the single random source used by all randomized algorithms in
/// the repository. It is seeded from a user-provided 64-bit seed through
/// SplitMix64 as recommended by the xoshiro authors.
class Rng {
public:
  explicit Rng(uint64_t Seed = 0x9E3779B97F4A7C15ull);

  /// Returns a uniformly distributed 64-bit value.
  uint64_t next();

  /// Returns a uniform integer in [0, Bound). \p Bound must be positive.
  uint64_t nextBelow(uint64_t Bound);

  /// Returns a uniform integer in the inclusive range [Lo, Hi].
  int64_t nextInRange(int64_t Lo, int64_t Hi);

  /// Returns a uniform double in [0, 1).
  double nextDouble();

  /// Returns true with probability \p P.
  bool nextBool(double P = 0.5);

  /// Fisher-Yates shuffles \p Values in place.
  template <typename T> void shuffle(std::vector<T> &Values) {
    if (Values.size() < 2)
      return;
    for (size_t I = Values.size() - 1; I > 0; --I) {
      size_t J = static_cast<size_t>(nextBelow(I + 1));
      std::swap(Values[I], Values[J]);
    }
  }

  /// Picks a uniformly random element of \p Values (must be non-empty).
  template <typename T> const T &pick(const std::vector<T> &Values) {
    return Values[static_cast<size_t>(nextBelow(Values.size()))];
  }

private:
  uint64_t State[4];
};

/// Derives the seed of an independent Rng stream \p Stream from \p Base by
/// scrambling both through SplitMix64. Parallel and reordered consumers
/// (per-rollout draws in the MCTS, per-candidate streams in batch
/// evaluation) seed their own Rng from (Base, index) so results do not
/// depend on evaluation order or thread count.
uint64_t deriveSeed(uint64_t Base, uint64_t Stream);

} // namespace daisy

#endif // DAISY_SUPPORT_RANDOM_H
