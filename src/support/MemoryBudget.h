//===- support/MemoryBudget.h - Byte-accounted memory budget -----*- C++ -*-=//
//
// Part of the daisy project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A shared byte counter with a hard ceiling: the accounting primitive
/// behind EngineOptions::MemoryBudgetBytes. Holders of engine-retained
/// memory (plan-cache entries, pooled run contexts, tree-walk fallback
/// environments) charge their footprint with tryCharge before keeping it
/// and release it when they let go. Because the only way the counter
/// grows is a successful compare-and-swap that checked the limit, the
/// charged total can never exceed the limit at any instant — the
/// invariant the budget tests assert.
///
/// The budget does not itself evict anything; it only answers "is there
/// room". Pressure responses live with the owners: the Engine evicts
/// plan-cache LRU tails and retries, the context pool drops a context
/// instead of retaining it, and a kernel that cannot fit even after
/// eviction is surfaced as RunStatus::ResourceExhausted.
///
//===----------------------------------------------------------------------===//

#ifndef DAISY_SUPPORT_MEMORYBUDGET_H
#define DAISY_SUPPORT_MEMORYBUDGET_H

#include <atomic>
#include <cstddef>

namespace daisy {

/// Thread-safe byte accounting against a fixed limit. A limit of 0 means
/// unlimited: charges always succeed and only the usage/peak counters are
/// maintained.
class MemoryBudget {
public:
  explicit MemoryBudget(size_t LimitBytes) : LimitBytes(LimitBytes) {}
  MemoryBudget(const MemoryBudget &) = delete;
  MemoryBudget &operator=(const MemoryBudget &) = delete;

  /// Attempts to reserve \p Bytes. Returns false (and charges nothing)
  /// when the reservation would push usage past the limit.
  bool tryCharge(size_t Bytes) {
    size_t Cur = Used.load(std::memory_order_relaxed);
    for (;;) {
      size_t Next = Cur + Bytes;
      if (LimitBytes && Next > LimitBytes)
        return false;
      if (Used.compare_exchange_weak(Cur, Next, std::memory_order_relaxed)) {
        bumpPeak(Next);
        return true;
      }
    }
  }

  /// Returns \p Bytes previously charged. Callers release exactly what
  /// they charged; the counter never underflows by contract.
  void release(size_t Bytes) {
    Used.fetch_sub(Bytes, std::memory_order_relaxed);
  }

  /// Bytes currently charged.
  size_t used() const { return Used.load(std::memory_order_relaxed); }

  /// High-water mark of used() over the budget's lifetime. By
  /// construction peak() <= limit() whenever a limit is set.
  size_t peak() const { return Peak.load(std::memory_order_relaxed); }

  /// The ceiling; 0 = unlimited.
  size_t limit() const { return LimitBytes; }

private:
  void bumpPeak(size_t Value) {
    size_t P = Peak.load(std::memory_order_relaxed);
    while (Value > P &&
           !Peak.compare_exchange_weak(P, Value, std::memory_order_relaxed))
      ;
  }

  const size_t LimitBytes;
  std::atomic<size_t> Used{0};
  std::atomic<size_t> Peak{0};
};

} // namespace daisy

#endif // DAISY_SUPPORT_MEMORYBUDGET_H
