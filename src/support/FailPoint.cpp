//===- support/FailPoint.cpp ----------------------------------------------==//
//
// Part of the daisy project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/FailPoint.h"

#if DAISY_ENABLE_FAILPOINTS

#include "support/Hashing.h"
#include "support/Random.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <unordered_map>

namespace daisy {

namespace {

struct SiteState {
  FailPointConfig Config;
  Rng Stream{0};
  uint64_t Fires = 0;
};

struct Registry {
  std::mutex Mutex;
  std::unordered_map<std::string, SiteState> Sites;
};

Registry &registry() {
  static Registry R;
  return R;
}

/// Fast path guard: sites pay one relaxed load when nothing is armed.
std::atomic<size_t> ArmedCount{0};

} // namespace

void armFailPoint(const std::string &Site, const FailPointConfig &Config,
                  uint64_t Seed) {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  SiteState &State = R.Sites[Site];
  State.Config = Config;
  State.Stream = Rng(deriveSeed(Seed, fnv1a(Site)));
  State.Fires = 0;
  ArmedCount.store(R.Sites.size(), std::memory_order_relaxed);
}

void disarmFailPoint(const std::string &Site) {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  R.Sites.erase(Site);
  ArmedCount.store(R.Sites.size(), std::memory_order_relaxed);
}

void disarmAllFailPoints() {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  R.Sites.clear();
  ArmedCount.store(0, std::memory_order_relaxed);
}

uint64_t failPointFireCount(const std::string &Site) {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  auto It = R.Sites.find(Site);
  return It == R.Sites.end() ? 0 : It->second.Fires;
}

bool failPointEvaluate(const char *Site) {
  if (ArmedCount.load(std::memory_order_relaxed) == 0)
    return false;
  FailAction Action;
  uint64_t DelayMicros = 0;
  {
    Registry &R = registry();
    std::lock_guard<std::mutex> Lock(R.Mutex);
    auto It = R.Sites.find(Site);
    if (It == R.Sites.end())
      return false;
    SiteState &State = It->second;
    if (State.Fires >= State.Config.MaxFires)
      return false;
    // The draw happens under the lock so the site's stream is consumed
    // in a serializable order; the schedule across sites depends only on
    // how many times each site is evaluated, never on which thread won.
    if (State.Stream.nextDouble() >= State.Config.Probability)
      return false;
    ++State.Fires;
    Action = State.Config.Action;
    DelayMicros = State.Config.DelayMicros;
  }
  // Side effects happen outside the registry lock: a sleeping or
  // throwing fail point must not serialize every other site.
  switch (Action) {
  case FailAction::Trigger:
    return true;
  case FailAction::Throw:
    throw std::runtime_error(std::string("injected fault at fail point '") +
                             Site + "'");
  case FailAction::Delay:
    std::this_thread::sleep_for(std::chrono::microseconds(DelayMicros));
    return false;
  }
  return false;
}

size_t armFailPointsFromSpec(const std::string &Spec, uint64_t Seed) {
  size_t Armed = 0;
  size_t Pos = 0;
  auto malformed = [&](const std::string &Entry) {
    throw std::invalid_argument(
        "malformed fail-point spec entry '" + Entry +
        "' (want site=action[:micros]@probability[xmaxfires])");
  };
  while (Pos < Spec.size()) {
    size_t End = Spec.find(';', Pos);
    std::string Entry = Spec.substr(
        Pos, End == std::string::npos ? std::string::npos : End - Pos);
    Pos = End == std::string::npos ? Spec.size() : End + 1;
    if (Entry.empty())
      continue;

    size_t Eq = Entry.find('=');
    if (Eq == std::string::npos || Eq == 0)
      malformed(Entry);
    std::string Site = Entry.substr(0, Eq);
    std::string Rest = Entry.substr(Eq + 1);

    FailPointConfig Config;
    size_t At = Rest.find('@');
    std::string ActionPart = At == std::string::npos ? Rest : Rest.substr(0, At);
    if (size_t Colon = ActionPart.find(':'); Colon != std::string::npos) {
      Config.DelayMicros =
          std::strtoull(ActionPart.c_str() + Colon + 1, nullptr, 10);
      ActionPart.resize(Colon);
    }
    if (ActionPart == "trigger")
      Config.Action = FailAction::Trigger;
    else if (ActionPart == "throw")
      Config.Action = FailAction::Throw;
    else if (ActionPart == "delay")
      Config.Action = FailAction::Delay;
    else
      malformed(Entry);
    if (At != std::string::npos) {
      std::string Prob = Rest.substr(At + 1);
      if (size_t X = Prob.find('x'); X != std::string::npos) {
        Config.MaxFires = std::strtoull(Prob.c_str() + X + 1, nullptr, 10);
        Prob.resize(X);
      }
      char *EndPtr = nullptr;
      Config.Probability = std::strtod(Prob.c_str(), &EndPtr);
      if (EndPtr == Prob.c_str())
        malformed(Entry);
    }
    armFailPoint(Site, Config, Seed);
    ++Armed;
  }
  return Armed;
}

size_t armFailPointsFromEnv(const char *Spec, const char *SeedText) {
  if (!Spec || !*Spec)
    return 0;
  uint64_t Seed = 0xDA15Eull;
  if (SeedText)
    Seed = std::strtoull(SeedText, nullptr, 10);
  try {
    return armFailPointsFromSpec(Spec, Seed);
  } catch (const std::invalid_argument &E) {
    std::fprintf(stderr, "daisy: ignoring DAISY_FAILPOINTS: %s\n", E.what());
  }
  return 0;
}

namespace {

/// Environment arming: DAISY_FAILPOINTS holds a spec-grammar scenario
/// armed for the whole process before main() runs, seeded from
/// DAISY_FAILPOINTS_SEED (decimal, default 0xDA15E). This is how CI arms
/// sites a test binary does not arm itself — e.g. "engine.budget" across
/// the serving fault matrix. Sites never marked by the running code cost
/// nothing; a malformed spec is reported and ignored rather than
/// aborting the process it was meant to observe (armFailPointsFromEnv,
/// which tests exercise directly).
struct EnvScenario {
  EnvScenario() {
    (void)armFailPointsFromEnv(std::getenv("DAISY_FAILPOINTS"),
                               std::getenv("DAISY_FAILPOINTS_SEED"));
  }
};
const EnvScenario ArmFromEnv;

} // namespace

} // namespace daisy

#endif // DAISY_ENABLE_FAILPOINTS
