//===- support/Hashing.h - Shared hash combining -----------------*- C++ -*-=//
//
// Part of the daisy project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one hash combiner used by every 64-bit digest in the project:
/// structural hashing (ir/StructuralHash), the machine-model digest
/// (machine/Simulator simOptionsDigest), and the simulation-cache keys
/// (sched/Evaluator). Keeping a single definition keeps the mixings
/// compatible by construction — cache keys embed structural hashes, so
/// the combiners must never drift apart.
///
//===----------------------------------------------------------------------===//

#ifndef DAISY_SUPPORT_HASHING_H
#define DAISY_SUPPORT_HASHING_H

#include <cstdint>
#include <string>

namespace daisy {

/// FNV-1a hash of \p Text.
inline uint64_t fnv1a(const std::string &Text) {
  uint64_t Hash = 1469598103934665603ull;
  for (char C : Text) {
    Hash ^= static_cast<unsigned char>(C);
    Hash *= 1099511628211ull;
  }
  return Hash;
}

/// Order-sensitive 64-bit hash accumulator (boost::hash_combine-style
/// mixing). Distinct uses pick distinct seeds so equal value sequences
/// hashed for different purposes do not collide by construction.
class HashCombiner {
public:
  explicit HashCombiner(uint64_t Seed) : Hash(Seed) {}

  void combine(uint64_t Value) {
    Hash ^= Value + 0x9E3779B97F4A7C15ull + (Hash << 6) + (Hash >> 2);
  }

  void combine(const std::string &Text) { combine(fnv1a(Text)); }

  void combineDouble(double Value) {
    uint64_t Bits;
    static_assert(sizeof(Bits) == sizeof(Value));
    __builtin_memcpy(&Bits, &Value, sizeof(Bits));
    combine(Bits);
  }

  uint64_t value() const { return Hash; }

private:
  uint64_t Hash;
};

} // namespace daisy

#endif // DAISY_SUPPORT_HASHING_H
