//===- support/StringUtils.cpp --------------------------------------------==//
//
// Part of the daisy project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/StringUtils.h"

#include <cstdio>

using namespace daisy;

std::string daisy::join(const std::vector<std::string> &Parts,
                        const std::string &Separator) {
  std::string Result;
  for (size_t I = 0; I < Parts.size(); ++I) {
    if (I != 0)
      Result += Separator;
    Result += Parts[I];
  }
  return Result;
}

std::string daisy::formatDouble(double Value, int Digits) {
  char Buffer[64];
  std::snprintf(Buffer, sizeof(Buffer), "%.*f", Digits, Value);
  return Buffer;
}

std::string daisy::padLeft(const std::string &Text, size_t Width) {
  if (Text.size() >= Width)
    return Text;
  return std::string(Width - Text.size(), ' ') + Text;
}

std::string daisy::padRight(const std::string &Text, size_t Width) {
  if (Text.size() >= Width)
    return Text;
  return Text + std::string(Width - Text.size(), ' ');
}

bool daisy::startsWith(const std::string &Text, const std::string &Prefix) {
  return Text.size() >= Prefix.size() &&
         Text.compare(0, Prefix.size(), Prefix) == 0;
}
