//===- support/Histogram.h - Lock-free bucketed histograms ------*- C++ -*-===//
//
// Part of the daisy project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fixed-bucket, lock-free histograms for hot-path telemetry, extracted
/// from the serving runtime (serve/Server.cpp used to hand-roll two of
/// these) so every subsystem records into the same structure and the
/// metrics exporter (obs/Metrics.h) can expose any of them uniformly.
///
/// AtomicHistogram<N, Bucketing> is an array of N relaxed atomic cells; a
/// record() is one fetch_add, so any number of worker lanes record
/// concurrently with readers snapshotting — a racing snapshot sees each
/// cell's count at some instant, which is all a histogram promises.
/// The Bucketing policy maps a sample value to a cell and back to the
/// bucket's bounds/midpoint, so quantile estimation and Prometheus-style
/// cumulative exposition derive from one definition instead of three.
///
/// Two bucketings cover the runtime's needs:
///
///   - Log2Bucketing: bucket B counts samples in [2^B, 2^(B+1)) (bucket 0
///     takes 0 and 1). Queue depths: 16 buckets reach 65k.
///   - LogLinearBucketing: exact buckets below 4, then four sub-buckets
///     per octave (resolution about ±12.5%). 256 buckets span past
///     centuries of microseconds, so the top clamp is theoretical.
///     Latencies: accurate at the microsecond floor, log-compact at the
///     tail.
///
//===----------------------------------------------------------------------===//

#ifndef DAISY_SUPPORT_HISTOGRAM_H
#define DAISY_SUPPORT_HISTOGRAM_H

#include <algorithm>
#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <limits>

namespace daisy {

/// Power-of-two bucketing: floor(log2(Value)), clamped to the histogram.
struct Log2Bucketing {
  static size_t bucket(uint64_t Value, size_t Buckets) {
    size_t B = 0;
    while (Value > 1 && B + 1 < Buckets) {
      Value >>= 1;
      ++B;
    }
    return B;
  }
  /// Bucket 0 starts at 0 (it also holds the zero samples).
  static double lowerBound(size_t Idx, size_t /*Buckets*/) {
    return Idx == 0 ? 0.0 : static_cast<double>(1ull << Idx);
  }
  /// Exclusive upper bound; the clamp bucket is unbounded.
  static double upperBound(size_t Idx, size_t Buckets) {
    if (Idx + 1 >= Buckets)
      return std::numeric_limits<double>::infinity();
    return static_cast<double>(1ull << (Idx + 1));
  }
  static double midpoint(size_t Idx, size_t Buckets) {
    if (Idx + 1 >= Buckets)
      return lowerBound(Idx, Buckets);
    return 0.5 * (lowerBound(Idx, Buckets) + upperBound(Idx, Buckets));
  }
};

/// Log-linear bucketing: exact below 4, then four sub-buckets per octave
/// (±12.5% resolution). The bucket layout (and therefore every quantile
/// the serving runtime ever reported) is exactly the one serve/Server.cpp
/// introduced; it now lives here so the three per-stage histograms and
/// the exporter share it.
struct LogLinearBucketing {
  static size_t bucket(uint64_t Value, size_t Buckets) {
    if (Value < 4)
      return static_cast<size_t>(Value);
    size_t E = 63 - static_cast<size_t>(__builtin_clzll(Value));
    size_t Sub = static_cast<size_t>((Value >> (E - 2)) & 3);
    size_t Idx = (E - 1) * 4 + Sub;
    return Idx < Buckets ? Idx : Buckets - 1;
  }
  static double lowerBound(size_t Idx, size_t /*Buckets*/) {
    if (Idx < 4)
      return static_cast<double>(Idx);
    size_t E = Idx / 4 + 1;
    size_t Sub = Idx % 4;
    return static_cast<double>((4ull + Sub) << (E - 2));
  }
  /// Exclusive upper bound; below 4 the buckets are single integers, and
  /// the clamp bucket is unbounded.
  static double upperBound(size_t Idx, size_t Buckets) {
    if (Idx + 1 >= Buckets)
      return std::numeric_limits<double>::infinity();
    if (Idx < 4)
      return static_cast<double>(Idx + 1);
    size_t E = Idx / 4 + 1;
    return lowerBound(Idx, Buckets) + static_cast<double>(1ull << (E - 2));
  }
  /// The quantile estimate of a bucket. Exact buckets report their exact
  /// value (not value + 0.5): a 0µs sample is 0µs, not half a microsecond.
  static double midpoint(size_t Idx, size_t Buckets) {
    if (Idx < 4)
      return static_cast<double>(Idx);
    if (Idx + 1 >= Buckets)
      return lowerBound(Idx, Buckets);
    return 0.5 * (lowerBound(Idx, Buckets) + upperBound(Idx, Buckets));
  }
};

/// The histogram: N lock-free cells under a Bucketing policy. All methods
/// are safe against concurrent record() calls; mutators other than
/// record() (reset, merge destination) are for quiesced phases.
template <size_t N, typename Bucketing> class AtomicHistogram {
  static_assert(N >= 2, "a histogram needs at least two buckets");

public:
  AtomicHistogram() {
    for (auto &Cell : Cells)
      Cell.store(0, std::memory_order_relaxed);
  }

  static constexpr size_t size() { return N; }

  /// One sample. The hot-path cost: one relaxed fetch_add.
  void record(uint64_t Value) {
    Cells[Bucketing::bucket(Value, N)].fetch_add(1, std::memory_order_relaxed);
  }

  uint64_t count() const {
    uint64_t Total = 0;
    for (const auto &Cell : Cells)
      Total += Cell.load(std::memory_order_relaxed);
    return Total;
  }

  std::array<uint64_t, N> snapshot() const {
    std::array<uint64_t, N> Out;
    for (size_t I = 0; I < N; ++I)
      Out[I] = Cells[I].load(std::memory_order_relaxed);
    return Out;
  }

  /// Quantile (0 <= Q <= 1) estimated at the covering bucket's midpoint;
  /// 0 when the histogram is empty.
  double quantile(double Q) const {
    std::array<uint64_t, N> Counts = snapshot();
    uint64_t Total = 0;
    for (uint64_t C : Counts)
      Total += C;
    if (Total == 0)
      return 0.0;
    Q = std::min(std::max(Q, 0.0), 1.0);
    uint64_t Rank = static_cast<uint64_t>(Q * static_cast<double>(Total - 1));
    uint64_t Seen = 0;
    for (size_t I = 0; I < N; ++I) {
      Seen += Counts[I];
      if (Seen > Rank)
        return Bucketing::midpoint(I, N);
    }
    return Bucketing::midpoint(N - 1, N);
  }

  /// Midpoint-weighted estimate of the sum of all recorded samples.
  /// Error is bounded by the bucketing resolution per sample.
  double approxSum() const {
    double Sum = 0.0;
    for (size_t I = 0; I < N; ++I)
      Sum += static_cast<double>(Cells[I].load(std::memory_order_relaxed)) *
             Bucketing::midpoint(I, N);
    return Sum;
  }

  /// Adds \p Other's cells into this histogram (shard aggregation).
  void merge(const AtomicHistogram &Other) {
    for (size_t I = 0; I < N; ++I)
      Cells[I].fetch_add(Other.Cells[I].load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
  }

  void reset() {
    for (auto &Cell : Cells)
      Cell.store(0, std::memory_order_relaxed);
  }

  // Bucket-bounds iteration for exporters and quantile consumers.
  static double lowerBound(size_t Idx) { return Bucketing::lowerBound(Idx, N); }
  static double upperBound(size_t Idx) { return Bucketing::upperBound(Idx, N); }
  static double midpoint(size_t Idx) { return Bucketing::midpoint(Idx, N); }

private:
  std::array<std::atomic<uint64_t>, N> Cells;
};

/// The serving runtime's two shapes, shared with tests and the exporter.
using DepthHistogram = AtomicHistogram<16, Log2Bucketing>;
using LatencyHistogram = AtomicHistogram<256, LogLinearBucketing>;

} // namespace daisy

#endif // DAISY_SUPPORT_HISTOGRAM_H
