//===- support/CircuitBreaker.h - Poison-kernel circuit breaker --*- C++ -*-=//
//
// Part of the daisy project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A per-routing-key circuit breaker: the self-protection state machine
/// behind the engine's poison-kernel quarantine (api/Engine.h,
/// EngineOptions::Quarantine).
///
/// States, the classic three:
///
///   Closed   — healthy. Every run attempts the compiled plan; failures
///              are counted within a sliding window.
///   Open     — quarantined: FailureThreshold run-faults landed within
///              Window (or the "engine.quarantine" fail point forced it).
///              Runs skip the plan entirely and reroute to the tree-walk
///              reference path — bit-identical results at degraded
///              throughput, never a repeated crash loop.
///   HalfOpen — Cooldown elapsed. Exactly one probe request is allowed
///              back onto the plan ("Engine.QuarantineProbes"); its
///              success closes the breaker, its failure re-opens it for
///              another cooldown. Concurrent requests keep rerouting
///              while the probe is in flight.
///
/// Thread-safe; one mutex per breaker, touched only by kernels that have
/// a breaker attached (raw Kernel::compile never pays it). Counters:
/// "Engine.Quarantined" counts closed-to-open transitions,
/// "Engine.QuarantineProbes" counts probe grants. Every state transition
/// also lands an instant in the flight recorder (obs/Trace.h) —
/// engine.quarantine_{open,half_open,close} — so a trace shows exactly
/// when a kernel was quarantined and when it healed.
///
//===----------------------------------------------------------------------===//

#ifndef DAISY_SUPPORT_CIRCUITBREAKER_H
#define DAISY_SUPPORT_CIRCUITBREAKER_H

#include "obs/Trace.h"
#include "support/Statistics.h"

#include <chrono>
#include <mutex>

namespace daisy {

class CircuitBreaker {
public:
  using Clock = std::chrono::steady_clock;

  struct Options {
    /// Run-faults within Window that open the breaker; 0 disables
    /// breaker consultation entirely (api/Engine then attaches none).
    int FailureThreshold = 3;
    /// Sliding failure-counting window.
    std::chrono::microseconds Window{1000000};
    /// Open-state dwell time before a half-open probe is allowed.
    std::chrono::microseconds Cooldown{10000};
  };

  enum class State { Closed, Open, HalfOpen };

  /// What the caller should do with the current request.
  enum class Gate {
    Allow,      ///< Closed: attempt the plan, report the outcome.
    AllowProbe, ///< Half-open probe: attempt the plan; outcome decides.
    Reroute,    ///< Open: skip the plan, serve via tree-walk.
  };

  explicit CircuitBreaker(const Options &Opts) : Opts(Opts) {}

  /// Admission decision for one run. \p ForceOpen (the
  /// "engine.quarantine" fail point) slams a closed breaker open as if
  /// the threshold had been crossed.
  Gate admit(bool ForceOpen = false) {
    Clock::time_point Now = Clock::now();
    std::lock_guard<std::mutex> Lock(M);
    if (ForceOpen && Current == State::Closed)
      openLocked(Now);
    switch (Current) {
    case State::Closed:
      return Gate::Allow;
    case State::Open:
      if (Now < OpenUntil)
        return Gate::Reroute;
      Current = State::HalfOpen;
      ProbeInFlight = false;
      traceInstant(TraceCategory::Engine, "engine.quarantine_half_open");
      [[fallthrough]];
    case State::HalfOpen:
      if (ProbeInFlight)
        return Gate::Reroute;
      ProbeInFlight = true;
      addStatsCounter("Engine.QuarantineProbes");
      return Gate::AllowProbe;
    }
    return Gate::Allow;
  }

  /// Reports the outcome of a Gate::Allow / Gate::AllowProbe attempt.
  void recordSuccess(Gate G) {
    std::lock_guard<std::mutex> Lock(M);
    if (G == Gate::AllowProbe && Current == State::HalfOpen) {
      Current = State::Closed;
      Failures = 0;
      ProbeInFlight = false;
      traceInstant(TraceCategory::Engine, "engine.quarantine_close");
    }
  }

  void recordFailure(Gate G) {
    Clock::time_point Now = Clock::now();
    std::lock_guard<std::mutex> Lock(M);
    if (G == Gate::AllowProbe) {
      // A failed probe re-opens without counting toward a fresh window —
      // the kernel is still poisoned.
      if (Current == State::HalfOpen)
        openLocked(Now);
      return;
    }
    if (Current != State::Closed)
      return;
    if (Failures == 0 || Now - WindowStart > Opts.Window) {
      WindowStart = Now;
      Failures = 0;
    }
    if (++Failures >= Opts.FailureThreshold)
      openLocked(Now);
  }

  State state() const {
    std::lock_guard<std::mutex> Lock(M);
    return Current;
  }

private:
  void openLocked(Clock::time_point Now) {
    Current = State::Open;
    OpenUntil = Now + Opts.Cooldown;
    Failures = 0;
    ProbeInFlight = false;
    addStatsCounter("Engine.Quarantined");
    traceInstant(TraceCategory::Engine, "engine.quarantine_open");
  }

  const Options Opts;
  mutable std::mutex M;
  State Current = State::Closed;
  int Failures = 0;
  Clock::time_point WindowStart{};
  Clock::time_point OpenUntil{};
  bool ProbeInFlight = false;
};

} // namespace daisy

#endif // DAISY_SUPPORT_CIRCUITBREAKER_H
