//===- support/Statistics.cpp ---------------------------------------------==//
//
// Part of the daisy project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Statistics.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <map>
#include <mutex>

using namespace daisy;

namespace {

/// Counter registry. Values are atomic cells in a node-stable map: name
/// resolution happens under the mutex (it is paid once per counter by the
/// hot paths, which cache the cell reference via statsCounterCell), while
/// increments are lock-free — the serving runtime bumps counters at
/// request rate from every worker lane.
struct CounterRegistry {
  std::mutex Mutex;
  std::map<std::string, std::atomic<int64_t>> Counters;

  std::atomic<int64_t> &cell(const std::string &Name) {
    std::lock_guard<std::mutex> Lock(Mutex);
    return Counters[Name];
  }
};

CounterRegistry &registry() {
  static CounterRegistry R;
  return R;
}

} // namespace

void daisy::addStatsCounter(const std::string &Name, int64_t Delta) {
  registry().cell(Name).fetch_add(Delta, std::memory_order_relaxed);
}

void daisy::maxStatsCounter(const std::string &Name, int64_t Value) {
  maxStatsCounter(registry().cell(Name), Value);
}

void daisy::maxStatsCounter(std::atomic<int64_t> &Cell, int64_t Value) {
  int64_t Seen = Cell.load(std::memory_order_relaxed);
  while (Seen < Value &&
         !Cell.compare_exchange_weak(Seen, Value, std::memory_order_relaxed))
    ;
}

std::atomic<int64_t> &daisy::statsCounterCell(const std::string &Name) {
  return registry().cell(Name);
}

int64_t daisy::statsCounter(const std::string &Name) {
  CounterRegistry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  auto It = R.Counters.find(Name);
  return It == R.Counters.end() ? 0
                                : It->second.load(std::memory_order_relaxed);
}

std::vector<std::pair<std::string, int64_t>> daisy::snapshotStatsCounters() {
  CounterRegistry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  std::vector<std::pair<std::string, int64_t>> Out;
  Out.reserve(R.Counters.size());
  // std::map iterates in key order, so the snapshot is sorted by name
  // without a second pass.
  for (const auto &[Name, Value] : R.Counters)
    Out.emplace_back(Name, Value.load(std::memory_order_relaxed));
  return Out;
}

void daisy::resetStatsCounters() {
  CounterRegistry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  for (auto &[Name, Value] : R.Counters)
    Value.store(0, std::memory_order_relaxed);
}

double daisy::mean(const std::vector<double> &Values) {
  if (Values.empty())
    return 0.0;
  double Sum = 0.0;
  for (double Value : Values)
    Sum += Value;
  return Sum / static_cast<double>(Values.size());
}

double daisy::median(std::vector<double> Values) {
  if (Values.empty())
    return 0.0;
  std::sort(Values.begin(), Values.end());
  size_t Mid = Values.size() / 2;
  if (Values.size() % 2 == 1)
    return Values[Mid];
  return 0.5 * (Values[Mid - 1] + Values[Mid]);
}

double daisy::sampleVariance(const std::vector<double> &Values) {
  if (Values.size() < 2)
    return 0.0;
  double Mean = mean(Values);
  double Sum = 0.0;
  for (double Value : Values)
    Sum += (Value - Mean) * (Value - Mean);
  return Sum / static_cast<double>(Values.size() - 1);
}

double daisy::coefficientOfVariation(const std::vector<double> &Values) {
  double Mean = mean(Values);
  if (Mean == 0.0)
    return 0.0;
  return std::sqrt(sampleVariance(Values)) / Mean;
}

double daisy::geometricMean(const std::vector<double> &Values) {
  assert(!Values.empty() && "geometric mean of empty set");
  double LogSum = 0.0;
  for (double Value : Values) {
    assert(Value > 0.0 && "geometric mean requires positive values");
    LogSum += std::log(Value);
  }
  return std::exp(LogSum / static_cast<double>(Values.size()));
}

MeasurementResult
daisy::measureUntilStable(const std::function<double()> &Sample,
                          const MeasurementOptions &Options) {
  MeasurementResult Result;
  while (Result.Samples.size() < Options.MaxSamples) {
    Result.Samples.push_back(Sample());
    if (Result.Samples.size() < Options.MinSamples)
      continue;
    if (coefficientOfVariation(Result.Samples) <= Options.TargetCv) {
      Result.Converged = true;
      break;
    }
  }
  Result.Median = median(Result.Samples);
  return Result;
}
