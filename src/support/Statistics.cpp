//===- support/Statistics.cpp ---------------------------------------------==//
//
// Part of the daisy project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Statistics.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace daisy;

double daisy::mean(const std::vector<double> &Values) {
  if (Values.empty())
    return 0.0;
  double Sum = 0.0;
  for (double Value : Values)
    Sum += Value;
  return Sum / static_cast<double>(Values.size());
}

double daisy::median(std::vector<double> Values) {
  if (Values.empty())
    return 0.0;
  std::sort(Values.begin(), Values.end());
  size_t Mid = Values.size() / 2;
  if (Values.size() % 2 == 1)
    return Values[Mid];
  return 0.5 * (Values[Mid - 1] + Values[Mid]);
}

double daisy::sampleVariance(const std::vector<double> &Values) {
  if (Values.size() < 2)
    return 0.0;
  double Mean = mean(Values);
  double Sum = 0.0;
  for (double Value : Values)
    Sum += (Value - Mean) * (Value - Mean);
  return Sum / static_cast<double>(Values.size() - 1);
}

double daisy::coefficientOfVariation(const std::vector<double> &Values) {
  double Mean = mean(Values);
  if (Mean == 0.0)
    return 0.0;
  return std::sqrt(sampleVariance(Values)) / Mean;
}

double daisy::geometricMean(const std::vector<double> &Values) {
  assert(!Values.empty() && "geometric mean of empty set");
  double LogSum = 0.0;
  for (double Value : Values) {
    assert(Value > 0.0 && "geometric mean requires positive values");
    LogSum += std::log(Value);
  }
  return std::exp(LogSum / static_cast<double>(Values.size()));
}

MeasurementResult
daisy::measureUntilStable(const std::function<double()> &Sample,
                          const MeasurementOptions &Options) {
  MeasurementResult Result;
  while (Result.Samples.size() < Options.MaxSamples) {
    Result.Samples.push_back(Sample());
    if (Result.Samples.size() < Options.MinSamples)
      continue;
    if (coefficientOfVariation(Result.Samples) <= Options.TargetCv) {
      Result.Converged = true;
      break;
    }
  }
  Result.Median = median(Result.Samples);
  return Result;
}
