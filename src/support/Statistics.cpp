//===- support/Statistics.cpp ---------------------------------------------==//
//
// Part of the daisy project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Statistics.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <map>
#include <mutex>

using namespace daisy;

namespace {

/// Counter registry. A plain map under a mutex: every counted event
/// (a whole-program simulation, a plan compile) costs orders of magnitude
/// more than the guarded lookup, so contention is not a concern.
struct CounterRegistry {
  std::mutex Mutex;
  std::map<std::string, int64_t> Counters;
};

CounterRegistry &registry() {
  static CounterRegistry R;
  return R;
}

} // namespace

void daisy::addStatsCounter(const std::string &Name, int64_t Delta) {
  CounterRegistry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  R.Counters[Name] += Delta;
}

int64_t daisy::statsCounter(const std::string &Name) {
  CounterRegistry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  auto It = R.Counters.find(Name);
  return It == R.Counters.end() ? 0 : It->second;
}

void daisy::resetStatsCounters() {
  CounterRegistry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  for (auto &[Name, Value] : R.Counters)
    Value = 0;
}

double daisy::mean(const std::vector<double> &Values) {
  if (Values.empty())
    return 0.0;
  double Sum = 0.0;
  for (double Value : Values)
    Sum += Value;
  return Sum / static_cast<double>(Values.size());
}

double daisy::median(std::vector<double> Values) {
  if (Values.empty())
    return 0.0;
  std::sort(Values.begin(), Values.end());
  size_t Mid = Values.size() / 2;
  if (Values.size() % 2 == 1)
    return Values[Mid];
  return 0.5 * (Values[Mid - 1] + Values[Mid]);
}

double daisy::sampleVariance(const std::vector<double> &Values) {
  if (Values.size() < 2)
    return 0.0;
  double Mean = mean(Values);
  double Sum = 0.0;
  for (double Value : Values)
    Sum += (Value - Mean) * (Value - Mean);
  return Sum / static_cast<double>(Values.size() - 1);
}

double daisy::coefficientOfVariation(const std::vector<double> &Values) {
  double Mean = mean(Values);
  if (Mean == 0.0)
    return 0.0;
  return std::sqrt(sampleVariance(Values)) / Mean;
}

double daisy::geometricMean(const std::vector<double> &Values) {
  assert(!Values.empty() && "geometric mean of empty set");
  double LogSum = 0.0;
  for (double Value : Values) {
    assert(Value > 0.0 && "geometric mean requires positive values");
    LogSum += std::log(Value);
  }
  return std::exp(LogSum / static_cast<double>(Values.size()));
}

MeasurementResult
daisy::measureUntilStable(const std::function<double()> &Sample,
                          const MeasurementOptions &Options) {
  MeasurementResult Result;
  while (Result.Samples.size() < Options.MaxSamples) {
    Result.Samples.push_back(Sample());
    if (Result.Samples.size() < Options.MinSamples)
      continue;
    if (coefficientOfVariation(Result.Samples) <= Options.TargetCv) {
      Result.Converged = true;
      break;
    }
  }
  Result.Median = median(Result.Samples);
  return Result;
}
