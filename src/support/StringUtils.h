//===- support/StringUtils.h - Small string helpers -------------*- C++ -*-===//
//
// Part of the daisy project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// String formatting helpers shared by the printers and the bench harnesses.
///
//===----------------------------------------------------------------------===//

#ifndef DAISY_SUPPORT_STRINGUTILS_H
#define DAISY_SUPPORT_STRINGUTILS_H

#include <string>
#include <vector>

namespace daisy {

/// Joins \p Parts with \p Separator.
std::string join(const std::vector<std::string> &Parts,
                 const std::string &Separator);

/// Formats \p Value with \p Digits digits after the decimal point.
std::string formatDouble(double Value, int Digits = 3);

/// Left-pads \p Text with spaces to at least \p Width characters.
std::string padLeft(const std::string &Text, size_t Width);

/// Right-pads \p Text with spaces to at least \p Width characters.
std::string padRight(const std::string &Text, size_t Width);

/// Returns true if \p Text starts with \p Prefix.
bool startsWith(const std::string &Text, const std::string &Prefix);

} // namespace daisy

#endif // DAISY_SUPPORT_STRINGUTILS_H
