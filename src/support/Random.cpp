//===- support/Random.cpp -------------------------------------------------==//
//
// Part of the daisy project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Random.h"

#include <cassert>

using namespace daisy;

uint64_t SplitMix64::next() {
  State += 0x9E3779B97F4A7C15ull;
  uint64_t Z = State;
  Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ull;
  Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBull;
  return Z ^ (Z >> 31);
}

static uint64_t rotl(uint64_t X, int K) {
  return (X << K) | (X >> (64 - K));
}

Rng::Rng(uint64_t Seed) {
  SplitMix64 Seeder(Seed);
  for (uint64_t &Word : State)
    Word = Seeder.next();
}

uint64_t Rng::next() {
  uint64_t Result = rotl(State[1] * 5, 7) * 9;
  uint64_t T = State[1] << 17;
  State[2] ^= State[0];
  State[3] ^= State[1];
  State[1] ^= State[2];
  State[0] ^= State[3];
  State[2] ^= T;
  State[3] = rotl(State[3], 45);
  return Result;
}

uint64_t Rng::nextBelow(uint64_t Bound) {
  assert(Bound > 0 && "nextBelow requires a positive bound");
  // Rejection sampling to avoid modulo bias.
  uint64_t Threshold = (0 - Bound) % Bound;
  for (;;) {
    uint64_t Value = next();
    if (Value >= Threshold)
      return Value % Bound;
  }
}

int64_t Rng::nextInRange(int64_t Lo, int64_t Hi) {
  assert(Lo <= Hi && "empty range");
  uint64_t Span = static_cast<uint64_t>(Hi - Lo) + 1;
  return Lo + static_cast<int64_t>(nextBelow(Span));
}

double Rng::nextDouble() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::nextBool(double P) { return nextDouble() < P; }

uint64_t daisy::deriveSeed(uint64_t Base, uint64_t Stream) {
  // Scramble the stream index before mixing so adjacent streams of the
  // same base share no low-bit structure, then run the combination
  // through SplitMix64 once more.
  SplitMix64 StreamMixer(Stream);
  SplitMix64 Seeder(Base ^ StreamMixer.next());
  return Seeder.next();
}
