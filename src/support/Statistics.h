//===- support/Statistics.h - Measurement statistics ------------*- C++ -*-===//
//
// Part of the daisy project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Summary statistics and the measurement protocol used by all benches.
///
/// The paper measures "according to a standard framework [Hoefler & Belli,
/// SC'15], where measurements are taken until the variance drops below five
/// percent, and the resulting median is reported as the runtime".
/// MedianMeasurement implements exactly that protocol on top of an arbitrary
/// sample source.
///
//===----------------------------------------------------------------------===//

#ifndef DAISY_SUPPORT_STATISTICS_H
#define DAISY_SUPPORT_STATISTICS_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace daisy {

//===----------------------------------------------------------------------===//
// Global named counters
//===----------------------------------------------------------------------===//
//
// Process-wide monotonic counters keyed by dotted names ("SimCache.Hits",
// "Engine.PlanCompiles", ...). Subsystems report cheap-to-maintain
// event counts through these; tests assert on deltas (compile-once
// guarantees, cache hit rates) and the micro benchmarks report them next
// to wall-clock numbers. Increments are thread-safe — batch evaluation
// bumps them from pool workers.

/// Adds \p Delta to counter \p Name (registering it on first use).
void addStatsCounter(const std::string &Name, int64_t Delta = 1);

/// Raises counter \p Name to at least \p Value (registering it on first
/// use; never lowers it). High-water marks — e.g. the serving runtime's
/// "Serve.QueueDepthMax" — report through this instead of add.
void maxStatsCounter(const std::string &Name, int64_t Value);

/// Cell form of maxStatsCounter for hot paths that pre-resolved the
/// counter with statsCounterCell.
void maxStatsCounter(std::atomic<int64_t> &Cell, int64_t Value);

/// Registers \p Name and returns its cell. The reference stays valid for
/// the process lifetime (the registry never erases), so hot paths — the
/// serving runtime counts per-request events at request rate — can
/// resolve a counter once and then increment with a relaxed atomic
/// instead of paying the name lookup under the registry mutex per event.
/// Cells observe addStatsCounter / resetStatsCounters and are read by
/// statsCounter like any other counter.
std::atomic<int64_t> &statsCounterCell(const std::string &Name);

/// Current value of counter \p Name; 0 if it was never touched.
int64_t statsCounter(const std::string &Name);

/// Snapshot of every registered counter as (name, value) pairs, stably
/// sorted by name (the registry is name-ordered, so two snapshots list
/// surviving counters in the same positions). Zero-valued counters that
/// were registered appear too — an exporter scrape between resets must
/// still show the series. This is the enumeration the metrics exposition
/// layer (obs/Metrics.h) and tests build on instead of re-deriving
/// exact-name reads.
std::vector<std::pair<std::string, int64_t>> snapshotStatsCounters();

/// Resets every registered counter to 0 (tests and benches isolate their
/// measurement windows with this).
void resetStatsCounters();

/// Arithmetic mean of \p Values; 0 for an empty vector.
double mean(const std::vector<double> &Values);

/// Median of \p Values (average of middle pair for even sizes).
double median(std::vector<double> Values);

/// Unbiased sample variance; 0 for fewer than two samples.
double sampleVariance(const std::vector<double> &Values);

/// Coefficient of variation: stddev / mean. 0 if the mean is 0.
double coefficientOfVariation(const std::vector<double> &Values);

/// Geometric mean of \p Values; all entries must be positive.
double geometricMean(const std::vector<double> &Values);

/// Options for the Hoefler-Belli style measurement loop.
struct MeasurementOptions {
  /// Minimum number of samples collected before testing convergence.
  size_t MinSamples = 3;
  /// Hard cap on the number of samples.
  size_t MaxSamples = 64;
  /// Convergence threshold on the coefficient of variation (paper: 5%).
  double TargetCv = 0.05;
};

/// Result of a measurement run.
struct MeasurementResult {
  /// Median of the collected samples, the reported runtime.
  double Median = 0.0;
  /// All collected samples, in collection order.
  std::vector<double> Samples;
  /// True if the CV dropped below the target before MaxSamples was hit.
  bool Converged = false;
};

/// Repeatedly invokes \p Sample until the coefficient of variation of the
/// collected values drops below \p Options.TargetCv, then reports the median.
MeasurementResult measureUntilStable(const std::function<double()> &Sample,
                                     const MeasurementOptions &Options = {});

} // namespace daisy

#endif // DAISY_SUPPORT_STATISTICS_H
