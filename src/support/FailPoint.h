//===- support/FailPoint.h - Deterministic fault injection -------*- C++ -*-=//
//
// Part of the daisy project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A registry of named fault-injection sites ("fail points") used to test
/// the serving runtime's failure paths deterministically.
///
/// A subsystem marks a site with DAISY_FAILPOINT("dotted.site.name") at
/// the place a fault could occur (a compile that throws, a queue that
/// fills, a kernel that runs slow, a worker that stalls). Tests arm a
/// site by name with an action, a seeded firing probability, and an
/// optional fire budget; every evaluation of an armed site draws from a
/// per-site Rng stream (support/Random deriveSeed of the scenario seed
/// and the site name), so a fault schedule is exactly reproducible from
/// its seed regardless of thread interleaving.
///
/// Actions:
///   - Trigger: DAISY_FAILPOINT returns true and the site interprets it
///     (e.g. the server treats a push as queue-full);
///   - Throw:   the evaluation throws std::runtime_error (injected
///     compile failure);
///   - Delay:   the evaluation sleeps DelayMicros then returns false
///     (slow kernel, stalled worker).
///
/// Arming can also come from the environment: when the process starts
/// with DAISY_FAILPOINTS=<spec> set (same grammar as
/// armFailPointsFromSpec, e.g. "engine.budget=trigger@0.25"), the
/// scenario is armed process-wide before main(), seeded from
/// DAISY_FAILPOINTS_SEED. CI uses this to drive sites the test binary
/// does not arm itself.
///
/// The whole mechanism is compiled out unless DAISY_ENABLE_FAILPOINTS is
/// 1 — which it is by default in assert-enabled (Debug) builds and never
/// in NDEBUG builds unless forced on the compiler command line (the TSan
/// CI job does exactly that). With the gate off, DAISY_FAILPOINT expands
/// to the constant false: zero code, zero overhead on release hot paths.
/// When compiled in but with nothing armed, a site costs one relaxed
/// atomic load.
///
//===----------------------------------------------------------------------===//

#ifndef DAISY_SUPPORT_FAILPOINT_H
#define DAISY_SUPPORT_FAILPOINT_H

#include <cstdint>
#include <string>

#ifndef DAISY_ENABLE_FAILPOINTS
#ifdef NDEBUG
#define DAISY_ENABLE_FAILPOINTS 0
#else
#define DAISY_ENABLE_FAILPOINTS 1
#endif
#endif

namespace daisy {

/// What an armed fail point does when its probability draw fires.
enum class FailAction : uint8_t {
  Trigger, ///< failPointEvaluate returns true; the site interprets it.
  Throw,   ///< failPointEvaluate throws std::runtime_error.
  Delay,   ///< failPointEvaluate sleeps DelayMicros, then returns false.
};

/// Arming configuration of one site.
struct FailPointConfig {
  FailAction Action = FailAction::Trigger;
  /// Chance an evaluation fires, drawn from the site's seeded stream.
  double Probability = 1.0;
  /// The site disarms itself after this many fires (default: unlimited).
  uint64_t MaxFires = ~0ull;
  /// Sleep duration of FailAction::Delay fires.
  uint64_t DelayMicros = 0;
};

#if DAISY_ENABLE_FAILPOINTS

/// Arms \p Site with \p Config. The site's probability stream is seeded
/// from (\p Seed, fnv1a(\p Site)), so two sites armed under one scenario
/// seed draw independently and reproducibly. Re-arming replaces the
/// previous configuration and resets the fire count.
void armFailPoint(const std::string &Site, const FailPointConfig &Config,
                  uint64_t Seed);

/// Disarms \p Site (no-op when not armed).
void disarmFailPoint(const std::string &Site);

/// Disarms every armed site (test teardown).
void disarmAllFailPoints();

/// Number of times \p Site has fired since it was (re-)armed.
uint64_t failPointFireCount(const std::string &Site);

/// The function behind DAISY_FAILPOINT. Returns true only for a firing
/// Trigger site; applies Throw/Delay side effects itself.
bool failPointEvaluate(const char *Site);

/// Arms sites from a scenario spec string:
///   "site=action[:micros]@probability[xmaxfires][;site=...]"
/// e.g. "engine.compile=throw@1.0x1;kernel.run=delay:2000@0.25".
/// Returns the number of sites armed; throws std::invalid_argument on a
/// malformed spec.
size_t armFailPointsFromSpec(const std::string &Spec, uint64_t Seed);

/// The environment-arming entry behind DAISY_FAILPOINTS, exposed so the
/// parsing contract is testable without spawning a process: \p Spec is
/// the spec string (null or empty = no-op), \p SeedText the decimal
/// scenario seed (null = the default 0xDA15E). A malformed spec is
/// reported to stderr and ignored — the process it was meant to observe
/// keeps running — with any sites armed before the malformed entry left
/// armed. Returns the number of sites armed.
size_t armFailPointsFromEnv(const char *Spec, const char *SeedText);

#define DAISY_FAILPOINT(Site) ::daisy::failPointEvaluate(Site)

#else

// Release stubs: sites compile to the constant false (dead-branch
// eliminated); the arming API stays callable so test helpers link.
inline void armFailPoint(const std::string &, const FailPointConfig &,
                         uint64_t) {}
inline void disarmFailPoint(const std::string &) {}
inline void disarmAllFailPoints() {}
inline uint64_t failPointFireCount(const std::string &) { return 0; }
inline size_t armFailPointsFromSpec(const std::string &, uint64_t) {
  return 0;
}
inline size_t armFailPointsFromEnv(const char *, const char *) { return 0; }

#define DAISY_FAILPOINT(Site) false

#endif // DAISY_ENABLE_FAILPOINTS

} // namespace daisy

#endif // DAISY_SUPPORT_FAILPOINT_H
