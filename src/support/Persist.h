//===- support/Persist.h - Crash-safe checkpoint files -----------*- C++ -*-=//
//
// Part of the daisy project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Atomic, self-validating checkpoint files — the durability primitive
/// behind the engine's tuning-database persistence (api/Engine.h,
/// EngineOptions::DatabasePath).
///
/// A checkpoint is a fixed header (magic, format version, generation,
/// payload size, CRC32 of the payload) followed by an opaque payload.
/// Writes are atomic against crashes at any instant: the bytes go to
/// `<path>.tmp`, are fsync'd, the previous checkpoint is rotated to
/// `<path>.prev`, and the temp file renames over `<path>` — a reader
/// never observes a half-written current file. Reads validate everything
/// (magic, version, size, checksum); a torn, truncated, or bit-flipped
/// current file is detected and the last good generation loads from
/// `<path>.prev` instead, so one corrupted write never costs more than
/// one checkpoint interval of entries.
///
/// The payload is the caller's business; ByteWriter/ByteReader below are
/// the little-endian primitives the database serializer is built from
/// (sched/Database.h).
///
//===----------------------------------------------------------------------===//

#ifndef DAISY_SUPPORT_PERSIST_H
#define DAISY_SUPPORT_PERSIST_H

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace daisy {

/// CRC-32 (IEEE 802.3 polynomial, the zlib convention) of \p Len bytes.
uint32_t crc32(const void *Data, size_t Len);

/// One checkpoint file, as read back from disk.
struct CheckpointFile {
  /// True when the file existed, parsed, and passed every check; the
  /// other fields are meaningful only then (except Exists).
  bool Valid = false;
  /// True when the file existed at all — a missing file is not
  /// corruption, a present-but-invalid one is.
  bool Exists = false;
  /// Writer-side monotonic generation number.
  uint64_t Generation = 0;
  /// Format version the payload was written under.
  uint32_t Version = 0;
  std::vector<uint8_t> Payload;
};

/// Durably writes \p Payload as the current checkpoint at \p Path
/// (write `<path>.tmp`, fsync, rotate `<path>` to `<path>.prev`, rename
/// the temp file into place). Returns false on any I/O failure, in which
/// case the previous current file is still intact or recoverable as
/// `<path>.prev`.
bool writeCheckpoint(const std::string &Path, const void *Payload,
                     size_t PayloadSize, uint64_t Generation,
                     uint32_t Version);

/// Reads and fully validates the single checkpoint file at \p Path
/// (magic, version match, size, CRC). Never throws; corruption comes
/// back as Valid == false with Exists == true.
CheckpointFile readCheckpointFile(const std::string &Path, uint32_t Version);

/// The rotation slot of the last good generation.
inline std::string checkpointPrevPath(const std::string &Path) {
  return Path + ".prev";
}

/// Result of last-good-generation recovery over `<path>` / `<path>.prev`.
struct CheckpointLoad {
  /// The newest valid generation found (current preferred, else prev);
  /// Valid == false when neither slot held a loadable checkpoint.
  CheckpointFile File;
  /// Files that existed but failed validation — the operator-facing
  /// corruption signal ("Engine.CorruptCheckpoints").
  int CorruptFiles = 0;
};

/// Loads the newest valid checkpoint at \p Path, falling back to
/// `<path>.prev` when the current file is missing or corrupted.
CheckpointLoad loadCheckpoint(const std::string &Path, uint32_t Version);

/// Little-endian append-only byte sink: the payload-building half of a
/// versioned serialization format.
class ByteWriter {
public:
  void u8(uint8_t V) { Bytes.push_back(V); }
  void u32(uint32_t V) {
    for (int I = 0; I < 4; ++I)
      Bytes.push_back(static_cast<uint8_t>(V >> (8 * I)));
  }
  void u64(uint64_t V) {
    for (int I = 0; I < 8; ++I)
      Bytes.push_back(static_cast<uint8_t>(V >> (8 * I)));
  }
  void i64(int64_t V) { u64(static_cast<uint64_t>(V)); }
  void f64(double V) {
    uint64_t Bits;
    std::memcpy(&Bits, &V, sizeof(Bits));
    u64(Bits);
  }
  void str(const std::string &S) {
    u64(S.size());
    Bytes.insert(Bytes.end(), S.begin(), S.end());
  }

  const std::vector<uint8_t> &bytes() const { return Bytes; }
  std::vector<uint8_t> take() { return std::move(Bytes); }

private:
  std::vector<uint8_t> Bytes;
};

/// Bounds-checked little-endian reader over a serialized payload. Every
/// read reports success; after the first failure the reader stays failed
/// (ok() latches), so a deserializer can decode optimistically and check
/// once at the end — truncated or garbage payloads can never read out of
/// bounds.
class ByteReader {
public:
  ByteReader(const uint8_t *Data, size_t Size) : Data(Data), Size(Size) {}
  explicit ByteReader(const std::vector<uint8_t> &Bytes)
      : Data(Bytes.data()), Size(Bytes.size()) {}

  bool ok() const { return !Failed; }
  bool atEnd() const { return Pos == Size; }

  uint8_t u8() {
    if (!take(1))
      return 0;
    return Data[Pos - 1];
  }
  uint32_t u32() {
    if (!take(4))
      return 0;
    uint32_t V = 0;
    for (int I = 0; I < 4; ++I)
      V |= static_cast<uint32_t>(Data[Pos - 4 + I]) << (8 * I);
    return V;
  }
  uint64_t u64() {
    if (!take(8))
      return 0;
    uint64_t V = 0;
    for (int I = 0; I < 8; ++I)
      V |= static_cast<uint64_t>(Data[Pos - 8 + I]) << (8 * I);
    return V;
  }
  int64_t i64() { return static_cast<int64_t>(u64()); }
  double f64() {
    uint64_t Bits = u64();
    double V;
    std::memcpy(&V, &Bits, sizeof(V));
    return V;
  }
  std::string str() {
    uint64_t Len = u64();
    // The explicit range check latches Failed even where the u64 length
    // would overflow take()'s size_t parameter on 32-bit targets.
    if (Len > Size - Pos || !take(static_cast<size_t>(Len))) {
      Failed = true;
      return {};
    }
    return std::string(reinterpret_cast<const char *>(Data + Pos -
                                                      static_cast<size_t>(Len)),
                       static_cast<size_t>(Len));
  }

private:
  bool take(size_t N) {
    if (Failed || N > Size - Pos) {
      Failed = true;
      return false;
    }
    Pos += N;
    return true;
  }

  const uint8_t *Data;
  size_t Size;
  size_t Pos = 0;
  bool Failed = false;
};

} // namespace daisy

#endif // DAISY_SUPPORT_PERSIST_H
