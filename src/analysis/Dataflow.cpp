//===- analysis/Dataflow.cpp ----------------------------------------------==//
//
// Part of the daisy project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/Dataflow.h"

#include "analysis/Legality.h"

using namespace daisy;

std::vector<const DataflowEdge *>
DataflowGraph::incoming(size_t Consumer) const {
  std::vector<const DataflowEdge *> Result;
  for (const DataflowEdge &Edge : Edges)
    if (Edge.Consumer == Consumer)
      Result.push_back(&Edge);
  return Result;
}

std::vector<const DataflowEdge *>
DataflowGraph::outgoing(size_t Producer) const {
  std::vector<const DataflowEdge *> Result;
  for (const DataflowEdge &Edge : Edges)
    if (Edge.Producer == Producer)
      Result.push_back(&Edge);
  return Result;
}

namespace {

/// True if every write of \p Array under \p Node subscripts it with plain
/// distinct band iterators in band order — the elementwise pattern.
bool accessesElementwise(const NodePtr &Node, const std::string &Array,
                         bool CheckWrites) {
  std::vector<std::shared_ptr<Loop>> Band = perfectNestBand(Node);
  if (Band.empty())
    return false;
  bool SawAccess = false;
  for (const auto &C : collectComputations(Node)) {
    std::vector<ArrayAccess> Accesses;
    if (CheckWrites) {
      if (C->write().Array == Array)
        Accesses.push_back(C->write());
    } else {
      for (const ArrayAccess &R : C->reads())
        if (R.Array == Array)
          Accesses.push_back(R);
    }
    for (const ArrayAccess &Access : Accesses) {
      SawAccess = true;
      if (Access.Indices.size() > Band.size())
        return false;
      for (size_t Dim = 0; Dim < Access.Indices.size(); ++Dim) {
        // Dimension Dim must be exactly the band iterator at that depth.
        const AffineExpr &Index = Access.Indices[Dim];
        if (Index.constantTerm() != 0 || Index.terms().size() != 1)
          return false;
        const auto &[Name, Coefficient] = *Index.terms().begin();
        if (Coefficient != 1 || Name != Band[Dim]->iterator())
          return false;
      }
    }
  }
  return SawAccess;
}

} // namespace

DataflowGraph daisy::buildDataflowGraph(const std::vector<NodePtr> &Nodes,
                                        const Program &Prog) {
  (void)Prog;
  DataflowGraph Graph;
  Graph.Writes.resize(Nodes.size());
  Graph.Reads.resize(Nodes.size());

  for (size_t I = 0; I < Nodes.size(); ++I) {
    for (const auto &C : collectComputations(Nodes[I])) {
      Graph.Writes[I].insert(C->write().Array);
      for (const ArrayAccess &R : C->reads())
        Graph.Reads[I].insert(R.Array);
    }
    if (const auto *Call = dynCast<CallNode>(Nodes[I])) {
      // By convention the first argument is the output operand.
      const auto &Args = Call->args();
      if (!Args.empty()) {
        Graph.Writes[I].insert(Args[0]);
        for (size_t A = 0; A < Args.size(); ++A)
          Graph.Reads[I].insert(Args[A]); // output may also be read (beta)
      }
    }
  }

  for (size_t C = 0; C < Nodes.size(); ++C) {
    for (const std::string &Array : Graph.Reads[C]) {
      // Find the latest earlier writer.
      for (size_t P = C; P-- > 0;) {
        if (!Graph.Writes[P].count(Array))
          continue;
        DataflowEdge Edge;
        Edge.Producer = P;
        Edge.Consumer = C;
        Edge.Array = Array;
        Edge.OneToOne =
            accessesElementwise(Nodes[P], Array, /*CheckWrites=*/true) &&
            accessesElementwise(Nodes[C], Array, /*CheckWrites=*/false);
        Graph.Edges.push_back(std::move(Edge));
        break;
      }
    }
  }
  return Graph;
}
