//===- analysis/Accesses.h - Statement & access collection -------*- C++ -*-=//
//
// Part of the daisy project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Collection of statements with their enclosing-loop context, plus
/// conservative iterator ranges used by the dependence tests.
///
//===----------------------------------------------------------------------===//

#ifndef DAISY_ANALYSIS_ACCESSES_H
#define DAISY_ANALYSIS_ACCESSES_H

#include "ir/Program.h"

#include <memory>
#include <vector>

namespace daisy {

/// A computation together with its enclosing loops (outermost first) and
/// its pre-order execution position among all collected statements.
struct StmtInfo {
  std::shared_ptr<Computation> Comp;
  std::vector<std::shared_ptr<Loop>> Path;
  int Order = 0;
};

/// Collects all computations under \p Roots in execution order.
std::vector<StmtInfo> collectStatements(const std::vector<NodePtr> &Roots);

/// Overload for a single root.
std::vector<StmtInfo> collectStatements(const NodePtr &Root);

/// Conservative inclusive value range of an iterator.
struct IterRange {
  int64_t Min = 0;
  int64_t Max = -1; // Max < Min encodes an empty range.

  bool isEmpty() const { return Max < Min; }
  int64_t span() const { return isEmpty() ? 0 : Max - Min + 1; }
};

/// The conservative interval assigned to a variable whose range is not
/// known at analysis time (an enclosing iterator of a subtree analyzed in
/// isolation). Wide enough to dominate any real loop extent.
IterRange unknownIterRange();

/// Computes conservative iterator ranges for every loop on \p Path.
/// Bounds referencing outer iterators are interval-evaluated through the
/// outer ranges; parameters are taken from \p Params exactly; variables
/// bound outside the path contribute unknownIterRange(). The returned
/// vector parallels \p Path.
std::vector<IterRange>
conservativeRanges(const std::vector<std::shared_ptr<Loop>> &Path,
                   const ValueEnv &Params);

/// Interval-evaluates \p Expr given iterator ranges \p Ranges (keyed by
/// iterator name) and exact parameter values \p Params.
IterRange evaluateInterval(const AffineExpr &Expr,
                           const std::map<std::string, IterRange> &Ranges,
                           const ValueEnv &Params);

/// The longest common prefix of two loop paths (by node identity).
std::vector<std::shared_ptr<Loop>>
commonLoops(const std::vector<std::shared_ptr<Loop>> &A,
            const std::vector<std::shared_ptr<Loop>> &B);

/// All accesses of a computation: the write plus every read.
struct AccessList {
  ArrayAccess Write;
  std::vector<ArrayAccess> Reads;
};

/// Gathers the write and reads of \p Comp.
AccessList accessesOf(const Computation &Comp);

} // namespace daisy

#endif // DAISY_ANALYSIS_ACCESSES_H
