//===- analysis/Stride.h - Stride cost functions -----------------*- C++ -*-=//
//
// Part of the daisy project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Stride cost functions for loop nests (paper §2.2).
///
/// `stride(loop)` maps subsequent accesses to arrays within each
/// computation of a loop nest to a real value. Two instances are provided:
///
/// - sumOfStridesCost — "the sum of all distances between two subsequent
///   accesses to all arrays over all computations": for every access and
///   every loop level, the absolute address delta caused by one step of
///   that level's iterator, weighted by how often that iterator advances.
/// - outOfOrderCount — the fallback for symbolic dimensions: "the number
///   of out-of-order accesses w.r.t. the permutation of loop iterators and
///   array dimensions".
///
//===----------------------------------------------------------------------===//

#ifndef DAISY_ANALYSIS_STRIDE_H
#define DAISY_ANALYSIS_STRIDE_H

#include "ir/Program.h"

#include <cstdint>

namespace daisy {

/// Weighted sum of address deltas over all accesses of all computations in
/// \p Root. Lower is better; comparable only across permutations of the
/// same nest. Array layouts come from \p Prog (row-major).
double sumOfStridesCost(const NodePtr &Root, const Program &Prog);

/// Counts (access, dimension-pair) combinations whose loop levels are
/// inverted w.r.t. the array's dimension order, plus accesses whose
/// innermost-varying subscript is not the last dimension.
int64_t outOfOrderCount(const NodePtr &Root, const Program &Prog);

/// Address delta (in elements) of \p Access when iterator \p Iterator
/// advances by \p Step, under the row-major layout of \p Prog.
int64_t accessStride(const ArrayAccess &Access, const std::string &Iterator,
                     int64_t Step, const Program &Prog);

} // namespace daisy

#endif // DAISY_ANALYSIS_STRIDE_H
