//===- analysis/Dataflow.h - Producer-consumer graph -------------*- C++ -*-=//
//
// Part of the daisy project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// SDFG-lite: a dataflow graph over a sequence of sibling nodes (top-level
/// nests or the items of a loop body), describing which node produces the
/// data consumed by which later node (paper §3.1: "we further augment the
/// tree with dataflow information describing the subset of data produced
/// and consumed by different nodes").
///
/// The one-to-one producer-consumer relation drives the CLOUDSC fusion
/// recipe (paper §5.1): fissioned elementwise nests whose intermediate is
/// produced and consumed pointwise are fused back.
///
//===----------------------------------------------------------------------===//

#ifndef DAISY_ANALYSIS_DATAFLOW_H
#define DAISY_ANALYSIS_DATAFLOW_H

#include "ir/Program.h"

#include <set>
#include <string>
#include <vector>

namespace daisy {

/// A producer-consumer edge between two sibling nodes.
struct DataflowEdge {
  size_t Producer;
  size_t Consumer;
  std::string Array;
  /// True if the producer writes the array elementwise over its nest
  /// iterators and the consumer reads it elementwise over its own — the
  /// pattern that allows fusing the two nests without reordering.
  bool OneToOne = false;
};

/// Dataflow over an ordered node sequence.
struct DataflowGraph {
  std::vector<DataflowEdge> Edges;

  /// Arrays written under node \p I of the analyzed sequence.
  std::vector<std::set<std::string>> Writes;
  /// Arrays read under node \p I.
  std::vector<std::set<std::string>> Reads;

  /// All edges into \p Consumer.
  std::vector<const DataflowEdge *> incoming(size_t Consumer) const;
  /// All edges out of \p Producer.
  std::vector<const DataflowEdge *> outgoing(size_t Producer) const;
};

/// Builds the dataflow graph of \p Nodes: an edge P -> C exists when P
/// writes an array that C reads with no intervening writer between them.
DataflowGraph buildDataflowGraph(const std::vector<NodePtr> &Nodes,
                                 const Program &Prog);

} // namespace daisy

#endif // DAISY_ANALYSIS_DATAFLOW_H
