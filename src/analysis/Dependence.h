//===- analysis/Dependence.h - Data dependence analysis ----------*- C++ -*-=//
//
// Part of the daisy project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Conservative data-dependence analysis over the loop-nest IR.
///
/// For each ordered pair of computations accessing the same array (at least
/// one a write), the analysis enumerates direction vectors over the common
/// loops and tests feasibility of the per-dimension subscript equations with
/// a GCD test and Banerjee-style interval bounds. The result is sound
/// (every real dependence is reported) but conservative (spurious direction
/// vectors may be reported when bounds are symbolic or subscripts are
/// coupled).
///
/// Direction semantics: an entry describes source iteration vs. sink
/// iteration of the shared loop, outermost first. `Lt` means the source
/// instance runs in an earlier iteration of that loop than the sink.
///
//===----------------------------------------------------------------------===//

#ifndef DAISY_ANALYSIS_DEPENDENCE_H
#define DAISY_ANALYSIS_DEPENDENCE_H

#include "analysis/Accesses.h"
#include "ir/Program.h"

#include <optional>
#include <string>
#include <vector>

namespace daisy {

/// Relation between the source and sink iteration of one common loop.
enum class DepDirection { Eq, Lt, Gt };

/// Classification by access kinds.
enum class DepKind {
  Flow,   ///< Write then read (true dependence).
  Anti,   ///< Read then write.
  Output  ///< Write then write.
};

/// A dependence between two computation instances.
struct Dependence {
  /// Source and sink computations (source executes first).
  std::shared_ptr<Computation> Src;
  std::shared_ptr<Computation> Dst;
  /// The array causing the dependence.
  std::string Array;
  DepKind Kind = DepKind::Flow;
  /// The common loops of source and sink, outermost first.
  std::vector<std::shared_ptr<Loop>> CommonLoops;
  /// One feasible direction vector over CommonLoops.
  std::vector<DepDirection> Directions;

  /// True if all directions are Eq (dependence within one iteration of
  /// every common loop).
  bool isLoopIndependent() const;

  /// Index into CommonLoops of the first Lt entry, or -1 for a
  /// loop-independent dependence.
  int carrierLevel() const;

  /// Renders e.g. "flow S0 -> S1 on A [<,=]".
  std::string toString() const;
};

/// Direction-vector feasibility oracle for one pair of accesses, before any
/// execution-order filtering. Exposed separately because fusion legality
/// needs the unfiltered answer.
///
/// Returns every direction vector over the common loops of \p S and \p T
/// for which "access \p A in \p S and access \p B in \p T may touch the
/// same element" is feasible. An empty result means independence.
std::vector<std::vector<DepDirection>>
feasibleDirectionVectors(const StmtInfo &S, const ArrayAccess &A,
                         const StmtInfo &T, const ArrayAccess &B,
                         const ValueEnv &Params);

/// Computes all dependences among the computations under \p Roots.
///
/// A direction vector is reported as a dependence from S to T iff it is
/// feasible and consistent with execution order: lexicographically positive,
/// or all-Eq when S textually precedes T.
std::vector<Dependence> computeDependences(const std::vector<NodePtr> &Roots,
                                           const ValueEnv &Params);

/// Overload scoped to a single nest.
std::vector<Dependence> computeDependences(const NodePtr &Root,
                                           const ValueEnv &Params);

} // namespace daisy

#endif // DAISY_ANALYSIS_DEPENDENCE_H
