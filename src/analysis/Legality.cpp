//===- analysis/Legality.cpp ----------------------------------------------==//
//
// Part of the daisy project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/Legality.h"

#include "ir/Rewrite.h"

#include <algorithm>
#include <cassert>
#include <functional>
#include <map>
#include <tuple>

using namespace daisy;

std::vector<std::shared_ptr<Loop>>
daisy::perfectNestBand(const NodePtr &Root) {
  std::vector<std::shared_ptr<Loop>> Band;
  NodePtr Current = Root;
  while (auto L = std::dynamic_pointer_cast<Loop>(Current)) {
    Band.push_back(L);
    if (L->body().size() != 1)
      break;
    Current = L->body()[0];
  }
  return Band;
}

bool daisy::isPermutationLegal(const NodePtr &Root,
                               const std::vector<std::string> &NewOrder,
                               const ValueEnv &Params) {
  std::vector<std::shared_ptr<Loop>> Band = perfectNestBand(Root);
  assert(NewOrder.size() == Band.size() &&
         "permutation must cover the full band");

  // A permutation is illegal outright if it would hoist a loop above one
  // whose bounds it defines (triangular nests).
  std::map<std::string, size_t> NewPosition;
  for (size_t I = 0; I < NewOrder.size(); ++I)
    NewPosition[NewOrder[I]] = I;
  for (size_t I = 0; I < Band.size(); ++I) {
    const auto &L = Band[I];
    auto CheckBound = [&](const AffineExpr &Bound) {
      for (const auto &[Name, Coefficient] : Bound.terms()) {
        auto It = NewPosition.find(Name);
        if (It == NewPosition.end())
          continue; // parameter
        if (It->second >= NewPosition.at(L->iterator()))
          return false; // bound variable no longer enclosing
      }
      return true;
    };
    if (!CheckBound(L->lower()) || !CheckBound(L->upper()))
      return false;
  }

  // Map band loop pointer -> the level its iterator takes after permuting.
  std::map<const Loop *, size_t> NewLevel;
  for (const auto &L : Band)
    NewLevel[L.get()] = NewPosition.at(L->iterator());

  std::vector<StmtInfo> Stmts = collectStatements(Root);
  std::map<const Computation *, int> Order;
  for (const StmtInfo &S : Stmts)
    Order[S.Comp.get()] = S.Order;

  for (const Dependence &Dep : computeDependences(Root, Params)) {
    // Permute the direction entries of band loops; entries of deeper
    // (non-band) common loops keep their relative order after the band.
    std::vector<DepDirection> Permuted(Dep.Directions.size(),
                                       DepDirection::Eq);
    size_t BandCount = 0;
    for (size_t I = 0; I < Dep.CommonLoops.size(); ++I)
      if (NewLevel.count(Dep.CommonLoops[I].get()))
        ++BandCount;
    size_t NonBandNext = BandCount;
    for (size_t I = 0; I < Dep.CommonLoops.size(); ++I) {
      auto It = NewLevel.find(Dep.CommonLoops[I].get());
      if (It != NewLevel.end()) {
        assert(It->second < Permuted.size());
        Permuted[It->second] = Dep.Directions[I];
      } else {
        Permuted[NonBandNext++] = Dep.Directions[I];
      }
    }
    // The permuted vector must stay consistent with execution order.
    bool AllEq = true;
    bool Positive = false;
    for (DepDirection Dir : Permuted) {
      if (Dir == DepDirection::Lt) {
        Positive = true;
        AllEq = false;
        break;
      }
      if (Dir == DepDirection::Gt) {
        AllEq = false;
        break;
      }
    }
    if (Positive)
      continue;
    if (AllEq && Order.at(Dep.Src.get()) <= Order.at(Dep.Dst.get()))
      continue;
    return false;
  }
  return true;
}

namespace {

/// Value signature of the loops enclosing a statement strictly below the
/// carrier: two statements with equal signatures run under the same
/// iteration space in every carrier iteration.
using LoopContext = std::vector<std::tuple<std::string, AffineExpr,
                                           AffineExpr, int64_t>>;

LoopContext belowCarrierContext(const StmtInfo &S) {
  LoopContext Ctx;
  for (size_t I = 1; I < S.Path.size(); ++I) {
    const auto &L = S.Path[I];
    Ctx.emplace_back(L->iterator(), L->lower(), L->upper(), L->step());
  }
  return Ctx;
}

} // namespace

std::set<std::string> daisy::privatizableArraysUnder(
    const NodePtr &Carrier, const std::vector<std::string> &EnclosingIters,
    const Program &Prog) {
  const auto *CarrierLoop = dynCast<Loop>(Carrier);
  assert(CarrierLoop && "privatization carrier must be a loop");

  std::set<std::string> Forbidden(EnclosingIters.begin(),
                                  EnclosingIters.end());
  Forbidden.insert(CarrierLoop->iterator());
  auto MentionsForbidden = [&](const AffineExpr &Expr) {
    for (const auto &[Name, Coeff] : Expr.terms())
      if (Forbidden.count(Name))
        return true;
    return false;
  };

  std::vector<StmtInfo> Stmts = collectStatements(Carrier);
  std::set<std::string> Candidates;
  for (const StmtInfo &S : Stmts) {
    const ArrayDecl *Decl = Prog.findArray(S.Comp->write().Array);
    if (Decl && Decl->Transient)
      Candidates.insert(Decl->Name);
  }

  std::set<std::string> Result;
  for (const std::string &Array : Candidates) {
    bool Ok = true;
    // One write per (subscripts, context) form seen so far, in order.
    std::vector<std::pair<std::vector<AffineExpr>, LoopContext>> Defined;
    for (const StmtInfo &S : Stmts) {
      auto Touches = [&](const ArrayAccess &A) { return A.Array == Array; };
      bool Writes = Touches(S.Comp->write());
      std::vector<ArrayAccess> Reads;
      for (const ArrayAccess &R : S.Comp->reads())
        if (Touches(R))
          Reads.push_back(R);
      if (!Writes && Reads.empty())
        continue;

      // Subscripts and the below-carrier iteration space must be
      // identical across carrier iterations.
      LoopContext Ctx = belowCarrierContext(S);
      for (const auto &[It, Lower, Upper, Step] : Ctx)
        if (MentionsForbidden(Lower) || MentionsForbidden(Upper))
          Ok = false;
      auto SubscriptsOk = [&](const ArrayAccess &A) {
        for (const AffineExpr &Index : A.Indices)
          if (MentionsForbidden(Index))
            return false;
        return true;
      };
      if (Writes && !SubscriptsOk(S.Comp->write()))
        Ok = false;
      for (const ArrayAccess &R : Reads)
        if (!SubscriptsOk(R))
          Ok = false;

      // Define-before-use: every read must repeat the subscripts and
      // context of an earlier write (a computation reads its operands
      // before writing, so its own write does not count).
      for (const ArrayAccess &R : Reads) {
        bool Found = false;
        for (const auto &[Indices, WriteCtx] : Defined)
          if (Indices == R.Indices && WriteCtx == Ctx) {
            Found = true;
            break;
          }
        Ok &= Found;
      }
      if (Writes)
        Defined.emplace_back(S.Comp->write().Indices, std::move(Ctx));
      if (!Ok)
        break;
    }
    if (Ok && !Defined.empty())
      Result.insert(Array);
  }
  return Result;
}

std::set<const Loop *> daisy::parallelizableLoops(const NodePtr &Root,
                                                  const ValueEnv &Params,
                                                  const Program *Prog) {
  // Privatizable sets are per carrier loop; compute them lazily, once.
  std::map<const Loop *, std::set<std::string>> PrivCache;
  auto Privatizable = [&](const Dependence &Dep, size_t Level) {
    const Loop *Carrier = Dep.CommonLoops[Level].get();
    auto It = PrivCache.find(Carrier);
    if (It == PrivCache.end()) {
      std::vector<std::string> Enclosing;
      for (size_t I = 0; I < Level; ++I)
        Enclosing.push_back(Dep.CommonLoops[I]->iterator());
      It = PrivCache
               .emplace(Carrier, privatizableArraysUnder(
                                     Dep.CommonLoops[Level], Enclosing,
                                     *Prog))
               .first;
    }
    return It->second.count(Dep.Array) != 0;
  };

  std::set<const Loop *> Carriers;
  for (const Dependence &Dep : computeDependences(Root, Params)) {
    int Level = Dep.carrierLevel();
    if (Level < 0)
      continue;
    if (Prog && Privatizable(Dep, static_cast<size_t>(Level)))
      continue;
    Carriers.insert(Dep.CommonLoops[static_cast<size_t>(Level)].get());
  }
  std::set<const Loop *> Result;
  for (const auto &L : collectLoops(Root))
    if (!Carriers.count(L.get()))
      Result.insert(L.get());
  return Result;
}

/// Matches `target = target op expr` reductions with an associative op.
static bool isAssociativeUpdate(const Computation &Comp) {
  const ExprPtr &Rhs = Comp.rhs();
  if (Rhs->kind() != ExprKind::Binary)
    return false;
  switch (Rhs->binaryOp()) {
  case BinaryOpKind::Add:
  case BinaryOpKind::Mul:
  case BinaryOpKind::Min:
  case BinaryOpKind::Max:
    break;
  default:
    return false;
  }
  for (const ExprPtr &Operand : Rhs->operands())
    if (Operand->kind() == ExprKind::Read &&
        Operand->access() == Comp.write())
      return true;
  return false;
}

bool daisy::isReductionLoop(const NodePtr &Root, const Loop *Target,
                            const ValueEnv &Params) {
  bool CarriesAny = false;
  for (const Dependence &Dep : computeDependences(Root, Params)) {
    int Level = Dep.carrierLevel();
    if (Level < 0 ||
        Dep.CommonLoops[static_cast<size_t>(Level)].get() != Target)
      continue;
    CarriesAny = true;
    if (Dep.Src != Dep.Dst || !isAssociativeUpdate(*Dep.Src))
      return false;
  }
  return CarriesAny;
}

std::vector<std::vector<size_t>>
daisy::distributionGroups(const Loop &L, const ValueEnv &Params) {
  const std::vector<NodePtr> &Body = L.body();
  size_t N = Body.size();

  // Map each computation to the body item containing it.
  std::map<const Computation *, size_t> Item;
  for (size_t I = 0; I < N; ++I)
    for (const auto &C : collectComputations(Body[I]))
      Item[C.get()] = I;

  // Dependence graph over body items. A shell loop sharing the original
  // body nodes keeps computation pointers valid for the Item map.
  std::vector<std::set<size_t>> Succ(N);
  auto Shell = std::make_shared<Loop>(L.iterator(), L.lower(), L.upper(),
                                      Body, L.step());
  for (const Dependence &Dep : computeDependences(Shell, Params)) {
    auto SrcIt = Item.find(Dep.Src.get());
    auto DstIt = Item.find(Dep.Dst.get());
    if (SrcIt == Item.end() || DstIt == Item.end())
      continue;
    if (SrcIt->second != DstIt->second)
      Succ[SrcIt->second].insert(DstIt->second);
  }

  // Tarjan SCC over body items.
  std::vector<int> Index(N, -1), Low(N, 0), CompOf(N, -1);
  std::vector<bool> OnStack(N, false);
  std::vector<size_t> Stack;
  int NextIndex = 0, NextComp = 0;
  std::function<void(size_t)> StrongConnect = [&](size_t V) {
    Index[V] = Low[V] = NextIndex++;
    Stack.push_back(V);
    OnStack[V] = true;
    for (size_t W : Succ[V]) {
      if (Index[W] < 0) {
        StrongConnect(W);
        Low[V] = std::min(Low[V], Low[W]);
      } else if (OnStack[W]) {
        Low[V] = std::min(Low[V], Index[W]);
      }
    }
    if (Low[V] == Index[V]) {
      for (;;) {
        size_t W = Stack.back();
        Stack.pop_back();
        OnStack[W] = false;
        CompOf[W] = NextComp;
        if (W == V)
          break;
      }
      ++NextComp;
    }
  };
  for (size_t V = 0; V < N; ++V)
    if (Index[V] < 0)
      StrongConnect(V);

  // Group items by SCC.
  std::vector<std::vector<size_t>> Groups(static_cast<size_t>(NextComp));
  for (size_t V = 0; V < N; ++V)
    Groups[static_cast<size_t>(CompOf[V])].push_back(V);

  // Execution order of groups: topological w.r.t. inter-group edges,
  // breaking ties by minimal original body index (stable).
  std::vector<std::set<size_t>> GroupSucc(Groups.size());
  std::vector<size_t> InDegree(Groups.size(), 0);
  for (size_t V = 0; V < N; ++V)
    for (size_t W : Succ[V]) {
      size_t GV = static_cast<size_t>(CompOf[V]);
      size_t GW = static_cast<size_t>(CompOf[W]);
      if (GV != GW && GroupSucc[GV].insert(GW).second)
        ++InDegree[GW];
    }
  std::vector<size_t> Ready;
  for (size_t G = 0; G < Groups.size(); ++G)
    if (InDegree[G] == 0)
      Ready.push_back(G);
  auto MinItem = [&Groups](size_t G) { return Groups[G].front(); };
  std::vector<std::vector<size_t>> Ordered;
  while (!Ready.empty()) {
    auto Best = std::min_element(
        Ready.begin(), Ready.end(),
        [&](size_t A, size_t B) { return MinItem(A) < MinItem(B); });
    size_t G = *Best;
    Ready.erase(Best);
    Ordered.push_back(Groups[G]);
    for (size_t W : GroupSucc[G])
      if (--InDegree[W] == 0)
        Ready.push_back(W);
  }
  assert(Ordered.size() == Groups.size() && "dependence graph had a cycle "
                                            "between groups");
  return Ordered;
}

bool daisy::canFuseLoops(const std::shared_ptr<Loop> &First,
                         const std::shared_ptr<Loop> &Second,
                         const ValueEnv &Params) {
  if (First->step() != Second->step())
    return false;
  // Bounds must match once Second's iterator is renamed to First's.
  AffineExpr Lower =
      Second->lower().renamed(Second->iterator(), First->iterator());
  AffineExpr Upper =
      Second->upper().renamed(Second->iterator(), First->iterator());
  if (!(Lower == First->lower()) || !(Upper == First->upper()))
    return false;

  // Build the candidate fused loop.
  std::vector<NodePtr> FusedBody = cloneBody(First->body());
  size_t FirstBodySize = FusedBody.size();
  for (const NodePtr &Child : Second->body())
    FusedBody.push_back(
        renameIterator(Child, Second->iterator(), First->iterator()));
  auto Fused = std::make_shared<Loop>(First->iterator(), First->lower(),
                                      First->upper(), std::move(FusedBody),
                                      First->step());

  // Identify which fused statements came from the first body.
  std::vector<StmtInfo> Stmts = collectStatements(Fused);
  std::map<const Computation *, bool> FromFirst;
  for (size_t I = 0; I < Fused->body().size(); ++I)
    for (const auto &C : collectComputations(Fused->body()[I]))
      FromFirst[C.get()] = I < FirstBodySize;

  // Fusion is illegal iff some access pair between a first-body statement
  // and a second-body statement (one of them a write) may alias with the
  // first-body instance at a strictly later fused iteration: in the
  // original program every First instance ran before every Second
  // instance, and fusion would reverse that pair.
  for (const StmtInfo &S : Stmts) {
    if (!FromFirst.at(S.Comp.get()))
      continue;
    AccessList SAcc = accessesOf(*S.Comp);
    for (const StmtInfo &T : Stmts) {
      if (FromFirst.at(T.Comp.get()))
        continue;
      AccessList TAcc = accessesOf(*T.Comp);
      std::vector<std::pair<const ArrayAccess *, const ArrayAccess *>> Pairs;
      for (const ArrayAccess &R : TAcc.Reads)
        if (R.Array == SAcc.Write.Array)
          Pairs.push_back({&SAcc.Write, &R});
      for (const ArrayAccess &R : SAcc.Reads)
        if (R.Array == TAcc.Write.Array)
          Pairs.push_back({&R, &TAcc.Write});
      if (SAcc.Write.Array == TAcc.Write.Array)
        Pairs.push_back({&SAcc.Write, &TAcc.Write});
      for (const auto &[A, B] : Pairs) {
        for (const auto &Directions :
             feasibleDirectionVectors(S, *A, T, *B, Params)) {
          // Only the fused (outermost common) level matters; deeper
          // common loops cannot exist across the two original bodies.
          if (!Directions.empty() && Directions[0] == DepDirection::Gt)
            return false;
        }
      }
    }
  }
  return true;
}
