//===- analysis/Stride.cpp ------------------------------------------------==//
//
// Part of the daisy project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/Stride.h"

#include "analysis/Accesses.h"

#include <cmath>
#include <cstdlib>

using namespace daisy;

int64_t daisy::accessStride(const ArrayAccess &Access,
                            const std::string &Iterator, int64_t Step,
                            const Program &Prog) {
  const ArrayDecl *Decl = Prog.findArray(Access.Array);
  if (!Decl || Access.Indices.empty())
    return 0;
  return linearizedCoefficient(Access.Indices, Decl->Shape, Iterator) * Step;
}

double daisy::sumOfStridesCost(const NodePtr &Root, const Program &Prog) {
  double Cost = 0.0;
  for (const StmtInfo &S : collectStatements(Root)) {
    std::vector<IterRange> Ranges = conservativeRanges(S.Path, Prog.params());
    // Advances[L]: approximately how many times level L's iterator steps
    // during one execution of the nest = product of trip counts of levels
    // 0..L. The innermost level dominates the sum, matching the intuition
    // that consecutive accesses are mostly innermost-iterator steps.
    std::vector<double> Advances(S.Path.size(), 1.0);
    double Product = 1.0;
    for (size_t L = 0; L < S.Path.size(); ++L) {
      double Trip =
          static_cast<double>(std::max<int64_t>(Ranges[L].span(), 1)) /
          static_cast<double>(S.Path[L]->step());
      Product *= Trip;
      Advances[L] = Product;
    }

    AccessList Acc = accessesOf(*S.Comp);
    std::vector<const ArrayAccess *> All;
    All.push_back(&Acc.Write);
    for (const ArrayAccess &R : Acc.Reads)
      All.push_back(&R);

    for (const ArrayAccess *Access : All) {
      for (size_t L = 0; L < S.Path.size(); ++L) {
        int64_t Delta = accessStride(*Access, S.Path[L]->iterator(),
                                     S.Path[L]->step(), Prog);
        if (Delta != 0)
          Cost += static_cast<double>(std::llabs(Delta)) * Advances[L];
      }
    }
  }
  return Cost;
}

int64_t daisy::outOfOrderCount(const NodePtr &Root, const Program &Prog) {
  int64_t Count = 0;
  for (const StmtInfo &S : collectStatements(Root)) {
    // Loop level of each iterator name.
    std::map<std::string, size_t> Level;
    for (size_t L = 0; L < S.Path.size(); ++L)
      Level[S.Path[L]->iterator()] = L;

    AccessList Acc = accessesOf(*S.Comp);
    std::vector<const ArrayAccess *> All;
    All.push_back(&Acc.Write);
    for (const ArrayAccess &R : Acc.Reads)
      All.push_back(&R);

    for (const ArrayAccess *Access : All) {
      if (!Prog.findArray(Access->Array) || Access->Indices.empty())
        continue;
      // Innermost (deepest) loop level referenced per dimension; -1 if the
      // dimension is loop-invariant.
      std::vector<int> DimLevel(Access->Indices.size(), -1);
      for (size_t Dim = 0; Dim < Access->Indices.size(); ++Dim)
        for (const auto &[Name, Coefficient] :
             Access->Indices[Dim].terms()) {
          auto It = Level.find(Name);
          if (It != Level.end())
            DimLevel[Dim] =
                std::max(DimLevel[Dim], static_cast<int>(It->second));
        }
      // Count inverted dimension pairs.
      for (size_t D1 = 0; D1 < DimLevel.size(); ++D1)
        for (size_t D2 = D1 + 1; D2 < DimLevel.size(); ++D2)
          if (DimLevel[D1] >= 0 && DimLevel[D2] >= 0 &&
              DimLevel[D1] > DimLevel[D2])
            ++Count;
      // Penalize when the innermost loop does not drive the last dimension.
      if (!S.Path.empty()) {
        int Innermost = static_cast<int>(S.Path.size()) - 1;
        bool LastDimInnermost = DimLevel.back() == Innermost;
        bool InnermostUsed = false;
        for (int L : DimLevel)
          InnermostUsed |= L == Innermost;
        if (InnermostUsed && !LastDimInnermost)
          ++Count;
      }
    }
  }
  return Count;
}
