//===- analysis/Dependence.cpp --------------------------------------------==//
//
// Part of the daisy project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/Dependence.h"

#include <cassert>
#include <numeric>

using namespace daisy;

bool Dependence::isLoopIndependent() const {
  for (DepDirection Dir : Directions)
    if (Dir != DepDirection::Eq)
      return false;
  return true;
}

int Dependence::carrierLevel() const {
  for (size_t I = 0; I < Directions.size(); ++I)
    if (Directions[I] == DepDirection::Lt)
      return static_cast<int>(I);
  return -1;
}

std::string Dependence::toString() const {
  std::string Result;
  switch (Kind) {
  case DepKind::Flow:
    Result = "flow ";
    break;
  case DepKind::Anti:
    Result = "anti ";
    break;
  case DepKind::Output:
    Result = "output ";
    break;
  }
  Result += Src->name() + " -> " + Dst->name() + " on " + Array + " [";
  for (size_t I = 0; I < Directions.size(); ++I) {
    if (I != 0)
      Result += ",";
    Result += Directions[I] == DepDirection::Eq
                  ? "="
                  : (Directions[I] == DepDirection::Lt ? "<" : ">");
  }
  return Result + "]";
}

namespace {

/// One linear equation sum(Coeff_v * v) + Constant = 0 over renamed
/// variables. Source-side iterators are tagged "s:", sink-side "t:".
struct LinearEq {
  std::map<std::string, int64_t> Coeffs;
  int64_t Constant = 0;
};

/// Variable ranges for the renamed variables of one equation system.
using RangeMap = std::map<std::string, IterRange>;

/// Accumulates Coefficient * Range into [Min, Max].
void accumulate(int64_t Coefficient, const IterRange &Range, int64_t &Min,
                int64_t &Max) {
  if (Coefficient >= 0) {
    Min += Coefficient * Range.Min;
    Max += Coefficient * Range.Max;
  } else {
    Min += Coefficient * Range.Max;
    Max += Coefficient * Range.Min;
  }
}

/// GCD feasibility: sum of coefficient*integer can hit -Constant only if
/// gcd of coefficients divides it.
bool gcdFeasible(const LinearEq &Eq) {
  int64_t G = 0;
  for (const auto &[Name, Coefficient] : Eq.Coeffs)
    G = std::gcd(G, Coefficient < 0 ? -Coefficient : Coefficient);
  if (G == 0)
    return Eq.Constant == 0;
  return Eq.Constant % G == 0;
}

/// Context shared between all direction vectors of one access pair.
struct PairContext {
  std::vector<LinearEq> Equations;
  // Ranges of non-common (private) variables, already renamed.
  RangeMap PrivateRanges;
  // Per common loop: range, and the source/sink variable names.
  struct CommonLoopInfo {
    IterRange Range;
    std::string SrcVar;
    std::string SinkVar;
  };
  std::vector<CommonLoopInfo> Common;
};

/// Renames iterator \p Name to its side-tagged form.
std::string srcVar(const std::string &Name) { return "s:" + Name; }
std::string sinkVar(const std::string &Name) { return "t:" + Name; }

/// Builds per-dimension equations for accesses \p A (source side) and \p B
/// (sink side). Returns std::nullopt if the accesses trivially cannot alias
/// (different arrays or ranks).
std::optional<PairContext> buildContext(const StmtInfo &S,
                                        const ArrayAccess &A,
                                        const StmtInfo &T,
                                        const ArrayAccess &B,
                                        const ValueEnv &Params) {
  if (A.Array != B.Array || A.Indices.size() != B.Indices.size())
    return std::nullopt;

  PairContext Ctx;
  std::vector<std::shared_ptr<Loop>> Shared = commonLoops(S.Path, T.Path);
  std::vector<IterRange> SrcRanges = conservativeRanges(S.Path, Params);
  std::vector<IterRange> SinkRanges = conservativeRanges(T.Path, Params);

  for (size_t I = 0; I < Shared.size(); ++I) {
    PairContext::CommonLoopInfo Info;
    Info.Range = SrcRanges[I];
    Info.SrcVar = srcVar(Shared[I]->iterator());
    Info.SinkVar = sinkVar(Shared[I]->iterator());
    Ctx.Common.push_back(std::move(Info));
  }
  for (size_t I = Shared.size(); I < S.Path.size(); ++I)
    Ctx.PrivateRanges[srcVar(S.Path[I]->iterator())] = SrcRanges[I];
  for (size_t I = Shared.size(); I < T.Path.size(); ++I)
    Ctx.PrivateRanges[sinkVar(T.Path[I]->iterator())] = SinkRanges[I];

  for (size_t Dim = 0; Dim < A.Indices.size(); ++Dim) {
    LinearEq Eq;
    Eq.Constant =
        A.Indices[Dim].constantTerm() - B.Indices[Dim].constantTerm();
    auto addTerms = [&Eq, &Params](const AffineExpr &Expr, bool SourceSide,
                                   int64_t Sign) {
      for (const auto &[Name, Coefficient] : Expr.terms()) {
        auto ParamIt = Params.find(Name);
        if (ParamIt != Params.end()) {
          Eq.Constant += Sign * Coefficient * ParamIt->second;
          continue;
        }
        std::string Var = SourceSide ? srcVar(Name) : sinkVar(Name);
        Eq.Coeffs[Var] += Sign * Coefficient;
        if (Eq.Coeffs[Var] == 0)
          Eq.Coeffs.erase(Var);
      }
    };
    addTerms(A.Indices[Dim], /*SourceSide=*/true, 1);
    addTerms(B.Indices[Dim], /*SourceSide=*/false, -1);
    Ctx.Equations.push_back(std::move(Eq));
  }
  return Ctx;
}

/// Tests whether a direction vector is feasible for every equation via
/// interval (Banerjee-style) bounds.
bool directionFeasible(const PairContext &Ctx,
                       const std::vector<DepDirection> &Directions) {
  // Pre-compute, per common loop, how its source and sink variables are
  // constrained by the direction entry. We model:
  //   Eq: I_src = I_sink = I, I in Range.
  //   Lt: I_src in Range, Delta in [1, span-1], I_sink = I_src + Delta.
  //   Gt: I_sink in Range, Delta in [1, span-1], I_src = I_sink + Delta.
  for (size_t L = 0; L < Ctx.Common.size(); ++L) {
    const IterRange &R = Ctx.Common[L].Range;
    if (R.isEmpty())
      return false;
    if (Directions[L] != DepDirection::Eq && R.span() < 2)
      return false; // cannot have two distinct iterations
  }

  for (const LinearEq &Eq : Ctx.Equations) {
    if (!gcdFeasible(Eq))
      return false;
    int64_t Min = Eq.Constant;
    int64_t Max = Eq.Constant;
    // Private variables contribute their whole range.
    for (const auto &[Var, Range] : Ctx.PrivateRanges) {
      auto It = Eq.Coeffs.find(Var);
      if (It == Eq.Coeffs.end())
        continue;
      if (Range.isEmpty())
        return false;
      accumulate(It->second, Range, Min, Max);
    }
    // Common loops contribute according to the direction entry.
    for (size_t L = 0; L < Ctx.Common.size(); ++L) {
      const auto &Info = Ctx.Common[L];
      auto SrcIt = Eq.Coeffs.find(Info.SrcVar);
      auto SinkIt = Eq.Coeffs.find(Info.SinkVar);
      int64_t ASrc = SrcIt == Eq.Coeffs.end() ? 0 : SrcIt->second;
      int64_t ASink = SinkIt == Eq.Coeffs.end() ? 0 : SinkIt->second;
      if (ASrc == 0 && ASink == 0)
        continue;
      const IterRange &R = Info.Range;
      IterRange Delta{1, R.span() - 1};
      switch (Directions[L]) {
      case DepDirection::Eq:
        // Combined coefficient times the shared value.
        accumulate(ASrc + ASink, R, Min, Max);
        break;
      case DepDirection::Lt:
        // I_sink = I_src + Delta.
        accumulate(ASrc + ASink, R, Min, Max);
        accumulate(ASink, Delta, Min, Max);
        break;
      case DepDirection::Gt:
        // I_src = I_sink + Delta.
        accumulate(ASrc + ASink, R, Min, Max);
        accumulate(ASrc, Delta, Min, Max);
        break;
      }
    }
    if (Min > 0 || Max < 0)
      return false;
  }
  return true;
}

/// True if \p Directions is lexicographically positive (first non-Eq entry
/// is Lt).
bool lexicographicallyPositive(const std::vector<DepDirection> &Directions) {
  for (DepDirection Dir : Directions) {
    if (Dir == DepDirection::Lt)
      return true;
    if (Dir == DepDirection::Gt)
      return false;
  }
  return false;
}

bool allEq(const std::vector<DepDirection> &Directions) {
  for (DepDirection Dir : Directions)
    if (Dir != DepDirection::Eq)
      return false;
  return true;
}

} // namespace

std::vector<std::vector<DepDirection>>
daisy::feasibleDirectionVectors(const StmtInfo &S, const ArrayAccess &A,
                                const StmtInfo &T, const ArrayAccess &B,
                                const ValueEnv &Params) {
  std::vector<std::vector<DepDirection>> Result;
  std::optional<PairContext> Ctx = buildContext(S, A, T, B, Params);
  if (!Ctx)
    return Result;

  size_t NumCommon = Ctx->Common.size();
  std::vector<DepDirection> Directions(NumCommon, DepDirection::Eq);
  // Enumerate all 3^NumCommon vectors.
  size_t Total = 1;
  for (size_t I = 0; I < NumCommon; ++I)
    Total *= 3;
  for (size_t Code = 0; Code < Total; ++Code) {
    size_t Rest = Code;
    for (size_t I = 0; I < NumCommon; ++I) {
      static constexpr DepDirection Table[3] = {
          DepDirection::Eq, DepDirection::Lt, DepDirection::Gt};
      Directions[I] = Table[Rest % 3];
      Rest /= 3;
    }
    if (directionFeasible(*Ctx, Directions))
      Result.push_back(Directions);
  }
  return Result;
}

std::vector<Dependence>
daisy::computeDependences(const std::vector<NodePtr> &Roots,
                          const ValueEnv &Params) {
  std::vector<Dependence> Result;
  std::vector<StmtInfo> Stmts = collectStatements(Roots);

  for (const StmtInfo &S : Stmts) {
    AccessList SAcc = accessesOf(*S.Comp);
    for (const StmtInfo &T : Stmts) {
      AccessList TAcc = accessesOf(*T.Comp);

      // Gather the (source access, sink access, kind) pairs with at least
      // one write on the same array.
      struct Pair {
        const ArrayAccess *A;
        const ArrayAccess *B;
        DepKind Kind;
      };
      std::vector<Pair> Pairs;
      // Write -> read (flow).
      for (const ArrayAccess &R : TAcc.Reads)
        if (R.Array == SAcc.Write.Array)
          Pairs.push_back({&SAcc.Write, &R, DepKind::Flow});
      // Read -> write (anti).
      for (const ArrayAccess &R : SAcc.Reads)
        if (R.Array == TAcc.Write.Array)
          Pairs.push_back({&R, &TAcc.Write, DepKind::Anti});
      // Write -> write (output).
      if (SAcc.Write.Array == TAcc.Write.Array)
        Pairs.push_back({&SAcc.Write, &TAcc.Write, DepKind::Output});

      for (const Pair &P : Pairs) {
        std::vector<std::vector<DepDirection>> Vectors =
            feasibleDirectionVectors(S, *P.A, T, *P.B, Params);
        for (std::vector<DepDirection> &Directions : Vectors) {
          bool Valid = false;
          if (lexicographicallyPositive(Directions))
            Valid = true;
          else if (allEq(Directions) && S.Order < T.Order)
            Valid = true;
          else if (allEq(Directions) && S.Order == T.Order &&
                   S.Comp == T.Comp && P.Kind == DepKind::Anti)
            // Within one instance a computation reads its operands before
            // writing; an all-Eq anti self-pair is that benign intra-
            // instance ordering, not a dependence between instances.
            Valid = false;
          if (!Valid)
            continue;
          Dependence Dep;
          Dep.Src = S.Comp;
          Dep.Dst = T.Comp;
          Dep.Array = P.A->Array;
          Dep.Kind = P.Kind;
          Dep.CommonLoops = commonLoops(S.Path, T.Path);
          Dep.Directions = std::move(Directions);
          Result.push_back(std::move(Dep));
        }
      }
    }
  }
  return Result;
}

std::vector<Dependence> daisy::computeDependences(const NodePtr &Root,
                                                  const ValueEnv &Params) {
  return computeDependences(std::vector<NodePtr>{Root}, Params);
}
