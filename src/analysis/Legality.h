//===- analysis/Legality.h - Transformation legality queries -----*- C++ -*-=//
//
// Part of the daisy project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Legality queries for the loop transformations: permutation, distribution
/// (fission), fusion, and parallelization. All queries are built on the
/// conservative dependence analysis, so a "legal" verdict is sound while an
/// "illegal" verdict may be conservative.
///
//===----------------------------------------------------------------------===//

#ifndef DAISY_ANALYSIS_LEGALITY_H
#define DAISY_ANALYSIS_LEGALITY_H

#include "analysis/Dependence.h"
#include "ir/Program.h"

#include <memory>
#include <set>
#include <string>
#include <vector>

namespace daisy {

/// Returns the perfect band of \p Root: the maximal chain of loops where
/// each loop's body is exactly one child loop. \p Root must be a loop; it
/// is always the first entry.
std::vector<std::shared_ptr<Loop>> perfectNestBand(const NodePtr &Root);

/// True if permuting the perfect band of \p Root into iterator order
/// \p NewOrder preserves all dependences. \p NewOrder must be a
/// permutation of the band's iterator names.
bool isPermutationLegal(const NodePtr &Root,
                        const std::vector<std::string> &NewOrder,
                        const ValueEnv &Params);

/// Loops (by node identity) in \p Root's subtree that carry no dependence
/// and can therefore run in parallel.
///
/// When \p Prog is provided, dependences on *privatizable transients* are
/// discounted, as an OpenMP-style parallelizer would privatize them: a
/// transient array (or scalar) whose subscripts reference no iterator at
/// or above the carrier loop, and whose first access under the carrier is
/// a write that does not read the array itself, gets a fresh private copy
/// per iteration.
std::set<const Loop *> parallelizableLoops(const NodePtr &Root,
                                           const ValueEnv &Params,
                                           const Program *Prog = nullptr);

/// Transient arrays accessed under the loop \p Carrier that an OpenMP-style
/// parallelizer may give a fresh private copy per iteration of \p Carrier.
/// An array qualifies iff, under \p Carrier:
///
/// - no subscript of any access references \p Carrier's iterator or any of
///   \p EnclosingIters (every iteration touches the same elements),
/// - no loop bound below \p Carrier on a path to an access references
///   those iterators (every iteration runs the same accessing iteration
///   space),
/// - every read of the array is preceded, in execution order, by a write
///   of the same element: an earlier statement writing with identical
///   subscripts under a value-identical below-carrier loop context (each
///   iteration defines what it uses before using it).
///
/// The define-before-use condition makes the buffer's pre-iteration
/// contents unobservable within one iteration, which is what both the
/// parallelization legality discount and the parallel execution backend's
/// per-thread private copies rely on; keeping them on this one helper is
/// what keeps transform and exec in agreement.
std::set<std::string> privatizableArraysUnder(
    const NodePtr &Carrier, const std::vector<std::string> &EnclosingIters,
    const Program &Prog);

/// True if \p Target carries only reduction-style self-dependences: every
/// dependence carried by \p Target has identical source and sink whose
/// right-hand side is an associative update (add/mul/min/max at the root)
/// of the written access. Such loops can be parallelized with atomic
/// updates — the expensive fallback the paper reports for correlation and
/// covariance.
bool isReductionLoop(const NodePtr &Root, const Loop *Target,
                     const ValueEnv &Params);

/// Partition of \p L's immediate body into the finest legal distribution:
/// strongly connected components of the body-item dependence graph, in an
/// execution order that respects all dependences. Each group is a list of
/// body indices in original order; groups of size one whose item is a loop
/// or independent computation are "atomic" nests after fission.
std::vector<std::vector<size_t>> distributionGroups(const Loop &L,
                                                    const ValueEnv &Params);

/// True if the adjacent sibling loops \p First then \p Second (in that
/// execution order) can be fused into one loop: identical step, identical
/// bounds (after renaming \p Second's iterator), and no aliasing pair of
/// accesses where a \p First instance at a later fused iteration conflicts
/// with a \p Second instance at an earlier one.
bool canFuseLoops(const std::shared_ptr<Loop> &First,
                  const std::shared_ptr<Loop> &Second,
                  const ValueEnv &Params);

} // namespace daisy

#endif // DAISY_ANALYSIS_LEGALITY_H
