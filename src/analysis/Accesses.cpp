//===- analysis/Accesses.cpp ----------------------------------------------==//
//
// Part of the daisy project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/Accesses.h"

#include <cassert>

using namespace daisy;

namespace {

void collectImpl(const NodePtr &Node,
                 std::vector<std::shared_ptr<Loop>> &Stack,
                 std::vector<StmtInfo> &Out) {
  if (Node->kind() == NodeKind::Computation) {
    StmtInfo Info;
    Info.Comp = std::static_pointer_cast<Computation>(Node);
    Info.Path = Stack;
    Info.Order = static_cast<int>(Out.size());
    Out.push_back(std::move(Info));
    return;
  }
  if (auto L = std::dynamic_pointer_cast<Loop>(Node)) {
    Stack.push_back(L);
    for (const NodePtr &Child : L->body())
      collectImpl(Child, Stack, Out);
    Stack.pop_back();
  }
  // CallNodes carry no analyzable accesses; schedulers introduce them after
  // analysis, so they are skipped here.
}

} // namespace

std::vector<StmtInfo>
daisy::collectStatements(const std::vector<NodePtr> &Roots) {
  std::vector<StmtInfo> Result;
  std::vector<std::shared_ptr<Loop>> Stack;
  for (const NodePtr &Root : Roots)
    collectImpl(Root, Stack, Result);
  return Result;
}

std::vector<StmtInfo> daisy::collectStatements(const NodePtr &Root) {
  return collectStatements(std::vector<NodePtr>{Root});
}

IterRange daisy::unknownIterRange() {
  // Wide enough to dominate every real extent, small enough that a
  // coefficient times the bound cannot overflow int64 in the dependence
  // tests' interval sums.
  constexpr int64_t Bound = int64_t(1) << 31;
  return IterRange{-Bound, Bound};
}

IterRange
daisy::evaluateInterval(const AffineExpr &Expr,
                        const std::map<std::string, IterRange> &Ranges,
                        const ValueEnv &Params) {
  int64_t Min = Expr.constantTerm();
  int64_t Max = Expr.constantTerm();
  for (const auto &[Name, Coefficient] : Expr.terms()) {
    auto ParamIt = Params.find(Name);
    if (ParamIt != Params.end()) {
      Min += Coefficient * ParamIt->second;
      Max += Coefficient * ParamIt->second;
      continue;
    }
    // A variable that is neither a parameter nor a loop on the analyzed
    // path is an enclosing iterator of a subtree under analysis (e.g.
    // fission distributing an inner triangular loop whose bound references
    // the outer iterator). Its value is fixed but unknown here, so it
    // contributes the conservative unknown interval.
    auto RangeIt = Ranges.find(Name);
    const IterRange &R =
        RangeIt != Ranges.end() ? RangeIt->second : unknownIterRange();
    if (R.isEmpty())
      return IterRange{0, -1};
    if (Coefficient >= 0) {
      Min += Coefficient * R.Min;
      Max += Coefficient * R.Max;
    } else {
      Min += Coefficient * R.Max;
      Max += Coefficient * R.Min;
    }
  }
  return IterRange{Min, Max};
}

std::vector<IterRange>
daisy::conservativeRanges(const std::vector<std::shared_ptr<Loop>> &Path,
                          const ValueEnv &Params) {
  std::vector<IterRange> Result;
  std::map<std::string, IterRange> Known;
  for (const auto &L : Path) {
    IterRange Lower = evaluateInterval(L->lower(), Known, Params);
    IterRange Upper = evaluateInterval(L->upper(), Known, Params);
    IterRange R;
    R.Min = Lower.Min;
    R.Max = Upper.Max - 1; // upper bound is exclusive
    Result.push_back(R);
    Known[L->iterator()] = R;
  }
  return Result;
}

std::vector<std::shared_ptr<Loop>>
daisy::commonLoops(const std::vector<std::shared_ptr<Loop>> &A,
                   const std::vector<std::shared_ptr<Loop>> &B) {
  std::vector<std::shared_ptr<Loop>> Result;
  for (size_t I = 0; I < A.size() && I < B.size(); ++I) {
    if (A[I] != B[I])
      break;
    Result.push_back(A[I]);
  }
  return Result;
}

AccessList daisy::accessesOf(const Computation &Comp) {
  AccessList Result;
  Result.Write = Comp.write();
  Result.Reads = Comp.reads();
  return Result;
}
