//===- serve/RequestQueue.h - FIFO scheduling policy -------------*- C++ -*-=//
//
// Part of the daisy project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The FIFO policy of the pluggable serve::Scheduler — historically the
/// Server's one-and-only bounded MPMC queue, now the strict-admission-
/// order implementation behind the interface (SchedulerPolicy::Fifo,
/// the default). All of the bounded-queue behavior lives in the base
/// class: backpressure (Block/Reject), admission- and pop-time deadline
/// shedding, waiter-wake accounting, and close()-then-drain shutdown.
/// This class contributes only the storage: one deque in admission
/// order, head-first selection with same-kernel micro-batch coalescing.
///
/// Unbounded queues are how serving systems die; the bound makes the
/// failure mode a decision. FIFO keeps per-request latency fair (no
/// request overtakes another) at the cost of tail latency under bursts —
/// one heavy request delays everything behind it. Deadline-sensitive
/// traffic wants SchedulerPolicy::EarliestDeadlineFirst instead.
///
//===----------------------------------------------------------------------===//

#ifndef DAISY_SERVE_REQUESTQUEUE_H
#define DAISY_SERVE_REQUESTQUEUE_H

#include "serve/Scheduler.h"

#include <deque>
#include <vector>

namespace daisy {
namespace serve {

class RequestQueue final : public Scheduler {
public:
  using Scheduler::Scheduler;

private:
  void enqueueLocked(Request &&R) override { Q.push_back(std::move(R)); }

  void shedExpiredLocked(TimePoint Now,
                         std::vector<Request> &Expired) override {
    shedExpiredFrom(Q, Now, Expired);
  }

  void selectBatchLocked(std::vector<Request> &Batch,
                         size_t MaxBatch) override {
    fifoSelectFrom(Q, Batch, MaxBatch);
  }

  std::deque<Request> Q;
};

} // namespace serve
} // namespace daisy

#endif // DAISY_SERVE_REQUESTQUEUE_H
