//===- serve/RequestQueue.h - Bounded MPMC request queue ---------*- C++ -*-=//
//
// Part of the daisy project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The admission-controlled buffer between request producers
/// (Server::submit from any thread) and the worker pool draining it.
///
/// The queue is bounded: a full queue exerts explicit backpressure under
/// one of two policies chosen at construction — Block (the submitting
/// thread waits for space; end-to-end latency absorbs the overload) or
/// Reject (push returns Overloaded immediately and the caller's future
/// fails fast with RunStatus::Overloaded). Unbounded queues are how
/// serving systems die; the bound makes the failure mode a decision.
///
/// popBatch implements per-kernel micro-batching: it removes the head
/// request plus up to MaxBatch-1 further requests for the same kernel
/// (matched by BoundArgs::kernelToken), scanning past other kernels'
/// requests without disturbing their relative order. The head is always
/// taken first, so no kernel can starve another; same-kernel coalescing
/// only ever moves requests earlier. A batch executes as one dispatch —
/// one queue round-trip and one warm context stretch instead of B.
///
/// close() stops admission (pushes fail with ShutDown) but lets poppers
/// drain every admitted request, so shutdown completes or fails every
/// future and leaks none.
///
//===----------------------------------------------------------------------===//

#ifndef DAISY_SERVE_REQUESTQUEUE_H
#define DAISY_SERVE_REQUESTQUEUE_H

#include "api/Kernel.h"
#include "serve/BoundArgs.h"

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <future>
#include <mutex>
#include <vector>

namespace daisy {
namespace serve {

/// What submit does when the queue is full.
enum class BackpressurePolicy {
  Block, ///< Wait for a worker to make space.
  Reject ///< Fail the request immediately with RunStatus::Overloaded.
};

/// One queued unit of work: the kernel to run, its prepared arguments,
/// and the promise backing the caller's future. Move-only (the promise).
struct Request {
  Kernel K;
  BoundArgs Args;
  std::promise<RunStatus> Done;
};

class RequestQueue {
public:
  RequestQueue(size_t Capacity, BackpressurePolicy Policy)
      : Capacity(Capacity ? Capacity : 1), Policy(Policy) {}

  enum class PushResult { Ok, Overloaded, ShutDown };

  /// Admits \p R, applying the backpressure policy when full. Returns
  /// ShutDown after close() (\p R is handed back untouched in that case
  /// and on Overloaded, so the caller can fail its promise). On success,
  /// \p DepthAfter (when non-null) receives the queue depth including
  /// \p R — the sample the server's depth histogram is built from.
  PushResult push(Request &R, size_t *DepthAfter = nullptr);

  /// Blocks until at least one request is available (or the queue is
  /// closed and empty — returns false, the worker-exit signal). Fills
  /// \p Batch with the head request plus up to \p MaxBatch - 1 more
  /// same-kernel requests, in admission order.
  bool popBatch(std::vector<Request> &Batch, size_t MaxBatch);

  /// Stops admission and wakes every waiter; already-admitted requests
  /// remain poppable until drained.
  void close();

  /// Requests currently queued (admitted, not yet popped).
  size_t depth() const;

  /// High-water mark of depth() over the queue's lifetime, sampled after
  /// every successful push.
  size_t maxDepthSeen() const;

  size_t capacity() const { return Capacity; }

private:
  const size_t Capacity;
  const BackpressurePolicy Policy;

  mutable std::mutex Mutex;
  std::condition_variable NotEmpty; ///< Signals poppers: work or close().
  std::condition_variable NotFull;  ///< Signals blocked pushers.
  std::deque<Request> Q;
  size_t MaxDepth = 0;
  bool Closed = false;

  /// Wake accounting: a push pays a futex wake only when a popper is
  /// actually waiting and no wake is already in flight toward it —
  /// without this, a burst of pushes racing one not-yet-scheduled worker
  /// issues one syscall per request. PendingPopWakes counts notify_one
  /// calls whose receiver has not left (or re-entered) the wait loop yet;
  /// every wait return decrements it, so a popper that loses its item to
  /// another lane and waits again re-arms notification. All under Mutex.
  size_t WaitingPop = 0;
  size_t PendingPopWakes = 0;
  size_t WaitingPush = 0;
};

} // namespace serve
} // namespace daisy

#endif // DAISY_SERVE_REQUESTQUEUE_H
