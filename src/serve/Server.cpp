//===- serve/Server.cpp ---------------------------------------------------==//
//
// Part of the daisy project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "serve/Server.h"

#include "exec/ThreadPool.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "support/FailPoint.h"
#include "support/Random.h"
#include "support/Statistics.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <string>
#include <utility>

using namespace daisy;
using namespace daisy::serve;

namespace {

// The depth / latency bucketing that used to be hand-rolled here lives in
// support/Histogram.h now (Log2Bucketing / LogLinearBucketing), shared
// with the per-stage histograms and the obs/Metrics exporter.

/// Microseconds between two stamps, clamped at zero (a watchdog requeue
/// can re-stamp ClaimedAt after RunStart was conceived; telemetry never
/// records negative durations).
uint64_t elapsedUs(TimePoint From, TimePoint To) {
  auto Us = std::chrono::duration_cast<std::chrono::microseconds>(To - From)
                .count();
  return Us < 0 ? 0 : static_cast<uint64_t>(Us);
}

/// Equal-jittered retry sleep: half the nominal backoff deterministic,
/// half uniform. A cohort of submitters rejected by the same full-queue
/// event decorrelates instead of re-arriving in lockstep and colliding
/// again, and no submitter ever sleeps less than half the nominal value.
std::chrono::microseconds jitteredBackoff(std::chrono::microseconds Backoff) {
  static thread_local Rng JitterRng(deriveSeed(
      0xB0FFull,
      std::hash<std::thread::id>{}(std::this_thread::get_id())));
  uint64_t Half = static_cast<uint64_t>(Backoff.count()) / 2;
  if (Half == 0)
    return Backoff;
  return std::chrono::microseconds(Half + JitterRng.nextBelow(Half + 1));
}

} // namespace

Server::Server(ServerOptions Options)
    : Opts(std::move(Options)),
      CSubmitted(statsCounterCell("Serve.Submitted")),
      CCompleted(statsCounterCell("Serve.Completed")),
      CRejected(statsCounterCell("Serve.Rejected")),
      CExpired(statsCounterCell("Serve.Expired")),
      CRetries(statsCounterCell("Serve.SubmitRetries")),
      CBatchedRuns(statsCounterCell("Serve.BatchedRuns")),
      CDepthMax(statsCounterCell("Serve.QueueDepthMax")),
      CStolen(statsCounterCell("Serve.StolenBatches")),
      CStalls(statsCounterCell("Serve.WorkerStalls")),
      CDispatchStalls(statsCounterCell("Serve.DispatchStalls")),
      CBrownouts(statsCounterCell("Serve.Brownouts")),
      CBrownoutSheds(statsCounterCell("Serve.BrownoutSheds")),
      CAffinityHits(statsCounterCell("Serve.ContextAffinityHits")),
      // Flight-recorder names interned once here: the dispatch path emits
      // with resolved ids, never a map lookup.
      TnSubmit(traceNameId("serve.submit")),
      TnRequest(traceNameId("serve.request")),
      TnQueueWait(traceNameId("serve.queue_wait")),
      TnBatchWait(traceNameId("serve.batch_wait")),
      TnRun(traceNameId("serve.run")) {
  size_t ShardCount = std::max<size_t>(Opts.Shards, 1);
  Shards.reserve(ShardCount);
  for (size_t I = 0; I < ShardCount; ++I) {
    EngineOptions ShardOpts = Opts.Engine;
    // Each shard persists its own checkpoint lineage: the routing-key
    // partition of the kernel population is also a partition of the
    // tuning entries, so shards never contend on (or clobber) one file.
    if (!ShardOpts.DatabasePath.empty() && ShardCount > 1)
      ShardOpts.DatabasePath += ".shard" + std::to_string(I);
    Shards.push_back(std::make_unique<Engine>(std::move(ShardOpts)));
  }

  if (Opts.BrownoutHighWater > 0.0) {
    double Cap = static_cast<double>(std::max<size_t>(Opts.QueueCapacity, 1));
    BrownoutHighDepth = std::max<size_t>(
        static_cast<size_t>(std::ceil(Opts.BrownoutHighWater * Cap)), 1);
    double Low = std::min(Opts.BrownoutLowWater, Opts.BrownoutHighWater);
    BrownoutLowDepth = static_cast<size_t>(std::max(Low, 0.0) * Cap);
    if (BrownoutLowDepth >= BrownoutHighDepth)
      BrownoutLowDepth = BrownoutHighDepth - 1;
  }

  // Queue shards split the configured capacity (and any tenant quota)
  // evenly, so the option values keep their single-queue meaning as
  // totals.
  size_t NumQ = std::max<size_t>(Opts.QueueShards, 1);
  size_t QueueCap = std::max<size_t>(Opts.QueueCapacity / NumQ, 1);
  size_t Quota =
      Opts.TenantQuota ? std::max<size_t>(Opts.TenantQuota / NumQ, 1) : 0;
  Queues.reserve(NumQ);
  for (size_t I = 0; I < NumQ; ++I)
    Queues.push_back(
        Scheduler::create(Opts.Scheduling, QueueCap, Opts.Policy, Quota));

  int Workers =
      Opts.Workers > 0 ? Opts.Workers : ThreadPool::defaultThreadCount();
  Lanes.reserve(static_cast<size_t>(Workers));
  for (int I = 0; I < Workers; ++I)
    Lanes.push_back(std::make_unique<LaneState>());
  // The pool's lanes become queue drainers for the server's lifetime: the
  // dispatcher parks inside one fork-join run() whose W tasks are the
  // worker loops, and returns when close() lets every lane drain out.
  // Reusing ThreadPool keeps the nesting rule: a kernel executed by a
  // lane runs its parallel-marked loops serially (bit-identical by the
  // ExecPlan contract); concurrency comes from serving W requests at
  // once instead.
  Pool = std::make_unique<ThreadPool>(Workers);
  Dispatcher = std::thread([this, Workers] {
    Pool->run(Workers, [this](int Lane) { workerLane(Lane); });
  });
  if (Opts.StallTimeout.count() > 0)
    Watchdog = std::thread([this] { watchdogLoop(); });
}

Server::~Server() {
  for (auto &Q : Queues)
    Q->close();
  if (Dispatcher.joinable())
    Dispatcher.join();
  // The watchdog outlives the lanes so a batch claimed by a lane that
  // stalls *during* shutdown is still rescued (requeue returns ShutDown
  // once closed and the watchdog completes the futures itself).
  WatchdogStop.store(true, std::memory_order_release);
  if (Watchdog.joinable())
    Watchdog.join();
  // All lanes have exited: every admitted request was executed, shed, or
  // failed and every future fulfilled. ~ThreadPool joins the parked
  // workers.
}

Engine &Server::shardFor(const Program &Prog) {
  return *Shards[Engine::routingKey(Prog) % Shards.size()];
}

Server::TenantCounters &Server::tenantCounters(uint32_t Tenant) {
  std::lock_guard<std::mutex> Lock(TenantMutex);
  auto It = TenantStats.find(Tenant);
  if (It == TenantStats.end()) {
    std::string Base = "Serve.Tenant" + std::to_string(Tenant) + ".";
    It = TenantStats
             .emplace(Tenant,
                      TenantCounters{statsCounterCell(Base + "Submitted"),
                                     statsCounterCell(Base + "Completed"),
                                     statsCounterCell(Base + "Rejected"),
                                     statsCounterCell(Base + "Expired")})
             .first;
  }
  return It->second;
}

size_t Server::queueShardFor(const BoundArgs &Args) const {
  if (Queues.size() == 1)
    return 0;
  // Kernel tokens are aligned pointers; a Fibonacci scramble of the
  // high-entropy middle bits spreads them over the shards. Same kernel →
  // same shard, so micro-batch coalescing keeps working per shard.
  uint64_t Token =
      static_cast<uint64_t>(reinterpret_cast<uintptr_t>(Args.kernelToken()));
  uint64_t H = (Token >> 4) * 0x9E3779B97F4A7C15ull;
  return static_cast<size_t>((H >> 32) % Queues.size());
}

Kernel Server::compile(const Program &Prog) {
  return shardFor(Prog).compile(Prog);
}

Kernel Server::optimize(const Program &Prog, const TuneOptions &Options) {
  return shardFor(Prog).optimize(Prog, Options);
}

std::future<RunStatus> Server::submit(const Kernel &K, BoundArgs Args,
                                      const SubmitOptions &Options) {
  CSubmitted.fetch_add(1, std::memory_order_relaxed);
  TenantCounters &Tenant = tenantCounters(Options.Tenant);
  Tenant.Submitted.fetch_add(1, std::memory_order_relaxed);
  Request R;
  R.K = K;
  R.Args = std::move(Args);
  R.Prio = Options.Prio;
  R.Tenant = Options.Tenant;
  R.Weight = Options.Weight ? Options.Weight : 1;
  R.EnqueuedAt = serveNow();
  R.Deadline = Options.Deadline;
  if (R.Deadline == noDeadline() && Options.Timeout.count() > 0)
    R.Deadline = R.EnqueuedAt + Options.Timeout;
  std::future<RunStatus> Result = R.Done.get_future();

  // Fail fast on arguments that could never execute; the worker-side
  // stale-kernel check still guards requests that race a rebind.
  if (!R.Args.ok()) {
    R.Done.set_value(invalidBoundArgsStatus(R.Args));
    CCompleted.fetch_add(1, std::memory_order_relaxed);
    Tenant.Completed.fetch_add(1, std::memory_order_relaxed);
    return Result;
  }

  // Brownout: in admission distress the optional work goes first. Low
  // priority is shed right here — before it occupies a queue slot or a
  // retry loop — as a Rejected outcome, so the drain invariant holds and
  // retry-with-backoff does not hammer a browned-out server (the gate is
  // re-evaluated per submit, not per retry attempt).
  if (brownoutGate() && R.Prio == Priority::Low) {
    CBrownoutSheds.fetch_add(1, std::memory_order_relaxed);
    CRejected.fetch_add(1, std::memory_order_relaxed);
    Tenant.Rejected.fetch_add(1, std::memory_order_relaxed);
    R.Done.set_value(RunStatus{
        "server brownout: low-priority request shed at admission",
        RunStatus::Overloaded});
    return Result;
  }

  // Count admission before the push: a worker may complete the request
  // before push() even returns, and drain()'s Finished must never
  // overtake Admitted.
  Admitted.fetch_add(1);
  Scheduler &Queue = *Queues[queueShardFor(R.Args)];
  size_t DepthAfter = 0;
  std::chrono::microseconds Backoff = Options.Backoff;
  Scheduler::PushResult Pushed;
  for (int Attempt = 0;; ++Attempt) {
    // Fault site "serve.queue.push": a firing Trigger makes this push act
    // as if the queue were full, exercising the Overloaded/retry paths
    // without needing a real capacity storm.
    Pushed = DAISY_FAILPOINT("serve.queue.push")
                 ? Scheduler::PushResult::Overloaded
                 : Queue.push(R, &DepthAfter);
    if (Pushed == Scheduler::PushResult::Ok) {
      maxStatsCounter(CDepthMax, static_cast<int64_t>(DepthAfter));
      DepthHist.record(DepthAfter);
      // Flight recorder: one instant per admission, arg = depth after the
      // push, so a trace shows the queue growing under load.
      TraceRecorder &TR = TraceRecorder::instance();
      if (TR.enabled())
        TR.emit(TracePhase::Instant, TraceCategory::Serve, TnSubmit,
                DepthAfter);
      return Result;
    }
    if (Pushed != Scheduler::PushResult::Overloaded ||
        Attempt >= Options.MaxRetries)
      break;
    // A deadline can lapse during backoff; classify that as Expired, not
    // Overloaded — the caller's deadline budget, not the queue, decided.
    if (R.Deadline != noDeadline() && serveNow() >= R.Deadline) {
      Pushed = Scheduler::PushResult::Expired;
      break;
    }
    CRetries.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::sleep_for(jitteredBackoff(Backoff));
    Backoff = std::min(Backoff * 2, std::chrono::microseconds(100000));
  }

  {
    // The rollback can complete a drain, so it synchronizes like
    // Finished does.
    std::lock_guard<std::mutex> Lock(DrainMutex);
    Admitted.fetch_sub(1);
  }
  DrainCV.notify_all();
  RunStatus Failed;
  switch (Pushed) {
  case Scheduler::PushResult::Expired:
    CExpired.fetch_add(1, std::memory_order_relaxed);
    Tenant.Expired.fetch_add(1, std::memory_order_relaxed);
    Failed = RunStatus::expired();
    break;
  case Scheduler::PushResult::ShutDown:
    CRejected.fetch_add(1, std::memory_order_relaxed);
    Tenant.Rejected.fetch_add(1, std::memory_order_relaxed);
    Failed = RunStatus::shutDown();
    break;
  default:
    CRejected.fetch_add(1, std::memory_order_relaxed);
    Tenant.Rejected.fetch_add(1, std::memory_order_relaxed);
    Failed = RunStatus::overloaded();
    break;
  }
  R.Done.set_value(std::move(Failed));
  return Result;
}

std::future<RunStatus> Server::submit(const Kernel &K, const ArgBinding &Args,
                                      const SubmitOptions &Options) {
  return submit(K, K.bind(Args), Options);
}

void Server::workerLane(int Lane) {
  std::vector<Request> Batch;
  std::vector<Request> Expired;
  // Lane-local context affinity: the pooled RunContext of the kernel this
  // lane dispatched last stays borrowed in the lease across batches, so a
  // lane riding one hot kernel (micro-batching groups by kernel token)
  // reuses a warm context with no pool mutex round-trip
  // ("Serve.ContextAffinityHits"). Destroyed at lane exit, which returns
  // the context to its kernel's pool.
  RunContextLease Lease;
  const size_t NumQ = Queues.size();
  const size_t Home = static_cast<size_t>(Lane) % NumQ;
  const size_t MaxB = std::max<size_t>(Opts.MaxBatch, 1);
  LaneState *Slot = (Lane >= 0 && static_cast<size_t>(Lane) < Lanes.size())
                        ? Lanes[static_cast<size_t>(Lane)].get()
                        : nullptr;
  const bool Watched = Slot && Opts.StallTimeout.count() > 0;
  for (;;) {
    if (NumQ == 1) {
      // Single shard: the classic blocking drain.
      if (!Queues[0]->popBatch(Batch, Expired, MaxB))
        break;
    } else {
      // Sharded: poll the home shard with a bounded wait, then sweep the
      // siblings for a batch to steal — one hot shard keeps every lane
      // busy instead of parking lanes behind cold shards.
      Scheduler::PopResult Home_ = Queues[Home]->popBatchFor(
          Batch, Expired, MaxB, std::chrono::microseconds(500));
      if (Home_ != Scheduler::PopResult::Got) {
        bool AllClosed = Home_ == Scheduler::PopResult::Closed;
        bool Stole = false;
        for (size_t Off = 1; Off < NumQ && !Stole; ++Off) {
          Scheduler::PopResult S =
              Queues[(Home + Off) % NumQ]->tryPopBatch(Batch, Expired, MaxB);
          if (S == Scheduler::PopResult::Got)
            Stole = true;
          else if (S != Scheduler::PopResult::Closed)
            AllClosed = false;
        }
        if (!Stole) {
          if (AllClosed)
            break;
          // A drained home returns Closed without waiting; park briefly
          // so the sibling sweep does not spin while they finish.
          if (Home_ == Scheduler::PopResult::Closed)
            std::this_thread::sleep_for(std::chrono::microseconds(200));
          continue;
        }
        if (!Batch.empty())
          CStolen.fetch_add(1, std::memory_order_relaxed);
      }
    }

    // Claim stamp: queue wait ends here for every request in the batch.
    // A watchdog-reclaimed batch is requeued and re-stamped when a
    // healthy lane pops it again, so the stages stay a partition of the
    // final sojourn.
    if (!Batch.empty()) {
      TimePoint ClaimStamp = serveNow();
      for (Request &R : Batch)
        R.ClaimedAt = ClaimStamp;
    }

    // Shed work first: the futures are already lost causes and cheap to
    // fail, and doing it before the batch keeps the latency of surviving
    // requests honest.
    if (!Expired.empty()) {
      for (Request &E : Expired) {
        E.Done.set_value(RunStatus::expired());
        tenantCounters(E.Tenant).Expired.fetch_add(1,
                                                   std::memory_order_relaxed);
      }
      CExpired.fetch_add(static_cast<int64_t>(Expired.size()),
                         std::memory_order_relaxed);
      finishMany(Expired.size());
    }
    if (Batch.empty())
      continue;

    if (!Watched) {
      // Fault site "serve.worker": an armed Delay stalls this lane
      // between pop and dispatch — the window in which deadlines lapse
      // and other lanes must pick up the slack.
      (void)DAISY_FAILPOINT("serve.worker");
      dispatchBatch(Batch, Lease);
      continue;
    }

    // Watchdog protocol. Publish the popped batch as this lane's claim:
    // from here until the reclaim below, a watchdog that finds the claim
    // older than StallTimeout takes the batch away and requeues it.
    {
      std::lock_guard<std::mutex> Lock(Slot->M);
      Slot->Claimed = std::move(Batch);
      Slot->ClaimedAt = serveNow();
      Slot->Epoch.fetch_add(1, std::memory_order_relaxed);
    }
    // The fault site sits inside the claim window, so an armed Delay
    // stalls this lane exactly where the watchdog polices.
    (void)DAISY_FAILPOINT("serve.worker");
    {
      std::lock_guard<std::mutex> Lock(Slot->M);
      if (Slot->Claimed.empty()) {
        // The watchdog reclaimed the batch: it is not ours anymore.
        Batch.clear();
        continue;
      }
      Batch = std::move(Slot->Claimed);
      Slot->Claimed.clear();
      Slot->Dispatching = true;
      Slot->DispatchStart = serveNow();
      Slot->DispatchStallCounted = false;
      Slot->Epoch.fetch_add(1, std::memory_order_relaxed);
    }
    dispatchBatch(Batch, Lease);
    {
      std::lock_guard<std::mutex> Lock(Slot->M);
      Slot->Dispatching = false;
      Slot->Epoch.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

void Server::dispatchBatch(std::vector<Request> &Batch,
                           RunContextLease &Lease) {
  size_t B = Batch.size();
  if (B > 1)
    CBatchedRuns.fetch_add(static_cast<int64_t>(B), std::memory_order_relaxed);

  // The batch shares one BoundArgs kernel token (popBatch coalesces by
  // it). Requests whose submitted kernel really owns those arguments —
  // the common case, all of them — execute as one coalesced dispatch
  // on a single pooled context (Kernel::runBatch); a request whose
  // kernel does not match its arguments is executed alone so it earns
  // its stale diagnostic without disturbing the batch.
  std::vector<RunStatus> Statuses(B);
  std::vector<size_t> Grouped;
  std::vector<const BoundArgs *> GroupArgs;
  TimePoint RunStart = serveNow(); // Batch wait ends, execution begins.
  for (size_t I = 0; I < B; ++I) {
    if (Batch[I].K.token() == Batch[I].Args.kernelToken()) {
      Grouped.push_back(I);
      GroupArgs.push_back(&Batch[I].Args);
    } else {
      Statuses[I] = Batch[I].K.run(Batch[I].Args);
    }
  }
  if (!Grouped.empty()) {
    const Kernel &K = Batch[Grouped.front()].K;
    // Affinity hit: the lease already holds this kernel's context from
    // the previous dispatch — runBatch reuses it warm, no pool traffic.
    if (Lease.kernelToken() == K.token())
      CAffinityHits.fetch_add(1, std::memory_order_relaxed);
    std::vector<RunStatus> GroupStatuses(Grouped.size());
    K.runBatch(GroupArgs.data(), GroupStatuses.data(), Grouped.size(), Lease);
    for (size_t J = 0; J < Grouped.size(); ++J)
      Statuses[Grouped[J]] = std::move(GroupStatuses[J]);
  }
  TimePoint Now = serveNow();
  TraceRecorder &TR = TraceRecorder::instance();
  const bool Tracing = TR.enabled();
  for (size_t I = 0; I < B; ++I) {
    Request &R = Batch[I];
    recordLatency(R.EnqueuedAt, Now);
    // Stage decomposition of the same sojourn: queue wait ends at the
    // claim stamp, batch wait at the dispatch stamp, run at completion.
    uint64_t QueueUs = elapsedUs(R.EnqueuedAt, R.ClaimedAt);
    uint64_t BatchUs = elapsedUs(R.ClaimedAt, RunStart);
    uint64_t RunUs = elapsedUs(RunStart, Now);
    QueueWaitHist.record(QueueUs);
    BatchWaitHist.record(BatchUs);
    RunHist.record(RunUs);
    if (Tracing) {
      // The request's stage spans, reconstructed post-completion as
      // Chrome "X" (complete) events — begin/end pairing across the
      // submitting and dispatching threads would corrupt lane nesting.
      // Arg carries the admission sequence so one request's spans
      // correlate across lanes in a trace viewer.
      uint64_t EnqNs = TR.toNs(R.EnqueuedAt);
      uint64_t ClaimNs = TR.toNs(R.ClaimedAt);
      uint64_t RunNs = TR.toNs(RunStart);
      uint64_t NowNs = TR.toNs(Now);
      TR.emitComplete(TraceCategory::Serve, TnRequest, EnqNs, NowNs - EnqNs,
                      R.Seq);
      TR.emitComplete(TraceCategory::Serve, TnQueueWait, EnqNs,
                      ClaimNs - EnqNs, R.Seq);
      TR.emitComplete(TraceCategory::Serve, TnBatchWait, ClaimNs,
                      RunNs - ClaimNs, R.Seq);
      TR.emitComplete(TraceCategory::Serve, TnRun, RunNs, NowNs - RunNs,
                      R.Seq);
    }
    tenantCounters(R.Tenant).Completed.fetch_add(1, std::memory_order_relaxed);
    R.Done.set_value(std::move(Statuses[I]));
  }
  CCompleted.fetch_add(static_cast<int64_t>(B), std::memory_order_relaxed);
  finishMany(B);
}

void Server::watchdogLoop() {
  const std::chrono::microseconds Timeout = Opts.StallTimeout;
  // Poll at half the timeout (bounded to [100µs, 10ms]): stalls are
  // detected within ~1.5x the configured timeout without the poll itself
  // becoming a busy loop.
  std::chrono::microseconds Poll = Timeout / 2;
  Poll = std::min(Poll, std::chrono::microseconds(10000));
  Poll = std::max(Poll, std::chrono::microseconds(100));
  std::vector<Request> Reclaimed;
  while (!WatchdogStop.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(Poll);
    TimePoint Now = serveNow();
    for (auto &SlotPtr : Lanes) {
      LaneState &Slot = *SlotPtr;
      Reclaimed.clear();
      {
        std::lock_guard<std::mutex> Lock(Slot.M);
        if (!Slot.Claimed.empty() && !Slot.Dispatching &&
            Now - Slot.ClaimedAt >= Timeout) {
          Reclaimed = std::move(Slot.Claimed);
          Slot.Claimed.clear();
          Slot.Epoch.fetch_add(1, std::memory_order_relaxed);
        } else if (Slot.Dispatching && !Slot.DispatchStallCounted &&
                   Now - Slot.DispatchStart >= Timeout) {
          // A lane stalled inside a kernel cannot be reclaimed safely —
          // the kernel owns the arguments right now. Count it so
          // operators see it; the batch completes when the kernel does.
          Slot.DispatchStallCounted = true;
          CDispatchStalls.fetch_add(1, std::memory_order_relaxed);
        }
      }
      if (Reclaimed.empty())
        continue;
      CStalls.fetch_add(1, std::memory_order_relaxed);
      // Drain-safe requeue: re-admit each request so a healthy lane
      // serves it; a request that cannot be re-admitted (queue closed,
      // deadline lapsed) has its future completed right here — reclaimed
      // work is never leaked.
      uint64_t FailedNow = 0;
      for (Request &R : Reclaimed) {
        Scheduler &Queue = *Queues[queueShardFor(R.Args)];
        Scheduler::PushResult P = Queue.requeue(R);
        if (P == Scheduler::PushResult::Ok)
          continue;
        TenantCounters &Tenant = tenantCounters(R.Tenant);
        if (P == Scheduler::PushResult::Expired) {
          R.Done.set_value(RunStatus::expired());
          CExpired.fetch_add(1, std::memory_order_relaxed);
          Tenant.Expired.fetch_add(1, std::memory_order_relaxed);
        } else {
          R.Done.set_value(RunStatus::shutDown());
          CRejected.fetch_add(1, std::memory_order_relaxed);
          Tenant.Rejected.fetch_add(1, std::memory_order_relaxed);
        }
        ++FailedNow;
      }
      if (FailedNow)
        finishMany(FailedNow);
    }
  }
}

void Server::finishMany(uint64_t N) {
  {
    std::lock_guard<std::mutex> Lock(DrainMutex);
    Finished += N;
  }
  DrainCV.notify_all();
}

void Server::drain() {
  {
    std::unique_lock<std::mutex> Lock(DrainMutex);
    DrainCV.wait(Lock, [&] { return Finished == Admitted.load(); });
  }
  // Quiescent point: everything admitted has completed, so the databases
  // are as consistent as they get — persist any shard that changed.
  // No-op for shards without a DatabasePath or with unchanged entries.
  // Tuning cycles are drained first so a calibration recorded by an
  // in-flight cycle makes this checkpoint instead of the next one.
  for (auto &Shard : Shards) {
    Shard->drainTuning();
    (void)Shard->checkpointNow();
  }
}

bool Server::brownoutGate() {
  // Fault site "serve.brownout": a firing Trigger is forced distress —
  // the gate acts as if the high watermark were crossed, letting tests
  // drive the brownout path without a real capacity storm.
  bool Forced;
  try {
    Forced = DAISY_FAILPOINT("serve.brownout");
  } catch (...) {
    Forced = true;
  }
  if (BrownoutHighDepth == 0 && !Forced)
    return false;
  size_t Depth = queueDepth();
  bool Active = BrownoutActive.load(std::memory_order_relaxed);
  if (Forced || (BrownoutHighDepth != 0 && Depth >= BrownoutHighDepth)) {
    // exchange() dedupes the episode count when submits race the entry.
    if (!BrownoutActive.exchange(true, std::memory_order_relaxed))
      CBrownouts.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  if (Active && Depth <= BrownoutLowDepth) {
    BrownoutActive.store(false, std::memory_order_relaxed);
    return false;
  }
  return Active;
}

HealthSnapshot Server::health() {
  HealthSnapshot H;
  H.QueueDepths.reserve(Queues.size());
  for (const auto &Q : Queues)
    H.QueueDepths.push_back(Q->depth());
  for (size_t D : H.QueueDepths)
    H.QueueDepth += D;
  H.QueueCapacity = std::max<size_t>(Opts.QueueCapacity, 1);
  H.Brownout = brownoutGate();
  H.Brownouts = CBrownouts.load(std::memory_order_relaxed);
  H.BrownoutSheds = CBrownoutSheds.load(std::memory_order_relaxed);
  H.WorkerStalls = CStalls.load(std::memory_order_relaxed);
  H.DispatchStalls = CDispatchStalls.load(std::memory_order_relaxed);
  H.Shards.reserve(Shards.size());
  for (const auto &Shard : Shards) {
    HealthSnapshot::ShardRow Row;
    Row.Quarantined = Shard->quarantinedCount();
    Row.CheckpointGeneration = Shard->checkpointGeneration();
    Row.BudgetUsedBytes = Shard->memoryBytesUsed();
    Row.BudgetPeakBytes = Shard->memoryBytesPeak();
    Row.BudgetLimitBytes = Shard->options().MemoryBudgetBytes;
    if (const OnlineTuner *T = Shard->tuner()) {
      OnlineTuner::Stats S = T->stats();
      Row.TuningEnabled = S.Enabled;
      Row.TuneTracked = S.Tracked;
      Row.TuneProbesInFlight = S.ProbesInFlight;
      Row.TuneSwaps = S.Swaps;
      Row.TuneRollbacks = S.Rollbacks;
    }
    H.Quarantined += Row.Quarantined;
    H.Shards.push_back(Row);
  }
  H.P50Us = latencyQuantileUs(0.5);
  H.P99Us = latencyQuantileUs(0.99);
  H.Submitted = CSubmitted.load(std::memory_order_relaxed);
  H.Completed = CCompleted.load(std::memory_order_relaxed);
  H.Rejected = CRejected.load(std::memory_order_relaxed);
  H.Expired = CExpired.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> Lock(TenantMutex);
    H.Tenants.reserve(TenantStats.size());
    for (const auto &[Id, Cells] : TenantStats) {
      HealthSnapshot::TenantRow Row;
      Row.Tenant = Id;
      Row.Submitted = Cells.Submitted.load(std::memory_order_relaxed);
      Row.Completed = Cells.Completed.load(std::memory_order_relaxed);
      Row.Rejected = Cells.Rejected.load(std::memory_order_relaxed);
      Row.Expired = Cells.Expired.load(std::memory_order_relaxed);
      H.Tenants.push_back(Row);
    }
  }
  std::sort(H.Tenants.begin(), H.Tenants.end(),
            [](const HealthSnapshot::TenantRow &A,
               const HealthSnapshot::TenantRow &B) {
              return A.Tenant < B.Tenant;
            });
  return H;
}

void Server::recordLatency(TimePoint EnqueuedAt, TimePoint Now) {
  LatencyHist.record(elapsedUs(EnqueuedAt, Now));
}

double Server::latencyQuantileUs(double Q) const {
  return LatencyHist.quantile(Q);
}

uint64_t Server::latencyCount() const { return LatencyHist.count(); }

double Server::stageQuantileUs(Stage S, double Q) const {
  return stageHist(S).quantile(Q);
}

uint64_t Server::stageCount(Stage S) const { return stageHist(S).count(); }

double Server::stageSumUs(Stage S) const { return stageHist(S).approxSum(); }

std::vector<uint64_t> Server::queueDepthHistogram() const {
  auto Counts = DepthHist.snapshot();
  return std::vector<uint64_t>(Counts.begin(), Counts.end());
}

namespace {

MetricsSnapshot serverMetricsSnapshot(const DepthHistogram &Depth,
                                      const LatencyHistogram &Latency,
                                      const LatencyHistogram &QueueWait,
                                      const LatencyHistogram &BatchWait,
                                      const LatencyHistogram &Run) {
  MetricsSnapshot Snap = snapshotMetrics(); // The whole counter registry.
  Snap.Histograms.push_back(snapshotHistogram(
      "Serve.QueueDepth", "queue depth sampled after each admission",
      Depth));
  Snap.Histograms.push_back(snapshotHistogram(
      "Serve.LatencyUs", "end-to-end request sojourn, microseconds",
      Latency));
  Snap.Histograms.push_back(snapshotHistogram(
      "Serve.QueueWaitUs", "submit to worker claim, microseconds",
      QueueWait));
  Snap.Histograms.push_back(snapshotHistogram(
      "Serve.BatchWaitUs", "worker claim to dispatch start, microseconds",
      BatchWait));
  Snap.Histograms.push_back(snapshotHistogram(
      "Serve.RunUs", "dispatch start to completion, microseconds", Run));
  return Snap;
}

} // namespace

std::string Server::metricsText() const {
  return metricsToPrometheus(serverMetricsSnapshot(
      DepthHist, LatencyHist, QueueWaitHist, BatchWaitHist, RunHist));
}

std::string Server::metricsJson() const {
  return metricsToJson(serverMetricsSnapshot(
      DepthHist, LatencyHist, QueueWaitHist, BatchWaitHist, RunHist));
}

bool Server::dumpTrace(const std::string &Path) const {
  return TraceRecorder::instance().dumpTrace(Path);
}
