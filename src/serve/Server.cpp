//===- serve/Server.cpp ---------------------------------------------------==//
//
// Part of the daisy project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "serve/Server.h"

#include "exec/ThreadPool.h"
#include "support/Statistics.h"

#include <algorithm>
#include <cassert>
#include <utility>

using namespace daisy;
using namespace daisy::serve;

namespace {

/// Histogram bucket of a depth sample: floor(log2(Depth)), clamped.
size_t depthBucket(size_t Depth, size_t Buckets) {
  size_t B = 0;
  while (Depth > 1 && B + 1 < Buckets) {
    Depth >>= 1;
    ++B;
  }
  return B;
}

} // namespace

Server::Server(ServerOptions Options)
    : Opts(std::move(Options)), Queue(Opts.QueueCapacity, Opts.Policy),
      CSubmitted(statsCounterCell("Serve.Submitted")),
      CCompleted(statsCounterCell("Serve.Completed")),
      CRejected(statsCounterCell("Serve.Rejected")),
      CBatchedRuns(statsCounterCell("Serve.BatchedRuns")),
      CDepthMax(statsCounterCell("Serve.QueueDepthMax")) {
  for (auto &Bucket : DepthHist)
    Bucket.store(0, std::memory_order_relaxed);
  size_t ShardCount = std::max<size_t>(Opts.Shards, 1);
  Shards.reserve(ShardCount);
  for (size_t I = 0; I < ShardCount; ++I)
    Shards.push_back(std::make_unique<Engine>(Opts.Engine));

  int Workers =
      Opts.Workers > 0 ? Opts.Workers : ThreadPool::defaultThreadCount();
  // The pool's lanes become queue drainers for the server's lifetime: the
  // dispatcher parks inside one fork-join run() whose W tasks are the
  // worker loops, and returns when close() lets every lane drain out.
  // Reusing ThreadPool keeps the nesting rule: a kernel executed by a
  // lane runs its parallel-marked loops serially (bit-identical by the
  // ExecPlan contract); concurrency comes from serving W requests at
  // once instead.
  Pool = std::make_unique<ThreadPool>(Workers);
  Dispatcher = std::thread(
      [this, Workers] { Pool->run(Workers, [this](int) { workerLane(); }); });
}

Server::~Server() {
  Queue.close();
  if (Dispatcher.joinable())
    Dispatcher.join();
  // All lanes have exited: every admitted request was executed and every
  // future fulfilled. ~ThreadPool joins the parked workers.
}

Engine &Server::shardFor(const Program &Prog) {
  return *Shards[Engine::routingKey(Prog) % Shards.size()];
}

Kernel Server::compile(const Program &Prog) {
  return shardFor(Prog).compile(Prog);
}

Kernel Server::optimize(const Program &Prog, const TuneOptions &Options) {
  return shardFor(Prog).optimize(Prog, Options);
}

std::future<RunStatus> Server::submit(const Kernel &K, BoundArgs Args) {
  CSubmitted.fetch_add(1, std::memory_order_relaxed);
  Request R;
  R.K = K;
  R.Args = std::move(Args);
  std::future<RunStatus> Result = R.Done.get_future();

  // Fail fast on arguments that could never execute; the worker-side
  // stale-kernel check still guards requests that race a rebind.
  if (!R.Args.ok()) {
    R.Done.set_value(invalidBoundArgsStatus(R.Args));
    CCompleted.fetch_add(1, std::memory_order_relaxed);
    return Result;
  }

  // Count admission before the push: a worker may complete the request
  // before push() even returns, and drain()'s Finished must never
  // overtake Admitted.
  Admitted.fetch_add(1);
  size_t DepthAfter = 0;
  RequestQueue::PushResult Pushed = Queue.push(R, &DepthAfter);
  if (Pushed != RequestQueue::PushResult::Ok) {
    {
      // The rollback can complete a drain, so it synchronizes like
      // Finished does.
      std::lock_guard<std::mutex> Lock(DrainMutex);
      Admitted.fetch_sub(1);
    }
    DrainCV.notify_all();
    CRejected.fetch_add(1, std::memory_order_relaxed);
    R.Done.set_value(Pushed == RequestQueue::PushResult::Overloaded
                         ? RunStatus::overloaded()
                         : RunStatus::shutDown());
    return Result;
  }
  maxStatsCounter(CDepthMax, static_cast<int64_t>(DepthAfter));
  DepthHist[depthBucket(DepthAfter, DepthHist.size())].fetch_add(
      1, std::memory_order_relaxed);
  return Result;
}

std::future<RunStatus> Server::submit(const Kernel &K,
                                      const ArgBinding &Args) {
  return submit(K, K.bind(Args));
}

void Server::workerLane() {
  std::vector<Request> Batch;
  std::vector<RunStatus> Statuses;
  std::vector<size_t> Grouped;
  std::vector<const BoundArgs *> GroupArgs;
  std::vector<RunStatus> GroupStatuses;
  while (Queue.popBatch(Batch, std::max<size_t>(Opts.MaxBatch, 1))) {
    size_t B = Batch.size();
    if (B > 1)
      CBatchedRuns.fetch_add(static_cast<int64_t>(B),
                             std::memory_order_relaxed);

    // The batch shares one BoundArgs kernel token (popBatch coalesces by
    // it). Requests whose submitted kernel really owns those arguments —
    // the common case, all of them — execute as one coalesced dispatch
    // on a single pooled context (Kernel::runBatch); a request whose
    // kernel does not match its arguments is executed alone so it earns
    // its stale diagnostic without disturbing the batch.
    Statuses.assign(B, RunStatus());
    Grouped.clear();
    GroupArgs.clear();
    for (size_t I = 0; I < B; ++I) {
      if (Batch[I].K.token() == Batch[I].Args.kernelToken()) {
        Grouped.push_back(I);
        GroupArgs.push_back(&Batch[I].Args);
      } else {
        Statuses[I] = Batch[I].K.run(Batch[I].Args);
      }
    }
    if (!Grouped.empty()) {
      GroupStatuses.assign(Grouped.size(), RunStatus());
      Batch[Grouped.front()].K.runBatch(GroupArgs.data(),
                                        GroupStatuses.data(),
                                        Grouped.size());
      for (size_t J = 0; J < Grouped.size(); ++J)
        Statuses[Grouped[J]] = std::move(GroupStatuses[J]);
    }
    for (size_t I = 0; I < B; ++I)
      Batch[I].Done.set_value(std::move(Statuses[I]));
    CCompleted.fetch_add(static_cast<int64_t>(B), std::memory_order_relaxed);
    finishMany(B);
  }
}

void Server::finishMany(uint64_t N) {
  {
    std::lock_guard<std::mutex> Lock(DrainMutex);
    Finished += N;
  }
  DrainCV.notify_all();
}

void Server::drain() {
  std::unique_lock<std::mutex> Lock(DrainMutex);
  DrainCV.wait(Lock, [&] { return Finished == Admitted.load(); });
}

std::vector<uint64_t> Server::queueDepthHistogram() const {
  std::vector<uint64_t> Result(DepthHist.size());
  for (size_t I = 0; I < DepthHist.size(); ++I)
    Result[I] = DepthHist[I].load(std::memory_order_relaxed);
  return Result;
}
