//===- serve/Server.cpp ---------------------------------------------------==//
//
// Part of the daisy project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "serve/Server.h"

#include "exec/ThreadPool.h"
#include "support/FailPoint.h"
#include "support/Statistics.h"

#include <algorithm>
#include <cassert>
#include <utility>

using namespace daisy;
using namespace daisy::serve;

namespace {

/// Histogram bucket of a depth sample: floor(log2(Depth)), clamped.
size_t depthBucket(size_t Depth, size_t Buckets) {
  size_t B = 0;
  while (Depth > 1 && B + 1 < Buckets) {
    Depth >>= 1;
    ++B;
  }
  return B;
}

/// Log-linear latency bucket: exact below 4µs, then four sub-buckets per
/// octave (resolution ±12.5%) — 256 buckets span past centuries, so the
/// clamp is theoretical.
size_t latencyBucket(uint64_t Us) {
  if (Us < 4)
    return static_cast<size_t>(Us);
  size_t E = 63 - static_cast<size_t>(__builtin_clzll(Us));
  size_t Sub = static_cast<size_t>((Us >> (E - 2)) & 3);
  size_t Idx = (E - 1) * 4 + Sub;
  return Idx < 256 ? Idx : 255;
}

/// Midpoint of a latency bucket's range, the quantile estimate.
double latencyBucketMidUs(size_t Idx) {
  if (Idx < 4)
    return static_cast<double>(Idx);
  size_t E = Idx / 4 + 1;
  size_t Sub = Idx % 4;
  double Lower = static_cast<double>((4ull + Sub) << (E - 2));
  double Width = static_cast<double>(1ull << (E - 2));
  return Lower + Width / 2.0;
}

} // namespace

Server::Server(ServerOptions Options)
    : Opts(std::move(Options)),
      Sched(Scheduler::create(Opts.Scheduling, Opts.QueueCapacity,
                              Opts.Policy)),
      CSubmitted(statsCounterCell("Serve.Submitted")),
      CCompleted(statsCounterCell("Serve.Completed")),
      CRejected(statsCounterCell("Serve.Rejected")),
      CExpired(statsCounterCell("Serve.Expired")),
      CRetries(statsCounterCell("Serve.SubmitRetries")),
      CBatchedRuns(statsCounterCell("Serve.BatchedRuns")),
      CDepthMax(statsCounterCell("Serve.QueueDepthMax")) {
  for (auto &Bucket : DepthHist)
    Bucket.store(0, std::memory_order_relaxed);
  for (auto &Bucket : LatencyHist)
    Bucket.store(0, std::memory_order_relaxed);
  size_t ShardCount = std::max<size_t>(Opts.Shards, 1);
  Shards.reserve(ShardCount);
  for (size_t I = 0; I < ShardCount; ++I)
    Shards.push_back(std::make_unique<Engine>(Opts.Engine));

  int Workers =
      Opts.Workers > 0 ? Opts.Workers : ThreadPool::defaultThreadCount();
  // The pool's lanes become queue drainers for the server's lifetime: the
  // dispatcher parks inside one fork-join run() whose W tasks are the
  // worker loops, and returns when close() lets every lane drain out.
  // Reusing ThreadPool keeps the nesting rule: a kernel executed by a
  // lane runs its parallel-marked loops serially (bit-identical by the
  // ExecPlan contract); concurrency comes from serving W requests at
  // once instead.
  Pool = std::make_unique<ThreadPool>(Workers);
  Dispatcher = std::thread(
      [this, Workers] { Pool->run(Workers, [this](int) { workerLane(); }); });
}

Server::~Server() {
  Sched->close();
  if (Dispatcher.joinable())
    Dispatcher.join();
  // All lanes have exited: every admitted request was executed, shed, or
  // failed and every future fulfilled. ~ThreadPool joins the parked
  // workers.
}

Engine &Server::shardFor(const Program &Prog) {
  return *Shards[Engine::routingKey(Prog) % Shards.size()];
}

Kernel Server::compile(const Program &Prog) {
  return shardFor(Prog).compile(Prog);
}

Kernel Server::optimize(const Program &Prog, const TuneOptions &Options) {
  return shardFor(Prog).optimize(Prog, Options);
}

std::future<RunStatus> Server::submit(const Kernel &K, BoundArgs Args,
                                      const SubmitOptions &Options) {
  CSubmitted.fetch_add(1, std::memory_order_relaxed);
  Request R;
  R.K = K;
  R.Args = std::move(Args);
  R.Prio = Options.Prio;
  R.EnqueuedAt = serveNow();
  R.Deadline = Options.Deadline;
  if (R.Deadline == noDeadline() && Options.Timeout.count() > 0)
    R.Deadline = R.EnqueuedAt + Options.Timeout;
  std::future<RunStatus> Result = R.Done.get_future();

  // Fail fast on arguments that could never execute; the worker-side
  // stale-kernel check still guards requests that race a rebind.
  if (!R.Args.ok()) {
    R.Done.set_value(invalidBoundArgsStatus(R.Args));
    CCompleted.fetch_add(1, std::memory_order_relaxed);
    return Result;
  }

  // Count admission before the push: a worker may complete the request
  // before push() even returns, and drain()'s Finished must never
  // overtake Admitted.
  Admitted.fetch_add(1);
  size_t DepthAfter = 0;
  std::chrono::microseconds Backoff = Options.Backoff;
  Scheduler::PushResult Pushed;
  for (int Attempt = 0;; ++Attempt) {
    // Fault site "serve.queue.push": a firing Trigger makes this push act
    // as if the queue were full, exercising the Overloaded/retry paths
    // without needing a real capacity storm.
    Pushed = DAISY_FAILPOINT("serve.queue.push")
                 ? Scheduler::PushResult::Overloaded
                 : Sched->push(R, &DepthAfter);
    if (Pushed == Scheduler::PushResult::Ok) {
      maxStatsCounter(CDepthMax, static_cast<int64_t>(DepthAfter));
      DepthHist[depthBucket(DepthAfter, DepthHist.size())].fetch_add(
          1, std::memory_order_relaxed);
      return Result;
    }
    if (Pushed != Scheduler::PushResult::Overloaded ||
        Attempt >= Options.MaxRetries)
      break;
    // A deadline can lapse during backoff; classify that as Expired, not
    // Overloaded — the caller's deadline budget, not the queue, decided.
    if (R.Deadline != noDeadline() && serveNow() >= R.Deadline) {
      Pushed = Scheduler::PushResult::Expired;
      break;
    }
    CRetries.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::sleep_for(Backoff);
    Backoff = std::min(Backoff * 2, std::chrono::microseconds(100000));
  }

  {
    // The rollback can complete a drain, so it synchronizes like
    // Finished does.
    std::lock_guard<std::mutex> Lock(DrainMutex);
    Admitted.fetch_sub(1);
  }
  DrainCV.notify_all();
  RunStatus Failed;
  switch (Pushed) {
  case Scheduler::PushResult::Expired:
    CExpired.fetch_add(1, std::memory_order_relaxed);
    Failed = RunStatus::expired();
    break;
  case Scheduler::PushResult::ShutDown:
    CRejected.fetch_add(1, std::memory_order_relaxed);
    Failed = RunStatus::shutDown();
    break;
  default:
    CRejected.fetch_add(1, std::memory_order_relaxed);
    Failed = RunStatus::overloaded();
    break;
  }
  R.Done.set_value(std::move(Failed));
  return Result;
}

std::future<RunStatus> Server::submit(const Kernel &K, const ArgBinding &Args,
                                      const SubmitOptions &Options) {
  return submit(K, K.bind(Args), Options);
}

void Server::workerLane() {
  std::vector<Request> Batch;
  std::vector<Request> Expired;
  std::vector<RunStatus> Statuses;
  std::vector<size_t> Grouped;
  std::vector<const BoundArgs *> GroupArgs;
  std::vector<RunStatus> GroupStatuses;
  while (Sched->popBatch(Batch, Expired, std::max<size_t>(Opts.MaxBatch, 1))) {
    // Fault site "serve.worker": an armed Delay stalls this lane between
    // pop and dispatch — the window in which deadlines lapse and other
    // lanes must pick up the slack.
    (void)DAISY_FAILPOINT("serve.worker");

    // Shed work first: the futures are already lost causes and cheap to
    // fail, and doing it before the batch keeps the latency of surviving
    // requests honest.
    if (!Expired.empty()) {
      for (Request &E : Expired)
        E.Done.set_value(RunStatus::expired());
      CExpired.fetch_add(static_cast<int64_t>(Expired.size()),
                         std::memory_order_relaxed);
      finishMany(Expired.size());
    }
    size_t B = Batch.size();
    if (B == 0)
      continue;
    if (B > 1)
      CBatchedRuns.fetch_add(static_cast<int64_t>(B),
                             std::memory_order_relaxed);

    // The batch shares one BoundArgs kernel token (popBatch coalesces by
    // it). Requests whose submitted kernel really owns those arguments —
    // the common case, all of them — execute as one coalesced dispatch
    // on a single pooled context (Kernel::runBatch); a request whose
    // kernel does not match its arguments is executed alone so it earns
    // its stale diagnostic without disturbing the batch.
    Statuses.assign(B, RunStatus());
    Grouped.clear();
    GroupArgs.clear();
    for (size_t I = 0; I < B; ++I) {
      if (Batch[I].K.token() == Batch[I].Args.kernelToken()) {
        Grouped.push_back(I);
        GroupArgs.push_back(&Batch[I].Args);
      } else {
        Statuses[I] = Batch[I].K.run(Batch[I].Args);
      }
    }
    if (!Grouped.empty()) {
      GroupStatuses.assign(Grouped.size(), RunStatus());
      Batch[Grouped.front()].K.runBatch(GroupArgs.data(),
                                        GroupStatuses.data(),
                                        Grouped.size());
      for (size_t J = 0; J < Grouped.size(); ++J)
        Statuses[Grouped[J]] = std::move(GroupStatuses[J]);
    }
    TimePoint Now = serveNow();
    for (size_t I = 0; I < B; ++I) {
      recordLatency(Batch[I].EnqueuedAt, Now);
      Batch[I].Done.set_value(std::move(Statuses[I]));
    }
    CCompleted.fetch_add(static_cast<int64_t>(B), std::memory_order_relaxed);
    finishMany(B);
  }
}

void Server::finishMany(uint64_t N) {
  {
    std::lock_guard<std::mutex> Lock(DrainMutex);
    Finished += N;
  }
  DrainCV.notify_all();
}

void Server::drain() {
  std::unique_lock<std::mutex> Lock(DrainMutex);
  DrainCV.wait(Lock, [&] { return Finished == Admitted.load(); });
}

void Server::recordLatency(TimePoint EnqueuedAt, TimePoint Now) {
  auto Us = std::chrono::duration_cast<std::chrono::microseconds>(
                Now - EnqueuedAt)
                .count();
  if (Us < 0)
    Us = 0;
  LatencyHist[latencyBucket(static_cast<uint64_t>(Us))].fetch_add(
      1, std::memory_order_relaxed);
}

double Server::latencyQuantileUs(double Q) const {
  uint64_t Total = 0;
  std::array<uint64_t, 256> Counts;
  for (size_t I = 0; I < LatencyHist.size(); ++I) {
    Counts[I] = LatencyHist[I].load(std::memory_order_relaxed);
    Total += Counts[I];
  }
  if (Total == 0)
    return 0.0;
  Q = std::min(std::max(Q, 0.0), 1.0);
  uint64_t Rank = static_cast<uint64_t>(Q * static_cast<double>(Total - 1));
  uint64_t Seen = 0;
  for (size_t I = 0; I < Counts.size(); ++I) {
    Seen += Counts[I];
    if (Seen > Rank)
      return latencyBucketMidUs(I);
  }
  return latencyBucketMidUs(Counts.size() - 1);
}

uint64_t Server::latencyCount() const {
  uint64_t Total = 0;
  for (const auto &Bucket : LatencyHist)
    Total += Bucket.load(std::memory_order_relaxed);
  return Total;
}

std::vector<uint64_t> Server::queueDepthHistogram() const {
  std::vector<uint64_t> Result(DepthHist.size());
  for (size_t I = 0; I < DepthHist.size(); ++I)
    Result[I] = DepthHist[I].load(std::memory_order_relaxed);
  return Result;
}
