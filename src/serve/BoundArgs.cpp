//===- serve/BoundArgs.cpp ------------------------------------------------==//
//
// Part of the daisy project. MIT license.
//
// Defines the two Kernel members that produce/consume BoundArgs. They are
// declared in api/Kernel.h (the natural call-site surface) but defined
// here so the api layer never includes serve headers; this file sees both
// sides through the library-private api/KernelImpl.h.
//
//===----------------------------------------------------------------------===//

#include "serve/BoundArgs.h"

#include "api/KernelImpl.h"

#include <cassert>
#include <utility>

using namespace daisy;

BoundArgs Kernel::bind(const ArgBinding &Args) const {
  assert(Impl && "empty kernel handle");
  BoundArgs Result;
  std::string Error = resolveBinding(Impl->Prog, Args, Result.Slots);
  if (!Error.empty()) {
    Result.Slots.clear();
    Result.Error = std::move(Error);
    return Result;
  }
  Result.Bound = Impl;
  return Result;
}

namespace {

RunStatus staleStatus() {
  return {"stale BoundArgs: bound against a different kernel (slot "
          "tables do not transfer; re-bind against this kernel)"};
}

} // namespace

RunStatus Kernel::run(const BoundArgs &Args) const {
  assert(Impl && "empty kernel handle");
  if (!Args.ok())
    return invalidBoundArgsStatus(Args);
  if (Args.Bound.get() != Impl.get())
    return staleStatus();
  if (Impl->Exhausted)
    return RunStatus::resourceExhausted();
  // The guarded path owns the "kernel.run" fault site (an armed Delay
  // makes this kernel slow, a Trigger injects a run fault) and the
  // circuit-breaker quarantine of Engine-compiled kernels.
  return runGuardedSlots(*Impl, Args.Slots.data());
}

namespace {

/// The shared body of both runBatch forms: \p Count independent guarded
/// runs on one warm context.
void runBatchOn(const KernelImpl &Impl, const BoundArgs *const *Args,
                RunStatus *Statuses, size_t Count,
                KernelImpl::RunContext &Ctx) {
  for (size_t I = 0; I < Count; ++I) {
    const BoundArgs &A = *Args[I];
    if (!A.ok()) {
      Statuses[I] = invalidBoundArgsStatus(A);
      continue;
    }
    if (A.kernelToken() != &Impl) {
      Statuses[I] = staleStatus();
      continue;
    }
    if (Impl.Exhausted) {
      Statuses[I] = RunStatus::resourceExhausted();
      continue;
    }
    // Same guarded path as single runs: the "kernel.run" fault site and
    // the breaker fire per request, not per dispatch, so a batch of a
    // slow or poisoned kernel behaves like its requests submitted alone.
    Statuses[I] = runGuardedSlotsOn(Impl, A.slots().data(), Ctx);
  }
}

} // namespace

void Kernel::runBatch(const BoundArgs *const *Args, RunStatus *Statuses,
                      size_t Count) const {
  assert(Impl && "empty kernel handle");
  // One pooled context serves the whole batch: same-kernel requests are
  // the common case in a serving micro-batch, so the register file, tape
  // stack, slot table, and transient scratch stay warm from request to
  // request (transients are still re-zeroed per request — semantics are
  // exactly Count independent run() calls).
  PooledContext Ctx(*Impl);
  runBatchOn(*Impl, Args, Statuses, Count, *Ctx);
}

void RunContextLease::reset() {
  if (Owner && Ctx)
    Owner->release(std::unique_ptr<KernelImpl::RunContext>(
        static_cast<KernelImpl::RunContext *>(Ctx)));
  Owner.reset();
  Ctx = nullptr;
}

void Kernel::runBatch(const BoundArgs *const *Args, RunStatus *Statuses,
                      size_t Count, RunContextLease &Lease) const {
  assert(Impl && "empty kernel handle");
  // Lane affinity: keep the borrowed context across dispatches while the
  // lane stays on one kernel; switch kernels by returning it to its
  // owner's pool and borrowing from the new one.
  if (Lease.Owner.get() != Impl.get()) {
    Lease.reset();
    Lease.Owner = Impl;
    Lease.Ctx = Impl->acquire().release();
  }
  runBatchOn(*Impl, Args, Statuses, Count,
             *static_cast<KernelImpl::RunContext *>(Lease.Ctx));
}
