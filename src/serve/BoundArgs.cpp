//===- serve/BoundArgs.cpp ------------------------------------------------==//
//
// Part of the daisy project. MIT license.
//
// Defines the two Kernel members that produce/consume BoundArgs. They are
// declared in api/Kernel.h (the natural call-site surface) but defined
// here so the api layer never includes serve headers; this file sees both
// sides through the library-private api/KernelImpl.h.
//
//===----------------------------------------------------------------------===//

#include "serve/BoundArgs.h"

#include "api/KernelImpl.h"

#include <cassert>
#include <utility>

using namespace daisy;

BoundArgs Kernel::bind(const ArgBinding &Args) const {
  assert(Impl && "empty kernel handle");
  BoundArgs Result;
  std::string Error = resolveBinding(Impl->Prog, Args, Result.Slots);
  if (!Error.empty()) {
    Result.Slots.clear();
    Result.Error = std::move(Error);
    return Result;
  }
  Result.Bound = Impl;
  return Result;
}

namespace {

RunStatus staleStatus() {
  return {"stale BoundArgs: bound against a different kernel (slot "
          "tables do not transfer; re-bind against this kernel)"};
}

} // namespace

RunStatus Kernel::run(const BoundArgs &Args) const {
  assert(Impl && "empty kernel handle");
  if (!Args.ok())
    return invalidBoundArgsStatus(Args);
  if (Args.Bound.get() != Impl.get())
    return staleStatus();
  if (Impl->Exhausted)
    return RunStatus::resourceExhausted();
  // The guarded path owns the "kernel.run" fault site (an armed Delay
  // makes this kernel slow, a Trigger injects a run fault) and the
  // circuit-breaker quarantine of Engine-compiled kernels.
  return runGuardedSlots(*Impl, Args.Slots.data());
}

void Kernel::runBatch(const BoundArgs *const *Args, RunStatus *Statuses,
                      size_t Count) const {
  assert(Impl && "empty kernel handle");
  // One pooled context serves the whole batch: same-kernel requests are
  // the common case in a serving micro-batch, so the register file, tape
  // stack, slot table, and transient scratch stay warm from request to
  // request (transients are still re-zeroed per request — semantics are
  // exactly Count independent run() calls).
  PooledContext Ctx(*Impl);
  for (size_t I = 0; I < Count; ++I) {
    const BoundArgs &A = *Args[I];
    if (!A.ok()) {
      Statuses[I] = invalidBoundArgsStatus(A);
      continue;
    }
    if (A.Bound.get() != Impl.get()) {
      Statuses[I] = staleStatus();
      continue;
    }
    if (Impl->Exhausted) {
      Statuses[I] = RunStatus::resourceExhausted();
      continue;
    }
    // Same guarded path as single runs: the "kernel.run" fault site and
    // the breaker fire per request, not per dispatch, so a batch of a
    // slow or poisoned kernel behaves like its requests submitted alone.
    Statuses[I] = runGuardedSlotsOn(*Impl, A.Slots.data(), *Ctx);
  }
}
