//===- serve/Server.h - Asynchronous kernel-serving runtime ------*- C++ -*-=//
//
// Part of the daisy project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The serving layer on top of the api/ facade: the object a
/// daisy-embedding service creates once to serve compiled kernels to many
/// concurrent clients.
///
/// A Server owns
///
/// - one or more Engine shards: programs are routed to a shard by
///   Engine::routingKey (marks-aware structural hash + data digest), so
///   each shard's plan cache and transfer-tuning database see a stable
///   partition of the kernel population instead of contending on one
///   global instance;
/// - a bounded MPMC request queue (serve/RequestQueue.h) with an explicit
///   backpressure policy — Block the submitter or Reject with
///   RunStatus::Overloaded — so overload is a decision, not an accident;
/// - a worker pool (one dedicated exec/ThreadPool instance driven by a
///   dispatcher thread) that drains requests into pooled per-kernel
///   ExecContexts; per-kernel micro-batching coalesces same-kernel
///   requests into one dispatch, amortizing the queue round-trip and
///   keeping one warm context stretch per batch.
///
/// Server::submit(kernel, boundArgs) returns a std::future<RunStatus>.
/// The hot path is string-compare-free: arguments are prepared once with
/// Kernel::bind and the workers execute on resolved slot tables. Results
/// are bit-identical to synchronous Kernel::run at every shard, worker,
/// and batch configuration — workers execute on the pool, so
/// parallel-marked loops inside a kernel degrade to serial per the
/// ThreadPool nesting rule (bit-identical by the ExecPlan contract) and
/// request-level parallelism takes their place.
///
/// drain() blocks until every admitted request has completed; the
/// destructor closes admission, drains, and joins — every future a submit
/// ever returned is completed or failed, never leaked.
///
/// Counters (support/Statistics): Serve.Submitted, Serve.Completed,
/// Serve.Rejected, Serve.BatchedRuns, Serve.QueueDepthMax. Invariant
/// after drain(): Submitted == Completed + Rejected.
///
//===----------------------------------------------------------------------===//

#ifndef DAISY_SERVE_SERVER_H
#define DAISY_SERVE_SERVER_H

#include "api/Engine.h"
#include "serve/BoundArgs.h"
#include "serve/RequestQueue.h"

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace daisy {

class ThreadPool;

namespace serve {

/// Construction-time configuration of a Server.
struct ServerOptions {
  /// Number of Engine shards kernels are routed over. Each shard has its
  /// own plan cache and (unless EngineOptions::Database is set, which
  /// all shards then share) its own tuning database.
  size_t Shards = 1;
  /// Worker lanes draining the queue; 0 resolves to
  /// ThreadPool::defaultThreadCount() (DAISY_THREADS or the hardware
  /// concurrency).
  int Workers = 0;
  /// Bound of the request queue; admission beyond it triggers Policy.
  size_t QueueCapacity = 1024;
  /// What submit does when the queue is full.
  BackpressurePolicy Policy = BackpressurePolicy::Block;
  /// Largest same-kernel micro-batch one worker dispatch coalesces;
  /// 1 disables micro-batching.
  size_t MaxBatch = 16;
  /// Configuration every Engine shard is constructed with.
  EngineOptions Engine;
};

/// The serving runtime. Thread-safe: submit/compile/drain may be called
/// from any number of threads. Destroying the server while a submit call
/// is still executing is the usual object-lifetime race and remains the
/// caller's to avoid; futures obtained before destruction stay valid.
class Server {
public:
  explicit Server(ServerOptions Options = {});
  ~Server();
  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// Compiles \p Prog through the shard owning its routing key (plan
  /// caches stay shard-local).
  Kernel compile(const Program &Prog);

  /// Engine::optimize through the owning shard (shard-local database).
  Kernel optimize(const Program &Prog, const TuneOptions &Options = {});

  /// The shard \p Prog routes to.
  Engine &shardFor(const Program &Prog);
  Engine &shard(size_t I) { return *Shards[I]; }
  size_t shardCount() const { return Shards.size(); }

  /// Enqueues one run of \p K on prepared arguments and returns the
  /// future completed by a worker. Non-ok or mismatched \p Args fail the
  /// future with the diagnostic instead of executing; a full queue
  /// blocks or rejects per the backpressure policy.
  std::future<RunStatus> submit(const Kernel &K, BoundArgs Args);

  /// Convenience: validates \p Args against \p K (the one string-compare
  /// pass) and submits the resulting BoundArgs.
  std::future<RunStatus> submit(const Kernel &K, const ArgBinding &Args);

  /// Blocks until every request admitted so far (and any admitted while
  /// draining) has completed. The server keeps serving afterwards.
  void drain();

  /// Requests admitted but not yet picked up by a worker.
  size_t queueDepth() const { return Queue.depth(); }

  /// High-water mark of the queue depth since construction.
  size_t queueDepthMax() const { return Queue.maxDepthSeen(); }

  /// Log2-bucketed histogram of the queue depth sampled after every
  /// admitted request: bucket B counts samples with depth in
  /// [2^B, 2^(B+1)).
  std::vector<uint64_t> queueDepthHistogram() const;

  const ServerOptions &options() const { return Opts; }

private:
  void workerLane();
  void finishMany(uint64_t N);

  ServerOptions Opts;
  std::vector<std::unique_ptr<Engine>> Shards;
  RequestQueue Queue;

  /// Pre-resolved Serve.* counter cells (support/Statistics): the hot
  /// path increments relaxed atomics instead of paying a name lookup
  /// under the registry mutex per request.
  std::atomic<int64_t> &CSubmitted, &CCompleted, &CRejected, &CBatchedRuns,
      &CDepthMax;

  /// Depth-after-push samples, log2 buckets (relaxed: observability).
  std::array<std::atomic<uint64_t>, 16> DepthHist;

  /// Admitted vs finished request counts backing drain(). Admitted is
  /// incremented lock-free on the submit path (an increment can never
  /// satisfy a drain waiter, so no notification is needed); Finished
  /// advances under DrainMutex so waiters cannot miss the final
  /// transition, batched once per worker dispatch. The rejected-submit
  /// rollback decrement also notifies under the mutex.
  std::mutex DrainMutex;
  std::condition_variable DrainCV;
  std::atomic<uint64_t> Admitted{0};
  uint64_t Finished = 0;

  /// The worker pool and the dispatcher thread whose ThreadPool::run
  /// call turns the pool's lanes into queue drainers. Last members, so
  /// they stop before anything they use is destroyed.
  std::unique_ptr<ThreadPool> Pool;
  std::thread Dispatcher;
};

} // namespace serve
} // namespace daisy

#endif // DAISY_SERVE_SERVER_H
