//===- serve/Server.h - Asynchronous kernel-serving runtime ------*- C++ -*-=//
//
// Part of the daisy project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The serving layer on top of the api/ facade: the object a
/// daisy-embedding service creates once to serve compiled kernels to many
/// concurrent clients.
///
/// A Server owns
///
/// - one or more Engine shards: programs are routed to a shard by
///   Engine::routingKey (marks-aware structural hash + data digest), so
///   each shard's plan cache and transfer-tuning database see a stable
///   partition of the kernel population instead of contending on one
///   global instance;
/// - a pluggable, bounded scheduler (serve/Scheduler.h) chosen by
///   ServerOptions::Scheduling — FIFO (the default), priority lanes, or
///   earliest-deadline-first — with an explicit backpressure policy, so
///   overload is a decision, not an accident;
/// - a worker pool (one dedicated exec/ThreadPool instance driven by a
///   dispatcher thread) that drains requests into pooled per-kernel
///   ExecContexts; per-kernel micro-batching coalesces same-kernel
///   requests into one dispatch, amortizing the queue round-trip and
///   keeping one warm context stretch per batch.
///
/// Server::submit(kernel, boundArgs, submitOptions) returns a
/// std::future<RunStatus>. SubmitOptions adds the robustness surface:
/// a Priority lane, an absolute Deadline (or relative Timeout), and
/// retry-with-backoff for transient Overloaded rejections. Work whose
/// deadline passes is *never* dispatched — it is shed at admission or at
/// pop time and its future completes immediately with RunStatus whose
/// Why == RunStatus::Expired.
///
/// The hot path is string-compare-free: arguments are prepared once with
/// Kernel::bind and the workers execute on resolved slot tables. Results
/// are bit-identical to synchronous Kernel::run at every shard, worker,
/// scheduler, and batch configuration — workers execute on the pool, so
/// parallel-marked loops inside a kernel degrade to serial per the
/// ThreadPool nesting rule (bit-identical by the ExecPlan contract) and
/// request-level parallelism takes their place.
///
/// drain() blocks until every admitted request has completed; the
/// destructor closes admission, drains, and joins — every future a submit
/// ever returned is completed or failed, never leaked.
///
/// Counters (support/Statistics): Serve.Submitted, Serve.Completed,
/// Serve.Rejected, Serve.Expired, Serve.SubmitRetries, Serve.BatchedRuns,
/// Serve.QueueDepthMax. Invariant after drain():
/// Submitted == Completed + Rejected + Expired.
///
//===----------------------------------------------------------------------===//

#ifndef DAISY_SERVE_SERVER_H
#define DAISY_SERVE_SERVER_H

#include "api/Engine.h"
#include "serve/BoundArgs.h"
#include "serve/Scheduler.h"

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace daisy {

class ThreadPool;

namespace serve {

/// Construction-time configuration of a Server.
struct ServerOptions {
  /// Number of Engine shards kernels are routed over. Each shard has its
  /// own plan cache and (unless EngineOptions::Database is set, which
  /// all shards then share) its own tuning database.
  size_t Shards = 1;
  /// Worker lanes draining the queue; 0 resolves to
  /// ThreadPool::defaultThreadCount() (DAISY_THREADS or the hardware
  /// concurrency).
  int Workers = 0;
  /// Bound of the request queue. Admission beyond it applies Policy:
  /// Block parks the submitting thread on the scheduler's not-full
  /// waiter list until a worker frees a slot (a blocked submitter whose
  /// request carries a Deadline gives up when it passes and the future
  /// completes as Expired without ever enqueuing); Reject fails the push
  /// immediately with RunStatus::Overloaded — which SubmitOptions
  /// retry-with-backoff can absorb. A request whose deadline has already
  /// passed at submit is shed at admission under either policy.
  size_t QueueCapacity = 1024;
  /// What submit does when the queue is full.
  BackpressurePolicy Policy = BackpressurePolicy::Block;
  /// Which request-ordering policy serves the queue (serve/Scheduler.h).
  SchedulerPolicy Scheduling = SchedulerPolicy::Fifo;
  /// Largest same-kernel micro-batch one worker dispatch coalesces;
  /// 1 disables micro-batching.
  size_t MaxBatch = 16;
  /// Configuration every Engine shard is constructed with.
  EngineOptions Engine;
};

/// Per-submit scheduling and resilience knobs. Default-constructed it
/// reproduces the PR 5 behavior exactly: Normal priority, no deadline,
/// no retries.
struct SubmitOptions {
  /// Lane under SchedulerPolicy::PriorityLane; ignored by Fifo, a
  /// tie-break-free hint under EDF (deadlines order there).
  Priority Prio = Priority::Normal;
  /// Absolute deadline; work not *started* by this point is shed and its
  /// future completes with Why == RunStatus::Expired.
  TimePoint Deadline = noDeadline();
  /// Relative convenience: when non-zero and Deadline is unset, the
  /// deadline becomes now + Timeout at submit entry.
  std::chrono::microseconds Timeout{0};
  /// Transient-Overloaded retries (Reject policy): submit re-pushes up
  /// to this many extra times before failing the future.
  int MaxRetries = 0;
  /// Sleep before the first retry; doubles per retry, capped at 100ms.
  std::chrono::microseconds Backoff{200};
};

/// The serving runtime. Thread-safe: submit/compile/drain may be called
/// from any number of threads. Destroying the server while a submit call
/// is still executing is the usual object-lifetime race and remains the
/// caller's to avoid; futures obtained before destruction stay valid.
class Server {
public:
  explicit Server(ServerOptions Options = {});
  ~Server();
  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// Compiles \p Prog through the shard owning its routing key (plan
  /// caches stay shard-local).
  Kernel compile(const Program &Prog);

  /// Engine::optimize through the owning shard (shard-local database).
  Kernel optimize(const Program &Prog, const TuneOptions &Options = {});

  /// The shard \p Prog routes to.
  Engine &shardFor(const Program &Prog);
  Engine &shard(size_t I) { return *Shards[I]; }
  size_t shardCount() const { return Shards.size(); }

  /// Enqueues one run of \p K on prepared arguments and returns the
  /// future completed by a worker. Non-ok or mismatched \p Args fail the
  /// future with the diagnostic instead of executing; a full queue
  /// blocks, rejects, or retries per the backpressure policy and
  /// \p Options; expired work completes as Expired without running.
  std::future<RunStatus> submit(const Kernel &K, BoundArgs Args,
                                const SubmitOptions &Options = {});

  /// Convenience: validates \p Args against \p K (the one string-compare
  /// pass) and submits the resulting BoundArgs.
  std::future<RunStatus> submit(const Kernel &K, const ArgBinding &Args,
                                const SubmitOptions &Options = {});

  /// Blocks until every request admitted so far (and any admitted while
  /// draining) has completed. The server keeps serving afterwards.
  void drain();

  /// Requests admitted but not yet picked up by a worker.
  size_t queueDepth() const { return Sched->depth(); }

  /// High-water mark of the queue depth since construction.
  size_t queueDepthMax() const { return Sched->maxDepthSeen(); }

  /// Log2-bucketed histogram of the queue depth sampled after every
  /// admitted request: bucket B counts samples with depth in
  /// [2^B, 2^(B+1)).
  std::vector<uint64_t> queueDepthHistogram() const;

  /// Quantile (0 <= Q <= 1) of completed-request sojourn time in
  /// microseconds — submit entry to worker completion, measured
  /// server-side on a log-linear histogram (four sub-buckets per octave,
  /// so about ±12% resolution). Returns 0 when nothing completed yet.
  /// Expired and rejected requests are not latency samples.
  double latencyQuantileUs(double Q) const;

  /// Completed-request latency samples recorded so far.
  uint64_t latencyCount() const;

  const ServerOptions &options() const { return Opts; }

private:
  void workerLane();
  void finishMany(uint64_t N);
  void recordLatency(TimePoint EnqueuedAt, TimePoint Now);

  ServerOptions Opts;
  std::vector<std::unique_ptr<Engine>> Shards;
  std::unique_ptr<Scheduler> Sched;

  /// Pre-resolved Serve.* counter cells (support/Statistics): the hot
  /// path increments relaxed atomics instead of paying a name lookup
  /// under the registry mutex per request.
  std::atomic<int64_t> &CSubmitted, &CCompleted, &CRejected, &CExpired,
      &CRetries, &CBatchedRuns, &CDepthMax;

  /// Depth-after-push samples, log2 buckets (relaxed: observability).
  std::array<std::atomic<uint64_t>, 16> DepthHist;

  /// Sojourn-time samples, log-linear microsecond buckets (relaxed).
  std::array<std::atomic<uint64_t>, 256> LatencyHist;

  /// Admitted vs finished request counts backing drain(). Admitted is
  /// incremented lock-free on the submit path (an increment can never
  /// satisfy a drain waiter, so no notification is needed); Finished
  /// advances under DrainMutex so waiters cannot miss the final
  /// transition, batched once per worker dispatch. The rejected-submit
  /// rollback decrement also notifies under the mutex.
  std::mutex DrainMutex;
  std::condition_variable DrainCV;
  std::atomic<uint64_t> Admitted{0};
  uint64_t Finished = 0;

  /// The worker pool and the dispatcher thread whose ThreadPool::run
  /// call turns the pool's lanes into queue drainers. Last members, so
  /// they stop before anything they use is destroyed.
  std::unique_ptr<ThreadPool> Pool;
  std::thread Dispatcher;
};

} // namespace serve
} // namespace daisy

#endif // DAISY_SERVE_SERVER_H
