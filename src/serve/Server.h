//===- serve/Server.h - Asynchronous kernel-serving runtime ------*- C++ -*-=//
//
// Part of the daisy project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The serving layer on top of the api/ facade: the object a
/// daisy-embedding service creates once to serve compiled kernels to many
/// concurrent clients.
///
/// A Server owns
///
/// - one or more Engine shards: programs are routed to a shard by
///   Engine::routingKey (marks-aware structural hash + data digest), so
///   each shard's plan cache and transfer-tuning database see a stable
///   partition of the kernel population instead of contending on one
///   global instance;
/// - one or more pluggable, bounded queue shards (serve/Scheduler.h)
///   chosen by ServerOptions::Scheduling — FIFO (the default), priority
///   lanes, earliest-deadline-first, or deficit-weighted FairShare over
///   tenants — with an explicit backpressure policy and optional
///   per-tenant admission quotas, so overload is a decision, not an
///   accident, and one tenant's overload is *its own*;
/// - a worker pool (one dedicated exec/ThreadPool instance driven by a
///   dispatcher thread) that drains requests into pooled per-kernel
///   ExecContexts; per-kernel micro-batching coalesces same-kernel
///   requests into one dispatch, amortizing the queue round-trip and
///   keeping one warm context stretch per batch. With QueueShards > 1
///   each worker drains a home shard and steals batches from hot
///   siblings when its home runs empty; with a StallTimeout set, a
///   watchdog thread reclaims batches from stalled lanes and requeues
///   them so healthy lanes complete the work.
///
/// Server::submit(kernel, boundArgs, submitOptions) returns a
/// std::future<RunStatus>. SubmitOptions adds the robustness surface:
/// a Priority lane, an absolute Deadline (or relative Timeout), and
/// retry-with-backoff for transient Overloaded rejections. Work whose
/// deadline passes is *never* dispatched — it is shed at admission or at
/// pop time and its future completes immediately with RunStatus whose
/// Why == RunStatus::Expired.
///
/// The hot path is string-compare-free: arguments are prepared once with
/// Kernel::bind and the workers execute on resolved slot tables. Results
/// are bit-identical to synchronous Kernel::run at every shard, worker,
/// scheduler, and batch configuration — workers execute on the pool, so
/// parallel-marked loops inside a kernel degrade to serial per the
/// ThreadPool nesting rule (bit-identical by the ExecPlan contract) and
/// request-level parallelism takes their place.
///
/// drain() blocks until every admitted request has completed; the
/// destructor closes admission, drains, and joins — every future a submit
/// ever returned is completed or failed, never leaked.
///
/// Counters (support/Statistics): Serve.Submitted, Serve.Completed,
/// Serve.Rejected, Serve.Expired, Serve.SubmitRetries, Serve.BatchedRuns,
/// Serve.QueueDepthMax, Serve.StolenBatches, Serve.WorkerStalls,
/// Serve.DispatchStalls — plus the same four outcome counters per tenant
/// as Serve.Tenant<id>.{Submitted,Completed,Rejected,Expired}. Invariant
/// after drain(), globally and per tenant:
/// Submitted == Completed + Rejected + Expired.
///
/// Observability (obs/): every completed request decomposes its sojourn
/// into three stage histograms — queue wait (submit → worker claim),
/// batch wait (claim → kernel dispatch), run (dispatch → completion) —
/// and, when the flight recorder (obs/Trace.h) is on, emits one Chrome
/// "X" span per stage plus a whole-request span, reconstructed from the
/// request's stored timestamps after completion (no cross-thread B/E
/// pairing). metricsText()/metricsJson() expose the entire counter
/// registry and all four latency histograms as Prometheus text / JSON;
/// dumpTrace(path) writes the recorder ring as Chrome trace JSON.
///
//===----------------------------------------------------------------------===//

#ifndef DAISY_SERVE_SERVER_H
#define DAISY_SERVE_SERVER_H

#include "api/Engine.h"
#include "serve/BoundArgs.h"
#include "serve/Scheduler.h"
#include "support/Histogram.h"

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

namespace daisy {

class ThreadPool;

namespace serve {

/// Construction-time configuration of a Server.
struct ServerOptions {
  /// Number of Engine shards kernels are routed over. Each shard has its
  /// own plan cache and (unless EngineOptions::Database is set, which
  /// all shards then share) its own tuning database.
  size_t Shards = 1;
  /// Worker lanes draining the queue; 0 resolves to
  /// ThreadPool::defaultThreadCount() (DAISY_THREADS or the hardware
  /// concurrency).
  int Workers = 0;
  /// Bound of the request queue. Admission beyond it applies Policy:
  /// Block parks the submitting thread on the scheduler's not-full
  /// waiter list until a worker frees a slot (a blocked submitter whose
  /// request carries a Deadline gives up when it passes and the future
  /// completes as Expired without ever enqueuing); Reject fails the push
  /// immediately with RunStatus::Overloaded — which SubmitOptions
  /// retry-with-backoff can absorb. A request whose deadline has already
  /// passed at submit is shed at admission under either policy.
  size_t QueueCapacity = 1024;
  /// What submit does when the queue is full.
  BackpressurePolicy Policy = BackpressurePolicy::Block;
  /// Which request-ordering policy serves the queue (serve/Scheduler.h).
  SchedulerPolicy Scheduling = SchedulerPolicy::Fifo;
  /// Largest same-kernel micro-batch one worker dispatch coalesces;
  /// 1 disables micro-batching.
  size_t MaxBatch = 16;
  /// Independent queue shards (1 = the single shared queue, the classic
  /// configuration). Requests route to a shard by kernel identity, so
  /// same-kernel micro-batching stays intact; QueueCapacity (and any
  /// TenantQuota) is split evenly across shards. Each worker lane drains
  /// a home shard and, when it runs empty, steals whole batches from hot
  /// siblings ("Serve.StolenBatches") — a skewed kernel population keeps
  /// every lane busy instead of parking lanes behind cold shards.
  size_t QueueShards = 1;
  /// Per-tenant admission quota (0 = off): the most queued requests one
  /// tenant (SubmitOptions::Tenant) may hold per queue shard. A tenant
  /// at quota is treated like a full queue — Reject fails it with
  /// Overloaded, Block waits — even while other tenants still have
  /// headroom, so a flooding tenant sheds its *own* traffic.
  size_t TenantQuota = 0;
  /// Worker watchdog (0 = off): a lane that holds a popped batch this
  /// long without starting dispatch is declared stalled; the watchdog
  /// reclaims the batch ("Serve.WorkerStalls") and requeues it so
  /// healthy lanes complete it (drain-safe: a request the requeue cannot
  /// re-admit has its future completed as Expired/ShutDown, never
  /// leaked). A lane stalled *inside* a kernel dispatch cannot be
  /// reclaimed safely and is only counted ("Serve.DispatchStalls").
  std::chrono::microseconds StallTimeout{0};
  /// Admission brownout (0 disables): when the total queued depth
  /// reaches ceil(BrownoutHighWater * QueueCapacity), the server enters
  /// brownout — Low-priority submits are shed at admission with
  /// RunStatus::Overloaded ("Serve.BrownoutSheds") until the depth falls
  /// back to BrownoutLowWater * QueueCapacity. Shedding the optional
  /// work early keeps High/Normal latency honest through a distress
  /// episode instead of letting every lane degrade together. The
  /// "serve.brownout" fail point forces distress deterministically.
  double BrownoutHighWater = 0.0;
  /// Hysteresis: brownout clears at this fraction of QueueCapacity
  /// (clamped below BrownoutHighWater), so a depth oscillating around
  /// the high watermark does not flap the gate per request.
  double BrownoutLowWater = 0.5;
  /// Configuration every Engine shard is constructed with. When
  /// EngineOptions::DatabasePath is set and Shards > 1, shard I persists
  /// to "<DatabasePath>.shard<I>" — each shard's database is its own
  /// checkpoint lineage, matching the routing-key partition.
  EngineOptions Engine;
};

/// Structured health snapshot (Server::health): the operator's view of
/// queue pressure, self-protection state, and durable-state progress —
/// and the exact inputs of the admission brownout decision.
struct HealthSnapshot {
  /// One tenant's cumulative outcome counters
  /// (Serve.Tenant<id>.{Submitted,Completed,Rejected,Expired}).
  struct TenantRow {
    uint32_t Tenant = 0;
    int64_t Submitted = 0, Completed = 0, Rejected = 0, Expired = 0;
  };
  /// One engine shard's self-protection and durability view.
  struct ShardRow {
    size_t Quarantined = 0; ///< Routing keys with a non-closed breaker.
    uint64_t CheckpointGeneration = 0; ///< Newest written/recovered.
    size_t BudgetUsedBytes = 0;  ///< Engine-retained memory right now.
    size_t BudgetPeakBytes = 0;  ///< High-water mark.
    size_t BudgetLimitBytes = 0; ///< 0 = unlimited.
    /// Online tuner view (EngineOptions::OnlineTuning; zeros when off).
    bool TuningEnabled = false;
    size_t TuneTracked = 0;       ///< Kernels under measurement.
    size_t TuneProbesInFlight = 0;///< Candidates awaiting a decision.
    int64_t TuneSwaps = 0;        ///< Promoted (measured-gain) hot-swaps.
    int64_t TuneRollbacks = 0;    ///< Probes reverted on regression.
  };
  std::vector<size_t> QueueDepths; ///< Per queue shard, at snapshot time.
  size_t QueueDepth = 0;           ///< Sum of QueueDepths.
  size_t QueueCapacity = 0;        ///< Total configured capacity.
  bool Brownout = false;           ///< Admission currently shedding Low.
  int64_t Brownouts = 0;           ///< Distress episodes entered so far.
  int64_t BrownoutSheds = 0;       ///< Low requests shed at admission.
  int64_t WorkerStalls = 0;        ///< Batches reclaimed by the watchdog.
  int64_t DispatchStalls = 0;      ///< Stalls inside kernel dispatch.
  size_t Quarantined = 0;          ///< Sum of ShardRow::Quarantined.
  double P50Us = 0.0, P99Us = 0.0; ///< Rolling sojourn-time quantiles.
  int64_t Submitted = 0, Completed = 0, Rejected = 0, Expired = 0;
  std::vector<ShardRow> Shards;
  std::vector<TenantRow> Tenants; ///< Every tenant seen so far.
  /// The overall verdict: admission is not shedding and no kernel is
  /// quarantined. Stalls and budget pressure inform but do not fail the
  /// verdict — the server is still meeting its contract through them.
  bool healthy() const { return !Brownout && Quarantined == 0; }
};

/// Per-submit scheduling and resilience knobs. Default-constructed it
/// reproduces the PR 5 behavior exactly: Normal priority, no deadline,
/// no retries.
struct SubmitOptions {
  /// Lane under SchedulerPolicy::PriorityLane; ignored by Fifo, a
  /// tie-break-free hint under EDF (deadlines order there).
  Priority Prio = Priority::Normal;
  /// Absolute deadline; work not *started* by this point is shed and its
  /// future completes with Why == RunStatus::Expired.
  TimePoint Deadline = noDeadline();
  /// Relative convenience: when non-zero and Deadline is unset, the
  /// deadline becomes now + Timeout at submit entry.
  std::chrono::microseconds Timeout{0};
  /// Transient-Overloaded retries (Reject policy): submit re-pushes up
  /// to this many extra times before failing the future.
  int MaxRetries = 0;
  /// Base sleep before the first retry; doubles per retry, capped at
  /// 100ms. The actual sleep is equal-jittered — Backoff/2 plus a
  /// uniform draw up to Backoff/2 — so a cohort of rejected submitters
  /// does not re-arrive in lockstep and collide again.
  std::chrono::microseconds Backoff{200};
  /// Tenant identity: the key of FairShare scheduling, per-tenant
  /// quotas, and the Serve.Tenant<id>.* counters.
  uint32_t Tenant = 0;
  /// FairShare weight: consecutive batch turns this tenant earns per
  /// rotation (clamped to >= 1; the latest submitted weight wins).
  uint32_t Weight = 1;
};

/// The serving runtime. Thread-safe: submit/compile/drain may be called
/// from any number of threads. Destroying the server while a submit call
/// is still executing is the usual object-lifetime race and remains the
/// caller's to avoid; futures obtained before destruction stay valid.
class Server {
public:
  explicit Server(ServerOptions Options = {});
  ~Server();
  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// Compiles \p Prog through the shard owning its routing key (plan
  /// caches stay shard-local).
  Kernel compile(const Program &Prog);

  /// Engine::optimize through the owning shard (shard-local database).
  Kernel optimize(const Program &Prog, const TuneOptions &Options = {});

  /// The shard \p Prog routes to.
  Engine &shardFor(const Program &Prog);
  Engine &shard(size_t I) { return *Shards[I]; }
  size_t shardCount() const { return Shards.size(); }

  /// Enqueues one run of \p K on prepared arguments and returns the
  /// future completed by a worker. Non-ok or mismatched \p Args fail the
  /// future with the diagnostic instead of executing; a full queue
  /// blocks, rejects, or retries per the backpressure policy and
  /// \p Options; expired work completes as Expired without running.
  std::future<RunStatus> submit(const Kernel &K, BoundArgs Args,
                                const SubmitOptions &Options = {});

  /// Convenience: validates \p Args against \p K (the one string-compare
  /// pass) and submits the resulting BoundArgs.
  std::future<RunStatus> submit(const Kernel &K, const ArgBinding &Args,
                                const SubmitOptions &Options = {});

  /// Blocks until every request admitted so far (and any admitted while
  /// draining) has completed, then checkpoints every engine shard whose
  /// database changed (a quiescent point is the cheapest consistent one).
  /// The server keeps serving afterwards.
  void drain();

  /// A structured health snapshot: queue depths per shard, brownout and
  /// quarantine state, stall and budget telemetry, rolling latency
  /// quantiles, and per-tenant outcome counters. Also re-evaluates the
  /// brownout gate, so a server whose queues drained while no submits
  /// arrived leaves brownout on the next health() call.
  HealthSnapshot health();

  /// Requests admitted but not yet picked up by a worker (summed over
  /// queue shards).
  size_t queueDepth() const {
    size_t Depth = 0;
    for (const auto &Q : Queues)
      Depth += Q->depth();
    return Depth;
  }

  /// High-water mark of the queue depth since construction. With
  /// QueueShards > 1 this sums the per-shard high-water marks — an upper
  /// bound on the instantaneous total, exact for the default single
  /// shard.
  size_t queueDepthMax() const {
    size_t Max = 0;
    for (const auto &Q : Queues)
      Max += Q->maxDepthSeen();
    return Max;
  }

  /// Log2-bucketed histogram of the queue depth sampled after every
  /// admitted request: bucket B counts samples with depth in
  /// [2^B, 2^(B+1)).
  std::vector<uint64_t> queueDepthHistogram() const;

  /// Quantile (0 <= Q <= 1) of completed-request sojourn time in
  /// microseconds — submit entry to worker completion, measured
  /// server-side on a log-linear histogram (four sub-buckets per octave,
  /// so about ±12% resolution). Returns 0 when nothing completed yet.
  /// Expired and rejected requests are not latency samples.
  double latencyQuantileUs(double Q) const;

  /// Completed-request latency samples recorded so far.
  uint64_t latencyCount() const;

  /// Midpoint-weighted estimate of the sum of all end-to-end sojourns in
  /// microseconds (the cross-check target for the per-stage sums).
  double latencySumUs() const { return LatencyHist.approxSum(); }

  /// The three stages a completed request's sojourn decomposes into.
  /// QueueWait + BatchWait + Run sums (within bucketing resolution) to
  /// the end-to-end sojourn latencyQuantileUs measures.
  enum class Stage {
    QueueWait, ///< Submit entry → worker claims the request.
    BatchWait, ///< Claim → the kernel dispatch actually starts.
    Run,       ///< Dispatch start → completion (batch execution).
  };

  /// Quantile of one stage's duration in microseconds, on the same
  /// log-linear buckets as latencyQuantileUs; 0 before any completion.
  double stageQuantileUs(Stage S, double Q) const;

  /// Samples recorded into one stage histogram (== completions observed
  /// by that stage).
  uint64_t stageCount(Stage S) const;

  /// Midpoint-weighted sum of one stage's samples in microseconds — the
  /// cross-stage accounting check: sum over stages ≈ sum of sojourns.
  double stageSumUs(Stage S) const;

  /// The whole counter registry (every subsystem's Serve.*, Engine.*,
  /// Tune.*, ... counters) plus this server's four latency histograms,
  /// rendered as Prometheus text exposition format (obs/Metrics.h).
  std::string metricsText() const;

  /// The same snapshot as JSON (dotted metric names preserved).
  std::string metricsJson() const;

  /// Writes the process flight-recorder ring (obs/Trace.h) as Chrome
  /// trace JSON to \p Path; false if the file cannot be written.
  bool dumpTrace(const std::string &Path) const;

  const ServerOptions &options() const { return Opts; }

private:
  /// The four outcome cells of one tenant, resolved once per tenant and
  /// cached (references stay valid for the process lifetime).
  struct TenantCounters {
    std::atomic<int64_t> &Submitted, &Completed, &Rejected, &Expired;
  };

  /// One worker lane's claimed-batch slot, the watchdog's view of the
  /// lane. The lane publishes a popped batch here before the pop→
  /// dispatch window, reclaims it to dispatch, and marks the dispatch
  /// span; Epoch is the heartbeat — it advances at every publish,
  /// reclaim, and dispatch boundary, so a lane whose epoch stands still
  /// past StallTimeout is stalled.
  struct LaneState {
    std::mutex M;
    std::vector<Request> Claimed; ///< Non-empty: popped, not dispatching.
    TimePoint ClaimedAt{};
    std::atomic<uint64_t> Epoch{0};
    bool Dispatching = false;
    TimePoint DispatchStart{};
    bool DispatchStallCounted = false;
  };

  void workerLane(int Lane);
  void watchdogLoop();
  void dispatchBatch(std::vector<Request> &Batch, RunContextLease &Lease);
  void finishMany(uint64_t N);
  void recordLatency(TimePoint EnqueuedAt, TimePoint Now);
  TenantCounters &tenantCounters(uint32_t Tenant);
  size_t queueShardFor(const BoundArgs &Args) const;

  /// Evaluates (and updates) the brownout gate against the current queue
  /// depth; returns whether admission is currently shedding Low work.
  bool brownoutGate();

  ServerOptions Opts;
  std::vector<std::unique_ptr<Engine>> Shards;
  std::vector<std::unique_ptr<Scheduler>> Queues;

  /// Pre-resolved Serve.* counter cells (support/Statistics): the hot
  /// path increments relaxed atomics instead of paying a name lookup
  /// under the registry mutex per request.
  std::atomic<int64_t> &CSubmitted, &CCompleted, &CRejected, &CExpired,
      &CRetries, &CBatchedRuns, &CDepthMax, &CStolen, &CStalls,
      &CDispatchStalls, &CBrownouts, &CBrownoutSheds, &CAffinityHits;

  /// Brownout watermarks resolved to absolute depths at construction
  /// (0 = brownout disabled), and the gate's sticky state.
  size_t BrownoutHighDepth = 0;
  size_t BrownoutLowDepth = 0;
  std::atomic<bool> BrownoutActive{false};

  /// Lazily resolved Serve.Tenant<id>.* cells, keyed by tenant.
  std::mutex TenantMutex;
  std::unordered_map<uint32_t, TenantCounters> TenantStats;

  /// Depth-after-push samples, log2 buckets (support/Histogram.h).
  DepthHistogram DepthHist;

  /// Sojourn-time samples (submit → completion), log-linear microsecond
  /// buckets, plus the three per-stage decompositions of the same
  /// population (indexed by Stage via stageHist).
  LatencyHistogram LatencyHist;
  LatencyHistogram QueueWaitHist;
  LatencyHistogram BatchWaitHist;
  LatencyHistogram RunHist;

  const LatencyHistogram &stageHist(Stage S) const {
    return S == Stage::QueueWait ? QueueWaitHist
           : S == Stage::BatchWait ? BatchWaitHist
                                   : RunHist;
  }

  /// Pre-resolved flight-recorder name ids (obs/Trace.h): the dispatch
  /// path emits trace events with no interning lookup, mirroring the
  /// statsCounterCell pre-resolution above.
  uint16_t TnSubmit, TnRequest, TnQueueWait, TnBatchWait, TnRun;

  /// Admitted vs finished request counts backing drain(). Admitted is
  /// incremented lock-free on the submit path (an increment can never
  /// satisfy a drain waiter, so no notification is needed); Finished
  /// advances under DrainMutex so waiters cannot miss the final
  /// transition, batched once per worker dispatch. The rejected-submit
  /// rollback decrement also notifies under the mutex.
  std::mutex DrainMutex;
  std::condition_variable DrainCV;
  std::atomic<uint64_t> Admitted{0};
  uint64_t Finished = 0;

  /// Per-lane claimed-batch slots the watchdog polls; sized to the
  /// worker count at construction, never resized after.
  std::vector<std::unique_ptr<LaneState>> Lanes;
  std::atomic<bool> WatchdogStop{false};

  /// The worker pool, the dispatcher thread whose ThreadPool::run call
  /// turns the pool's lanes into queue drainers, and the watchdog. Last
  /// members, so they stop before anything they use is destroyed.
  std::unique_ptr<ThreadPool> Pool;
  std::thread Dispatcher;
  std::thread Watchdog;
};

} // namespace serve
} // namespace daisy

#endif // DAISY_SERVE_SERVER_H
