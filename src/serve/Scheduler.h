//===- serve/Scheduler.h - Pluggable request-scheduling policies -*- C++ -*-=//
//
// Part of the daisy project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The admission-controlled buffer between request producers
/// (Server::submit from any thread) and the worker pool draining it —
/// with the *ordering policy* pluggable at construction, in the style of
/// a runtime-chosen modular scheduler: one public interface, several
/// private implementations, selected by ServerOptions.
///
/// The Scheduler base class owns everything every policy shares — the
/// capacity bound, the backpressure decision, the mutex/condvar waiter
/// machinery with wake accounting, deadline bookkeeping, and the
/// admission sequence — and delegates only the storage decisions (where
/// a request waits, which request is served next) to virtual hooks
/// called under the lock. Three policies exist:
///
///   - Fifo (serve/RequestQueue.h): strict admission order; the original
///     bounded MPMC queue is this policy's implementation.
///   - PriorityLane: one FIFO lane per Priority level, served
///     highest-priority-first. Strict lanes can starve Low under
///     sustained High load — that is the policy's contract, not a bug;
///     latency-fair serving picks Fifo or EDF.
///   - EarliestDeadlineFirst: the queued request with the earliest
///     deadline is served next (no-deadline requests rank last, ties
///     break in admission order). Under overload this is the policy that
///     completes the most requests before their deadlines.
///   - FairShare: deficit-weighted round-robin over per-tenant deques.
///     Each turn the front tenant of the rotation earns Weight credits
///     and serves one batch per credit (FIFO within the tenant,
///     micro-batch coalescing confined to that tenant's deque — sweeping
///     another tenant's requests into a flooding tenant's batch would
///     undo the fairness the rotation buys); a tenant with no credit
///     left rotates to the back. One tenant's backlog therefore delays
///     another tenant's head-of-line request by at most one rotation,
///     not by the whole backlog.
///
/// Per-tenant admission quotas (Scheduler ctor / ServerOptions
/// TenantQuota) bound how much of the shared capacity one tenant may
/// occupy, under every policy: a tenant at its quota is rejected
/// (Reject) or waits (Block) even while the queue has room, so a
/// flooding tenant's overflow becomes *its own* Overloaded/Expired
/// statuses and never consumes the headroom other tenants' requests
/// need.
///
/// Deadlines are enforced in two places, and expired work is *never*
/// dispatched:
///
///   - at admission: push() returns PushResult::Expired for a request
///     whose deadline already passed (including a Block-policy submitter
///     whose deadline expires while waiting for space);
///   - at pop: popBatch() sweeps expired requests out of the queue into
///     the caller's Expired vector before selecting the batch; the
///     server completes their futures with RunStatus::Expired
///     immediately. The sweep is lazy — it runs when a worker pops, not
///     on a timer — which is exactly when it matters: an expired request
///     can only waste resources by being dispatched.
///
/// popBatch still implements per-kernel micro-batching: the policy picks
/// the head request, then coalesces up to MaxBatch-1 further requests
/// for the same kernel (matched by BoundArgs::kernelToken) without
/// disturbing the relative order of other kernels' requests.
///
/// close() stops admission (pushes fail with ShutDown) but lets poppers
/// drain every admitted request, so shutdown completes or fails every
/// future and leaks none.
///
//===----------------------------------------------------------------------===//

#ifndef DAISY_SERVE_SCHEDULER_H
#define DAISY_SERVE_SCHEDULER_H

#include "api/Kernel.h"
#include "serve/BoundArgs.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace daisy {
namespace serve {

/// What submit does when the queue is full.
enum class BackpressurePolicy {
  Block, ///< Wait for a worker to make space.
  Reject ///< Fail the request immediately with RunStatus::Overloaded.
};

/// Which request-ordering policy a Server's scheduler uses.
enum class SchedulerPolicy {
  Fifo,                  ///< Strict admission order (the classic queue).
  PriorityLane,          ///< One FIFO lane per Priority, highest first.
  EarliestDeadlineFirst, ///< Earliest deadline next; no-deadline last.
  FairShare              ///< Deficit-weighted round-robin over tenants.
};

/// Per-request urgency class. Values are lane indices: High drains first.
enum class Priority : uint8_t { High = 0, Normal = 1, Low = 2 };
constexpr size_t NumPriorityLanes = 3;

/// The serving clock. Deadlines are absolute points on it.
using ServeClock = std::chrono::steady_clock;
using TimePoint = ServeClock::time_point;

/// The "no deadline" sentinel: later than every real deadline.
constexpr TimePoint noDeadline() { return TimePoint::max(); }

inline TimePoint serveNow() { return ServeClock::now(); }

/// One queued unit of work: the kernel to run, its prepared arguments,
/// the promise backing the caller's future, and the scheduling fields
/// the policy orders by. Move-only (the promise).
struct Request {
  Kernel K;
  BoundArgs Args;
  std::promise<RunStatus> Done;
  Priority Prio = Priority::Normal;
  TimePoint Deadline = noDeadline();
  TimePoint EnqueuedAt{}; ///< Submit stamp; sojourn = completion - this.
  TimePoint ClaimedAt{};  ///< Worker pop stamp; queue wait = this -
                          ///< EnqueuedAt. Set by the claiming lane, not
                          ///< the scheduler (a requeued batch is
                          ///< re-stamped when re-claimed).
  uint64_t Seq = 0;       ///< Admission order, assigned by push().
  uint32_t Tenant = 0;    ///< Fair-share / quota identity (0 = default).
  uint32_t Weight = 1;    ///< FairShare credits per rotation turn (>= 1).
};

/// The pluggable scheduler. Public entry points are thread-safe; the
/// protected storage hooks run under the scheduler's lock.
class Scheduler {
public:
  /// \p TenantQuota caps how many queued requests any single tenant may
  /// hold at once (0 = no per-tenant cap; effective quota is clamped to
  /// Capacity). A push over quota is treated exactly like a push into a
  /// full queue: Reject fails it with Overloaded, Block waits until the
  /// tenant drains (deadline-aware, so it can expire while waiting).
  Scheduler(size_t Capacity, BackpressurePolicy Policy, size_t TenantQuota = 0)
      : Capacity(Capacity ? Capacity : 1), Policy(Policy),
        TenantQuota(TenantQuota ? std::min(TenantQuota, this->Capacity) : 0) {}
  virtual ~Scheduler() = default;
  Scheduler(const Scheduler &) = delete;
  Scheduler &operator=(const Scheduler &) = delete;

  enum class PushResult { Ok, Overloaded, ShutDown, Expired };

  /// Outcome of the non-blocking / bounded-wait pop variants.
  enum class PopResult {
    Got,   ///< Batch and/or Expired filled.
    Empty, ///< Nothing queued (within the wait bound); queue still open.
    Closed ///< Closed and fully drained: the popper-exit signal.
  };

  /// Creates the policy implementation ServerOptions selected.
  static std::unique_ptr<Scheduler> create(SchedulerPolicy Which,
                                           size_t Capacity,
                                           BackpressurePolicy Policy,
                                           size_t TenantQuota = 0);

  /// Admits \p R, applying the backpressure policy when full. Returns
  /// ShutDown after close(), Expired when \p R's deadline has already
  /// passed (or passes while a Block-policy push waits for space) — in
  /// every non-Ok case \p R is handed back untouched so the caller can
  /// fail its promise. On success, \p DepthAfter (when non-null)
  /// receives the queue depth including \p R.
  PushResult push(Request &R, size_t *DepthAfter = nullptr);

  /// Re-admits a request a watchdog reclaimed from a stalled worker.
  /// Bypasses capacity and quota — the work was already admitted once
  /// and its future must still be completed, so bounded transient
  /// overfill beats stranding it — but still fails fast: returns
  /// ShutDown when the queue is closed (all poppers may already have
  /// exited) and Expired when the deadline has passed, handing \p R
  /// back so the caller can complete the promise itself. Assigns a
  /// fresh Seq (the request re-enters at its policy position "now").
  PushResult requeue(Request &R);

  /// Blocks until at least one request is available (or the queue is
  /// closed and empty — returns false, the worker-exit signal). Fills
  /// \p Batch with the policy's head request plus up to \p MaxBatch - 1
  /// more same-kernel requests, and \p Expired with every queued request
  /// whose deadline has passed (shed, never dispatched; the caller
  /// completes their futures with RunStatus::Expired). Returns true when
  /// either vector is non-empty.
  bool popBatch(std::vector<Request> &Batch, std::vector<Request> &Expired,
                size_t MaxBatch);

  /// popBatch without the unbounded wait: returns Empty instead of
  /// sleeping. The work-stealing sweep uses this to probe sibling
  /// shards without ever parking on their condvars.
  PopResult tryPopBatch(std::vector<Request> &Batch,
                        std::vector<Request> &Expired, size_t MaxBatch);

  /// popBatch with a bounded wait: parks for at most \p Wait before
  /// returning Empty. The home-shard poll of a stealing worker uses
  /// this so idle workers still sleep instead of spinning.
  PopResult popBatchFor(std::vector<Request> &Batch,
                        std::vector<Request> &Expired, size_t MaxBatch,
                        std::chrono::microseconds Wait);

  /// Stops admission and wakes every waiter; already-admitted requests
  /// remain poppable until drained.
  void close();

  /// Requests currently queued (admitted, not yet popped).
  size_t depth() const;

  /// High-water mark of depth() over the scheduler's lifetime, sampled
  /// after every successful push.
  size_t maxDepthSeen() const;

  size_t capacity() const { return Capacity; }

protected:
  // Storage hooks, called under Mutex.

  /// Stores \p R in the policy's structure. The base class tracks the
  /// stored count itself (one enqueue, Batch.size() + Expired.size()
  /// removals per popBatch), so policies keep no redundant counters and
  /// the hot paths never pay a virtual call just to read a size.
  virtual void enqueueLocked(Request &&R) = 0;

  /// Moves every stored request with Deadline <= \p Now into \p Expired
  /// (relative order of survivors preserved). Called only while requests
  /// with finite deadlines are queued.
  virtual void shedExpiredLocked(TimePoint Now,
                                 std::vector<Request> &Expired) = 0;

  /// Removes the policy's head request plus up to \p MaxBatch - 1 more
  /// same-kernel requests into \p Batch (head first). Precondition:
  /// queuedLocked() > 0.
  virtual void selectBatchLocked(std::vector<Request> &Batch,
                                 size_t MaxBatch) = 0;

  /// Shared FIFO helpers the Fifo and PriorityLane policies build on:
  /// head + same-token coalescing via one forward compaction pass (a
  /// per-element deque::erase would shift the tail once per coalesced
  /// request — an O(depth) spike inside the lock exactly when the queue
  /// runs full), and the matching expiry sweep.
  static void fifoSelectFrom(std::deque<Request> &Q,
                             std::vector<Request> &Batch, size_t MaxBatch);
  static void shedExpiredFrom(std::deque<Request> &Q, TimePoint Now,
                              std::vector<Request> &Expired);

private:
  /// The shed + select + bookkeeping core every pop variant shares.
  /// Called under Mutex; returns true when it filled either vector.
  bool collectLocked(std::vector<Request> &Batch, std::vector<Request> &Expired,
                     size_t MaxBatch);

  /// True when admitting one more request of \p Tenant would exceed the
  /// per-tenant quota. Called under Mutex; always false with quota off.
  bool tenantAtQuotaLocked(uint32_t Tenant) const;

  /// Decrements the per-tenant occupancy for a request leaving the
  /// queue. Called under Mutex; no-op with quota off.
  void tenantReleaseLocked(const Request &R);

  const size_t Capacity;
  const BackpressurePolicy Policy;
  const size_t TenantQuota; ///< 0 = per-tenant cap disabled.

  mutable std::mutex Mutex;
  std::condition_variable NotEmpty; ///< Signals poppers: work or close().
  std::condition_variable NotFull;  ///< Signals blocked pushers.
  size_t Queued = 0;   ///< Requests currently stored by the policy.
  size_t MaxDepth = 0;
  bool Closed = false;
  uint64_t NextSeq = 0;

  /// Queued requests with finite deadlines. The expiry sweep is O(depth),
  /// so popBatch pays it only while this is non-zero — a deadline-free
  /// workload never scans.
  size_t FiniteDeadlines = 0;

  /// Per-tenant occupancy, maintained only when TenantQuota > 0 (the
  /// quota-off hot path never touches the map).
  std::unordered_map<uint32_t, size_t> TenantQueued;

  /// Wake accounting: a push pays a futex wake only when a popper is
  /// actually waiting and no wake is already in flight toward it —
  /// without this, a burst of pushes racing one not-yet-scheduled worker
  /// issues one syscall per request. PendingPopWakes counts notify_one
  /// calls whose receiver has not left (or re-entered) the wait loop yet;
  /// every wait return decrements it, so a popper that loses its item to
  /// another lane and waits again re-arms notification. All under Mutex.
  size_t WaitingPop = 0;
  size_t PendingPopWakes = 0;
  size_t WaitingPush = 0;
};

} // namespace serve
} // namespace daisy

#endif // DAISY_SERVE_SCHEDULER_H
