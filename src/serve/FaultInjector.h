//===- serve/FaultInjector.h - Scoped fault-injection scenarios --*- C++ -*-=//
//
// Part of the daisy project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// RAII front end over support/FailPoint for the serving runtime's
/// fault-injection tests: a FaultInjector arms a scenario — a set of
/// named fault sites with seeded probabilities — on construction and
/// disarms exactly those sites on destruction, so a test that throws or
/// early-returns can never leak an armed fault into the next test.
///
/// The serving runtime currently marks seven sites:
///
///   "engine.compile"     Engine::compile plan compilation (Throw here
///                        exercises the tree-walk fallback);
///   "engine.budget"      the memory-budget charge of a freshly compiled
///                        kernel (Trigger denies the charge as if the
///                        budget were exhausted, forcing the
///                        ResourceExhausted kernel path; only evaluated
///                        when EngineOptions::MemoryBudgetBytes is set);
///   "engine.quarantine"  the breaker admission of a guarded run
///                        (Trigger slams a closed breaker open as if the
///                        failure threshold had been crossed — requests
///                        reroute to the tree-walk path immediately);
///   "serve.queue.push"   Server::submit admission (Trigger forces an
///                        Overloaded rejection as if the queue were
///                        full, feeding the retry/backoff path);
///   "serve.brownout"     the brownout gate of Server::submit (Trigger
///                        is forced admission distress: Low-priority
///                        requests shed as Overloaded);
///   "serve.worker"       top of a worker-lane dispatch (Delay stalls
///                        the lane between pop and run — with
///                        ServerOptions::StallTimeout armed, long enough
///                        a delay makes the watchdog reclaim the claim);
///   "kernel.run"         prepared-run dispatch (Delay makes the kernel
///                        itself slow, per request even inside a batch;
///                        Trigger injects a run fault — an
///                        Engine-compiled kernel heals it through the
///                        tree-walk reference path and its circuit
///                        breaker counts it, a raw Kernel::compile
///                        kernel surfaces RunStatus::Faulted).
///
/// Scenarios are reproducible: every site draws from an Rng stream
/// derived from (scenario seed, site name), independent of thread
/// interleaving. See support/FailPoint.h for the spec string grammar.
///
/// In builds with DAISY_ENABLE_FAILPOINTS=0 everything here is a no-op
/// (enabled() returns false; tests skip themselves).
///
//===----------------------------------------------------------------------===//

#ifndef DAISY_SERVE_FAULTINJECTOR_H
#define DAISY_SERVE_FAULTINJECTOR_H

#include "support/FailPoint.h"

#include <cstdint>
#include <string>
#include <vector>

namespace daisy {
namespace serve {

class FaultInjector {
public:
  /// An empty scenario; arm sites with arm().
  explicit FaultInjector(uint64_t Seed) : Seed(Seed) {}

  /// Arms every site of \p Spec ("site=action[:micros]@prob[xmaxfires];
  /// ..." — support/FailPoint grammar) under \p Seed.
  FaultInjector(const std::string &Spec, uint64_t Seed);

  /// Disarms every site this injector armed (and only those).
  ~FaultInjector();

  FaultInjector(const FaultInjector &) = delete;
  FaultInjector &operator=(const FaultInjector &) = delete;

  /// Arms one site under the scenario seed.
  void arm(const std::string &Site, const FailPointConfig &Config);

  /// Fires of \p Site since arming.
  uint64_t fireCount(const std::string &Site) const {
    return failPointFireCount(Site);
  }

  /// True when fault injection is compiled in (DAISY_ENABLE_FAILPOINTS).
  static constexpr bool enabled() { return DAISY_ENABLE_FAILPOINTS != 0; }

  /// Scenario seed for this process: the DAISY_FAILPOINTS_SEED
  /// environment variable when set (decimal), else \p Default — how CI
  /// sweeps one test binary across seeds.
  static uint64_t seedFromEnv(uint64_t Default);

  uint64_t seed() const { return Seed; }

private:
  uint64_t Seed;
  std::vector<std::string> Sites;
};

} // namespace serve
} // namespace daisy

#endif // DAISY_SERVE_FAULTINJECTOR_H
