//===- serve/Scheduler.cpp ------------------------------------------------==//
//
// Part of the daisy project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "serve/Scheduler.h"
#include "serve/RequestQueue.h"

#include <array>
#include <tuple>

namespace daisy {
namespace serve {

//===----------------------------------------------------------------------===//
// Base machinery: admission, backpressure, quotas, waiting, shedding.
//===----------------------------------------------------------------------===//

bool Scheduler::tenantAtQuotaLocked(uint32_t Tenant) const {
  if (!TenantQuota)
    return false;
  auto It = TenantQueued.find(Tenant);
  return It != TenantQueued.end() && It->second >= TenantQuota;
}

void Scheduler::tenantReleaseLocked(const Request &R) {
  if (!TenantQuota)
    return;
  auto It = TenantQueued.find(R.Tenant);
  if (It != TenantQueued.end() && --It->second == 0)
    TenantQueued.erase(It);
}

Scheduler::PushResult Scheduler::push(Request &R, size_t *DepthAfter) {
  std::unique_lock<std::mutex> Lock(Mutex);
  // Admission shedding: work that is already late never enters the queue.
  if (R.Deadline != noDeadline() && serveNow() >= R.Deadline)
    return PushResult::Expired;
  // A tenant at its quota is handled exactly like a full queue, so a
  // flooding tenant's overflow becomes its own Overloaded/Expired and
  // never occupies the capacity other tenants' requests need.
  if (Policy == BackpressurePolicy::Block) {
    while (!Closed && (Queued >= Capacity || tenantAtQuotaLocked(R.Tenant))) {
      ++WaitingPush;
      if (R.Deadline == noDeadline()) {
        NotFull.wait(Lock);
        --WaitingPush;
      } else {
        std::cv_status S = NotFull.wait_until(Lock, R.Deadline);
        --WaitingPush;
        // A deadline that passes while we wait for space is an admission
        // expiry: the caller gets the request back un-queued. (If space
        // appeared at the same instant, the pop-time sweep would shed it
        // anyway — failing here just skips the round trip.)
        if (S == std::cv_status::timeout && !Closed &&
            (Queued >= Capacity || tenantAtQuotaLocked(R.Tenant)))
          return PushResult::Expired;
      }
    }
  } else if (!Closed && (Queued >= Capacity || tenantAtQuotaLocked(R.Tenant))) {
    return PushResult::Overloaded;
  }
  if (Closed)
    return PushResult::ShutDown;

  R.Seq = NextSeq++;
  if (R.Deadline != noDeadline())
    ++FiniteDeadlines;
  if (TenantQuota)
    ++TenantQueued[R.Tenant];
  enqueueLocked(std::move(R));
  ++Queued;

  size_t Depth = Queued;
  if (Depth > MaxDepth)
    MaxDepth = Depth;
  if (DepthAfter)
    *DepthAfter = Depth;

  bool Wake = WaitingPop > PendingPopWakes;
  if (Wake)
    ++PendingPopWakes;
  Lock.unlock();
  if (Wake)
    NotEmpty.notify_one();
  return PushResult::Ok;
}

Scheduler::PushResult Scheduler::requeue(Request &R) {
  std::unique_lock<std::mutex> Lock(Mutex);
  // After close() the worker pool may already have drained and exited;
  // admitting here could strand the request (and its future) forever.
  if (Closed)
    return PushResult::ShutDown;
  if (R.Deadline != noDeadline() && serveNow() >= R.Deadline)
    return PushResult::Expired;
  // No capacity or quota check: the request was admitted once and its
  // future must complete, so a bounded transient overfill (at most one
  // reclaimed batch per stalled worker) beats losing it.
  R.Seq = NextSeq++;
  if (R.Deadline != noDeadline())
    ++FiniteDeadlines;
  if (TenantQuota)
    ++TenantQueued[R.Tenant];
  enqueueLocked(std::move(R));
  ++Queued;
  if (Queued > MaxDepth)
    MaxDepth = Queued;

  bool Wake = WaitingPop > PendingPopWakes;
  if (Wake)
    ++PendingPopWakes;
  Lock.unlock();
  if (Wake)
    NotEmpty.notify_one();
  return PushResult::Ok;
}

bool Scheduler::collectLocked(std::vector<Request> &Batch,
                              std::vector<Request> &Expired, size_t MaxBatch) {
  // Shed first, select second: an expired request must not be picked as
  // the batch head (EDF would otherwise favour exactly the requests that
  // are already lost). The sweep is skipped entirely while nothing
  // queued carries a finite deadline.
  if (FiniteDeadlines > 0 && Queued > 0) {
    size_t Before = Expired.size();
    shedExpiredLocked(serveNow(), Expired);
    size_t Shed = Expired.size() - Before;
    FiniteDeadlines -= Shed;
    Queued -= Shed;
    if (TenantQuota)
      for (size_t I = Before; I < Expired.size(); ++I)
        tenantReleaseLocked(Expired[I]);
  }
  if (Queued > 0) {
    selectBatchLocked(Batch, MaxBatch);
    Queued -= Batch.size();
    for (const Request &R : Batch) {
      if (FiniteDeadlines > 0 && R.Deadline != noDeadline())
        --FiniteDeadlines;
      tenantReleaseLocked(R);
    }
  }
  return !Batch.empty() || !Expired.empty();
}

bool Scheduler::popBatch(std::vector<Request> &Batch,
                         std::vector<Request> &Expired, size_t MaxBatch) {
  Batch.clear();
  Expired.clear();
  if (MaxBatch == 0)
    MaxBatch = 1;
  std::unique_lock<std::mutex> Lock(Mutex);
  while (!collectLocked(Batch, Expired, MaxBatch)) {
    if (Closed)
      return false;
    ++WaitingPop;
    NotEmpty.wait(Lock);
    --WaitingPop;
    if (PendingPopWakes > 0)
      --PendingPopWakes;
  }
  bool WakePushers = WaitingPush > 0;
  Lock.unlock();
  // Both dispatched and shed requests freed space; blocked pushers race
  // for it, so wake them all.
  if (WakePushers)
    NotFull.notify_all();
  return true;
}

Scheduler::PopResult Scheduler::tryPopBatch(std::vector<Request> &Batch,
                                            std::vector<Request> &Expired,
                                            size_t MaxBatch) {
  Batch.clear();
  Expired.clear();
  if (MaxBatch == 0)
    MaxBatch = 1;
  std::unique_lock<std::mutex> Lock(Mutex);
  if (!collectLocked(Batch, Expired, MaxBatch))
    return Closed ? PopResult::Closed : PopResult::Empty;
  bool WakePushers = WaitingPush > 0;
  Lock.unlock();
  if (WakePushers)
    NotFull.notify_all();
  return PopResult::Got;
}

Scheduler::PopResult Scheduler::popBatchFor(std::vector<Request> &Batch,
                                            std::vector<Request> &Expired,
                                            size_t MaxBatch,
                                            std::chrono::microseconds Wait) {
  Batch.clear();
  Expired.clear();
  if (MaxBatch == 0)
    MaxBatch = 1;
  TimePoint Until = serveNow() + Wait;
  std::unique_lock<std::mutex> Lock(Mutex);
  for (;;) {
    if (collectLocked(Batch, Expired, MaxBatch))
      break;
    if (Closed)
      return PopResult::Closed;
    ++WaitingPop;
    std::cv_status S = NotEmpty.wait_until(Lock, Until);
    --WaitingPop;
    if (PendingPopWakes > 0)
      --PendingPopWakes;
    if (S == std::cv_status::timeout) {
      // Final collect under the same lock hold: a push that raced the
      // timeout may have aimed its (now consumed) wake at us.
      if (collectLocked(Batch, Expired, MaxBatch))
        break;
      return Closed ? PopResult::Closed : PopResult::Empty;
    }
  }
  bool WakePushers = WaitingPush > 0;
  Lock.unlock();
  if (WakePushers)
    NotFull.notify_all();
  return PopResult::Got;
}

void Scheduler::close() {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Closed = true;
  }
  NotEmpty.notify_all();
  NotFull.notify_all();
}

size_t Scheduler::depth() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Queued;
}

size_t Scheduler::maxDepthSeen() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return MaxDepth;
}

void Scheduler::fifoSelectFrom(std::deque<Request> &Q,
                               std::vector<Request> &Batch, size_t MaxBatch) {
  Batch.push_back(std::move(Q.front()));
  Q.pop_front();
  const void *Token = Batch.front().Args.kernelToken();
  if (!Token || Batch.size() >= MaxBatch || Q.empty())
    return;
  size_t Size = Q.size();
  size_t Write = 0, Read = 0;
  for (; Read < Size; ++Read) {
    Request &Cand = Q[Read];
    if (Batch.size() < MaxBatch && Cand.Args.kernelToken() == Token) {
      Batch.push_back(std::move(Cand));
      continue;
    }
    if (Write == Read && Batch.size() == MaxBatch)
      break; // No holes behind us and the batch is full: tail stays put.
    if (Write != Read)
      Q[Write] = std::move(Q[Read]);
    ++Write;
  }
  if (Read == Size)
    Q.erase(Q.begin() + Write, Q.end());
}

void Scheduler::shedExpiredFrom(std::deque<Request> &Q, TimePoint Now,
                                std::vector<Request> &Expired) {
  size_t Size = Q.size();
  size_t Write = 0;
  for (size_t Read = 0; Read < Size; ++Read) {
    if (Q[Read].Deadline <= Now) {
      Expired.push_back(std::move(Q[Read]));
      continue;
    }
    if (Write != Read)
      Q[Write] = std::move(Q[Read]);
    ++Write;
  }
  Q.erase(Q.begin() + Write, Q.end());
}

//===----------------------------------------------------------------------===//
// PriorityLane: one FIFO lane per Priority, highest first.
//===----------------------------------------------------------------------===//

namespace {

class PriorityLaneScheduler final : public Scheduler {
public:
  using Scheduler::Scheduler;

private:
  static size_t laneOf(Priority P) {
    size_t Lane = static_cast<size_t>(P);
    return Lane < NumPriorityLanes ? Lane : NumPriorityLanes - 1;
  }

  void enqueueLocked(Request &&R) override {
    Lanes[laneOf(R.Prio)].push_back(std::move(R));
  }

  void shedExpiredLocked(TimePoint Now,
                         std::vector<Request> &Expired) override {
    for (auto &Lane : Lanes)
      shedExpiredFrom(Lane, Now, Expired);
  }

  void selectBatchLocked(std::vector<Request> &Batch,
                         size_t MaxBatch) override {
    for (auto &Lane : Lanes)
      if (!Lane.empty()) {
        fifoSelectFrom(Lane, Batch, MaxBatch);
        return;
      }
  }

  std::array<std::deque<Request>, NumPriorityLanes> Lanes;
};

//===----------------------------------------------------------------------===//
// EarliestDeadlineFirst: min (Deadline, Seq) next; no-deadline requests
// carry the noDeadline() sentinel and therefore rank after every dated
// request, tie-broken FIFO among themselves.
//===----------------------------------------------------------------------===//

class EdfScheduler final : public Scheduler {
public:
  using Scheduler::Scheduler;

private:
  void enqueueLocked(Request &&R) override { Q.push_back(std::move(R)); }

  void shedExpiredLocked(TimePoint Now,
                         std::vector<Request> &Expired) override {
    shedExpiredFrom(Q, Now, Expired);
  }

  void selectBatchLocked(std::vector<Request> &Batch,
                         size_t MaxBatch) override {
    // Linear scan beats a heap here: depth is bounded by Capacity (a few
    // hundred), the scan runs once per *batch* not per request, and a
    // heap would still need the same-token compaction pass below.
    size_t Head = 0;
    for (size_t I = 1; I < Q.size(); ++I)
      if (std::tie(Q[I].Deadline, Q[I].Seq) <
          std::tie(Q[Head].Deadline, Q[Head].Seq))
        Head = I;
    const void *Token = Q[Head].Args.kernelToken();
    Batch.push_back(std::move(Q[Head]));
    // Coalesce same-kernel requests in admission order. A coalesced
    // request may have a later deadline than queue survivors — batching
    // trades strict EDF order for amortized dispatch, same as every
    // policy trades it for MaxBatch > 1.
    size_t Size = Q.size();
    size_t Write = 0;
    for (size_t Read = 0; Read < Size; ++Read) {
      if (Read == Head)
        continue;
      if (Token && Batch.size() < MaxBatch &&
          Q[Read].Args.kernelToken() == Token) {
        Batch.push_back(std::move(Q[Read]));
        continue;
      }
      if (Write != Read)
        Q[Write] = std::move(Q[Read]);
      ++Write;
    }
    Q.erase(Q.begin() + Write, Q.end());
  }

  std::deque<Request> Q;
};

//===----------------------------------------------------------------------===//
// FairShare: deficit-weighted round-robin over per-tenant FIFO deques.
// The rotation's front tenant earns Weight credits when it has none,
// spends one credit per selected batch, and rotates to the back when its
// credit runs out — so a tenant with Weight W gets W consecutive batch
// turns per rotation, and a flooding tenant delays another tenant's head
// request by at most one rotation, never by its whole backlog.
//===----------------------------------------------------------------------===//

class FairShareScheduler final : public Scheduler {
public:
  using Scheduler::Scheduler;

private:
  struct TenantQ {
    std::deque<Request> Q;
    int64_t Credit = 0;
    uint32_t Weight = 1;
    bool Active = false; ///< Present in Rotation.
  };

  void enqueueLocked(Request &&R) override {
    TenantQ &T = Tenants[R.Tenant];
    // The latest request's weight wins: weights are per-tenant config
    // the submitter passes on every request, not per-request state.
    T.Weight = R.Weight ? R.Weight : 1;
    if (!T.Active) {
      T.Active = true;
      T.Credit = 0; // A returning tenant starts a fresh turn.
      Rotation.push_back(R.Tenant);
    }
    T.Q.push_back(std::move(R));
  }

  void shedExpiredLocked(TimePoint Now,
                         std::vector<Request> &Expired) override {
    for (size_t I = 0; I < Rotation.size();) {
      TenantQ &T = Tenants[Rotation[I]];
      shedExpiredFrom(T.Q, Now, Expired);
      if (T.Q.empty()) {
        T.Active = false;
        T.Credit = 0;
        Rotation.erase(Rotation.begin() + I);
      } else {
        ++I;
      }
    }
  }

  void selectBatchLocked(std::vector<Request> &Batch,
                         size_t MaxBatch) override {
    // Precondition (base class): at least one request is queued, so the
    // rotation is non-empty and its front tenant's deque is non-empty.
    uint32_t Id = Rotation.front();
    TenantQ &T = Tenants[Id];
    if (T.Credit < 1)
      T.Credit = T.Weight;
    // FIFO + coalescing *within this tenant only*: sweeping another
    // tenant's same-kernel requests into this batch would hand the
    // flooding tenant exactly the bypass the rotation exists to deny.
    fifoSelectFrom(T.Q, Batch, MaxBatch);
    T.Credit -= 1;
    if (T.Q.empty()) {
      T.Active = false;
      T.Credit = 0;
      Rotation.pop_front();
    } else if (T.Credit < 1) {
      Rotation.pop_front();
      Rotation.push_back(Id);
    }
  }

  std::unordered_map<uint32_t, TenantQ> Tenants;
  std::deque<uint32_t> Rotation; ///< Tenants with queued work, turn order.
};

} // namespace

std::unique_ptr<Scheduler> Scheduler::create(SchedulerPolicy Which,
                                             size_t Capacity,
                                             BackpressurePolicy Policy,
                                             size_t TenantQuota) {
  switch (Which) {
  case SchedulerPolicy::Fifo:
    return std::make_unique<RequestQueue>(Capacity, Policy, TenantQuota);
  case SchedulerPolicy::PriorityLane:
    return std::make_unique<PriorityLaneScheduler>(Capacity, Policy,
                                                   TenantQuota);
  case SchedulerPolicy::EarliestDeadlineFirst:
    return std::make_unique<EdfScheduler>(Capacity, Policy, TenantQuota);
  case SchedulerPolicy::FairShare:
    return std::make_unique<FairShareScheduler>(Capacity, Policy, TenantQuota);
  }
  return std::make_unique<RequestQueue>(Capacity, Policy, TenantQuota);
}

} // namespace serve
} // namespace daisy
