//===- serve/Scheduler.cpp ------------------------------------------------==//
//
// Part of the daisy project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "serve/Scheduler.h"
#include "serve/RequestQueue.h"

#include <array>
#include <tuple>

namespace daisy {
namespace serve {

//===----------------------------------------------------------------------===//
// Base machinery: admission, backpressure, waiting, shedding.
//===----------------------------------------------------------------------===//

Scheduler::PushResult Scheduler::push(Request &R, size_t *DepthAfter) {
  std::unique_lock<std::mutex> Lock(Mutex);
  // Admission shedding: work that is already late never enters the queue.
  if (R.Deadline != noDeadline() && serveNow() >= R.Deadline)
    return PushResult::Expired;
  if (Policy == BackpressurePolicy::Block) {
    while (!Closed && Queued >= Capacity) {
      ++WaitingPush;
      if (R.Deadline == noDeadline()) {
        NotFull.wait(Lock);
        --WaitingPush;
      } else {
        std::cv_status S = NotFull.wait_until(Lock, R.Deadline);
        --WaitingPush;
        // A deadline that passes while we wait for space is an admission
        // expiry: the caller gets the request back un-queued. (If space
        // appeared at the same instant, the pop-time sweep would shed it
        // anyway — failing here just skips the round trip.)
        if (S == std::cv_status::timeout && !Closed && Queued >= Capacity)
          return PushResult::Expired;
      }
    }
  } else if (!Closed && Queued >= Capacity) {
    return PushResult::Overloaded;
  }
  if (Closed)
    return PushResult::ShutDown;

  R.Seq = NextSeq++;
  if (R.Deadline != noDeadline())
    ++FiniteDeadlines;
  enqueueLocked(std::move(R));
  ++Queued;

  size_t Depth = Queued;
  if (Depth > MaxDepth)
    MaxDepth = Depth;
  if (DepthAfter)
    *DepthAfter = Depth;

  bool Wake = WaitingPop > PendingPopWakes;
  if (Wake)
    ++PendingPopWakes;
  Lock.unlock();
  if (Wake)
    NotEmpty.notify_one();
  return PushResult::Ok;
}

bool Scheduler::popBatch(std::vector<Request> &Batch,
                         std::vector<Request> &Expired, size_t MaxBatch) {
  Batch.clear();
  Expired.clear();
  if (MaxBatch == 0)
    MaxBatch = 1;
  std::unique_lock<std::mutex> Lock(Mutex);
  for (;;) {
    // Shed first, select second: an expired request must not be picked as
    // the batch head (EDF would otherwise favour exactly the requests that
    // are already lost). The sweep is skipped entirely while nothing
    // queued carries a finite deadline.
    if (FiniteDeadlines > 0 && Queued > 0) {
      size_t Before = Expired.size();
      shedExpiredLocked(serveNow(), Expired);
      size_t Shed = Expired.size() - Before;
      FiniteDeadlines -= Shed;
      Queued -= Shed;
    }
    if (Queued > 0) {
      selectBatchLocked(Batch, MaxBatch);
      Queued -= Batch.size();
      if (FiniteDeadlines > 0)
        for (const Request &R : Batch)
          if (R.Deadline != noDeadline())
            --FiniteDeadlines;
      break;
    }
    if (!Expired.empty())
      break; // Nothing runnable, but the caller has futures to fail.
    if (Closed)
      return false;
    ++WaitingPop;
    NotEmpty.wait(Lock);
    --WaitingPop;
    if (PendingPopWakes > 0)
      --PendingPopWakes;
  }
  bool WakePushers = WaitingPush > 0;
  Lock.unlock();
  // Both dispatched and shed requests freed space; blocked pushers race
  // for it, so wake them all.
  if (WakePushers)
    NotFull.notify_all();
  return true;
}

void Scheduler::close() {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Closed = true;
  }
  NotEmpty.notify_all();
  NotFull.notify_all();
}

size_t Scheduler::depth() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Queued;
}

size_t Scheduler::maxDepthSeen() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return MaxDepth;
}

void Scheduler::fifoSelectFrom(std::deque<Request> &Q,
                               std::vector<Request> &Batch, size_t MaxBatch) {
  Batch.push_back(std::move(Q.front()));
  Q.pop_front();
  const void *Token = Batch.front().Args.kernelToken();
  if (!Token || Batch.size() >= MaxBatch || Q.empty())
    return;
  size_t Size = Q.size();
  size_t Write = 0, Read = 0;
  for (; Read < Size; ++Read) {
    Request &Cand = Q[Read];
    if (Batch.size() < MaxBatch && Cand.Args.kernelToken() == Token) {
      Batch.push_back(std::move(Cand));
      continue;
    }
    if (Write == Read && Batch.size() == MaxBatch)
      break; // No holes behind us and the batch is full: tail stays put.
    if (Write != Read)
      Q[Write] = std::move(Q[Read]);
    ++Write;
  }
  if (Read == Size)
    Q.erase(Q.begin() + Write, Q.end());
}

void Scheduler::shedExpiredFrom(std::deque<Request> &Q, TimePoint Now,
                                std::vector<Request> &Expired) {
  size_t Size = Q.size();
  size_t Write = 0;
  for (size_t Read = 0; Read < Size; ++Read) {
    if (Q[Read].Deadline <= Now) {
      Expired.push_back(std::move(Q[Read]));
      continue;
    }
    if (Write != Read)
      Q[Write] = std::move(Q[Read]);
    ++Write;
  }
  Q.erase(Q.begin() + Write, Q.end());
}

//===----------------------------------------------------------------------===//
// PriorityLane: one FIFO lane per Priority, highest first.
//===----------------------------------------------------------------------===//

namespace {

class PriorityLaneScheduler final : public Scheduler {
public:
  using Scheduler::Scheduler;

private:
  static size_t laneOf(Priority P) {
    size_t Lane = static_cast<size_t>(P);
    return Lane < NumPriorityLanes ? Lane : NumPriorityLanes - 1;
  }

  void enqueueLocked(Request &&R) override {
    Lanes[laneOf(R.Prio)].push_back(std::move(R));
  }

  void shedExpiredLocked(TimePoint Now,
                         std::vector<Request> &Expired) override {
    for (auto &Lane : Lanes)
      shedExpiredFrom(Lane, Now, Expired);
  }

  void selectBatchLocked(std::vector<Request> &Batch,
                         size_t MaxBatch) override {
    for (auto &Lane : Lanes)
      if (!Lane.empty()) {
        fifoSelectFrom(Lane, Batch, MaxBatch);
        return;
      }
  }

  std::array<std::deque<Request>, NumPriorityLanes> Lanes;
};

//===----------------------------------------------------------------------===//
// EarliestDeadlineFirst: min (Deadline, Seq) next; no-deadline requests
// carry the noDeadline() sentinel and therefore rank after every dated
// request, tie-broken FIFO among themselves.
//===----------------------------------------------------------------------===//

class EdfScheduler final : public Scheduler {
public:
  using Scheduler::Scheduler;

private:
  void enqueueLocked(Request &&R) override { Q.push_back(std::move(R)); }

  void shedExpiredLocked(TimePoint Now,
                         std::vector<Request> &Expired) override {
    shedExpiredFrom(Q, Now, Expired);
  }

  void selectBatchLocked(std::vector<Request> &Batch,
                         size_t MaxBatch) override {
    // Linear scan beats a heap here: depth is bounded by Capacity (a few
    // hundred), the scan runs once per *batch* not per request, and a
    // heap would still need the same-token compaction pass below.
    size_t Head = 0;
    for (size_t I = 1; I < Q.size(); ++I)
      if (std::tie(Q[I].Deadline, Q[I].Seq) <
          std::tie(Q[Head].Deadline, Q[Head].Seq))
        Head = I;
    const void *Token = Q[Head].Args.kernelToken();
    Batch.push_back(std::move(Q[Head]));
    // Coalesce same-kernel requests in admission order. A coalesced
    // request may have a later deadline than queue survivors — batching
    // trades strict EDF order for amortized dispatch, same as every
    // policy trades it for MaxBatch > 1.
    size_t Size = Q.size();
    size_t Write = 0;
    for (size_t Read = 0; Read < Size; ++Read) {
      if (Read == Head)
        continue;
      if (Token && Batch.size() < MaxBatch &&
          Q[Read].Args.kernelToken() == Token) {
        Batch.push_back(std::move(Q[Read]));
        continue;
      }
      if (Write != Read)
        Q[Write] = std::move(Q[Read]);
      ++Write;
    }
    Q.erase(Q.begin() + Write, Q.end());
  }

  std::deque<Request> Q;
};

} // namespace

std::unique_ptr<Scheduler> Scheduler::create(SchedulerPolicy Which,
                                             size_t Capacity,
                                             BackpressurePolicy Policy) {
  switch (Which) {
  case SchedulerPolicy::Fifo:
    return std::make_unique<RequestQueue>(Capacity, Policy);
  case SchedulerPolicy::PriorityLane:
    return std::make_unique<PriorityLaneScheduler>(Capacity, Policy);
  case SchedulerPolicy::EarliestDeadlineFirst:
    return std::make_unique<EdfScheduler>(Capacity, Policy);
  }
  return std::make_unique<RequestQueue>(Capacity, Policy);
}

} // namespace serve
} // namespace daisy
