//===- serve/RequestQueue.cpp ---------------------------------------------==//
//
// Part of the daisy project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "serve/RequestQueue.h"

#include <algorithm>
#include <utility>

using namespace daisy;
using namespace daisy::serve;

RequestQueue::PushResult RequestQueue::push(Request &R, size_t *DepthAfter) {
  std::unique_lock<std::mutex> Lock(Mutex);
  if (Policy == BackpressurePolicy::Block) {
    while (!Closed && Q.size() >= Capacity) {
      ++WaitingPush;
      NotFull.wait(Lock);
      --WaitingPush;
    }
  } else if (!Closed && Q.size() >= Capacity) {
    return PushResult::Overloaded;
  }
  if (Closed)
    return PushResult::ShutDown;
  Q.push_back(std::move(R));
  MaxDepth = std::max(MaxDepth, Q.size());
  if (DepthAfter)
    *DepthAfter = Q.size();
  bool Wake = WaitingPop > PendingPopWakes;
  if (Wake)
    ++PendingPopWakes;
  Lock.unlock();
  if (Wake)
    NotEmpty.notify_one();
  return PushResult::Ok;
}

bool RequestQueue::popBatch(std::vector<Request> &Batch, size_t MaxBatch) {
  Batch.clear();
  if (MaxBatch == 0)
    MaxBatch = 1;
  std::unique_lock<std::mutex> Lock(Mutex);
  while (!Closed && Q.empty()) {
    ++WaitingPop;
    NotEmpty.wait(Lock);
    --WaitingPop;
    // Every wait return — woken, stolen-from, or spurious — consumes the
    // in-flight wake so the next push re-arms notification.
    if (PendingPopWakes)
      --PendingPopWakes;
  }
  if (Q.empty())
    return false; // Closed and drained: the worker-exit signal.

  Batch.push_back(std::move(Q.front()));
  Q.pop_front();
  // Micro-batch: coalesce further requests for the same kernel, skipping
  // past other kernels' requests (their relative order is untouched).
  // Matching by kernel token means every request of a batch shares one
  // compiled plan; the worker amortizes its dispatch over all of them.
  // One forward compaction pass extracts every match — per-element
  // deque::erase would shift the tail once per coalesced request, an
  // O(depth) spike inside the lock exactly when the queue runs full.
  const void *Token = Batch.front().Args.kernelToken();
  if (Token && MaxBatch > 1 && !Q.empty()) {
    size_t Size = Q.size(), Write = 0, Read = 0;
    for (; Read < Size; ++Read) {
      if (Batch.size() < MaxBatch && Q[Read].Args.kernelToken() == Token) {
        Batch.push_back(std::move(Q[Read]));
        continue;
      }
      if (Write == Read && Batch.size() == MaxBatch)
        break; // Nothing displaced yet and the batch is full: done.
      if (Write != Read)
        Q[Write] = std::move(Q[Read]);
      ++Write;
    }
    if (Read == Size)
      Q.erase(Q.begin() + static_cast<ptrdiff_t>(Write), Q.end());
  }
  bool WakePushers = WaitingPush > 0;
  Lock.unlock();
  // Removed slots unblock pushers; blocked pushers exist only under
  // overload, so the steady state pays no wake here. Closing wakes
  // everyone through close() instead.
  if (WakePushers)
    NotFull.notify_all();
  return true;
}

void RequestQueue::close() {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Closed = true;
  }
  NotEmpty.notify_all();
  NotFull.notify_all();
}

size_t RequestQueue::depth() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Q.size();
}

size_t RequestQueue::maxDepthSeen() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return MaxDepth;
}
