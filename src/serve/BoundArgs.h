//===- serve/BoundArgs.h - Validate-once resolved argument set ---*- C++ -*-=//
//
// Part of the daisy project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The prepared half of the zero-copy run path. Kernel::run(ArgBinding)
/// re-validates name-to-slot bindings with string compares on every run;
/// a BoundArgs is the result of paying that validation exactly once
/// (Kernel::bind): a full buffer-slot table plus the identity of the
/// kernel it was resolved against. Kernel::run(BoundArgs) — and the
/// serving runtime's hot loop (serve/Server.h), which is why this class
/// lives here — executes on the prepared table with no string compares
/// at all.
///
/// A BoundArgs may be reused across any number of runs, including
/// concurrent ones (runs never mutate it; each borrows its own pooled
/// context for transient scratch). It pins the kernel it was bound
/// against, and is rejected as stale by any other kernel: slot order is a
/// per-program contract, so a table resolved against one program must
/// never address another's buffers.
///
//===----------------------------------------------------------------------===//

#ifndef DAISY_SERVE_BOUNDARGS_H
#define DAISY_SERVE_BOUNDARGS_H

#include "api/Kernel.h"
#include "exec/ExecPlan.h"

#include <memory>
#include <string>
#include <vector>

namespace daisy {

class KernelImpl;

/// A validated, name-resolved argument set: one BufferRef per program
/// array slot (caller storage for observable arrays, null for
/// kernel-managed transient slots). Produced by Kernel::bind; cheap to
/// copy and move. Default-constructed or failed-validation handles are
/// non-ok and rejected by run.
class BoundArgs {
public:
  BoundArgs() = default;

  /// True when validation succeeded and the handle is runnable.
  bool ok() const { return Bound != nullptr; }
  explicit operator bool() const { return ok(); }

  /// The validation diagnostic of a non-ok handle ("unbound arguments"
  /// for a default-constructed one); empty when ok.
  const std::string &error() const { return Error; }

  /// Resolved per-slot buffer table (observability; slot order follows
  /// Program::arrays() of the bound kernel).
  const std::vector<BufferRef> &slots() const { return Slots; }

  /// Identity of the kernel this handle was validated against — the
  /// serving runtime batches same-kernel requests by comparing tokens.
  /// Null for non-ok handles. The token pins the kernel alive, so it is
  /// never dangling.
  const void *kernelToken() const { return Bound.get(); }

private:
  friend class Kernel; // Kernel::bind fills, Kernel::run(BoundArgs) checks.

  std::shared_ptr<const KernelImpl> Bound; ///< Kernel validated against.
  std::vector<BufferRef> Slots;            ///< Null entries = transient.
  std::string Error;                       ///< Non-ok diagnostic.
};

/// The one status every path reports for a non-ok BoundArgs (the bind
/// diagnostic when there is one): Kernel::run/runBatch and the server's
/// submit fast-fail agree on the wording by construction.
inline RunStatus invalidBoundArgsStatus(const BoundArgs &Args) {
  return {Args.error().empty() ? "unbound arguments: BoundArgs was not "
                                 "produced by Kernel::bind"
                               : Args.error()};
}

/// A worker lane's sticky run context: one kernel's pooled RunContext,
/// borrowed across *dispatches* instead of per dispatch.
///
/// Kernel::runBatch(..., RunContextLease &) keeps the borrowed context in
/// the lease between batches. While consecutive batches hit the same
/// kernel — the common case on a serving lane once micro-batching groups
/// by kernel token — the register file, tape stack, slot table, and
/// transient scratch stay warm with no pool round-trip (two mutex
/// acquisitions saved per dispatch) and zero contention with sibling
/// lanes. A batch for a different kernel returns the held context to its
/// owner's pool and borrows from the new kernel's.
///
/// The lease pins the owning kernel alive and returns the context on
/// destruction, so a lane-local lease is safe across plan-cache eviction
/// and server shutdown. Not thread-safe: one lease per lane.
class RunContextLease {
public:
  RunContextLease() = default;
  ~RunContextLease() { reset(); }
  RunContextLease(const RunContextLease &) = delete;
  RunContextLease &operator=(const RunContextLease &) = delete;

  /// Identity of the kernel whose context is held (null when empty);
  /// compares against Kernel::token / BoundArgs::kernelToken.
  const void *kernelToken() const { return Owner.get(); }

  /// Returns the held context to its kernel's pool (no-op when empty).
  /// Defined in serve/BoundArgs.cpp, where KernelImpl is complete.
  void reset();

private:
  friend class Kernel; // runBatch(..., Lease) installs and reuses.

  std::shared_ptr<const KernelImpl> Owner; ///< Pool the context returns to.
  void *Ctx = nullptr; ///< KernelImpl::RunContext, opaque at this layer.
};

} // namespace daisy

#endif // DAISY_SERVE_BOUNDARGS_H
