//===- serve/FaultInjector.cpp --------------------------------------------==//
//
// Part of the daisy project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "serve/FaultInjector.h"

#include <cstdlib>

using namespace daisy;
using namespace daisy::serve;

FaultInjector::FaultInjector(const std::string &Spec, uint64_t Seed)
    : Seed(Seed) {
  // armFailPointsFromSpec validates and arms; the site names (everything
  // before each '=') are recorded here so teardown disarms exactly this
  // scenario, even when another injector is live in an outer scope.
  (void)armFailPointsFromSpec(Spec, Seed);
  size_t Pos = 0;
  while (Pos < Spec.size()) {
    size_t End = Spec.find(';', Pos);
    std::string Entry = Spec.substr(
        Pos, End == std::string::npos ? std::string::npos : End - Pos);
    Pos = End == std::string::npos ? Spec.size() : End + 1;
    size_t Eq = Entry.find('=');
    if (Eq != std::string::npos && Eq > 0)
      Sites.push_back(Entry.substr(0, Eq));
  }
}

FaultInjector::~FaultInjector() {
  for (const std::string &Site : Sites)
    disarmFailPoint(Site);
}

void FaultInjector::arm(const std::string &Site,
                        const FailPointConfig &Config) {
  armFailPoint(Site, Config, Seed);
  Sites.push_back(Site);
}

uint64_t FaultInjector::seedFromEnv(uint64_t Default) {
  if (const char *Env = std::getenv("DAISY_FAILPOINTS_SEED"))
    if (*Env)
      return std::strtoull(Env, nullptr, 10);
  return Default;
}
