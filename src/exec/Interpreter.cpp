//===- exec/Interpreter.cpp -----------------------------------------------==//
//
// Part of the daisy project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "exec/Interpreter.h"

// This file is the tree-walking semantics definition only. The cached
// convenience wrappers (interpret / runProgram /
// semanticallyEquivalent{,Batch}) route through the process-wide engine
// and are defined in api/Facade.cpp, so exec never includes the facade
// and the library's include graph stays strictly layered.
#include "blas/Kernels.h"
#include "exec/EvalOps.h"

#include <cassert>

using namespace daisy;

namespace {

class InterpreterImpl {
public:
  InterpreterImpl(const Program &Prog, DataEnv &Env)
      : Prog(Prog), Env(Env), Vars(Prog.params()) {}

  void run() {
    for (const NodePtr &Node : Prog.topLevel())
      execNode(Node);
  }

private:
  int64_t evalAffine(const AffineExpr &Expr) const {
    return Expr.evaluate(Vars);
  }

  size_t elementOffset(const ArrayAccess &Access) const {
    const ArrayDecl &Decl = Prog.array(Access.Array);
    assert(Decl.Shape.size() == Access.Indices.size() &&
           "rank mismatch at execution");
    int64_t Offset = 0;
    for (size_t Dim = 0; Dim < Access.Indices.size(); ++Dim) {
      int64_t Index = evalAffine(Access.Indices[Dim]);
      assert(Index >= 0 && Index < Decl.Shape[Dim] &&
             "subscript out of bounds");
      Offset += Index * Decl.dimStride(Dim);
    }
    return static_cast<size_t>(Offset);
  }

  double evalExpr(const Expr &E) const {
    switch (E.kind()) {
    case ExprKind::Constant:
      return E.constantValue();
    case ExprKind::Read:
      return Env.buffer(E.access().Array)[elementOffset(E.access())];
    case ExprKind::Iter: {
      auto It = Vars.find(E.name());
      assert(It != Vars.end() && "unbound iterator");
      return static_cast<double>(It->second);
    }
    case ExprKind::Param:
      return static_cast<double>(Prog.param(E.name()));
    case ExprKind::Unary:
      return applyUnary(E.unaryOp(), evalExpr(*E.operands()[0]));
    case ExprKind::Binary: {
      double L = evalExpr(*E.operands()[0]);
      double R = evalExpr(*E.operands()[1]);
      return applyBinary(E.binaryOp(), L, R);
    }
    case ExprKind::Select:
      return evalExpr(*E.operands()[0]) != 0.0
                 ? evalExpr(*E.operands()[1])
                 : evalExpr(*E.operands()[2]);
    }
    return 0.0;
  }

  void execCall(const CallNode &Call) {
    const auto &Args = Call.args();
    const auto &Dims = Call.dims();
    switch (Call.callee()) {
    case BlasKind::Gemm:
      gemm(Env.buffer(Args[0]).data(), Env.buffer(Args[1]).data(),
           Env.buffer(Args[2]).data(), Dims[0], Dims[1], Dims[2],
           Call.alpha(), Call.beta());
      break;
    case BlasKind::Syrk:
      syrk(Env.buffer(Args[0]).data(), Env.buffer(Args[1]).data(), Dims[0],
           Dims[1], Call.alpha(), Call.beta());
      break;
    case BlasKind::Syr2k:
      syr2k(Env.buffer(Args[0]).data(), Env.buffer(Args[1]).data(),
            Env.buffer(Args[2]).data(), Dims[0], Dims[1], Call.alpha(),
            Call.beta());
      break;
    case BlasKind::Gemv:
      gemv(Env.buffer(Args[0]).data(), Env.buffer(Args[1]).data(),
           Env.buffer(Args[2]).data(), Dims[0], Dims[1], Call.alpha(),
           Call.beta());
      break;
    }
  }

  void execNode(const NodePtr &Node) {
    if (const auto *C = dynCast<Computation>(Node)) {
      double Value = evalExpr(*C->rhs());
      Env.buffer(C->write().Array)[elementOffset(C->write())] = Value;
      return;
    }
    if (const auto *Call = dynCast<CallNode>(Node)) {
      execCall(*Call);
      return;
    }
    const auto *L = dynCast<Loop>(Node);
    assert(L && "unknown node kind");
    int64_t Lo = evalAffine(L->lower());
    int64_t Hi = evalAffine(L->upper());
    // Shadow, don't clobber: a nested loop may reuse an outer iterator
    // name (or a parameter name), and that binding must survive this loop.
    auto Previous = Vars.find(L->iterator());
    bool HadPrevious = Previous != Vars.end();
    int64_t PreviousValue = HadPrevious ? Previous->second : 0;
    for (int64_t I = Lo; I < Hi; I += L->step()) {
      Vars[L->iterator()] = I;
      for (const NodePtr &Child : L->body())
        execNode(Child);
    }
    if (HadPrevious)
      Vars[L->iterator()] = PreviousValue;
    else
      Vars.erase(L->iterator());
  }

  const Program &Prog;
  DataEnv &Env;
  ValueEnv Vars;
};

} // namespace

void daisy::interpretTreeWalk(const Program &Prog, DataEnv &Env) {
  InterpreterImpl(Prog, Env).run();
}
