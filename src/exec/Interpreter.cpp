//===- exec/Interpreter.cpp -----------------------------------------------==//
//
// Part of the daisy project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "exec/Interpreter.h"

// Deliberate upward include: the exec-layer convenience entry points are
// defined to route through the process-wide engine's plan cache, and the
// repo builds as one library (headers stay acyclic — only this .cpp sees
// the facade). If exec is ever split into its own library, these cached
// wrappers move to src/api/ and exec keeps the direct ExecPlan
// primitives.
#include "api/Engine.h"
#include "blas/Kernels.h"
#include "exec/EvalOps.h"
#include "exec/ExecPlan.h"
#include "exec/ThreadPool.h"
#include "support/Statistics.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <memory>

using namespace daisy;

namespace {

class InterpreterImpl {
public:
  InterpreterImpl(const Program &Prog, DataEnv &Env)
      : Prog(Prog), Env(Env), Vars(Prog.params()) {}

  void run() {
    for (const NodePtr &Node : Prog.topLevel())
      execNode(Node);
  }

private:
  int64_t evalAffine(const AffineExpr &Expr) const {
    return Expr.evaluate(Vars);
  }

  size_t elementOffset(const ArrayAccess &Access) const {
    const ArrayDecl &Decl = Prog.array(Access.Array);
    assert(Decl.Shape.size() == Access.Indices.size() &&
           "rank mismatch at execution");
    int64_t Offset = 0;
    for (size_t Dim = 0; Dim < Access.Indices.size(); ++Dim) {
      int64_t Index = evalAffine(Access.Indices[Dim]);
      assert(Index >= 0 && Index < Decl.Shape[Dim] &&
             "subscript out of bounds");
      Offset += Index * Decl.dimStride(Dim);
    }
    return static_cast<size_t>(Offset);
  }

  double evalExpr(const Expr &E) const {
    switch (E.kind()) {
    case ExprKind::Constant:
      return E.constantValue();
    case ExprKind::Read:
      return Env.buffer(E.access().Array)[elementOffset(E.access())];
    case ExprKind::Iter: {
      auto It = Vars.find(E.name());
      assert(It != Vars.end() && "unbound iterator");
      return static_cast<double>(It->second);
    }
    case ExprKind::Param:
      return static_cast<double>(Prog.param(E.name()));
    case ExprKind::Unary:
      return applyUnary(E.unaryOp(), evalExpr(*E.operands()[0]));
    case ExprKind::Binary: {
      double L = evalExpr(*E.operands()[0]);
      double R = evalExpr(*E.operands()[1]);
      return applyBinary(E.binaryOp(), L, R);
    }
    case ExprKind::Select:
      return evalExpr(*E.operands()[0]) != 0.0
                 ? evalExpr(*E.operands()[1])
                 : evalExpr(*E.operands()[2]);
    }
    return 0.0;
  }

  void execCall(const CallNode &Call) {
    const auto &Args = Call.args();
    const auto &Dims = Call.dims();
    switch (Call.callee()) {
    case BlasKind::Gemm:
      gemm(Env.buffer(Args[0]).data(), Env.buffer(Args[1]).data(),
           Env.buffer(Args[2]).data(), Dims[0], Dims[1], Dims[2],
           Call.alpha(), Call.beta());
      break;
    case BlasKind::Syrk:
      syrk(Env.buffer(Args[0]).data(), Env.buffer(Args[1]).data(), Dims[0],
           Dims[1], Call.alpha(), Call.beta());
      break;
    case BlasKind::Syr2k:
      syr2k(Env.buffer(Args[0]).data(), Env.buffer(Args[1]).data(),
            Env.buffer(Args[2]).data(), Dims[0], Dims[1], Call.alpha(),
            Call.beta());
      break;
    case BlasKind::Gemv:
      gemv(Env.buffer(Args[0]).data(), Env.buffer(Args[1]).data(),
           Env.buffer(Args[2]).data(), Dims[0], Dims[1], Call.alpha(),
           Call.beta());
      break;
    }
  }

  void execNode(const NodePtr &Node) {
    if (const auto *C = dynCast<Computation>(Node)) {
      double Value = evalExpr(*C->rhs());
      Env.buffer(C->write().Array)[elementOffset(C->write())] = Value;
      return;
    }
    if (const auto *Call = dynCast<CallNode>(Node)) {
      execCall(*Call);
      return;
    }
    const auto *L = dynCast<Loop>(Node);
    assert(L && "unknown node kind");
    int64_t Lo = evalAffine(L->lower());
    int64_t Hi = evalAffine(L->upper());
    // Shadow, don't clobber: a nested loop may reuse an outer iterator
    // name (or a parameter name), and that binding must survive this loop.
    auto Previous = Vars.find(L->iterator());
    bool HadPrevious = Previous != Vars.end();
    int64_t PreviousValue = HadPrevious ? Previous->second : 0;
    for (int64_t I = Lo; I < Hi; I += L->step()) {
      Vars[L->iterator()] = I;
      for (const NodePtr &Child : L->body())
        execNode(Child);
    }
    if (HadPrevious)
      Vars[L->iterator()] = PreviousValue;
    else
      Vars.erase(L->iterator());
  }

  const Program &Prog;
  DataEnv &Env;
  ValueEnv Vars;
};

} // namespace

void daisy::interpret(const Program &Prog, DataEnv &Env) {
  Engine::shared().compile(Prog).run(Env);
}

void daisy::interpretTreeWalk(const Program &Prog, DataEnv &Env) {
  InterpreterImpl(Prog, Env).run();
}

DataEnv daisy::runProgram(const Program &Prog, uint64_t Seed) {
  return Engine::shared().compile(Prog).run(Seed);
}

bool daisy::semanticallyEquivalent(const Program &A, const Program &B,
                                   double Eps, uint64_t Seed) {
  // Mirror the batch API's caching convention: the reference \p A is the
  // program with a future (searches compare many candidates against one
  // original), so it goes through the shared engine; the candidate \p B
  // is typically checked exactly once — caching it would evict kernels
  // worth keeping, and wrapping it in a Kernel would pay a needless
  // whole-program clone, so it compiles and runs directly.
  DataEnv EnvA = Engine::shared().compile(A).run(Seed);
  DataEnv EnvB(B);
  EnvB.initDeterministic(Seed);
  ExecPlan::compile(B).run(EnvB);
  return DataEnv::maxAbsDifference(EnvA, EnvB, A) <= Eps;
}

std::vector<char> daisy::semanticallyEquivalentBatch(
    const Program &Ref, const std::vector<const Program *> &Candidates,
    double Eps, uint64_t Seed, int NumThreads) {
  // The reference is compiled and executed once for the whole batch; its
  // end state is read-only from here on and shared by every checker. The
  // compile goes through the shared engine, so repeated batches against
  // the same reference (every search epoch) skip even that one compile —
  // Engine.PlanCompiles counts real reference compiles; this counter
  // counts batch entries (each is at most one reference compile, where
  // the scalar API would pay one per comparison).
  addStatsCounter("SemEquivBatch.Batches");
  DataEnv RefEnv = Engine::shared().compile(Ref).run(Seed);

  std::vector<char> Results(Candidates.size(), 0);
  auto Check = [&](size_t I) {
    addStatsCounter("SemEquivBatch.Checks");
    const Program &Cand = *Candidates[I];
    // Candidates are transient (most exist for exactly one check), so
    // they are compiled directly instead of through the engine's plan
    // cache — caching them would evict kernels with a future.
    ExecPlan Plan = ExecPlan::compile(Cand);
    // Per-thread scratch: the environment and the execution context
    // survive across checks (and across batches) on each pool thread.
    // The environment is reused whenever the next candidate declares the
    // same arrays — variants of one kernel differ in loop structure, not
    // data, so reuse is the common case; the context is plan-agnostic
    // and reused always.
    static thread_local std::unique_ptr<DataEnv> Scratch;
    static thread_local ExecContext Ctx;
    if (Scratch && Scratch->resetFor(Cand, Seed)) {
      addStatsCounter("SemEquivBatch.EnvReuses");
    } else {
      Scratch = std::make_unique<DataEnv>(Cand);
      Scratch->initDeterministic(Seed);
    }
    Plan.run(*Scratch, Ctx);
    Results[I] = DataEnv::maxAbsDifference(RefEnv, *Scratch, Ref) <= Eps;
  };

  size_t Count = Candidates.size();
  int Threads = NumThreads > 0 ? NumThreads : ThreadPool::defaultThreadCount();
  int Lanes =
      static_cast<int>(std::min<size_t>(static_cast<size_t>(Threads), Count));
  if (Lanes <= 1) {
    for (size_t I = 0; I < Count; ++I)
      Check(I);
    return Results;
  }
  // Lane L verifies candidates L, L+Lanes, ...: concurrency is bounded by
  // the requested thread count and each verdict lands in its input slot.
  ThreadPool::global().run(Lanes, [&](int Lane) {
    for (size_t I = static_cast<size_t>(Lane); I < Count;
         I += static_cast<size_t>(Lanes))
      Check(I);
  });
  return Results;
}
