//===- exec/ThreadPool.cpp ------------------------------------------------==//
//
// Part of the daisy project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "exec/ThreadPool.h"

#include <algorithm>
#include <cstdlib>

using namespace daisy;

namespace {

/// True while the current thread is executing pool tasks (as a worker or
/// as a participating caller). Nested run() calls then execute inline,
/// which both prevents deadlock and keeps nested parallel regions serial.
thread_local bool InsidePool = false;

} // namespace

ThreadPool::ThreadPool(int Concurrency) {
  int WorkerCount = std::max(Concurrency, 1) - 1;
  Workers.reserve(static_cast<size_t>(WorkerCount));
  for (int I = 0; I < WorkerCount; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Stop = true;
  }
  JobCV.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::workOnJob() {
  for (;;) {
    int Index = NextIndex.fetch_add(1, std::memory_order_acq_rel);
    if (Index >= JobCount)
      return;
    (*JobTask)(Index);
    if (DoneCount.fetch_add(1, std::memory_order_acq_rel) + 1 == JobCount) {
      // Take the mutex so the waiter cannot check the predicate and sleep
      // between our increment and our notify.
      std::lock_guard<std::mutex> Lock(Mutex);
      DoneCV.notify_all();
    }
  }
}

void ThreadPool::workerLoop() {
  uint64_t SeenGeneration = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      JobCV.wait(Lock, [&] { return Stop || Generation != SeenGeneration; });
      if (Stop)
        return;
      SeenGeneration = Generation;
      // Announce, in the same critical section that observed the job,
      // that this thread is inside workOnJob: the next run() must not
      // reset the job fields while any worker may still read them.
      ++BusyWorkers;
    }
    InsidePool = true;
    workOnJob();
    InsidePool = false;
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      if (--BusyWorkers == 0)
        IdleCV.notify_all();
    }
  }
}

void ThreadPool::run(int TaskCount, const std::function<void(int)> &Task) {
  if (TaskCount <= 0)
    return;
  if (InsidePool || Workers.empty() || TaskCount == 1) {
    for (int I = 0; I < TaskCount; ++I)
      Task(I);
    return;
  }
  std::lock_guard<std::mutex> RunLock(RunMutex);
  {
    std::unique_lock<std::mutex> Lock(Mutex);
    // A worker may linger in workOnJob after the previous job completed
    // (between claiming an exhausted index and re-checking the bounds).
    // Installing the next job while it is there would race its reads of
    // JobTask/JobCount and re-issue indices it already claimed, so wait
    // for every worker to leave first. Completion of the previous job
    // guarantees they leave without blocking.
    IdleCV.wait(Lock, [&] { return BusyWorkers == 0; });
    JobTask = &Task;
    JobCount = TaskCount;
    DoneCount.store(0, std::memory_order_relaxed);
    NextIndex.store(0, std::memory_order_release);
    ++Generation;
  }
  JobCV.notify_all();
  InsidePool = true;
  workOnJob();
  InsidePool = false;
  {
    std::unique_lock<std::mutex> Lock(Mutex);
    DoneCV.wait(Lock, [&] {
      return DoneCount.load(std::memory_order_acquire) == JobCount;
    });
    // JobTask intentionally stays set: a straggler may still compare its
    // stale index against JobCount, and the fields remain valid until the
    // next install (which waits for BusyWorkers == 0). Stragglers never
    // dereference JobTask — every index of a completed job was claimed,
    // so their claims are out of bounds.
  }
}

int ThreadPool::defaultThreadCount() {
  static const int Cached = [] {
    if (const char *Env = std::getenv("DAISY_THREADS")) {
      long Value = std::strtol(Env, nullptr, 10);
      if (Value >= 1 && Value <= 1024)
        return static_cast<int>(Value);
    }
    unsigned Hardware = std::thread::hardware_concurrency();
    return Hardware ? static_cast<int>(Hardware) : 1;
  }();
  return Cached;
}

ThreadPool &ThreadPool::global() {
  static ThreadPool Pool(std::max(defaultThreadCount(), 4));
  return Pool;
}
