//===- exec/DataEnv.h - Array storage for execution --------------*- C++ -*-=//
//
// Part of the daisy project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Concrete array storage used by the interpreter, plus deterministic
/// initialization and comparison helpers for the semantics tests.
///
/// Buffers are stored densely, indexed by a slot id that follows the order
/// of Program::arrays() at construction. The compiled execution plan
/// (exec/ExecPlan.h) resolves array names to slot ids once at compile time
/// and addresses buffers by slot at run time; the name-based API remains
/// for tests and ad-hoc inspection.
///
//===----------------------------------------------------------------------===//

#ifndef DAISY_EXEC_DATAENV_H
#define DAISY_EXEC_DATAENV_H

#include "ir/Program.h"

#include <map>
#include <string>
#include <vector>

namespace daisy {

/// Owns one buffer per declared array of a program.
class DataEnv {
public:
  /// Allocates zero-initialized storage for every array of \p Prog. Slot
  /// \c I holds the buffer of \c Prog.arrays()[I].
  explicit DataEnv(const Program &Prog);

  /// Mutable buffer of \p Array; asserts if unknown.
  std::vector<double> &buffer(const std::string &Array);
  const std::vector<double> &buffer(const std::string &Array) const;

  /// Mutable buffer of slot \p Slot; asserts if out of range.
  std::vector<double> &bufferAt(size_t Slot);
  const std::vector<double> &bufferAt(size_t Slot) const;

  /// Number of allocated buffers.
  size_t slotCount() const { return Buffers.size(); }

  /// Slot id of \p Array; asserts if unknown.
  size_t slotOf(const std::string &Array) const;

  /// True if \p Array has storage here.
  bool contains(const std::string &Array) const;

  /// Estimated heap footprint of the buffers (and name tables) in bytes.
  /// Feeds the engine memory budget's accounting of pooled tree-walk
  /// environments.
  size_t memoryBytes() const;

  /// Deterministically fills every non-transient array with a PolyBench-
  /// style pattern derived from \p Seed and the element index.
  void initDeterministic(uint64_t Seed = 1);

  /// Prepares this environment for a fresh deterministic run of \p Prog
  /// without reallocating: when \p Prog declares exactly the arrays this
  /// environment was built for (names, element counts, and transient
  /// flags, in slot order), transient buffers are zeroed, observable
  /// buffers are refilled from \p Seed, and the call returns true — the
  /// state is then indistinguishable from DataEnv(Prog) +
  /// initDeterministic(Seed). Returns false (environment untouched) on
  /// any mismatch; the caller must allocate a fresh environment. This is
  /// how batch equivalence checking reuses per-thread scratch across
  /// candidate programs.
  bool resetFor(const Program &Prog, uint64_t Seed = 1);

  /// Largest absolute difference over all non-transient arrays present in
  /// both environments; asserts on shape mismatch.
  static double maxAbsDifference(const DataEnv &A, const DataEnv &B,
                                 const Program &Prog);

private:
  std::vector<std::vector<double>> Buffers;
  std::vector<std::string> SlotNames;
  std::map<std::string, size_t> Slots;
  std::vector<size_t> NonTransient;
  std::vector<bool> TransientFlags; ///< Per-slot, for resetFor matching.
};

} // namespace daisy

#endif // DAISY_EXEC_DATAENV_H
