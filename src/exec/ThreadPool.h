//===- exec/ThreadPool.h - Persistent fork-join worker pool ------*- C++ -*-=//
//
// Part of the daisy project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small persistent fork-join thread pool used by the compiled execution
/// plan to run loops carrying the `parallel` mark. There is no work
/// stealing: a job is a dense index range [0, Count) and idle threads claim
/// the next index from a shared atomic counter. Workers park on a condition
/// variable between jobs, so a pool costs nothing while execution is
/// serial.
///
/// The pool expresses W-way parallelism with W-1 worker threads: the
/// caller of run() executes tasks alongside the workers and returns only
/// when every task has completed (fork-join).
///
//===----------------------------------------------------------------------===//

#ifndef DAISY_EXEC_THREADPOOL_H
#define DAISY_EXEC_THREADPOOL_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace daisy {

class ThreadPool {
public:
  /// Creates a pool expressing \p Concurrency-way parallelism
  /// (Concurrency - 1 parked worker threads plus the calling thread).
  explicit ThreadPool(int Concurrency);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Number of threads that can execute tasks concurrently (workers plus
  /// the caller of run()).
  int concurrency() const { return static_cast<int>(Workers.size()) + 1; }

  /// Runs Task(0) .. Task(TaskCount - 1), each exactly once, distributed
  /// over the workers and the calling thread; blocks until all complete.
  /// Tasks must not throw. Reentrant calls (a task calling run() on any
  /// pool) and calls from within a worker degrade to serial execution on
  /// the calling thread, so nested parallel regions cannot deadlock.
  /// Concurrent top-level calls from different user threads are serialized.
  void run(int TaskCount, const std::function<void(int)> &Task);

  /// Thread count requested from the environment: DAISY_THREADS if set to
  /// a positive integer, else std::thread::hardware_concurrency(), else 1.
  static int defaultThreadCount();

  /// The process-wide pool used by ExecPlan::run. Sized to at least 4 so
  /// correctness tests exercise real concurrency even on small CI
  /// machines; sizing the *work* is the plan's NumThreads option, not the
  /// pool.
  static ThreadPool &global();

private:
  void workerLoop();
  void workOnJob();

  std::vector<std::thread> Workers;

  std::mutex Mutex;
  std::condition_variable JobCV;  ///< Signals a new job (or shutdown).
  std::condition_variable DoneCV; ///< Signals job completion.
  std::condition_variable IdleCV; ///< Signals all workers left workOnJob.
  std::mutex RunMutex;            ///< Serializes top-level run() calls.

  const std::function<void(int)> *JobTask = nullptr;
  int JobCount = 0;
  int BusyWorkers = 0; ///< Workers currently inside workOnJob.
  std::atomic<int> NextIndex{0};
  std::atomic<int> DoneCount{0};
  uint64_t Generation = 0;
  bool Stop = false;
};

} // namespace daisy

#endif // DAISY_EXEC_THREADPOOL_H
