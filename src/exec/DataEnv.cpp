//===- exec/DataEnv.cpp ---------------------------------------------------==//
//
// Part of the daisy project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "exec/DataEnv.h"

#include "support/Hashing.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace daisy;

DataEnv::DataEnv(const Program &Prog) {
  Buffers.reserve(Prog.arrays().size());
  SlotNames.reserve(Prog.arrays().size());
  for (const ArrayDecl &Decl : Prog.arrays()) {
    size_t Slot = Buffers.size();
    Buffers.emplace_back(
        static_cast<size_t>(std::max<int64_t>(Decl.elementCount(), 1)), 0.0);
    SlotNames.push_back(Decl.Name);
    Slots.emplace(Decl.Name, Slot);
    TransientFlags.push_back(Decl.Transient);
    if (!Decl.Transient)
      NonTransient.push_back(Slot);
  }
}

std::vector<double> &DataEnv::buffer(const std::string &Array) {
  return Buffers[slotOf(Array)];
}

const std::vector<double> &DataEnv::buffer(const std::string &Array) const {
  return Buffers[slotOf(Array)];
}

std::vector<double> &DataEnv::bufferAt(size_t Slot) {
  assert(Slot < Buffers.size() && "slot out of range");
  return Buffers[Slot];
}

const std::vector<double> &DataEnv::bufferAt(size_t Slot) const {
  assert(Slot < Buffers.size() && "slot out of range");
  return Buffers[Slot];
}

size_t DataEnv::slotOf(const std::string &Array) const {
  auto It = Slots.find(Array);
  assert(It != Slots.end() && "unknown array");
  return It->second;
}

bool DataEnv::contains(const std::string &Array) const {
  return Slots.count(Array) != 0;
}

size_t DataEnv::memoryBytes() const {
  size_t Bytes = sizeof(DataEnv);
  for (const std::vector<double> &Buffer : Buffers)
    Bytes += Buffer.capacity() * sizeof(double) + sizeof(Buffer);
  for (const std::string &Name : SlotNames)
    Bytes += Name.capacity() + sizeof(Name);
  // Slots map nodes and NonTransient/TransientFlags are noise next to the
  // buffers; a nominal per-entry charge keeps empty programs non-zero.
  Bytes += Slots.size() * (sizeof(std::pair<std::string, size_t>) + 32) +
           NonTransient.capacity() * sizeof(size_t);
  return Bytes;
}

void DataEnv::initDeterministic(uint64_t Seed) {
  for (size_t Slot : NonTransient) {
    std::vector<double> &Buffer = Buffers[Slot];
    // Mix the array name into the pattern so different operands differ.
    uint64_t NameHash = fnv1a(SlotNames[Slot]);
    double Scale = 1.0 + static_cast<double>((NameHash ^ Seed) % 7);
    for (size_t I = 0; I < Buffer.size(); ++I)
      Buffer[I] =
          std::fmod(Scale * static_cast<double>(I % 251) + 1.0, 13.0) / 13.0;
  }
}

bool DataEnv::resetFor(const Program &Prog, uint64_t Seed) {
  if (Prog.arrays().size() != Buffers.size())
    return false;
  for (size_t Slot = 0; Slot < Buffers.size(); ++Slot) {
    const ArrayDecl &Decl = Prog.arrays()[Slot];
    if (Decl.Name != SlotNames[Slot] ||
        Decl.Transient != TransientFlags[Slot] ||
        static_cast<size_t>(std::max<int64_t>(Decl.elementCount(), 1)) !=
            Buffers[Slot].size())
      return false;
  }
  // Transients return to their allocation-time zeros; initDeterministic
  // overwrites every observable element, so the combination reproduces a
  // fresh environment exactly.
  for (size_t Slot = 0; Slot < Buffers.size(); ++Slot)
    if (TransientFlags[Slot])
      std::fill(Buffers[Slot].begin(), Buffers[Slot].end(), 0.0);
  initDeterministic(Seed);
  return true;
}

double DataEnv::maxAbsDifference(const DataEnv &A, const DataEnv &B,
                                 const Program &Prog) {
  double MaxDiff = 0.0;
  for (const ArrayDecl &Decl : Prog.arrays()) {
    if (Decl.Transient)
      continue;
    if (!A.contains(Decl.Name) || !B.contains(Decl.Name))
      continue;
    const auto &BufA = A.buffer(Decl.Name);
    const auto &BufB = B.buffer(Decl.Name);
    assert(BufA.size() == BufB.size() && "shape mismatch");
    for (size_t I = 0; I < BufA.size(); ++I)
      MaxDiff = std::max(MaxDiff, std::fabs(BufA[I] - BufB[I]));
  }
  return MaxDiff;
}
