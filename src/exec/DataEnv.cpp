//===- exec/DataEnv.cpp ---------------------------------------------------==//
//
// Part of the daisy project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "exec/DataEnv.h"

#include <cassert>
#include <cmath>

using namespace daisy;

DataEnv::DataEnv(const Program &Prog) {
  for (const ArrayDecl &Decl : Prog.arrays()) {
    Buffers.emplace(Decl.Name, std::vector<double>(
                                   static_cast<size_t>(
                                       std::max<int64_t>(
                                           Decl.elementCount(), 1)),
                                   0.0));
    if (!Decl.Transient)
      NonTransient.push_back(Decl.Name);
  }
}

std::vector<double> &DataEnv::buffer(const std::string &Array) {
  auto It = Buffers.find(Array);
  assert(It != Buffers.end() && "unknown array");
  return It->second;
}

const std::vector<double> &DataEnv::buffer(const std::string &Array) const {
  auto It = Buffers.find(Array);
  assert(It != Buffers.end() && "unknown array");
  return It->second;
}

bool DataEnv::contains(const std::string &Array) const {
  return Buffers.count(Array) != 0;
}

void DataEnv::initDeterministic(uint64_t Seed) {
  for (const std::string &Name : NonTransient) {
    std::vector<double> &Buffer = Buffers.at(Name);
    // Mix the array name into the pattern so different operands differ.
    uint64_t NameHash = 1469598103934665603ull;
    for (char C : Name) {
      NameHash ^= static_cast<unsigned char>(C);
      NameHash *= 1099511628211ull;
    }
    double Scale = 1.0 + static_cast<double>((NameHash ^ Seed) % 7);
    for (size_t I = 0; I < Buffer.size(); ++I)
      Buffer[I] =
          std::fmod(Scale * static_cast<double>(I % 251) + 1.0, 13.0) / 13.0;
  }
}

double DataEnv::maxAbsDifference(const DataEnv &A, const DataEnv &B,
                                 const Program &Prog) {
  double MaxDiff = 0.0;
  for (const ArrayDecl &Decl : Prog.arrays()) {
    if (Decl.Transient)
      continue;
    if (!A.contains(Decl.Name) || !B.contains(Decl.Name))
      continue;
    const auto &BufA = A.buffer(Decl.Name);
    const auto &BufB = B.buffer(Decl.Name);
    assert(BufA.size() == BufB.size() && "shape mismatch");
    for (size_t I = 0; I < BufA.size(); ++I)
      MaxDiff = std::max(MaxDiff, std::fabs(BufA[I] - BufB[I]));
  }
  return MaxDiff;
}
