//===- exec/Interpreter.h - Reference interpreter -----------------*- C++ -*-=//
//
// Part of the daisy project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tree-walking interpreter defining the semantics of the loop-nest IR.
/// It is the ground truth for every transformation test: a transformation
/// is correct iff interpreting the transformed program produces the same
/// observable arrays as the original.
///
/// Layering note: everything here except interpretTreeWalk routes through
/// the process-wide engine's plan cache and is therefore *defined* in
/// api/Facade.cpp — the declarations stay in this header (they are
/// contracts over Program/DataEnv only), but exec/ sources never include
/// the facade.
///
//===----------------------------------------------------------------------===//

#ifndef DAISY_EXEC_INTERPRETER_H
#define DAISY_EXEC_INTERPRETER_H

#include "exec/DataEnv.h"
#include "ir/Program.h"

namespace daisy {

/// Executes \p Prog on \p Env; Call nodes run the reference BLAS kernels.
/// Dispatches to the compiled execution plan (exec/ExecPlan.h) through
/// the process-wide engine (api/Engine.h), so repeated calls on
/// structurally identical programs compile once and hit the plan cache.
/// Default options apply: `parallel` marks execute on the thread pool
/// when DAISY_THREADS (or the hardware concurrency) exceeds 1, with
/// results bit-identical to serial execution; vector marks do not change
/// semantics. Use Engine::compile / Kernel::run directly to pin
/// PlanOptions or to run on caller-owned buffers.
void interpret(const Program &Prog, DataEnv &Env);

/// Executes \p Prog with the original tree-walking evaluator. This is the
/// executable semantics definition the compiled plan is differentially
/// tested against; it is much slower than interpret().
void interpretTreeWalk(const Program &Prog, DataEnv &Env);

/// Convenience: allocates an environment, initializes it deterministically
/// with \p Seed, runs the program, and returns the environment.
DataEnv runProgram(const Program &Prog, uint64_t Seed = 1);

/// True if \p A and \p B compute the same observable arrays on a
/// deterministic input (tolerance \p Eps, seed \p Seed). Both programs
/// must declare the same non-transient arrays.
bool semanticallyEquivalent(const Program &A, const Program &B,
                            double Eps = 1e-9, uint64_t Seed = 1);

/// Batch equivalence: checks every program of \p Candidates against
/// \p Ref, concurrently over the thread pool, and returns the verdicts in
/// input order (Result[I] != 0 iff semanticallyEquivalent(Ref,
/// *Candidates[I], Eps, Seed) would return true). The scheduler search
/// verifies whole candidate sets at once, so the hot-path costs are paid
/// per batch instead of per check:
///
/// - the reference program is compiled and executed at most once per
///   batch (counter "SemEquivBatch.Batches" counts batch entries;
///   "Engine.PlanCompiles" counts actual compiles, which the shared
///   engine's plan cache can elide entirely across batches — the scalar
///   API re-runs the reference for every comparison);
/// - each pool thread keeps its data environment alive across checks and
///   reuses it whenever the next candidate declares the same arrays
///   (DataEnv::resetFor; counter "SemEquivBatch.EnvReuses"), so register
///   scratch and buffers are not reallocated per candidate.
///
/// Verdicts are element-wise independent and deterministic, hence
/// identical at every \p NumThreads (0 resolves to
/// ThreadPool::defaultThreadCount()).
std::vector<char>
semanticallyEquivalentBatch(const Program &Ref,
                            const std::vector<const Program *> &Candidates,
                            double Eps = 1e-9, uint64_t Seed = 1,
                            int NumThreads = 0);

} // namespace daisy

#endif // DAISY_EXEC_INTERPRETER_H
