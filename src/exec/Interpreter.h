//===- exec/Interpreter.h - Reference interpreter -----------------*- C++ -*-=//
//
// Part of the daisy project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tree-walking interpreter defining the semantics of the loop-nest IR.
/// It is the ground truth for every transformation test: a transformation
/// is correct iff interpreting the transformed program produces the same
/// observable arrays as the original.
///
//===----------------------------------------------------------------------===//

#ifndef DAISY_EXEC_INTERPRETER_H
#define DAISY_EXEC_INTERPRETER_H

#include "exec/DataEnv.h"
#include "ir/Program.h"

namespace daisy {

/// Executes \p Prog on \p Env; Call nodes run the reference BLAS kernels.
/// Dispatches to the compiled execution plan (exec/ExecPlan.h) with
/// default options: `parallel` marks execute on the thread pool when
/// DAISY_THREADS (or the hardware concurrency) exceeds 1, with results
/// bit-identical to serial execution; vector marks do not change
/// semantics. Use ExecPlan::compile directly to amortize compilation over
/// repeated runs or to pin PlanOptions.
void interpret(const Program &Prog, DataEnv &Env);

/// Executes \p Prog with the original tree-walking evaluator. This is the
/// executable semantics definition the compiled plan is differentially
/// tested against; it is much slower than interpret().
void interpretTreeWalk(const Program &Prog, DataEnv &Env);

/// Convenience: allocates an environment, initializes it deterministically
/// with \p Seed, runs the program, and returns the environment.
DataEnv runProgram(const Program &Prog, uint64_t Seed = 1);

/// True if \p A and \p B compute the same observable arrays on a
/// deterministic input (tolerance \p Eps, seed \p Seed). Both programs
/// must declare the same non-transient arrays.
bool semanticallyEquivalent(const Program &A, const Program &B,
                            double Eps = 1e-9, uint64_t Seed = 1);

} // namespace daisy

#endif // DAISY_EXEC_INTERPRETER_H
