//===- exec/ExecPlan.h - Compiled flat execution plan ------------*- C++ -*-=//
//
// Part of the daisy project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A compile-then-run execution engine for the loop-nest IR.
///
/// The tree-walking interpreter resolves every array name, iterator name,
/// and affine subscript through string maps for every element it touches.
/// ExecPlan pays all name resolution once, at compile time:
///
/// - array names become dense buffer slot ids (DataEnv slot order),
/// - loop iterators become depth-indexed registers (no ValueEnv at run
///   time),
/// - every affine subscript is folded row-major into one LinearForm
///   `constant + sum coeff_d * reg_d` over the loop registers
///   (ir/AffineExpr.h linearizeSubscripts), with program parameters folded
///   into the constant,
/// - every right-hand-side expression tree is flattened into a postfix
///   bytecode tape evaluated over a small value stack,
/// - an innermost loop whose body is a single computation is fused into
///   one InnerStmt op: the loop-invariant part of each access offset is
///   hoisted out of the loop and offsets advance by a precomputed stride
///   per iteration (stride-1 for the common contiguous case).
///
/// Semantics are identical to the tree-walker (exec/Interpreter.h), which
/// remains the executable definition of the IR; differential tests assert
/// bit-identical results on every frontend kernel.
///
//===----------------------------------------------------------------------===//

#ifndef DAISY_EXEC_EXECPLAN_H
#define DAISY_EXEC_EXECPLAN_H

#include "exec/DataEnv.h"
#include "ir/Program.h"

#include <cstdint>
#include <vector>

namespace daisy {

/// A linear form `Constant + sum Coeff * Regs[Reg]` over the depth-indexed
/// loop registers, produced at compile time from an AffineExpr with every
/// parameter folded into the constant.
struct LinearForm {
  int64_t Constant = 0;
  /// Sparse (register, coefficient) terms; subscripts typically reference
  /// only one or two of the enclosing loops.
  std::vector<std::pair<int32_t, int64_t>> Terms;

  int64_t eval(const int64_t *Regs) const {
    int64_t Result = Constant;
    for (const auto &[Reg, Coeff] : Terms)
      Result += Coeff * Regs[Reg];
    return Result;
  }
};

/// One resolved array access of a compiled statement: buffer slot plus the
/// linearized element offset. For fast-path (InnerStmt) statements, Base
/// excludes the innermost iterator's contribution, which is applied as
/// `InnerCoeff * i` at loop entry and advanced by `InnerStep` per
/// iteration.
struct PlanAccess {
  int32_t Slot = -1;
  LinearForm Base;
  int64_t InnerCoeff = 0; ///< Offset delta per unit of the inner iterator.
  int64_t InnerStep = 0;  ///< Offset delta per inner-loop iteration.
  /// Per-dimension (subscript, extent) pairs, kept so debug builds can
  /// assert each dimension separately (a compensated violation like
  /// A[i+1][j-8] can linearize to an in-range offset).
  std::vector<std::pair<LinearForm, int64_t>> DimChecks;
};

/// Postfix bytecode of a right-hand-side expression. Select compiles to
/// JumpIfZero/Jump so only the taken branch is evaluated, matching the
/// tree-walker's short-circuit semantics (a select may guard an otherwise
/// out-of-bounds read).
enum class TapeOpKind : uint8_t {
  Const,      ///< Push immediate value.
  Load,       ///< Push element of load access #A.
  IterReg,    ///< Push value of loop register #A.
  Unary,      ///< Apply UnaryOpKind #Op to the top of stack.
  Binary,     ///< Apply BinaryOpKind #Op to the two topmost values.
  JumpIfZero, ///< Pop; continue at instruction #A when the value is 0.
  Jump        ///< Continue at instruction #A.
};

struct TapeInstr {
  TapeOpKind Kind = TapeOpKind::Const;
  uint8_t Op = 0; ///< UnaryOpKind / BinaryOpKind payload.
  int32_t A = 0;  ///< Load access index or register index.
  double Value = 0.0;
};

/// One op of the flat plan. Loops become LoopBegin/LoopEnd pairs driving a
/// register; computations become Stmt (or fused InnerStmt) ops; BLAS calls
/// keep their resolved argument slots.
struct PlanOp {
  enum class Kind : uint8_t { LoopBegin, LoopEnd, Stmt, InnerStmt, Call };
  Kind K = Kind::Stmt;

  // LoopBegin / LoopEnd / InnerStmt loop control.
  int32_t Reg = -1;
  LinearForm Lower, Upper;
  int64_t Step = 1;
  /// LoopBegin: pc one past the matching LoopEnd (zero-trip skip).
  /// LoopEnd: pc of the first body op (back edge).
  int32_t Jump = -1;

  // Stmt / InnerStmt payload.
  std::vector<TapeInstr> Tape;
  std::vector<PlanAccess> Loads;
  PlanAccess Write;

  // Call payload.
  BlasKind Callee = BlasKind::Gemm;
  std::vector<int32_t> ArgSlots;
  std::vector<int64_t> CallDims;
  double Alpha = 1.0, Beta = 1.0;
};

/// A program compiled to a flat op sequence, executable against any
/// DataEnv allocated for the same program.
class ExecPlan {
public:
  /// Compile-time statistics (for tests and the micro benchmark).
  struct Stats {
    size_t Ops = 0;
    size_t Statements = 0;         ///< Stmt + InnerStmt ops.
    size_t FastPathStatements = 0; ///< InnerStmt ops only.
    int MaxLoopDepth = 0;
  };

  /// Lowers \p Prog. Every parameter referenced by bounds or subscripts
  /// must be bound in the program; asserts otherwise.
  static ExecPlan compile(const Program &Prog);

  /// Executes the plan on \p Env, which must have been allocated from the
  /// same program (slot order is the contract; see DataEnv).
  void run(DataEnv &Env) const;

  Stats stats() const;

private:
  std::vector<PlanOp> Ops;
  int MaxDepth = 0;
  size_t MaxStack = 0;
  size_t MaxLoads = 0;

  friend class PlanCompiler;
};

} // namespace daisy

#endif // DAISY_EXEC_EXECPLAN_H
