//===- exec/ExecPlan.h - Compiled flat execution plan ------------*- C++ -*-=//
//
// Part of the daisy project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A compile-then-run execution engine for the loop-nest IR.
///
/// The tree-walking interpreter resolves every array name, iterator name,
/// and affine subscript through string maps for every element it touches.
/// ExecPlan pays all name resolution once, at compile time:
///
/// - array names become dense buffer slot ids (DataEnv slot order),
/// - loop iterators become depth-indexed registers (no ValueEnv at run
///   time),
/// - every affine subscript is folded row-major into one LinearForm
///   `constant + sum coeff_d * reg_d` over the loop registers
///   (ir/AffineExpr.h linearizeSubscripts), with program parameters folded
///   into the constant,
/// - every right-hand-side expression tree is flattened into a postfix
///   bytecode tape evaluated over a small value stack,
/// - an innermost loop whose body consists only of computations (one or
///   many — the fissioned and the fused CLOUDSC shapes both qualify) is
///   fused into one InnerStmt op: the loop-invariant part of each access
///   offset is hoisted out of the loop and offsets advance by a
///   precomputed stride per iteration,
/// - a single-statement InnerStmt whose expression matches a common kernel
///   shape (copy, scale, scaled stencil sum, axpy, fma-accumulate) is
///   lowered to a dedicated inner kernel: a tight loop over raw pointers
///   with no tape dispatch, auto-vectorizable when the strides are unit,
/// - a loop carrying the `parallel` mark (placed by transform/Parallelize,
///   proven dependence-free by analysis/Legality) is executed by chunking
///   its iteration range over the persistent thread pool
///   (exec/ThreadPool.h), with a private register file per thread and
///   per-thread private copies of the transient buffers the legality
///   analysis privatized (analysis/Legality.h privatizableArraysUnder —
///   the same helper the transform used, so marking and execution agree).
///
/// Semantics are identical to the tree-walker (exec/Interpreter.h), which
/// remains the executable definition of the IR; differential tests assert
/// bit-identical results on every frontend kernel, at every thread count,
/// with specialization on and off. Parallel loops carry no dependence
/// (atomic-reduction marks are executed serially), so no atomics and no
/// nondeterministic reduction orders exist anywhere in the engine.
///
//===----------------------------------------------------------------------===//

#ifndef DAISY_EXEC_EXECPLAN_H
#define DAISY_EXEC_EXECPLAN_H

#include "exec/DataEnv.h"
#include "ir/Program.h"

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

namespace daisy {

/// A linear form `Constant + sum Coeff * Regs[Reg]` over the depth-indexed
/// loop registers, produced at compile time from an AffineExpr with every
/// parameter folded into the constant.
struct LinearForm {
  int64_t Constant = 0;
  /// Sparse (register, coefficient) terms; subscripts typically reference
  /// only one or two of the enclosing loops.
  std::vector<std::pair<int32_t, int64_t>> Terms;

  int64_t eval(const int64_t *Regs) const {
    int64_t Result = Constant;
    for (const auto &[Reg, Coeff] : Terms)
      Result += Coeff * Regs[Reg];
    return Result;
  }

  bool operator==(const LinearForm &Other) const {
    return Constant == Other.Constant && Terms == Other.Terms;
  }
};

/// One resolved array access of a compiled statement: buffer slot plus the
/// linearized element offset. For fast-path (InnerStmt) statements, Base
/// excludes the innermost iterator's contribution, which is applied as
/// `InnerCoeff * i` at loop entry and advanced by `InnerStep` per
/// iteration.
struct PlanAccess {
  int32_t Slot = -1;
  LinearForm Base;
  int64_t InnerCoeff = 0; ///< Offset delta per unit of the inner iterator.
  int64_t InnerStep = 0;  ///< Offset delta per inner-loop iteration.
  /// Per-dimension (subscript, extent) pairs, kept so debug builds can
  /// assert each dimension separately (a compensated violation like
  /// A[i+1][j-8] can linearize to an in-range offset).
  std::vector<std::pair<LinearForm, int64_t>> DimChecks;
};

/// Postfix bytecode of a right-hand-side expression. Select compiles to
/// JumpIfZero/Jump so only the taken branch is evaluated, matching the
/// tree-walker's short-circuit semantics (a select may guard an otherwise
/// out-of-bounds read).
enum class TapeOpKind : uint8_t {
  Const,      ///< Push immediate value.
  Load,       ///< Push element of load access #A.
  IterReg,    ///< Push value of loop register #A.
  Unary,      ///< Apply UnaryOpKind #Op to the top of stack.
  Binary,     ///< Apply BinaryOpKind #Op to the two topmost values.
  JumpIfZero, ///< Pop; continue at instruction #A when the value is 0.
  Jump        ///< Continue at instruction #A.
};

struct TapeInstr {
  TapeOpKind Kind = TapeOpKind::Const;
  uint8_t Op = 0; ///< UnaryOpKind / BinaryOpKind payload.
  int32_t A = 0;  ///< Load access index or register index.
  double Value = 0.0;
};

/// Specialized inner-loop forms a single-statement InnerStmt can lower to
/// when its expression matches. Every kernel performs the exact scalar
/// operations of the tape in the exact order, so results stay bit-identical;
/// what it removes is the per-element tape dispatch (and, for FmaAcc, the
/// store/reload of the loop-invariant accumulator).
enum class InnerKernel : uint8_t {
  None,      ///< Generic tape evaluation.
  Copy,      ///< W = L0
  Scale,     ///< W = c * L0 (or L0 * c; CoefLeft)
  ScaledSum, ///< W = c * (L0 + L1 + ...), coefficient optional (HasCoef)
  Axpy,      ///< W = L0 + c * L1 (or L1 * c)
  Fma,       ///< W = L0 + product, streaming (see ProdShape)
  FmaAcc     ///< W += product with W loop-invariant: register accumulator
};

/// Association shape of the product term of Fma / FmaAcc, preserved so the
/// kernel multiplies in the same order as the expression tree.
enum class ProdShape : uint8_t {
  AB,  ///< L1 * L2
  CAB, ///< c * (L1 * L2)
  CA_B ///< (c * L1) * L2
};

/// One compiled computation: write access, load accesses, and the postfix
/// tape over them — plus the specialized kernel form if one matched.
struct CompiledStmt {
  std::vector<TapeInstr> Tape;
  std::vector<PlanAccess> Loads;
  PlanAccess Write;
  int32_t OffsetBase = 0; ///< First index into the per-op offset scratch.

  InnerKernel Kernel = InnerKernel::None;
  ProdShape Prod = ProdShape::AB;
  double Coef = 0.0;
  bool CoefLeft = false; ///< Coefficient is the left multiplicand.
  bool HasCoef = false;  ///< ScaledSum: coefficient present at all.
};

/// One op of the flat plan. Loops become LoopBegin/LoopEnd pairs driving a
/// register; computations become Stmt (or fused InnerStmt) ops; BLAS calls
/// keep their resolved argument slots.
struct PlanOp {
  enum class Kind : uint8_t { LoopBegin, LoopEnd, Stmt, InnerStmt, Call };
  Kind K = Kind::Stmt;

  // LoopBegin / LoopEnd / InnerStmt loop control.
  int32_t Reg = -1;
  LinearForm Lower, Upper;
  int64_t Step = 1;
  /// LoopBegin: pc one past the matching LoopEnd (zero-trip skip).
  /// LoopEnd: pc of the first body op (back edge).
  int32_t Jump = -1;

  /// LoopBegin / InnerStmt: fork the iteration range over the thread pool
  /// (the loop carried a trusted `parallel` mark without atomic
  /// reduction).
  bool Parallel = false;
  /// Parallel ops: (slot, element count) of transient buffers each thread
  /// must replace with a private copy of the shared buffer (its contents
  /// are invisible to the loop — legality proves define-before-use — but
  /// carrying them keeps the lastprivate copy-back exact for elements the
  /// loop never writes).
  std::vector<std::pair<int32_t, int64_t>> PrivateSlots;

  // Stmt (exactly one) / InnerStmt (one or more) payload.
  std::vector<CompiledStmt> Stmts;

  // Call payload.
  BlasKind Callee = BlasKind::Gemm;
  std::vector<int32_t> ArgSlots;
  std::vector<int64_t> CallDims;
  double Alpha = 1.0, Beta = 1.0;
};

/// Knobs of ExecPlan::compile.
struct PlanOptions {
  /// Number of chunks a parallel loop's range is split into (and the upper
  /// bound on threads executing them). 1 executes everything serially;
  /// 0 resolves to ThreadPool::defaultThreadCount() (DAISY_THREADS or the
  /// hardware concurrency).
  int NumThreads = 0;
  /// Lower matching single-statement inner loops to specialized kernels.
  /// Off compiles every statement to the generic tape (used by the
  /// differential tests to isolate the two mechanisms).
  bool EnableSpecialization = true;
};

/// Digest of everything in \p Options a compiled plan depends on, with
/// NumThreads resolved the way ExecPlan::compile resolves it. Keys the
/// engine's plan cache (api/Engine.h) together with the marks-aware
/// structural hash and the program data digest.
uint64_t planOptionsDigest(const PlanOptions &Options);

/// A non-owning view of one dense double buffer (the element storage of
/// one declared array). The zero-copy execution path addresses
/// caller-owned memory through a table of these, one per DataEnv slot.
struct BufferRef {
  double *Data = nullptr;
  size_t Size = 0; ///< Element count, not bytes.
};

/// Reusable per-run execution scratch: the loop-register file, tape value
/// stack, hoisted-offset scratch, and slot table one executing thread
/// needs. ExecPlan::run allocates this state afresh when none is passed;
/// handing the same context to repeated runs reuses the allocations
/// instead (the per-run cost drops to a few bounds-checked resizes). A
/// context is plan-agnostic — it grows to fit whatever plan it is used
/// with — but must not be shared by concurrently executing runs; pool one
/// context per thread (api/Kernel.h does exactly that).
class ExecContext {
public:
  ExecContext();
  ~ExecContext();
  ExecContext(ExecContext &&Other) noexcept;
  ExecContext &operator=(ExecContext &&Other) noexcept;
  ExecContext(const ExecContext &) = delete;
  ExecContext &operator=(const ExecContext &) = delete;

  /// Estimated heap footprint of this context's scratch in bytes
  /// (capacity-based, so it reflects what is actually held, not what the
  /// last run touched). Feeds the engine memory budget's context-pool
  /// accounting.
  size_t memoryBytes() const;

private:
  friend class ExecPlan;
  friend class PlanExecutor;
  struct State;
  std::unique_ptr<State> St;
};

/// Splits the iteration set {Lo, Lo+Step, ...} ∩ [Lo, Hi) into at most
/// \p MaxChunks contiguous, step-aligned, non-empty half-open ranges of
/// near-equal iteration counts, in iteration order. Empty ranges yield no
/// chunks; ranges with fewer iterations than MaxChunks yield one chunk per
/// iteration. \p Step must be positive.
std::vector<std::pair<int64_t, int64_t>>
chunkLoopRange(int64_t Lo, int64_t Hi, int64_t Step, int MaxChunks);

/// A program compiled to a flat op sequence, executable against any
/// DataEnv allocated for the same program.
class ExecPlan {
public:
  /// Compile-time statistics (for tests and the micro benchmark).
  struct Stats {
    size_t Ops = 0;
    size_t Statements = 0;         ///< Stmt ops + InnerStmt sub-statements.
    size_t FastPathStatements = 0; ///< Sub-statements of InnerStmt ops.
    size_t MultiStmtInnerLoops = 0; ///< InnerStmt ops with > 1 statement.
    size_t SpecializedKernels = 0; ///< Statements lowered to InnerKernel.
    size_t ParallelLoops = 0;      ///< Ops that fork onto the thread pool.
    size_t PrivatizedBuffers = 0;  ///< Per-thread private buffers (slots).
    int MaxLoopDepth = 0;
  };

  /// Lowers \p Prog. Every parameter referenced by bounds or subscripts
  /// must be bound in the program; asserts otherwise. Parallel marks are
  /// trusted as placed by transform/Parallelize (legality-proven,
  /// dependence-free); loops marked for atomic reduction are compiled
  /// serial.
  static ExecPlan compile(const Program &Prog,
                          const PlanOptions &Options = {});

  /// Executes the plan on \p Env, which must have been allocated from the
  /// same program (slot order is the contract; see DataEnv). Results are
  /// bit-identical for every NumThreads value.
  void run(DataEnv &Env) const;

  /// Like run(Env), but reuses the allocations of \p Ctx for the run's
  /// scratch (register file, tape stack, offset and slot tables).
  void run(DataEnv &Env, ExecContext &Ctx) const;

  /// Zero-copy execution: \p Slots[I] is the storage of
  /// Program::arrays()[I], with Size its exact element count. The caller
  /// owns every buffer; nothing is copied. Sizes are the caller's
  /// contract — the api layer (api/Kernel.h ArgBinding) validates them
  /// against the array declarations before calling; debug builds assert
  /// every access in range.
  void run(const BufferRef *Slots, size_t SlotCount, ExecContext &Ctx) const;

  Stats stats() const;

  /// Estimated heap footprint of the compiled plan in bytes (ops, tapes,
  /// access tables). An estimate, not an exact allocator measurement; it
  /// is stable for a given plan, which is what budget accounting needs.
  size_t memoryBytes() const;

  /// Resolved thread count this plan forks parallel loops into.
  int threadCount() const { return ThreadCount; }

private:
  /// Shared head of the run overloads: heals a moved-from context
  /// (instead of dereferencing its null state) and returns the state
  /// with an emptied slot table, ready to fill.
  static ExecContext::State &healedState(ExecContext &Ctx);

  std::vector<PlanOp> Ops;
  int MaxDepth = 0;
  int ThreadCount = 1;
  size_t MaxStack = 0;
  size_t MaxLoads = 0; ///< Max total loads of one op (offset scratch).
  size_t MaxSubs = 0;  ///< Max statements of one op (write-offset scratch).

  friend class PlanCompiler;
  friend class PlanExecutor;
};

} // namespace daisy

#endif // DAISY_EXEC_EXECPLAN_H
