//===- exec/EvalOps.h - Shared scalar operator semantics ---------*- C++ -*-=//
//
// Part of the daisy project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The single definition of unary/binary operator semantics, shared by the
/// tree-walking interpreter and the compiled execution plan. The two
/// engines are contractually bit-identical, so there must be exactly one
/// place where Min/Max NaN behavior, comparisons-as-0/1, etc. are decided.
///
//===----------------------------------------------------------------------===//

#ifndef DAISY_EXEC_EVALOPS_H
#define DAISY_EXEC_EVALOPS_H

#include "ir/Expr.h"

#include <algorithm>
#include <cmath>

namespace daisy {

inline double applyUnary(UnaryOpKind Op, double V) {
  switch (Op) {
  case UnaryOpKind::Neg:
    return -V;
  case UnaryOpKind::Exp:
    return std::exp(V);
  case UnaryOpKind::Log:
    return std::log(V);
  case UnaryOpKind::Sqrt:
    return std::sqrt(V);
  case UnaryOpKind::Abs:
    return std::fabs(V);
  }
  return 0.0;
}

inline double applyBinary(BinaryOpKind Op, double L, double R) {
  switch (Op) {
  case BinaryOpKind::Add:
    return L + R;
  case BinaryOpKind::Sub:
    return L - R;
  case BinaryOpKind::Mul:
    return L * R;
  case BinaryOpKind::Div:
    return L / R;
  case BinaryOpKind::Min:
    return std::min(L, R);
  case BinaryOpKind::Max:
    return std::max(L, R);
  case BinaryOpKind::Pow:
    return std::pow(L, R);
  case BinaryOpKind::Lt:
    return L < R ? 1.0 : 0.0;
  case BinaryOpKind::Le:
    return L <= R ? 1.0 : 0.0;
  case BinaryOpKind::Gt:
    return L > R ? 1.0 : 0.0;
  case BinaryOpKind::Ge:
    return L >= R ? 1.0 : 0.0;
  case BinaryOpKind::Eq:
    return L == R ? 1.0 : 0.0;
  }
  return 0.0;
}

} // namespace daisy

#endif // DAISY_EXEC_EVALOPS_H
