//===- exec/ExecPlan.cpp --------------------------------------------------==//
//
// Part of the daisy project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "exec/ExecPlan.h"

#include "analysis/Legality.h"
#include "blas/Kernels.h"
#include "exec/EvalOps.h"
#include "exec/ThreadPool.h"
#include "support/Hashing.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <map>
#include <memory>
#include <optional>

using namespace daisy;

namespace {

/// Kernels address loads through small fixed-size scratch arrays.
constexpr size_t MaxKernelLoads = 16;

} // namespace

std::vector<std::pair<int64_t, int64_t>>
daisy::chunkLoopRange(int64_t Lo, int64_t Hi, int64_t Step, int MaxChunks) {
  assert(Step > 0 && "chunking requires a positive step");
  std::vector<std::pair<int64_t, int64_t>> Chunks;
  if (Lo >= Hi || MaxChunks <= 0)
    return Chunks;
  int64_t Iters = (Hi - Lo + Step - 1) / Step;
  int64_t Count = std::min<int64_t>(MaxChunks, Iters);
  Chunks.reserve(static_cast<size_t>(Count));
  for (int64_t C = 0; C < Count; ++C) {
    int64_t Begin = Lo + (Iters * C / Count) * Step;
    int64_t End = Lo + (Iters * (C + 1) / Count) * Step;
    Chunks.emplace_back(Begin, std::min(End, Hi));
  }
  return Chunks;
}

namespace daisy {

/// Lowers one Program into a flat PlanOp sequence. Name resolution happens
/// exclusively here: iterators to depth registers (with save/restore so a
/// nested loop reusing an outer iterator name shadows instead of clobbers),
/// arrays to DataEnv slot ids, parameters to folded constants.
class PlanCompiler {
public:
  PlanCompiler(const Program &Prog, const PlanOptions &Options)
      : Prog(Prog), Options(Options) {
    const auto &Arrays = Prog.arrays();
    for (size_t Slot = 0; Slot < Arrays.size(); ++Slot)
      Slots.emplace(Arrays[Slot].Name, static_cast<int32_t>(Slot));
    Plan.ThreadCount = Options.NumThreads > 0
                           ? Options.NumThreads
                           : ThreadPool::defaultThreadCount();
  }

  ExecPlan compile() {
    for (const NodePtr &Node : Prog.topLevel())
      compileNode(Node);
    return std::move(Plan);
  }

private:
  const Program &Prog;
  PlanOptions Options;
  ExecPlan Plan;
  std::map<std::string, int32_t> Slots;
  std::map<std::string, int32_t> Scope;
  int Depth = 0;

  LinearForm compileAffine(const AffineExpr &Expr) const {
    LinearForm Form;
    Form.Constant = Expr.constantTerm();
    for (const auto &[Name, Coeff] : Expr.terms()) {
      auto It = Scope.find(Name);
      if (It != Scope.end())
        Form.Terms.emplace_back(It->second, Coeff);
      else
        Form.Constant += Coeff * Prog.param(Name); // asserts if unbound
    }
    return Form;
  }

  PlanAccess compileAccess(const ArrayAccess &Access) const {
    const ArrayDecl &Decl = Prog.array(Access.Array);
    PlanAccess Result;
    Result.Slot = Slots.at(Access.Array);
    Result.Base =
        compileAffine(linearizeSubscripts(Access.Indices, Decl.Shape));
    for (size_t Dim = 0; Dim < Access.Indices.size(); ++Dim)
      Result.DimChecks.emplace_back(compileAffine(Access.Indices[Dim]),
                                    Decl.Shape[Dim]);
    return Result;
  }

  void emitExpr(const Expr &E, CompiledStmt &S, int &Cur, int &Max) {
    auto Push = [&](TapeInstr Instr) {
      S.Tape.push_back(Instr);
      Max = std::max(Max, ++Cur);
    };
    switch (E.kind()) {
    case ExprKind::Constant:
      Push({TapeOpKind::Const, 0, 0, E.constantValue()});
      return;
    case ExprKind::Read: {
      int32_t Idx = static_cast<int32_t>(S.Loads.size());
      S.Loads.push_back(compileAccess(E.access()));
      Push({TapeOpKind::Load, 0, Idx, 0.0});
      return;
    }
    case ExprKind::Iter: {
      // Iterators in scope read their register; anything else must be a
      // bound parameter (the tree-walker's ValueEnv starts from params).
      auto It = Scope.find(E.name());
      if (It != Scope.end())
        Push({TapeOpKind::IterReg, 0, It->second, 0.0});
      else
        Push({TapeOpKind::Const, 0, 0,
              static_cast<double>(Prog.param(E.name()))});
      return;
    }
    case ExprKind::Param:
      Push({TapeOpKind::Const, 0, 0,
            static_cast<double>(Prog.param(E.name()))});
      return;
    case ExprKind::Unary:
      emitExpr(*E.operands()[0], S, Cur, Max);
      S.Tape.push_back({TapeOpKind::Unary,
                        static_cast<uint8_t>(E.unaryOp()), 0, 0.0});
      return;
    case ExprKind::Binary:
      emitExpr(*E.operands()[0], S, Cur, Max);
      emitExpr(*E.operands()[1], S, Cur, Max);
      S.Tape.push_back({TapeOpKind::Binary,
                        static_cast<uint8_t>(E.binaryOp()), 0, 0.0});
      --Cur;
      return;
    case ExprKind::Select: {
      // Short-circuit like the tree-walker: only the taken branch runs (a
      // select may guard an otherwise out-of-bounds read).
      emitExpr(*E.operands()[0], S, Cur, Max);
      size_t CondJump = S.Tape.size();
      S.Tape.push_back({TapeOpKind::JumpIfZero, 0, 0, 0.0});
      --Cur; // JumpIfZero pops the condition.
      int Base = Cur;
      emitExpr(*E.operands()[1], S, Cur, Max);
      size_t EndJump = S.Tape.size();
      S.Tape.push_back({TapeOpKind::Jump, 0, 0, 0.0});
      S.Tape[CondJump].A = static_cast<int32_t>(S.Tape.size());
      Cur = Base; // The false branch starts from the same stack depth.
      emitExpr(*E.operands()[2], S, Cur, Max);
      S.Tape[EndJump].A = static_cast<int32_t>(S.Tape.size());
      return;
    }
    }
  }

  CompiledStmt buildStmtPayload(const Computation &C) {
    CompiledStmt S;
    S.Write = compileAccess(C.write());
    int Cur = 0, Max = 0;
    emitExpr(*C.rhs(), S, Cur, Max);
    assert(Cur == 1 && "malformed expression tape");
    Plan.MaxStack = std::max(Plan.MaxStack, static_cast<size_t>(Max));
    return S;
  }

  /// Removes register \p Reg's term from \p Form, returning its
  /// coefficient.
  static int64_t splitInnerTerm(LinearForm &Form, int32_t Reg) {
    for (auto It = Form.Terms.begin(); It != Form.Terms.end(); ++It)
      if (It->first == Reg) {
        int64_t Coeff = It->second;
        Form.Terms.erase(It);
        return Coeff;
      }
    return 0;
  }

  static std::vector<PlanAccess *> accessesOf(CompiledStmt &S) {
    std::vector<PlanAccess *> All;
    All.push_back(&S.Write);
    for (PlanAccess &Acc : S.Loads)
      All.push_back(&Acc);
    return All;
  }

  /// Binds \p Iterator to \p Reg for the duration of \p Body, shadowing
  /// (not destroying) any outer binding of the same name.
  template <typename Fn> void withIterator(const std::string &Iterator,
                                           int32_t Reg, Fn Body) {
    std::optional<int32_t> Saved;
    auto It = Scope.find(Iterator);
    if (It != Scope.end())
      Saved = It->second;
    Scope[Iterator] = Reg;
    ++Depth;
    Body();
    --Depth;
    if (Saved)
      Scope[Iterator] = *Saved;
    else
      Scope.erase(Iterator);
  }

  //===--- Kernel-shape matching ------------------------------------------===//

  static bool isRead(const Expr &E) { return E.kind() == ExprKind::Read; }
  static bool isConst(const Expr &E) {
    return E.kind() == ExprKind::Constant;
  }
  static bool isBin(const Expr &E, BinaryOpKind Op) {
    return E.kind() == ExprKind::Binary && E.binaryOp() == Op;
  }

  /// True if \p E is a left-leaning chain `((R0 + R1) + ...) + Rk` of at
  /// least \p MinLeaves reads. Left-leaning only: the kernel folds the sum
  /// left to right, and any other association would change FP results.
  static bool isLeftSumOfReads(const Expr &E, size_t MinLeaves) {
    size_t Leaves = 1;
    const Expr *Cur = &E;
    while (isBin(*Cur, BinaryOpKind::Add) &&
           isRead(*Cur->operands()[1])) {
      ++Leaves;
      Cur = Cur->operands()[0].get();
    }
    return isRead(*Cur) && Leaves >= MinLeaves;
  }

  /// Matches the product term of an fma shape; sets \p S.Prod / \p S.Coef.
  static bool matchProduct(const Expr &P, CompiledStmt &S) {
    if (!isBin(P, BinaryOpKind::Mul))
      return false;
    const Expr &A = *P.operands()[0];
    const Expr &B = *P.operands()[1];
    if (isRead(A) && isRead(B)) {
      S.Prod = ProdShape::AB;
      return true;
    }
    if (isConst(A) && isBin(B, BinaryOpKind::Mul) &&
        isRead(*B.operands()[0]) && isRead(*B.operands()[1])) {
      S.Prod = ProdShape::CAB;
      S.Coef = A.constantValue();
      return true;
    }
    if (isBin(A, BinaryOpKind::Mul) && isConst(*A.operands()[0]) &&
        isRead(*A.operands()[1]) && isRead(B)) {
      S.Prod = ProdShape::CA_B;
      S.Coef = A.operands()[0]->constantValue();
      return true;
    }
    return false;
  }

  /// Recognizes the common kernel shapes on the expression tree of a
  /// single-statement inner loop. Loads were emitted in left-to-right read
  /// order, so tree positions map directly to load indices. Must run after
  /// the inner term split (FmaAcc keys on InnerCoeff).
  void matchKernel(const Computation &C, CompiledStmt &S) const {
    if (S.Loads.size() > MaxKernelLoads)
      return;
    const Expr &E = *C.rhs();

    if (isRead(E)) {
      S.Kernel = InnerKernel::Copy;
      return;
    }

    if (isBin(E, BinaryOpKind::Mul)) {
      const Expr &A = *E.operands()[0];
      const Expr &B = *E.operands()[1];
      if (isConst(A) && isRead(B)) {
        S.Kernel = InnerKernel::Scale;
        S.Coef = A.constantValue();
        S.CoefLeft = true;
        return;
      }
      if (isRead(A) && isConst(B)) {
        S.Kernel = InnerKernel::Scale;
        S.Coef = B.constantValue();
        S.CoefLeft = false;
        return;
      }
      if (isConst(A) && isLeftSumOfReads(B, 2)) {
        S.Kernel = InnerKernel::ScaledSum;
        S.Coef = A.constantValue();
        S.CoefLeft = S.HasCoef = true;
        return;
      }
      if (isLeftSumOfReads(A, 2) && isConst(B)) {
        S.Kernel = InnerKernel::ScaledSum;
        S.Coef = B.constantValue();
        S.HasCoef = true;
        return;
      }
      return;
    }

    if (!isBin(E, BinaryOpKind::Add))
      return;
    const Expr &L = *E.operands()[0];
    const Expr &R = *E.operands()[1];

    if (isLeftSumOfReads(E, 2)) {
      S.Kernel = InnerKernel::ScaledSum; // plain stencil sum, no coefficient
      return;
    }
    if (!isRead(L))
      return;

    if (isBin(R, BinaryOpKind::Mul)) {
      const Expr &RA = *R.operands()[0];
      const Expr &RB = *R.operands()[1];
      if (isConst(RA) && isRead(RB)) {
        S.Kernel = InnerKernel::Axpy;
        S.Coef = RA.constantValue();
        S.CoefLeft = true;
        return;
      }
      if (isRead(RA) && isConst(RB)) {
        S.Kernel = InnerKernel::Axpy;
        S.Coef = RB.constantValue();
        S.CoefLeft = false;
        return;
      }
    }
    if (matchProduct(R, S)) {
      // Loads: [0] addend, [1]/[2] product factors.
      assert(S.Loads.size() == 3 && "fma shape must have three loads");
      bool Accumulates =
          S.Write.InnerCoeff == 0 && S.Loads[0].InnerCoeff == 0 &&
          S.Loads[0].Slot == S.Write.Slot && S.Loads[0].Base == S.Write.Base;
      // Register accumulation skips the per-iteration store, so no product
      // load may alias the written element.
      bool ProductAliasFree = S.Loads[1].Slot != S.Write.Slot &&
                              S.Loads[2].Slot != S.Write.Slot;
      S.Kernel = Accumulates && ProductAliasFree ? InnerKernel::FmaAcc
                                                 : InnerKernel::Fma;
    }
  }

  //===--- Parallel marking ------------------------------------------------===//

  /// Applies a trusted `parallel` mark to \p Op: record the fork and the
  /// transient buffers each thread must privatize, using the same legality
  /// helper the transform used to discount their dependences.
  void markParallel(const NodePtr &Node, const Loop &L, PlanOp &Op) {
    if (!L.isParallel() || L.usesAtomicReduction())
      return;
    Op.Parallel = true;
    std::vector<std::string> Enclosing;
    for (const auto &[Name, Reg] : Scope)
      Enclosing.push_back(Name);
    for (const std::string &Array :
         privatizableArraysUnder(Node, Enclosing, Prog)) {
      const ArrayDecl &Decl = Prog.array(Array);
      Op.PrivateSlots.emplace_back(
          Slots.at(Array), std::max<int64_t>(Decl.elementCount(), 1));
    }
  }

  //===--- Node lowering ---------------------------------------------------===//

  void compileLoop(const NodePtr &Node, const Loop &L) {
    assert(L.step() > 0 && "plan requires positive loop steps");
    LinearForm Lower = compileAffine(L.lower());
    LinearForm Upper = compileAffine(L.upper());
    int32_t Reg = Depth;

    // Fast path: an innermost loop whose body is only computations (one or
    // many) becomes one fused op with hoisted loop-invariant offsets.
    bool AllComputations = !L.body().empty();
    for (const NodePtr &Child : L.body())
      if (!dynCast<Computation>(Child))
        AllComputations = false;
    if (AllComputations) {
      PlanOp Op;
      Op.K = PlanOp::Kind::InnerStmt;
      Op.Reg = Reg;
      Op.Lower = std::move(Lower);
      Op.Upper = std::move(Upper);
      Op.Step = L.step();
      markParallel(Node, L, Op);
      withIterator(L.iterator(), Reg, [&] {
        for (const NodePtr &Child : L.body())
          Op.Stmts.push_back(buildStmtPayload(*dynCast<Computation>(Child)));
      });
      int32_t OffsetBase = 0;
      for (CompiledStmt &S : Op.Stmts) {
        for (PlanAccess *Acc : accessesOf(S)) {
          Acc->InnerCoeff = splitInnerTerm(Acc->Base, Reg);
          Acc->InnerStep = Acc->InnerCoeff * Op.Step;
        }
        S.OffsetBase = OffsetBase;
        OffsetBase += static_cast<int32_t>(S.Loads.size());
      }
      Plan.MaxLoads =
          std::max(Plan.MaxLoads, static_cast<size_t>(OffsetBase));
      Plan.MaxSubs = std::max(Plan.MaxSubs, Op.Stmts.size());
      if (Options.EnableSpecialization && Op.Stmts.size() == 1)
        matchKernel(*dynCast<Computation>(L.body()[0]), Op.Stmts[0]);
      Plan.Ops.push_back(std::move(Op));
      return;
    }

    size_t BeginPc = Plan.Ops.size();
    {
      PlanOp Op;
      Op.K = PlanOp::Kind::LoopBegin;
      Op.Reg = Reg;
      Op.Lower = std::move(Lower);
      Op.Upper = std::move(Upper);
      Op.Step = L.step();
      markParallel(Node, L, Op);
      Plan.Ops.push_back(std::move(Op));
    }
    withIterator(L.iterator(), Reg, [&] {
      for (const NodePtr &Child : L.body())
        compileNode(Child);
    });
    {
      PlanOp Op;
      Op.K = PlanOp::Kind::LoopEnd;
      Op.Reg = Reg;
      Op.Step = L.step();
      Op.Jump = static_cast<int32_t>(BeginPc + 1);
      Plan.Ops.push_back(std::move(Op));
    }
    Plan.Ops[BeginPc].Jump = static_cast<int32_t>(Plan.Ops.size());
  }

  void compileNode(const NodePtr &Node) {
    Plan.MaxDepth = std::max(Plan.MaxDepth, Depth + 1);
    if (const auto *C = dynCast<Computation>(Node)) {
      PlanOp Op;
      Op.K = PlanOp::Kind::Stmt;
      Op.Stmts.push_back(buildStmtPayload(*C));
      Plan.Ops.push_back(std::move(Op));
      return;
    }
    if (const auto *Call = dynCast<CallNode>(Node)) {
      PlanOp Op;
      Op.K = PlanOp::Kind::Call;
      Op.Callee = Call->callee();
      for (const std::string &Arg : Call->args())
        Op.ArgSlots.push_back(Slots.at(Arg));
      Op.CallDims = Call->dims();
      Op.Alpha = Call->alpha();
      Op.Beta = Call->beta();
      Plan.Ops.push_back(std::move(Op));
      return;
    }
    const auto *L = dynCast<Loop>(Node);
    assert(L && "unknown node kind");
    compileLoop(Node, *L);
  }
};

} // namespace daisy

ExecPlan ExecPlan::compile(const Program &Prog, const PlanOptions &Options) {
  return PlanCompiler(Prog, Options).compile();
}

uint64_t daisy::planOptionsDigest(const PlanOptions &Options) {
  HashCombiner D(0x706C616E6F7074ull); // "planopt"
  D.combine(static_cast<uint64_t>(
      Options.NumThreads > 0 ? Options.NumThreads
                             : ThreadPool::defaultThreadCount()));
  D.combine(Options.EnableSpecialization ? 1ull : 0ull);
  return D.value();
}

/// The allocations one executing thread reuses across runs. The root
/// executor of a run borrows the vectors of the caller's ExecContext;
/// the per-chunk thread clones of a parallel region own a fresh State
/// each (their lifetime is one fork).
struct ExecContext::State {
  std::vector<int64_t> Regs, LoopHi, Offs, WOffs;
  std::vector<double> Stack;
  std::vector<double *> Ptrs;
  std::vector<size_t> Sizes;
};

ExecContext::ExecContext() : St(std::make_unique<State>()) {}
ExecContext::~ExecContext() = default;
ExecContext::ExecContext(ExecContext &&Other) noexcept = default;
ExecContext &ExecContext::operator=(ExecContext &&Other) noexcept = default;

size_t ExecContext::memoryBytes() const {
  if (!St)
    return sizeof(State); // Moved-from; healedState reallocates on use.
  const State &S = *St;
  return sizeof(State) +
         (S.Regs.capacity() + S.LoopHi.capacity() + S.Offs.capacity() +
          S.WOffs.capacity()) *
             sizeof(int64_t) +
         S.Stack.capacity() * sizeof(double) +
         S.Ptrs.capacity() * sizeof(double *) +
         S.Sizes.capacity() * sizeof(size_t);
}

namespace {

/// Evaluates a statement's tape over \p Stack. \p Off maps a load access
/// (by PlanAccess and load index) to its element offset, so the plain and
/// fast-path statement loops share one evaluator.
template <typename OffsetFn>
double evalTape(const CompiledStmt &S, const int64_t *Regs,
                double *const *Ptrs, double *Stack, OffsetFn Off) {
  double *Sp = Stack;
  const TapeInstr *Base = S.Tape.data();
  const TapeInstr *End = Base + S.Tape.size();
  for (const TapeInstr *I = Base; I != End;) {
    switch (I->Kind) {
    case TapeOpKind::Const:
      *Sp++ = I->Value;
      break;
    case TapeOpKind::IterReg:
      *Sp++ = static_cast<double>(Regs[I->A]);
      break;
    case TapeOpKind::Load: {
      const PlanAccess &Acc = S.Loads[static_cast<size_t>(I->A)];
      *Sp++ = Ptrs[Acc.Slot][Off(Acc, static_cast<size_t>(I->A))];
      break;
    }
    case TapeOpKind::Unary:
      Sp[-1] = applyUnary(static_cast<UnaryOpKind>(I->Op), Sp[-1]);
      break;
    case TapeOpKind::Binary:
      Sp[-2] = applyBinary(static_cast<BinaryOpKind>(I->Op), Sp[-2], Sp[-1]);
      --Sp;
      break;
    case TapeOpKind::JumpIfZero:
      if (*--Sp == 0.0) {
        I = Base + I->A;
        continue;
      }
      break;
    case TapeOpKind::Jump:
      I = Base + I->A;
      continue;
    }
    ++I;
  }
  return Sp[-1];
}

} // namespace

namespace daisy {

/// Run-time state of one executing thread: register file, tape stack,
/// hoisted-offset scratch, and the slot-to-buffer table (rebound to private
/// copies inside parallel regions). The root executor aliases the DataEnv;
/// thread executors clone the parent's state at the fork point.
class PlanExecutor {
public:
  /// Root executor of one run, reusing the allocations of \p S. The
  /// caller (ExecPlan::run) has already filled S.Ptrs / S.Sizes with the
  /// slot table; the remaining scratch is sized to the plan here —
  /// assign/resize keep the capacity a previous run grew, so a pooled
  /// context makes repeated runs allocation-free.
  PlanExecutor(const ExecPlan &Plan, ExecContext::State &S)
      : Plan(Plan), Regs(S.Regs), LoopHi(S.LoopHi), Offs(S.Offs),
        WOffs(S.WOffs), Stack(S.Stack), Ptrs(S.Ptrs), Sizes(S.Sizes) {
    size_t Depth = static_cast<size_t>(std::max(Plan.MaxDepth, 1));
    Regs.assign(Depth, 0);
    LoopHi.assign(Depth, 0);
    Offs.resize(std::max<size_t>(Plan.MaxLoads, 1));
    WOffs.resize(std::max<size_t>(Plan.MaxSubs, 1));
    Stack.resize(std::max<size_t>(Plan.MaxStack, 1));
  }

  /// Thread-local clone for one chunk of parallel op \p Op: copies the
  /// parent's registers (inner bounds may reference outer loops) and
  /// rebinds each privatized slot to a private copy of the shared buffer.
  /// Legality guarantees no iteration reads an element it did not write
  /// first, so the initial contents are invisible to the loop itself —
  /// they are carried so the lastprivate copy-back leaves elements the
  /// loop never writes exactly as serial execution would.
  PlanExecutor(const PlanExecutor &Parent, const PlanOp &Op)
      : Plan(Parent.Plan), InParallel(true),
        Owned(std::make_unique<ExecContext::State>()), Regs(Owned->Regs),
        LoopHi(Owned->LoopHi), Offs(Owned->Offs), WOffs(Owned->WOffs),
        Stack(Owned->Stack), Ptrs(Owned->Ptrs), Sizes(Owned->Sizes) {
    Regs = Parent.Regs;
    LoopHi = Parent.LoopHi;
    Offs.resize(Parent.Offs.size());
    WOffs.resize(Parent.WOffs.size());
    Stack.resize(Parent.Stack.size());
    Ptrs = Parent.Ptrs;
    Sizes = Parent.Sizes;
    Privates.reserve(Op.PrivateSlots.size());
    for (const auto &[Slot, Count] : Op.PrivateSlots) {
      const double *Shared = Ptrs[Slot];
      Privates.push_back({Slot, Ptrs[Slot],
                          std::vector<double>(Shared, Shared + Count)});
      Ptrs[Slot] = Privates.back().Buf.data();
    }
  }

  void exec(size_t Begin, size_t End);

  /// Lastprivate semantics: the thread that ran the chunk containing the
  /// final iterations copies its private buffers back to the shared ones,
  /// so the observable end state matches serial execution exactly.
  void copyBackPrivates() {
    for (const PrivateCopy &P : Privates)
      std::copy(P.Buf.begin(), P.Buf.end(), P.Shared);
  }

private:
  const ExecPlan &Plan;
  bool InParallel = false;
  /// Thread clones own their state; the root executor borrows the
  /// caller's ExecContext. Declared before the references bound to it.
  std::unique_ptr<ExecContext::State> Owned;
  std::vector<int64_t> &Regs, &LoopHi, &Offs, &WOffs;
  std::vector<double> &Stack;
  std::vector<double *> &Ptrs;
  std::vector<size_t> &Sizes;

  struct PrivateCopy {
    int32_t Slot;
    double *Shared;
    std::vector<double> Buf;
  };
  std::vector<PrivateCopy> Privates;

  // Debug-only: the linearized offset must be in range, and so must every
  // per-dimension subscript (a compensated violation like A[i+1][j-8] can
  // linearize into range; the tree-walker catches it per dimension).
  void checkAccess(const PlanAccess &Acc, int64_t Offset) const {
    (void)Acc;
    (void)Offset;
    assert(Offset >= 0 &&
           static_cast<size_t>(Offset) < Sizes[static_cast<size_t>(
               Acc.Slot)] &&
           "subscript out of bounds");
#ifndef NDEBUG
    for (const auto &[Form, Extent] : Acc.DimChecks) {
      int64_t Index = Form.eval(Regs.data());
      assert(Index >= 0 && Index < Extent && "subscript out of bounds");
      (void)Index;
      (void)Extent;
    }
#endif
  }

  void runStmt(const PlanOp &Op) {
    const CompiledStmt &S = Op.Stmts[0];
    double Value = evalTape(S, Regs.data(), Ptrs.data(), Stack.data(),
                            [&](const PlanAccess &Acc, size_t) {
                              int64_t Offset = Acc.Base.eval(Regs.data());
                              checkAccess(Acc, Offset);
                              return Offset;
                            });
    int64_t WOff = S.Write.Base.eval(Regs.data());
    checkAccess(S.Write, WOff);
    Ptrs[S.Write.Slot][WOff] = Value;
  }

  void runInner(const PlanOp &Op, int64_t Lo, int64_t Hi);
  void runKernel(const PlanOp &Op, const CompiledStmt &S, int64_t Lo,
                 int64_t N);
  void runCall(const PlanOp &Op);
  void forkLoop(const PlanOp &Op, size_t Pc,
                const std::vector<std::pair<int64_t, int64_t>> &Chunks);
};

} // namespace daisy

void PlanExecutor::runCall(const PlanOp &Op) {
  const auto &Args = Op.ArgSlots;
  const auto &Dims = Op.CallDims;
  switch (Op.Callee) {
  case BlasKind::Gemm:
    gemm(Ptrs[Args[0]], Ptrs[Args[1]], Ptrs[Args[2]], Dims[0], Dims[1],
         Dims[2], Op.Alpha, Op.Beta);
    break;
  case BlasKind::Syrk:
    syrk(Ptrs[Args[0]], Ptrs[Args[1]], Dims[0], Dims[1], Op.Alpha, Op.Beta);
    break;
  case BlasKind::Syr2k:
    syr2k(Ptrs[Args[0]], Ptrs[Args[1]], Ptrs[Args[2]], Dims[0], Dims[1],
          Op.Alpha, Op.Beta);
    break;
  case BlasKind::Gemv:
    gemv(Ptrs[Args[0]], Ptrs[Args[1]], Ptrs[Args[2]], Dims[0], Dims[1],
         Op.Alpha, Op.Beta);
    break;
  }
}

void PlanExecutor::runKernel(const PlanOp &Op, const CompiledStmt &S,
                             int64_t Lo, int64_t N) {
  (void)Op; // only the debug endpoint checks need the loop op
  int64_t WOff = S.Write.Base.eval(Regs.data()) + S.Write.InnerCoeff * Lo;
  int64_t LOff[MaxKernelLoads];
  const double *L[MaxKernelLoads];
  int64_t LS[MaxKernelLoads];
  const size_t K = S.Loads.size();
  for (size_t A = 0; A < K; ++A) {
    LOff[A] = S.Loads[A].Base.eval(Regs.data()) + S.Loads[A].InnerCoeff * Lo;
    L[A] = Ptrs[S.Loads[A].Slot] + LOff[A];
    LS[A] = S.Loads[A].InnerStep;
  }
#ifndef NDEBUG
  // Offsets and per-dimension subscripts are affine in the inner iterator,
  // so in-range at both endpoints implies in-range throughout.
  for (int64_t I : {Lo, Lo + (N - 1) * Op.Step}) {
    Regs[Op.Reg] = I;
    checkAccess(S.Write,
                S.Write.Base.eval(Regs.data()) + S.Write.InnerCoeff * I);
    for (size_t A = 0; A < K; ++A)
      checkAccess(S.Loads[A],
                  S.Loads[A].Base.eval(Regs.data()) +
                      S.Loads[A].InnerCoeff * I);
  }
#endif
  double *W = Ptrs[S.Write.Slot] + WOff;
  const int64_t Ws = S.Write.InnerStep;
  const double C = S.Coef;

  switch (S.Kernel) {
  case InnerKernel::None:
    assert(false && "generic statements do not reach runKernel");
    break;
  case InnerKernel::Copy: {
    const double *A = L[0];
    const int64_t As = LS[0];
    if (Ws == 1 && As == 1)
      for (int64_t I = 0; I < N; ++I)
        W[I] = A[I];
    else
      for (int64_t I = 0; I < N; ++I)
        W[I * Ws] = A[I * As];
    break;
  }
  case InnerKernel::Scale: {
    const double *A = L[0];
    const int64_t As = LS[0];
    if (S.CoefLeft) {
      if (Ws == 1 && As == 1)
        for (int64_t I = 0; I < N; ++I)
          W[I] = C * A[I];
      else
        for (int64_t I = 0; I < N; ++I)
          W[I * Ws] = C * A[I * As];
    } else {
      if (Ws == 1 && As == 1)
        for (int64_t I = 0; I < N; ++I)
          W[I] = A[I] * C;
      else
        for (int64_t I = 0; I < N; ++I)
          W[I * Ws] = A[I * As] * C;
    }
    break;
  }
  case InnerKernel::ScaledSum: {
    bool Unit = Ws == 1;
    for (size_t A = 0; A < K; ++A)
      Unit &= LS[A] == 1;
    if (Unit) {
      for (int64_t I = 0; I < N; ++I) {
        double T = L[0][I];
        for (size_t A = 1; A < K; ++A)
          T = T + L[A][I];
        W[I] = !S.HasCoef ? T : (S.CoefLeft ? C * T : T * C);
      }
    } else {
      for (int64_t I = 0; I < N; ++I) {
        double T = L[0][I * LS[0]];
        for (size_t A = 1; A < K; ++A)
          T = T + L[A][I * LS[A]];
        W[I * Ws] = !S.HasCoef ? T : (S.CoefLeft ? C * T : T * C);
      }
    }
    break;
  }
  case InnerKernel::Axpy: {
    const double *A = L[0], *X = L[1];
    const int64_t As = LS[0], Xs = LS[1];
    if (S.CoefLeft) {
      if (Ws == 1 && As == 1 && Xs == 1)
        for (int64_t I = 0; I < N; ++I)
          W[I] = A[I] + (C * X[I]);
      else
        for (int64_t I = 0; I < N; ++I)
          W[I * Ws] = A[I * As] + (C * X[I * Xs]);
    } else {
      if (Ws == 1 && As == 1 && Xs == 1)
        for (int64_t I = 0; I < N; ++I)
          W[I] = A[I] + (X[I] * C);
      else
        for (int64_t I = 0; I < N; ++I)
          W[I * Ws] = A[I * As] + (X[I * Xs] * C);
    }
    break;
  }
  case InnerKernel::Fma: {
    const double *Y = L[0], *A = L[1], *B = L[2];
    const int64_t Ys = LS[0], As = LS[1], Bs = LS[2];
    switch (S.Prod) {
    case ProdShape::AB:
      for (int64_t I = 0; I < N; ++I)
        W[I * Ws] = Y[I * Ys] + (A[I * As] * B[I * Bs]);
      break;
    case ProdShape::CAB:
      for (int64_t I = 0; I < N; ++I)
        W[I * Ws] = Y[I * Ys] + (C * (A[I * As] * B[I * Bs]));
      break;
    case ProdShape::CA_B:
      for (int64_t I = 0; I < N; ++I)
        W[I * Ws] = Y[I * Ys] + ((C * A[I * As]) * B[I * Bs]);
      break;
    }
    break;
  }
  case InnerKernel::FmaAcc: {
    // W is loop-invariant and equals load 0: keep the running sum in a
    // register. The adds happen on the same values in the same order as
    // the per-iteration store/reload, so the result is bit-identical.
    const double *A = L[1], *B = L[2];
    const int64_t As = LS[1], Bs = LS[2];
    double Acc = *W;
    switch (S.Prod) {
    case ProdShape::AB:
      for (int64_t I = 0; I < N; ++I)
        Acc = Acc + (A[I * As] * B[I * Bs]);
      break;
    case ProdShape::CAB:
      for (int64_t I = 0; I < N; ++I)
        Acc = Acc + (C * (A[I * As] * B[I * Bs]));
      break;
    case ProdShape::CA_B:
      for (int64_t I = 0; I < N; ++I)
        Acc = Acc + ((C * A[I * As]) * B[I * Bs]);
      break;
    }
    *W = Acc;
    break;
  }
  }
}

void PlanExecutor::runInner(const PlanOp &Op, int64_t Lo, int64_t Hi) {
  if (Lo >= Hi)
    return;
  if (Op.Stmts.size() == 1 &&
      Op.Stmts[0].Kernel != InnerKernel::None) {
    runKernel(Op, Op.Stmts[0], Lo, (Hi - Lo + Op.Step - 1) / Op.Step);
    return;
  }
  for (size_t Si = 0; Si < Op.Stmts.size(); ++Si) {
    const CompiledStmt &S = Op.Stmts[Si];
    for (size_t A = 0; A < S.Loads.size(); ++A)
      Offs[S.OffsetBase + A] =
          S.Loads[A].Base.eval(Regs.data()) + S.Loads[A].InnerCoeff * Lo;
    WOffs[Si] = S.Write.Base.eval(Regs.data()) + S.Write.InnerCoeff * Lo;
  }
  for (int64_t I = Lo; I < Hi; I += Op.Step) {
    Regs[Op.Reg] = I;
    for (size_t Si = 0; Si < Op.Stmts.size(); ++Si) {
      const CompiledStmt &S = Op.Stmts[Si];
      double Value = evalTape(S, Regs.data(), Ptrs.data(), Stack.data(),
                              [&](const PlanAccess &Acc, size_t A) {
                                int64_t Offset = Offs[S.OffsetBase + A];
                                checkAccess(Acc, Offset);
                                return Offset;
                              });
      checkAccess(S.Write, WOffs[Si]);
      Ptrs[S.Write.Slot][WOffs[Si]] = Value;
      for (size_t A = 0; A < S.Loads.size(); ++A)
        Offs[S.OffsetBase + A] += S.Loads[A].InnerStep;
      WOffs[Si] += S.Write.InnerStep;
    }
  }
}

void PlanExecutor::forkLoop(
    const PlanOp &Op, size_t Pc,
    const std::vector<std::pair<int64_t, int64_t>> &Chunks) {
  const bool Inner = Op.K == PlanOp::Kind::InnerStmt;
  const size_t BodyBegin = Pc + 1;
  const size_t BodyEnd = Inner ? 0 : static_cast<size_t>(Op.Jump) - 1;
  // Clone one executor per chunk up front, in the forking thread: every
  // private copy must be taken from the shared buffers before the
  // lastprivate copy-back below mutates them.
  std::vector<std::unique_ptr<PlanExecutor>> Workers;
  Workers.reserve(Chunks.size());
  for (size_t C = 0; C < Chunks.size(); ++C)
    Workers.push_back(std::make_unique<PlanExecutor>(*this, Op));
  ThreadPool::global().run(
      static_cast<int>(Chunks.size()), [&](int C) {
        PlanExecutor &Worker = *Workers[static_cast<size_t>(C)];
        const auto &[ChunkLo, ChunkHi] = Chunks[static_cast<size_t>(C)];
        if (Inner) {
          Worker.runInner(Op, ChunkLo, ChunkHi);
        } else {
          for (int64_t I = ChunkLo; I < ChunkHi; I += Op.Step) {
            Worker.Regs[Op.Reg] = I;
            Worker.exec(BodyBegin, BodyEnd);
          }
        }
      });
  // After the join, the chunk that ran the final iterations holds the
  // serially-last state of every privatized buffer.
  Workers.back()->copyBackPrivates();
}

void PlanExecutor::exec(size_t Begin, size_t End) {
  size_t Pc = Begin;
  while (Pc < End) {
    const PlanOp &Op = Plan.Ops[Pc];
    switch (Op.K) {
    case PlanOp::Kind::LoopBegin: {
      int64_t Lo = Op.Lower.eval(Regs.data());
      int64_t Hi = Op.Upper.eval(Regs.data());
      if (Op.Parallel && !InParallel && Plan.ThreadCount > 1) {
        auto Chunks = chunkLoopRange(Lo, Hi, Op.Step, Plan.ThreadCount);
        if (Chunks.size() > 1) {
          forkLoop(Op, Pc, Chunks);
          Pc = static_cast<size_t>(Op.Jump);
          break;
        }
      }
      if (Lo >= Hi) {
        Pc = static_cast<size_t>(Op.Jump);
        break;
      }
      Regs[Op.Reg] = Lo;
      LoopHi[Op.Reg] = Hi;
      ++Pc;
      break;
    }
    case PlanOp::Kind::LoopEnd: {
      int64_t Next = Regs[Op.Reg] + Op.Step;
      if (Next < LoopHi[Op.Reg]) {
        Regs[Op.Reg] = Next;
        Pc = static_cast<size_t>(Op.Jump);
      } else {
        ++Pc;
      }
      break;
    }
    case PlanOp::Kind::Stmt:
      runStmt(Op);
      ++Pc;
      break;
    case PlanOp::Kind::InnerStmt: {
      int64_t Lo = Op.Lower.eval(Regs.data());
      int64_t Hi = Op.Upper.eval(Regs.data());
      if (Op.Parallel && !InParallel && Plan.ThreadCount > 1) {
        auto Chunks = chunkLoopRange(Lo, Hi, Op.Step, Plan.ThreadCount);
        if (Chunks.size() > 1) {
          forkLoop(Op, Pc, Chunks);
          ++Pc;
          break;
        }
      }
      runInner(Op, Lo, Hi);
      ++Pc;
      break;
    }
    case PlanOp::Kind::Call:
      runCall(Op);
      ++Pc;
      break;
    }
  }
}

ExecContext::State &ExecPlan::healedState(ExecContext &Ctx) {
  if (!Ctx.St)
    Ctx.St = std::make_unique<ExecContext::State>();
  Ctx.St->Ptrs.clear();
  Ctx.St->Sizes.clear();
  return *Ctx.St;
}

void ExecPlan::run(DataEnv &Env) const {
  ExecContext Ctx;
  run(Env, Ctx);
}

void ExecPlan::run(DataEnv &Env, ExecContext &Ctx) const {
  ExecContext::State &St = healedState(Ctx);
  St.Ptrs.reserve(Env.slotCount());
  St.Sizes.reserve(Env.slotCount());
  for (size_t Slot = 0; Slot < Env.slotCount(); ++Slot) {
    St.Ptrs.push_back(Env.bufferAt(Slot).data());
    St.Sizes.push_back(Env.bufferAt(Slot).size());
  }
  PlanExecutor Executor(*this, St);
  Executor.exec(0, Ops.size());
}

void ExecPlan::run(const BufferRef *Slots, size_t SlotCount,
                   ExecContext &Ctx) const {
  ExecContext::State &St = healedState(Ctx);
  St.Ptrs.reserve(SlotCount);
  St.Sizes.reserve(SlotCount);
  for (size_t Slot = 0; Slot < SlotCount; ++Slot) {
    St.Ptrs.push_back(Slots[Slot].Data);
    St.Sizes.push_back(Slots[Slot].Size);
  }
  PlanExecutor Executor(*this, St);
  Executor.exec(0, Ops.size());
}

namespace {

size_t linearFormBytes(const LinearForm &F) {
  return F.Terms.capacity() * sizeof(std::pair<int32_t, int64_t>);
}

size_t planAccessBytes(const PlanAccess &A) {
  size_t Bytes = linearFormBytes(A.Base) +
                 A.DimChecks.capacity() *
                     sizeof(std::pair<LinearForm, int64_t>);
  for (const auto &[Form, Extent] : A.DimChecks) {
    (void)Extent;
    Bytes += linearFormBytes(Form);
  }
  return Bytes;
}

} // namespace

size_t ExecPlan::memoryBytes() const {
  size_t Bytes = sizeof(ExecPlan) + Ops.capacity() * sizeof(PlanOp);
  for (const PlanOp &Op : Ops) {
    Bytes += linearFormBytes(Op.Lower) + linearFormBytes(Op.Upper) +
             Op.PrivateSlots.capacity() * sizeof(std::pair<int32_t, int64_t>) +
             Op.Stmts.capacity() * sizeof(CompiledStmt) +
             Op.ArgSlots.capacity() * sizeof(int32_t) +
             Op.CallDims.capacity() * sizeof(int64_t);
    for (const CompiledStmt &S : Op.Stmts) {
      Bytes += S.Tape.capacity() * sizeof(TapeInstr) +
               S.Loads.capacity() * sizeof(PlanAccess) +
               planAccessBytes(S.Write);
      for (const PlanAccess &L : S.Loads)
        Bytes += planAccessBytes(L);
    }
  }
  return Bytes;
}

ExecPlan::Stats ExecPlan::stats() const {
  Stats Result;
  Result.Ops = Ops.size();
  Result.MaxLoopDepth = MaxDepth;
  for (const PlanOp &Op : Ops) {
    if (Op.K == PlanOp::Kind::Stmt || Op.K == PlanOp::Kind::InnerStmt)
      Result.Statements += Op.Stmts.size();
    if (Op.K == PlanOp::Kind::InnerStmt) {
      Result.FastPathStatements += Op.Stmts.size();
      if (Op.Stmts.size() > 1)
        ++Result.MultiStmtInnerLoops;
    }
    for (const CompiledStmt &S : Op.Stmts)
      if (S.Kernel != InnerKernel::None)
        ++Result.SpecializedKernels;
    if (Op.Parallel) {
      ++Result.ParallelLoops;
      Result.PrivatizedBuffers += Op.PrivateSlots.size();
    }
  }
  return Result;
}
