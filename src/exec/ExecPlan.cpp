//===- exec/ExecPlan.cpp --------------------------------------------------==//
//
// Part of the daisy project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "exec/ExecPlan.h"

#include "blas/Kernels.h"
#include "exec/EvalOps.h"

#include <cassert>
#include <cmath>
#include <map>
#include <optional>

using namespace daisy;

namespace daisy {

/// Lowers one Program into a flat PlanOp sequence. Name resolution happens
/// exclusively here: iterators to depth registers (with save/restore so a
/// nested loop reusing an outer iterator name shadows instead of clobbers),
/// arrays to DataEnv slot ids, parameters to folded constants.
class PlanCompiler {
public:
  explicit PlanCompiler(const Program &Prog) : Prog(Prog) {
    const auto &Arrays = Prog.arrays();
    for (size_t Slot = 0; Slot < Arrays.size(); ++Slot)
      Slots.emplace(Arrays[Slot].Name, static_cast<int32_t>(Slot));
  }

  ExecPlan compile() {
    for (const NodePtr &Node : Prog.topLevel())
      compileNode(Node);
    return std::move(Plan);
  }

private:
  const Program &Prog;
  ExecPlan Plan;
  std::map<std::string, int32_t> Slots;
  std::map<std::string, int32_t> Scope;
  int Depth = 0;

  LinearForm compileAffine(const AffineExpr &Expr) const {
    LinearForm Form;
    Form.Constant = Expr.constantTerm();
    for (const auto &[Name, Coeff] : Expr.terms()) {
      auto It = Scope.find(Name);
      if (It != Scope.end())
        Form.Terms.emplace_back(It->second, Coeff);
      else
        Form.Constant += Coeff * Prog.param(Name); // asserts if unbound
    }
    return Form;
  }

  PlanAccess compileAccess(const ArrayAccess &Access) const {
    const ArrayDecl &Decl = Prog.array(Access.Array);
    PlanAccess Result;
    Result.Slot = Slots.at(Access.Array);
    Result.Base =
        compileAffine(linearizeSubscripts(Access.Indices, Decl.Shape));
    for (size_t Dim = 0; Dim < Access.Indices.size(); ++Dim)
      Result.DimChecks.emplace_back(compileAffine(Access.Indices[Dim]),
                                    Decl.Shape[Dim]);
    return Result;
  }

  void emitExpr(const Expr &E, PlanOp &Op, int &Cur, int &Max) {
    auto Push = [&](TapeInstr Instr) {
      Op.Tape.push_back(Instr);
      Max = std::max(Max, ++Cur);
    };
    switch (E.kind()) {
    case ExprKind::Constant:
      Push({TapeOpKind::Const, 0, 0, E.constantValue()});
      return;
    case ExprKind::Read: {
      int32_t Idx = static_cast<int32_t>(Op.Loads.size());
      Op.Loads.push_back(compileAccess(E.access()));
      Push({TapeOpKind::Load, 0, Idx, 0.0});
      return;
    }
    case ExprKind::Iter: {
      // Iterators in scope read their register; anything else must be a
      // bound parameter (the tree-walker's ValueEnv starts from params).
      auto It = Scope.find(E.name());
      if (It != Scope.end())
        Push({TapeOpKind::IterReg, 0, It->second, 0.0});
      else
        Push({TapeOpKind::Const, 0, 0,
              static_cast<double>(Prog.param(E.name()))});
      return;
    }
    case ExprKind::Param:
      Push({TapeOpKind::Const, 0, 0,
            static_cast<double>(Prog.param(E.name()))});
      return;
    case ExprKind::Unary:
      emitExpr(*E.operands()[0], Op, Cur, Max);
      Op.Tape.push_back({TapeOpKind::Unary,
                         static_cast<uint8_t>(E.unaryOp()), 0, 0.0});
      return;
    case ExprKind::Binary:
      emitExpr(*E.operands()[0], Op, Cur, Max);
      emitExpr(*E.operands()[1], Op, Cur, Max);
      Op.Tape.push_back({TapeOpKind::Binary,
                         static_cast<uint8_t>(E.binaryOp()), 0, 0.0});
      --Cur;
      return;
    case ExprKind::Select: {
      // Short-circuit like the tree-walker: only the taken branch runs (a
      // select may guard an otherwise out-of-bounds read).
      emitExpr(*E.operands()[0], Op, Cur, Max);
      size_t CondJump = Op.Tape.size();
      Op.Tape.push_back({TapeOpKind::JumpIfZero, 0, 0, 0.0});
      --Cur; // JumpIfZero pops the condition.
      int Base = Cur;
      emitExpr(*E.operands()[1], Op, Cur, Max);
      size_t EndJump = Op.Tape.size();
      Op.Tape.push_back({TapeOpKind::Jump, 0, 0, 0.0});
      Op.Tape[CondJump].A = static_cast<int32_t>(Op.Tape.size());
      Cur = Base; // The false branch starts from the same stack depth.
      emitExpr(*E.operands()[2], Op, Cur, Max);
      Op.Tape[EndJump].A = static_cast<int32_t>(Op.Tape.size());
      return;
    }
    }
  }

  void buildStmtPayload(const Computation &C, PlanOp &Op) {
    Op.Write = compileAccess(C.write());
    int Cur = 0, Max = 0;
    emitExpr(*C.rhs(), Op, Cur, Max);
    assert(Cur == 1 && "malformed expression tape");
    Plan.MaxStack = std::max(Plan.MaxStack, static_cast<size_t>(Max));
    Plan.MaxLoads = std::max(Plan.MaxLoads, Op.Loads.size());
  }

  /// Removes register \p Reg's term from \p Form, returning its
  /// coefficient.
  static int64_t splitInnerTerm(LinearForm &Form, int32_t Reg) {
    for (auto It = Form.Terms.begin(); It != Form.Terms.end(); ++It)
      if (It->first == Reg) {
        int64_t Coeff = It->second;
        Form.Terms.erase(It);
        return Coeff;
      }
    return 0;
  }

  /// Binds \p Iterator to \p Reg for the duration of \p Body, shadowing
  /// (not destroying) any outer binding of the same name.
  template <typename Fn> void withIterator(const std::string &Iterator,
                                           int32_t Reg, Fn Body) {
    std::optional<int32_t> Saved;
    auto It = Scope.find(Iterator);
    if (It != Scope.end())
      Saved = It->second;
    Scope[Iterator] = Reg;
    ++Depth;
    Body();
    --Depth;
    if (Saved)
      Scope[Iterator] = *Saved;
    else
      Scope.erase(Iterator);
  }

  void compileLoop(const Loop &L) {
    assert(L.step() > 0 && "plan requires positive loop steps");
    LinearForm Lower = compileAffine(L.lower());
    LinearForm Upper = compileAffine(L.upper());
    int32_t Reg = Depth;

    // Fast path: an innermost loop over a single computation becomes one
    // fused op with hoisted loop-invariant offsets.
    if (L.body().size() == 1) {
      if (const auto *C = dynCast<Computation>(L.body()[0])) {
        PlanOp Op;
        Op.K = PlanOp::Kind::InnerStmt;
        Op.Reg = Reg;
        Op.Lower = std::move(Lower);
        Op.Upper = std::move(Upper);
        Op.Step = L.step();
        withIterator(L.iterator(), Reg, [&] { buildStmtPayload(*C, Op); });
        for (PlanAccess *Acc : accessesOf(Op)) {
          Acc->InnerCoeff = splitInnerTerm(Acc->Base, Reg);
          Acc->InnerStep = Acc->InnerCoeff * Op.Step;
        }
        Plan.Ops.push_back(std::move(Op));
        return;
      }
    }

    size_t BeginPc = Plan.Ops.size();
    {
      PlanOp Op;
      Op.K = PlanOp::Kind::LoopBegin;
      Op.Reg = Reg;
      Op.Lower = std::move(Lower);
      Op.Upper = std::move(Upper);
      Op.Step = L.step();
      Plan.Ops.push_back(std::move(Op));
    }
    withIterator(L.iterator(), Reg, [&] {
      for (const NodePtr &Child : L.body())
        compileNode(Child);
    });
    {
      PlanOp Op;
      Op.K = PlanOp::Kind::LoopEnd;
      Op.Reg = Reg;
      Op.Step = L.step();
      Op.Jump = static_cast<int32_t>(BeginPc + 1);
      Plan.Ops.push_back(std::move(Op));
    }
    Plan.Ops[BeginPc].Jump = static_cast<int32_t>(Plan.Ops.size());
  }

  static std::vector<PlanAccess *> accessesOf(PlanOp &Op) {
    std::vector<PlanAccess *> All;
    All.push_back(&Op.Write);
    for (PlanAccess &Acc : Op.Loads)
      All.push_back(&Acc);
    return All;
  }

  void compileNode(const NodePtr &Node) {
    Plan.MaxDepth = std::max(Plan.MaxDepth, Depth + 1);
    if (const auto *C = dynCast<Computation>(Node)) {
      PlanOp Op;
      Op.K = PlanOp::Kind::Stmt;
      buildStmtPayload(*C, Op);
      Plan.Ops.push_back(std::move(Op));
      return;
    }
    if (const auto *Call = dynCast<CallNode>(Node)) {
      PlanOp Op;
      Op.K = PlanOp::Kind::Call;
      Op.Callee = Call->callee();
      for (const std::string &Arg : Call->args())
        Op.ArgSlots.push_back(Slots.at(Arg));
      Op.CallDims = Call->dims();
      Op.Alpha = Call->alpha();
      Op.Beta = Call->beta();
      Plan.Ops.push_back(std::move(Op));
      return;
    }
    const auto *L = dynCast<Loop>(Node);
    assert(L && "unknown node kind");
    compileLoop(*L);
  }
};

} // namespace daisy

ExecPlan ExecPlan::compile(const Program &Prog) {
  return PlanCompiler(Prog).compile();
}

namespace {

/// Evaluates a statement's tape over \p Stack. \p Off maps a load access
/// (by PlanAccess and load index) to its element offset, so the plain and
/// fast-path statement loops share one evaluator.
template <typename OffsetFn>
double evalTape(const PlanOp &Op, const int64_t *Regs, double *const *Ptrs,
                double *Stack, OffsetFn Off) {
  double *Sp = Stack;
  const TapeInstr *Base = Op.Tape.data();
  const TapeInstr *End = Base + Op.Tape.size();
  for (const TapeInstr *I = Base; I != End;) {
    switch (I->Kind) {
    case TapeOpKind::Const:
      *Sp++ = I->Value;
      break;
    case TapeOpKind::IterReg:
      *Sp++ = static_cast<double>(Regs[I->A]);
      break;
    case TapeOpKind::Load: {
      const PlanAccess &Acc = Op.Loads[static_cast<size_t>(I->A)];
      *Sp++ = Ptrs[Acc.Slot][Off(Acc, static_cast<size_t>(I->A))];
      break;
    }
    case TapeOpKind::Unary:
      Sp[-1] = applyUnary(static_cast<UnaryOpKind>(I->Op), Sp[-1]);
      break;
    case TapeOpKind::Binary:
      Sp[-2] = applyBinary(static_cast<BinaryOpKind>(I->Op), Sp[-2], Sp[-1]);
      --Sp;
      break;
    case TapeOpKind::JumpIfZero:
      if (*--Sp == 0.0) {
        I = Base + I->A;
        continue;
      }
      break;
    case TapeOpKind::Jump:
      I = Base + I->A;
      continue;
    }
    ++I;
  }
  return Sp[-1];
}

} // namespace

void ExecPlan::run(DataEnv &Env) const {
  std::vector<int64_t> Regs(static_cast<size_t>(std::max(MaxDepth, 1)), 0);
  std::vector<int64_t> LoopHi(Regs.size(), 0);
  std::vector<double> Stack(std::max<size_t>(MaxStack, 1));
  std::vector<int64_t> Offs(std::max<size_t>(MaxLoads, 1));
  std::vector<double *> Ptrs(Env.slotCount());
  std::vector<size_t> Sizes(Env.slotCount());
  for (size_t Slot = 0; Slot < Env.slotCount(); ++Slot) {
    Ptrs[Slot] = Env.bufferAt(Slot).data();
    Sizes[Slot] = Env.bufferAt(Slot).size();
  }
  // Debug-only: the linearized offset must be in range, and so must every
  // per-dimension subscript (a compensated violation like A[i+1][j-8] can
  // linearize into range; the tree-walker catches it per dimension).
  auto CheckAccess = [&](const PlanAccess &Acc, int64_t Offset) {
    (void)Acc;
    (void)Offset;
    assert(Offset >= 0 && static_cast<size_t>(Offset) < Sizes[Acc.Slot] &&
           "subscript out of bounds");
#ifndef NDEBUG
    for (const auto &[Form, Extent] : Acc.DimChecks) {
      int64_t Index = Form.eval(Regs.data());
      assert(Index >= 0 && Index < Extent && "subscript out of bounds");
      (void)Index;
      (void)Extent;
    }
#endif
  };

  size_t Pc = 0;
  while (Pc < Ops.size()) {
    const PlanOp &Op = Ops[Pc];
    switch (Op.K) {
    case PlanOp::Kind::LoopBegin: {
      int64_t Lo = Op.Lower.eval(Regs.data());
      int64_t Hi = Op.Upper.eval(Regs.data());
      if (Lo >= Hi) {
        Pc = static_cast<size_t>(Op.Jump);
        break;
      }
      Regs[Op.Reg] = Lo;
      LoopHi[Op.Reg] = Hi;
      ++Pc;
      break;
    }
    case PlanOp::Kind::LoopEnd: {
      int64_t Next = Regs[Op.Reg] + Op.Step;
      if (Next < LoopHi[Op.Reg]) {
        Regs[Op.Reg] = Next;
        Pc = static_cast<size_t>(Op.Jump);
      } else {
        ++Pc;
      }
      break;
    }
    case PlanOp::Kind::Stmt: {
      double Value = evalTape(Op, Regs.data(), Ptrs.data(), Stack.data(),
                              [&](const PlanAccess &Acc, size_t) {
                                int64_t Offset = Acc.Base.eval(Regs.data());
                                CheckAccess(Acc, Offset);
                                return Offset;
                              });
      int64_t WOff = Op.Write.Base.eval(Regs.data());
      CheckAccess(Op.Write, WOff);
      Ptrs[Op.Write.Slot][WOff] = Value;
      ++Pc;
      break;
    }
    case PlanOp::Kind::InnerStmt: {
      int64_t Lo = Op.Lower.eval(Regs.data());
      int64_t Hi = Op.Upper.eval(Regs.data());
      if (Lo < Hi) {
        for (size_t A = 0; A < Op.Loads.size(); ++A)
          Offs[A] = Op.Loads[A].Base.eval(Regs.data()) +
                    Op.Loads[A].InnerCoeff * Lo;
        int64_t WOff =
            Op.Write.Base.eval(Regs.data()) + Op.Write.InnerCoeff * Lo;
        double *WBuf = Ptrs[Op.Write.Slot];
        for (int64_t I = Lo; I < Hi; I += Op.Step) {
          Regs[Op.Reg] = I;
          double Value = evalTape(Op, Regs.data(), Ptrs.data(), Stack.data(),
                                  [&](const PlanAccess &Acc, size_t A) {
                                    CheckAccess(Acc, Offs[A]);
                                    return Offs[A];
                                  });
          CheckAccess(Op.Write, WOff);
          WBuf[WOff] = Value;
          for (size_t A = 0; A < Op.Loads.size(); ++A)
            Offs[A] += Op.Loads[A].InnerStep;
          WOff += Op.Write.InnerStep;
        }
      }
      ++Pc;
      break;
    }
    case PlanOp::Kind::Call: {
      const auto &Args = Op.ArgSlots;
      const auto &Dims = Op.CallDims;
      switch (Op.Callee) {
      case BlasKind::Gemm:
        gemm(Ptrs[Args[0]], Ptrs[Args[1]], Ptrs[Args[2]], Dims[0], Dims[1],
             Dims[2], Op.Alpha, Op.Beta);
        break;
      case BlasKind::Syrk:
        syrk(Ptrs[Args[0]], Ptrs[Args[1]], Dims[0], Dims[1], Op.Alpha,
             Op.Beta);
        break;
      case BlasKind::Syr2k:
        syr2k(Ptrs[Args[0]], Ptrs[Args[1]], Ptrs[Args[2]], Dims[0], Dims[1],
              Op.Alpha, Op.Beta);
        break;
      case BlasKind::Gemv:
        gemv(Ptrs[Args[0]], Ptrs[Args[1]], Ptrs[Args[2]], Dims[0], Dims[1],
             Op.Alpha, Op.Beta);
        break;
      }
      ++Pc;
      break;
    }
    }
  }
}

ExecPlan::Stats ExecPlan::stats() const {
  Stats Result;
  Result.Ops = Ops.size();
  Result.MaxLoopDepth = MaxDepth;
  for (const PlanOp &Op : Ops) {
    if (Op.K == PlanOp::Kind::Stmt || Op.K == PlanOp::Kind::InnerStmt)
      ++Result.Statements;
    if (Op.K == PlanOp::Kind::InnerStmt)
      ++Result.FastPathStatements;
  }
  return Result;
}
