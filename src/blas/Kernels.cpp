//===- blas/Kernels.cpp ---------------------------------------------------==//
//
// Part of the daisy project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "blas/Kernels.h"

#include <algorithm>

using namespace daisy;

void daisy::gemm(double *C, const double *A, const double *B, int64_t M,
                 int64_t N, int64_t K, double Alpha, double Beta) {
  for (int64_t I = 0; I < M; ++I)
    for (int64_t J = 0; J < N; ++J)
      C[I * N + J] *= Beta;
  // Blocked i-k-j loop order: the library kernel is itself written the way
  // the paper's canonical form ends up.
  constexpr int64_t Block = 64;
  for (int64_t II = 0; II < M; II += Block)
    for (int64_t KK = 0; KK < K; KK += Block)
      for (int64_t I = II; I < std::min(II + Block, M); ++I)
        for (int64_t Ki = KK; Ki < std::min(KK + Block, K); ++Ki) {
          double AVal = Alpha * A[I * K + Ki];
          for (int64_t J = 0; J < N; ++J)
            C[I * N + J] += AVal * B[Ki * N + J];
        }
}

void daisy::syrk(double *C, const double *A, int64_t N, int64_t K,
                 double Alpha, double Beta) {
  for (int64_t I = 0; I < N; ++I)
    for (int64_t J = 0; J <= I; ++J)
      C[I * N + J] *= Beta;
  for (int64_t I = 0; I < N; ++I)
    for (int64_t Ki = 0; Ki < K; ++Ki) {
      double AVal = Alpha * A[I * K + Ki];
      for (int64_t J = 0; J <= I; ++J)
        C[I * N + J] += AVal * A[J * K + Ki];
    }
}

void daisy::syr2k(double *C, const double *A, const double *B, int64_t N,
                  int64_t K, double Alpha, double Beta) {
  for (int64_t I = 0; I < N; ++I)
    for (int64_t J = 0; J <= I; ++J)
      C[I * N + J] *= Beta;
  for (int64_t I = 0; I < N; ++I)
    for (int64_t Ki = 0; Ki < K; ++Ki) {
      double AVal = Alpha * A[I * K + Ki];
      double BVal = Alpha * B[I * K + Ki];
      for (int64_t J = 0; J <= I; ++J)
        C[I * N + J] += AVal * B[J * K + Ki] + BVal * A[J * K + Ki];
    }
}

void daisy::gemv(double *Y, const double *A, const double *X, int64_t M,
                 int64_t N, double Alpha, double Beta) {
  for (int64_t I = 0; I < M; ++I) {
    double Sum = 0.0;
    for (int64_t J = 0; J < N; ++J)
      Sum += A[I * N + J] * X[J];
    Y[I] = Beta * Y[I] + Alpha * Sum;
  }
}

double daisy::blasEfficiency(BlasKind Kind,
                             const std::vector<int64_t> &Dims) {
  // Efficiencies modeled after vendor BLAS on a Haswell-class Xeon: BLAS-3
  // kernels reach a large fraction of peak once the problem is big enough
  // to amortize packing; BLAS-2 is bandwidth-bound.
  int64_t MinDim = Dims.empty() ? 1 : *std::min_element(Dims.begin(),
                                                        Dims.end());
  double SizeFactor = MinDim >= 256 ? 1.0 : (MinDim >= 64 ? 0.85 : 0.6);
  switch (Kind) {
  case BlasKind::Gemm:
    return 0.90 * SizeFactor;
  case BlasKind::Syrk:
  case BlasKind::Syr2k:
    return 0.80 * SizeFactor;
  case BlasKind::Gemv:
    // Memory bound: a gemv streams the matrix once, so the library call
    // must cost about as much as a well-vectorized streaming loop on the
    // same machine model (~3 cycles per element).
    return 0.04;
  }
  return 0.5;
}
