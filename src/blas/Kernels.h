//===- blas/Kernels.h - Model BLAS library ------------------------*- C++ -*-=//
//
// Part of the daisy project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The model BLAS library backing CallNode idioms. The paper's daisy
/// replaces detected BLAS-3 loop nests with optimized library calls; this
/// module is that library's substitute: reference kernels defining the
/// semantics (used by the interpreter) and a calibrated cost model (used
/// by the machine simulator — library kernels run near machine peak).
///
//===----------------------------------------------------------------------===//

#ifndef DAISY_BLAS_KERNELS_H
#define DAISY_BLAS_KERNELS_H

#include "ir/Node.h"

#include <cstdint>

namespace daisy {

/// C[M x N] = Beta*C + Alpha * A[M x K] * B[K x N], row-major.
void gemm(double *C, const double *A, const double *B, int64_t M, int64_t N,
          int64_t K, double Alpha, double Beta);

/// C[N x N] (lower triangle) = Beta*C + Alpha * A[N x K] * A^T.
void syrk(double *C, const double *A, int64_t N, int64_t K, double Alpha,
          double Beta);

/// C[N x N] (lower triangle) = Beta*C + Alpha*(A*B^T + B*A^T),
/// A and B are [N x K].
void syr2k(double *C, const double *A, const double *B, int64_t N, int64_t K,
           double Alpha, double Beta);

/// y[M] = Beta*y + Alpha * A[M x N] * x[N].
void gemv(double *Y, const double *A, const double *X, int64_t M, int64_t N,
          double Alpha, double Beta);

/// Fraction of machine peak FLOP/s the library kernel sustains; the
/// machine model charges Call nodes flops() / (Peak * efficiency).
double blasEfficiency(BlasKind Kind, const std::vector<int64_t> &Dims);

} // namespace daisy

#endif // DAISY_BLAS_KERNELS_H
