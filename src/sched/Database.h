//===- sched/Database.h - Transfer-tuning database ---------------*- C++ -*-=//
//
// Part of the daisy project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The transfer-tuning database (paper §4): "pairs of an embedding for the
/// loop nest and transformation sequences ... The database is seeded from
/// normalized loop nests of the A variants and then applied to the
/// normalized B variants."
///
/// Lookup is nearest-neighbour in embedding space, with a structural-hash
/// shortcut for exact canonical matches. "If a B loop nest is not reduced
/// to an A loop nest, the transformation sequence cannot be applied" — the
/// recipe application is legality-checked, so a mismatched transfer
/// degrades instead of miscompiling, and lookups farther than a distance
/// threshold return nothing.
///
//===----------------------------------------------------------------------===//

#ifndef DAISY_SCHED_DATABASE_H
#define DAISY_SCHED_DATABASE_H

#include "sched/Embedding.h"
#include "sched/Recipe.h"

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace daisy {

/// One database entry.
struct DatabaseEntry {
  std::string Name;               ///< Origin label ("gemm/nest0").
  uint64_t CanonicalHash = 0;     ///< Structural hash of the nest.
  PerformanceEmbedding Embedding; ///< Performance embedding key.
  Recipe Optimization;            ///< The transferred value.
};

/// The embedding-keyed store of optimization recipes.
class TransferTuningDatabase {
public:
  /// Inserts an entry.
  void insert(DatabaseEntry Entry);

  /// Nearest entry by embedding distance (exact hash matches win
  /// outright). Returns nullptr for an empty database or when the nearest
  /// entry is farther than \p MaxDistance.
  const DatabaseEntry *lookup(const PerformanceEmbedding &Key,
                              uint64_t CanonicalHash,
                              double MaxDistance = 1e9) const;

  /// The \p K nearest entries by embedding distance (for evolutionary
  /// re-seeding from "the ten most similar loop nests").
  std::vector<const DatabaseEntry *>
  nearest(const PerformanceEmbedding &Key, size_t K) const;

  size_t size() const { return Entries.size(); }
  const std::vector<DatabaseEntry> &entries() const { return Entries; }

private:
  std::vector<DatabaseEntry> Entries;
};

} // namespace daisy

#endif // DAISY_SCHED_DATABASE_H
