//===- sched/Database.h - Transfer-tuning database ---------------*- C++ -*-=//
//
// Part of the daisy project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The transfer-tuning database (paper §4): "pairs of an embedding for the
/// loop nest and transformation sequences ... The database is seeded from
/// normalized loop nests of the A variants and then applied to the
/// normalized B variants."
///
/// Lookup is nearest-neighbour in embedding space, with a structural-hash
/// shortcut for exact canonical matches. "If a B loop nest is not reduced
/// to an A loop nest, the transformation sequence cannot be applied" — the
/// recipe application is legality-checked, so a mismatched transfer
/// degrades instead of miscompiling, and lookups farther than a distance
/// threshold return nothing.
///
//===----------------------------------------------------------------------===//

#ifndef DAISY_SCHED_DATABASE_H
#define DAISY_SCHED_DATABASE_H

#include "sched/Embedding.h"
#include "sched/Recipe.h"

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace daisy {

/// One database entry.
struct DatabaseEntry {
  std::string Name;               ///< Origin label ("gemm/nest0").
  uint64_t CanonicalHash = 0;     ///< Structural hash of the nest.
  PerformanceEmbedding Embedding; ///< Performance embedding key.
  Recipe Optimization;            ///< The transferred value.
};

/// The embedding-keyed store of optimization recipes.
///
/// The entry vector is held behind a copy-on-write shared_ptr: copying a
/// database (or taking snapshot()) is O(1) pointer sharing, and insert
/// clones the vector only while snapshots are outstanding. This is what
/// lets Engine::schedule/optimize/seedDatabase take a consistent snapshot
/// under the database lock in constant time and run the scheduling
/// pipeline unlocked — the former deep copy per call was fine at tens of
/// entries and wrong at thousands. The database itself is not
/// thread-safe; callers (api/Engine.h) serialize mutation against
/// snapshot-taking.
class TransferTuningDatabase {
public:
  TransferTuningDatabase()
      : Entries(std::make_shared<std::vector<DatabaseEntry>>()),
        Calibration(std::make_shared<std::unordered_map<uint64_t, double>>()) {
  }

  /// Inserts an entry. Copy-on-write: when snapshots (or database
  /// copies) share the entry vector, it is cloned first, so existing
  /// readers keep their immutable view. Like vector growth, insertion
  /// invalidates pointers previously returned by lookup/nearest.
  void insert(DatabaseEntry Entry);

  /// Nearest entry by embedding distance (exact hash matches win
  /// outright). Returns nullptr for an empty database or when the nearest
  /// entry is farther than \p MaxDistance.
  const DatabaseEntry *lookup(const PerformanceEmbedding &Key,
                              uint64_t CanonicalHash,
                              double MaxDistance = 1e9) const;

  /// The \p K nearest entries by embedding distance (for evolutionary
  /// re-seeding from "the ten most similar loop nests").
  std::vector<const DatabaseEntry *>
  nearest(const PerformanceEmbedding &Key, size_t K) const;

  size_t size() const { return Entries->size(); }
  const std::vector<DatabaseEntry> &entries() const { return *Entries; }

  /// An immutable O(1) snapshot of the current entries: stays valid and
  /// unchanged however the database is mutated afterwards (inserts then
  /// copy-on-write into a fresh vector).
  std::shared_ptr<const std::vector<DatabaseEntry>> snapshot() const {
    return Entries;
  }

  //===--------------------------------------------------------------------===//
  // Simulator calibration (the online tuner's measured-runtime feedback)
  //
  // The machine model predicts relative plan quality well but absolute
  // runtimes poorly; the online tuner (tune/Tuner.h) closes the gap with
  // one measured scale factor per kernel routing key:
  // measured-seconds = scale * simulated-seconds for that kernel's
  // current plan. Stored here — not in the tuner — so Engine checkpoints
  // persist calibration alongside the entries and a restarted process
  // resumes with a warmed-up model. Same copy-on-write discipline as the
  // entries: snapshots are O(1) and immutable, setCalibration un-shares.
  //===--------------------------------------------------------------------===//

  /// Records (or overwrites) the measured/simulated scale factor of the
  /// kernel identified by \p RoutingKey.
  void setCalibration(uint64_t RoutingKey, double Scale);

  /// The stored scale factor, or 0.0 when this kernel was never
  /// calibrated (0 is impossible for a real measurement).
  double calibration(uint64_t RoutingKey) const;

  size_t calibrationCount() const { return Calibration->size(); }

  /// Immutable O(1) snapshot of the calibration map, keyed sorted at
  /// serialization time (the map itself is unordered).
  std::shared_ptr<const std::unordered_map<uint64_t, double>>
  calibrationSnapshot() const {
    return Calibration;
  }

private:
  /// Never null. Shared with snapshots and database copies; insert
  /// un-shares before mutating.
  std::shared_ptr<std::vector<DatabaseEntry>> Entries;
  /// Never null. Copy-on-write like Entries.
  std::shared_ptr<std::unordered_map<uint64_t, double>> Calibration;
};

/// Version tag of the entry serialization below. Bumped whenever the
/// byte layout changes; support/Persist rejects checkpoints written
/// under a different version, so a format change reads as a clean miss
/// instead of garbage entries. Version 2 appended the calibration
/// section (sorted routing-key/scale pairs after the entries), so
/// version-1 checkpoints from older builds read as a clean miss.
constexpr uint32_t DatabaseFormatVersion = 2;

/// Serializes \p Entries (and, when given, the simulator \p Calibration
/// map, emitted key-sorted so identical state always produces identical
/// bytes) into a self-contained little-endian payload (checkpointed by
/// api/Engine under EngineOptions::DatabasePath).
std::vector<uint8_t> serializeDatabaseEntries(
    const std::vector<DatabaseEntry> &Entries,
    const std::unordered_map<uint64_t, double> &Calibration = {});

/// Decodes a payload produced by serializeDatabaseEntries into \p Out
/// (and \p CalibOut when the caller wants the calibration section).
/// Returns false (leaving the outputs empty) on any structural mismatch —
/// every read is bounds-checked, so a corrupted payload that slipped
/// past the checksum still cannot produce out-of-bounds reads or
/// half-decoded entries.
bool deserializeDatabaseEntries(
    const std::vector<uint8_t> &Payload, std::vector<DatabaseEntry> &Out,
    std::unordered_map<uint64_t, double> *CalibOut = nullptr);

} // namespace daisy

#endif // DAISY_SCHED_DATABASE_H
