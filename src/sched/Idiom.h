//===- sched/Idiom.h - BLAS idiom detection ----------------------*- C++ -*-=//
//
// Part of the daisy project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Detection of BLAS kernels in (normalized) loop nests and their
/// replacement by library calls (paper §4: "For each loop nest
/// corresponding to a BLAS-3 kernel, we add an optimization recipe to
/// perform idiom detection, i.e., replacing the loop nest with the
/// matching BLAS library call").
///
/// Detection is structural and order-insensitive within the band, but it
/// requires a single-computation nest — which is exactly what maximal
/// fission produces. This is why BLAS lifting "fails without normalization
/// on several benchmarks, e.g., 2mm, 3mm and gemm" (paper §4.3): in fused
/// or permuted variants the pattern does not appear as a standalone nest.
///
//===----------------------------------------------------------------------===//

#ifndef DAISY_SCHED_IDIOM_H
#define DAISY_SCHED_IDIOM_H

#include "ir/Program.h"

#include <optional>
#include <set>

namespace daisy {

/// A detected idiom, ready to replace the nest.
struct IdiomMatch {
  std::shared_ptr<CallNode> Call;
  BlasKind Kind;
};

/// Tries to match \p Root against the BLAS kernels in \p Enabled.
/// Matching requires a rectangular (or, for syrk/syr2k, lower-triangular)
/// band with zero-based bounds and a single computation of the
/// corresponding form; alpha is extracted from a constant factor.
std::optional<IdiomMatch>
detectBlasIdiom(const NodePtr &Root, const Program &Prog,
                const std::set<BlasKind> &Enabled = {
                    BlasKind::Gemm, BlasKind::Syrk, BlasKind::Syr2k,
                    BlasKind::Gemv});

} // namespace daisy

#endif // DAISY_SCHED_IDIOM_H
