//===- sched/Search.h - Recipe search (MCTS + evolutionary) ------*- C++ -*-=//
//
// Part of the daisy project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The two search procedures behind the schedulers:
///
/// - mctsCandidates: a Monte-Carlo tree search over the schedule space
///   (permutation, tiling, parallelization, vectorization) guided by the
///   machine cost model — the stand-in for the Tiramisu auto-scheduler's
///   MCTS + learned cost model (paper §4, Baselines).
/// - evolveRecipe: the evolutionary search daisy uses to seed its
///   database: "In the first epoch ... candidate optimizations for each
///   loop nest are seeded using the Tiramisu auto-scheduler. This
///   population is refined in three iterations through standard mutation
///   and selection techniques, where the runtime determines the fitness.
///   In the second and third epochs, the population is re-seeded using
///   the current best optimization of the ten most similar loop nests."
///
//===----------------------------------------------------------------------===//

#ifndef DAISY_SCHED_SEARCH_H
#define DAISY_SCHED_SEARCH_H

#include "machine/Simulator.h"
#include "sched/Database.h"
#include "sched/Recipe.h"
#include "support/Random.h"

#include <vector>

namespace daisy {

/// Fitness: simulated runtime of \p Prog with nest \p Index replaced by
/// \p Nest (lower is better).
double evaluateNestRuntime(const Program &Prog, size_t Index,
                           const NodePtr &Nest, const SimOptions &Options);

/// Applies \p R to nest \p Index of \p Prog and returns its runtime.
double evaluateRecipe(const Recipe &R, const Program &Prog, size_t Index,
                      const SimOptions &Options);

/// Budget knobs for the searches.
struct SearchBudget {
  int MctsRollouts = 48;
  int PopulationSize = 6;
  int IterationsPerEpoch = 3;
  int Epochs = 3;
  int ReSeedNeighbours = 10;
};

/// Monte-Carlo tree search over the schedule space of nest \p Index.
/// Returns up to \p TopK candidate recipes ordered best-first. The search
/// is deterministic for a given seed; the seed is derived from the nest
/// structure, modeling the search's sensitivity to the input loop
/// structure.
std::vector<Recipe> mctsCandidates(const Program &Prog, size_t Index,
                                   const SimOptions &Options,
                                   const SearchBudget &Budget, int TopK = 3);

/// Random recipe mutation (tile sizes, permutation, parallel/vector
/// toggles).
Recipe mutateRecipe(const Recipe &R, size_t BandSize, Rng &R2);

/// Evolutionary recipe search for nest \p Index, optionally re-seeding
/// from \p Db (the database built so far).
Recipe evolveRecipe(const Program &Prog, size_t Index,
                    const TransferTuningDatabase &Db,
                    const SimOptions &Options, const SearchBudget &Budget,
                    Rng &Rand);

} // namespace daisy

#endif // DAISY_SCHED_SEARCH_H
