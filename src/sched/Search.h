//===- sched/Search.h - Recipe search (MCTS + evolutionary) ------*- C++ -*-=//
//
// Part of the daisy project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The two search procedures behind the schedulers:
///
/// - mctsCandidates: a Monte-Carlo tree search over the schedule space
///   (permutation, tiling, parallelization, vectorization) guided by the
///   machine cost model — the stand-in for the Tiramisu auto-scheduler's
///   MCTS + learned cost model (paper §4, Baselines).
/// - evolveRecipe: the evolutionary search daisy uses to seed its
///   database: "In the first epoch ... candidate optimizations for each
///   loop nest are seeded using the Tiramisu auto-scheduler. This
///   population is refined in three iterations through standard mutation
///   and selection techniques, where the runtime determines the fitness.
///   In the second and third epochs, the population is re-seeded using
///   the current best optimization of the ten most similar loop nests."
///
/// Both searches score candidates through the sched/Evaluator.h
/// subsystem: simulations are memoized in its SimCache and candidate
/// sets are fanned over the thread pool. Every random draw a rollout or
/// mutation makes is derived from a deterministic stream — the MCTS
/// completes rollout R from an Rng seeded by (structuralHash(Nest), R),
/// never from a shared sequential generator — so search results are
/// bit-identical at every thread count and with the cache on or off.
///
//===----------------------------------------------------------------------===//

#ifndef DAISY_SCHED_SEARCH_H
#define DAISY_SCHED_SEARCH_H

#include "machine/Simulator.h"
#include "sched/Database.h"
#include "sched/Evaluator.h"
#include "sched/Recipe.h"
#include "support/Random.h"

#include <vector>

namespace daisy {

/// Fitness: simulated runtime of \p Prog with nest \p Index replaced by
/// \p Nest (lower is better). Shares the untouched sibling nests with
/// \p Prog instead of cloning the whole program.
double evaluateNestRuntime(const Program &Prog, size_t Index,
                           const NodePtr &Nest, const SimOptions &Options);

/// Applies \p R to nest \p Index of \p Prog and returns its runtime.
/// Clones only the nest under evaluation (inside applyRecipe); use an
/// Evaluator to additionally memoize and batch.
double evaluateRecipe(const Recipe &R, const Program &Prog, size_t Index,
                      const SimOptions &Options);

/// Budget knobs for the searches.
struct SearchBudget {
  int MctsRollouts = 48;
  int PopulationSize = 6;
  int IterationsPerEpoch = 3;
  int Epochs = 3;
  int ReSeedNeighbours = 10;
  /// Rollouts selected (by UCB with virtual visits) and evaluated as one
  /// batch per MCTS wave. Part of the budget — not a thread count — so
  /// wave composition, and with it the search result, is identical no
  /// matter how many threads evaluate the wave.
  int MctsWave = 8;
};

/// Monte-Carlo tree search over the schedule space of nest \p Index.
/// Returns up to \p TopK candidate recipes ordered best-first. The search
/// is deterministic for a given nest structure: arm statistics advance in
/// rollout order and each rollout's random completions come from its own
/// (structuralHash(Nest), Rollout)-derived stream, so the result is
/// independent of evaluation order, thread count, and cache state.
std::vector<Recipe> mctsCandidates(const Program &Prog, size_t Index,
                                   Evaluator &Eval,
                                   const SearchBudget &Budget, int TopK = 3);

/// Random recipe mutation (tile sizes, permutation, parallel/vector
/// toggles).
Recipe mutateRecipe(const Recipe &R, size_t BandSize, Rng &R2);

/// Evolutionary recipe search for nest \p Index, optionally re-seeding
/// from \p Db (the database built so far). Mutations are drawn from
/// \p Rand in a fixed serial order; only the scoring is batched, so the
/// returned recipe is bit-identical at every evaluator thread count.
Recipe evolveRecipe(const Program &Prog, size_t Index,
                    const TransferTuningDatabase &Db, Evaluator &Eval,
                    const SearchBudget &Budget, Rng &Rand);

} // namespace daisy

#endif // DAISY_SCHED_SEARCH_H
