//===- sched/FrameworkModels.h - NumPy/Numba/DaCe models ---------*- C++ -*-=//
//
// Part of the daisy project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Models of the Python frameworks compared in paper §4.3. All three "use
/// custom operators to call optimized BLAS libraries for specific
/// operations" — gemm and gemv, but not syrk/syr2k ("the baseline
/// frameworks do not provide custom operators here"). Beyond operators:
///
/// - NumPy: eager per-operation execution of the lowered nests with
///   materialized temporaries; ufunc loops are vectorized but never
///   parallelized or restructured.
/// - Numba: JIT of the lowered loops: outer-loop auto-parallelization
///   (prange) and innermost vectorization, no restructuring.
/// - DaCe: dataflow optimization of the SDFG: one-to-one producer-
///   consumer fusion, map parallelization, vectorization.
///
//===----------------------------------------------------------------------===//

#ifndef DAISY_SCHED_FRAMEWORKMODELS_H
#define DAISY_SCHED_FRAMEWORKMODELS_H

#include "sched/Schedulers.h"

namespace daisy {

/// Operators available to the Python frameworks (paper §4.3).
std::set<BlasKind> pythonFrameworkOperators();

/// NumPy 1.25-style execution model.
class NumPyScheduler : public Scheduler {
public:
  std::string name() const override { return "NumPy"; }
  std::optional<Program> schedule(const Program &Prog) override;
};

/// Numba 0.58-style JIT model.
class NumbaScheduler : public Scheduler {
public:
  std::string name() const override { return "Numba"; }
  std::optional<Program> schedule(const Program &Prog) override;
};

/// DaCe 0.14-style dataflow-optimization model.
class DaCeScheduler : public Scheduler {
public:
  std::string name() const override { return "DaCe"; }
  std::optional<Program> schedule(const Program &Prog) override;
};

} // namespace daisy

#endif // DAISY_SCHED_FRAMEWORKMODELS_H
