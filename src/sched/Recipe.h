//===- sched/Recipe.h - Transformation recipes -------------------*- C++ -*-=//
//
// Part of the daisy project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Transformation recipes: the values stored in the transfer-tuning
/// database. A recipe is an ordered list of schedule steps ("loop
/// interchange, tiling, parallelization and vectorization", paper §4)
/// plus the BLAS replacement step for idiom recipes. Application is
/// legality-checked step by step; steps that do not apply are skipped, so
/// a recipe transferred to a merely similar nest degrades gracefully.
///
//===----------------------------------------------------------------------===//

#ifndef DAISY_SCHED_RECIPE_H
#define DAISY_SCHED_RECIPE_H

#include "ir/Program.h"

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace daisy {

/// One step of a recipe.
struct RecipeStep {
  enum class Kind {
    Permute,             ///< Reorder the perfect band (band positions).
    Tile,                ///< Tile the leading band loops.
    ParallelizeOutermost,///< Mark the outermost parallel loop.
    VectorizeInnermost,  ///< Mark unit-stride innermost loops SIMD.
    StripMineVectorize,  ///< Strip-mine a band level into a SIMD loop.
    BlasReplace          ///< Replace the nest with a library call.
  };

  Kind StepKind = Kind::VectorizeInnermost;
  /// Permute: the new order as band positions (e.g. {2,0,1}).
  std::vector<int> Perm;
  /// Tile: tile size per band level (0/1 = untiled).
  std::vector<int64_t> Tiles;
  /// StripMineVectorize: band level and width.
  int Level = 0;
  int64_t Width = 4;

  std::string toString() const;
};

/// An ordered transformation sequence.
struct Recipe {
  std::vector<RecipeStep> Steps;

  std::string toString() const;

  /// Convenience factories.
  static Recipe blasRecipe();
  static Recipe defaultParallelRecipe();
};

/// Applies \p R to nest \p Root within \p Prog. Every structural step is
/// legality-checked (illegal or inapplicable steps are skipped). The
/// BlasReplace step succeeds only if idiom detection matches. Returns the
/// transformed nest.
NodePtr applyRecipe(const Recipe &R, const NodePtr &Root, Program &Prog);

} // namespace daisy

#endif // DAISY_SCHED_RECIPE_H
