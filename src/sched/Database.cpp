//===- sched/Database.cpp -------------------------------------------------==//
//
// Part of the daisy project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "sched/Database.h"

#include "support/Persist.h"

#include <algorithm>

using namespace daisy;

void TransferTuningDatabase::insert(DatabaseEntry Entry) {
  // Copy-on-write: outstanding snapshots (and database copies) keep the
  // vector they saw; only the first insert after a share pays the clone.
  if (Entries.use_count() > 1)
    Entries = std::make_shared<std::vector<DatabaseEntry>>(*Entries);
  Entries->push_back(std::move(Entry));
}

void TransferTuningDatabase::setCalibration(uint64_t RoutingKey,
                                            double Scale) {
  // Same copy-on-write discipline as insert: outstanding calibration
  // snapshots keep the map they saw.
  if (Calibration.use_count() > 1)
    Calibration =
        std::make_shared<std::unordered_map<uint64_t, double>>(*Calibration);
  (*Calibration)[RoutingKey] = Scale;
}

double TransferTuningDatabase::calibration(uint64_t RoutingKey) const {
  auto It = Calibration->find(RoutingKey);
  return It == Calibration->end() ? 0.0 : It->second;
}

const DatabaseEntry *
TransferTuningDatabase::lookup(const PerformanceEmbedding &Key,
                               uint64_t CanonicalHash,
                               double MaxDistance) const {
  const DatabaseEntry *Best = nullptr;
  double BestDistance = MaxDistance;
  for (const DatabaseEntry &Entry : *Entries) {
    if (Entry.CanonicalHash == CanonicalHash)
      return &Entry;
    double Distance = Key.distance(Entry.Embedding);
    if (Distance <= BestDistance) {
      Best = &Entry;
      BestDistance = Distance;
    }
  }
  return Best;
}

std::vector<const DatabaseEntry *>
TransferTuningDatabase::nearest(const PerformanceEmbedding &Key,
                                size_t K) const {
  std::vector<const DatabaseEntry *> Result;
  for (const DatabaseEntry &Entry : *Entries)
    Result.push_back(&Entry);
  std::stable_sort(Result.begin(), Result.end(),
                   [&Key](const DatabaseEntry *A, const DatabaseEntry *B) {
                     return Key.distance(A->Embedding) <
                            Key.distance(B->Embedding);
                   });
  if (Result.size() > K)
    Result.resize(K);
  return Result;
}

//===----------------------------------------------------------------------===//
// Serialization (the payload of api/Engine's checkpoints)
//===----------------------------------------------------------------------===//

std::vector<uint8_t> daisy::serializeDatabaseEntries(
    const std::vector<DatabaseEntry> &Entries,
    const std::unordered_map<uint64_t, double> &Calibration) {
  ByteWriter W;
  W.u64(Entries.size());
  for (const DatabaseEntry &E : Entries) {
    W.str(E.Name);
    W.u64(E.CanonicalHash);
    for (double F : E.Embedding.Features)
      W.f64(F);
    W.u64(E.Optimization.Steps.size());
    for (const RecipeStep &S : E.Optimization.Steps) {
      W.u8(static_cast<uint8_t>(S.StepKind));
      W.u64(S.Perm.size());
      for (int P : S.Perm)
        W.i64(P);
      W.u64(S.Tiles.size());
      for (int64_t T : S.Tiles)
        W.i64(T);
      W.i64(S.Level);
      W.i64(S.Width);
    }
  }
  // Calibration section (format version 2): key-sorted so identical
  // state always serializes to identical bytes, making the engine's
  // pointer-equality unchanged-test an if-and-only-if in practice.
  std::vector<std::pair<uint64_t, double>> Sorted(Calibration.begin(),
                                                  Calibration.end());
  std::sort(Sorted.begin(), Sorted.end());
  W.u64(Sorted.size());
  for (const auto &[Key, Scale] : Sorted) {
    W.u64(Key);
    W.f64(Scale);
  }
  return W.take();
}

bool daisy::deserializeDatabaseEntries(
    const std::vector<uint8_t> &Payload, std::vector<DatabaseEntry> &Out,
    std::unordered_map<uint64_t, double> *CalibOut) {
  Out.clear();
  if (CalibOut)
    CalibOut->clear();
  ByteReader R(Payload);
  uint64_t Count = R.u64();
  // An impossible count (each entry costs well over 16 bytes) fails fast
  // instead of attempting a giant reserve on a corrupted length field.
  if (!R.ok() || Count > Payload.size() / 16 + 1)
    return false;
  Out.reserve(static_cast<size_t>(Count));
  for (uint64_t I = 0; I < Count && R.ok(); ++I) {
    DatabaseEntry E;
    E.Name = R.str();
    E.CanonicalHash = R.u64();
    for (double &F : E.Embedding.Features)
      F = R.f64();
    uint64_t Steps = R.u64();
    if (!R.ok() || Steps > Payload.size())
      break;
    E.Optimization.Steps.reserve(static_cast<size_t>(Steps));
    for (uint64_t S = 0; S < Steps && R.ok(); ++S) {
      RecipeStep Step;
      uint8_t Kind = R.u8();
      if (Kind > static_cast<uint8_t>(RecipeStep::Kind::BlasReplace)) {
        Out.clear();
        return false;
      }
      Step.StepKind = static_cast<RecipeStep::Kind>(Kind);
      uint64_t PermLen = R.u64();
      if (!R.ok() || PermLen > Payload.size()) {
        Out.clear();
        return false;
      }
      Step.Perm.reserve(static_cast<size_t>(PermLen));
      for (uint64_t P = 0; P < PermLen && R.ok(); ++P)
        Step.Perm.push_back(static_cast<int>(R.i64()));
      uint64_t TileLen = R.u64();
      if (!R.ok() || TileLen > Payload.size()) {
        Out.clear();
        return false;
      }
      Step.Tiles.reserve(static_cast<size_t>(TileLen));
      for (uint64_t T = 0; T < TileLen && R.ok(); ++T)
        Step.Tiles.push_back(R.i64());
      Step.Level = static_cast<int>(R.i64());
      Step.Width = R.i64();
      E.Optimization.Steps.push_back(std::move(Step));
    }
    Out.push_back(std::move(E));
  }
  uint64_t CalibCount = R.u64();
  if (!R.ok() || CalibCount > Payload.size() / 16 + 1) {
    Out.clear();
    return false;
  }
  for (uint64_t I = 0; I < CalibCount && R.ok(); ++I) {
    uint64_t Key = R.u64();
    double Scale = R.f64();
    if (CalibOut)
      (*CalibOut)[Key] = Scale;
  }
  if (!R.ok() || !R.atEnd() || Out.size() != Count) {
    Out.clear();
    if (CalibOut)
      CalibOut->clear();
    return false;
  }
  return true;
}
