//===- sched/Database.cpp -------------------------------------------------==//
//
// Part of the daisy project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "sched/Database.h"

#include <algorithm>

using namespace daisy;

void TransferTuningDatabase::insert(DatabaseEntry Entry) {
  // Copy-on-write: outstanding snapshots (and database copies) keep the
  // vector they saw; only the first insert after a share pays the clone.
  if (Entries.use_count() > 1)
    Entries = std::make_shared<std::vector<DatabaseEntry>>(*Entries);
  Entries->push_back(std::move(Entry));
}

const DatabaseEntry *
TransferTuningDatabase::lookup(const PerformanceEmbedding &Key,
                               uint64_t CanonicalHash,
                               double MaxDistance) const {
  const DatabaseEntry *Best = nullptr;
  double BestDistance = MaxDistance;
  for (const DatabaseEntry &Entry : *Entries) {
    if (Entry.CanonicalHash == CanonicalHash)
      return &Entry;
    double Distance = Key.distance(Entry.Embedding);
    if (Distance <= BestDistance) {
      Best = &Entry;
      BestDistance = Distance;
    }
  }
  return Best;
}

std::vector<const DatabaseEntry *>
TransferTuningDatabase::nearest(const PerformanceEmbedding &Key,
                                size_t K) const {
  std::vector<const DatabaseEntry *> Result;
  for (const DatabaseEntry &Entry : *Entries)
    Result.push_back(&Entry);
  std::stable_sort(Result.begin(), Result.end(),
                   [&Key](const DatabaseEntry *A, const DatabaseEntry *B) {
                     return Key.distance(A->Embedding) <
                            Key.distance(B->Embedding);
                   });
  if (Result.size() > K)
    Result.resize(K);
  return Result;
}
