//===- sched/Evaluator.cpp ------------------------------------------------==//
//
// Part of the daisy project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "sched/Evaluator.h"

#include "exec/ThreadPool.h"
#include "ir/StructuralHash.h"
#include "support/Hashing.h"
#include "support/Statistics.h"

#include <algorithm>

using namespace daisy;

uint64_t SimCache::keyFor(const Program &Prog, const SimOptions &Options) {
  HashCombiner D(0x73696D6B6579ull); // "simkey"
  D.combine(structuralHashWithMarks(Prog));
  D.combine(programDataDigest(Prog));
  D.combine(simOptionsDigest(Options));
  return D.value();
}

double SimCache::seconds(const Program &Prog, const SimOptions &Options) {
  uint64_t Key = keyFor(Prog, Options);
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    auto It = Entries.find(Key);
    if (It != Entries.end()) {
      addStatsCounter("SimCache.Hits");
      return It->second;
    }
  }
  // Simulate outside the lock: the walk is the expensive part, and a
  // racing duplicate computes the identical value.
  addStatsCounter("SimCache.Misses");
  double Seconds = simulateProgram(Prog, Options).Seconds;
  std::lock_guard<std::mutex> Lock(Mutex);
  Entries.emplace(Key, Seconds);
  return Seconds;
}

size_t SimCache::size() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Entries.size();
}

Evaluator::Evaluator(SimOptions Options, EvalConfig Config)
    : Options(std::move(Options)), Config(Config) {
  Threads = Config.NumThreads > 0 ? Config.NumThreads
                                  : ThreadPool::defaultThreadCount();
  if (Threads < 1)
    Threads = 1;
}

double Evaluator::programSeconds(const Program &Ctx) {
  addStatsCounter("Evaluator.Candidates");
  if (Config.EnableCache)
    return Cache.seconds(Ctx, Options);
  return simulateProgram(Ctx, Options).Seconds;
}

double Evaluator::recipeSeconds(const Program &Prog, size_t Index,
                                const Recipe &R) {
  // Shallow program copy: topLevel shares every sibling nest; arrays and
  // parameters are value-copied so applyRecipe may extend them freely.
  Program Ctx = Prog;
  Ctx.topLevel()[Index] = applyRecipe(R, Prog.topLevel()[Index], Ctx);
  return programSeconds(Ctx);
}

std::vector<double>
Evaluator::recipeSecondsBatch(const Program &Prog, size_t Index,
                              const std::vector<Recipe> &Recipes) {
  std::vector<double> Results(Recipes.size(), 0.0);
  size_t Count = Recipes.size();
  int Lanes = static_cast<int>(
      std::min<size_t>(static_cast<size_t>(Threads), Count));
  if (Lanes <= 1) {
    for (size_t I = 0; I < Count; ++I)
      Results[I] = recipeSeconds(Prog, Index, Recipes[I]);
    return Results;
  }
  // One lane per requested thread: lane L scores candidates L, L+Lanes,
  // ... so concurrency is bounded by the evaluator's thread count, not the
  // (larger) pool size, and every result lands in its input slot. Each
  // score is deterministic and independent, so the partition does not
  // influence the values.
  addStatsCounter("Evaluator.Batches");
  ThreadPool::global().run(Lanes, [&](int Lane) {
    for (size_t I = static_cast<size_t>(Lane); I < Count;
         I += static_cast<size_t>(Lanes))
      Results[I] = recipeSeconds(Prog, Index, Recipes[I]);
  });
  return Results;
}
