//===- sched/Search.cpp ---------------------------------------------------==//
//
// Part of the daisy project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "sched/Search.h"

#include "analysis/Legality.h"
#include "ir/StructuralHash.h"
#include "sched/Embedding.h"

#include <algorithm>
#include <cmath>

using namespace daisy;

double daisy::evaluateNestRuntime(const Program &Prog, size_t Index,
                                  const NodePtr &Nest,
                                  const SimOptions &Options) {
  // Shallow copy: sibling nests are shared (simulation only reads them);
  // only the top-level slot under evaluation is rebound.
  Program Ctx = Prog;
  Ctx.topLevel()[Index] = Nest;
  return simulateProgram(Ctx, Options).Seconds;
}

double daisy::evaluateRecipe(const Recipe &R, const Program &Prog,
                             size_t Index, const SimOptions &Options) {
  Program Ctx = Prog;
  Ctx.topLevel()[Index] = applyRecipe(R, Prog.topLevel()[Index], Ctx);
  return simulateProgram(Ctx, Options).Seconds;
}

namespace {

/// The discrete action space of the schedule search.
struct ActionSpace {
  std::vector<std::vector<int>> Permutations; // band-position orders
  std::vector<std::vector<int64_t>> TileChoices;
  // Parallelize and vectorize are booleans.
};

ActionSpace buildActionSpace(size_t BandSize) {
  ActionSpace Space;
  // Permutations: identity plus rotations/swaps (bounded for deep bands).
  std::vector<int> Identity;
  for (size_t I = 0; I < BandSize; ++I)
    Identity.push_back(static_cast<int>(I));
  std::vector<int> Perm = Identity;
  int Count = 0;
  do {
    Space.Permutations.push_back(Perm);
    ++Count;
  } while (Count < 24 && std::next_permutation(Perm.begin(), Perm.end()));

  Space.TileChoices.push_back({});
  for (int64_t T : {8, 16, 32}) {
    std::vector<int64_t> Tiles(BandSize, T);
    Space.TileChoices.push_back(Tiles);
  }
  if (BandSize >= 2)
    Space.TileChoices.push_back(
        std::vector<int64_t>(BandSize, static_cast<int64_t>(0)));
  return Space;
}

Recipe buildRecipe(const ActionSpace &Space, size_t PermChoice,
                   size_t TileChoice, bool Parallel, bool Vectorize) {
  Recipe R;
  RecipeStep Perm;
  Perm.StepKind = RecipeStep::Kind::Permute;
  Perm.Perm = Space.Permutations[PermChoice];
  R.Steps.push_back(Perm);
  if (!Space.TileChoices[TileChoice].empty()) {
    RecipeStep Tile;
    Tile.StepKind = RecipeStep::Kind::Tile;
    Tile.Tiles = Space.TileChoices[TileChoice];
    R.Steps.push_back(Tile);
  }
  if (Parallel) {
    RecipeStep Par;
    Par.StepKind = RecipeStep::Kind::ParallelizeOutermost;
    R.Steps.push_back(Par);
  }
  if (Vectorize) {
    RecipeStep Vec;
    Vec.StepKind = RecipeStep::Kind::VectorizeInnermost;
    R.Steps.push_back(Vec);
  }
  return R;
}

} // namespace

std::vector<Recipe> daisy::mctsCandidates(const Program &Prog, size_t Index,
                                          Evaluator &Eval,
                                          const SearchBudget &Budget,
                                          int TopK) {
  const NodePtr &Nest = Prog.topLevel()[Index];
  size_t BandSize = perfectNestBand(Nest).size();
  if (BandSize == 0)
    return {};
  ActionSpace Space = buildActionSpace(BandSize);

  // Flat UCB over the first decision (permutation); rollouts complete the
  // remaining decisions at random. This is a faithful, small-scale MCTS:
  // the statistics concentrate simulation effort on promising subtrees.
  //
  // Rollouts proceed in waves of Budget.MctsWave: a wave's arms are
  // selected up front by UCB1 with virtual visits (each selection counts
  // as a visit for the next, so one wave spreads over the tree the way
  // sequential selection would), the wave's candidates are scored as one
  // batch over the thread pool, and the statistics advance in rollout
  // order. Each rollout's random completions come from an Rng derived
  // from (structuralHash(Nest), Rollout), so neither wave shape nor
  // evaluation order can change any draw.
  uint64_t NestSeed = structuralHash(Nest); // structure-dependent seed
  size_t Arms = Space.Permutations.size();
  std::vector<double> BestReward(Arms, 0.0);
  std::vector<int> Visits(Arms, 0);
  std::vector<Recipe> BestRecipePerArm(Arms);
  int TotalVisits = 0;

  int Wave = std::max(1, Budget.MctsWave);
  for (int Rollout = 0; Rollout < Budget.MctsRollouts;) {
    int WaveSize = std::min(Wave, Budget.MctsRollouts - Rollout);

    std::vector<int> Virtual(Arms, 0);
    std::vector<size_t> WaveArms;
    WaveArms.reserve(static_cast<size_t>(WaveSize));
    for (int W = 0; W < WaveSize; ++W) {
      // Select arm by UCB1 (untried arms first), counting this wave's
      // earlier selections as virtual visits.
      size_t Arm = 0;
      bool Untried = false;
      for (size_t A = 0; A < Arms; ++A)
        if (Visits[A] + Virtual[A] == 0) {
          Arm = A;
          Untried = true;
          break;
        }
      if (!Untried) {
        double BestScore = -1.0;
        for (size_t A = 0; A < Arms; ++A) {
          double Score =
              BestReward[A] +
              1.4 * std::sqrt(std::log(TotalVisits + W + 1.0) /
                              (Visits[A] + Virtual[A]));
          if (Score > BestScore) {
            BestScore = Score;
            Arm = A;
          }
        }
      }
      ++Virtual[Arm];
      WaveArms.push_back(Arm);
    }

    std::vector<Recipe> Candidates;
    Candidates.reserve(static_cast<size_t>(WaveSize));
    for (int W = 0; W < WaveSize; ++W) {
      Rng Rand(deriveSeed(NestSeed, static_cast<uint64_t>(Rollout + W)));
      size_t TileChoice = Rand.nextBelow(Space.TileChoices.size());
      bool Parallel = Rand.nextBool(0.7);
      bool Vectorize = Rand.nextBool(0.7);
      Candidates.push_back(
          buildRecipe(Space, WaveArms[W], TileChoice, Parallel, Vectorize));
    }
    std::vector<double> Seconds =
        Eval.recipeSecondsBatch(Prog, Index, Candidates);

    for (int W = 0; W < WaveSize; ++W) {
      size_t Arm = WaveArms[static_cast<size_t>(W)];
      double Reward = 1.0 / (1.0 + Seconds[static_cast<size_t>(W)] * 1e3);
      ++Visits[Arm];
      ++TotalVisits;
      if (Reward > BestReward[Arm]) {
        BestReward[Arm] = Reward;
        BestRecipePerArm[Arm] = Candidates[static_cast<size_t>(W)];
      }
    }
    Rollout += WaveSize;
  }

  // Rank arms by their best observed reward.
  std::vector<size_t> Order;
  for (size_t A = 0; A < Arms; ++A)
    if (Visits[A] > 0)
      Order.push_back(A);
  std::stable_sort(Order.begin(), Order.end(), [&](size_t A, size_t B) {
    return BestReward[A] > BestReward[B];
  });
  std::vector<Recipe> Result;
  for (size_t A : Order) {
    Result.push_back(BestRecipePerArm[A]);
    if (static_cast<int>(Result.size()) >= TopK)
      break;
  }
  return Result;
}

Recipe daisy::mutateRecipe(const Recipe &R, size_t BandSize, Rng &Rand) {
  Recipe Mutated = R;
  if (Mutated.Steps.empty() || BandSize == 0)
    return Mutated;
  switch (Rand.nextBelow(4)) {
  case 0: { // perturb permutation
    for (RecipeStep &Step : Mutated.Steps)
      if (Step.StepKind == RecipeStep::Kind::Permute &&
          Step.Perm.size() >= 2) {
        size_t A = Rand.nextBelow(Step.Perm.size());
        size_t B = Rand.nextBelow(Step.Perm.size());
        std::swap(Step.Perm[A], Step.Perm[B]);
      }
    break;
  }
  case 1: { // perturb tile sizes
    bool Found = false;
    for (RecipeStep &Step : Mutated.Steps)
      if (Step.StepKind == RecipeStep::Kind::Tile && !Step.Tiles.empty()) {
        size_t Dim = Rand.nextBelow(Step.Tiles.size());
        static constexpr int64_t Sizes[4] = {0, 8, 16, 32};
        Step.Tiles[Dim] = Sizes[Rand.nextBelow(4)];
        Found = true;
      }
    if (!Found) {
      RecipeStep Tile;
      Tile.StepKind = RecipeStep::Kind::Tile;
      Tile.Tiles.assign(BandSize, 16);
      Mutated.Steps.insert(Mutated.Steps.begin() + 1, Tile);
    }
    break;
  }
  case 2: { // toggle parallelization
    bool Removed = false;
    for (size_t I = 0; I < Mutated.Steps.size(); ++I)
      if (Mutated.Steps[I].StepKind ==
          RecipeStep::Kind::ParallelizeOutermost) {
        Mutated.Steps.erase(Mutated.Steps.begin() +
                            static_cast<std::ptrdiff_t>(I));
        Removed = true;
        break;
      }
    if (!Removed) {
      RecipeStep Par;
      Par.StepKind = RecipeStep::Kind::ParallelizeOutermost;
      Mutated.Steps.push_back(Par);
    }
    break;
  }
  default: { // toggle vectorization
    bool Removed = false;
    for (size_t I = 0; I < Mutated.Steps.size(); ++I)
      if (Mutated.Steps[I].StepKind ==
          RecipeStep::Kind::VectorizeInnermost) {
        Mutated.Steps.erase(Mutated.Steps.begin() +
                            static_cast<std::ptrdiff_t>(I));
        Removed = true;
        break;
      }
    if (!Removed) {
      RecipeStep Vec;
      Vec.StepKind = RecipeStep::Kind::VectorizeInnermost;
      Mutated.Steps.push_back(Vec);
    }
    break;
  }
  }
  return Mutated;
}

Recipe daisy::evolveRecipe(const Program &Prog, size_t Index,
                           const TransferTuningDatabase &Db, Evaluator &Eval,
                           const SearchBudget &Budget, Rng &Rand) {
  const NodePtr &Nest = Prog.topLevel()[Index];
  size_t BandSize = perfectNestBand(Nest).size();
  PerformanceEmbedding Key = embedNest(Nest, Prog);

  struct Scored {
    Recipe R;
    double Seconds;
  };
  // Mutations are drawn from the shared Rng serially (scoring consumes no
  // randomness), then the whole generation is scored as one batch.
  auto ScoreBatch = [&](const std::vector<Recipe> &Recipes) {
    std::vector<double> Seconds =
        Eval.recipeSecondsBatch(Prog, Index, Recipes);
    std::vector<Scored> Result;
    Result.reserve(Recipes.size());
    for (size_t I = 0; I < Recipes.size(); ++I)
      Result.push_back(Scored{Recipes[I], Seconds[I]});
    return Result;
  };

  std::vector<Scored> Population;
  Scored Best{Recipe::defaultParallelRecipe(), 0.0};
  Best.Seconds = Eval.recipeSeconds(Prog, Index, Best.R);

  for (int Epoch = 0; Epoch < Budget.Epochs; ++Epoch) {
    // (Re-)seed the population.
    std::vector<Recipe> Seeds;
    if (Epoch == 0) {
      Seeds = mctsCandidates(Prog, Index, Eval, Budget,
                             Budget.PopulationSize);
    } else {
      for (const DatabaseEntry *Entry :
           Db.nearest(Key, static_cast<size_t>(Budget.ReSeedNeighbours)))
        if (static_cast<int>(Seeds.size()) < Budget.PopulationSize)
          Seeds.push_back(Entry->Optimization);
    }
    Population = ScoreBatch(Seeds);
    Population.push_back(Best);
    std::vector<Recipe> Fill;
    while (static_cast<int>(Population.size() + Fill.size()) <
           Budget.PopulationSize)
      Fill.push_back(mutateRecipe(Best.R, BandSize, Rand));
    for (Scored &S : ScoreBatch(Fill))
      Population.push_back(std::move(S));

    // Refine with mutation + truncation selection.
    for (int Iter = 0; Iter < Budget.IterationsPerEpoch; ++Iter) {
      size_t CurrentSize = Population.size();
      std::vector<Recipe> Mutants;
      Mutants.reserve(CurrentSize);
      for (size_t I = 0; I < CurrentSize; ++I)
        Mutants.push_back(mutateRecipe(Population[I].R, BandSize, Rand));
      for (Scored &S : ScoreBatch(Mutants))
        Population.push_back(std::move(S));
      std::stable_sort(Population.begin(), Population.end(),
                       [](const Scored &A, const Scored &B) {
                         return A.Seconds < B.Seconds;
                       });
      Population.resize(
          static_cast<size_t>(Budget.PopulationSize));
    }
    if (!Population.empty() && Population.front().Seconds < Best.Seconds)
      Best = Population.front();
  }
  return Best.R;
}
