//===- sched/Idiom.cpp ----------------------------------------------------==//
//
// Part of the daisy project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "sched/Idiom.h"

#include "analysis/Legality.h"

#include <algorithm>
#include <map>

using namespace daisy;

namespace {

/// A product flattened into a constant factor and its array reads.
struct FlatProduct {
  bool Ok = false;
  double Constant = 1.0;
  std::vector<ArrayAccess> Reads;
};

FlatProduct flattenProduct(const ExprPtr &E) {
  FlatProduct Result;
  Result.Ok = true;
  std::vector<ExprPtr> Work = {E};
  while (!Work.empty()) {
    ExprPtr Node = Work.back();
    Work.pop_back();
    switch (Node->kind()) {
    case ExprKind::Constant:
      Result.Constant *= Node->constantValue();
      break;
    case ExprKind::Read:
      Result.Reads.push_back(Node->access());
      break;
    case ExprKind::Binary:
      if (Node->binaryOp() != BinaryOpKind::Mul) {
        Result.Ok = false;
        return Result;
      }
      Work.push_back(Node->operands()[0]);
      Work.push_back(Node->operands()[1]);
      break;
    default:
      Result.Ok = false;
      return Result;
    }
  }
  return Result;
}

/// If every subscript of \p Access is a bare iterator (coefficient 1, no
/// constant), returns the iterator names in dimension order.
std::optional<std::vector<std::string>> plainIters(const ArrayAccess &A) {
  std::vector<std::string> Result;
  for (const AffineExpr &Index : A.Indices) {
    if (Index.constantTerm() != 0 || Index.terms().size() != 1)
      return std::nullopt;
    const auto &[Name, Coeff] = *Index.terms().begin();
    if (Coeff != 1)
      return std::nullopt;
    Result.push_back(Name);
  }
  return Result;
}

/// Band info: iterator -> (trip count, zero-based rectangular?).
struct BandInfo {
  std::vector<std::shared_ptr<Loop>> Loops;
  std::map<std::string, int64_t> Trip;          // rectangular loops only
  std::map<std::string, std::string> TriUpper;  // j -> i when j < i+1
};

std::optional<BandInfo> analyzeBand(const NodePtr &Root,
                                    const Program &Prog) {
  BandInfo Info;
  Info.Loops = perfectNestBand(Root);
  if (Info.Loops.empty())
    return std::nullopt;
  for (const auto &L : Info.Loops) {
    if (L->step() != 1)
      return std::nullopt;
    if (!(L->lower() == AffineExpr::constant(0)))
      return std::nullopt;
    const AffineExpr &Upper = L->upper();
    bool Rectangular = true;
    for (const auto &[Name, Coeff] : Upper.terms())
      Rectangular &= Prog.params().count(Name) != 0;
    if (Rectangular) {
      Info.Trip[L->iterator()] = Upper.evaluate(Prog.params());
      continue;
    }
    // Lower-triangular pattern: upper == other_iterator + 1.
    if (Upper.terms().size() == 1 && Upper.constantTerm() == 1 &&
        Upper.terms().begin()->second == 1) {
      Info.TriUpper[L->iterator()] = Upper.terms().begin()->first;
      continue;
    }
    return std::nullopt;
  }
  return Info;
}

/// The single computation of a perfect single-statement nest, or null.
const Computation *soleComputation(const BandInfo &Band) {
  const auto &Body = Band.Loops.back()->body();
  if (Body.size() != 1)
    return nullptr;
  return dynCast<Computation>(Body[0]);
}

std::optional<IdiomMatch> matchGemm(const BandInfo &Band,
                                    const Computation &Comp) {
  if (Band.Loops.size() != 3 || !Band.TriUpper.empty())
    return std::nullopt;
  auto WriteIters = plainIters(Comp.write());
  if (!WriteIters || WriteIters->size() != 2)
    return std::nullopt;
  const std::string &I = (*WriteIters)[0];
  const std::string &J = (*WriteIters)[1];
  // Identify the contraction iterator.
  std::string K;
  for (const auto &L : Band.Loops)
    if (L->iterator() != I && L->iterator() != J)
      K = L->iterator();
  if (K.empty() || I == J)
    return std::nullopt;

  const ExprPtr &Rhs = Comp.rhs();
  if (Rhs->kind() != ExprKind::Binary ||
      Rhs->binaryOp() != BinaryOpKind::Add)
    return std::nullopt;
  // One addend reads the write target; the other is the product.
  ExprPtr Acc, Prod;
  for (int Side = 0; Side < 2; ++Side) {
    const ExprPtr &Cand = Rhs->operands()[static_cast<size_t>(Side)];
    if (Cand->kind() == ExprKind::Read && Cand->access() == Comp.write())
      Acc = Cand;
    else
      Prod = Cand;
  }
  if (!Acc || !Prod)
    return std::nullopt;
  FlatProduct P = flattenProduct(Prod);
  if (!P.Ok || P.Reads.size() != 2)
    return std::nullopt;
  for (int Swap = 0; Swap < 2; ++Swap) {
    const ArrayAccess &A = P.Reads[static_cast<size_t>(Swap)];
    const ArrayAccess &B = P.Reads[static_cast<size_t>(1 - Swap)];
    auto AIters = plainIters(A);
    auto BIters = plainIters(B);
    if (!AIters || !BIters)
      continue;
    if (*AIters == std::vector<std::string>{I, K} &&
        *BIters == std::vector<std::string>{K, J}) {
      auto Call = std::make_shared<CallNode>(
          BlasKind::Gemm,
          std::vector<std::string>{Comp.write().Array, A.Array, B.Array},
          std::vector<int64_t>{Band.Trip.at(I), Band.Trip.at(J),
                               Band.Trip.at(K)},
          P.Constant, 1.0);
      return IdiomMatch{Call, BlasKind::Gemm};
    }
  }
  return std::nullopt;
}

std::optional<IdiomMatch> matchSyrkFamily(const BandInfo &Band,
                                          const Computation &Comp) {
  if (Band.Loops.size() != 3 || Band.TriUpper.size() != 1)
    return std::nullopt;
  auto WriteIters = plainIters(Comp.write());
  if (!WriteIters || WriteIters->size() != 2)
    return std::nullopt;
  const std::string &I = (*WriteIters)[0];
  const std::string &J = (*WriteIters)[1];
  // Lower-triangular update: j runs to i+1.
  auto TriIt = Band.TriUpper.find(J);
  if (TriIt == Band.TriUpper.end() || TriIt->second != I)
    return std::nullopt;
  std::string K;
  for (const auto &L : Band.Loops)
    if (L->iterator() != I && L->iterator() != J)
      K = L->iterator();
  if (K.empty() || !Band.Trip.count(I) || !Band.Trip.count(K))
    return std::nullopt;

  const ExprPtr &Rhs = Comp.rhs();
  if (Rhs->kind() != ExprKind::Binary ||
      Rhs->binaryOp() != BinaryOpKind::Add)
    return std::nullopt;
  ExprPtr Acc, Rest;
  for (int Side = 0; Side < 2; ++Side) {
    const ExprPtr &Cand = Rhs->operands()[static_cast<size_t>(Side)];
    if (Cand->kind() == ExprKind::Read && Cand->access() == Comp.write())
      Acc = Cand;
    else
      Rest = Cand;
  }
  if (!Acc || !Rest)
    return std::nullopt;

  int64_t N = Band.Trip.at(I);
  int64_t KTrip = Band.Trip.at(K);

  // SYRK: Rest = alpha * A[i][k] * A[j][k].
  FlatProduct Single = flattenProduct(Rest);
  if (Single.Ok && Single.Reads.size() == 2) {
    auto R0 = plainIters(Single.Reads[0]);
    auto R1 = plainIters(Single.Reads[1]);
    if (R0 && R1 && Single.Reads[0].Array == Single.Reads[1].Array) {
      bool Direct = *R0 == std::vector<std::string>{I, K} &&
                    *R1 == std::vector<std::string>{J, K};
      bool Swapped = *R1 == std::vector<std::string>{I, K} &&
                     *R0 == std::vector<std::string>{J, K};
      if (Direct || Swapped) {
        auto Call = std::make_shared<CallNode>(
            BlasKind::Syrk,
            std::vector<std::string>{Comp.write().Array,
                                     Single.Reads[0].Array},
            std::vector<int64_t>{N, KTrip}, Single.Constant, 1.0);
        return IdiomMatch{Call, BlasKind::Syrk};
      }
    }
  }

  // SYR2K: Rest = P1 + P2 with P = alpha * X[j][k] * Y[i][k] pairs over
  // two distinct arrays.
  if (Rest->kind() == ExprKind::Binary &&
      Rest->binaryOp() == BinaryOpKind::Add) {
    FlatProduct P1 = flattenProduct(Rest->operands()[0]);
    FlatProduct P2 = flattenProduct(Rest->operands()[1]);
    if (P1.Ok && P2.Ok && P1.Reads.size() == 2 && P2.Reads.size() == 2 &&
        P1.Constant == P2.Constant) {
      // Collect array names of the (i,k)/(j,k) reads of each product.
      auto Classify = [&](const FlatProduct &P)
          -> std::optional<std::pair<std::string, std::string>> {
        // Returns (array with [i][k], array with [j][k]).
        auto R0 = plainIters(P.Reads[0]);
        auto R1 = plainIters(P.Reads[1]);
        if (!R0 || !R1)
          return std::nullopt;
        if (*R0 == std::vector<std::string>{I, K} &&
            *R1 == std::vector<std::string>{J, K})
          return std::make_pair(P.Reads[0].Array, P.Reads[1].Array);
        if (*R1 == std::vector<std::string>{I, K} &&
            *R0 == std::vector<std::string>{J, K})
          return std::make_pair(P.Reads[1].Array, P.Reads[0].Array);
        return std::nullopt;
      };
      auto C1 = Classify(P1);
      auto C2 = Classify(P2);
      // The two products must use the two arrays in opposite roles:
      // A[i][k]*B[j][k] + B[i][k]*A[j][k].
      if (C1 && C2 && C1->first == C2->second && C1->second == C2->first &&
          C1->first != C1->second) {
        auto Call = std::make_shared<CallNode>(
            BlasKind::Syr2k,
            std::vector<std::string>{Comp.write().Array, C1->first,
                                     C1->second},
            std::vector<int64_t>{N, KTrip}, P1.Constant, 1.0);
        return IdiomMatch{Call, BlasKind::Syr2k};
      }
    }
  }
  return std::nullopt;
}

std::optional<IdiomMatch> matchGemv(const BandInfo &Band,
                                    const Computation &Comp) {
  if (Band.Loops.size() != 2 || !Band.TriUpper.empty())
    return std::nullopt;
  auto WriteIters = plainIters(Comp.write());
  if (!WriteIters || WriteIters->size() != 1)
    return std::nullopt;
  const std::string &I = (*WriteIters)[0];
  std::string J;
  for (const auto &L : Band.Loops)
    if (L->iterator() != I)
      J = L->iterator();
  if (J.empty())
    return std::nullopt;

  const ExprPtr &Rhs = Comp.rhs();
  if (Rhs->kind() != ExprKind::Binary ||
      Rhs->binaryOp() != BinaryOpKind::Add)
    return std::nullopt;
  ExprPtr Acc, Prod;
  for (int Side = 0; Side < 2; ++Side) {
    const ExprPtr &Cand = Rhs->operands()[static_cast<size_t>(Side)];
    if (Cand->kind() == ExprKind::Read && Cand->access() == Comp.write())
      Acc = Cand;
    else
      Prod = Cand;
  }
  if (!Acc || !Prod)
    return std::nullopt;
  FlatProduct P = flattenProduct(Prod);
  if (!P.Ok || P.Reads.size() != 2)
    return std::nullopt;
  for (int Swap = 0; Swap < 2; ++Swap) {
    const ArrayAccess &A = P.Reads[static_cast<size_t>(Swap)];
    const ArrayAccess &X = P.Reads[static_cast<size_t>(1 - Swap)];
    auto AIters = plainIters(A);
    auto XIters = plainIters(X);
    if (!AIters || !XIters)
      continue;
    if (*AIters == std::vector<std::string>{I, J} &&
        *XIters == std::vector<std::string>{J}) {
      auto Call = std::make_shared<CallNode>(
          BlasKind::Gemv,
          std::vector<std::string>{Comp.write().Array, A.Array, X.Array},
          std::vector<int64_t>{Band.Trip.at(I), Band.Trip.at(J)},
          P.Constant, 1.0);
      return IdiomMatch{Call, BlasKind::Gemv};
    }
  }
  return std::nullopt;
}

} // namespace

std::optional<IdiomMatch>
daisy::detectBlasIdiom(const NodePtr &Root, const Program &Prog,
                       const std::set<BlasKind> &Enabled) {
  auto L = std::dynamic_pointer_cast<Loop>(Root);
  if (!L || L->isOpaque())
    return std::nullopt;
  auto Band = analyzeBand(Root, Prog);
  if (!Band)
    return std::nullopt;
  const Computation *Comp = soleComputation(*Band);
  if (!Comp)
    return std::nullopt;

  if (Enabled.count(BlasKind::Gemm))
    if (auto M = matchGemm(*Band, *Comp))
      return M;
  if (Enabled.count(BlasKind::Syrk) || Enabled.count(BlasKind::Syr2k))
    if (auto M = matchSyrkFamily(*Band, *Comp))
      if (Enabled.count(M->Kind))
        return M;
  if (Enabled.count(BlasKind::Gemv))
    if (auto M = matchGemv(*Band, *Comp))
      return M;
  return std::nullopt;
}
