//===- sched/Embedding.cpp ------------------------------------------------==//
//
// Part of the daisy project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "sched/Embedding.h"

#include "analysis/Accesses.h"
#include "analysis/Legality.h"
#include "analysis/Stride.h"
#include "support/StringUtils.h"

#include <cmath>
#include <set>

using namespace daisy;

double PerformanceEmbedding::distance(
    const PerformanceEmbedding &Other) const {
  double Sum = 0.0;
  for (size_t I = 0; I < Size; ++I) {
    double Diff = Features[I] - Other.Features[I];
    Sum += Diff * Diff;
  }
  return std::sqrt(Sum);
}

std::string PerformanceEmbedding::toString() const {
  std::vector<std::string> Parts;
  for (double F : Features)
    Parts.push_back(formatDouble(F, 2));
  return "[" + join(Parts, ", ") + "]";
}

PerformanceEmbedding daisy::embedNest(const NodePtr &Root,
                                      const Program &Prog) {
  PerformanceEmbedding E;
  std::vector<StmtInfo> Stmts = collectStatements(Root);
  if (Stmts.empty())
    return E;

  int Depth = loopDepth(Root);
  std::vector<std::shared_ptr<Loop>> Band = perfectNestBand(Root);

  double TotalIters = 0.0;
  double Flops = 0.0;
  double Reads = 0.0;
  double UnitStride = 0.0, ZeroStride = 0.0, LargeStride = 0.0;
  double Accesses = 0.0;
  double UnitStrideWrites = 0.0;
  bool Triangular = false;
  std::set<std::string> Arrays;
  double DataBytes = 0.0;
  size_t MaxRank = 0;

  for (const StmtInfo &S : Stmts) {
    std::vector<IterRange> Ranges =
        conservativeRanges(S.Path, Prog.params());
    double Iters = 1.0;
    for (const IterRange &R : Ranges)
      Iters *= static_cast<double>(std::max<int64_t>(R.span(), 1));
    TotalIters += Iters;
    Flops += static_cast<double>(S.Comp->flops());

    const std::string Innermost =
        S.Path.empty() ? "" : S.Path.back()->iterator();
    // A bound term that is not a parameter references an outer iterator:
    // the nest is triangular.
    for (const auto &L : S.Path) {
      for (const auto &[Name, Coeff] : L->lower().terms())
        Triangular |= Prog.params().count(Name) == 0;
      for (const auto &[Name, Coeff] : L->upper().terms())
        Triangular |= Prog.params().count(Name) == 0;
    }

    auto Classify = [&](const ArrayAccess &Access, bool IsWrite) {
      Accesses += 1.0;
      if (const ArrayDecl *Decl = Prog.findArray(Access.Array)) {
        Arrays.insert(Access.Array);
        DataBytes += static_cast<double>(Decl->elementCount()) * 8.0;
        MaxRank = std::max(MaxRank, Decl->Shape.size());
      }
      int64_t Stride =
          Innermost.empty() ? 0 : accessStride(Access, Innermost, 1, Prog);
      if (Stride == 0)
        ZeroStride += 1.0;
      else if (Stride == 1) {
        UnitStride += 1.0;
        if (IsWrite)
          UnitStrideWrites += 1.0;
      } else if (std::llabs(Stride) >= 8)
        LargeStride += 1.0;
    };
    Classify(S.Comp->write(), true);
    for (const ArrayAccess &R : S.Comp->reads())
      Classify(R, false);
    Reads += static_cast<double>(S.Comp->reads().size());
  }

  auto Parallel = parallelizableLoops(Root, Prog.params());
  auto Loops = collectLoops(Root);
  double ParallelFrac =
      Loops.empty() ? 0.0
                    : static_cast<double>(Parallel.size()) /
                          static_cast<double>(Loops.size());
  bool Reduction = false;
  for (const auto &L : Loops)
    if (!Parallel.count(L.get()))
      Reduction |= isReductionLoop(Root, L.get(), Prog.params());

  double NumStmts = static_cast<double>(Stmts.size());
  E.Features[0] = static_cast<double>(Depth);
  E.Features[1] = std::log2(std::max(TotalIters, 1.0));
  E.Features[2] = NumStmts;
  E.Features[3] = Flops / NumStmts;
  E.Features[4] = Reads / NumStmts;
  E.Features[5] = Accesses > 0 ? UnitStride / Accesses : 0.0;
  E.Features[6] = Accesses > 0 ? ZeroStride / Accesses : 0.0;
  E.Features[7] = Accesses > 0 ? LargeStride / Accesses : 0.0;
  E.Features[8] = Reduction ? 1.0 : 0.0;
  E.Features[9] = ParallelFrac;
  E.Features[10] = std::log2(std::max(DataBytes, 1.0));
  E.Features[11] = Triangular ? 1.0 : 0.0;
  E.Features[12] = static_cast<double>(MaxRank);
  E.Features[13] = static_cast<double>(Arrays.size());
  E.Features[14] = UnitStrideWrites > 0 ? 1.0 : 0.0;
  E.Features[15] =
      Depth > 0 ? static_cast<double>(Band.size()) / Depth : 0.0;
  return E;
}
