//===- sched/Schedulers.cpp -----------------------------------------------==//
//
// Part of the daisy project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "sched/Schedulers.h"

#include "analysis/Legality.h"
#include "ir/StructuralHash.h"
#include "sched/Idiom.h"
#include "transform/Parallelize.h"
#include "transform/Tile.h"

#include <algorithm>

using namespace daisy;

Scheduler::~Scheduler() = default;

std::optional<Program> ClangScheduler::schedule(const Program &Prog) {
  Program Result = Prog.clone();
  for (const NodePtr &Node : Result.topLevel())
    vectorizeInnermostUnitStride(Node, Result);
  return Result;
}

std::optional<Program> IccScheduler::schedule(const Program &Prog) {
  Program Result = Prog.clone();
  for (const NodePtr &Node : Result.topLevel()) {
    parallelizeOutermost(Node, Result.params(), &Result);
    vectorizeInnermostUnitStride(Node, Result);
  }
  return Result;
}

std::optional<Program> PollyScheduler::schedule(const Program &Prog) {
  Program Result = Prog.clone();
  for (NodePtr &Node : Result.topLevel()) {
    if (Node->kind() != NodeKind::Loop)
      continue;
    // First-level tiling of the full band, then second-level tiling of
    // the resulting point band (-polly-2nd-level-tiling).
    size_t BandSize = perfectNestBand(Node).size();
    if (BandSize >= 2) {
      Node = tileBand(Node,
                      std::vector<int64_t>(BandSize, FirstLevelTile),
                      Result.params());
      size_t NewBand = perfectNestBand(Node).size();
      if (NewBand > BandSize) {
        // Second level applies to the point loops (the trailing band).
        std::vector<int64_t> Second(NewBand, 0);
        for (size_t I = BandSize; I < NewBand; ++I)
          Second[I] = SecondLevelTile;
        Node = tileBand(Node, Second, Result.params());
      }
    }
    // Strip-mine vectorization of the innermost band level when it is
    // unit-stride; otherwise Polly leaves the loop scalar.
    int Marked = vectorizeInnermostUnitStride(Node, Result);
    (void)Marked;
    parallelizeOutermost(Node, Result.params(), &Result);
  }
  return Result;
}

namespace {

/// Tiramisu adapter applicability: the nest must be a perfect,
/// rectangular band with at least one parallelizable loop and no lifting
/// barrier.
bool tiramisuConvertible(const NodePtr &Node, const Program &Prog) {
  const auto *L = dynCast<Loop>(Node);
  if (!L || L->isOpaque())
    return false;
  auto Band = perfectNestBand(Node);
  if (Band.empty())
    return false;
  // Perfect: the innermost band loop contains only computations.
  for (const NodePtr &Child : Band.back()->body())
    if (Child->kind() == NodeKind::Loop)
      return false;
  // Rectangular bounds: only parameters and constants.
  for (const auto &Loop : Band) {
    for (const auto &[Name, Coeff] : Loop->lower().terms())
      if (!Prog.params().count(Name))
        return false;
    for (const auto &[Name, Coeff] : Loop->upper().terms())
      if (!Prog.params().count(Name))
        return false;
  }
  // Parallel loops exist.
  auto Parallel = parallelizableLoops(Node, Prog.params());
  for (const auto &Loop : Band)
    if (Parallel.count(Loop.get()))
      return true;
  return false;
}

} // namespace

std::optional<Program> TiramisuScheduler::schedule(const Program &Prog) {
  // The adapter applies maximal loop fission before conversion (paper §4,
  // Baselines).
  Program Result = normalize(
      Prog, [] {
        NormalizationOptions O;
        O.EnableStrideMinimization = false; // fission only
        return O;
      }());

  for (const NodePtr &Node : Result.topLevel())
    if (!tiramisuConvertible(Node, Result))
      return std::nullopt; // the paper's X

  // One evaluator (and simulation cache) for the whole program: the
  // top-3 re-measurement below hits the cache the MCTS just filled.
  Evaluator Eval(EvalOptions);
  for (size_t I = 0; I < Result.topLevel().size(); ++I) {
    std::vector<Recipe> Candidates =
        mctsCandidates(Result, I, Eval, Budget, /*TopK=*/3);
    if (Candidates.empty())
      continue;
    // "We test the top three candidates and apply the best optimization
    // among these."
    std::vector<double> Seconds =
        Eval.recipeSecondsBatch(Result, I, Candidates);
    size_t BestIdx = 0;
    for (size_t C = 1; C < Candidates.size(); ++C)
      if (Seconds[C] < Seconds[BestIdx])
        BestIdx = C;
    Result.topLevel()[I] =
        applyRecipe(Candidates[BestIdx], Result.topLevel()[I], Result);
  }
  return Result;
}

std::optional<Program> DaisyScheduler::schedule(const Program &Prog) {
  Program Result = Options.EnableNormalization ? normalize(Prog)
                                               : Prog.clone();
  if (!Options.EnableOptimization)
    return Result;

  for (size_t I = 0; I < Result.topLevel().size(); ++I) {
    NodePtr &Node = Result.topLevel()[I];
    if (Node->kind() != NodeKind::Loop)
      continue;
    auto *L = dynCast<Loop>(Node);
    if (L->isOpaque()) {
      // Lifting failed (paper §4.1): the nest is not optimized and any
      // reduction is executed in parallel with expensive atomics.
      parallelizeWithAtomics(Node, Result.params(), &Result);
      continue;
    }
    // BLAS-3 idiom replacement.
    if (auto Match = detectBlasIdiom(Node, Result, Options.Idioms)) {
      Node = Match->Call;
      continue;
    }
    // Transfer tuning: nearest database recipe, legality-checked apply.
    const DatabaseEntry *Entry =
        Db ? Db->lookup(embedNest(Node, Result), structuralHash(Node),
                        Options.MaxTransferDistance)
           : nullptr;
    Recipe R = Entry ? Entry->Optimization : Recipe::defaultParallelRecipe();
    Node = applyRecipe(R, Node, Result);
  }
  return Result;
}

void DaisyScheduler::seedDatabase(TransferTuningDatabase &Db,
                                  const Program &AVariant, Evaluator &Eval,
                                  const SearchBudget &Budget, Rng &Rand,
                                  const DaisyOptions &Options) {
  Program Norm = normalize(AVariant);
  for (size_t I = 0; I < Norm.topLevel().size(); ++I) {
    const NodePtr &Node = Norm.topLevel()[I];
    if (Node->kind() != NodeKind::Loop || dynCast<Loop>(Node)->isOpaque())
      continue;
    DatabaseEntry Entry;
    Entry.Name = AVariant.name() + "/nest" + std::to_string(I);
    Entry.CanonicalHash = structuralHash(Node);
    Entry.Embedding = embedNest(Node, Norm);
    if (detectBlasIdiom(Node, Norm, Options.Idioms))
      Entry.Optimization = Recipe::blasRecipe();
    else
      Entry.Optimization = evolveRecipe(Norm, I, Db, Eval, Budget, Rand);
    Db.insert(std::move(Entry));
  }
}

