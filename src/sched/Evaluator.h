//===- sched/Evaluator.h - Memoized, parallel candidate scoring --*- C++ -*-=//
//
// Part of the daisy project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The candidate-evaluation subsystem behind the scheduler searches.
///
/// Every MCTS rollout and every evolutionary mutation scores a candidate
/// recipe by applying it to one loop nest and walking the simulated
/// machine over the exact iteration space (machine/Simulator.h) — by far
/// the dominant cost of tuning. This header makes that path cheap along
/// two independent axes:
///
/// - SimCache memoizes simulateProgram results. The key is the
///   marks-aware structural hash of the transformed program (parallel /
///   vector marks change simulated cost, so the database's marks-blind
///   hash cannot key the cache), combined with a digest of the array
///   declarations, bound parameters, and SimOptions. Mutation operators
///   regenerate duplicate recipes constantly, and distinct recipes often
///   collapse to structurally identical nests (illegal steps are skipped,
///   self-swaps are no-ops), so duplicates cost a hash lookup instead of
///   a full cache-simulator walk. Hit/miss counts are exposed through the
///   support/Statistics counters "SimCache.Hits" / "SimCache.Misses".
///
/// - Evaluator::recipeSecondsBatch fans independent candidate scorings
///   over the persistent thread pool (exec/ThreadPool.h), with results
///   collected into their input slots. Candidate scoring draws no random
///   numbers and simulation is deterministic, so the scores — and every
///   search decision derived from them — are bit-identical at every
///   thread count, the same guarantee the parallel execution backend
///   established for program results.
///
/// Scoring clones nothing but the nest under evaluation: the untouched
/// sibling nests of the program are shared structurally (NodePtr is a
/// shared_ptr; simulation only reads), retiring the whole-program
/// Program::clone() the previous evaluateRecipe paid per candidate.
///
//===----------------------------------------------------------------------===//

#ifndef DAISY_SCHED_EVALUATOR_H
#define DAISY_SCHED_EVALUATOR_H

#include "machine/Simulator.h"
#include "sched/Recipe.h"

#include <cstdint>
#include <mutex>
#include <unordered_map>

namespace daisy {

/// Memoization table for whole-program simulations. Thread-safe: batch
/// workers probe and fill it concurrently; a racing pair of misses on the
/// same key both simulate (deterministically, to the same value) and the
/// second insert is a no-op.
class SimCache {
public:
  /// Cache key of simulating \p Prog under \p Options: marks-aware
  /// structural hash of the nests plus digests of array declarations,
  /// bound parameters, and the simulation options.
  static uint64_t keyFor(const Program &Prog, const SimOptions &Options);

  /// Memoized simulateProgram(Prog, Options).Seconds.
  double seconds(const Program &Prog, const SimOptions &Options);

  /// Number of distinct simulations stored.
  size_t size() const;

private:
  mutable std::mutex Mutex;
  std::unordered_map<uint64_t, double> Entries;
};

/// Knobs of the evaluator.
struct EvalConfig {
  /// Number of candidates scored concurrently by the batch API. 1 scores
  /// serially on the calling thread; 0 resolves to
  /// ThreadPool::defaultThreadCount() (DAISY_THREADS or the hardware
  /// concurrency). Results are bit-identical for every value.
  int NumThreads = 0;
  /// Memoize simulations in the SimCache. Off forces every score through
  /// the full simulator walk (used by the benchmarks to isolate the two
  /// mechanisms and by the determinism tests as a differential baseline).
  bool EnableCache = true;
};

/// Scores candidate recipes against a fixed machine model. One Evaluator
/// is shared across a whole search (or a whole database seeding), so the
/// cache accumulates across epochs, nests, and programs.
class Evaluator {
public:
  explicit Evaluator(SimOptions Options, EvalConfig Config = {});

  const SimOptions &options() const { return Options; }

  /// Resolved batch concurrency (>= 1).
  int threadCount() const { return Threads; }

  /// Simulated runtime of \p Prog with recipe \p R applied to nest
  /// \p Index. Only the nest under evaluation is cloned (by applyRecipe);
  /// sibling nests are shared with \p Prog.
  double recipeSeconds(const Program &Prog, size_t Index, const Recipe &R);

  /// Scores every recipe of \p Recipes against nest \p Index, fanning the
  /// candidates over the thread pool. Results arrive in input order and
  /// are bit-identical to the serial path at every thread count.
  std::vector<double> recipeSecondsBatch(const Program &Prog, size_t Index,
                                         const std::vector<Recipe> &Recipes);

private:
  /// Scores an already-transformed program (cache or full simulation).
  double programSeconds(const Program &Ctx);

  SimOptions Options;
  EvalConfig Config;
  int Threads = 1;
  SimCache Cache;
};

} // namespace daisy

#endif // DAISY_SCHED_EVALUATOR_H
