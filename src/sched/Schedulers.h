//===- sched/Schedulers.h - daisy and baseline schedulers --------*- C++ -*-=//
//
// Part of the daisy project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The auto-schedulers compared in the paper's evaluation:
///
/// - DaisyScheduler: the paper's contribution — a priori normalization,
///   BLAS-3 idiom replacement, and similarity-based transfer tuning from
///   a database seeded on the A variants.
/// - PollyScheduler: models Polly with `-O3 -polly -polly-parallel
///   -polly-tiling -polly-vectorizer=stripmine -polly-2nd-level-tiling`:
///   tiling + strip-mine vectorization + outer parallelization on the
///   loop structure as given (no a priori normalization).
/// - TiramisuScheduler: models the Tiramisu auto-scheduler run through
///   the paper's adapter: maximal fission, conversion restricted to
///   perfectly nested rectangular parallel loops (X otherwise), MCTS over
///   the schedule space guided by the cost model, top-3 candidates
///   measured and the best applied.
/// - IccScheduler: models `icc -O3 -parallel`: conservative outer-loop
///   auto-parallelization + innermost unit-stride vectorization.
/// - ClangScheduler: models `clang -O3`: innermost unit-stride
///   vectorization only.
///
/// Framework models for the Python comparison (paper §4.3) live in
/// FrameworkModels.h.
///
//===----------------------------------------------------------------------===//

#ifndef DAISY_SCHED_SCHEDULERS_H
#define DAISY_SCHED_SCHEDULERS_H

#include "machine/Simulator.h"
#include "normalize/Pipeline.h"
#include "sched/Database.h"
#include "sched/Search.h"

#include <memory>
#include <optional>
#include <set>
#include <string>

namespace daisy {

/// Common interface of all scheduling approaches.
class Scheduler {
public:
  virtual ~Scheduler();

  /// Display name ("daisy", "Polly", ...).
  virtual std::string name() const = 0;

  /// Returns the optimized program, or std::nullopt when the approach is
  /// not applicable to this program (the paper's X marks).
  virtual std::optional<Program> schedule(const Program &Prog) = 0;
};

/// clang -O3 model.
class ClangScheduler : public Scheduler {
public:
  std::string name() const override { return "clang"; }
  std::optional<Program> schedule(const Program &Prog) override;
};

/// icc -O3 -parallel model.
class IccScheduler : public Scheduler {
public:
  std::string name() const override { return "icc"; }
  std::optional<Program> schedule(const Program &Prog) override;
};

/// Polly model (tiling + strip-mine vectorization + parallel outer).
class PollyScheduler : public Scheduler {
public:
  std::string name() const override { return "Polly"; }
  std::optional<Program> schedule(const Program &Prog) override;

  /// First- and second-level tile sizes (Polly defaults, scaled).
  int64_t FirstLevelTile = 32;
  int64_t SecondLevelTile = 8;
  int64_t VectorWidth = 4;
};

/// Tiramisu auto-scheduler model (MCTS via the paper's adapter).
class TiramisuScheduler : public Scheduler {
public:
  explicit TiramisuScheduler(SimOptions EvalOptions = {},
                             SearchBudget Budget = {})
      : EvalOptions(std::move(EvalOptions)), Budget(Budget) {}

  std::string name() const override { return "Tiramisu"; }
  std::optional<Program> schedule(const Program &Prog) override;

private:
  SimOptions EvalOptions;
  SearchBudget Budget;
};

/// Configuration of the daisy scheduler.
struct DaisyOptions {
  /// Apply a priori normalization before optimizing (disabled by the
  /// ablation and the "daisy w/o normalization" configuration).
  bool EnableNormalization = true;
  /// Apply the transfer-tuned optimizations (disabled by the "Norm only"
  /// ablation configuration).
  bool EnableOptimization = true;
  /// BLAS kinds available for idiom replacement (BLAS-3 per the paper).
  std::set<BlasKind> Idioms = {BlasKind::Gemm, BlasKind::Syrk,
                               BlasKind::Syr2k};
  /// Maximum embedding distance for a database transfer.
  double MaxTransferDistance = 8.0;
};

/// The daisy scheduler (paper §4).
class DaisyScheduler : public Scheduler {
public:
  DaisyScheduler(std::shared_ptr<TransferTuningDatabase> Db,
                 DaisyOptions Options = {})
      : Db(std::move(Db)), Options(std::move(Options)) {}

  std::string name() const override { return "daisy"; }
  std::optional<Program> schedule(const Program &Prog) override;

  /// Seeds \p Db from the normalized nests of \p AVariant: BLAS-3 nests
  /// get the idiom recipe; all others are optimized by the evolutionary
  /// search (paper §4, "Seeding a Scheduling Database"). Candidate
  /// scoring goes through \p Eval — sharing one Evaluator across several
  /// seedDatabase calls carries the simulation cache from benchmark to
  /// benchmark. Database contents are bit-identical at every evaluator
  /// thread count and cache setting.
  static void seedDatabase(TransferTuningDatabase &Db,
                           const Program &AVariant, Evaluator &Eval,
                           const SearchBudget &Budget, Rng &Rand,
                           const DaisyOptions &Options = {});

private:
  std::shared_ptr<TransferTuningDatabase> Db;
  DaisyOptions Options;
};

} // namespace daisy

#endif // DAISY_SCHED_SCHEDULERS_H
