//===- sched/Embedding.h - Performance embeddings ----------------*- C++ -*-=//
//
// Part of the daisy project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Performance embeddings of loop nests (after Trümper et al., ICS'23,
/// "Performance Embeddings: A Similarity-Based Transfer Tuning Approach"):
/// fixed-size feature vectors whose Euclidean distance identifies loop
/// nests that profit from the same optimization recipes. The transfer-
/// tuning database (paper §4) keys its entries by these embeddings.
///
//===----------------------------------------------------------------------===//

#ifndef DAISY_SCHED_EMBEDDING_H
#define DAISY_SCHED_EMBEDDING_H

#include "ir/Program.h"

#include <array>
#include <string>

namespace daisy {

/// A fixed-size performance feature vector of one loop nest.
struct PerformanceEmbedding {
  static constexpr size_t Size = 16;
  std::array<double, Size> Features{};

  /// Euclidean distance to \p Other.
  double distance(const PerformanceEmbedding &Other) const;

  std::string toString() const;
};

/// Computes the embedding of nest \p Root within \p Prog.
PerformanceEmbedding embedNest(const NodePtr &Root, const Program &Prog);

} // namespace daisy

#endif // DAISY_SCHED_EMBEDDING_H
