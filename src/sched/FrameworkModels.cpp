//===- sched/FrameworkModels.cpp ------------------------------------------==//
//
// Part of the daisy project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "sched/FrameworkModels.h"

#include "sched/Idiom.h"
#include "transform/Fuse.h"
#include "transform/Parallelize.h"

using namespace daisy;

std::set<BlasKind> daisy::pythonFrameworkOperators() {
  return {BlasKind::Gemm, BlasKind::Gemv};
}

namespace {

/// Replaces nests matching framework operators by library calls.
void applyOperators(Program &Prog) {
  for (NodePtr &Node : Prog.topLevel())
    if (auto Match =
            detectBlasIdiom(Node, Prog, pythonFrameworkOperators()))
      Node = Match->Call;
}

} // namespace

std::optional<Program> NumPyScheduler::schedule(const Program &Prog) {
  Program Result = Prog.clone();
  applyOperators(Result);
  // ufunc inner loops are vectorized C loops; no threads, no fusion.
  for (const NodePtr &Node : Result.topLevel())
    vectorizeInnermostUnitStride(Node, Result);
  return Result;
}

std::optional<Program> NumbaScheduler::schedule(const Program &Prog) {
  Program Result = Prog.clone();
  applyOperators(Result);
  for (const NodePtr &Node : Result.topLevel()) {
    parallelizeOutermost(Node, Result.params(), &Result);
    vectorizeInnermostUnitStride(Node, Result);
  }
  return Result;
}

std::optional<Program> DaCeScheduler::schedule(const Program &Prog) {
  Program Result = Prog.clone();
  applyOperators(Result);
  // Dataflow fusion of one-to-one producer-consumer nests, then map
  // parallelization and vectorization.
  Result.topLevel() = fuseProducerConsumers(Result.topLevel(), Result);
  for (const NodePtr &Node : Result.topLevel()) {
    parallelizeOutermost(Node, Result.params(), &Result);
    vectorizeInnermostUnitStride(Node, Result);
  }
  return Result;
}
