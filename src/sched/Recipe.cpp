//===- sched/Recipe.cpp ---------------------------------------------------==//
//
// Part of the daisy project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "sched/Recipe.h"

#include "analysis/Legality.h"
#include "sched/Idiom.h"
#include "support/StringUtils.h"
#include "transform/Parallelize.h"
#include "transform/Permute.h"
#include "transform/Tile.h"

#include <cassert>

using namespace daisy;

std::string RecipeStep::toString() const {
  switch (StepKind) {
  case Kind::Permute: {
    std::vector<std::string> Parts;
    for (int P : Perm)
      Parts.push_back(std::to_string(P));
    return "permute(" + join(Parts, ",") + ")";
  }
  case Kind::Tile: {
    std::vector<std::string> Parts;
    for (int64_t T : Tiles)
      Parts.push_back(std::to_string(T));
    return "tile(" + join(Parts, ",") + ")";
  }
  case Kind::ParallelizeOutermost:
    return "parallel";
  case Kind::VectorizeInnermost:
    return "vectorize";
  case Kind::StripMineVectorize:
    return "stripmine(" + std::to_string(Level) + "x" +
           std::to_string(Width) + ")";
  case Kind::BlasReplace:
    return "blas";
  }
  return "?";
}

std::string Recipe::toString() const {
  std::vector<std::string> Parts;
  for (const RecipeStep &Step : Steps)
    Parts.push_back(Step.toString());
  return join(Parts, " ; ");
}

Recipe Recipe::blasRecipe() {
  Recipe R;
  RecipeStep Step;
  Step.StepKind = RecipeStep::Kind::BlasReplace;
  R.Steps.push_back(Step);
  return R;
}

Recipe Recipe::defaultParallelRecipe() {
  Recipe R;
  RecipeStep Par;
  Par.StepKind = RecipeStep::Kind::ParallelizeOutermost;
  R.Steps.push_back(Par);
  RecipeStep Vec;
  Vec.StepKind = RecipeStep::Kind::VectorizeInnermost;
  R.Steps.push_back(Vec);
  return R;
}

NodePtr daisy::applyRecipe(const Recipe &R, const NodePtr &Root,
                           Program &Prog) {
  NodePtr Current = Root->clone();
  for (const RecipeStep &Step : R.Steps) {
    switch (Step.StepKind) {
    case RecipeStep::Kind::Permute: {
      auto Band = perfectNestBand(Current);
      if (Step.Perm.size() != Band.size())
        break;
      std::vector<std::string> Order;
      bool Valid = true;
      std::vector<bool> Seen(Band.size(), false);
      for (int P : Step.Perm) {
        if (P < 0 || static_cast<size_t>(P) >= Band.size() ||
            Seen[static_cast<size_t>(P)]) {
          Valid = false;
          break;
        }
        Seen[static_cast<size_t>(P)] = true;
        Order.push_back(Band[static_cast<size_t>(P)]->iterator());
      }
      if (!Valid || !isPermutationLegal(Current, Order, Prog.params()))
        break;
      Current = applyPermutation(Current, Order);
      break;
    }
    case RecipeStep::Kind::Tile: {
      if (perfectNestBand(Current).empty())
        break;
      Current = tileBand(Current, Step.Tiles, Prog.params());
      break;
    }
    case RecipeStep::Kind::ParallelizeOutermost:
      parallelizeOutermost(Current, Prog.params(), &Prog);
      break;
    case RecipeStep::Kind::VectorizeInnermost:
      vectorizeInnermostUnitStride(Current, Prog);
      break;
    case RecipeStep::Kind::StripMineVectorize: {
      auto Band = perfectNestBand(Current);
      if (Band.empty() || static_cast<size_t>(Step.Level) >= Band.size())
        break;
      Current = stripMine(Current, static_cast<size_t>(Step.Level),
                          Step.Width, Prog.params());
      break;
    }
    case RecipeStep::Kind::BlasReplace: {
      auto Match = detectBlasIdiom(Current, Prog);
      if (Match)
        Current = Match->Call;
      break;
    }
    }
  }
  return Current;
}
