//===- frontends/PolyBenchLinear.cpp - linear-algebra kernels -------------==//
//
// Part of the daisy project. MIT license.
//
// Builders for gemm, 2mm, 3mm, syrk, syr2k, atax, bicg, mvt, gemver, and
// gesummv, in A / B / NPBench variants (see PolyBench.h for variant
// semantics). The A variants follow the PolyBench 4.2 reference loop
// structures; B variants permute and recompose loops without changing
// semantics (verified by the frontends test suite via the interpreter).
//
//===----------------------------------------------------------------------===//

#include "frontends/PolyBenchDetail.h"

using namespace daisy;
using namespace daisy::polybench_detail;

namespace {

/// `Dst[i][j] (+)= alpha * L[i][k] * R[k][j]` accumulation statement.
NodePtr matmulAcc(const std::string &Name, const std::string &Dst,
                  const std::string &L, const std::string &R,
                  double AlphaVal = 1.0) {
  ExprPtr Product = read(L, {ax("i"), ax("k")}) * read(R, {ax("k"), ax("j")});
  if (AlphaVal != 1.0)
    Product = lit(AlphaVal) * Product;
  return assign(Name, Dst, {ax("i"), ax("j")},
                read(Dst, {ax("i"), ax("j")}) + Product);
}

} // namespace

Program polybench_detail::buildGemm(VariantKind V) {
  int N = Sizes::Matmul;
  Program P("gemm");
  P.addArray("A", {N, N});
  P.addArray("B", {N, N});
  P.addArray("C", {N, N});
  NodePtr Scale = assign("Sb", "C", {ax("i"), ax("j")},
                         read("C", {ax("i"), ax("j")}) * lit(Beta));
  NodePtr Acc = matmulAcc("Sc", "C", "A", "B", Alpha);

  switch (V) {
  case VariantKind::A:
    // for i { for j { C *= beta; for k C += alpha*A*B } }
    P.append(forLoop(
        "i", 0, N,
        {forLoop("j", 0, N, {Scale, forLoop("k", 0, N, {Acc})})}));
    break;
  case VariantKind::B:
    // Scale with j outer; accumulation with k outermost, i innermost.
    P.append(forLoop(
        "j", 0, N,
        {forLoop("i", 0, N,
                 {assign("Sb", "C", {ax("i"), ax("j")},
                         read("C", {ax("i"), ax("j")}) * lit(Beta))})}));
    P.append(forLoop(
        "k", 0, N,
        {forLoop("j", 0, N, {forLoop("i", 0, N, {Acc->clone()})})}));
    break;
  case VariantKind::NPBench:
    // C *= beta; t = A @ B; C += alpha * t.
    P.addArray("t_mm", {N, N}, /*Transient=*/true);
    P.append(forLoop("i", 0, N, {forLoop("j", 0, N, {Scale->clone()})}));
    P.append(forLoop("i", 0, N,
                     {forLoop("j", 0, N,
                              {assign("S0", "t_mm", {ax("i"), ax("j")},
                                      lit(0.0))})}));
    P.append(forLoop(
        "i", 0, N,
        {forLoop("j", 0, N,
                 {forLoop("k", 0, N,
                          {matmulAcc("S1", "t_mm", "A", "B")})})}));
    P.append(forLoop(
        "i", 0, N,
        {forLoop("j", 0, N,
                 {assign("S2", "C", {ax("i"), ax("j")},
                         read("C", {ax("i"), ax("j")}) +
                             lit(Alpha) * read("t_mm",
                                              {ax("i"), ax("j")}))})}));
    break;
  }
  return P;
}

Program polybench_detail::build2mm(VariantKind V) {
  int N = Sizes::Matmul;
  Program P("2mm");
  P.addArray("A", {N, N});
  P.addArray("B", {N, N});
  P.addArray("C", {N, N});
  P.addArray("D", {N, N});
  P.addArray("tmp", {N, N}, /*Transient=*/true);

  NodePtr TmpInit = assign("S0", "tmp", {ax("i"), ax("j")}, lit(0.0));
  NodePtr TmpAcc = matmulAcc("S1", "tmp", "A", "B", Alpha);
  NodePtr DScale = assign("S2", "D", {ax("i"), ax("j")},
                          read("D", {ax("i"), ax("j")}) * lit(Beta));
  NodePtr DAcc = matmulAcc("S3", "D", "tmp", "C");

  switch (V) {
  case VariantKind::A:
    P.append(forLoop(
        "i", 0, N,
        {forLoop("j", 0, N, {TmpInit, forLoop("k", 0, N, {TmpAcc})})}));
    P.append(forLoop(
        "i", 0, N,
        {forLoop("j", 0, N, {DScale, forLoop("k", 0, N, {DAcc})})}));
    break;
  case VariantKind::B:
    // Inits hoisted with flipped orders; accumulations with k outermost.
    P.append(forLoop("j", 0, N,
                     {forLoop("i", 0, N, {TmpInit->clone()})}));
    P.append(forLoop(
        "k", 0, N,
        {forLoop("i", 0, N, {forLoop("j", 0, N, {TmpAcc->clone()})})}));
    P.append(forLoop("j", 0, N,
                     {forLoop("i", 0, N, {DScale->clone()})}));
    P.append(forLoop(
        "k", 0, N,
        {forLoop("j", 0, N, {forLoop("i", 0, N, {DAcc->clone()})})}));
    break;
  case VariantKind::NPBench:
    P.append(forLoop("i", 0, N,
                     {forLoop("j", 0, N, {TmpInit->clone()})}));
    P.append(forLoop(
        "i", 0, N,
        {forLoop("j", 0, N, {forLoop("k", 0, N, {TmpAcc->clone()})})}));
    P.append(forLoop("i", 0, N,
                     {forLoop("j", 0, N, {DScale->clone()})}));
    P.append(forLoop(
        "i", 0, N,
        {forLoop("j", 0, N, {forLoop("k", 0, N, {DAcc->clone()})})}));
    break;
  }
  return P;
}

Program polybench_detail::build3mm(VariantKind V) {
  int N = Sizes::Matmul;
  Program P("3mm");
  for (const char *Name : {"A", "B", "C", "D", "G"})
    P.addArray(Name, {N, N});
  P.addArray("E", {N, N}, /*Transient=*/true);
  P.addArray("F", {N, N}, /*Transient=*/true);

  auto InitAcc = [&](const std::string &Dst, const std::string &L,
                     const std::string &R, const std::string &Tag,
                     VariantKind Var) -> std::vector<NodePtr> {
    NodePtr Init = assign("I" + Tag, Dst, {ax("i"), ax("j")}, lit(0.0));
    NodePtr Acc = matmulAcc("A" + Tag, Dst, L, R);
    switch (Var) {
    case VariantKind::A:
      return {forLoop("i", 0, N,
                      {forLoop("j", 0, N,
                               {Init, forLoop("k", 0, N, {Acc})})})};
    case VariantKind::B:
      return {forLoop("j", 0, N, {forLoop("i", 0, N, {Init})}),
              forLoop("k", 0, N,
                      {forLoop("i", 0, N, {forLoop("j", 0, N, {Acc})})})};
    case VariantKind::NPBench:
      return {forLoop("i", 0, N, {forLoop("j", 0, N, {Init})}),
              forLoop("i", 0, N,
                      {forLoop("j", 0, N, {forLoop("k", 0, N, {Acc})})})};
    }
    return {};
  };

  for (NodePtr &Node : InitAcc("E", "A", "B", "e", V))
    P.append(std::move(Node));
  for (NodePtr &Node : InitAcc("F", "C", "D", "f", V))
    P.append(std::move(Node));
  for (NodePtr &Node : InitAcc("G", "E", "F", "g", V))
    P.append(std::move(Node));
  return P;
}

Program polybench_detail::buildSyrk(VariantKind V) {
  int N = Sizes::Matmul;
  Program P("syrk");
  P.addArray("A", {N, N});
  P.addArray("C", {N, N});
  NodePtr Scale = assign("S0", "C", {ax("i"), ax("j")},
                         read("C", {ax("i"), ax("j")}) * lit(Beta));
  NodePtr Acc = assign("S1", "C", {ax("i"), ax("j")},
                       read("C", {ax("i"), ax("j")}) +
                           lit(Alpha) * read("A", {ax("i"), ax("k")}) *
                               read("A", {ax("j"), ax("k")}));

  switch (V) {
  case VariantKind::A:
    // for i { for j<=i C *= beta; for k for j<=i C += ... }
    P.append(forLoop(
        "i", 0, N,
        {forLoop("j", ac(0), ax("i") + 1, {Scale}),
         forLoop("k", 0, N,
                 {forLoop("j", ac(0), ax("i") + 1, {Acc})})}));
    break;
  case VariantKind::B:
    P.append(forLoop("i", 0, N,
                     {forLoop("j", ac(0), ax("i") + 1, {Scale->clone()})}));
    P.append(forLoop(
        "k", 0, N,
        {forLoop("i", 0, N,
                 {forLoop("j", ac(0), ax("i") + 1, {Acc->clone()})})}));
    break;
  case VariantKind::NPBench:
    P.append(forLoop("i", 0, N,
                     {forLoop("j", ac(0), ax("i") + 1, {Scale->clone()})}));
    P.append(forLoop(
        "i", 0, N,
        {forLoop("k", 0, N,
                 {forLoop("j", ac(0), ax("i") + 1, {Acc->clone()})})}));
    break;
  }
  return P;
}

Program polybench_detail::buildSyr2k(VariantKind V) {
  int N = Sizes::Matmul;
  Program P("syr2k");
  P.addArray("A", {N, N});
  P.addArray("B", {N, N});
  P.addArray("C", {N, N});
  NodePtr Scale = assign("S0", "C", {ax("i"), ax("j")},
                         read("C", {ax("i"), ax("j")}) * lit(Beta));
  NodePtr Acc = assign(
      "S1", "C", {ax("i"), ax("j")},
      read("C", {ax("i"), ax("j")}) +
          (lit(Alpha) * read("A", {ax("i"), ax("k")}) *
               read("B", {ax("j"), ax("k")}) +
           lit(Alpha) * read("B", {ax("i"), ax("k")}) *
               read("A", {ax("j"), ax("k")})));

  switch (V) {
  case VariantKind::A:
    P.append(forLoop(
        "i", 0, N,
        {forLoop("j", ac(0), ax("i") + 1, {Scale}),
         forLoop("k", 0, N,
                 {forLoop("j", ac(0), ax("i") + 1, {Acc})})}));
    break;
  case VariantKind::B:
    P.append(forLoop("i", 0, N,
                     {forLoop("j", ac(0), ax("i") + 1, {Scale->clone()})}));
    P.append(forLoop(
        "k", 0, N,
        {forLoop("i", 0, N,
                 {forLoop("j", ac(0), ax("i") + 1, {Acc->clone()})})}));
    break;
  case VariantKind::NPBench:
    P.append(forLoop("i", 0, N,
                     {forLoop("j", ac(0), ax("i") + 1, {Scale->clone()})}));
    P.append(forLoop(
        "i", 0, N,
        {forLoop("k", 0, N,
                 {forLoop("j", ac(0), ax("i") + 1, {Acc->clone()})})}));
    break;
  }
  return P;
}

Program polybench_detail::buildAtax(VariantKind V) {
  int N = Sizes::Vector;
  Program P("atax");
  P.addArray("A", {N, N});
  P.addArray("x", {N});
  P.addArray("y", {N});
  P.addArray("tmp", {N}, /*Transient=*/true);

  NodePtr YInit = assign("S0", "y", {ax("j")}, lit(0.0));
  NodePtr TmpInit = assign("S1", "tmp", {ax("i")}, lit(0.0));
  NodePtr TmpAcc = assign("S2", "tmp", {ax("i")},
                          read("tmp", {ax("i")}) +
                              read("A", {ax("i"), ax("j")}) *
                                  read("x", {ax("j")}));
  NodePtr YAcc = assign("S3", "y", {ax("j")},
                        read("y", {ax("j")}) +
                            read("A", {ax("i"), ax("j")}) *
                                read("tmp", {ax("i")}));

  switch (V) {
  case VariantKind::A:
    P.append(forLoop("j", 0, N, {YInit}));
    P.append(forLoop("i", 0, N,
                     {TmpInit, forLoop("j", 0, N, {TmpAcc}),
                      forLoop("j2", 0, N,
                              {assign("S3", "y", {ax("j2")},
                                      read("y", {ax("j2")}) +
                                          read("A", {ax("i"), ax("j2")}) *
                                              read("tmp", {ax("i")}))})}));
    break;
  case VariantKind::B:
    P.append(forLoop("j", 0, N, {YInit->clone()}));
    P.append(forLoop("i", 0, N, {TmpInit->clone()}));
    P.append(forLoop("i", 0, N, {forLoop("j", 0, N, {TmpAcc->clone()})}));
    // y accumulation with j (the written index) outermost: strided sweep.
    P.append(forLoop("j", 0, N, {forLoop("i", 0, N, {YAcc->clone()})}));
    break;
  case VariantKind::NPBench:
    P.append(forLoop("i", 0, N, {TmpInit->clone()}));
    P.append(forLoop("i", 0, N, {forLoop("j", 0, N, {TmpAcc->clone()})}));
    P.append(forLoop("j", 0, N, {YInit->clone()}));
    P.append(forLoop("i", 0, N, {forLoop("j", 0, N, {YAcc->clone()})}));
    break;
  }
  return P;
}

Program polybench_detail::buildBicg(VariantKind V) {
  int N = Sizes::Vector;
  Program P("bicg");
  P.addArray("A", {N, N});
  P.addArray("s", {N});
  P.addArray("q", {N});
  P.addArray("p", {N});
  P.addArray("r", {N});

  NodePtr SInit = assign("S0", "s", {ax("i")}, lit(0.0));
  NodePtr QInit = assign("S1", "q", {ax("i")}, lit(0.0));
  NodePtr SAcc = assign("S2", "s", {ax("j")},
                        read("s", {ax("j")}) +
                            read("r", {ax("i")}) *
                                read("A", {ax("i"), ax("j")}));
  NodePtr QAcc = assign("S3", "q", {ax("i")},
                        read("q", {ax("i")}) +
                            read("A", {ax("i"), ax("j")}) *
                                read("p", {ax("j")}));

  switch (V) {
  case VariantKind::A:
    P.append(forLoop("i", 0, N, {SInit}));
    P.append(forLoop("i", 0, N,
                     {QInit, forLoop("j", 0, N, {SAcc, QAcc})}));
    break;
  case VariantKind::B:
    P.append(forLoop("i", 0, N, {SInit->clone()}));
    P.append(forLoop("i", 0, N, {QInit->clone()}));
    P.append(forLoop("j", 0, N, {forLoop("i", 0, N, {SAcc->clone()})}));
    P.append(forLoop("j", 0, N, {forLoop("i", 0, N, {QAcc->clone()})}));
    break;
  case VariantKind::NPBench:
    P.append(forLoop("i", 0, N, {SInit->clone()}));
    P.append(forLoop("i", 0, N, {forLoop("j", 0, N, {SAcc->clone()})}));
    P.append(forLoop("i", 0, N, {QInit->clone()}));
    P.append(forLoop("i", 0, N, {forLoop("j", 0, N, {QAcc->clone()})}));
    break;
  }
  return P;
}

Program polybench_detail::buildMvt(VariantKind V) {
  int N = Sizes::Vector;
  Program P("mvt");
  P.addArray("A", {N, N});
  for (const char *Name : {"x1", "x2", "y1", "y2"})
    P.addArray(Name, {N});

  NodePtr X1 = assign("S0", "x1", {ax("i")},
                      read("x1", {ax("i")}) +
                          read("A", {ax("i"), ax("j")}) *
                              read("y1", {ax("j")}));
  NodePtr X2 = assign("S1", "x2", {ax("i")},
                      read("x2", {ax("i")}) +
                          read("A", {ax("j"), ax("i")}) *
                              read("y2", {ax("j")}));

  switch (V) {
  case VariantKind::A:
    P.append(forLoop("i", 0, N, {forLoop("j", 0, N, {X1})}));
    P.append(forLoop("i", 0, N, {forLoop("j", 0, N, {X2})}));
    break;
  case VariantKind::B:
    // Both updates fused into one shared nest.
    P.append(forLoop("i", 0, N,
                     {forLoop("j", 0, N, {X1->clone(), X2->clone()})}));
    break;
  case VariantKind::NPBench:
    P.append(forLoop("i", 0, N, {forLoop("j", 0, N, {X1->clone()})}));
    P.append(forLoop("j", 0, N, {forLoop("i", 0, N, {X2->clone()})}));
    break;
  }
  return P;
}

Program polybench_detail::buildGemver(VariantKind V) {
  int N = Sizes::Vector;
  Program P("gemver");
  P.addArray("A", {N, N});
  for (const char *Name : {"u1", "v1", "u2", "v2", "w", "x", "y", "z"})
    P.addArray(Name, {N});

  NodePtr AHat = assign("S0", "A", {ax("i"), ax("j")},
                        read("A", {ax("i"), ax("j")}) +
                            read("u1", {ax("i")}) * read("v1", {ax("j")}) +
                            read("u2", {ax("i")}) * read("v2", {ax("j")}));
  NodePtr XAcc = assign("S1", "x", {ax("i")},
                        read("x", {ax("i")}) +
                            lit(Beta) * read("A", {ax("j"), ax("i")}) *
                                read("y", {ax("j")}));
  NodePtr XZ = assign("S2", "x", {ax("i")},
                      read("x", {ax("i")}) + read("z", {ax("i")}));
  NodePtr WAcc = assign("S3", "w", {ax("i")},
                        read("w", {ax("i")}) +
                            lit(Alpha) * read("A", {ax("i"), ax("j")}) *
                                read("x", {ax("j")}));

  switch (V) {
  case VariantKind::A:
    P.append(forLoop("i", 0, N, {forLoop("j", 0, N, {AHat})}));
    P.append(forLoop("i", 0, N, {forLoop("j", 0, N, {XAcc})}));
    P.append(forLoop("i", 0, N, {XZ}));
    P.append(forLoop("i", 0, N, {forLoop("j", 0, N, {WAcc})}));
    break;
  case VariantKind::B:
    // Rank updates with flipped order; x/w reductions with j outermost.
    P.append(forLoop("j", 0, N, {forLoop("i", 0, N, {AHat->clone()})}));
    P.append(forLoop("j", 0, N, {forLoop("i", 0, N, {XAcc->clone()})}));
    P.append(forLoop("i", 0, N, {XZ->clone()}));
    P.append(forLoop("j", 0, N, {forLoop("i", 0, N, {WAcc->clone()})}));
    break;
  case VariantKind::NPBench:
    P.append(forLoop("i", 0, N, {forLoop("j", 0, N, {AHat->clone()})}));
    P.append(forLoop("i", 0, N, {forLoop("j", 0, N, {XAcc->clone()})}));
    P.append(forLoop("i", 0, N, {XZ->clone()}));
    P.append(forLoop("i", 0, N, {forLoop("j", 0, N, {WAcc->clone()})}));
    break;
  }
  return P;
}

Program polybench_detail::buildGesummv(VariantKind V) {
  int N = Sizes::Vector;
  Program P("gesummv");
  P.addArray("A", {N, N});
  P.addArray("B", {N, N});
  P.addArray("x", {N});
  P.addArray("y", {N});
  P.addArray("tmp", {N}, /*Transient=*/true);

  NodePtr TmpInit = assign("S0", "tmp", {ax("i")}, lit(0.0));
  NodePtr YInit = assign("S1", "y", {ax("i")}, lit(0.0));
  NodePtr TmpAcc = assign("S2", "tmp", {ax("i")},
                          read("tmp", {ax("i")}) +
                              read("A", {ax("i"), ax("j")}) *
                                  read("x", {ax("j")}));
  NodePtr YAcc = assign("S3", "y", {ax("i")},
                        read("y", {ax("i")}) +
                            read("B", {ax("i"), ax("j")}) *
                                read("x", {ax("j")}));
  NodePtr Combine = assign("S4", "y", {ax("i")},
                           lit(Alpha) * read("tmp", {ax("i")}) +
                               lit(Beta) * read("y", {ax("i")}));

  switch (V) {
  case VariantKind::A:
    P.append(forLoop("i", 0, N,
                     {TmpInit, YInit, forLoop("j", 0, N, {TmpAcc, YAcc}),
                      Combine}));
    break;
  case VariantKind::B:
    P.append(forLoop("i", 0, N, {TmpInit->clone()}));
    P.append(forLoop("i", 0, N, {YInit->clone()}));
    P.append(forLoop("j", 0, N, {forLoop("i", 0, N, {TmpAcc->clone()})}));
    P.append(forLoop("j", 0, N, {forLoop("i", 0, N, {YAcc->clone()})}));
    P.append(forLoop("i", 0, N, {Combine->clone()}));
    break;
  case VariantKind::NPBench:
    P.append(forLoop("i", 0, N, {TmpInit->clone()}));
    P.append(forLoop("i", 0, N, {forLoop("j", 0, N, {TmpAcc->clone()})}));
    P.append(forLoop("i", 0, N, {YInit->clone()}));
    P.append(forLoop("i", 0, N, {forLoop("j", 0, N, {YAcc->clone()})}));
    P.append(forLoop("i", 0, N, {Combine->clone()}));
    break;
  }
  return P;
}
