//===- frontends/PolyBenchDetail.h - shared builder helpers ------*- C++ -*-=//
//
// Part of the daisy project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Internal helpers shared by the PolyBench builder translation units.
///
//===----------------------------------------------------------------------===//

#ifndef DAISY_FRONTENDS_POLYBENCHDETAIL_H
#define DAISY_FRONTENDS_POLYBENCHDETAIL_H

#include "frontends/PolyBench.h"
#include "ir/Builder.h"

namespace daisy {
namespace polybench_detail {

/// PolyBench default coefficients after constant propagation.
constexpr double Alpha = 1.5;
constexpr double Beta = 1.2;

/// Scaled LARGE problem sizes (DESIGN.md: problem sizes and the simulated
/// cache hierarchy are scaled by the same factor).
struct Sizes {
  static constexpr int Matmul = 64;   ///< gemm/2mm/3mm/syrk/syr2k dims
  static constexpr int Vector = 192;  ///< atax/bicg/mvt/gemver/gesummv
  static constexpr int DataM = 64;    ///< correlation/covariance features
  static constexpr int DataN = 96;    ///< correlation/covariance points
  static constexpr int StencilT = 12; ///< jacobi-2d / fdtd-2d time steps
  static constexpr int StencilN = 64; ///< jacobi-2d / fdtd-2d extent
  static constexpr int Heat3dT = 6;
  static constexpr int Heat3dN = 24;
};

// Builders (one per kernel), defined across the PolyBench*.cpp files.
Program buildGemm(VariantKind V);
Program build2mm(VariantKind V);
Program build3mm(VariantKind V);
Program buildSyrk(VariantKind V);
Program buildSyr2k(VariantKind V);
Program buildAtax(VariantKind V);
Program buildBicg(VariantKind V);
Program buildMvt(VariantKind V);
Program buildGemver(VariantKind V);
Program buildGesummv(VariantKind V);
Program buildCorrelation(VariantKind V);
Program buildCovariance(VariantKind V);
Program buildJacobi2d(VariantKind V);
Program buildFdtd2d(VariantKind V);
Program buildHeat3d(VariantKind V);

/// Marks a nest opaque (lifting failure model).
NodePtr opaque(NodePtr Node);

} // namespace polybench_detail
} // namespace daisy

#endif // DAISY_FRONTENDS_POLYBENCHDETAIL_H
