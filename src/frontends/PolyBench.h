//===- frontends/PolyBench.h - PolyBench kernel builders ---------*- C++ -*-=//
//
// Part of the daisy project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// IR builders for the 15 parallelizable PolyBench benchmarks of the
/// paper's evaluation, in three variants each:
///
/// - VariantKind::A  — the PolyBench 4.2 reference loop structure, as the
///   C frontend would lift it.
/// - VariantKind::B  — a semantically equivalent alternative with
///   different loop permutations and compositions (the paper generates
///   these randomly; here they are fixed, legality- and semantics-checked
///   alternates so experiments are reproducible).
/// - VariantKind::NPBench — the structure the DaCe Python frontend
///   produces from the NPBench NumPy implementation: one nest per array
///   operation with materialized temporaries, natural loop orders.
///
/// Scalar coefficients (alpha, beta, stencil weights) are inlined as
/// literals, as constant propagation would do. Problem sizes are the
/// paper's LARGE sizes scaled down by the same factor as the simulated
/// cache hierarchy (DESIGN.md §2).
///
/// The correlation and covariance A/B (C-frontend) variants mark their
/// mean/stddev nests opaque, reproducing the paper's lifting failure
/// (§4.1); the NPBench variants do not (§4.3: "correlation and covariance
/// do not show the problems of Section 4.1 due to a different structure
/// of the SDFGs from the Python frontend").
///
//===----------------------------------------------------------------------===//

#ifndef DAISY_FRONTENDS_POLYBENCH_H
#define DAISY_FRONTENDS_POLYBENCH_H

#include "ir/Program.h"

#include <string>
#include <vector>

namespace daisy {

/// The 15 parallelizable PolyBench benchmarks of the evaluation.
enum class PolyBenchKernel {
  TwoMM, ThreeMM, Atax, Bicg, Correlation, Covariance, Fdtd2d, Gemm,
  Gemver, Gesummv, Heat3d, Jacobi2d, Mvt, Syr2k, Syrk
};

/// Source-structure variant of a benchmark.
enum class VariantKind { A, B, NPBench };

/// All 15 kernels in the paper's figure order.
std::vector<PolyBenchKernel> allPolyBenchKernels();

/// Display name ("2mm", "atax", ...).
std::string polyBenchName(PolyBenchKernel Kernel);

/// Builds the kernel in the requested variant at the default (scaled
/// LARGE) size.
Program buildPolyBench(PolyBenchKernel Kernel, VariantKind Variant);

} // namespace daisy

#endif // DAISY_FRONTENDS_POLYBENCH_H
